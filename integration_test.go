package maxsat

// Integration tests covering the full pipeline: benchmark generation →
// DIMACS round-trip → every algorithm → witness verification → cross-solver
// agreement. These are the end-to-end checks behind the harness's
// CheckAgreement gate.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/opt"
	"repro/internal/simp"
)

// TestPipelineGenerateSerializeSolve writes instances through DIMACS and
// back, then checks the optimum is unchanged by serialization.
func TestPipelineGenerateSerializeSolve(t *testing.T) {
	insts := []gen.Instance{
		gen.Pigeonhole(4),
		gen.EquivMiter(4),
		gen.EquivMiterKS(4),
		gen.BMCCounter(3, 5),
		gen.Coloring(9, 8, 20, 3),
	}

	for _, in := range insts {
		var buf bytes.Buffer
		if err := WriteWCNF(&buf, in.W); err != nil {
			t.Fatalf("%s: write: %v", in.Name, err)
		}
		parsed, err := ParseWCNF(&buf)
		if err != nil {
			t.Fatalf("%s: parse: %v", in.Name, err)
		}
		direct, err := Solve(in.W, Options{Algorithm: AlgoMSU4V2})
		if err != nil {
			t.Fatal(err)
		}
		viaDimacs, err := Solve(parsed, Options{Algorithm: AlgoMSU4V2})
		if err != nil {
			t.Fatal(err)
		}
		if direct.Cost != viaDimacs.Cost || direct.Status != viaDimacs.Status {
			t.Fatalf("%s: serialization changed the optimum: %d vs %d",
				in.Name, direct.Cost, viaDimacs.Cost)
		}
		if in.KnownCost >= 0 && direct.Cost != in.KnownCost {
			t.Fatalf("%s: cost %d, known %d", in.Name, direct.Cost, in.KnownCost)
		}
	}
}

// TestExtendedLineupAgreement runs the full extended solver line-up over a
// suite slice and requires all proved optima to agree.
func TestExtendedLineupAgreement(t *testing.T) {
	insts := []gen.Instance{
		gen.Pigeonhole(3),
		gen.Pigeonhole(4),
		gen.EquivMiter(3),
		gen.EquivMiter(5),
		gen.BMCCounter(3, 4),
		gen.BMCShift(6, 5),
		gen.ATPGRedundant(3),
		gen.Coloring(5, 8, 20, 3),
		gen.RandomKSAT(77, 14, 3, 6.0),
	}
	rep := harness.Run(insts, harness.Config{
		Timeout: 30 * time.Second,
		Solvers: harness.ExtendedSolvers(),
	})
	if problems := rep.CheckAgreement(); len(problems) > 0 {
		t.Fatalf("disagreements:\n%v", problems)
	}
	for _, row := range rep.Results {
		for _, res := range row {
			if res.Aborted {
				t.Fatalf("%s/%s aborted with a 30s budget", res.Instance, res.Solver)
			}
		}
	}
}

// TestPreprocessThenMaxSATHards: hard clauses of a partial instance can be
// preprocessed; the optimum over the simplified hards plus original softs
// must match the unpreprocessed optimum. (Soft clauses must never be
// preprocessed — this test pins the sound usage pattern.)
func TestPreprocessThenMaxSATHards(t *testing.T) {
	in := gen.Coloring(13, 8, 18, 3)
	w := in.W

	// Split: preprocess the hard part only.
	hards := w.Hards()
	pre := simp.Preprocess(hards, simp.Options{DisableBVE: true}) // keep vars
	if pre.Unsat {
		t.Fatal("colouring hard part cannot be unsat")
	}
	rebuilt := cnf.NewWCNF(w.NumVars)
	for _, c := range pre.Formula.Clauses {
		rebuilt.AddHard(c...)
	}
	for _, c := range w.Clauses {
		if !c.Hard() {
			rebuilt.AddSoft(c.Weight, c.Clause...)
		}
	}
	a, err := Solve(w, Options{Algorithm: AlgoMSU3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(rebuilt, Options{Algorithm: AlgoMSU3})
	if err != nil {
		t.Fatal(err)
	}
	// Subsumption/unit propagation on hards preserves the model set over
	// the original variables only when no variable is eliminated; with BVE
	// disabled the optima must coincide.
	if a.Cost != b.Cost {
		t.Fatalf("preprocessing hards changed optimum: %d vs %d", a.Cost, b.Cost)
	}
}

// TestStressManyInstancesQuickly runs the default line-up over a trimmed
// suite with a small budget, asserting no panics, no disagreements, and
// sane bookkeeping everywhere — the "does the whole system hold together"
// smoke test.
func TestStressManyInstancesQuickly(t *testing.T) {
	insts := gen.Suite(7)[:20]
	rep := harness.Run(insts, harness.Config{Timeout: 2 * time.Second})
	if problems := rep.CheckAgreement(); len(problems) > 0 {
		t.Fatalf("disagreements: %v", problems)
	}
	for _, row := range rep.Results {
		for _, res := range row {
			if res.Status == opt.StatusOptimal && res.Cost < 0 {
				t.Fatalf("%s/%s: optimal with negative cost", res.Instance, res.Solver)
			}
		}
	}
}
