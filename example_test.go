package maxsat_test

import (
	"context"
	"fmt"
	"log"
	"time"

	maxsat "repro"
)

// paperExample builds Example 2 of the paper (§3.3): eight clauses over
// x1..x4 of which at most six are simultaneously satisfiable, so the MaxSAT
// cost is 2.
func paperExample() *maxsat.Formula {
	f := maxsat.NewFormula(4)
	f.AddClause(maxsat.FromDIMACS(1))
	f.AddClause(maxsat.FromDIMACS(-1), maxsat.FromDIMACS(-2))
	f.AddClause(maxsat.FromDIMACS(2))
	f.AddClause(maxsat.FromDIMACS(-1), maxsat.FromDIMACS(-3))
	f.AddClause(maxsat.FromDIMACS(3))
	f.AddClause(maxsat.FromDIMACS(-2), maxsat.FromDIMACS(-3))
	f.AddClause(maxsat.FromDIMACS(1), maxsat.FromDIMACS(-4))
	f.AddClause(maxsat.FromDIMACS(-1), maxsat.FromDIMACS(4))
	return f
}

func ExampleSolveFormula() {
	// Two contradicting unit clauses: any assignment falsifies exactly one.
	f := maxsat.NewFormula(0)
	f.AddClause(maxsat.FromDIMACS(1))
	f.AddClause(maxsat.FromDIMACS(-1))
	res, err := maxsat.SolveFormula(f, maxsat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Status, "cost", res.Cost)
	// Output: OPTIMAL cost 1
}

func ExampleSolveContext() {
	// SolveContext threads external cancellation and deadlines through every
	// optimizer; a solve cut off early returns its best bounds with Status
	// Unknown instead of an error.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := maxsat.SolveContext(ctx, maxsat.FromFormula(paperExample()), maxsat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Status, "cost", res.Cost)
	// Output: OPTIMAL cost 2
}

func ExampleSolve() {
	// Weighted partial MaxSAT: the hard clause forces x1 or x2; falsifying
	// the weight-1 preference is cheaper than the weight-3 one.
	w := maxsat.NewWCNF(2)
	w.AddHard(maxsat.FromDIMACS(1), maxsat.FromDIMACS(2))
	w.AddSoft(3, maxsat.FromDIMACS(-1))
	w.AddSoft(1, maxsat.FromDIMACS(-2))
	res, err := maxsat.Solve(w, maxsat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Status, "cost", res.Cost)
	// Output: OPTIMAL cost 1
}

func ExampleSolveFormula_portfolio() {
	// AlgoPortfolio races complete optimizers in goroutines over one shared
	// bound; the first proved optimum wins and the losers are cancelled.
	res, err := maxsat.SolveFormula(paperExample(), maxsat.Options{
		Algorithm:   maxsat.AlgoPortfolio,
		Parallelism: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Status, "cost", res.Cost)
	// Output: OPTIMAL cost 2
}

func ExampleSolveFormula_clauseSharing() {
	// ShareClauses adds learnt-clause exchange between the portfolio
	// members, so shared structure is deduced once instead of once per
	// member. The optimum is unaffected — sharing is an accelerator.
	res, err := maxsat.SolveFormula(paperExample(), maxsat.Options{
		Algorithm:    maxsat.AlgoPortfolio,
		Parallelism:  2,
		ShareClauses: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Status, "cost", res.Cost)
	// Output: OPTIMAL cost 2
}

func ExampleOptions_preprocess() {
	// Preprocess runs the soft-aware SatELite stage once before the
	// optimizer: hard clauses are simplified with soft selectors frozen, and
	// models are reconstructed to the original variables, so the answer is
	// unchanged — only faster on instances where search dominates.
	res, err := maxsat.SolveFormula(paperExample(), maxsat.Options{Preprocess: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Status, "cost", res.Cost)
	// Output: OPTIMAL cost 2
}

func ExampleServer() {
	// A Server schedules jobs on a bounded worker pool and caches verified
	// results: resubmitting a solved formula — even under different options
	// — is answered from the cache without solving.
	srv := maxsat.NewServer(maxsat.ServerConfig{Workers: 2})
	defer srv.Close()

	f := maxsat.FromFormula(paperExample())
	job, err := srv.Submit(f, maxsat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s cost=%d cached=%v\n", res.Status, res.Cost, res.Cached)

	again, err := srv.Submit(f, maxsat.Options{Algorithm: maxsat.AlgoBnB})
	if err != nil {
		log.Fatal(err)
	}
	res2, err := again.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s cost=%d cached=%v\n", res2.Status, res2.Cost, res2.Cached)
	fmt.Println("cache hits:", srv.Stats().CacheHits)
	// Output:
	// OPTIMAL cost=2 cached=false
	// OPTIMAL cost=2 cached=true
	// cache hits: 1
}

func ExampleJob_Updates() {
	// Updates streams anytime bound improvements while the job runs: the
	// lower bound only rises, the upper bound only falls, and for a job that
	// ends Optimal the final update has lb == ub == the optimum.
	srv := maxsat.NewServer(maxsat.ServerConfig{Workers: 1})
	defer srv.Close()

	job, err := srv.Submit(maxsat.FromFormula(paperExample()), maxsat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	var last maxsat.BoundUpdate
	for e := range job.Updates() { // closed when the job completes
		last = e
	}
	fmt.Printf("final bounds: lb=%d ub=%d\n", last.LB, last.UB)
	// Output: final bounds: lb=2 ub=2
}
