package maxsat

// Benchmark harness regenerating every table and figure of the DATE 2008
// paper (see DESIGN.md §2 for the experiment index):
//
//	BenchmarkTable1    — aborted-instance counts, industrial-style suite
//	BenchmarkTable2    — aborted counts, 29 design-debugging instances
//	BenchmarkFigure1   — scatter maxsatz vs msu4-v2
//	BenchmarkFigure2   — scatter pbo vs msu4-v2
//	BenchmarkFigure3   — scatter msu4-v1 vs msu4-v2
//	BenchmarkCardEncodings — A1 ablation: encoding sizes and solve impact
//	BenchmarkMSU4AtLeast1  — A2 ablation: the optional line-19 constraint
//	BenchmarkMSU1Variants  — A3 ablation: AMO encodings inside msu1
//	BenchmarkSolvers       — per-algorithm end-to-end on a fixed miter
//
// Benchmarks use a scaled-down per-instance timeout so the whole suite
// regenerates quickly; cmd/experiments runs the same artifacts with the
// default 5 s timeout. Abort counts and diagonal splits are emitted as
// benchmark metrics (aborts_<solver>, x_faster, ...).

import (
	"context"
	"testing"
	"time"

	"repro/internal/bnb"
	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/opt"
	"repro/internal/portfolio"
	"repro/internal/sat"
)

const benchTimeout = 300 * time.Millisecond

func reportAborts(b *testing.B, rep *harness.Report) {
	counts := rep.AbortCounts()
	for _, s := range rep.Solvers {
		b.ReportMetric(float64(counts[s]), "aborts_"+s)
	}
	b.ReportMetric(float64(len(rep.Instances)), "instances")
	if problems := rep.CheckAgreement(); len(problems) > 0 {
		b.Fatalf("solver disagreement: %v", problems)
	}
}

// BenchmarkTable1 regenerates Table 1: aborted instances per solver on the
// industrial-style suite.
func BenchmarkTable1(b *testing.B) {
	insts := gen.Suite(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := harness.Run(insts, harness.Config{Timeout: benchTimeout})
		b.StopTimer()
		reportAborts(b, rep)
		b.StartTimer()
	}
}

// BenchmarkTable1Pre doubles the Table 1 line-up with preprocessing-enabled
// twins ("+pre" columns): the soft-aware preprocessing pipeline applied to
// every algorithm family, on the same suite and timeout as BenchmarkTable1.
// The built-in agreement check makes this a differential benchmark — a
// preprocessed column disagreeing with its raw twin fails the run. CI runs
// it at -benchtime=1x and archives the output as the BENCH_pre artifact, so
// the preprocessing perf trajectory accumulates across commits.
func BenchmarkTable1Pre(b *testing.B) {
	insts := gen.Suite(42)
	cfg := harness.Config{
		Timeout: benchTimeout,
		Solvers: harness.ComparePreprocessing(harness.DefaultSolvers()),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := harness.Run(insts, cfg)
		b.StopTimer()
		reportAborts(b, rep)
		b.StartTimer()
	}
}

// BenchmarkTable1Cert measures certification overhead on the Table 1 suite:
// each instance is solved twice through the public API — once plain, once
// with Options.Certify — and the aggregate extra time of the proof-logged
// certification pass is reported as cert_overhead_ms. With logging off the
// solve path is byte-for-byte the plain one (BenchmarkTable1 itself is the
// logging-off baseline); this benchmark prices what turning it on costs. CI
// archives the output as the BENCH_cert artifact.
func BenchmarkTable1Cert(b *testing.B) {
	insts := gen.Suite(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var plain, certified time.Duration
		solved, certs := 0, 0
		for _, in := range insts {
			t0 := time.Now()
			r1, err := Solve(in.W, Options{Timeout: benchTimeout})
			if err != nil {
				b.Fatal(err)
			}
			plain += time.Since(t0)
			t0 = time.Now()
			r2, err := Solve(in.W, Options{Timeout: benchTimeout, Certify: true})
			if err != nil {
				b.Fatal(err)
			}
			certified += time.Since(t0)
			if r1.Status != Unknown {
				solved++
			}
			if r2.Certificate != nil {
				certs++
				if err := CheckCertificate(in.W, r2.Certificate); err != nil {
					b.Fatalf("%s: certificate rejected: %v", in.Name, err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(len(insts)), "instances")
		b.ReportMetric(float64(solved), "solved")
		b.ReportMetric(float64(certs), "certified")
		b.ReportMetric(float64((certified - plain).Milliseconds()), "cert_overhead_ms")
		b.StartTimer()
	}
}

// BenchmarkTable2 regenerates Table 2: the 29 design-debugging instances.
func BenchmarkTable2(b *testing.B) {
	insts := gen.DebugSuite(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := harness.Run(insts, harness.Config{Timeout: benchTimeout})
		b.StopTimer()
		reportAborts(b, rep)
		b.StartTimer()
	}
}

func scatterBench(b *testing.B, x, y string) {
	sx, _ := harness.SolverByName(x)
	sy, _ := harness.SolverByName(y)
	insts := gen.Suite(42)
	cfg := harness.Config{Timeout: benchTimeout, Solvers: []harness.SolverSpec{sx, sy}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := harness.Run(insts, cfg)
		b.StopTimer()
		pts := rep.Scatter(x, y)
		xFaster, yFaster := 0, 0
		for _, p := range pts {
			switch {
			case p.Y > p.X:
				xFaster++
			case p.X > p.Y:
				yFaster++
			}
		}
		b.ReportMetric(float64(xFaster), x+"_faster")
		b.ReportMetric(float64(yFaster), y+"_faster")
		if problems := rep.CheckAgreement(); len(problems) > 0 {
			b.Fatalf("solver disagreement: %v", problems)
		}
		b.StartTimer()
	}
}

// BenchmarkFigure1 regenerates Figure 1: maxsatz (y) vs msu4-v2 (x).
func BenchmarkFigure1(b *testing.B) { scatterBench(b, "msu4-v2", "maxsatz") }

// BenchmarkFigure2 regenerates Figure 2: pbo (y) vs msu4-v2 (x).
func BenchmarkFigure2(b *testing.B) { scatterBench(b, "msu4-v2", "pbo") }

// BenchmarkFigure3 regenerates Figure 3: msu4-v1 (y) vs msu4-v2 (x).
func BenchmarkFigure3(b *testing.B) { scatterBench(b, "msu4-v2", "msu4-v1") }

// BenchmarkCardEncodings measures the A1 ablation: CNF size and encoding
// time of AtMost-k for each cardinality encoding (n=96, k=12 — the regime
// msu4 hits after a handful of iterations on industrial instances).
func BenchmarkCardEncodings(b *testing.B) {
	const n, k = 96, 12
	for _, enc := range []card.Encoding{card.BDD, card.Sorter, card.Sequential, card.Totalizer} {
		enc := enc
		b.Run(enc.String(), func(b *testing.B) {
			var clauses, vars int
			for i := 0; i < b.N; i++ {
				f := cnf.NewFormula(n)
				d := card.NewFormulaDest(f)
				lits := make([]cnf.Lit, n)
				for j := range lits {
					lits[j] = cnf.PosLit(cnf.Var(j))
				}
				card.AtMost(d, enc, lits, k)
				clauses = f.NumClauses()
				vars = f.NumVars - n
			}
			b.ReportMetric(float64(clauses), "clauses")
			b.ReportMetric(float64(vars), "auxvars")
		})
	}
}

// BenchmarkMSU4AtLeast1 measures the A2 ablation: msu4-v2 with and without
// the optional per-core AtLeast-1 constraint (paper Algorithm 1, line 19).
func BenchmarkMSU4AtLeast1(b *testing.B) {
	insts := []gen.Instance{
		gen.EquivMiter(8),
		gen.BMCCounter(4, 10),
		gen.Coloring(7, 10, 26, 3),
		gen.Pigeonhole(5),
	}
	for _, skip := range []bool{false, true} {
		name := "with-al1"
		if skip {
			name = "without-al1"
		}
		skip := skip
		b.Run(name, func(b *testing.B) {
			iterations := 0
			for i := 0; i < b.N; i++ {
				iterations = 0
				for _, in := range insts {
					m := &core.MSU4{Opts: opt.Options{Encoding: card.Sorter}, SkipAtLeast1: skip}
					r := m.Solve(context.Background(), in.W, nil)
					if r.Status != opt.StatusOptimal {
						b.Fatalf("%s: %v", in.Name, r.Status)
					}
					iterations += r.Iterations
				}
			}
			b.ReportMetric(float64(iterations), "solver_iters")
		})
	}
}

// BenchmarkMSU1Variants measures the A3 ablation: the AMO encoding used for
// msu1's per-core exactly-one constraints.
func BenchmarkMSU1Variants(b *testing.B) {
	insts := []gen.Instance{
		gen.EquivMiter(6),
		gen.Coloring(7, 8, 20, 3),
		gen.Pigeonhole(4),
	}
	for _, enc := range []card.Encoding{card.Ladder, card.Pairwise, card.Sequential} {
		enc := enc
		b.Run(enc.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, in := range insts {
					m := &core.MSU1{AMOEncoding: enc}
					if r := m.Solve(context.Background(), in.W, nil); r.Status != opt.StatusOptimal {
						b.Fatalf("%s: %v", in.Name, r.Status)
					}
				}
			}
		})
	}
}

// BenchmarkSolvers times every algorithm end to end on a fixed
// equivalence-checking miter (the paper's dominant instance family).
func BenchmarkSolvers(b *testing.B) {
	in := gen.EquivMiter(8)
	for _, algo := range Algorithms() {
		algo := algo
		b.Run(string(algo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := Solve(in.W, Options{Algorithm: algo, Timeout: 10 * time.Second})
				if err != nil {
					b.Fatal(err)
				}
				if r.Status != Optimal || r.Cost != 1 {
					b.Fatalf("%s: status %v cost %d", algo, r.Status, r.Cost)
				}
			}
		})
	}
}

// BenchmarkPortfolio races the bound-sharing portfolio against its
// strongest members on three instance families with opposite winners:
// random over-constrained 3-SAT (branch-and-bound territory, where maxsatz
// alone times out msu4 by orders of magnitude on bigger sizes), an
// equivalence miter (msu4 territory, where maxsatz aborts at the 10 s cap),
// and a bounded-model-checking counter (core-guided territory with deep
// propagation chains). No fixed single choice is good on both; the
// portfolio is. On the miter family the portfolio typically beats even its
// best member outright: the WalkSAT seeder publishes an upper bound that
// lets msu4 prune its first cardinality constraints tighter than it could
// alone (bound exchange, not just early-winner selection). The
// portfolio-4+share variant additionally exchanges learnt clauses between
// the members (the share-on vs share-off comparison of the CI
// BENCH_portfolio artifact). An aborts metric reports member timeouts.
func BenchmarkPortfolio(b *testing.B) {
	insts := []gen.Instance{
		gen.RandomKSAT(7, 24, 3, 6.0),
		gen.EquivMiter(12),
		gen.BMCCounter(6, 32),
		gen.BMCCounter(10, 48),
	}
	solvers := []struct {
		name string
		run  func(ctx context.Context, w *cnf.WCNF) opt.Result
	}{
		{"portfolio-4", func(ctx context.Context, w *cnf.WCNF) opt.Result {
			return portfolio.New(opt.Options{}, 4).Solve(ctx, w, nil)
		}},
		{"portfolio-4+share", func(ctx context.Context, w *cnf.WCNF) opt.Result {
			e := portfolio.New(opt.Options{}, 4)
			e.Share = true
			return e.Solve(ctx, w, nil)
		}},
		{"msu4-v2", func(ctx context.Context, w *cnf.WCNF) opt.Result {
			return core.NewMSU4V2(opt.Options{}).Solve(ctx, w, nil)
		}},
		{"maxsatz", func(ctx context.Context, w *cnf.WCNF) opt.Result {
			return bnb.New(opt.Options{}).Solve(ctx, w, nil)
		}},
	}
	for _, in := range insts {
		in := in
		for _, s := range solvers {
			s := s
			b.Run(in.Name+"/"+s.name, func(b *testing.B) {
				aborts := 0
				var conflicts, imported int64
				for i := 0; i < b.N; i++ {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					r := s.run(ctx, in.W)
					cancel()
					conflicts += r.Conflicts
					imported += r.Imported
					switch r.Status {
					case opt.StatusOptimal:
						if in.KnownCost >= 0 && r.Cost != in.KnownCost {
							b.Fatalf("cost %d, known optimum %d", r.Cost, in.KnownCost)
						}
					case opt.StatusUnknown:
						aborts++
					default:
						b.Fatalf("unexpected status %v", r.Status)
					}
				}
				b.ReportMetric(float64(aborts), "aborts")
				// Summed conflicts measure the deductive work across every
				// member: the clause-sharing comparison shows up here even
				// when wall-clock is scheduler-noise-bound.
				b.ReportMetric(float64(conflicts)/float64(b.N), "conflicts")
				if imported > 0 {
					b.ReportMetric(float64(imported)/float64(b.N), "imported")
				}
			})
		}
	}
}

// BenchmarkSATSolver times the raw CDCL engine on pigeonhole proofs — the
// substrate cost underneath every core-guided iteration.
func BenchmarkSATSolver(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sat.New()
		in := gen.Pigeonhole(7)
		for _, c := range in.W.Clauses {
			s.AddClauseFrom(c.Clause)
		}
		if st := s.Solve(); st != sat.Unsat {
			b.Fatalf("php: %v", st)
		}
	}
}

// BenchmarkMSU4Minimize measures the core-minimization option: budgeted
// destructive shrinking of every extracted core before relaxation.
func BenchmarkMSU4Minimize(b *testing.B) {
	insts := []gen.Instance{
		gen.EquivMiter(8),
		gen.Coloring(7, 10, 26, 3),
		gen.BMCShift(10, 9),
	}
	for _, minimize := range []bool{false, true} {
		name := "off"
		if minimize {
			name = "on"
		}
		minimize := minimize
		b.Run(name, func(b *testing.B) {
			relaxed := 0
			for i := 0; i < b.N; i++ {
				relaxed = 0
				for _, in := range insts {
					m := &core.MSU4{Opts: opt.Options{Encoding: card.Sorter}, MinimizeCores: minimize}
					r := m.Solve(context.Background(), in.W, nil)
					if r.Status != opt.StatusOptimal {
						b.Fatalf("%s: %v", in.Name, r.Status)
					}
					relaxed += r.UnsatCalls
				}
			}
			b.ReportMetric(float64(relaxed), "unsat_iters")
		})
	}
}

// BenchmarkWeighted compares the weighted-capable algorithms (the paper's
// future-work direction) on weighted over-constrained colouring instances.
func BenchmarkWeighted(b *testing.B) {
	insts := []gen.Instance{
		gen.ColoringWeighted(3, 8, 20, 3, 5),
		gen.ColoringWeighted(4, 10, 26, 3, 5),
	}
	algos := []Algorithm{AlgoWMSU1, AlgoWMSU4, AlgoOLL, AlgoPBO, AlgoBnB}
	for _, algo := range algos {
		algo := algo
		b.Run(string(algo), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var ref Weight = -1
				for _, in := range insts {
					r, err := Solve(in.W, Options{Algorithm: algo, Timeout: 30 * time.Second})
					if err != nil {
						b.Fatal(err)
					}
					if r.Status != Optimal {
						b.Fatalf("%s on %s: %v", algo, in.Name, r.Status)
					}
					if ref < 0 {
						ref = r.Cost
					}
				}
			}
		})
	}
}

// BenchmarkWeightedFamilies runs the two core-guided weighted engines
// head to head on every family of the weighted suite — the wmsu4-vs-oll
// comparison behind the CI BENCH_weighted artifact. Both must prove the
// same optimum; cost disagreement fails the benchmark, so the artifact
// doubles as a differential check.
func BenchmarkWeightedFamilies(b *testing.B) {
	insts := gen.WeightedSuite(42)
	for _, algo := range []Algorithm{AlgoWMSU4, AlgoOLL} {
		algo := algo
		for _, in := range insts {
			in := in
			b.Run(string(algo)+"/"+in.Name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					r, err := Solve(in.W, Options{Algorithm: algo, Timeout: 30 * time.Second})
					if err != nil {
						b.Fatal(err)
					}
					if r.Status != Optimal {
						b.Fatalf("%s on %s: %v", algo, in.Name, r.Status)
					}
					if in.KnownCost >= 0 && r.Cost != in.KnownCost {
						b.Fatalf("%s on %s: cost %d, known optimum %d", algo, in.Name, r.Cost, in.KnownCost)
					}
				}
			})
		}
	}
}

// BenchmarkClauseManagement compares MiniSat's activity-based learnt-clause
// deletion (the paper-era policy) against Glucose-style LBD deletion on a
// pigeonhole proof.
func BenchmarkClauseManagement(b *testing.B) {
	for _, mode := range []sat.ClauseManagement{sat.ActivityBased, sat.LBDBased} {
		name := "activity"
		if mode == sat.LBDBased {
			name = "lbd"
		}
		mode := mode
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := sat.New()
				s.Management = mode
				in := gen.Pigeonhole(7)
				for _, c := range in.W.Clauses {
					s.AddClauseFrom(c.Clause)
				}
				if st := s.Solve(); st != sat.Unsat {
					b.Fatalf("php: %v", st)
				}
			}
		})
	}
}
