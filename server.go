package maxsat

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/portfolio"
	"repro/internal/serve"
)

// Server is the embeddable solving service: a bounded worker pool with
// per-job deadlines and cancellation, deduplication of identical in-flight
// submissions, a verified-result cache keyed by a canonical formula
// fingerprint, and anytime bound streaming. cmd/maxsatd exposes the same
// service over HTTP.
//
// Submit admits a job and returns immediately with a *Job handle; Wait
// blocks for the result, Updates streams bound improvements while the solve
// runs, Cancel withdraws the submission. A resubmission of a formula whose
// optimum the server has already proved — under any options — is answered
// from the cache without solving (observable in Stats); an identical
// submission arriving while the first is still in flight attaches to the
// running job instead of duplicating the work.
//
// Worker accounting: a sequential job occupies one worker slot; an
// AlgoPortfolio job occupies one slot per racing member (Options.Parallelism,
// or the full line-up size), clamped to the pool budget — the portfolio then
// races exactly the members it was granted, so concurrent portfolio jobs
// cannot oversubscribe the machine.
type Server struct {
	s          *serve.Server
	rs         *serve.ResultStore
	jl         *serve.Journal
	defaultMem int64
}

// ServerConfig configures a Server. The zero value gives a single-worker
// pool with a 256-entry cache and no default deadline.
type ServerConfig struct {
	// Workers is the global worker-slot budget shared by all jobs; ≤ 0
	// means 1. Size it to the machine (e.g. runtime.NumCPU()).
	Workers int
	// QueueDepth caps jobs admitted but not yet finished; further Submits
	// fail. ≤ 0 means unbounded.
	QueueDepth int
	// CacheEntries bounds the verified-result cache; 0 means 256, negative
	// disables caching.
	CacheEntries int
	// DefaultTimeout applies to jobs whose Options.Timeout is zero; 0 means
	// unbounded.
	DefaultTimeout time.Duration

	// RatePerSec is the per-client sustained submission rate (token bucket);
	// 0 disables rate limiting. Clients are the names passed to SubmitAs;
	// plain Submit charges a shared anonymous account.
	RatePerSec float64
	// Burst is the token-bucket capacity; 0 means max(1, 2·RatePerSec).
	Burst int
	// ClientQuota caps one client's queued-or-running jobs; cache hits and
	// coalesced attaches are exempt. 0 disables.
	ClientQuota int
	// HighWater (a fraction of QueueDepth, e.g. 0.75) enables graceful
	// degradation: past that queue pressure, portfolio jobs are granted
	// fewer worker slots — down to a single member — instead of queueing
	// full line-ups. Reductions are counted in ServerStats.Degraded.
	// 0 disables; needs QueueDepth > 0.
	HighWater float64
	// MemoryBudget, when positive, applies to jobs whose Options.MemoryBudget
	// is zero: a clause-storage byte cap per job (see Options.MemoryBudget).
	MemoryBudget int64
	// Audit, when non-nil, receives one AuditEvent per admission decision,
	// cancellation and completion. Called outside server locks; must not
	// block for long.
	Audit func(AuditEvent)

	// DataDir, when non-empty, makes the server durable (requires
	// OpenServer): certified results are persisted to an append-only,
	// checksummed log in that directory and survive restarts — every
	// recovered record is re-proved by the independent certificate checker
	// before it may serve a cache hit — and submissions are journaled before
	// admission succeeds, so a restarted server can Recover the jobs a
	// previous life accepted but never finished. Empty disables durability.
	DataDir string
	// StallTimeout, when positive, arms the stuck-solver watchdog: a running
	// job whose solver makes no measurable progress (CDCL conflicts,
	// branch-and-bound nodes, bound improvements) for this long is cancelled
	// — and retried, if MaxRetries allows. Zero disables.
	StallTimeout time.Duration
	// MaxRetries bounds server-side retries of transiently failed jobs (a
	// solver panic, a memory-budget exhaustion, a watchdog kill). Retries run
	// on a degraded profile — solo line-up, no clause sharing, halved memory
	// budget per attempt — with exponential backoff between attempts. Zero
	// disables: the first failure is the job's result.
	MaxRetries int

	// MaxSessions caps concurrently open incremental sessions (each pins
	// one worker slot — see OpenSession); 0 means Workers, negative
	// disables sessions.
	MaxSessions int
	// SessionIdle evicts a session with no Push/Solve activity for this
	// long, releasing its pinned slot; 0 means 5 minutes, negative disables
	// eviction.
	SessionIdle time.Duration
}

// AuditEvent is one entry of the server's admission audit log.
type AuditEvent = serve.AuditEvent

// Server admission errors.
var (
	// ErrServerClosed is returned by Submit after Close (or during Drain).
	ErrServerClosed = serve.ErrClosed
	// ErrServerQueueFull is returned by Submit when ServerConfig.QueueDepth
	// jobs are already admitted and unfinished. Match with errors.Is: the
	// returned error wraps it together with a retry hint (see RetryAfter).
	ErrServerQueueFull = serve.ErrQueueFull
	// ErrServerRateLimited is returned (wrapped, with a retry hint) when a
	// client exceeds ServerConfig.RatePerSec.
	ErrServerRateLimited = serve.ErrRateLimited
	// ErrServerOverQuota is returned (wrapped, with a retry hint) when a
	// client exceeds ServerConfig.ClientQuota.
	ErrServerOverQuota = serve.ErrOverQuota
)

// RetryAfter extracts the retry hint from a shed Submit error (queue full,
// rate limited, over quota); ok is false for errors that carry none.
func RetryAfter(err error) (time.Duration, bool) { return serve.RetryAfter(err) }

// BoundUpdate is one anytime bound improvement streamed by Job.Updates: the
// best proved lower bound and best known upper bound so far. For a job that
// ends Optimal the final update has LB == UB == the optimum.
type BoundUpdate = opt.BoundsEvent

// JobState is a job's lifecycle phase: JobQueued, JobRunning or JobDone.
type JobState = serve.State

// Job states.
const (
	JobQueued  JobState = serve.Queued
	JobRunning JobState = serve.Running
	JobDone    JobState = serve.Done
)

// NewServer starts a solving service. Close it to cancel outstanding jobs
// and release its workers. NewServer panics if cfg.DataDir is set and its
// logs cannot be opened — durable servers should prefer OpenServer, which
// reports the error instead.
func NewServer(cfg ServerConfig) *Server {
	s, err := OpenServer(cfg)
	if err != nil {
		panic(fmt.Sprintf("maxsat: NewServer: %v", err))
	}
	return s
}

// OpenServer starts a solving service, opening the durable result store and
// job journal when cfg.DataDir is set. Recovery of persisted results happens
// here (each re-proved by the certificate checker before admission to the
// cache); replay of interrupted jobs is a separate, explicit step — call
// Recover once the server is otherwise ready.
func OpenServer(cfg ServerConfig) (*Server, error) {
	var (
		rs  *serve.ResultStore
		jl  *serve.Journal
		err error
	)
	if cfg.DataDir != "" {
		if rs, err = serve.OpenResultStore(filepath.Join(cfg.DataDir, "results.log"), nil); err != nil {
			return nil, fmt.Errorf("maxsat: opening result store: %w", err)
		}
		if jl, err = serve.OpenJournal(filepath.Join(cfg.DataDir, "journal.log"), nil); err != nil {
			rs.Close()
			return nil, fmt.Errorf("maxsat: opening job journal: %w", err)
		}
	}
	return &Server{
		s: serve.New(serve.Config{
			Workers:        cfg.Workers,
			QueueDepth:     cfg.QueueDepth,
			CacheEntries:   cfg.CacheEntries,
			DefaultTimeout: cfg.DefaultTimeout,
			RatePerSec:     cfg.RatePerSec,
			Burst:          cfg.Burst,
			ClientQuota:    cfg.ClientQuota,
			HighWater:      cfg.HighWater,
			Audit:          cfg.Audit,
			Store:          rs,
			Journal:        jl,
			StallTimeout:   cfg.StallTimeout,
			MaxRetries:     cfg.MaxRetries,
			MaxSessions:    cfg.MaxSessions,
			SessionIdle:    cfg.SessionIdle,
		}),
		rs:         rs,
		jl:         jl,
		defaultMem: cfg.MemoryBudget,
	}, nil
}

// Job is a handle on one submission. Handles returned for coalesced
// submissions share the underlying work but cancel independently: the solve
// stops only when every handle has cancelled.
type Job struct {
	h    *serve.Handle
	algo Algorithm
}

// Submit admits w for solving under o and returns immediately. The formula
// is snapshotted at submission, so the caller may mutate w afterwards.
// Options.Timeout bounds the solve from the moment it starts running (queue
// time does not count); ServerConfig.DefaultTimeout applies when it is zero.
// Submit fails fast on the errors Solve would return (unknown algorithm,
// ErrWeighted) and on a full queue or closed server. Submissions shed by the
// admission bounds (queue full, rate limited, over quota) fail with an error
// wrapping the matching sentinel and carrying a RetryAfter hint.
func (s *Server) Submit(w *WCNF, o Options) (*Job, error) {
	return s.SubmitAs("", w, o)
}

// SubmitAs is Submit on a named client's account: the per-client rate limit
// and in-flight quota are charged to client, and audit events carry it. The
// empty name is the shared anonymous account that plain Submit uses.
func (s *Server) SubmitAs(client string, w *WCNF, o Options) (*Job, error) {
	spec, algo, err := s.jobSpec(client, w, o)
	if err != nil {
		return nil, err
	}
	h, err := s.s.Submit(spec)
	if err != nil {
		return nil, err
	}
	return &Job{h: h, algo: algo}, nil
}

// jobSpec validates and canonicalizes one submission into the serving
// layer's JobSpec. Shared by SubmitAs and Recover, so a replayed job gets
// byte-identical admission treatment (same OptsKey, same slots, same solve
// closure) as its original submission.
func (s *Server) jobSpec(client string, w *WCNF, o Options) (serve.JobSpec, Algorithm, error) {
	// Validate exactly like Solve would, and resolve AlgoAuto so that an
	// explicit and an automatic submission of the same instance coalesce.
	_, algo, err := buildSolver(w, o)
	if err != nil {
		return serve.JobSpec{}, algo, err
	}
	o.Algorithm = algo
	slots := 1
	if algo == AlgoPortfolio {
		if slots = o.Parallelism; slots <= 0 {
			slots = portfolio.LineupSize(w.Weighted())
		}
		// Canonicalize for coalescing, like AlgoAuto above: Parallelism 0
		// and an explicit full-line-up request describe identical work.
		o.Parallelism = slots
	}
	if o.MemoryBudget == 0 {
		o.MemoryBudget = s.defaultMem
	}
	timeout := o.Timeout
	o.Timeout = 0 // the serving layer owns the deadline
	var payload []byte
	if s.jl != nil {
		payload = encodeWireOptions(o, timeout)
	}
	return serve.JobSpec{
		Formula: w,
		OptsKey: optsKey(o, timeout),
		Slots:   slots,
		Timeout: timeout,
		Meta:    algo,
		Client:  client,
		Payload: payload,
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g serve.Grant) opt.Result {
			ro := o
			if algo == AlgoPortfolio {
				ro.Parallelism = g.Slots
			}
			if g.Attempt > 0 {
				// Server-side retry of a transient failure: whatever sank the
				// previous attempt — memory pressure, a racing member's bug,
				// sharing-induced state — the rerun gets a smaller target.
				// Solo line-up, no cross-member traffic, memory budget halved
				// per extra attempt.
				ro.Parallelism = 1
				ro.ShareClauses = false
				if ro.MemoryBudget > 0 {
					ro.MemoryBudget >>= g.Attempt
				}
			}
			solver, _, err := buildSolver(w, ro)
			if err != nil {
				// Unreachable: the spec was validated above on the same
				// formula and options.
				return opt.Result{Status: opt.StatusUnknown, Cost: -1}
			}
			r := solver.Solve(ctx, w, shared)
			if ro.Certify && (r.Status == opt.StatusOptimal || r.Status == opt.StatusUnsat) {
				// Best effort under the job's own deadline: a solve that
				// finishes but cannot be certified (deadline expired
				// mid-pass) is served uncertified rather than discarded —
				// the certificate endpoint then reports none.
				if cert, err := opt.Certify(ctx, w, r, opt.Options{MemBytes: ro.MemoryBudget}); err == nil {
					r.Certificate = cert
				}
			}
			return r
		},
	}, algo, nil
}

// wireOptions is the durable subset of Options journaled with a submission:
// everything a restarted server needs to rebuild the identical solve.
// (OnImprove is a closure and cannot be persisted; served jobs use
// Job.Updates instead, which replay re-wires automatically.)
type wireOptions struct {
	Algorithm           Algorithm     `json:"alg"`
	Encoding            string        `json:"enc,omitempty"`
	Timeout             time.Duration `json:"to,omitempty"`
	MemoryBudget        int64         `json:"mem,omitempty"`
	MaxConflictsPerCall int64         `json:"conf,omitempty"`
	SkipAtLeast1        bool          `json:"skip,omitempty"`
	Preprocess          bool          `json:"pre,omitempty"`
	Parallelism         int           `json:"par,omitempty"`
	ShareClauses        bool          `json:"share,omitempty"`
	Certify             bool          `json:"cert,omitempty"`
}

func encodeWireOptions(o Options, timeout time.Duration) []byte {
	b, _ := json.Marshal(wireOptions{
		Algorithm: o.Algorithm, Encoding: o.Encoding, Timeout: timeout,
		MemoryBudget: o.MemoryBudget, MaxConflictsPerCall: o.MaxConflictsPerCall,
		SkipAtLeast1: o.SkipAtLeast1, Preprocess: o.Preprocess,
		Parallelism: o.Parallelism, ShareClauses: o.ShareClauses, Certify: o.Certify,
	})
	return b
}

// Recover replays the jobs a previous life journaled but never finished
// (requires ServerConfig.DataDir; a no-op otherwise). Each pending
// submission is re-enqueued under its original job ID, so clients polling
// Job(id) across the restart find their work finished or running, never
// gone. Replay is idempotent: a job whose certified answer is already in the
// recovered result store completes instantly without solving, and duplicate
// pending entries for the same formula coalesce onto one run. Entries whose
// journaled options no longer decode (a format from a different binary
// version) are dropped with an audit event rather than blocking recovery.
//
// Call Recover once, after OpenServer and before reporting readiness.
// It returns when every pending job is re-enqueued, not when they finish.
func (s *Server) Recover() error {
	return s.s.Recover(func(rj serve.RecoveredJob) (serve.JobSpec, error) {
		var wo wireOptions
		if err := json.Unmarshal(rj.Payload, &wo); err != nil {
			return serve.JobSpec{}, fmt.Errorf("maxsat: recovered options: %w", err)
		}
		spec, _, err := s.jobSpec(rj.Client, rj.Formula, Options{
			Algorithm: wo.Algorithm, Encoding: wo.Encoding, Timeout: wo.Timeout,
			MemoryBudget: wo.MemoryBudget, MaxConflictsPerCall: wo.MaxConflictsPerCall,
			SkipAtLeast1: wo.SkipAtLeast1, Preprocess: wo.Preprocess,
			Parallelism: wo.Parallelism, ShareClauses: wo.ShareClauses, Certify: wo.Certify,
		})
		return spec, err
	})
}

// optsKey canonicalizes the options for in-flight coalescing. Every field
// that changes what the job computes or how long it may run participates.
func optsKey(o Options, timeout time.Duration) string {
	return fmt.Sprintf("alg=%s enc=%s conf=%d skip=%t pre=%t par=%d share=%t to=%s mem=%d cert=%t",
		o.Algorithm, o.Encoding, o.MaxConflictsPerCall, o.SkipAtLeast1,
		o.Preprocess, o.Parallelism, o.ShareClauses, timeout, o.MemoryBudget, o.Certify)
}

// Job returns the handle for a previously submitted job by ID (completed
// jobs stay addressable for a bounded time). The returned handle carries no
// cancellation vote.
func (s *Server) Job(id uint64) (*Job, bool) {
	h, ok := s.s.Job(id)
	if !ok {
		return nil, false
	}
	j := &Job{h: h}
	if r, done := h.Result(); done {
		if a, ok := r.Meta.(Algorithm); ok {
			j.algo = a
		}
	}
	return j, true
}

// ServerStats is a snapshot of the service counters: worker occupancy, queue
// depth, submission/completion totals, and cache hit/miss/coalesce traffic.
type ServerStats = serve.Stats

// Stats returns a snapshot of the service counters.
func (s *Server) Stats() ServerStats { return s.s.Stats() }

// Close cancels every queued and running job and waits for their goroutines
// to exit, then closes the durable logs (if any). Outstanding handles remain
// usable (their jobs complete with Status Unknown); subsequent Submits fail.
// Jobs cancelled by Close keep their journal entries: the next life's
// Recover replays them.
func (s *Server) Close() {
	s.s.Close()
	s.closeLogs()
}

// closeLogs flushes and closes the durability logs after the serving layer
// has fully stopped (safe to call twice: Close after Drain is a no-op).
func (s *Server) closeLogs() {
	if s.jl != nil {
		s.jl.Close()
	}
	if s.rs != nil {
		s.rs.Close()
	}
}

// Drain shuts down gracefully: admissions stop immediately (Submit fails
// with ErrServerClosed, ServerStats.Draining turns true) while queued and
// running jobs run to completion and deliver real results to their handles
// and Updates subscribers. When ctx expires first, the remaining jobs are
// cancelled Close-style — they still complete, with their best bounds — and
// Drain returns ctx's error after every worker has unwound. A nil error
// means every job finished within the deadline.
func (s *Server) Drain(ctx context.Context) error {
	err := s.s.Drain(ctx)
	s.closeLogs()
	return err
}

// ID returns the server-assigned job ID (stable across polls, used by the
// HTTP daemon's /jobs/{id} endpoint).
func (j *Job) ID() uint64 { return j.h.ID() }

// Done returns a channel closed when the job completes.
func (j *Job) Done() <-chan struct{} { return j.h.Done() }

// State returns the job's phase and its best-seen bounds so far.
func (j *Job) State() (JobState, BoundUpdate) { return j.h.State() }

// Wait blocks until the job completes or ctx is cancelled. A ctx error
// abandons only this Wait — the job keeps running; use Cancel to withdraw
// the submission itself.
func (j *Job) Wait(ctx context.Context) (Result, error) {
	r, err := j.h.Wait(ctx)
	if err != nil {
		return Result{}, err
	}
	return j.publicResult(r), nil
}

// Result returns the outcome if the job has already completed.
func (j *Job) Result() (Result, bool) {
	r, done := j.h.Result()
	if !done {
		return Result{}, false
	}
	return j.publicResult(r), true
}

func (j *Job) publicResult(r serve.Result) Result {
	if r.Err != nil {
		return Result{Status: Unknown, Cost: -1, Algorithm: j.algo}
	}
	algo := j.algo
	if a, ok := r.Meta.(Algorithm); ok {
		algo = a
	}
	out := fromInternal(r.Result, algo)
	out.Cached = r.Cached
	out.Reused = r.Reused
	return out
}

// Cancel withdraws this handle's interest in the job; the underlying solve
// is cancelled once every coalesced handle has cancelled. The job still
// completes (with the best bounds proved so far) and Wait still returns.
func (j *Job) Cancel() { j.h.Cancel() }

// Updates returns a stream of anytime bound improvements: the best bounds so
// far are replayed as the first update, every later improvement follows, and
// the channel closes when the job completes. The stream is monotone (LB
// never falls, UB never rises) and conflates under a slow reader — only
// intermediate updates are dropped, never the most recent one.
func (j *Job) Updates() <-chan BoundUpdate { return j.h.Subscribe() }
