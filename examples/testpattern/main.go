// Test-pattern generation (ATPG) with MaxSAT.
//
// For a gate fault, build the miter of the good and faulty circuits and
// make the "circuits disagree" assertion the only soft clause:
//
//   - optimum 0  →  the fault is testable and the model IS a test pattern
//     (an input vector on which the faulty circuit misbehaves);
//
//   - optimum 1  →  no input exposes the fault: it is redundant
//     (undetectable), the UNSAT case ATPG tools must prove.
//
//     go run ./examples/testpattern
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/circuit"
	"repro/internal/gen"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	good := circuit.RippleAdder(4)

	// Case 1: a random injected fault (almost always testable).
	bad, fault := circuit.InjectFault(rng, good)
	fmt.Printf("injected fault: %v\n", fault)
	pattern, testable := atpg(good, bad)
	if testable {
		fmt.Printf("fault is testable; generated pattern: %v\n", pattern)
		g := good.OutputsOf(good.Eval(pattern))
		b := bad.OutputsOf(bad.Eval(pattern))
		fmt.Printf("  good outputs:   %v\n  faulty outputs: %v\n", g, b)
	} else {
		fmt.Println("fault is redundant (no test pattern exists)")
	}

	// Case 2: a constructed redundant fault (the gen.ATPGRedundant family).
	in := gen.ATPGRedundant(4)
	r, err := maxsat.Solve(in.W, maxsat.Options{Algorithm: maxsat.AlgoMSU4V2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s: optimum %d — ", in.Name, r.Cost)
	if r.Cost >= 1 {
		fmt.Println("the masked fault is provably undetectable (UNSAT miter)")
	} else {
		fmt.Println("unexpectedly testable?!")
	}
}

// atpg builds the miter WCNF: everything hard except the disagreement
// assertion, then asks MaxSAT. Cost 0 means a pattern exists.
func atpg(good, bad *circuit.Circuit) ([]bool, bool) {
	m := circuit.Miter(good, bad)
	w := maxsat.NewWCNF(0)
	d := wcnfDest{w}
	lits := circuit.Tseitin(d, m)
	w.AddSoft(1, lits[m.Outputs[0]])
	r, err := maxsat.Solve(w, maxsat.Options{Algorithm: maxsat.AlgoMSU4V2})
	if err != nil {
		log.Fatal(err)
	}
	if r.Cost != 0 {
		return nil, false
	}
	pattern := make([]bool, m.NumInputs())
	for i, id := range m.Inputs {
		pattern[i] = r.Model.Lit(lits[id])
	}
	return pattern, true
}

// wcnfDest adapts a WCNF as a hard-clause Tseitin destination.
type wcnfDest struct{ w *maxsat.WCNF }

func (d wcnfDest) NewVar() maxsat.Var {
	v := maxsat.Var(d.w.NumVars)
	d.w.NumVars++
	return v
}

func (d wcnfDest) AddClause(lits ...maxsat.Lit) bool {
	d.w.AddHard(lits...)
	return true
}
