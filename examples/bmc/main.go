// Bounded model checking instances as MaxSAT workloads.
//
// A 4-bit counter's "reaches all-ones" property is checked at increasing
// unrolling depths. Below depth 16 the property is unreachable and the CNF
// is unsatisfiable; MaxSAT quantifies the inconsistency (cost 1: only the
// property assertion must be dropped) and the solver comparison shows the
// core-guided algorithms tracking the underlying SAT cost while branch and
// bound degrades with depth.
//
//	go run ./examples/bmc
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/gen"
)

func main() {
	fmt.Println("BMC: 4-bit counter, property 'counter == 1111' inside k frames")
	fmt.Println("(reachable exactly when k >= 16)")
	fmt.Println()
	for _, k := range []int{8, 12, 15, 16, 20} {
		in := gen.BMCCounter(4, k)
		fmt.Printf("k=%-3d %5d vars %6d clauses: ", k, in.W.NumVars, in.W.NumClauses())
		r, err := maxsat.Solve(in.W, maxsat.Options{Algorithm: maxsat.AlgoMSU4V2, Timeout: 10 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case r.Cost == 0:
			fmt.Printf("cost 0 — property REACHABLE (counterexample trace in %v)\n", r.Elapsed.Round(time.Microsecond))
		default:
			fmt.Printf("cost %d — property unreachable, proof in %v\n", r.Cost, r.Elapsed.Round(time.Microsecond))
		}
		if (r.Cost == 0) != (k >= 16) {
			log.Fatalf("unexpected verdict at depth %d", k)
		}
	}

	fmt.Println("\nsolver comparison at the hardest unsatisfiable depth (k=15):")
	in := gen.BMCCounter(4, 15)
	for _, algo := range []maxsat.Algorithm{maxsat.AlgoMSU4V2, maxsat.AlgoMSU4V1, maxsat.AlgoPBO, maxsat.AlgoBnB} {
		r, err := maxsat.Solve(in.W, maxsat.Options{Algorithm: algo, Timeout: 5 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		verdict := fmt.Sprintf("cost %d", r.Cost)
		if r.Status == maxsat.Unknown {
			verdict = "ABORTED"
		}
		fmt.Printf("  %-8s %-10s %10.3fms\n", algo, verdict, float64(r.Elapsed.Microseconds())/1000)
	}
}
