// Bounded model checking as an incremental MaxSAT session.
//
// A 4-bit counter's "counter == 1111" property is checked at increasing
// unrolling depths. Each depth k differs from depth k-1 by one frame of the
// transition relation plus one property assertion — exactly the shape the
// session API serves: the frame is pushed as a delta (hard clauses + a
// unit-weight soft property clause) and the re-solve resumes the warm
// solver's totalizer and learnt clauses instead of starting over.
//
// The MaxSAT optimum at depth k counts the frames whose property assertion
// must be dropped: k - floor(k/16) for the 4-bit counter (all-ones appears
// at frames 15, 31, ...), so the property is reachable within the window
// exactly when the optimum dips below k.
//
// Every session answer is checked against a from-scratch solve of the same
// accumulated formula — the differential contract the test suite enforces —
// and both are timed, making this a living benchmark of delta re-solve
// versus from-scratch cost.
//
//	go run ./examples/bmc
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/gen"
)

func main() {
	const bits, maxK = 4, 20
	fmt.Println("BMC: 4-bit counter, property 'counter == 1111', one frame per delta")
	fmt.Println("(optimum at depth k is k - floor(k/16); reachable when it dips below k)")
	fmt.Println()

	srv := maxsat.NewServer(maxsat.ServerConfig{Workers: 2})
	defer srv.Close()
	sess, err := srv.OpenSession(context.Background(), nil, maxsat.Options{Algorithm: maxsat.AlgoMSU3})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	frames := gen.BMCCounterFrames(bits, maxK)
	acc := maxsat.NewWCNF(0) // from-scratch mirror of the accumulation
	var sessTotal, scratchTotal time.Duration
	fmt.Printf("%-4s %8s %8s %12s %14s %8s\n", "k", "clauses", "optimum", "session", "from-scratch", "speedup")
	for k := 1; k <= maxK; k++ {
		fr := frames[k-1]
		delta := maxsat.Delta{Hards: fr.Hards}
		if err := sess.Push(delta); err != nil {
			log.Fatal(err)
		}
		if err := sess.AddSoft(1, fr.Prop); err != nil {
			log.Fatal(err)
		}
		for _, c := range fr.Hards {
			acc.AddHard(c...)
		}
		acc.AddSoft(1, fr.Prop)

		start := time.Now()
		job, err := sess.Solve(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		res, err := job.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		sessElapsed := time.Since(start)

		start = time.Now()
		scratch, err := maxsat.Solve(acc, maxsat.Options{Algorithm: maxsat.AlgoMSU3})
		if err != nil {
			log.Fatal(err)
		}
		scratchElapsed := time.Since(start)

		want := int64(k - k/(1<<bits))
		if int64(res.Cost) != want || int64(scratch.Cost) != want {
			log.Fatalf("k=%d: session cost %d, from-scratch cost %d, want %d",
				k, res.Cost, scratch.Cost, want)
		}
		sessTotal += sessElapsed
		scratchTotal += scratchElapsed
		mark := ""
		if res.Reused {
			mark = " (warm)"
		}
		fmt.Printf("k=%-3d %8d %8d %10.3fms %12.3fms %7.1fx%s\n",
			k, len(acc.Clauses), want,
			float64(sessElapsed.Microseconds())/1000,
			float64(scratchElapsed.Microseconds())/1000,
			float64(scratchElapsed)/float64(sessElapsed+1), mark)
	}

	solves, reused := sess.Counters()
	fmt.Printf("\n%d delta solves, %d answered by the warm solver\n", solves, reused)
	fmt.Printf("total: session %.3fms, from-scratch %.3fms (%.1fx)\n",
		float64(sessTotal.Microseconds())/1000,
		float64(scratchTotal.Microseconds())/1000,
		float64(scratchTotal)/float64(sessTotal+1))
	if sessTotal >= scratchTotal {
		fmt.Println("note: session re-solve did not win on this run (tiny instance, timing noise)")
	}
}
