// Server: drive an in-process maxsat.Server end to end — submit a job,
// stream its anytime bound improvements, fetch the result, then show the
// verified-result cache and the in-flight coalescer absorbing resubmissions,
// with client-side retry against the server's admission shedding.
//
//	go run ./examples/server
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand/v2"
	"time"

	"repro"
)

// submitWithRetry is the client pattern for the server's shed responses
// (queue full, rate limited, over quota): exponential backoff with full
// jitter, never retrying earlier than the server's own retry hint. The hint
// is the in-process analog of the Retry-After header cmd/maxsatd attaches to
// its 429 responses — an HTTP client does the same with
// resp.Header.Get("Retry-After"). Jitter matters as much as the backoff:
// shed clients that all sleep the same round number reconverge into the
// same thundering herd that got them shed.
func submitWithRetry(ctx context.Context, srv *maxsat.Server, w *maxsat.WCNF, o maxsat.Options) (*maxsat.Job, int, error) {
	backoff := 5 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for retries := 0; ; retries++ {
		job, err := srv.Submit(w, o)
		if err == nil {
			return job, retries, nil
		}
		if !errors.Is(err, maxsat.ErrServerQueueFull) &&
			!errors.Is(err, maxsat.ErrServerRateLimited) &&
			!errors.Is(err, maxsat.ErrServerOverQuota) {
			return nil, retries, err // a real failure, not admission shedding
		}
		wait := backoff/2 + rand.N(backoff/2+1) // full jitter in [b/2, b]
		if hint, ok := maxsat.RetryAfter(err); ok && hint > wait {
			wait = hint // the server knows when capacity frees up; believe it
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, retries, ctx.Err()
		}
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// pigeonhole builds PHP(p+1, p): p+1 pigeons into p holes. The CNF is
// unsatisfiable and its MaxSAT cost is exactly 1 — but proving that takes
// real search, so the anytime lower bound is visible on the stream.
func pigeonhole(p int) *maxsat.Formula {
	f := maxsat.NewFormula(0)
	pigeons, holes := p+1, p
	v := func(pg, h int) maxsat.Lit { return maxsat.PosLit(maxsat.Var(pg*holes + h)) }
	for pg := 0; pg < pigeons; pg++ {
		c := make([]maxsat.Lit, holes)
		for h := 0; h < holes; h++ {
			c[h] = v(pg, h)
		}
		f.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(v(p1, h).Neg(), v(p2, h).Neg())
			}
		}
	}
	return f
}

func main() {
	srv := maxsat.NewServer(maxsat.ServerConfig{
		Workers:        4,
		CacheEntries:   64,
		DefaultTimeout: time.Minute,
		// A deliberately tight rate limit so the retry loop below has
		// something to push against.
		RatePerSec: 10,
		Burst:      2,
	})
	defer srv.Close()

	w := maxsat.FromFormula(pigeonhole(7))
	fmt.Printf("submitting PHP(8,7): %d vars, %d clauses\n", w.NumVars, w.NumClauses())

	// Submit returns immediately; the job runs on the worker pool.
	job, _, err := submitWithRetry(context.Background(), srv, w, maxsat.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Stream anytime bounds while the solve runs. The channel replays the
	// best bounds so far on subscribe, delivers every improvement (lower
	// bound only rises, upper bound only falls), and closes on completion.
	for e := range job.Updates() {
		switch {
		case e.HasLB && e.HasUB:
			fmt.Printf("  bound: %d <= optimum <= %d\n", e.LB, e.UB)
		case e.HasUB:
			fmt.Printf("  bound: optimum <= %d\n", e.UB)
		case e.HasLB:
			fmt.Printf("  bound: optimum >= %d\n", e.LB)
		}
	}

	res, err := job.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result: %s cost=%d by %s in %v (cached=%v)\n",
		res.Status, res.Cost, res.Algorithm, res.Elapsed.Round(time.Millisecond), res.Cached)

	// Resubmit the same formula repeatedly under a different algorithm: the
	// verified optimum is a fact about the formula, so the cache answers
	// instantly — but even cache hits cost a rate-limit token, so the burst
	// is shed with 429-style errors and the retry loop absorbs them.
	totalRetries := 0
	for i := 0; i < 8; i++ {
		again, retries, err := submitWithRetry(context.Background(), srv, w,
			maxsat.Options{Algorithm: maxsat.AlgoPortfolio})
		if err != nil {
			log.Fatal(err)
		}
		totalRetries += retries
		res2, err := again.Wait(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("resubmit: %s cost=%d (cached=%v)\n", res2.Status, res2.Cost, res2.Cached)
		}
	}

	st := srv.Stats()
	fmt.Printf("stats: submitted=%d cache hits=%d misses=%d coalesced=%d shed=%d (absorbed by %d backoff retries)\n",
		st.Submitted, st.CacheHits, st.CacheMisses, st.Coalesced, st.RateLimited, totalRetries)
}
