// Server: drive an in-process maxsat.Server end to end — submit a job,
// stream its anytime bound improvements, fetch the result, then show the
// verified-result cache and the in-flight coalescer absorbing resubmissions.
//
//	go run ./examples/server
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
)

// pigeonhole builds PHP(p+1, p): p+1 pigeons into p holes. The CNF is
// unsatisfiable and its MaxSAT cost is exactly 1 — but proving that takes
// real search, so the anytime lower bound is visible on the stream.
func pigeonhole(p int) *maxsat.Formula {
	f := maxsat.NewFormula(0)
	pigeons, holes := p+1, p
	v := func(pg, h int) maxsat.Lit { return maxsat.PosLit(maxsat.Var(pg*holes + h)) }
	for pg := 0; pg < pigeons; pg++ {
		c := make([]maxsat.Lit, holes)
		for h := 0; h < holes; h++ {
			c[h] = v(pg, h)
		}
		f.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(v(p1, h).Neg(), v(p2, h).Neg())
			}
		}
	}
	return f
}

func main() {
	srv := maxsat.NewServer(maxsat.ServerConfig{
		Workers:        4,
		CacheEntries:   64,
		DefaultTimeout: time.Minute,
	})
	defer srv.Close()

	w := maxsat.FromFormula(pigeonhole(7))
	fmt.Printf("submitting PHP(8,7): %d vars, %d clauses\n", w.NumVars, w.NumClauses())

	// Submit returns immediately; the job runs on the worker pool.
	job, err := srv.Submit(w, maxsat.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Stream anytime bounds while the solve runs. The channel replays the
	// best bounds so far on subscribe, delivers every improvement (lower
	// bound only rises, upper bound only falls), and closes on completion.
	for e := range job.Updates() {
		switch {
		case e.HasLB && e.HasUB:
			fmt.Printf("  bound: %d <= optimum <= %d\n", e.LB, e.UB)
		case e.HasUB:
			fmt.Printf("  bound: optimum <= %d\n", e.UB)
		case e.HasLB:
			fmt.Printf("  bound: optimum >= %d\n", e.LB)
		}
	}

	res, err := job.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("result: %s cost=%d by %s in %v (cached=%v)\n",
		res.Status, res.Cost, res.Algorithm, res.Elapsed.Round(time.Millisecond), res.Cached)

	// Resubmit the same formula under a different algorithm: the verified
	// optimum is a fact about the formula, so the cache answers instantly.
	again, err := srv.Submit(w, maxsat.Options{Algorithm: maxsat.AlgoPortfolio})
	if err != nil {
		log.Fatal(err)
	}
	res2, err := again.Wait(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resubmit: %s cost=%d (cached=%v)\n", res2.Status, res2.Cost, res2.Cached)

	st := srv.Stats()
	fmt.Printf("stats: submitted=%d cache hits=%d misses=%d coalesced=%d\n",
		st.Submitted, st.CacheHits, st.CacheMisses, st.Coalesced)
}
