// Quickstart: solve the worked example of the paper (Section 3.3) with the
// public API, compare all algorithms, and solve a small weighted partial
// instance.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Example 2 of the paper:
	// φ = (x1)(¬x1∨¬x2)(x2)(¬x1∨¬x3)(x3)(¬x2∨¬x3)(x1∨¬x4)(¬x1∨x4)
	f := maxsat.NewFormula(4)
	f.AddClause(maxsat.FromDIMACS(1))
	f.AddClause(maxsat.FromDIMACS(-1), maxsat.FromDIMACS(-2))
	f.AddClause(maxsat.FromDIMACS(2))
	f.AddClause(maxsat.FromDIMACS(-1), maxsat.FromDIMACS(-3))
	f.AddClause(maxsat.FromDIMACS(3))
	f.AddClause(maxsat.FromDIMACS(-2), maxsat.FromDIMACS(-3))
	f.AddClause(maxsat.FromDIMACS(1), maxsat.FromDIMACS(-4))
	f.AddClause(maxsat.FromDIMACS(-1), maxsat.FromDIMACS(4))

	fmt.Println("Paper Example 2: 8 clauses over x1..x4")
	res, err := maxsat.SolveFormula(f, maxsat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s with %s: cost %d, MaxSAT solution %d of %d clauses\n",
		res.Status, res.Algorithm, res.Cost, res.MaxSatisfied(f.NumClauses()), f.NumClauses())
	fmt.Printf("  witness: x1=%v x2=%v x3=%v x4=%v\n",
		res.Model[0], res.Model[1], res.Model[2], res.Model[3])

	fmt.Println("\nEvery algorithm agrees on the optimum:")
	for _, algo := range maxsat.Algorithms() {
		r, err := maxsat.SolveFormula(f, maxsat.Options{Algorithm: algo})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s cost=%d iterations=%d (sat %d / unsat %d) %v\n",
			r.Algorithm, r.Cost, r.Iterations, r.SatCalls, r.UnsatCalls, r.Elapsed.Round(0))
	}

	// Weighted partial MaxSAT: hard structure, weighted preferences.
	fmt.Println("\nWeighted partial instance (hard: x1∨x2; soft: ¬x1 weight 3, ¬x2 weight 1):")
	w := maxsat.NewWCNF(2)
	w.AddHard(maxsat.FromDIMACS(1), maxsat.FromDIMACS(2))
	w.AddSoft(3, maxsat.FromDIMACS(-1))
	w.AddSoft(1, maxsat.FromDIMACS(-2))
	rw, err := maxsat.Solve(w, maxsat.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s with %s: cost %d (sets x2, pays the weight-1 clause)\n",
		rw.Status, rw.Algorithm, rw.Cost)
}
