// Design debugging with MaxSAT — the application motivating the DATE 2008
// paper (Safarpour et al., FMCAD 2007, reference [24]).
//
// A golden 4-bit adder gets one injected gate fault. The circuit's observed
// misbehaviour on test vectors becomes hard clauses; each gate's correctness
// is a soft clause. The MaxSAT optimum is the size of the smallest
// diagnosis, and the falsified soft clauses point at the suspect gates.
//
//	go run ./examples/debugging
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/circuit"
	"repro/internal/gen"
)

func main() {
	golden := circuit.RippleAdder(4)
	fmt.Printf("golden circuit: 4-bit ripple adder, %d gates\n", golden.NumGates())

	di := gen.DesignDebugDetailed(7, golden, 6)
	fmt.Printf("injected fault: %v\n", di.Fault)
	fmt.Printf("debug instance: %d vars, %d hard clauses (I/O behaviour on %d vectors), %d soft (gate guards)\n",
		di.W.NumVars, di.W.NumHard(), len(di.Vectors), di.W.NumSoft())

	res, err := maxsat.Solve(di.W, maxsat.Options{Algorithm: maxsat.AlgoMSU4V2})
	if err != nil {
		log.Fatal(err)
	}
	if res.Status != maxsat.Optimal {
		log.Fatalf("diagnosis failed: %v", res.Status)
	}
	fmt.Printf("\nmsu4-v2: minimal diagnosis has %d gate(s) "+
		"(%d iterations: %d SAT + %d UNSAT outcomes)\n",
		res.Cost, res.Iterations, res.SatCalls, res.UnsatCalls)

	// Falsified soft clauses = suspended guards = suspect gates.
	softIdx := 0
	for _, c := range di.W.Clauses {
		if c.Hard() {
			continue
		}
		if !res.Model.Satisfies(c.Clause) {
			gate := di.SuspectGates[softIdx]
			marker := ""
			if gate == di.Fault.Gate {
				marker = "   <-- the injected fault site"
			}
			fmt.Printf("suspect: gate %d (%v in the faulty netlist)%s\n",
				gate, di.Bad.Gates[gate].Type, marker)
		}
		softIdx++
	}

	// Compare with the branch-and-bound baseline on the same instance.
	rb, err := maxsat.Solve(di.W, maxsat.Options{Algorithm: maxsat.AlgoBnB, Timeout: res.Elapsed*100 + 1e9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbaseline maxsatz on the same instance: %v (cost %d) in %v vs msu4-v2's %v\n",
		rb.Status, rb.Cost, rb.Elapsed.Round(0), res.Elapsed.Round(0))
}
