// Equivalence checking instances as MaxSAT workloads — the dominant family
// in the paper's 691-instance industrial suite.
//
// Two structurally different but functionally equal adders are combined
// into a miter whose "circuits disagree" output is asserted: an
// unsatisfiable CNF. Read as plain MaxSAT, its optimum is 1 (retract the
// assertion and everything else is realizable), and the interesting
// comparison is *time to prove it* per algorithm — the paper's Figure 1/2
// phenomenon in miniature.
//
//	go run ./examples/equivalence
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/gen"
)

func main() {
	for _, bits := range []int{4, 8, 12} {
		in := gen.EquivMiter(bits)
		fmt.Printf("%s: %d vars, %d clauses (ripple vs carry-select, %d-bit)\n",
			in.Name, in.W.NumVars, in.W.NumClauses(), bits)
		for _, algo := range []maxsat.Algorithm{
			maxsat.AlgoMSU4V2, maxsat.AlgoMSU4V1, maxsat.AlgoPBO, maxsat.AlgoBnB,
		} {
			w := in.W.Clone()
			r, err := maxsat.Solve(w, maxsat.Options{Algorithm: algo, Timeout: 5 * time.Second})
			if err != nil {
				log.Fatal(err)
			}
			verdict := fmt.Sprintf("cost %d", r.Cost)
			if r.Status == maxsat.Unknown {
				verdict = "ABORTED (timeout)"
			}
			fmt.Printf("  %-8s %-18s %10.3fms\n",
				algo, verdict, float64(r.Elapsed.Microseconds())/1000)
		}
		fmt.Println()
	}
	fmt.Println("note how the core-guided algorithms stay flat while the")
	fmt.Println("branch-and-bound baseline's time explodes with circuit size —")
	fmt.Println("the shape of the paper's Table 1 and Figure 1.")
}
