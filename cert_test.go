package maxsat

// End-to-end certification tests: every instance of the gen suite
// (unweighted and weighted) solved with Options.Certify must emit a
// certificate the independent internal/proof checker validates — including
// runs with preprocessing, clause sharing, and portfolio winners — and the
// served (cached) path must re-validate certificates rather than trust
// them.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/gen"
)

// certInstances is the certification matrix input: the full unweighted and
// weighted generator suites.
func certInstances(t *testing.T) []gen.Instance {
	insts := append(gen.Suite(42), gen.WeightedSuite(42)...)
	if testing.Short() {
		insts = insts[:8]
	}
	return insts
}

func solveCertified(t *testing.T, in gen.Instance, o Options) Result {
	t.Helper()
	o.Certify = true
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Minute
	}
	r, err := Solve(in.W, o)
	if err != nil {
		t.Fatalf("%s: %v", in.Name, err)
	}
	if r.Status == Unknown {
		t.Fatalf("%s: budget exhausted before the optimum (alg %s)", in.Name, r.Algorithm)
	}
	if r.Certificate == nil {
		t.Fatalf("%s: no certificate on a %v result", in.Name, r.Status)
	}
	if err := CheckCertificate(in.W, r.Certificate); err != nil {
		t.Fatalf("%s: certificate rejected: %v", in.Name, err)
	}
	if in.KnownCost >= 0 && r.Status == Optimal && r.Cost != in.KnownCost {
		t.Fatalf("%s: certified cost %d, known %d", in.Name, r.Cost, in.KnownCost)
	}
	return r
}

// TestCertifyGenSuite certifies every suite instance under the default
// algorithm selection.
func TestCertifyGenSuite(t *testing.T) {
	for _, in := range certInstances(t) {
		in := in
		t.Run(in.Name, func(t *testing.T) {
			t.Parallel()
			solveCertified(t, in, Options{})
		})
	}
}

// TestCertifyPreprocessShareAndPortfolio exercises the trust boundaries the
// certificate must be independent of: the preprocessor's rewrites, the
// sharing bus, and portfolio selection. A subset keeps the matrix fast; the
// point is configuration coverage, not instance coverage (TestCertifyGenSuite
// covers the instances).
func TestCertifyPreprocessShareAndPortfolio(t *testing.T) {
	insts := certInstances(t)
	small := insts[:0:0]
	for _, in := range insts {
		if in.W.NumVars <= 120 && in.W.NumClauses() <= 600 {
			small = append(small, in)
		}
	}
	configs := []struct {
		name string
		o    Options
	}{
		{"pre", Options{Preprocess: true}},
		{"portfolio-share", Options{Algorithm: AlgoPortfolio, ShareClauses: true, Parallelism: 4}},
		{"oll-pre", Options{Algorithm: AlgoOLL, Preprocess: true}},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for _, in := range small {
				in := in
				t.Run(in.Name, func(t *testing.T) {
					t.Parallel()
					r := solveCertified(t, in, cfg.o)
					if cfg.name == "portfolio-share" && r.Winner == "" && r.Status == Optimal {
						t.Logf("%s: portfolio verdict with no recorded winner", in.Name)
					}
				})
			}
		})
	}
}

// TestCertifyUnsatHards certifies an UNSATISFIABLE verdict (conflicting
// hard clauses).
func TestCertifyUnsatHards(t *testing.T) {
	php := gen.Pigeonhole(4)
	w := cnf.NewWCNF(php.W.NumVars)
	for _, c := range php.W.Clauses {
		w.AddHard(c.Clause...)
	}
	w.AddSoft(1, PosLit(0))
	r := solveCertified(t, gen.Instance{Name: "php4-hard", W: w, KnownCost: -1}, Options{Algorithm: AlgoOLL})
	if r.Status != Unsatisfiable {
		t.Fatalf("status %v, want UNSATISFIABLE", r.Status)
	}
}

// TestCertifyOffByDefault pins the opt-in: without Options.Certify no
// certificate is produced.
func TestCertifyOffByDefault(t *testing.T) {
	in := gen.Pigeonhole(3)
	r, err := Solve(in.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Certificate != nil {
		t.Fatal("certificate produced without Options.Certify")
	}
}

// TestServerCertifiedSubmissions runs the served path: a cert=1 submission
// yields a validated certificate, and a resubmission served from the cache
// carries one that still validates.
func TestServerCertifiedSubmissions(t *testing.T) {
	srv := NewServer(ServerConfig{Workers: 2, CacheEntries: 16})
	defer srv.Close()

	in := gen.Pigeonhole(4)
	o := Options{Certify: true}
	job, err := srv.Submit(in.W, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.Certificate == nil {
		t.Fatalf("first solve: status %v, cert %d bytes", res.Status, len(res.Certificate))
	}
	if err := CheckCertificate(in.W, res.Certificate); err != nil {
		t.Fatalf("served certificate rejected: %v", err)
	}

	again, err := srv.Submit(in.W, o)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := again.Wait(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Fatal("resubmission did not hit the cache")
	}
	if res2.Certificate == nil {
		t.Fatal("cache hit dropped the certificate")
	}
	if err := CheckCertificate(in.W, res2.Certificate); err != nil {
		t.Fatalf("cached certificate rejected: %v", err)
	}
	if !bytes.Equal(res.Certificate, res2.Certificate) {
		t.Fatal("cache hit served a different certificate")
	}
}
