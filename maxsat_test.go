package maxsat

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/gen"
)

// paperFormula is Example 2 of the paper (§3.3): MaxSAT solution 6 of 8.
func paperFormula() *Formula {
	f := NewFormula(4)
	f.AddClause(FromDIMACS(1))
	f.AddClause(FromDIMACS(-1), FromDIMACS(-2))
	f.AddClause(FromDIMACS(2))
	f.AddClause(FromDIMACS(-1), FromDIMACS(-3))
	f.AddClause(FromDIMACS(3))
	f.AddClause(FromDIMACS(-2), FromDIMACS(-3))
	f.AddClause(FromDIMACS(1), FromDIMACS(-4))
	f.AddClause(FromDIMACS(-1), FromDIMACS(4))
	return f
}

func TestSolveFormulaAllAlgorithms(t *testing.T) {
	f := paperFormula()
	for _, algo := range Algorithms() {
		o := Options{Algorithm: algo}
		r, err := SolveFormula(f, o)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if r.Status != Optimal || r.Cost != 2 {
			t.Fatalf("%s: status %v cost %d, want optimal 2", algo, r.Status, r.Cost)
		}
		if r.MaxSatisfied(f.NumClauses()) != 6 {
			t.Fatalf("%s: MaxSatisfied != 6", algo)
		}
		if r.Algorithm != algo {
			t.Fatalf("result algorithm %q, want %q", r.Algorithm, algo)
		}
		if len(r.Model) < f.NumVars {
			t.Fatalf("%s: model too short", algo)
		}
	}
}

func TestAutoRouting(t *testing.T) {
	// Unweighted routes to msu4-v2.
	r, err := SolveFormula(paperFormula(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Algorithm != AlgoMSU4V2 {
		t.Fatalf("auto picked %q for unweighted, want msu4-v2", r.Algorithm)
	}
	// Weighted routes to pbo.
	w := NewWCNF(1)
	w.AddSoft(5, FromDIMACS(1))
	w.AddSoft(2, FromDIMACS(-1))
	rw, err := Solve(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rw.Algorithm != AlgoPBO {
		t.Fatalf("auto picked %q for weighted, want pbo", rw.Algorithm)
	}
	if rw.Cost != 2 {
		t.Fatalf("weighted optimum %d, want 2", rw.Cost)
	}
}

func TestWeightedRejectedByCoreGuided(t *testing.T) {
	w := NewWCNF(1)
	w.AddSoft(5, FromDIMACS(1))
	for _, algo := range []Algorithm{AlgoMSU1, AlgoMSU2, AlgoMSU3, AlgoMSU4V1, AlgoMSU4V2, AlgoMSU4} {
		if _, err := Solve(w, Options{Algorithm: algo}); err != ErrWeighted {
			t.Fatalf("%s: err = %v, want ErrWeighted", algo, err)
		}
	}
	// BnB, PBO and the weighted core-guided engines handle weights.
	for _, algo := range []Algorithm{AlgoPBO, AlgoPBOBin, AlgoBnB, AlgoWMSU1, AlgoWMSU4, AlgoOLL} {
		if _, err := Solve(w, Options{Algorithm: algo}); err != nil {
			t.Fatalf("%s: unexpected error %v", algo, err)
		}
	}
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := SolveFormula(paperFormula(), Options{Algorithm: "zchaff"}); err == nil {
		t.Fatal("unknown algorithm should error")
	}
}

func TestMSU4EncodingSelection(t *testing.T) {
	for _, enc := range []string{"bdd", "sorter", "seq", "totalizer"} {
		r, err := SolveFormula(paperFormula(), Options{Algorithm: AlgoMSU4, Encoding: enc})
		if err != nil {
			t.Fatalf("encoding %s: %v", enc, err)
		}
		if r.Cost != 2 {
			t.Fatalf("encoding %s: cost %d", enc, r.Cost)
		}
	}
	if _, err := SolveFormula(paperFormula(), Options{Algorithm: AlgoMSU4, Encoding: "nope"}); err == nil {
		t.Fatal("bad encoding should error")
	}
}

func TestSolveReader(t *testing.T) {
	in := "p cnf 1 2\n1 0\n-1 0\n"
	r, err := SolveReader(strings.NewReader(in), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cost != 1 {
		t.Fatalf("cost %d, want 1", r.Cost)
	}
	if _, err := SolveReader(strings.NewReader("garbage"), Options{}); err == nil {
		t.Fatal("parse error should propagate")
	}
}

func TestSolveFileMissing(t *testing.T) {
	if _, err := SolveFile("/nonexistent/path.cnf", Options{}); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestTimeoutYieldsUnknown(t *testing.T) {
	// A 1 ns timeout has always expired by the first loop check.
	r, err := SolveFormula(paperFormula(), Options{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Unknown {
		t.Fatalf("status %v, want Unknown with expired timeout", r.Status)
	}
	if r.Status.String() != "UNKNOWN" {
		t.Fatal("status string")
	}
}

// TestPortfolioViaFacade is the acceptance check: SolveFormula with
// AlgoPortfolio and Parallelism >= 2 proves the same optima as msu4-v2 on
// generator-suite instances.
func TestPortfolioViaFacade(t *testing.T) {
	insts := []gen.Instance{
		gen.Pigeonhole(5),
		gen.RandomKSAT(55, 18, 3, 6.0),
		gen.EquivMiter(8),
		gen.BMCCounter(4, 10),
		gen.Coloring(9, 10, 26, 3),
	}
	for _, in := range insts {
		f := NewFormula(in.W.NumVars)
		for _, c := range in.W.Clauses {
			f.AddClause(c.Clause...)
		}
		ref, err := SolveFormula(f, Options{Algorithm: AlgoMSU4V2})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Status != Optimal {
			t.Fatalf("%s: msu4-v2 %v", in.Name, ref.Status)
		}
		r, err := SolveFormula(f, Options{Algorithm: AlgoPortfolio, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != Optimal || r.Cost != ref.Cost {
			t.Fatalf("%s: portfolio status %v cost %d, msu4-v2 found %d",
				in.Name, r.Status, r.Cost, ref.Cost)
		}
		if r.Algorithm != AlgoPortfolio || r.Winner == "" {
			t.Fatalf("%s: algorithm %q winner %q", in.Name, r.Algorithm, r.Winner)
		}
		if len(r.Model) < f.NumVars {
			t.Fatalf("%s: model too short", in.Name)
		}
	}
}

func TestSolveContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{AlgoMSU4V2, AlgoPortfolio} {
		r, err := SolveContext(ctx, FromFormula(paperFormula()), Options{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != Unknown {
			t.Fatalf("%s: status %v, want Unknown under cancelled context", algo, r.Status)
		}
	}
}

func TestResultStringFacade(t *testing.T) {
	r, err := SolveFormula(paperFormula(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := r.String()
	if !strings.Contains(s, "OPTIMAL") || !strings.Contains(s, "cost=2") {
		t.Fatalf("String() = %q", s)
	}
}

func TestHardUnsatStatus(t *testing.T) {
	w := NewWCNF(1)
	w.AddHard(FromDIMACS(1))
	w.AddHard(FromDIMACS(-1))
	w.AddSoft(1, FromDIMACS(1))
	for _, algo := range []Algorithm{AlgoMSU4V2, AlgoPBO, AlgoBnB} {
		r, err := Solve(w, Options{Algorithm: algo})
		if err != nil {
			t.Fatal(err)
		}
		if r.Status != Unsatisfiable {
			t.Fatalf("%s: status %v, want Unsatisfiable", algo, r.Status)
		}
	}
}

func TestPublicAPIAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for iter := 0; iter < 25; iter++ {
		f := NewFormula(3 + rng.Intn(7))
		for i := 0; i < 5+rng.Intn(20); i++ {
			width := 1 + rng.Intn(3)
			var c []Lit
			for j := 0; j < width; j++ {
				c = append(c, NewLit(Var(rng.Intn(f.NumVars)), rng.Intn(2) == 0))
			}
			f.AddClause(c...)
		}
		wantSat, _ := brute.MaxSAT(f)
		want := Weight(f.NumClauses() - wantSat)
		for _, algo := range Algorithms() {
			r, err := SolveFormula(f, Options{Algorithm: algo})
			if err != nil {
				t.Fatal(err)
			}
			if r.Cost != want {
				t.Fatalf("iter %d %s: cost %d, want %d", iter, algo, r.Cost, want)
			}
			cost, hardOK := cnf.FromFormula(f).CostOf(r.Model[:f.NumVars])
			if !hardOK || cost != r.Cost {
				t.Fatalf("iter %d %s: model does not witness cost", iter, algo)
			}
		}
	}
}

func TestSkipAtLeast1Option(t *testing.T) {
	r, err := SolveFormula(paperFormula(), Options{Algorithm: AlgoMSU4V2, SkipAtLeast1: true})
	if err != nil || r.Cost != 2 {
		t.Fatalf("SkipAtLeast1: cost %d err %v", r.Cost, err)
	}
}

func TestWMSU1ViaFacade(t *testing.T) {
	w := NewWCNF(1)
	w.AddSoft(5, FromDIMACS(1))
	w.AddSoft(2, FromDIMACS(-1))
	r, err := Solve(w, Options{Algorithm: AlgoWMSU1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || r.Cost != 2 {
		t.Fatalf("wmsu1: status %v cost %d, want optimal 2", r.Status, r.Cost)
	}
	// And on unweighted instances it behaves like msu1.
	ru, err := SolveFormula(paperFormula(), Options{Algorithm: AlgoWMSU1})
	if err != nil || ru.Cost != 2 {
		t.Fatalf("wmsu1 unweighted: cost %d err %v", ru.Cost, err)
	}
}

func TestWMSU4ViaFacade(t *testing.T) {
	w := NewWCNF(1)
	w.AddSoft(5, FromDIMACS(1))
	w.AddSoft(2, FromDIMACS(-1))
	r, err := Solve(w, Options{Algorithm: AlgoWMSU4})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || r.Cost != 2 {
		t.Fatalf("wmsu4: status %v cost %d, want optimal 2", r.Status, r.Cost)
	}
}

func TestOLLViaFacade(t *testing.T) {
	in := gen.SelectionWeighted(3, 3, 4)
	r, err := Solve(in.W, Options{Algorithm: AlgoOLL})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || r.Cost != in.KnownCost {
		t.Fatalf("oll: status %v cost %d, want optimal %d", r.Status, r.Cost, in.KnownCost)
	}
}

// TestOnImproveStreamsBounds checks the anytime observer: every bound
// improvement of the solve is delivered, monotonically, and the last
// upper bound matches the proved optimum.
func TestOnImproveStreamsBounds(t *testing.T) {
	var mu sync.Mutex
	var events []BoundUpdate
	in := gen.PigeonholeWeighted(4)
	r, err := Solve(in.W, Options{
		Algorithm: AlgoOLL,
		OnImprove: func(e BoundUpdate) {
			mu.Lock()
			events = append(events, e)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Status != Optimal || r.Cost != in.KnownCost {
		t.Fatalf("status %v cost %d, want optimal %d", r.Status, r.Cost, in.KnownCost)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) == 0 {
		t.Fatal("no bound updates delivered")
	}
	var lb, ub Weight = -1, -1
	for _, e := range events {
		if e.HasLB {
			if lb >= 0 && e.LB < lb {
				t.Fatalf("lower bound regressed: %d -> %d", lb, e.LB)
			}
			lb = e.LB
		}
		if e.HasUB {
			if ub >= 0 && e.UB > ub {
				t.Fatalf("upper bound regressed: %d -> %d", ub, e.UB)
			}
			ub = e.UB
		}
	}
	if ub != r.Cost {
		t.Fatalf("final streamed UB %d, proved optimum %d", ub, r.Cost)
	}
}
