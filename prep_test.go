package maxsat

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/brute"
	"repro/internal/gen"
	"repro/internal/opt"
)

// TestPreprocessedMatchesRawFamilies runs msu4, pbo and the portfolio (the
// algorithm families the preprocessing pipeline accelerates) with and
// without Options.Preprocess across the generator families, asserting the
// proved optimum is identical and every preprocessed-run model is valid for
// the ORIGINAL instance (reconstruction round-trip).
func TestPreprocessedMatchesRawFamilies(t *testing.T) {
	insts := []gen.Instance{
		gen.EquivMiter(6),
		gen.BMCCounter(3, 8),
		gen.BMCShift(6, 6),
		gen.Coloring(7, 8, 20, 3),
		gen.Pigeonhole(4),
		gen.RandomKSAT(3, 14, 3, 5.0),
		gen.ATPGRedundant(3),
	}
	algos := []Algorithm{AlgoMSU4V2, AlgoPBO, AlgoPBOBin, AlgoPortfolio}
	for _, in := range insts {
		for _, algo := range algos {
			raw, err := Solve(in.W.Clone(), Options{Algorithm: algo, Timeout: 30 * time.Second, Parallelism: 3})
			if err != nil {
				t.Fatalf("%s/%s raw: %v", in.Name, algo, err)
			}
			pre, err := Solve(in.W.Clone(), Options{Algorithm: algo, Timeout: 30 * time.Second, Parallelism: 3, Preprocess: true})
			if err != nil {
				t.Fatalf("%s/%s pre: %v", in.Name, algo, err)
			}
			if raw.Status != Optimal || pre.Status != Optimal {
				t.Fatalf("%s/%s: status raw=%v pre=%v", in.Name, algo, raw.Status, pre.Status)
			}
			if raw.Cost != pre.Cost {
				t.Fatalf("%s/%s: cost drift raw=%d pre=%d", in.Name, algo, raw.Cost, pre.Cost)
			}
			if in.KnownCost >= 0 && pre.Cost != in.KnownCost {
				t.Fatalf("%s/%s: preprocessed cost %d, known optimum %d", in.Name, algo, pre.Cost, in.KnownCost)
			}
			if !opt.VerifyModel(in.W, opt.Result{Cost: pre.Cost, Model: pre.Model}) {
				t.Fatalf("%s/%s: preprocessed model invalid on original instance", in.Name, algo)
			}
		}
	}
}

// TestPreprocessedMatchesRawWeighted covers the weighted algorithms.
func TestPreprocessedMatchesRawWeighted(t *testing.T) {
	// Sizes are modest: branch and bound pays for the selector indirection
	// (its unit-propagation lower bound sees shells, not the softs), and
	// the -race job runs this too.
	insts := []gen.Instance{
		gen.ColoringWeighted(3, 6, 13, 3, 5),
		gen.ColoringWeighted(9, 7, 15, 3, 4),
	}
	algos := []Algorithm{AlgoWMSU1, AlgoWMSU4, AlgoPBO, AlgoBnB, AlgoPortfolio}
	for _, in := range insts {
		for _, algo := range algos {
			raw, err := Solve(in.W.Clone(), Options{Algorithm: algo, Timeout: 30 * time.Second, Parallelism: 3})
			if err != nil {
				t.Fatalf("%s/%s raw: %v", in.Name, algo, err)
			}
			pre, err := Solve(in.W.Clone(), Options{Algorithm: algo, Timeout: 30 * time.Second, Parallelism: 3, Preprocess: true})
			if err != nil {
				t.Fatalf("%s/%s pre: %v", in.Name, algo, err)
			}
			if raw.Status != Optimal || pre.Status != Optimal || raw.Cost != pre.Cost {
				t.Fatalf("%s/%s: raw %v cost %d, pre %v cost %d",
					in.Name, algo, raw.Status, raw.Cost, pre.Status, pre.Cost)
			}
			if !opt.VerifyModel(in.W, opt.Result{Cost: pre.Cost, Model: pre.Model}) {
				t.Fatalf("%s/%s: preprocessed model invalid on original instance", in.Name, algo)
			}
		}
	}
}

// TestPreprocessedQuickRandom is the quick-check: random small weighted
// partial instances, every preprocessing-capable algorithm against brute
// force, with original-formula model verification.
func TestPreprocessedQuickRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	algos := []Algorithm{AlgoMSU4V2, AlgoMSU3, AlgoPBO, AlgoPBOBin, AlgoBnB}
	for iter := 0; iter < 80; iter++ {
		vars := 3 + rng.Intn(5)
		w := NewWCNF(vars)
		for i := 0; i < 4+rng.Intn(12); i++ {
			width := 1 + rng.Intn(3)
			var c []Lit
			for j := 0; j < width; j++ {
				c = append(c, NewLit(Var(rng.Intn(vars)), rng.Intn(2) == 0))
			}
			if rng.Intn(4) == 0 {
				w.AddHard(c...)
			} else {
				w.AddSoft(1, c...)
			}
		}
		want, _, feasible := brute.MinCostWCNF(w)
		for _, algo := range algos {
			r, err := Solve(w.Clone(), Options{Algorithm: algo, Preprocess: true, Timeout: 30 * time.Second})
			if err != nil {
				t.Fatalf("iter %d %s: %v", iter, algo, err)
			}
			if !feasible {
				if r.Status != Unsatisfiable {
					t.Fatalf("iter %d %s: got %v on infeasible instance", iter, algo, r.Status)
				}
				continue
			}
			if r.Status != Optimal || r.Cost != want {
				t.Fatalf("iter %d %s: got %v cost %d, want optimal %d\n%v",
					iter, algo, r.Status, r.Cost, want, w.Clauses)
			}
			cost, hardOK := w.CostOf(r.Model[:w.NumVars])
			if !hardOK || cost != r.Cost {
				t.Fatalf("iter %d %s: model cost %d (hardOK=%v) disagrees with %d",
					iter, algo, cost, hardOK, r.Cost)
			}
		}
	}
}
