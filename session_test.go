package maxsat

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
)

// sessionScript drives one session through a randomized delta script and
// checks every intermediate solve against a from-scratch Solve of a
// test-maintained mirror of the accumulation — the differential contract:
// a delta re-solve answers exactly like a fresh solve.
type sessionScript struct {
	t    *testing.T
	name string
	rng  *rand.Rand
	opts Options

	sess    *Session
	acc     *WCNF // mirror: base plus every pushed clause, reweights applied
	softIdx []int // soft index (push order) → clause index in acc
	assume  []Lit // active assumptions

	weightedOK bool // the algorithm accepts non-unit weights
	reweighted bool // a reweight happened (warm solver retired)
	coldSolves int  // solves with active assumptions (warm path bypassed)
	solves     int
}

func (sc *sessionScript) push(d Delta) {
	sc.t.Helper()
	if err := sc.sess.Push(d); err != nil {
		sc.t.Fatalf("%s: push: %v", sc.name, err)
	}
	for _, c := range d.Hards {
		sc.acc.AddHard(c...)
	}
	for _, c := range d.Softs {
		sc.softIdx = append(sc.softIdx, len(sc.acc.Clauses))
		sc.acc.AddSoft(c.Weight, c.Clause...)
	}
	for _, rw := range d.Reweights {
		sc.acc.Clauses[sc.softIdx[rw.Soft]].Weight = rw.Weight
		sc.reweighted = true
	}
	if d.SetAssumptions {
		sc.assume = append([]Lit(nil), d.Assumptions...)
	}
}

// randomDelta builds one valid delta: hard clauses, soft clauses (weighted
// only under weighted-capable algorithms), a reweight, or an assumption
// update.
func (sc *sessionScript) randomDelta() Delta {
	rng := sc.rng
	freshVar := func() int { return 1 + rng.Intn(sc.acc.NumVars+1) }
	clause := func() Clause {
		width := 1 + rng.Intn(3)
		c := make(Clause, 0, width)
		for j := 0; j < width; j++ {
			v := freshVar()
			if rng.Intn(2) == 0 {
				v = -v
			}
			c = append(c, FromDIMACS(v))
		}
		return c
	}
	var d Delta
	switch op := rng.Intn(8); {
	case op < 3: // hard growth
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			d.Hards = append(d.Hards, clause())
		}
	case op < 6: // soft growth
		for i, n := 0, 1+rng.Intn(2); i < n; i++ {
			w := Weight(1)
			if sc.weightedOK && rng.Intn(3) == 0 {
				w = Weight(2 + rng.Intn(3))
			}
			d.Softs = append(d.Softs, cnf.WClause{Clause: clause(), Weight: w})
		}
	case op == 6 && sc.weightedOK && len(sc.softIdx) > 0: // reweight
		d.Reweights = []SessionReweight{{
			Soft:   rng.Intn(len(sc.softIdx)),
			Weight: Weight(1 + rng.Intn(4)),
		}}
	default: // assumption update (sometimes a clear)
		d.SetAssumptions = true
		if rng.Intn(3) > 0 {
			v := freshVar()
			if rng.Intn(2) == 0 {
				v = -v
			}
			d.Assumptions = []Lit{FromDIMACS(v)}
		}
	}
	return d
}

// solveBoth runs the session solve and the from-scratch solve of the mirror
// and compares verdicts (and certificates, when enabled).
func (sc *sessionScript) solveBoth(step int) {
	sc.t.Helper()
	job, err := sc.sess.Solve(context.Background())
	if err != nil {
		sc.t.Fatalf("%s step %d: session solve: %v", sc.name, step, err)
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		sc.t.Fatalf("%s step %d: wait: %v", sc.name, step, err)
	}
	sc.solves++
	if len(sc.assume) > 0 {
		sc.coldSolves++
	}

	snap := sc.acc.Clone()
	for _, a := range sc.assume {
		snap.AddHard(a)
	}
	direct, err := Solve(snap, sc.opts)
	if err != nil {
		sc.t.Fatalf("%s step %d: from-scratch solve: %v", sc.name, step, err)
	}
	if res.Status != direct.Status || (res.Status == Optimal && res.Cost != direct.Cost) {
		sc.t.Fatalf("%s step %d: session %v cost %d, from-scratch %v cost %d",
			sc.name, step, res.Status, res.Cost, direct.Status, direct.Cost)
	}
	if res.Status == Optimal && res.Model != nil {
		cost, hardOK := snap.CostOf(res.Model)
		if !hardOK || cost != res.Cost {
			sc.t.Fatalf("%s step %d: model does not witness cost %d (hardOK=%v cost=%d)",
				sc.name, step, res.Cost, hardOK, cost)
		}
	}
	if sc.opts.Certify && (res.Status == Optimal || res.Status == Unsatisfiable) {
		if len(res.Certificate) == 0 {
			sc.t.Fatalf("%s step %d: certified session solve returned no certificate", sc.name, step)
		}
		if err := CheckCertificate(snap, res.Certificate); err != nil {
			sc.t.Fatalf("%s step %d: certificate rejected against accumulation: %v", sc.name, step, err)
		}
	}
}

// TestSessionDifferential is the randomized differential suite: delta
// scripts over gen-family bases × {msu3, msu4-v2, oll, portfolio} ×
// {preprocess on/off} × {clause sharing on/off}; every intermediate session
// solve must return the same verdict as a from-scratch solve of the
// accumulated formula, with a verifiable certificate on the certified
// subset of configs.
func TestSessionDifferential(t *testing.T) {
	algos := []Algorithm{AlgoMSU3, AlgoMSU4V2, AlgoOLL, AlgoPortfolio}
	bases := []*WCNF{
		gen.Pigeonhole(3).W,
		gen.RandomKSAT(11, 10, 3, 4.4).W,
		gen.Coloring(1, 6, 12, 2).W,
		gen.EquivMiter(3).W,
	}
	cfg := 0
	for _, algo := range algos {
		for _, pre := range []bool{false, true} {
			for _, share := range []bool{false, true} {
				cfg++
				name := fmt.Sprintf("%s/pre=%v/share=%v", algo, pre, share)
				opts := Options{
					Algorithm:    algo,
					Preprocess:   pre,
					ShareClauses: share,
					Certify:      pre == share, // certify half the grid
				}
				base := bases[cfg%len(bases)]

				s := NewServer(ServerConfig{Workers: 2})
				sess, err := s.OpenSession(context.Background(), base, opts)
				if err != nil {
					t.Fatalf("%s: open: %v", name, err)
				}
				sc := &sessionScript{
					t:          t,
					name:       name,
					rng:        rand.New(rand.NewSource(int64(cfg) * 7919)),
					opts:       opts,
					sess:       sess,
					acc:        base.Clone(),
					weightedOK: !algoRequiresUnitWeights(algo),
				}
				for i, c := range sc.acc.Clauses {
					if !c.Hard() {
						sc.softIdx = append(sc.softIdx, i)
					}
				}
				sc.solveBoth(0)
				for step := 1; step <= 4; step++ {
					sc.push(sc.randomDelta())
					sc.solveBoth(step)
				}
				// The warm solver must have earned its keep on unweighted
				// unit-only accumulations with at least one assumption-free
				// solve.
				if !sc.acc.Weighted() && !sc.reweighted && sc.coldSolves < sc.solves {
					if _, reused := sess.Counters(); reused == 0 {
						t.Errorf("%s: warm solver never answered (%d solves)", name, sc.solves)
					}
				}
				sess.Close()
				s.Close()
			}
		}
	}
}

// TestSessionCrashRecovery: sessions are ephemeral across restarts, but a
// session's certified answers survive via the durable result store — the
// reopened session's first solve of an already-certified accumulation is a
// verified cache hit, counted in Stats.SessionHits.
func TestSessionCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	base := NewWCNF(1)
	base.AddSoft(1, FromDIMACS(1))
	base.AddSoft(1, FromDIMACS(-1))
	delta := Delta{Softs: []cnf.WClause{
		{Clause: Clause{FromDIMACS(2)}, Weight: 1},
		{Clause: Clause{FromDIMACS(-2)}, Weight: 1},
	}}

	s1, err := OpenServer(ServerConfig{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatalf("OpenServer: %v", err)
	}
	sess, err := s1.OpenSession(context.Background(), base, Options{Algorithm: AlgoMSU3, Certify: true})
	if err != nil {
		t.Fatalf("open session: %v", err)
	}
	oldID := sess.ID()
	if err := sess.Push(delta); err != nil {
		t.Fatal(err)
	}
	job, err := sess.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Status != Optimal || r1.Cost != 2 || len(r1.Certificate) == 0 {
		t.Fatalf("first life: %+v", r1)
	}
	s1.Close()

	s2, err := OpenServer(ServerConfig{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	// The session itself did not survive — only its answers did.
	if _, ok := s2.Session(oldID); ok {
		t.Fatal("session survived a restart; sessions must be ephemeral")
	}
	sess2, err := s2.OpenSession(context.Background(), base, Options{Algorithm: AlgoMSU3, Certify: true})
	if err != nil {
		t.Fatalf("reopen session: %v", err)
	}
	defer sess2.Close()
	if err := sess2.Push(delta); err != nil {
		t.Fatal(err)
	}
	job2, err := sess2.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := job2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || r2.Status != Optimal || r2.Cost != 2 {
		t.Fatalf("second life: cached=%v %+v", r2.Cached, r2)
	}
	if err := CheckCertificate(sess2.Accumulated(), r2.Certificate); err != nil {
		t.Fatalf("recovered certificate: %v", err)
	}
	if st := s2.Stats(); st.SessionHits < 1 {
		t.Fatalf("SessionHits = %d, want >= 1", st.SessionHits)
	}
}
