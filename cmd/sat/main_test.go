package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSat(t *testing.T) {
	path := writeFile(t, "s.cnf", "p cnf 3 3\n1 2 0\n-1 3 0\n-3 0\n")
	if code := run([]string{path}); code != 10 {
		t.Fatalf("exit %d, want 10 (SAT)", code)
	}
	if code := run([]string{"-simp", "-stats", path}); code != 10 {
		t.Fatalf("simp exit %d, want 10", code)
	}
	if code := run([]string{"-no-model", path}); code != 10 {
		t.Fatalf("no-model exit %d, want 10", code)
	}
}

func TestRunUnsat(t *testing.T) {
	path := writeFile(t, "u.cnf", "p cnf 1 2\n1 0\n-1 0\n")
	if code := run([]string{path}); code != 20 {
		t.Fatalf("exit %d, want 20 (UNSAT)", code)
	}
	if code := run([]string{"-simp", path}); code != 20 {
		t.Fatalf("simp exit %d, want 20", code)
	}
}

func TestRunBadUsage(t *testing.T) {
	if code := run([]string{}); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent.cnf"}); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	bad := writeFile(t, "bad.cnf", "not a cnf file")
	if code := run([]string{bad}); code != 1 {
		t.Fatalf("bad file: exit %d, want 1", code)
	}
}
