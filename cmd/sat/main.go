// Command sat is the plain SAT front-end over this repository's CDCL engine
// — the MiniSat-equivalent substrate the msu4 paper builds on. It reads a
// DIMACS .cnf file and prints SATISFIABLE with a model, or UNSATISFIABLE.
//
// Usage:
//
//	sat [-simp] [-timeout 60s] [-stats] [-no-model] file.cnf
//
// -simp applies SatELite-style preprocessing (unit propagation,
// subsumption, self-subsuming resolution, bounded variable elimination)
// with model reconstruction.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/simp"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sat", flag.ContinueOnError)
	var (
		useSimp = fs.Bool("simp", false, "apply SatELite-style preprocessing")
		timeout = fs.Duration("timeout", 0, "solve timeout (0 = unbounded)")
		stats   = fs.Bool("stats", false, "print solver statistics")
		noModel = fs.Bool("no-model", false, "suppress the v line")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: sat [flags] <file.cnf>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	f, err := cnf.ParseDIMACSFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "c error: %v\n", err)
		return 1
	}
	fmt.Printf("c instance %s: %d vars, %d clauses\n", fs.Arg(0), f.NumVars, f.NumClauses())

	start := time.Now()
	var pre *simp.Result
	work := f
	if *useSimp {
		pre = simp.Preprocess(f, simp.Options{})
		if pre.Unsat {
			fmt.Printf("c preprocessing proved unsatisfiability in %.3fs\n", time.Since(start).Seconds())
			fmt.Println("s UNSATISFIABLE")
			return 20
		}
		work = pre.Formula
		fmt.Printf("c preprocessed to %d clauses in %.3fs\n", work.NumClauses(), time.Since(start).Seconds())
	}

	s := sat.New()
	s.EnsureVars(f.NumVars)
	if *timeout > 0 {
		s.SetBudget(sat.Budget{Deadline: time.Now().Add(*timeout)})
	}
	if !s.AddFormula(work) {
		fmt.Println("s UNSATISFIABLE")
		return 20
	}
	st := s.Solve()
	fmt.Printf("c solved in %.3fs\n", time.Since(start).Seconds())
	if *stats {
		ss := s.Stats()
		fmt.Printf("c conflicts %d decisions %d propagations %d restarts %d\n",
			ss.Conflicts, ss.Decisions, ss.Propagations, ss.Restarts)
	}
	switch st {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		if !*noModel {
			model := s.Model()[:f.NumVars]
			if pre != nil {
				model = pre.Reconstruct(model)
			}
			if !f.Eval(model) {
				fmt.Fprintln(os.Stderr, "c internal error: model check failed")
				return 1
			}
			var sb strings.Builder
			sb.WriteString("v")
			for v := 0; v < f.NumVars; v++ {
				if model[v] {
					fmt.Fprintf(&sb, " %d", v+1)
				} else {
					fmt.Fprintf(&sb, " -%d", v+1)
				}
			}
			sb.WriteString(" 0")
			fmt.Println(sb.String())
		}
		return 10
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		return 20
	default:
		fmt.Println("s UNKNOWN")
		return 0
	}
}
