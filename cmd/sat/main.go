// Command sat is the plain SAT front-end over this repository's CDCL engine
// — the MiniSat-equivalent substrate the msu4 paper builds on. It reads a
// DIMACS .cnf file and prints SATISFIABLE with a model, or UNSATISFIABLE.
//
// Usage:
//
//	sat [-simp] [-proof file.drat] [-timeout 60s] [-stats] [-no-model] file.cnf
//
// -simp applies SatELite-style preprocessing (unit propagation,
// subsumption, self-subsuming resolution, bounded variable elimination)
// with model reconstruction.
//
// -proof streams the run's clause additions and deletions — the
// preprocessor's rewrites (with -simp) followed by the CDCL solver's learnt
// clauses — to a standard ASCII DRAT file. On an UNSATISFIABLE verdict the
// file is a refutation of the input CNF checkable by external tools:
//
//	sat -simp -proof inst.drat inst.cnf && drat-trim inst.cnf inst.drat
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cnf"
	"repro/internal/proof"
	"repro/internal/sat"
	"repro/internal/simp"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("sat", flag.ContinueOnError)
	var (
		useSimp = fs.Bool("simp", false, "apply SatELite-style preprocessing")
		prf     = fs.String("proof", "", "write an ASCII DRAT trace to this file (a refutation on UNSAT)")
		timeout = fs.Duration("timeout", 0, "solve timeout (0 = unbounded)")
		stats   = fs.Bool("stats", false, "print solver statistics")
		noModel = fs.Bool("no-model", false, "suppress the v line")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: sat [flags] <file.cnf>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	f, err := cnf.ParseDIMACSFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "c error: %v\n", err)
		return 1
	}
	fmt.Printf("c instance %s: %d vars, %d clauses\n", fs.Arg(0), f.NumVars, f.NumClauses())

	var dw *proof.DRATWriter
	if *prf != "" {
		pf, err := os.Create(*prf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "c error: %v\n", err)
			return 1
		}
		defer pf.Close()
		dw = proof.NewDRATWriter(pf)
		defer func() {
			if err := dw.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "c error: writing proof: %v\n", err)
			}
		}()
	}

	start := time.Now()
	var pre *simp.Result
	work := f
	if *useSimp {
		so := simp.Options{}
		if dw != nil {
			so.Proof = dw
		}
		pre = simp.Preprocess(f, so)
		if pre.Unsat {
			if dw != nil {
				// The preprocessor logs the empty clause it derives; an
				// empty clause already present in the input is not logged
				// (it is part of the formula), so terminate the DRAT file
				// explicitly. A duplicate addition is harmless — checkers
				// stop at the first empty clause.
				dw.Learn(nil)
			}
			fmt.Printf("c preprocessing proved unsatisfiability in %.3fs\n", time.Since(start).Seconds())
			fmt.Println("s UNSATISFIABLE")
			return 20
		}
		work = pre.Formula
		fmt.Printf("c preprocessed to %d clauses in %.3fs\n", work.NumClauses(), time.Since(start).Seconds())
	}

	s := sat.New()
	s.EnsureVars(f.NumVars)
	if *timeout > 0 {
		s.SetBudget(sat.Budget{Deadline: time.Now().Add(*timeout)})
	}
	if !s.AddFormula(work) {
		if dw != nil {
			// Conflict while loading: unit propagation over the (possibly
			// preprocessed) clauses refutes the formula directly.
			dw.Learn(nil)
		}
		fmt.Println("s UNSATISFIABLE")
		return 20
	}
	if dw != nil {
		// Attach after the base formula is loaded so its clauses are not
		// logged; every record from here on is a learnt clause or deletion.
		s.SetProof(dw)
	}
	st := s.Solve()
	fmt.Printf("c solved in %.3fs\n", time.Since(start).Seconds())
	if *stats {
		ss := s.Stats()
		fmt.Printf("c conflicts %d decisions %d propagations %d restarts %d\n",
			ss.Conflicts, ss.Decisions, ss.Propagations, ss.Restarts)
	}
	switch st {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		if !*noModel {
			model := s.Model()[:f.NumVars]
			if pre != nil {
				model = pre.Reconstruct(model)
			}
			if !f.Eval(model) {
				fmt.Fprintln(os.Stderr, "c internal error: model check failed")
				return 1
			}
			var sb strings.Builder
			sb.WriteString("v")
			for v := 0; v < f.NumVars; v++ {
				if model[v] {
					fmt.Fprintf(&sb, " %d", v+1)
				} else {
					fmt.Fprintf(&sb, " -%d", v+1)
				}
			}
			sb.WriteString(" 0")
			fmt.Println(sb.String())
		}
		return 10
	case sat.Unsat:
		if *prf != "" {
			fmt.Printf("c DRAT refutation written to %s\n", *prf)
		}
		fmt.Println("s UNSATISFIABLE")
		return 20
	default:
		fmt.Println("s UNKNOWN")
		return 0
	}
}
