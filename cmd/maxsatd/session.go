package main

import (
	"bytes"
	"errors"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro"
)

// Session endpoints: the incremental-solving surface of the daemon.
//
//	POST   /sessions             open a session; body = base instance (may be
//	                             empty), query = same solve options as /solve.
//	POST   /sessions/{id}/delta  push a delta; body = WCNF fragment in the
//	                             headerless 2022 dialect ("h 1 2 0" hard,
//	                             "1 -2 0" soft); query: assume=1,-2 replaces
//	                             the assumption set (assume= clears it),
//	                             reweight=IDX:W (repeatable) re-weights the
//	                             IDX-th soft clause.
//	POST   /sessions/{id}/solve  submit a delta re-solve of the accumulated
//	                             formula; query: wait=1, model=0 as on /solve.
//	                             Returns the job JSON; result.reused reports
//	                             whether the warm solver answered.
//	DELETE /sessions/{id}        close the session, releasing its slot.
//
// A session belongs to the client that opened it: other clients' requests
// against its id fail with 403. A solve in flight serializes the session —
// delta and solve return 409 until the running job completes; a closed or
// idle-evicted session returns 410 (reopen and replay).

// sessionJSON is the session snapshot shape.
type sessionJSON struct {
	ID        uint64 `json:"id"`
	Client    string `json:"client,omitempty"`
	Algorithm string `json:"algorithm,omitempty"`
	Vars      int    `json:"vars"`
	Clauses   int    `json:"clauses"`
	Solves    int64  `json:"solves"`
	Reused    int64  `json:"reused"`
}

func sessionView(sess *maxsat.Session) sessionJSON {
	acc := sess.Accumulated()
	solves, reused := sess.Counters()
	return sessionJSON{
		ID:      sess.ID(),
		Client:  sess.Client(),
		Vars:    acc.NumVars,
		Clauses: len(acc.Clauses),
		Solves:  solves,
		Reused:  reused,
	}
}

func (d *daemon) registerSessions(mux *http.ServeMux) {
	mux.HandleFunc("POST /sessions", d.sessionOpen)
	mux.HandleFunc("POST /sessions/{id}/delta", d.sessionDelta)
	mux.HandleFunc("POST /sessions/{id}/solve", d.sessionSolve)
	mux.HandleFunc("DELETE /sessions/{id}", d.sessionClose)
}

// parseOptionalWCNF reads a request body that may be empty (no base formula,
// or an assumption/reweight-only delta) or a DIMACS/WCNF instance in any of
// the dialects ParseWCNF accepts.
func parseOptionalWCNF(w http.ResponseWriter, r *http.Request, limit int64) (*maxsat.WCNF, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		return nil, err
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return nil, nil
	}
	return maxsat.ParseWCNF(bytes.NewReader(body))
}

// sessionError maps the session error vocabulary onto HTTP statuses.
func (d *daemon) sessionError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, maxsat.ErrServerClosed):
		w.Header().Set("Connection", "close")
		httpError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, maxsat.ErrSessionLimit),
		errors.Is(err, maxsat.ErrServerRateLimited),
		errors.Is(err, maxsat.ErrServerOverQuota),
		errors.Is(err, maxsat.ErrServerQueueFull):
		if after, ok := maxsat.RetryAfter(err); ok {
			secs := int(math.Ceil(after.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, maxsat.ErrSessionsDisabled):
		httpError(w, http.StatusForbidden, "%v", err)
	case errors.Is(err, maxsat.ErrSessionBusy):
		httpError(w, http.StatusConflict, "%v", err)
	case errors.Is(err, maxsat.ErrSessionClosed):
		httpError(w, http.StatusGone, "%v", err)
	default:
		httpError(w, http.StatusBadRequest, "%v", err)
	}
}

// ownedSession resolves {id} to a session owned by the requesting client;
// it writes the error response itself when the lookup fails.
func (d *daemon) ownedSession(w http.ResponseWriter, r *http.Request) (*maxsat.Session, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad session id")
		return nil, false
	}
	sess, ok := d.srv.Session(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such session")
		return nil, false
	}
	if sess.Client() != clientFrom(r) {
		httpError(w, http.StatusForbidden, "session belongs to another client")
		return nil, false
	}
	return sess, true
}

func (d *daemon) sessionOpen(w http.ResponseWriter, r *http.Request) {
	opts, err := optionsFromQuery(r, d.opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	base, err := parseOptionalWCNF(w, r, d.opts.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	sess, err := d.srv.OpenSessionAs(r.Context(), clientFrom(r), base, opts)
	if err != nil {
		d.sessionError(w, err)
		return
	}
	view := sessionView(sess)
	view.Algorithm = string(opts.Algorithm)
	writeJSON(w, http.StatusCreated, view)
}

func (d *daemon) sessionDelta(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.ownedSession(w, r)
	if !ok {
		return
	}
	var delta maxsat.Delta
	frag, err := parseOptionalWCNF(w, r, d.opts.maxBody)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	if frag != nil {
		for _, c := range frag.Clauses {
			if c.Hard() {
				delta.Hards = append(delta.Hards, c.Clause)
			} else {
				delta.Softs = append(delta.Softs, c)
			}
		}
	}
	q := r.URL.Query()
	if q.Has("assume") {
		delta.SetAssumptions = true
		for _, tok := range strings.Split(q.Get("assume"), ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, err := strconv.Atoi(tok)
			if err != nil || v == 0 {
				httpError(w, http.StatusBadRequest, "bad assumption literal %q", tok)
				return
			}
			delta.Assumptions = append(delta.Assumptions, maxsat.FromDIMACS(v))
		}
	}
	for _, spec := range q["reweight"] {
		idx, wt, ok := strings.Cut(spec, ":")
		i, err1 := strconv.Atoi(idx)
		n, err2 := strconv.ParseInt(wt, 10, 64)
		if !ok || err1 != nil || err2 != nil {
			httpError(w, http.StatusBadRequest, "bad reweight %q (want IDX:WEIGHT)", spec)
			return
		}
		delta.Reweights = append(delta.Reweights, maxsat.SessionReweight{Soft: i, Weight: maxsat.Weight(n)})
	}
	if err := sess.Push(delta); err != nil {
		d.sessionError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, sessionView(sess))
}

func (d *daemon) sessionSolve(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.ownedSession(w, r)
	if !ok {
		return
	}
	job, err := sess.Solve(r.Context())
	if err != nil {
		d.sessionError(w, err)
		return
	}
	withModel := r.URL.Query().Get("model") != "0"
	if isTrue(r.URL.Query().Get("wait")) {
		if _, err := job.Wait(r.Context()); err != nil {
			// Client went away; the solve keeps running on the session.
			return
		}
		writeJSON(w, http.StatusOK, jobView(job, withModel))
		return
	}
	writeJSON(w, http.StatusAccepted, jobView(job, withModel))
}

func (d *daemon) sessionClose(w http.ResponseWriter, r *http.Request) {
	sess, ok := d.ownedSession(w, r)
	if !ok {
		return
	}
	sess.Close()
	writeJSON(w, http.StatusOK, map[string]any{"closed": true, "id": sess.ID()})
}
