// Command maxsatd is the MaxSAT solving daemon: the repository's solver
// stack behind an HTTP API, with a bounded worker pool, deduplication of
// identical in-flight submissions, a verified-result cache, and anytime
// bound streaming over Server-Sent Events.
//
// Endpoints:
//
//	POST /solve        body: DIMACS .cnf or .wcnf instance.
//	                   Query: alg, enc, jobs, share, pre, timeout (e.g. 30s),
//	                   mem (clause-storage budget in bytes), model=0 to omit
//	                   the witness, wait=1 to block for the result. Returns
//	                   the job as JSON (202, or 200 with wait=1); a formula
//	                   whose optimum is already cached returns completed
//	                   immediately. A shed submission (queue full, client
//	                   rate limit or quota) returns 429 with a Retry-After
//	                   header; a draining server returns 503.
//	GET /jobs/{id}     JSON snapshot of the job (state, bounds, result), or
//	                   with ?sse=1 / Accept: text/event-stream a stream of
//	                   "bound" events — monotone anytime bound improvements —
//	                   terminated by one "result" event.
//	POST /sessions     open an incremental solving session: the body is the
//	                   base instance (may be empty), the query takes the same
//	                   solve options as /solve, fixed for the session. The
//	                   session pins a worker slot and keeps a warm solver.
//	POST /sessions/{id}/delta  push hard/soft clauses (WCNF-fragment body),
//	                   assumptions (assume=1,-2; assume= clears), and
//	                   reweights (reweight=IDX:W).
//	POST /sessions/{id}/solve  re-solve the accumulated formula at delta
//	                   cost; same wait/model parameters and job JSON as
//	                   /solve, with result.reused reporting a warm answer.
//	DELETE /sessions/{id}      close the session, releasing its slot.
//	GET /stats         worker/queue/cache/admission counters as JSON.
//	GET /livez         process liveness (always 200 while serving).
//	GET /readyz        readiness: 503 while recovering a -data-dir journal
//	                   or once draining; 200 otherwise.
//	GET /healthz       alias of /readyz (kept for older probe configs).
//
// Durability: -data-dir makes the daemon crash-safe. Certified results are
// persisted to an append-only checksummed log and survive restarts — each
// recovered record is re-proved by the independent certificate checker
// before it may serve a cache hit — and every submission is journaled before
// admission succeeds, so after a crash (or kill -9) the daemon replays the
// jobs it had accepted but not finished under their original IDs: clients
// polling GET /jobs/{id} across the restart find their work finished or
// running, never gone. /readyz stays 503 until the replay is enqueued.
//
// Self-healing: -stall arms a watchdog that cancels jobs whose solver stops
// making measurable progress (CDCL conflicts, branch-and-bound nodes, bound
// improvements); -retries re-runs transiently failed jobs (a panic, a
// memory-budget exhaustion, a watchdog kill) server-side on a degraded
// profile — solo line-up, halved memory per attempt — before reporting
// failure to the client.
//
// Authentication: -token installs a bearer-token table ("alice:s3cret,bob:hunter2";
// a bare secret names itself token-N). With tokens configured every endpoint
// except /healthz requires Authorization: Bearer <secret>, and admission
// accounting (rate limits, quotas, the audit log) is per token name; without
// tokens, accounting is per peer IP.
//
// Shutdown: SIGTERM (or SIGINT) stops admissions immediately, fails the
// health probe, and drains — running jobs finish and their SSE streams
// receive the terminal "result" event — for up to -drain, after which
// stragglers are cancelled (they still complete with their best bounds).
// The daemon then exits 0.
//
// Usage:
//
//	maxsatd [-addr :8080] [-workers N] [-queue 1024] [-cache 256]
//	        [-timeout 1m] [-max-timeout 5m] [-max-body 67108864]
//	        [-mem 0] [-max-mem 0] [-token name:secret,...]
//	        [-rate 0] [-burst 0] [-quota 0] [-highwater 0.75]
//	        [-data-dir dir] [-stall 0] [-retries 0]
//	        [-sessions 0] [-session-idle 0]
//	        [-drain 30s] [-audit]
//
// Example session:
//
//	$ maxsatd -addr :8080 &
//	$ curl -s --data-binary @instance.wcnf 'localhost:8080/solve?wait=1'
//	$ curl -s --data-binary @hard.cnf 'localhost:8080/solve?alg=portfolio'
//	$ curl -sN 'localhost:8080/jobs/2?sse=1'       # watch bounds improve
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// onReady, when set (by tests), is called with the bound listen address once
// the daemon is accepting connections.
var onReady func(addr string)

func run(args []string) int {
	return runWith(context.Background(), args)
}

// runWith is run under a caller-supplied lifetime: cancelling ctx triggers
// the same graceful drain as SIGTERM (tests use this in place of a signal).
func runWith(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("maxsatd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 0, "worker-slot budget shared by all jobs (0 = NumCPU)")
		queue      = fs.Int("queue", 1024, "max admitted-but-unfinished jobs (0 = unbounded)")
		cache      = fs.Int("cache", 256, "verified-result cache entries (-1 disables)")
		timeout    = fs.Duration("timeout", time.Minute, "default per-job solve timeout (0 = unbounded)")
		maxTimeout = fs.Duration("max-timeout", 5*time.Minute, "hard ceiling on per-job timeouts, client-requested or default (0 = no cap)")
		maxBody    = fs.Int64("max-body", 64<<20, "max request body bytes")
		mem        = fs.Int64("mem", 0, "default per-job clause-storage budget in bytes (0 = unbounded)")
		maxMem     = fs.Int64("max-mem", 0, "hard ceiling on per-job clause-storage budgets (0 = no cap)")
		tokens     = fs.String("token", "", "bearer tokens as name:secret[,name:secret...]; empty disables authentication")
		rate       = fs.Float64("rate", 0, "per-client sustained submissions per second (0 = unlimited)")
		burst      = fs.Int("burst", 0, "per-client submission burst (0 = 2x rate)")
		quota      = fs.Int("quota", 0, "per-client queued-or-running job cap (0 = unlimited)")
		highwater  = fs.Float64("highwater", 0.75, "queue-pressure fraction past which portfolio jobs degrade to fewer members (0 disables)")
		drain      = fs.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGTERM before running jobs are cancelled")
		audit      = fs.Bool("audit", false, "log one line per admission decision, cancellation, and completion")
		dataDir    = fs.String("data-dir", "", "durability directory: persist certified results and journal submissions for crash recovery (empty disables)")
		sessions   = fs.Int("sessions", 0, "max concurrently open incremental sessions, each pinning a worker slot (0 = workers, -1 disables sessions)")
		sessIdle   = fs.Duration("session-idle", 0, "evict sessions idle this long, releasing their pinned slot (0 = 5m, negative disables eviction)")
		stall      = fs.Duration("stall", 0, "stuck-solver watchdog: cancel jobs making no measurable progress for this long (0 disables)")
		retries    = fs.Int("retries", 0, "server-side retries of transiently failed jobs, on a degraded profile (0 disables)")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: maxsatd [flags]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	tokenMap, err := parseTokens(*tokens)
	if err != nil {
		fmt.Fprintf(fs.Output(), "maxsatd: %v\n", err)
		return 2
	}
	if *workers == 0 {
		*workers = runtime.NumCPU()
	}
	// -max-timeout is a hard ceiling: it caps explicit client requests (in
	// the handler) and the daemon's own default alike, so no job can run
	// unbounded while a cap is configured.
	if *maxTimeout > 0 && (*timeout <= 0 || *timeout > *maxTimeout) {
		*timeout = *maxTimeout
	}
	cfg := maxsat.ServerConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
		RatePerSec:     *rate,
		Burst:          *burst,
		ClientQuota:    *quota,
		HighWater:      *highwater,
		DataDir:        *dataDir,
		StallTimeout:   *stall,
		MaxRetries:     *retries,
		MaxSessions:    *sessions,
		SessionIdle:    *sessIdle,
	}
	if *audit {
		cfg.Audit = func(e maxsat.AuditEvent) {
			log.Printf("audit client=%q action=%s job=%d %s", e.Client, e.Action, e.JobID, e.Detail)
		}
	}
	srv, err := maxsat.OpenServer(cfg)
	if err != nil {
		log.Printf("maxsatd: %v", err)
		return 1
	}
	defer srv.Close()
	d := newDaemon(srv, daemonOpts{
		maxBody:    *maxBody,
		maxTimeout: *maxTimeout,
		defaultMem: *mem,
		maxMem:     *maxMem,
		tokens:     tokenMap,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Printf("maxsatd: %v", err)
		return 1
	}
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Journal replay runs concurrently with serving: the listener is up (so
	// /livez answers and pre-crash job IDs become pollable the moment they
	// re-enqueue) but /readyz stays 503 until every recovered job is accounted
	// for — a load balancer only routes new work here once the daemon can keep
	// its old promises.
	if *dataDir != "" {
		d.ready.Store(false)
		go func() {
			if err := srv.Recover(); err != nil {
				log.Printf("maxsatd: journal replay: %v", err)
			}
			d.ready.Store(true)
			log.Printf("maxsatd: recovery complete, ready")
		}()
	}

	httpSrv := &http.Server{Handler: d.handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	log.Printf("maxsatd listening on %s (%d workers, cache %d, default timeout %s)",
		ln.Addr(), *workers, *cache, *timeout)
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	select {
	case err := <-errc:
		log.Printf("maxsatd: %v", err)
		return 1
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting (Submit now fails, /healthz turns 503),
	// let running jobs finish so attached SSE streams get their terminal
	// "result" event, then close the HTTP listener once the handlers have
	// flushed. Jobs still running at the deadline are cancelled — they too
	// complete, with their best bounds.
	stop()
	d.draining.Store(true)
	log.Printf("maxsatd: draining (deadline %s)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	err = srv.Drain(drainCtx)
	cancel()
	if err != nil {
		log.Printf("maxsatd: drain deadline passed; cancelled remaining jobs")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		_ = httpSrv.Close()
	}
	log.Printf("maxsatd: drained, exiting")
	return 0
}

// parseTokens parses the -token flag: a comma-separated list of name:secret
// pairs; a bare secret gets the positional name token-N.
func parseTokens(s string) (map[string]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for i, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, secret, ok := strings.Cut(entry, ":")
		if !ok {
			name, secret = fmt.Sprintf("token-%d", i+1), entry
		}
		if name == "" || secret == "" {
			return nil, fmt.Errorf("bad -token entry %q (want name:secret)", entry)
		}
		if _, dup := out[secret]; dup {
			return nil, fmt.Errorf("duplicate -token secret")
		}
		out[secret] = name
	}
	return out, nil
}
