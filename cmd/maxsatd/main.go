// Command maxsatd is the MaxSAT solving daemon: the repository's solver
// stack behind an HTTP API, with a bounded worker pool, deduplication of
// identical in-flight submissions, a verified-result cache, and anytime
// bound streaming over Server-Sent Events.
//
// Endpoints:
//
//	POST /solve        body: DIMACS .cnf or .wcnf instance.
//	                   Query: alg, enc, jobs, share, pre, timeout (e.g. 30s),
//	                   model=0 to omit the witness, wait=1 to block for the
//	                   result. Returns the job as JSON (202, or 200 with
//	                   wait=1); a formula whose optimum is already cached
//	                   returns completed immediately.
//	GET /jobs/{id}     JSON snapshot of the job (state, bounds, result), or
//	                   with ?sse=1 / Accept: text/event-stream a stream of
//	                   "bound" events — monotone anytime bound improvements —
//	                   terminated by one "result" event.
//	GET /stats         worker/queue/cache counters as JSON.
//	GET /healthz       liveness probe.
//
// Usage:
//
//	maxsatd [-addr :8080] [-workers N] [-queue 1024] [-cache 256]
//	        [-timeout 1m] [-max-timeout 5m] [-max-body 67108864]
//
// Example session:
//
//	$ maxsatd -addr :8080 &
//	$ curl -s --data-binary @instance.wcnf 'localhost:8080/solve?wait=1'
//	$ curl -s --data-binary @hard.cnf 'localhost:8080/solve?alg=portfolio'
//	$ curl -sN 'localhost:8080/jobs/2?sse=1'       # watch bounds improve
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"time"

	"repro"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("maxsatd", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		workers    = fs.Int("workers", 0, "worker-slot budget shared by all jobs (0 = NumCPU)")
		queue      = fs.Int("queue", 1024, "max admitted-but-unfinished jobs (0 = unbounded)")
		cache      = fs.Int("cache", 256, "verified-result cache entries (-1 disables)")
		timeout    = fs.Duration("timeout", time.Minute, "default per-job solve timeout (0 = unbounded)")
		maxTimeout = fs.Duration("max-timeout", 5*time.Minute, "hard ceiling on per-job timeouts, client-requested or default (0 = no cap)")
		maxBody    = fs.Int64("max-body", 64<<20, "max request body bytes")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: maxsatd [flags]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workers == 0 {
		*workers = runtime.NumCPU()
	}
	// -max-timeout is a hard ceiling: it caps explicit client requests (in
	// the handler) and the daemon's own default alike, so no job can run
	// unbounded while a cap is configured.
	if *maxTimeout > 0 && (*timeout <= 0 || *timeout > *maxTimeout) {
		*timeout = *maxTimeout
	}
	srv := maxsat.NewServer(maxsat.ServerConfig{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cache,
		DefaultTimeout: *timeout,
	})
	defer srv.Close()
	log.Printf("maxsatd listening on %s (%d workers, cache %d, default timeout %s)",
		*addr, *workers, *cache, *timeout)
	if err := http.ListenAndServe(*addr, newHandler(srv, *maxBody, *maxTimeout)); err != nil {
		log.Printf("maxsatd: %v", err)
		return 1
	}
	return 0
}
