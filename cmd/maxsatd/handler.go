package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro"
)

// daemonOpts is the handler-level configuration (request-size, timeout and
// memory ceilings, plus the bearer-token table).
type daemonOpts struct {
	maxBody    int64
	maxTimeout time.Duration
	defaultMem int64             // per-job clause-storage budget when the client asks for none
	maxMem     int64             // hard ceiling on client-requested budgets (0 = no cap)
	tokens     map[string]string // bearer secret → client name; empty = auth off
}

// daemon wires a maxsat.Server to the HTTP API:
//
//	POST /solve            DIMACS .cnf/.wcnf body → job (or cached result)
//	GET  /jobs/{id}        poll a job; ?sse=1 (or Accept: text/event-stream)
//	                       streams anytime bounds, then the result
//	GET  /jobs/{id}/certificate  raw binary proof certificate of a completed
//	                       job submitted with cert=1 (see cmd/proofcheck)
//	POST /sessions         open an incremental session (see session.go)
//	POST /sessions/{id}/delta   push clauses/assumptions/reweights
//	POST /sessions/{id}/solve   delta re-solve of the accumulated formula
//	DELETE /sessions/{id}  close the session
//	GET  /stats            service counters
//	GET  /livez            process liveness (200 while the process serves)
//	GET  /readyz           readiness (503 while recovering or draining)
//	GET  /healthz          alias of /readyz, kept for older probes
//
// Every endpoint except the probes passes through the auth middleware: with a
// token table configured, requests need a valid Authorization: Bearer secret
// and are accounted to the token's client name; without one, requests are
// accounted per peer IP (so the per-client rate limits still bite).
type daemon struct {
	srv      *maxsat.Server
	opts     daemonOpts
	draining atomic.Bool
	// ready gates /readyz: false while the daemon replays the journal of a
	// previous life (main flips it once Recover returns). A restarted durable
	// daemon thus joins the load balancer only after it can account for every
	// job it promised before the crash.
	ready atomic.Bool
	start time.Time
}

func newDaemon(srv *maxsat.Server, opts daemonOpts) *daemon {
	d := &daemon{srv: srv, opts: opts, start: time.Now()}
	d.ready.Store(true) // main clears this when it has recovery to run
	return d
}

func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /solve", d.solve)
	mux.HandleFunc("GET /jobs/{id}", d.job)
	mux.HandleFunc("GET /jobs/{id}/certificate", d.certificate)
	d.registerSessions(mux)
	mux.HandleFunc("GET /stats", d.stats)
	mux.HandleFunc("GET /livez", d.livez)
	mux.HandleFunc("GET /readyz", d.readyz)
	mux.HandleFunc("GET /healthz", d.readyz)
	return d.auth(mux)
}

// ctxKey keys the authenticated client name in the request context.
type ctxKey int

const clientKey ctxKey = 0

// auth is the admission middleware: it resolves the client identity that the
// serving layer's rate limits, quotas, and audit log are charged to. The
// health probes are exempt — checkers do not carry credentials.
func (d *daemon) auth(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz", "/livez", "/readyz":
			next.ServeHTTP(w, r)
			return
		}
		var client string
		if len(d.opts.tokens) == 0 {
			// Authentication off: account per peer address so one host
			// cannot starve the rest even on an open server.
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil {
				host = r.RemoteAddr
			}
			client = "ip:" + host
		} else {
			const prefix = "Bearer "
			h := r.Header.Get("Authorization")
			if !strings.HasPrefix(h, prefix) {
				w.Header().Set("WWW-Authenticate", `Bearer realm="maxsatd"`)
				httpError(w, http.StatusUnauthorized, "missing bearer token")
				return
			}
			name, ok := d.opts.tokens[strings.TrimSpace(strings.TrimPrefix(h, prefix))]
			if !ok {
				w.Header().Set("WWW-Authenticate", `Bearer realm="maxsatd", error="invalid_token"`)
				httpError(w, http.StatusUnauthorized, "invalid bearer token")
				return
			}
			client = name
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), clientKey, client)))
	})
}

// clientFrom returns the client identity the auth middleware resolved.
func clientFrom(r *http.Request) string {
	c, _ := r.Context().Value(clientKey).(string)
	return c
}

// jobJSON is the poll/submit response shape.
type jobJSON struct {
	ID     uint64      `json:"id"`
	State  string      `json:"state"`
	LB     *int64      `json:"lb,omitempty"`
	UB     *int64      `json:"ub,omitempty"`
	Result *resultJSON `json:"result,omitempty"`
}

// resultJSON is the completed-result shape (also the SSE "result" event).
type resultJSON struct {
	Status     string `json:"status"`
	Cost       int64  `json:"cost"`
	LowerBound int64  `json:"lb"`
	Algorithm  string `json:"algorithm"`
	Winner     string `json:"winner,omitempty"`
	Cached     bool   `json:"cached"`
	// Reused: a session's warm (retained) solver answered this delta
	// re-solve; always false for one-shot /solve jobs.
	Reused bool  `json:"reused,omitempty"`
	Model  []int `json:"model,omitempty"`
	// Certificate is the base64 (JSON []byte) proof certificate when the
	// job was submitted with cert=1 and the verdict was certified; check it
	// with maxsat.CheckCertificate (or cmd/proofcheck) against the instance.
	Certificate []byte  `json:"certificate,omitempty"`
	ElapsedSec  float64 `json:"elapsed_sec"`
}

// boundJSON is the SSE "bound" event shape.
type boundJSON struct {
	LB *int64 `json:"lb,omitempty"`
	UB *int64 `json:"ub,omitempty"`
}

func toBoundJSON(e maxsat.BoundUpdate) boundJSON {
	var b boundJSON
	if e.HasLB {
		lb := int64(e.LB)
		b.LB = &lb
	}
	if e.HasUB {
		ub := int64(e.UB)
		b.UB = &ub
	}
	return b
}

func toResultJSON(r maxsat.Result, withModel bool) *resultJSON {
	out := &resultJSON{
		Status:      r.Status.String(),
		Cost:        int64(r.Cost),
		LowerBound:  int64(r.LowerBound),
		Algorithm:   string(r.Algorithm),
		Winner:      r.Winner,
		Cached:      r.Cached,
		Reused:      r.Reused,
		Certificate: r.Certificate,
		ElapsedSec:  r.Elapsed.Seconds(),
	}
	if withModel && r.Model != nil {
		out.Model = make([]int, len(r.Model))
		for v, val := range r.Model {
			lit := v + 1
			if !val {
				lit = -lit
			}
			out.Model[v] = lit
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// solve admits a job. The body is a DIMACS .cnf or .wcnf instance; options
// travel as query parameters: alg, enc, jobs, share, pre, timeout, and
// wait=1 to block until the result instead of returning the job handle.
func (d *daemon) solve(w http.ResponseWriter, r *http.Request) {
	opts, err := optionsFromQuery(r, d.opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, d.opts.maxBody)
	formula, err := maxsat.ParseWCNF(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "parse: %v", err)
		return
	}
	job, err := d.srv.SubmitAs(clientFrom(r), formula, opts)
	if err != nil {
		switch {
		case errors.Is(err, maxsat.ErrServerClosed):
			// Draining or shut down: tell keep-alive clients to reconnect
			// elsewhere, not to retry on this connection.
			w.Header().Set("Connection", "close")
			httpError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, maxsat.ErrServerQueueFull),
			errors.Is(err, maxsat.ErrServerRateLimited),
			errors.Is(err, maxsat.ErrServerOverQuota):
			// Shed, not failed: 429 plus the server's retry hint.
			if after, ok := maxsat.RetryAfter(err); ok {
				secs := int(math.Ceil(after.Seconds()))
				if secs < 1 {
					secs = 1
				}
				w.Header().Set("Retry-After", strconv.Itoa(secs))
			}
			httpError(w, http.StatusTooManyRequests, "%v", err)
		default:
			httpError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	withModel := r.URL.Query().Get("model") != "0"
	if isTrue(r.URL.Query().Get("wait")) {
		if _, err := job.Wait(r.Context()); err != nil {
			// Client went away; the job keeps running for other requesters.
			return
		}
		writeJSON(w, http.StatusOK, jobView(job, withModel))
		return
	}
	writeJSON(w, http.StatusAccepted, jobView(job, withModel))
}

// job serves GET /jobs/{id}: a JSON snapshot, or an SSE stream of bound
// improvements followed by the final result.
func (d *daemon) job(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id")
		return
	}
	job, ok := d.srv.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	withModel := r.URL.Query().Get("model") != "0"
	if isTrue(r.URL.Query().Get("sse")) ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		d.stream(w, r, job, withModel)
		return
	}
	writeJSON(w, http.StatusOK, jobView(job, withModel))
}

// certificate serves GET /jobs/{id}/certificate: the raw binary proof
// certificate of a completed job, for offline checking with cmd/proofcheck.
func (d *daemon) certificate(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id")
		return
	}
	job, ok := d.srv.Job(id)
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	res, done := job.Result()
	if !done {
		httpError(w, http.StatusConflict, "job not finished")
		return
	}
	if len(res.Certificate) == 0 {
		httpError(w, http.StatusNotFound, "no certificate (submit with cert=1 and an OPTIMAL or UNSATISFIABLE verdict)")
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(res.Certificate)))
	_, _ = w.Write(res.Certificate)
}

func jobView(job *maxsat.Job, withModel bool) jobJSON {
	state, best := job.State()
	out := jobJSON{ID: job.ID(), State: state.String()}
	b := toBoundJSON(best)
	out.LB, out.UB = b.LB, b.UB
	if res, done := job.Result(); done {
		out.Result = toResultJSON(res, withModel)
	}
	return out
}

// stream writes Server-Sent Events: one "bound" event per improvement (the
// current best bounds are replayed first, so a late subscriber sees at least
// one), then a single "result" event. Bound improvements are monotone — the
// lower bound never falls, the upper bound never rises.
func (d *daemon) stream(w http.ResponseWriter, r *http.Request, job *maxsat.Job, withModel bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotImplemented, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	emit := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		fl.Flush()
		return err == nil
	}

	updates := job.Updates()
	for {
		select {
		case e, open := <-updates:
			if !open {
				// Job complete: the result is available now.
				if res, done := job.Result(); done {
					emit("result", toResultJSON(res, withModel))
				}
				return
			}
			if !emit("bound", toBoundJSON(e)) {
				return
			}
		case <-r.Context().Done():
			// Subscriber left; the job itself keeps running.
			return
		}
	}
}

func (d *daemon) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, d.srv.Stats())
}

// livez is pure process liveness: 200 for as long as the daemon can serve
// HTTP at all, including while it recovers or drains. Restarting on a failed
// /livez is what an orchestrator should do; restarting on a slow recovery is
// not — that is /readyz's job.
func (d *daemon) livez(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":         true,
		"uptime_sec": time.Since(d.start).Seconds(),
	})
}

// readyz is traffic-worthiness: 503 while the daemon is replaying a previous
// life's journal (it cannot yet account for pre-crash job IDs) and once it
// starts draining (it will not accept new work). /healthz aliases this —
// existing probe configs keep their drain semantics.
func (d *daemon) readyz(w http.ResponseWriter, r *http.Request) {
	code := http.StatusOK
	body := map[string]any{
		"ok":         true,
		"uptime_sec": time.Since(d.start).Seconds(),
	}
	if !d.ready.Load() {
		code = http.StatusServiceUnavailable
		body["ok"] = false
		body["recovering"] = true
	}
	if d.draining.Load() {
		// Fail the readiness probe during drain so load balancers stop
		// routing here while in-flight jobs run down.
		code = http.StatusServiceUnavailable
		body["ok"] = false
		body["draining"] = true
	}
	writeJSON(w, code, body)
}

func isTrue(s string) bool { return s == "1" || s == "true" || s == "yes" }

// optionsFromQuery maps the /solve query parameters onto maxsat.Options.
func optionsFromQuery(r *http.Request, d daemonOpts) (maxsat.Options, error) {
	q := r.URL.Query()
	o := maxsat.Options{
		Algorithm:    maxsat.Algorithm(q.Get("alg")),
		Encoding:     q.Get("enc"),
		Preprocess:   isTrue(q.Get("pre")),
		ShareClauses: isTrue(q.Get("share")),
		Certify:      isTrue(q.Get("cert")),
	}
	if v := q.Get("jobs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return o, fmt.Errorf("bad jobs %q", v)
		}
		o.Parallelism = n
	}
	if v := q.Get("timeout"); v != "" {
		to, err := time.ParseDuration(v)
		if err != nil || to < 0 {
			return o, fmt.Errorf("bad timeout %q", v)
		}
		o.Timeout = to
	}
	// Clamp only explicit requests; an unset timeout stays zero so the
	// server's DefaultTimeout applies (main caps that default too, keeping
	// -max-timeout a hard ceiling either way).
	if d.maxTimeout > 0 && o.Timeout > d.maxTimeout {
		o.Timeout = d.maxTimeout
	}
	// mem is the per-job clause-storage budget in bytes; unset falls back to
	// the daemon default, and -max-mem is a hard ceiling on both.
	if v := q.Get("mem"); v != "" {
		mem, err := strconv.ParseInt(v, 10, 64)
		if err != nil || mem < 0 {
			return o, fmt.Errorf("bad mem %q", v)
		}
		o.MemoryBudget = mem
	}
	if o.MemoryBudget == 0 {
		o.MemoryBudget = d.defaultMem
	}
	if d.maxMem > 0 && (o.MemoryBudget <= 0 || o.MemoryBudget > d.maxMem) {
		o.MemoryBudget = d.maxMem
	}
	return o, nil
}
