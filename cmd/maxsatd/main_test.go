package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/gen"
)

func newTestServer(t *testing.T, cfg maxsat.ServerConfig) *httptest.Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	srv := maxsat.NewServer(cfg)
	d := newDaemon(srv, daemonOpts{maxBody: 16 << 20, maxTimeout: time.Minute})
	ts := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func dimacs(t *testing.T, w *maxsat.WCNF) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := maxsat.WriteWCNF(&buf, w); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postSolve(t *testing.T, ts *httptest.Server, body []byte, query string) (jobJSON, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/solve"+query, "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out jobJSON
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return out, resp.StatusCode
}

// TestSolveEndToEnd POSTs an instance and checks the daemon returns the same
// optimum as the direct library call (the cmd/maxsat path).
func TestSolveEndToEnd(t *testing.T) {
	ts := newTestServer(t, maxsat.ServerConfig{})
	inst := gen.Pigeonhole(4)
	direct, err := maxsat.Solve(inst.W, maxsat.Options{})
	if err != nil {
		t.Fatal(err)
	}

	job, code := postSolve(t, ts, dimacs(t, inst.W), "?wait=1")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if job.Result == nil || job.Result.Status != "OPTIMAL" || job.Result.Cost != int64(direct.Cost) {
		t.Fatalf("daemon result %+v, want OPTIMAL cost %d", job.Result, direct.Cost)
	}
	if len(job.Result.Model) != inst.W.NumVars {
		t.Fatalf("model has %d literals, want %d", len(job.Result.Model), inst.W.NumVars)
	}
}

// TestCacheHitObservableInStats resubmits the same instance and checks the
// second answer is served from cache, visible in GET /stats.
func TestCacheHitObservableInStats(t *testing.T) {
	ts := newTestServer(t, maxsat.ServerConfig{})
	body := dimacs(t, gen.EquivMiter(5).W)

	first, _ := postSolve(t, ts, body, "?wait=1")
	if first.Result == nil || first.Result.Cached {
		t.Fatalf("first solve: %+v", first.Result)
	}
	// Different algorithm, same formula: still a cache hit.
	second, _ := postSolve(t, ts, body, "?wait=1&alg=maxsatz")
	if second.Result == nil || !second.Result.Cached {
		t.Fatalf("second solve not cached: %+v", second.Result)
	}
	if second.Result.Cost != first.Result.Cost {
		t.Fatalf("cached cost %d != first cost %d", second.Result.Cost, first.Result.Cost)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st maxsat.ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.CacheHits != 1 || st.Submitted != 2 {
		t.Fatalf("stats %+v, want 1 cache hit of 2 submissions", st)
	}
}

// TestJobPollAndSSE submits without waiting, then watches the SSE stream:
// at least one monotone "bound" event must arrive before the "result" event.
func TestJobPollAndSSE(t *testing.T) {
	ts := newTestServer(t, maxsat.ServerConfig{})
	// A slow-ish instance so anytime bounds actually stream mid-run.
	inst := gen.Pigeonhole(7)
	job, code := postSolve(t, ts, dimacs(t, inst.W), "")
	if code != http.StatusAccepted {
		t.Fatalf("status %d, want 202", code)
	}

	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d?sse=1", ts.URL, job.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var (
		bounds    []boundJSON
		result    *resultJSON
		event     string
		sawResult bool
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() && !sawResult {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "bound":
				var b boundJSON
				if err := json.Unmarshal([]byte(data), &b); err != nil {
					t.Fatalf("bound event %q: %v", data, err)
				}
				bounds = append(bounds, b)
			case "result":
				result = new(resultJSON)
				if err := json.Unmarshal([]byte(data), result); err != nil {
					t.Fatalf("result event %q: %v", data, err)
				}
				sawResult = true
			}
		}
	}
	if len(bounds) == 0 {
		t.Fatal("no bound event before the result")
	}
	for i := 1; i < len(bounds); i++ {
		p, c := bounds[i-1], bounds[i]
		if p.LB != nil && c.LB != nil && *c.LB < *p.LB {
			t.Fatalf("SSE LB fell: %v after %v", *c.LB, *p.LB)
		}
		if p.UB != nil && c.UB != nil && *c.UB > *p.UB {
			t.Fatalf("SSE UB rose: %v after %v", *c.UB, *p.UB)
		}
	}
	if result == nil || result.Status != "OPTIMAL" || result.Cost != int64(inst.KnownCost) {
		t.Fatalf("SSE result %+v, want OPTIMAL cost %d", result, inst.KnownCost)
	}
	last := bounds[len(bounds)-1]
	if last.LB == nil || last.UB == nil || *last.LB != result.Cost || *last.UB != result.Cost {
		t.Fatalf("closing bound %+v, want lb=ub=%d", last, result.Cost)
	}

	// Poll view of the finished job.
	pollResp, err := http.Get(fmt.Sprintf("%s/jobs/%d", ts.URL, job.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer pollResp.Body.Close()
	var poll jobJSON
	if err := json.NewDecoder(pollResp.Body).Decode(&poll); err != nil {
		t.Fatal(err)
	}
	if poll.State != "done" || poll.Result == nil || poll.Result.Cost != result.Cost {
		t.Fatalf("poll after SSE: %+v", poll)
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, maxsat.ServerConfig{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil || !h.OK {
		t.Fatalf("healthz body: ok=%v err=%v", h.OK, err)
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, maxsat.ServerConfig{})
	if _, code := postSolve(t, ts, []byte("this is not dimacs"), ""); code != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", code)
	}
	body := dimacs(t, gen.Pigeonhole(3).W)
	if _, code := postSolve(t, ts, body, "?alg=nope"); code != http.StatusBadRequest {
		t.Errorf("unknown algorithm: status %d, want 400", code)
	}
	if _, code := postSolve(t, ts, body, "?timeout=eleven"); code != http.StatusBadRequest {
		t.Errorf("bad timeout: status %d, want 400", code)
	}
	// Weighted instance under a unit-weight-only algorithm.
	w := maxsat.NewWCNF(1)
	w.AddSoft(2, maxsat.FromDIMACS(1))
	w.AddSoft(1, maxsat.FromDIMACS(-1))
	if _, code := postSolve(t, ts, dimacs(t, w), "?alg=msu4-v2"); code != http.StatusBadRequest {
		t.Errorf("weighted msu4: status %d, want 400", code)
	}
	resp, err := http.Get(ts.URL + "/jobs/99999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d, want 404", resp.StatusCode)
	}
}

// TestRunFlagParsing keeps the CLI surface honest without binding a port.
func TestRunFlagParsing(t *testing.T) {
	if code := run([]string{"-badflag"}); code != 2 {
		t.Fatalf("bad flag exit %d, want 2", code)
	}
}

// TestAuthBearerTokens checks the token table gates every endpoint except
// the health probe.
func TestAuthBearerTokens(t *testing.T) {
	srv := maxsat.NewServer(maxsat.ServerConfig{Workers: 1})
	d := newDaemon(srv, daemonOpts{maxBody: 16 << 20, maxTimeout: time.Minute,
		tokens: map[string]string{"s3cret": "alice"}})
	ts := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	body := dimacs(t, gen.Pigeonhole(3).W)

	// No credentials → 401 with a challenge.
	resp, err := http.Post(ts.URL+"/solve?wait=1", "text/plain", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated: status %d, want 401", resp.StatusCode)
	}
	if resp.Header.Get("WWW-Authenticate") == "" {
		t.Fatal("401 without a WWW-Authenticate challenge")
	}
	// Wrong secret → 401.
	req, _ := http.NewRequest("POST", ts.URL+"/solve?wait=1", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad token: status %d, want 401", resp.StatusCode)
	}
	// Right secret → solves.
	req, _ = http.NewRequest("POST", ts.URL+"/solve?wait=1", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated solve: status %d, want 200", resp.StatusCode)
	}
	// The health probe stays open for credential-less checkers.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz behind auth: status %d", hresp.StatusCode)
	}
}

// TestShedReturns429WithRetryAfter fills the queue and checks the shed
// submission gets 429 plus a Retry-After hint instead of a bare 503.
func TestShedReturns429WithRetryAfter(t *testing.T) {
	ts := newTestServer(t, maxsat.ServerConfig{Workers: 1, QueueDepth: 1})
	// Occupy the only queue slot with a job that will not finish on its own.
	long := dimacs(t, gen.Pigeonhole(9).W)
	if _, code := postSolve(t, ts, long, "?timeout=1m"); code != http.StatusAccepted {
		t.Fatalf("first submit: status %d", code)
	}
	resp, err := http.Post(ts.URL+"/solve", "text/plain",
		bytes.NewReader(dimacs(t, gen.Pigeonhole(4).W)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without a Retry-After header")
	}
}

// TestRateLimit429 drives the per-client token bucket over HTTP: same peer,
// burst 1 → the second request sheds with 429.
func TestRateLimit429(t *testing.T) {
	ts := newTestServer(t, maxsat.ServerConfig{Workers: 1, RatePerSec: 0.001, Burst: 1})
	body := dimacs(t, gen.Pigeonhole(3).W)
	if _, code := postSolve(t, ts, body, "?wait=1"); code != http.StatusOK {
		t.Fatalf("first submit: status %d", code)
	}
	_, code := postSolve(t, ts, body, "?wait=1")
	if code != http.StatusTooManyRequests {
		t.Fatalf("second submit: status %d, want 429", code)
	}
}

// TestDrainGraceful boots the real daemon loop, attaches an SSE stream to a
// long job, then cancels the run context (the SIGTERM path): the daemon must
// stop admitting, deliver a terminal "result" event to the stream, and exit 0.
func TestDrainGraceful(t *testing.T) {
	ready := make(chan string, 1)
	onReady = func(addr string) { ready <- addr }
	defer func() { onReady = nil }()

	ctx, cancel := context.WithCancel(context.Background())
	exit := make(chan int, 1)
	go func() {
		exit <- runWith(ctx, []string{
			"-addr", "127.0.0.1:0", "-workers", "1", "-drain", "500ms",
		})
	}()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never came up")
	}
	base := "http://" + addr

	// A job too hard to finish: it will still be running when the drain
	// deadline cancels it, and must then report its best bounds.
	job, code := postSolve(t, &httptest.Server{URL: base}, dimacs(t, gen.Pigeonhole(10).W), "")
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	stream, err := http.Get(fmt.Sprintf("%s/jobs/%d?sse=1", base, job.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()

	cancel() // SIGTERM

	// During the drain, admissions fail and the health probe goes dark.
	deadline := time.Now().Add(5 * time.Second)
	for {
		hresp, err := http.Get(base + "/healthz")
		if err != nil {
			break // listener already closed: drain finished
		}
		st := hresp.StatusCode
		hresp.Body.Close()
		if st == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The SSE stream must end with a terminal "result" event.
	var sawResult bool
	var event string
	sc := bufio.NewScanner(stream.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			event = strings.TrimPrefix(line, "event: ")
		} else if strings.HasPrefix(line, "data: ") && event == "result" {
			sawResult = true
		}
	}
	if !sawResult {
		t.Fatal("SSE stream ended without a terminal result event")
	}

	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d, want 0", code)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon never exited after the drain")
	}
}

// TestSolveAlgOLL submits a weighted instance with alg=oll and checks the
// daemon routes it to the OLL optimizer and returns the known optimum.
func TestSolveAlgOLL(t *testing.T) {
	ts := newTestServer(t, maxsat.ServerConfig{})
	inst := gen.SelectionWeighted(3, 3, 4)

	job, code := postSolve(t, ts, dimacs(t, inst.W), "?wait=1&alg=oll")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if job.Result == nil || job.Result.Status != "OPTIMAL" || job.Result.Cost != int64(inst.KnownCost) {
		t.Fatalf("daemon result %+v, want OPTIMAL cost %d", job.Result, inst.KnownCost)
	}
	if job.Result.Algorithm != "oll" {
		t.Fatalf("algorithm %q, want oll", job.Result.Algorithm)
	}
}
