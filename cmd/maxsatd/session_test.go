package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro"
)

// sessionReq fires one request against the session endpoints and decodes the
// JSON response into out (skipped when out is nil or the body is empty).
func sessionReq(t *testing.T, ts *httptest.Server, method, path string, body []byte, token string, out any) int {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// TestSessionEndToEnd is the daemon-level session smoke: open a session,
// push two deltas, and check (a) every delta re-solve reports the warm
// solver answered, (b) a from-scratch POST /solve of the same accumulated
// formula is served from the verified cache the session populated — the
// interchangeability contract over the wire — and (c) the /stats session
// counters moved.
func TestSessionEndToEnd(t *testing.T) {
	ts := newTestServer(t, maxsat.ServerConfig{})

	// Base: a contradictory unit-soft pair over x1 (optimum 1), in the
	// headerless 2022 dialect the delta endpoint speaks.
	var sess sessionJSON
	if code := sessionReq(t, ts, "POST", "/sessions", []byte("1 1 0\n1 -1 0\n"), "", &sess); code != http.StatusCreated {
		t.Fatalf("open: status %d", code)
	}
	acc := maxsat.NewWCNF(0) // test-maintained mirror of the accumulation
	acc.AddSoft(1, maxsat.FromDIMACS(1))
	acc.AddSoft(1, maxsat.FromDIMACS(-1))

	base := fmt.Sprintf("/sessions/%d", sess.ID)
	steps := []struct {
		delta string
		apply func()
		want  int64
	}{
		{"1 2 0\n1 -2 0\n", func() {
			acc.AddSoft(1, maxsat.FromDIMACS(2))
			acc.AddSoft(1, maxsat.FromDIMACS(-2))
		}, 2},
		{"h 3 0\n1 -3 0\n", func() {
			acc.AddHard(maxsat.FromDIMACS(3))
			acc.AddSoft(1, maxsat.FromDIMACS(-3))
		}, 3},
	}
	for i, step := range steps {
		var view sessionJSON
		if code := sessionReq(t, ts, "POST", base+"/delta", []byte(step.delta), "", &view); code != http.StatusOK {
			t.Fatalf("delta %d: status %d", i, code)
		}
		step.apply()
		if view.Clauses != len(acc.Clauses) {
			t.Fatalf("delta %d: view reports %d clauses, want %d", i, view.Clauses, len(acc.Clauses))
		}
		var job jobJSON
		if code := sessionReq(t, ts, "POST", base+"/solve?wait=1", nil, "", &job); code != http.StatusOK {
			t.Fatalf("solve %d: status %d", i, code)
		}
		if job.Result == nil || job.Result.Status != "OPTIMAL" || job.Result.Cost != step.want {
			t.Fatalf("solve %d: result %+v, want OPTIMAL cost %d", i, job.Result, step.want)
		}
		if !job.Result.Reused {
			t.Fatalf("solve %d: warm solver not reused", i)
		}
	}

	// Interchangeability over the wire: one-shot /solve of the accumulated
	// DIMACS hits the verified cache the session's last solve populated.
	job, code := postSolve(t, ts, dimacs(t, acc), "?wait=1")
	if code != http.StatusOK {
		t.Fatalf("one-shot solve: status %d", code)
	}
	if job.Result == nil || job.Result.Cost != 3 {
		t.Fatalf("one-shot result %+v, want cost 3", job.Result)
	}
	if !job.Result.Cached {
		t.Fatal("one-shot solve of the session's accumulation was not a cache hit")
	}

	var stats maxsat.ServerStats
	if code := sessionReq(t, ts, "GET", "/stats", nil, "", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.SessionsOpen != 1 || stats.SessionSolves != 2 || stats.SessionReused != 2 {
		t.Fatalf("stats: open=%d solves=%d reused=%d, want 1/2/2",
			stats.SessionsOpen, stats.SessionSolves, stats.SessionReused)
	}

	if code := sessionReq(t, ts, "DELETE", base, nil, "", nil); code != http.StatusOK {
		t.Fatalf("close: status %d", code)
	}
	if code := sessionReq(t, ts, "DELETE", base, nil, "", nil); code != http.StatusNotFound {
		t.Fatalf("double close: status %d, want 404", code)
	}
}

// TestSessionOwnership checks the per-client boundary: with bearer tokens
// on, a session opened by alice is invisible to bob's credentials.
func TestSessionOwnership(t *testing.T) {
	srv := maxsat.NewServer(maxsat.ServerConfig{Workers: 2})
	d := newDaemon(srv, daemonOpts{
		maxBody: 1 << 20,
		tokens:  map[string]string{"s3cret": "alice", "hunter2": "bob"},
	})
	ts := httptest.NewServer(d.handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	var sess sessionJSON
	if code := sessionReq(t, ts, "POST", "/sessions", []byte("1 1 0\n"), "s3cret", &sess); code != http.StatusCreated {
		t.Fatalf("open: status %d", code)
	}
	base := fmt.Sprintf("/sessions/%d", sess.ID)
	if code := sessionReq(t, ts, "POST", base+"/delta", []byte("h 1 0\n"), "hunter2", nil); code != http.StatusForbidden {
		t.Fatalf("cross-client delta: status %d, want 403", code)
	}
	if code := sessionReq(t, ts, "DELETE", base, nil, "hunter2", nil); code != http.StatusForbidden {
		t.Fatalf("cross-client close: status %d, want 403", code)
	}
	if code := sessionReq(t, ts, "DELETE", base, nil, "s3cret", nil); code != http.StatusOK {
		t.Fatalf("owner close: status %d", code)
	}
}

// TestSessionHTTPErrors exercises the error mapping: disabled sessions,
// bad ids, bad delta syntax, and weighted softs under a unit-weight-only
// algorithm.
func TestSessionHTTPErrors(t *testing.T) {
	off := newTestServer(t, maxsat.ServerConfig{MaxSessions: -1})
	if code := sessionReq(t, off, "POST", "/sessions", nil, "", nil); code != http.StatusForbidden {
		t.Fatalf("disabled open: status %d, want 403", code)
	}

	ts := newTestServer(t, maxsat.ServerConfig{})
	if code := sessionReq(t, ts, "POST", "/sessions/zzz/delta", nil, "", nil); code != http.StatusBadRequest {
		t.Fatalf("bad id: status %d, want 400", code)
	}
	if code := sessionReq(t, ts, "POST", "/sessions/999/delta", nil, "", nil); code != http.StatusNotFound {
		t.Fatalf("missing session: status %d, want 404", code)
	}

	var sess sessionJSON
	if code := sessionReq(t, ts, "POST", "/sessions?alg=msu3", []byte("1 1 0\n"), "", &sess); code != http.StatusCreated {
		t.Fatalf("open: status %d", code)
	}
	base := fmt.Sprintf("/sessions/%d", sess.ID)
	if code := sessionReq(t, ts, "POST", base+"/delta?reweight=nope", nil, "", nil); code != http.StatusBadRequest {
		t.Fatalf("bad reweight: status %d, want 400", code)
	}
	if code := sessionReq(t, ts, "POST", base+"/delta?assume=0", nil, "", nil); code != http.StatusBadRequest {
		t.Fatalf("bad assumption: status %d, want 400", code)
	}
	// A weighted soft under msu3 (unit-weight-only) is rejected before it
	// reaches the accumulation.
	if code := sessionReq(t, ts, "POST", base+"/delta", []byte("5 2 0\n"), "", nil); code != http.StatusBadRequest {
		t.Fatalf("weighted soft under msu3: status %d, want 400", code)
	}
	if code := sessionReq(t, ts, "DELETE", base, nil, "", nil); code != http.StatusOK {
		t.Fatalf("close: status %d", code)
	}
}
