package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro"
	"repro/internal/gen"
)

// TestMain lets the test binary double as the daemon: when re-exec'd with
// MAXSATD_CHILD_ARGS set, it runs maxsatd's real main loop instead of the
// tests. The crash-recovery test uses this to kill a genuine daemon process
// with SIGKILL — no graceful path, no flushes — and restart it on the same
// data directory.
func TestMain(m *testing.M) {
	if args := os.Getenv("MAXSATD_CHILD_ARGS"); args != "" {
		var argv []string
		if err := json.Unmarshal([]byte(args), &argv); err != nil {
			fmt.Fprintf(os.Stderr, "bad MAXSATD_CHILD_ARGS: %v\n", err)
			os.Exit(2)
		}
		os.Exit(run(argv))
	}
	os.Exit(m.Run())
}

// freePort reserves an ephemeral port and releases it for the child to bind.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// startChild launches the test binary as a real maxsatd process.
func startChild(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	argv, err := json.Marshal(args)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "MAXSATD_CHILD_ARGS="+string(argv))
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

// awaitReady polls /readyz until it returns 200, also asserting /livez is
// already 200 while readiness may still be 503.
func awaitReady(t *testing.T, base string, deadline time.Duration) {
	t.Helper()
	stop := time.Now().Add(deadline)
	live := false
	for time.Now().Before(stop) {
		if !live {
			if resp, err := http.Get(base + "/livez"); err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					live = true
				}
			}
		}
		if live {
			resp, err := http.Get(base + "/readyz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return
				}
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became ready", base)
}

// TestCrashRecovery kills a durable daemon with SIGKILL mid-solve and checks
// the restarted process (same -data-dir) lost nothing: the certified answer
// a client already saw is served from the recovered store with a verifying
// certificate, the interrupted job is replayed under its original ID, and
// /readyz flips 200 only after recovery.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec subprocess test")
	}
	dir := t.TempDir()
	addr := freePort(t)
	base := "http://" + addr
	args := []string{"-addr", addr, "-workers", "1", "-data-dir", dir, "-timeout", "0", "-max-timeout", "0"}

	child := startChild(t, args...)
	defer func() { _ = child.Process.Kill() }()
	awaitReady(t, base, 15*time.Second)

	// A small certified solve: once the 200 lands, the result is durable.
	small := maxsat.NewWCNF(1)
	small.AddSoft(1, maxsat.FromDIMACS(1))
	small.AddSoft(1, maxsat.FromDIMACS(-1))
	smallBody := dimacs(t, small)
	resp, err := http.Post(base+"/solve?wait=1&cert=1", "text/plain", bytes.NewReader(smallBody))
	if err != nil {
		t.Fatal(err)
	}
	var first jobJSON
	err = json.NewDecoder(resp.Body).Decode(&first)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("certified solve: status %d err %v", resp.StatusCode, err)
	}
	if first.Result == nil || first.Result.Status != "OPTIMAL" || len(first.Result.Certificate) == 0 {
		t.Fatalf("certified solve result: %+v", first.Result)
	}

	// A slow job pins the single worker; its 202 means it is journaled.
	slowBody := dimacs(t, gen.Pigeonhole(8).W)
	resp, err = http.Post(base+"/solve", "text/plain", bytes.NewReader(slowBody))
	if err != nil {
		t.Fatal(err)
	}
	var slow jobJSON
	err = json.NewDecoder(resp.Body).Decode(&slow)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow submit: status %d err %v", resp.StatusCode, err)
	}

	// Crash: SIGKILL, no graceful anything.
	if err := child.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = child.Wait()

	child2 := startChild(t, args...)
	defer func() { _ = child2.Process.Kill(); _ = child2.Wait() }()
	awaitReady(t, base, 15*time.Second)

	// The certified answer survived: served from the recovered store (the
	// worker is busy replaying the slow job, so only a cache hit can answer
	// instantly) with a certificate that still verifies.
	resp, err = http.Post(base+"/solve?wait=1&cert=1", "text/plain", bytes.NewReader(smallBody))
	if err != nil {
		t.Fatal(err)
	}
	var again jobJSON
	err = json.NewDecoder(resp.Body).Decode(&again)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-crash solve: status %d err %v", resp.StatusCode, err)
	}
	if again.Result == nil || !again.Result.Cached || again.Result.Cost != first.Result.Cost {
		t.Fatalf("post-crash result not served from recovered store: %+v", again.Result)
	}
	if err := maxsat.CheckCertificate(small, again.Result.Certificate); err != nil {
		t.Fatalf("recovered certificate rejected: %v", err)
	}

	// The interrupted job replays under its original ID.
	resp, err = http.Get(fmt.Sprintf("%s/jobs/%d", base, slow.ID))
	if err != nil {
		t.Fatal(err)
	}
	var replayed jobJSON
	err = json.NewDecoder(resp.Body).Decode(&replayed)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-crash job id after restart: status %d err %v", resp.StatusCode, err)
	}
	if replayed.ID != slow.ID {
		t.Fatalf("replayed job id %d, want %d", replayed.ID, slow.ID)
	}

	var stats struct {
		Recovered int64 `json:"recovered"`
		Replayed  int64 `json:"replayed"`
	}
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Recovered < 1 || stats.Replayed < 1 {
		t.Fatalf("recovery stats after crash: %+v", stats)
	}
}
