package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The tests run the real experiment pipeline with a microscopic timeout:
// every solver aborts almost immediately, exercising the full harness,
// rendering, and CSV paths in seconds.

func TestExperimentsTable2Tiny(t *testing.T) {
	var out bytes.Buffer
	dir := t.TempDir()
	code := run([]string{"-run", "table2", "-timeout", "1ms", "-csv", dir}, &out)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "Table 2") {
		t.Fatalf("missing table output:\n%s", out.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "table2.csv")); err != nil {
		t.Fatalf("csv missing: %v", err)
	}
}

func TestExperimentsFig1Tiny(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-run", "fig1", "-timeout", "1ms"}, &out)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "points above diagonal") {
		t.Fatalf("missing scatter output:\n%s", out.String())
	}
}

func TestExperimentsPortfolioRow(t *testing.T) {
	var out bytes.Buffer
	code := run([]string{"-run", "table2", "-timeout", "1ms", "-portfolio", "2"}, &out)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "portfolio-2") {
		t.Fatalf("portfolio row missing from table:\n%s", out.String())
	}
}

func TestExperimentsBadFlag(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-run", "bogus", "-timeout", "1ms"}, &out); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestExperimentsWeightedTableTiny(t *testing.T) {
	var out bytes.Buffer
	dir := t.TempDir()
	code := run([]string{"-run", "wtable", "-timeout", "1ms", "-csv", dir}, &out)
	if code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "Weighted table") {
		t.Fatalf("missing weighted table output:\n%s", out.String())
	}
	for _, col := range []string{"wmsu4", "oll"} {
		if !strings.Contains(out.String(), col) {
			t.Fatalf("column %s missing:\n%s", col, out.String())
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "wtable.csv")); err != nil {
		t.Fatalf("csv missing: %v", err)
	}
}
