// Command experiments regenerates the evaluation artifacts of the DATE 2008
// paper on the synthesized benchmark suites:
//
//	table1  — aborted-instance counts for maxsatz / pbo / msu4-v1 / msu4-v2
//	table2  — aborted counts on the 29 design-debugging instances
//	wtable  — weighted suite across pbo / pbo-bin / wmsu1 / wmsu4 / oll
//	fig1    — scatter maxsatz vs msu4-v2 (ASCII + CSV)
//	fig2    — scatter pbo vs msu4-v2
//	fig3    — scatter msu4-v1 vs msu4-v2
//	all     — everything above, plus the cross-solver agreement check
//
// Usage:
//
//	experiments [-run all] [-timeout 5s] [-seed 42] [-extended] [-pre] [-portfolio N] [-share] [-csv dir] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/gen"
	"repro/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		what      = fs.String("run", "all", "experiment: table1, table2, wtable, fig1, fig2, fig3, all")
		timeout   = fs.Duration("timeout", 5*time.Second, "per-instance per-solver timeout (paper: 1000s)")
		seed      = fs.Int64("seed", 42, "benchmark generator seed")
		extended  = fs.Bool("extended", false, "add msu1/msu2/msu3/pbo-bin to the line-up")
		pre       = fs.Bool("pre", false, "double every solver with a preprocessing-enabled +pre column")
		portfolio = fs.Int("portfolio", 0, "also run the bound-sharing portfolio with N parallel solvers (0 = off)")
		share     = fs.Bool("share", false, "with -portfolio N, add a clause-sharing portfolio column")
		csvDir    = fs.String("csv", "", "also write CSV files into this directory")
		verbose   = fs.Bool("v", false, "per-run progress output")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	cfg := harness.Config{Timeout: *timeout}
	if *extended {
		cfg.Solvers = harness.ExtendedSolvers()
	}
	if *pre {
		if cfg.Solvers == nil {
			cfg.Solvers = harness.DefaultSolvers()
		}
		cfg.Solvers = harness.ComparePreprocessing(cfg.Solvers)
	}
	if *portfolio > 0 {
		if cfg.Solvers == nil {
			cfg.Solvers = harness.DefaultSolvers()
		}
		cfg.Solvers = append(cfg.Solvers, harness.PortfolioSpec(*portfolio))
		if *share {
			cfg.Solvers = append(cfg.Solvers, harness.PortfolioShareSpec(*portfolio))
		}
	}
	if *verbose {
		cfg.Progress = os.Stderr
	}

	needMain := *what == "all" || *what == "table1" || *what == "fig1" || *what == "fig2" || *what == "fig3"
	needDebug := *what == "all" || *what == "table2"
	needWeighted := *what == "all" || *what == "wtable"

	var mainRep, debugRep, weightedRep *harness.Report
	if needMain {
		insts := gen.Suite(*seed)
		fmt.Fprintf(out, "running %d industrial-style instances x %d solvers (timeout %v) ...\n",
			len(insts), len(solverNames(cfg)), *timeout)
		mainRep = harness.Run(insts, cfg)
	}
	if needDebug {
		insts := gen.DebugSuite(*seed)
		fmt.Fprintf(out, "running %d design-debugging instances x %d solvers (timeout %v) ...\n",
			len(insts), len(solverNames(cfg)), *timeout)
		debugRep = harness.Run(insts, cfg)
	}
	if needWeighted {
		// The weighted table runs its own line-up: the unweighted branch-
		// and-bound and msu4 columns cannot prove weighted optima.
		wcfg := harness.Config{Timeout: *timeout, Solvers: harness.WeightedSolvers(), Progress: cfg.Progress}
		if *pre {
			wcfg.Solvers = harness.ComparePreprocessing(wcfg.Solvers)
		}
		insts := gen.WeightedSuite(*seed)
		fmt.Fprintf(out, "running %d weighted instances x %d solvers (timeout %v) ...\n",
			len(insts), len(wcfg.Solvers), *timeout)
		weightedRep = harness.Run(insts, wcfg)
	}

	switch *what {
	case "table1":
		mainRep.RenderAbortTable(out, "Table 1: number of aborted instances")
	case "table2":
		debugRep.RenderAbortTable(out, "Table 2: design debugging instances (aborted)")
	case "wtable":
		weightedRep.RenderAbortTable(out, "Weighted table: weighted partial MaxSAT (aborted)")
	case "fig1":
		mainRep.RenderScatterASCII(out, "msu4-v2", "maxsatz", 64, 24)
	case "fig2":
		mainRep.RenderScatterASCII(out, "msu4-v2", "pbo", 64, 24)
	case "fig3":
		mainRep.RenderScatterASCII(out, "msu4-v2", "msu4-v1", 64, 24)
	case "all":
		mainRep.RenderAbortTable(out, "Table 1: number of aborted instances")
		fmt.Fprintln(out)
		fmt.Fprintln(out, "Per-family abort breakdown:")
		mainRep.RenderFamilyTable(out)
		solved, vbsTotal := mainRep.VBS()
		fmt.Fprintf(out, "virtual best solver: %d/%d solved, %.2fs total\n",
			solved, len(mainRep.Instances), vbsTotal.Seconds())
		fmt.Fprintln(out)
		debugRep.RenderAbortTable(out, "Table 2: design debugging instances (aborted)")
		fmt.Fprintln(out)
		weightedRep.RenderAbortTable(out, "Weighted table: weighted partial MaxSAT (aborted)")
		fmt.Fprintln(out)
		fmt.Fprintln(out, "Figure 1: maxsatz (y) vs msu4-v2 (x)")
		mainRep.RenderScatterASCII(out, "msu4-v2", "maxsatz", 64, 24)
		fmt.Fprintln(out)
		fmt.Fprintln(out, "Figure 2: pbo (y) vs msu4-v2 (x)")
		mainRep.RenderScatterASCII(out, "msu4-v2", "pbo", 64, 24)
		fmt.Fprintln(out)
		fmt.Fprintln(out, "Figure 3: msu4-v1 (y) vs msu4-v2 (x)")
		mainRep.RenderScatterASCII(out, "msu4-v2", "msu4-v1", 64, 24)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *what)
		return 2
	}

	// Agreement check: every proved optimum must be consistent across
	// solvers and with analytically known optima.
	bad := 0
	for _, rep := range []*harness.Report{mainRep, debugRep, weightedRep} {
		if rep == nil {
			continue
		}
		for _, p := range rep.CheckAgreement() {
			fmt.Fprintf(os.Stderr, "AGREEMENT VIOLATION: %s\n", p)
			bad++
		}
	}
	if bad == 0 {
		fmt.Fprintln(out, "\nagreement check: all proved optima consistent")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if mainRep != nil {
			writeCSV(*csvDir, "table1.csv", mainRep.WriteCSV)
			writeScatter(*csvDir, "fig1.csv", mainRep, "msu4-v2", "maxsatz")
			writeScatter(*csvDir, "fig2.csv", mainRep, "msu4-v2", "pbo")
			writeScatter(*csvDir, "fig3.csv", mainRep, "msu4-v2", "msu4-v1")
		}
		if debugRep != nil {
			writeCSV(*csvDir, "table2.csv", debugRep.WriteCSV)
		}
		if weightedRep != nil {
			writeCSV(*csvDir, "wtable.csv", weightedRep.WriteCSV)
		}
		fmt.Fprintf(out, "CSV written to %s\n", *csvDir)
	}
	if bad > 0 {
		return 1
	}
	return 0
}

func solverNames(cfg harness.Config) []string {
	specs := cfg.Solvers
	if specs == nil {
		specs = harness.DefaultSolvers()
	}
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

func writeCSV(dir, name string, f func(io.Writer)) {
	fh, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer fh.Close()
	f(fh)
}

func writeScatter(dir, name string, rep *harness.Report, x, y string) {
	fh, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return
	}
	defer fh.Close()
	rep.WriteScatterCSV(fh, x, y)
}
