// Command genbench writes the benchmark suites of this reproduction to disk
// as DIMACS files: the industrial-style Table 1 suite (.cnf / .wcnf) and the
// 29-instance design-debugging Table 2 suite (.wcnf), plus a manifest
// listing family and known optimum per instance.
//
// Usage:
//
//	genbench [-out bench] [-seed 42] [-suite table1|table2|weighted|all] [-format classic|mse22]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
	"repro/internal/gen"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("genbench", flag.ContinueOnError)
	var (
		out    = fs.String("out", "bench", "output directory")
		seed   = fs.Int64("seed", 42, "generator seed")
		suite  = fs.String("suite", "all", "which suite: table1, table2, weighted, all")
		format = fs.String("format", "classic", "wcnf dialect: classic (p wcnf header) or mse22 (headerless, h-prefixed hards)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "classic" && *format != "mse22" {
		fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
		return 2
	}
	var insts []gen.Instance
	switch *suite {
	case "table1":
		insts = gen.Suite(*seed)
	case "table2":
		insts = gen.DebugSuite(*seed)
	case "weighted":
		insts = gen.WeightedSuite(*seed)
	case "all":
		insts = append(gen.Suite(*seed), gen.DebugSuite(*seed)...)
		insts = append(insts, gen.WeightedSuite(*seed)...)
	default:
		fmt.Fprintf(os.Stderr, "unknown suite %q\n", *suite)
		return 2
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	manifest, err := os.Create(filepath.Join(*out, "MANIFEST.csv"))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer manifest.Close()
	fmt.Fprintln(manifest, "name,family,file,vars,clauses,hard,soft,known_cost")
	for _, in := range insts {
		ext := ".wcnf"
		if in.W.NumHard() == 0 && !in.W.Weighted() {
			ext = ".cnf"
		}
		name := in.Name + ext
		f, err := os.Create(filepath.Join(*out, name))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		switch {
		case ext == ".cnf":
			plain := maxsat.NewFormula(in.W.NumVars)
			for _, c := range in.W.Clauses {
				plain.AddClause(c.Clause...)
			}
			err = maxsat.WriteDIMACS(f, plain)
		case *format == "mse22":
			err = maxsat.WriteWCNF2022(f, in.W)
		default:
			err = maxsat.WriteWCNF(f, in.W)
		}
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Fprintf(manifest, "%s,%s,%s,%d,%d,%d,%d,%d\n",
			in.Name, in.Family, name, in.W.NumVars, in.W.NumClauses(),
			in.W.NumHard(), in.W.NumSoft(), in.KnownCost)
	}
	fmt.Printf("wrote %d instances to %s\n", len(insts), *out)
	return 0
}
