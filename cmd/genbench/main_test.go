package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func TestGenbenchTable2(t *testing.T) {
	dir := t.TempDir()
	if code := run([]string{"-out", dir, "-suite", "table2", "-seed", "7"}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	manifest, err := os.ReadFile(filepath.Join(dir, "MANIFEST.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(manifest)), "\n")
	if len(lines) != 30 { // header + 29 instances
		t.Fatalf("manifest has %d lines, want 30", len(lines))
	}
	// Every listed file must parse back.
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		w, err := maxsat.ParseWCNFFile(filepath.Join(dir, fields[2]))
		if err != nil {
			t.Fatalf("%s: %v", fields[2], err)
		}
		if w.NumClauses() == 0 {
			t.Fatalf("%s: empty instance", fields[2])
		}
	}
}

func TestGenbenchTable1Files(t *testing.T) {
	dir := t.TempDir()
	if code := run([]string{"-out", dir, "-suite", "table1"}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var cnfs, wcnfs int
	for _, e := range entries {
		switch filepath.Ext(e.Name()) {
		case ".cnf":
			cnfs++
		case ".wcnf":
			wcnfs++
		}
	}
	if cnfs == 0 || wcnfs == 0 {
		t.Fatalf("expected both .cnf and .wcnf outputs, got %d/%d", cnfs, wcnfs)
	}
}

func TestGenbenchBadSuite(t *testing.T) {
	if code := run([]string{"-suite", "bogus", "-out", t.TempDir()}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestGenbenchWeightedMSE22(t *testing.T) {
	dir := t.TempDir()
	if code := run([]string{"-out", dir, "-suite", "weighted", "-format", "mse22"}); code != 0 {
		t.Fatalf("exit %d", code)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wcnfs, hards int
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".wcnf" {
			continue
		}
		wcnfs++
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(raw), "p wcnf") {
			t.Fatalf("%s: mse22 output must be headerless", e.Name())
		}
		w, err := maxsat.ParseWCNFFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		hards += w.NumHard()
	}
	if wcnfs == 0 {
		t.Fatal("no weighted instances written")
	}
	if hards == 0 {
		t.Fatal("lost hard clauses in mse22 round trip")
	}
}

func TestGenbenchBadFormat(t *testing.T) {
	if code := run([]string{"-format", "bogus", "-out", t.TempDir()}); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
