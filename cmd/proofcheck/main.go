// Command proofcheck validates a MaxSAT proof certificate against the
// instance it claims to solve, using only the independent checker in
// internal/proof — none of the solver, preprocessor, or serving code is
// involved, so a verdict from this tool does not require trusting any of
// them.
//
// Usage:
//
//	proofcheck <instance.cnf|instance.wcnf> <certificate>
//
// The certificate is the binary blob produced by a solve with certification
// enabled: maxsat.Result.Certificate, `maxsat -cert`, or the daemon's
// GET /jobs/{id}/certificate endpoint. Exit status 0 means the verdict is
// machine-checked; 1 means the certificate was rejected (or could not be
// read).
package main

import (
	"fmt"
	"os"

	"repro/internal/cnf"
	"repro/internal/proof"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: proofcheck <instance.cnf|instance.wcnf> <certificate>")
		return 2
	}
	w, err := cnf.ParseWCNFFile(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "proofcheck: %v\n", err)
		return 1
	}
	data, err := os.ReadFile(args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "proofcheck: %v\n", err)
		return 1
	}
	cert, err := proof.Decode(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "proofcheck: REJECTED: %v\n", err)
		return 1
	}
	switch cert.Kind {
	case proof.KindOptimal:
		fmt.Printf("certificate: OPTIMAL cost=%d, %d vars, %d proof step(s)\n",
			cert.Cost, cert.NumVars, len(cert.Steps))
	case proof.KindUnsat:
		fmt.Printf("certificate: UNSATISFIABLE, %d vars, %d proof step(s)\n",
			cert.NumVars, len(cert.Steps))
	}
	if err := proof.Check(w, cert); err != nil {
		fmt.Fprintf(os.Stderr, "proofcheck: REJECTED: %v\n", err)
		return 1
	}
	fmt.Println("proofcheck: VERIFIED")
	return 0
}
