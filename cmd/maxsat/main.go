// Command maxsat is a MaxSAT solver front-end: it reads a DIMACS .cnf
// (plain MaxSAT) or .wcnf (weighted partial MaxSAT) file and prints the
// result in the MaxSAT-evaluation output convention:
//
//	o <cost>            optimum (or best known) cost
//	s OPTIMUM FOUND     (or s UNSATISFIABLE / s UNKNOWN)
//	v <model literals>  witness assignment, DIMACS-signed
//
// Usage:
//
//	maxsat [-alg msu4-v2] [-enc sorter] [-jobs 4] [-share] [-pre] [-timeout 30s] [-stats] [-no-model] file
//
// -cert makes OPTIMAL and UNSATISFIABLE verdicts carry a machine-checkable
// proof certificate, re-validated in-process before the result is printed.
// With -cert, -proof writes the certificate's refutation as standard ASCII
// DRAT and -proof-cnf writes the DIMACS formula it refutes, so external
// tools (drat-trim) can cross-check the trace:
//
//	maxsat -cert -proof inst.drat -proof-cnf inst.bound.cnf inst.wcnf
//	drat-trim inst.bound.cnf inst.drat
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/cnf"
	"repro/internal/proof"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("maxsat", flag.ContinueOnError)
	var (
		alg     = fs.String("alg", "", "algorithm: auto (default), msu4-v1, msu4-v2, msu4, msu1, msu2, msu3, wmsu1, wmsu4, oll, pbo, pbo-bin, maxsatz, portfolio")
		enc     = fs.String("enc", "", "cardinality encoding for -alg msu4: bdd, sorter, seq, totalizer")
		jobs    = fs.Int("jobs", 0, "parallel solvers raced by -alg portfolio (0 = full line-up)")
		share   = fs.Bool("share", false, "learnt-clause sharing between -alg portfolio members")
		pre     = fs.Bool("pre", false, "soft-aware preprocessing of the hard clauses before optimizing")
		timeout = fs.Duration("timeout", 0, "overall solve timeout (0 = unbounded)")
		stats   = fs.Bool("stats", false, "print iteration/conflict statistics")
		noModel = fs.Bool("no-model", false, "suppress the v line")
		cert    = fs.Bool("cert", false, "emit and verify a proof certificate for OPTIMAL/UNSATISFIABLE verdicts")
		prf     = fs.String("proof", "", "with -cert: write the certificate's refutation as ASCII DRAT to this file")
		prfCNF  = fs.String("proof-cnf", "", "with -proof: write the DIMACS formula the DRAT file refutes")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: maxsat [flags] <file.cnf|file.wcnf>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	path := fs.Arg(0)

	w, err := maxsat.ParseWCNFFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c error: %v\n", err)
		return 1
	}
	fmt.Printf("c instance %s: %d vars, %d clauses (%d hard, %d soft)\n",
		path, w.NumVars, w.NumClauses(), w.NumHard(), w.NumSoft())

	o := maxsat.Options{
		Algorithm:    maxsat.Algorithm(*alg),
		Encoding:     *enc,
		Timeout:      *timeout,
		Parallelism:  *jobs,
		Preprocess:   *pre,
		ShareClauses: *share,
		Certify:      *cert,
	}
	start := time.Now()
	r, err := maxsat.Solve(w, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c error: %v\n", err)
		return 1
	}
	fmt.Printf("c algorithm %s, %.3fs\n", r.Algorithm, time.Since(start).Seconds())
	if *cert && r.Certificate != nil {
		if err := maxsat.CheckCertificate(w, r.Certificate); err != nil {
			fmt.Fprintf(os.Stderr, "c error: certificate failed verification: %v\n", err)
			return 1
		}
		fmt.Printf("c certificate %d bytes, verified by the independent checker\n", len(r.Certificate))
		if *prf != "" {
			if err := writeProof(w, r.Certificate, *prf, *prfCNF); err != nil {
				fmt.Fprintf(os.Stderr, "c error: %v\n", err)
				return 1
			}
		}
	}
	if *stats {
		fmt.Printf("c %v\n", r)
	}
	switch r.Status {
	case maxsat.Optimal:
		fmt.Printf("o %d\n", r.Cost)
		fmt.Println("s OPTIMUM FOUND")
		if !*noModel {
			printModel(r.Model, w.NumVars)
		}
	case maxsat.Unsatisfiable:
		fmt.Println("s UNSATISFIABLE")
	default:
		if r.Cost >= 0 {
			fmt.Printf("o %d\n", r.Cost)
		}
		fmt.Println("s UNKNOWN")
	}
	return 0
}

// writeProof renders the certificate's refutation as standard ASCII DRAT,
// and (when cnfPath is set) the formula that trace refutes in DIMACS form —
// the pair an external checker like drat-trim consumes.
func writeProof(w *maxsat.WCNF, certBytes []byte, proofPath, cnfPath string) error {
	c, err := proof.Decode(certBytes)
	if err != nil {
		return err
	}
	if len(c.Steps) == 0 {
		fmt.Println("c no proof step to dump: a zero-cost optimum is certified by its model alone")
		return nil
	}
	st := c.Steps[0]
	var f *cnf.Formula
	if c.Kind == proof.KindUnsat {
		f = w.Hards()
	} else {
		f = proof.BoundFormula(w, st.Bound)
	}
	pf, err := os.Create(proofPath)
	if err != nil {
		return err
	}
	defer pf.Close()
	if err := st.Trace.WriteDRAT(pf); err != nil {
		return err
	}
	fmt.Printf("c DRAT proof (%d records) written to %s\n", len(st.Trace.Records), proofPath)
	if cnfPath != "" {
		cf, err := os.Create(cnfPath)
		if err != nil {
			return err
		}
		defer cf.Close()
		if err := cnf.WriteDIMACS(cf, f); err != nil {
			return err
		}
		fmt.Printf("c refuted formula (%d vars, %d clauses) written to %s\n",
			f.NumVars, f.NumClauses(), cnfPath)
	}
	return nil
}

func printModel(m maxsat.Assignment, n int) {
	var sb strings.Builder
	sb.WriteString("v")
	for v := 0; v < n && v < len(m); v++ {
		if m[v] {
			fmt.Fprintf(&sb, " %d", v+1)
		} else {
			fmt.Fprintf(&sb, " -%d", v+1)
		}
	}
	fmt.Println(sb.String())
}
