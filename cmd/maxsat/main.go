// Command maxsat is a MaxSAT solver front-end: it reads a DIMACS .cnf
// (plain MaxSAT) or .wcnf (weighted partial MaxSAT) file and prints the
// result in the MaxSAT-evaluation output convention:
//
//	o <cost>            optimum (or best known) cost
//	s OPTIMUM FOUND     (or s UNSATISFIABLE / s UNKNOWN)
//	v <model literals>  witness assignment, DIMACS-signed
//
// Usage:
//
//	maxsat [-alg msu4-v2] [-enc sorter] [-jobs 4] [-share] [-pre] [-timeout 30s] [-stats] [-no-model] file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("maxsat", flag.ContinueOnError)
	var (
		alg     = fs.String("alg", "", "algorithm: auto (default), msu4-v1, msu4-v2, msu4, msu1, msu2, msu3, wmsu1, wmsu4, oll, pbo, pbo-bin, maxsatz, portfolio")
		enc     = fs.String("enc", "", "cardinality encoding for -alg msu4: bdd, sorter, seq, totalizer")
		jobs    = fs.Int("jobs", 0, "parallel solvers raced by -alg portfolio (0 = full line-up)")
		share   = fs.Bool("share", false, "learnt-clause sharing between -alg portfolio members")
		pre     = fs.Bool("pre", false, "soft-aware preprocessing of the hard clauses before optimizing")
		timeout = fs.Duration("timeout", 0, "overall solve timeout (0 = unbounded)")
		stats   = fs.Bool("stats", false, "print iteration/conflict statistics")
		noModel = fs.Bool("no-model", false, "suppress the v line")
	)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: maxsat [flags] <file.cnf|file.wcnf>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return 2
	}
	path := fs.Arg(0)

	w, err := maxsat.ParseWCNFFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c error: %v\n", err)
		return 1
	}
	fmt.Printf("c instance %s: %d vars, %d clauses (%d hard, %d soft)\n",
		path, w.NumVars, w.NumClauses(), w.NumHard(), w.NumSoft())

	o := maxsat.Options{
		Algorithm:    maxsat.Algorithm(*alg),
		Encoding:     *enc,
		Timeout:      *timeout,
		Parallelism:  *jobs,
		Preprocess:   *pre,
		ShareClauses: *share,
	}
	start := time.Now()
	r, err := maxsat.Solve(w, o)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c error: %v\n", err)
		return 1
	}
	fmt.Printf("c algorithm %s, %.3fs\n", r.Algorithm, time.Since(start).Seconds())
	if *stats {
		fmt.Printf("c %v\n", r)
	}
	switch r.Status {
	case maxsat.Optimal:
		fmt.Printf("o %d\n", r.Cost)
		fmt.Println("s OPTIMUM FOUND")
		if !*noModel {
			printModel(r.Model, w.NumVars)
		}
	case maxsat.Unsatisfiable:
		fmt.Println("s UNSATISFIABLE")
	default:
		if r.Cost >= 0 {
			fmt.Printf("o %d\n", r.Cost)
		}
		fmt.Println("s UNKNOWN")
	}
	return 0
}

func printModel(m maxsat.Assignment, n int) {
	var sb strings.Builder
	sb.WriteString("v")
	for v := 0; v < n && v < len(m); v++ {
		if m[v] {
			fmt.Fprintf(&sb, " %d", v+1)
		} else {
			fmt.Fprintf(&sb, " -%d", v+1)
		}
	}
	fmt.Println(sb.String())
}
