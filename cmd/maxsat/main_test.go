package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPlainCNF(t *testing.T) {
	path := writeFile(t, "m.cnf", "p cnf 1 2\n1 0\n-1 0\n")
	if code := run([]string{path}); code != 0 {
		t.Fatalf("exit %d, want 0", code)
	}
	if code := run([]string{"-alg", "msu4-v1", "-stats", path}); code != 0 {
		t.Fatalf("msu4-v1 exit %d", code)
	}
	if code := run([]string{"-alg", "maxsatz", "-no-model", path}); code != 0 {
		t.Fatalf("maxsatz exit %d", code)
	}
}

func TestRunWCNF(t *testing.T) {
	path := writeFile(t, "m.wcnf", "p wcnf 2 3 10\n10 1 2 0\n3 -1 0\n1 -2 0\n")
	if code := run([]string{path}); code != 0 {
		t.Fatalf("wcnf exit %d, want 0", code)
	}
	// Core-guided algorithms reject weighted input.
	if code := run([]string{"-alg", "msu4-v2", path}); code != 1 {
		t.Fatalf("weighted msu4 exit %d, want 1", code)
	}
	if code := run([]string{"-alg", "wmsu1", path}); code != 0 {
		t.Fatalf("wmsu1 exit %d, want 0", code)
	}
}

func TestRunPortfolio(t *testing.T) {
	path := writeFile(t, "m.cnf", "p cnf 2 3\n1 0\n-1 2 0\n-2 0\n")
	if code := run([]string{"-alg", "portfolio", "-jobs", "2", "-stats", path}); code != 0 {
		t.Fatalf("portfolio exit %d, want 0", code)
	}
	// Portfolio handles weighted instances via the weighted line-up.
	wpath := writeFile(t, "m.wcnf", "p wcnf 2 3 10\n10 1 2 0\n3 -1 0\n1 -2 0\n")
	if code := run([]string{"-alg", "portfolio", wpath}); code != 0 {
		t.Fatalf("weighted portfolio exit %d, want 0", code)
	}
}

func TestRunHardUnsat(t *testing.T) {
	path := writeFile(t, "u.wcnf", "p wcnf 1 3 10\n10 1 0\n10 -1 0\n1 1 0\n")
	if code := run([]string{path}); code != 0 {
		t.Fatalf("hard-unsat exit %d, want 0 (status printed)", code)
	}
}

func TestRunErrors(t *testing.T) {
	if code := run([]string{}); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"/nonexistent.cnf"}); code != 1 {
		t.Fatalf("missing file: exit %d, want 1", code)
	}
	path := writeFile(t, "m.cnf", "p cnf 1 1\n1 0\n")
	if code := run([]string{"-alg", "bogus", path}); code != 1 {
		t.Fatalf("bad algorithm: exit %d, want 1", code)
	}
	if code := run([]string{"-alg", "msu4", "-enc", "bogus", path}); code != 1 {
		t.Fatalf("bad encoding: exit %d, want 1", code)
	}
}

func TestRunTimeoutUnknown(t *testing.T) {
	// Large enough that a 1ns timeout cannot finish: UNKNOWN path, exit 0.
	var sb []byte
	sb = append(sb, []byte("p cnf 30 60\n")...)
	for v := 1; v <= 30; v++ {
		sb = append(sb, []byte(fmtInt(v)+" 0\n"+fmtInt(-v)+" 0\n")...)
	}
	path := writeFile(t, "big.cnf", string(sb))
	if code := run([]string{"-timeout", "1ns", path}); code != 0 {
		t.Fatalf("timeout run exit %d, want 0", code)
	}
}

func fmtInt(i int) string {
	if i < 0 {
		return "-" + fmtInt(-i)
	}
	if i < 10 {
		return string(rune('0' + i))
	}
	return fmtInt(i/10) + string(rune('0'+i%10))
}
