// Command benchdelta compares two `go test -bench` runs, benchstat-style,
// without external dependencies. It accepts either raw benchmark output or
// the `go test -json` stream (the "Output" events are unwrapped), matches
// benchmarks by name, and prints old/new timings with their relative delta
// plus the geometric-mean ratio across common benchmarks.
//
// Usage:
//
//	benchdelta [-metric ns/op] [-threshold 20] old.txt new.txt
//
// With -threshold N the exit status is 1 when any benchmark slowed down by
// more than N percent (use in CI to turn the table into a gate; the default
// 0 disables gating, so the step is informational).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

// benchLine matches "BenchmarkName-8  <iters>  <value> ns/op [<value> <unit>]...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// benchName matches a bare benchmark name: `go test -json` emits the name
// and its result line as two separate output events.
var benchName = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s*$`)

// benchResult matches the result half of a split line: iters then metrics.
var benchResult = regexp.MustCompile(`^(\d+)\s+(.*)$`)

// metrics holds every "<value> <unit>" pair of one benchmark line.
type metrics map[string]float64

func run(args []string, out io.Writer) int {
	metric := "ns/op"
	threshold := 0.0
	var files []string
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-metric":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "-metric needs a value")
				return 2
			}
			i++
			metric = args[i]
		case "-threshold":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "-threshold needs a value")
				return 2
			}
			i++
			v, err := strconv.ParseFloat(args[i], 64)
			if err != nil || v < 0 {
				fmt.Fprintf(os.Stderr, "bad threshold %q\n", args[i])
				return 2
			}
			threshold = v
		default:
			if strings.HasPrefix(args[i], "-") {
				fmt.Fprintf(os.Stderr, "unknown flag %q\n", args[i])
				return 2
			}
			files = append(files, args[i])
		}
	}
	if len(files) != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdelta [-metric ns/op] [-threshold pct] old new")
		return 2
	}
	old, err := parseFile(files[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cur, err := parseFile(files[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	var names []string
	for name := range old {
		if _, ok := cur[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	fmt.Fprintf(out, "%-56s %14s %14s %9s\n", "benchmark ("+metric+")", "old", "new", "delta")
	logSum, n, worst := 0.0, 0, 0.0
	for _, name := range names {
		ov, okO := old[name][metric]
		nv, okN := cur[name][metric]
		if !okO || !okN {
			continue
		}
		delta := "~"
		if ov > 0 {
			pct := (nv - ov) / ov * 100
			delta = fmt.Sprintf("%+.1f%%", pct)
			if pct > worst {
				worst = pct
			}
			if nv > 0 {
				logSum += math.Log(nv / ov)
				n++
			}
		}
		fmt.Fprintf(out, "%-56s %14s %14s %9s\n", name, formatValue(ov), formatValue(nv), delta)
	}
	if n > 0 {
		fmt.Fprintf(out, "%-56s %14s %14s %8.3fx\n", "geomean", "", "", math.Exp(logSum/float64(n)))
	}
	for name := range cur {
		if _, ok := old[name]; !ok {
			fmt.Fprintf(out, "%-56s %29s\n", name, "(new)")
		}
	}
	for name := range old {
		if _, ok := cur[name]; !ok {
			fmt.Fprintf(out, "%-56s %29s\n", name, "(gone)")
		}
	}
	if threshold > 0 && worst > threshold {
		fmt.Fprintf(out, "REGRESSION: worst delta %+.1f%% exceeds threshold %.1f%%\n", worst, threshold)
		return 1
	}
	return 0
}

func formatValue(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gs", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.4gms", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.5gµs", v/1e3)
	default:
		return fmt.Sprintf("%.6g", v)
	}
}

func parseFile(path string) (map[string]metrics, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return parse(fh)
}

// parse reads benchmark results from raw `go test -bench` output or from a
// `go test -json` stream. Repeated runs of the same benchmark are averaged.
func parse(r io.Reader) (map[string]metrics, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	sums := map[string]metrics{}
	counts := map[string]map[string]float64{}
	pending := ""
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(strings.TrimSpace(line), "{") {
			var ev struct {
				Action string `json:"Action"`
				Output string `json:"Output"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Action != "output" {
				continue
			}
			line = strings.TrimSuffix(ev.Output, "\n")
		}
		line = strings.TrimSpace(line)
		var name, rest string
		if m := benchLine.FindStringSubmatch(line); m != nil {
			name, rest = m[1], m[3]
			pending = ""
		} else if m := benchName.FindStringSubmatch(line); m != nil {
			pending = m[1]
			continue
		} else if m := benchResult.FindStringSubmatch(line); m != nil && pending != "" {
			name, rest = pending, m[2]
			pending = ""
		} else {
			pending = ""
			continue
		}
		fields := strings.Fields(rest)
		if sums[name] == nil {
			sums[name] = metrics{}
			counts[name] = map[string]float64{}
		}
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			sums[name][fields[i+1]] += v
			counts[name][fields[i+1]]++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for name, ms := range sums {
		for unit, sum := range ms {
			ms[unit] = sum / counts[name][unit]
		}
	}
	return sums, nil
}
