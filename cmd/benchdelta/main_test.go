package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseRawOutput(t *testing.T) {
	in := `goos: linux
BenchmarkSolvers/msu4-v2-8         	      10	  1200000 ns/op	       3.000 aborts
BenchmarkSolvers/oll-8             	      20	   600000 ns/op
PASS
`
	got, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkSolvers/msu4-v2"]["ns/op"] != 1200000 {
		t.Fatalf("ns/op = %v", got["BenchmarkSolvers/msu4-v2"])
	}
	if got["BenchmarkSolvers/msu4-v2"]["aborts"] != 3 {
		t.Fatalf("aborts = %v", got["BenchmarkSolvers/msu4-v2"])
	}
	if got["BenchmarkSolvers/oll"]["ns/op"] != 600000 {
		t.Fatalf("oll = %v", got["BenchmarkSolvers/oll"])
	}
}

func TestParseJSONStream(t *testing.T) {
	in := `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"BenchmarkTable1-8   \t       1\t 500000000 ns/op\t        29.00 instances\n"}
{"Action":"output","Package":"repro","Output":"ok  \trepro\t1.0s\n"}
`
	got, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkTable1"]["ns/op"] != 5e8 {
		t.Fatalf("ns/op = %v", got["BenchmarkTable1"])
	}
	if got["BenchmarkTable1"]["instances"] != 29 {
		t.Fatalf("instances = %v", got["BenchmarkTable1"])
	}
}

func TestParseAveragesRepeats(t *testing.T) {
	in := "BenchmarkX-4 1 100 ns/op\nBenchmarkX-4 1 300 ns/op\n"
	got, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkX"]["ns/op"] != 200 {
		t.Fatalf("mean = %v, want 200", got["BenchmarkX"]["ns/op"])
	}
}

func TestDeltaTable(t *testing.T) {
	old := write(t, "old.txt", "BenchmarkA-8 1 1000 ns/op\nBenchmarkB-8 1 500 ns/op\nBenchmarkGone-8 1 1 ns/op\n")
	cur := write(t, "new.txt", "BenchmarkA-8 1 1500 ns/op\nBenchmarkB-8 1 250 ns/op\nBenchmarkNew-8 1 1 ns/op\n")
	var out bytes.Buffer
	if code := run([]string{old, cur}, &out); code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{"+50.0%", "-50.0%", "geomean", "(new)", "(gone)"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestThresholdGate(t *testing.T) {
	old := write(t, "old.txt", "BenchmarkA-8 1 1000 ns/op\n")
	cur := write(t, "new.txt", "BenchmarkA-8 1 2000 ns/op\n")
	var out bytes.Buffer
	if code := run([]string{"-threshold", "50", old, cur}, &out); code != 1 {
		t.Fatalf("exit %d, want 1 (regression)\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Fatalf("missing regression marker:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-threshold", "200", old, cur}, &out); code != 0 {
		t.Fatalf("exit %d, want 0 (within threshold)\n%s", code, out.String())
	}
}

func TestCustomMetric(t *testing.T) {
	old := write(t, "old.txt", "BenchmarkT-8 1 100 ns/op 4.000 aborts\n")
	cur := write(t, "new.txt", "BenchmarkT-8 1 100 ns/op 2.000 aborts\n")
	var out bytes.Buffer
	if code := run([]string{"-metric", "aborts", old, cur}, &out); code != 0 {
		t.Fatalf("exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "-50.0%") {
		t.Fatalf("aborts delta missing:\n%s", out.String())
	}
}

func TestBadUsage(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"only-one-file"}, &out); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-threshold", "x", "a", "b"}, &out); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := run([]string{"-bogus", "a", "b"}, &out); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
