// Package maxsat is the public API of this repository: a from-scratch Go
// implementation of core-guided Maximum Satisfiability centred on the msu4
// algorithm of Marques-Silva & Planes, "Algorithms for Maximum
// Satisfiability using Unsatisfiable Cores" (DATE 2008), together with the
// baselines the paper evaluates against (branch-and-bound "maxsatz"-style
// search and the PBO blocking-variable formulation) and the related
// core-guided algorithms msu1, msu2 and msu3.
//
// # Quick start
//
//	f := maxsat.NewFormula(0)
//	f.AddClause(maxsat.FromDIMACS(1))
//	f.AddClause(maxsat.FromDIMACS(-1))
//	res, err := maxsat.SolveFormula(f, maxsat.Options{})
//	// res.Cost == 1: one of the two unit clauses must be falsified.
//
// Plain MaxSAT instances are *Formula values (every clause soft, weight 1,
// the paper's setting); weighted partial MaxSAT instances are *WCNF values
// with hard clauses and positive soft weights. DIMACS .cnf and .wcnf files
// round-trip through ParseDIMACS / ParseWCNF / WriteDIMACS / WriteWCNF;
// ParseWCNF also reads the headerless MaxSAT Evaluation 2022 dialect,
// which WriteWCNF2022 writes.
//
// Algorithms are selected by Options.Algorithm. The default, AlgoAuto,
// routes unweighted instances to msu4 with sorting networks (the paper's
// best performer, "msu4 v2") and weighted instances to the PBO optimizer.
// AlgoOLL is the strongest weighted engine: an OLL-style core-guided
// optimizer with stratification, hardening and core exhaustion.
// AlgoPortfolio races a line-up of the algorithms in parallel goroutines
// with shared bound exchange (Options.Parallelism caps the racers); use
// SolveContext for external cancellation and deadlines, and
// Options.OnImprove to observe bound improvements as they happen.
//
// # Serving
//
// Beyond the one-shot Solve entry points, Server runs the same stack as a
// service: jobs on a bounded worker pool with per-job deadlines, identical
// in-flight submissions deduplicated, verified results cached by a
// canonical formula fingerprint, and anytime bound improvements streamed
// through Job.Updates. cmd/maxsatd exposes a Server over HTTP. See
// ARCHITECTURE.md for how the layers fit together.
package maxsat

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/bnb"
	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/pbo"
	"repro/internal/portfolio"
	"repro/internal/proof"
)

// Re-exported formula types. The substrate lives in internal/cnf; these
// aliases are the supported public names.
type (
	// Var is a 0-based propositional variable.
	Var = cnf.Var
	// Lit is a literal (variable plus sign).
	Lit = cnf.Lit
	// Clause is a disjunction of literals.
	Clause = cnf.Clause
	// Formula is a plain CNF formula (read as unit-weight soft clauses).
	Formula = cnf.Formula
	// WCNF is a weighted partial MaxSAT formula.
	WCNF = cnf.WCNF
	// Weight is a soft-clause weight.
	Weight = cnf.Weight
	// Assignment is a total truth assignment.
	Assignment = cnf.Assignment
)

// HardWeight marks hard clauses in a WCNF.
const HardWeight = cnf.HardWeight

// Re-exported constructors and I/O.
var (
	NewFormula      = cnf.NewFormula
	NewWCNF         = cnf.NewWCNF
	FromFormula     = cnf.FromFormula
	FromDIMACS      = cnf.FromDIMACS
	NewLit          = cnf.NewLit
	PosLit          = cnf.PosLit
	NegLit          = cnf.NegLit
	ParseDIMACS     = cnf.ParseDIMACS
	ParseWCNF       = cnf.ParseWCNF
	ParseDIMACSFile = cnf.ParseDIMACSFile
	ParseWCNFFile   = cnf.ParseWCNFFile
	WriteDIMACS     = cnf.WriteDIMACS
	WriteWCNF       = cnf.WriteWCNF
	WriteWCNF2022   = cnf.WriteWCNF2022
)

// Algorithm selects a MaxSAT algorithm.
type Algorithm string

// Available algorithms.
const (
	// AlgoAuto picks msu4-v2 for unweighted instances and PBO for weighted
	// ones.
	AlgoAuto Algorithm = ""
	// AlgoMSU4V1 is the paper's msu4 with BDD cardinality encodings.
	AlgoMSU4V1 Algorithm = "msu4-v1"
	// AlgoMSU4V2 is the paper's msu4 with sorting-network encodings.
	AlgoMSU4V2 Algorithm = "msu4-v2"
	// AlgoMSU4 is msu4 with the encoding chosen by Options.Encoding.
	AlgoMSU4 Algorithm = "msu4"
	// AlgoMSU1 is Fu & Malik's algorithm.
	AlgoMSU1 Algorithm = "msu1"
	// AlgoMSU2 is the report's non-incremental lower-bound search.
	AlgoMSU2 Algorithm = "msu2"
	// AlgoMSU3 is the incremental lower-bound search.
	AlgoMSU3 Algorithm = "msu3"
	// AlgoWMSU1 is the weighted extension of Fu & Malik's algorithm
	// (clause splitting; handles weighted partial MaxSAT).
	AlgoWMSU1 Algorithm = "wmsu1"
	// AlgoWMSU4 is msu4 lifted to weighted partial MaxSAT: the line-30
	// cardinality constraint becomes a pseudo-Boolean constraint.
	AlgoWMSU4 Algorithm = "wmsu4"
	// AlgoOLL is the OLL-style soft-cardinality core-guided optimizer
	// (the RC2/EvalMaxSAT lineage): per-core incremental totalizers whose
	// sum outputs become new soft literals, plus stratified weight levels,
	// hardening and core exhaustion. Handles weighted and unweighted
	// instances.
	AlgoOLL Algorithm = "oll"
	// AlgoPBO is the minisat+-style linear SAT-UNSAT optimizer on the
	// blocking-variable formulation (handles weights).
	AlgoPBO Algorithm = "pbo"
	// AlgoPBOBin is the binary-search PBO variant.
	AlgoPBOBin Algorithm = "pbo-bin"
	// AlgoBnB is the maxsatz-style branch and bound (handles weights).
	AlgoBnB Algorithm = "maxsatz"
	// AlgoPortfolio races a line-up of the algorithms above in parallel
	// goroutines, exchanging bounds through a shared channel; the first
	// proved optimum wins. Options.Parallelism caps the number of racers.
	// Handles weights (the line-up adapts to the instance kind).
	AlgoPortfolio Algorithm = "portfolio"
)

// Algorithms lists every selectable algorithm name.
func Algorithms() []Algorithm {
	return []Algorithm{
		AlgoMSU4V1, AlgoMSU4V2, AlgoMSU4, AlgoMSU1, AlgoMSU2, AlgoMSU3,
		AlgoWMSU1, AlgoWMSU4, AlgoOLL, AlgoPBO, AlgoPBOBin, AlgoBnB,
		AlgoPortfolio,
	}
}

// Options configures a Solve call. The zero value asks for automatic
// algorithm selection with no resource bounds.
type Options struct {
	// Algorithm selects the optimizer; AlgoAuto routes by instance kind.
	Algorithm Algorithm
	// Encoding names the cardinality encoding for AlgoMSU4
	// ("bdd", "sorter", "seq", "totalizer"); empty means "sorter".
	Encoding string
	// Timeout bounds the optimization; zero means unbounded.
	Timeout time.Duration
	// MemoryBudget, when positive, caps the clause storage of the
	// underlying CDCL solver(s) in bytes. A solve whose learnt clauses
	// outgrow the cap stops with Status Unknown and the best bounds proved
	// so far instead of exhausting the process's memory — the serving stack
	// relies on this to survive pathological instances. AlgoPortfolio
	// divides the cap evenly across its racing members; algorithms that do
	// not run a CDCL engine (AlgoBnB) ignore it. Zero means unbounded.
	MemoryBudget int64
	// MaxConflictsPerCall caps each underlying SAT call (advanced).
	MaxConflictsPerCall int64
	// SkipAtLeast1 disables msu4's optional per-core "at least one
	// blocking variable" constraint (paper Algorithm 1, line 19).
	SkipAtLeast1 bool
	// Preprocess enables soft-aware SatELite preprocessing: the hard
	// clauses (plus a frozen selector shell per soft clause) are simplified
	// once — unit propagation, subsumption, self-subsuming resolution,
	// bounded variable elimination — before the optimizer starts, and every
	// model is reconstructed back to the original variables. The portfolio
	// preprocesses once and races its members on the simplified formula.
	Preprocess bool
	// Parallelism caps the number of solvers AlgoPortfolio races
	// concurrently; 0 races the full line-up. Other algorithms ignore it.
	Parallelism int
	// ShareClauses makes AlgoPortfolio members exchange learnt clauses:
	// each CDCL-based racer exports its glue and binary learnt clauses over
	// the instance's variables to a lock-free bus and imports the others'
	// at restart boundaries, so the portfolio deduces shared structure once
	// instead of once per member. Other algorithms ignore it. Off by
	// default; solving behavior with it off is identical to not having a
	// bus at all.
	ShareClauses bool
	// OnImprove, when non-nil, receives every anytime bound improvement of
	// a Solve/SolveContext run as it is proved: lower bounds published by
	// the core-guided algorithms after every core (AlgoOLL publishes one
	// per core, AlgoPortfolio the best of all members) and upper bounds
	// from every improved model. The callback runs on the solving
	// goroutine(s) and must return quickly; improvements are monotone per
	// bound but under AlgoPortfolio may arrive from concurrent members.
	// Server.Submit ignores it — use Job.Updates for served jobs.
	OnImprove func(BoundUpdate)
	// Certify makes OPTIMAL and UNSATISFIABLE results carry a serialized
	// proof certificate (Result.Certificate), checkable against the
	// instance with CheckCertificate by an independent in-tree RUP checker
	// — no solver code involved. Certification runs as a post-solve pass:
	// a fresh proof-logged solver refutes "some assignment satisfies the
	// hards at cost ≤ optimum−1", so it works uniformly for every
	// algorithm, including preprocessed, clause-sharing, and portfolio
	// runs. It roughly doubles the UNSAT work of a solve; off by default.
	// If the result cannot be certified (for example the context expires
	// mid-pass), SolveContext returns an error.
	Certify bool
}

// Status is the outcome class of a Solve call.
type Status int8

// Solve outcomes.
const (
	// Unknown: resource budget exhausted before proving an optimum.
	Unknown Status = iota
	// Optimal: Cost is the proved optimum, witnessed by Model.
	Optimal
	// Unsatisfiable: the hard clauses conflict (partial MaxSAT only).
	Unsatisfiable
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "OPTIMAL"
	case Unsatisfiable:
		return "UNSATISFIABLE"
	default:
		return "UNKNOWN"
	}
}

// Result reports a MaxSAT optimization outcome.
type Result struct {
	Status Status
	// Cost is the minimum total weight of falsified soft clauses (the
	// proved optimum when Status == Optimal; the best upper bound found
	// otherwise, or -1 if no feasible assignment was seen).
	Cost Weight
	// LowerBound is the best proved lower bound on Cost.
	LowerBound Weight
	// Model is an assignment achieving Cost over the instance's variables,
	// when one was found.
	Model Assignment
	// Algorithm is the algorithm that produced the result.
	Algorithm Algorithm
	// Winner names the member that decided an AlgoPortfolio race; empty
	// for single-algorithm runs (and for portfolio runs that timed out).
	Winner string
	// ClausesExported / ClausesImported total the learnt-clause traffic of
	// an AlgoPortfolio run with ShareClauses enabled (zero otherwise).
	ClausesExported, ClausesImported int64
	// Sharing is a human-readable per-member breakdown of that traffic,
	// including the winner's import hit rate; empty without sharing.
	Sharing string
	// Cached reports that the result was served from a Server's
	// verified-result cache instead of a fresh solve; always false for the
	// direct Solve entry points.
	Cached bool
	// Reused reports that a Session's warm (retained) solver answered this
	// delta re-solve; always false for one-shot solves and submissions.
	Reused bool
	// Certificate is the serialized proof certificate of an OPTIMAL or
	// UNSATISFIABLE result when Options.Certify was set: validate it with
	// CheckCertificate. Nil otherwise.
	Certificate []byte
	// Iterations, SatCalls, UnsatCalls, Conflicts and Elapsed expose the
	// algorithm's work profile. For AlgoPortfolio they aggregate over every
	// raced member.
	Iterations int
	SatCalls   int
	UnsatCalls int
	Conflicts  int64
	Elapsed    time.Duration
}

// MaxSatisfied converts the cost into the paper's "MaxSAT solution" — the
// number of satisfied clauses — for a plain instance with the given total
// clause count.
func (r Result) MaxSatisfied(totalClauses int) int {
	return totalClauses - int(r.Cost)
}

// String renders the result in the repository's shared one-line format.
func (r Result) String() string {
	inner := opt.Result{
		Cost:       r.Cost,
		LowerBound: r.LowerBound,
		Solver:     r.Winner,
		Iterations: r.Iterations,
		SatCalls:   r.SatCalls,
		UnsatCalls: r.UnsatCalls,
		Conflicts:  r.Conflicts,
		Elapsed:    r.Elapsed,
	}
	switch r.Status {
	case Optimal:
		inner.Status = opt.StatusOptimal
	case Unsatisfiable:
		inner.Status = opt.StatusUnsat
	}
	s := inner.String()
	if r.Sharing != "" {
		s += " " + r.Sharing
	}
	return s
}

// ErrWeighted is returned when a unit-weight-only algorithm is asked to
// solve a weighted instance.
var ErrWeighted = errors.New("maxsat: algorithm requires unit-weight soft clauses (use AlgoPBO, AlgoBnB, or AlgoAuto)")

// Solve optimizes a weighted partial MaxSAT instance. Options.Timeout is
// the only resource bound; use SolveContext for external cancellation.
func Solve(w *WCNF, o Options) (Result, error) {
	return SolveContext(context.Background(), w, o)
}

// SolveContext optimizes a weighted partial MaxSAT instance under ctx:
// cancelling the context (or exceeding Options.Timeout, whichever fires
// first) stops the optimization and yields the best result proved so far
// with Status Unknown.
func SolveContext(ctx context.Context, w *WCNF, o Options) (Result, error) {
	solver, algo, err := buildSolver(w, o)
	if err != nil {
		return Result{}, err
	}
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	var shared *opt.Bounds
	if o.OnImprove != nil {
		shared = opt.NewBounds()
		shared.SetObserver(o.OnImprove)
	}
	r := solver.Solve(ctx, w, shared)
	if o.Certify && (r.Status == opt.StatusOptimal || r.Status == opt.StatusUnsat) {
		cert, err := opt.Certify(ctx, w, r, opt.Options{MemBytes: o.MemoryBudget})
		if err != nil {
			return Result{}, err
		}
		r.Certificate = cert
	}
	return fromInternal(r, algo), nil
}

// CheckCertificate validates a serialized certificate (Result.Certificate)
// against the instance it claims to solve, using the independent checker in
// internal/proof: the model must satisfy the hard clauses at exactly the
// certified cost, and the certificate's DRAT refutation of "cost ≤ optimum−1
// is achievable" must pass backward RUP checking against a bound encoding
// the checker rebuilds itself. A nil error means the verdict is
// machine-checked — trusting it does not require trusting the solver that
// produced it, the preprocessor, the sharing bus, or any cache it passed
// through.
func CheckCertificate(w *WCNF, cert []byte) error {
	return proof.CheckBytes(w, cert)
}

// SolveFormula optimizes a plain MaxSAT instance (every clause soft,
// weight 1 — the DATE 2008 setting).
func SolveFormula(f *Formula, o Options) (Result, error) {
	return Solve(cnf.FromFormula(f), o)
}

// SolveReader parses a DIMACS .cnf or .wcnf stream and optimizes it.
func SolveReader(rd io.Reader, o Options) (Result, error) {
	w, err := cnf.ParseWCNF(rd)
	if err != nil {
		return Result{}, err
	}
	return Solve(w, o)
}

// SolveFile parses a DIMACS .cnf or .wcnf file and optimizes it.
func SolveFile(path string, o Options) (Result, error) {
	w, err := cnf.ParseWCNFFile(path)
	if err != nil {
		return Result{}, err
	}
	return Solve(w, o)
}

func buildSolver(w *WCNF, o Options) (opt.Solver, Algorithm, error) {
	io_ := opt.Options{
		MaxConflictsPerCall: o.MaxConflictsPerCall,
		MemBytes:            o.MemoryBudget,
		Preprocess:          o.Preprocess,
	}
	algo := o.Algorithm
	if algo == AlgoAuto {
		if w.Weighted() {
			algo = AlgoPBO
		} else {
			algo = AlgoMSU4V2
		}
	}
	unitOnly := false
	var solver opt.Solver
	switch algo {
	case AlgoMSU4V1:
		io_.Encoding = card.BDD
		solver = &core.MSU4{Opts: io_, SkipAtLeast1: o.SkipAtLeast1, Label: "msu4-v1"}
		unitOnly = true
	case AlgoMSU4V2:
		io_.Encoding = card.Sorter
		solver = &core.MSU4{Opts: io_, SkipAtLeast1: o.SkipAtLeast1, Label: "msu4-v2"}
		unitOnly = true
	case AlgoMSU4:
		enc := card.Sorter
		if o.Encoding != "" {
			var err error
			enc, err = card.ParseEncoding(o.Encoding)
			if err != nil {
				return nil, algo, err
			}
		}
		io_.Encoding = enc
		solver = &core.MSU4{Opts: io_, SkipAtLeast1: o.SkipAtLeast1}
		unitOnly = true
	case AlgoMSU1:
		solver = core.NewMSU1(io_)
		unitOnly = true
	case AlgoMSU2:
		solver = core.NewMSU2(io_)
		unitOnly = true
	case AlgoMSU3:
		solver = core.NewMSU3(io_)
		unitOnly = true
	case AlgoWMSU1:
		solver = core.NewWMSU1(io_)
	case AlgoWMSU4:
		solver = &core.WMSU4{Opts: io_, SkipAtLeast1: o.SkipAtLeast1}
	case AlgoOLL:
		solver = core.NewOLL(io_)
	case AlgoPBO:
		solver = &pbo.Linear{Opts: io_}
	case AlgoPBOBin:
		solver = &pbo.BinarySearch{Opts: io_}
	case AlgoBnB:
		solver = bnb.New(io_)
	case AlgoPortfolio:
		e := portfolio.New(io_, o.Parallelism)
		e.Share = o.ShareClauses
		solver = e
	default:
		return nil, algo, fmt.Errorf("maxsat: unknown algorithm %q", algo)
	}
	if unitOnly && w.Weighted() {
		return nil, algo, ErrWeighted
	}
	return solver, algo, nil
}

func fromInternal(r opt.Result, algo Algorithm) Result {
	out := Result{
		Cost:            r.Cost,
		LowerBound:      r.LowerBound,
		Model:           r.Model,
		Algorithm:       algo,
		Winner:          r.Solver,
		Certificate:     r.Certificate,
		ClausesExported: r.Exported,
		ClausesImported: r.Imported,
		Sharing:         r.ShareSummary(),
		Iterations:      r.Iterations,
		SatCalls:        r.SatCalls,
		UnsatCalls:      r.UnsatCalls,
		Conflicts:       r.Conflicts,
		Elapsed:         r.Elapsed,
	}
	switch r.Status {
	case opt.StatusOptimal:
		out.Status = Optimal
	case opt.StatusUnsat:
		out.Status = Unsatisfiable
	default:
		out.Status = Unknown
	}
	return out
}
