package card

import "repro/internal/cnf"

// atMostOneCommander emits the commander AMO encoding (Klieber & Kwon):
// the literals are split into groups of three, each group gets pairwise AMO
// plus a commander variable implied by every group member, and the
// commanders recurse. O(n) clauses, n/2 auxiliary variables.
func atMostOneCommander(d Dest, lits []cnf.Lit) {
	if len(lits) <= 3 {
		atMostOnePairwise(d, lits)
		return
	}
	var commanders []cnf.Lit
	for start := 0; start < len(lits); start += 3 {
		end := start + 3
		if end > len(lits) {
			end = len(lits)
		}
		group := lits[start:end]
		atMostOnePairwise(d, group)
		c := cnf.PosLit(d.NewVar())
		for _, l := range group {
			// l -> commander
			d.AddClause(l.Neg(), c)
		}
		commanders = append(commanders, c)
	}
	atMostOneCommander(d, commanders)
}

// atMostOneBitwise emits the bitwise (binary) AMO encoding (Prestwich):
// ⌈log₂ n⌉ auxiliary bits; every literal forces the bits to its index's
// code, so two true literals would need two different codes. O(n log n)
// binary clauses, no pairwise blow-up.
func atMostOneBitwise(d Dest, lits []cnf.Lit) {
	n := len(lits)
	if n <= 1 {
		return
	}
	bits := 0
	for 1<<uint(bits) < n {
		bits++
	}
	aux := make([]cnf.Lit, bits)
	for i := range aux {
		aux[i] = cnf.PosLit(d.NewVar())
	}
	for i, l := range lits {
		for j := 0; j < bits; j++ {
			b := aux[j]
			if i&(1<<uint(j)) == 0 {
				b = b.Neg()
			}
			d.AddClause(l.Neg(), b)
		}
	}
}
