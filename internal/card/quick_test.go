package card

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cnf"
	"repro/internal/sat"
)

// TestQuickAtMostSoundOnRandomCounts draws random (encoding, n, k,
// assignment) tuples and checks the defining property of an assertive
// AtMost encoding — a randomized complement to the exhaustive small-n test.
func TestQuickAtMostSoundOnRandomCounts(t *testing.T) {
	encs := []Encoding{BDD, Sorter, Sequential, Totalizer}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		enc := encs[rng.Intn(len(encs))]
		n := 1 + rng.Intn(20)
		k := rng.Intn(n + 1)
		s := sat.New()
		inputs := make([]cnf.Lit, n)
		for i := range inputs {
			inputs[i] = cnf.PosLit(s.NewVar())
		}
		AtMost(s, enc, inputs, k)
		count := 0
		for _, l := range inputs {
			if rng.Intn(2) == 0 {
				s.AddClause(l)
				count++
			} else {
				s.AddClause(l.Neg())
			}
		}
		st := s.Solve()
		if count <= k {
			return st == sat.Sat
		}
		return st == sat.Unsat
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEncodingSizeInvariants checks the emitted clause/variable counts
// follow the complexity class of each encoding.
func TestQuickEncodingSizeInvariants(t *testing.T) {
	prop := func(rawN, rawK uint8) bool {
		n := 2 + int(rawN)%30
		k := 1 + int(rawK)%(n)
		if k >= n {
			return true
		}
		// Sequential: vars == (n-1)*k, clauses <= 1 + (n-2)*(2k+1) + 1.
		f := cnf.NewFormula(n)
		d := NewFormulaDest(f)
		lits := make([]cnf.Lit, n)
		for i := range lits {
			lits[i] = cnf.PosLit(cnf.Var(i))
		}
		AtMost(d, Sequential, lits, k)
		if f.NumVars-n != (n-1)*k {
			return false
		}
		maxClauses := 1 + (n-2)*(2*k+1) + 1
		if f.NumClauses() > maxClauses {
			return false
		}
		// Sorter: exactly 3 clauses per comparator + padding unit + bound unit.
		f2 := cnf.NewFormula(n)
		d2 := NewFormulaDest(f2)
		AtMost(d2, Sorter, lits, k)
		comparators := SorterComparators(n)
		want := 3*comparators + 1 // + bound unit
		size := 1
		for size < n {
			size *= 2
		}
		if size != n {
			want++ // padding constant unit clause
		}
		return f2.NumClauses() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIncTotalizerMonotone: tightening the bound can only remove
// models, never add them.
func TestQuickIncTotalizerMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		s := sat.New()
		inputs := make([]cnf.Lit, n)
		for i := range inputs {
			inputs[i] = cnf.PosLit(s.NewVar())
		}
		tot := NewIncTotalizer(s, inputs, n)
		forced := 0
		for _, l := range inputs {
			if rng.Intn(2) == 0 {
				s.AddClause(l)
				forced++
			}
		}
		// Satisfiability as k decreases must be monotone: sat, sat, ...,
		// then unsat from the crossing point on.
		sawUnsat := false
		for k := n; k >= 0; k-- {
			assump, ok := tot.Bound(k)
			var st sat.Status
			if ok {
				st = s.Solve(assump)
			} else {
				st = s.Solve()
			}
			if st == sat.Unsat {
				sawUnsat = true
			} else if sawUnsat {
				return false // became sat again after unsat: not monotone
			}
			// Cross-check against the forced count.
			want := sat.Sat
			if forced > k {
				want = sat.Unsat
			}
			if st != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
