package card

import "repro/internal/cnf"

// atMostTotalizer encodes sum(lits) <= k with the Bailleux–Boufkhad
// totalizer, with outputs truncated at k+1 (the standard k-simplification).
func atMostTotalizer(d Dest, lits []cnf.Lit, k int) {
	t := buildTotalizer(d, lits, k+1)
	d.AddClause(t[k].Neg())
}

// buildTotalizer builds a totalizer tree over lits, returning the output
// register out[0..m): out[i] true iff at least i+1 inputs are true, where
// m = min(len(lits), limit). Clauses are emitted in upward polarity.
func buildTotalizer(d Dest, lits []cnf.Lit, limit int) []cnf.Lit {
	if len(lits) == 1 {
		return []cnf.Lit{lits[0]}
	}
	h := len(lits) / 2
	a := buildTotalizer(d, lits[:h], limit)
	b := buildTotalizer(d, lits[h:], limit)
	return mergeTotalizer(d, a, b, limit, len(lits))
}

// mergeTotalizer sums two unary registers into a fresh one of length
// min(total, limit).
func mergeTotalizer(d Dest, a, b []cnf.Lit, limit, total int) []cnf.Lit {
	m := total
	if m > limit {
		m = limit
	}
	out := make([]cnf.Lit, m)
	for i := range out {
		out[i] = cnf.PosLit(d.NewVar())
	}
	// (at least i from a) ∧ (at least j from b) ⇒ at least i+j total,
	// for 1 <= i+j <= m, where i = 0 or j = 0 drops that antecedent.
	for i := 0; i <= len(a); i++ {
		for j := 0; j <= len(b); j++ {
			s := i + j
			if s < 1 || s > m {
				continue
			}
			clause := make([]cnf.Lit, 0, 3)
			if i > 0 {
				clause = append(clause, a[i-1].Neg())
			}
			if j > 0 {
				clause = append(clause, b[j-1].Neg())
			}
			clause = append(clause, out[s-1])
			d.AddClause(clause...)
		}
	}
	return out
}

// IncTotalizer is an incremental totalizer: a unary counter over a growing
// set of literals whose bound is imposed per-Solve via an assumption literal
// rather than a permanent unit clause. This is the mechanism modern
// descendants of msu3 (e.g. Open-WBO's incremental msu3, RC2) use to avoid
// re-encoding the cardinality constraint at every iteration; here it backs
// the incremental algorithm variants and the encoding ablations.
type IncTotalizer struct {
	d       Dest
	inputs  []cnf.Lit
	outputs []cnf.Lit
	limit   int
}

// NewIncTotalizer builds a totalizer over lits with outputs up to limit
// (pass len(lits) for a full counter; smaller limits shrink the encoding but
// cap the largest expressible bound at limit-1).
func NewIncTotalizer(d Dest, lits []cnf.Lit, limit int) *IncTotalizer {
	t := &IncTotalizer{d: d, limit: limit}
	t.inputs = append(t.inputs, lits...)
	if len(lits) > 0 {
		t.outputs = buildTotalizer(d, t.inputs, limit)
	}
	return t
}

// Inputs returns the current input count.
func (t *IncTotalizer) Inputs() int { return len(t.inputs) }

// AddInputs extends the counter with additional literals by merging a fresh
// subtree with the existing root. Previously returned bound assumptions
// remain semantically valid (they constrain the old outputs, which still
// count the old subset), but callers normally re-request the bound after an
// extension.
func (t *IncTotalizer) AddInputs(lits []cnf.Lit) {
	if len(lits) == 0 {
		return
	}
	sub := buildTotalizer(t.d, lits, t.limit)
	t.inputs = append(t.inputs, lits...)
	if t.outputs == nil {
		t.outputs = sub
		return
	}
	t.outputs = mergeTotalizer(t.d, t.outputs, sub, t.limit, len(t.inputs))
}

// Bound returns an assumption literal that, when assumed, enforces
// sum(inputs) <= k for the duration of one Solve call. It returns
// (lit, true) on success; ok is false when k >= len(inputs) (no constraint
// needed) — then any solve without the assumption is already correct.
// k must be < limit.
func (t *IncTotalizer) Bound(k int) (cnf.Lit, bool) {
	if k >= len(t.inputs) || k >= len(t.outputs) {
		return cnf.LitUndef, false
	}
	if k < 0 {
		panic("card: negative totalizer bound")
	}
	return t.outputs[k].Neg(), true
}
