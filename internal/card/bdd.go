package card

import "repro/internal/cnf"

// atMostBDD encodes sum(lits) <= k as the Tseitin translation of the
// constraint's reduced ordered BDD, following the construction minisat+
// applies to pseudo-Boolean constraints (Eén & Sörensson 2006), specialized
// to unit coefficients. This is the encoding behind msu4 "v1".
//
// For a cardinality constraint the BDD collapses to a grid: the node reached
// after deciding the first i literals depends only on i and the number of
// true literals so far, so at most (n-k)·(k+1) internal nodes exist. Each
// internal node y = ITE(x, hi, lo) contributes the two assertive-polarity
// clauses (¬y ∨ ¬x ∨ hi) and (¬y ∨ x ∨ lo), with constant branches
// simplified away.
type bddRef struct {
	isConst bool
	cval    bool
	lit     cnf.Lit
}

var (
	bddTrue  = bddRef{isConst: true, cval: true}
	bddFalse = bddRef{isConst: true, cval: false}
)

type bddBuilder struct {
	d    Dest
	lits []cnf.Lit
	k    int
	// memo[i*(k+1)+j] caches the node for "sum(lits[i:]) <= j".
	memo []bddRef
	set  []bool
}

func atMostBDD(d Dest, lits []cnf.Lit, k int) {
	n := len(lits)
	b := &bddBuilder{
		d:    d,
		lits: lits,
		k:    k,
		memo: make([]bddRef, (n+1)*(k+1)),
		set:  make([]bool, (n+1)*(k+1)),
	}
	root := b.node(0, k)
	switch {
	case root.isConst && root.cval:
		return
	case root.isConst:
		d.AddClause()
	default:
		d.AddClause(root.lit)
	}
}

// node returns a reference representing "sum(lits[i:]) <= budget".
func (b *bddBuilder) node(i, budget int) bddRef {
	n := len(b.lits)
	if budget < 0 {
		return bddFalse
	}
	if n-i <= budget {
		return bddTrue
	}
	idx := i*(b.k+1) + budget
	if b.set[idx] {
		return b.memo[idx]
	}
	hi := b.node(i+1, budget-1) // lits[i] true consumes one unit of budget
	lo := b.node(i+1, budget)
	ref := b.emitITE(b.lits[i], hi, lo)
	b.memo[idx] = ref
	b.set[idx] = true
	return ref
}

// emitITE creates a fresh variable y with assertive-polarity clauses for
// y = ITE(x, hi, lo), simplifying constant branches. BDD reduction applies:
// equal branches collapse without a fresh node.
func (b *bddBuilder) emitITE(x cnf.Lit, hi, lo bddRef) bddRef {
	if hi == lo {
		return hi
	}
	// hi = TRUE, lo = TRUE handled by the equality above.
	y := cnf.PosLit(b.d.NewVar())
	// y ∧ x ⇒ hi
	switch {
	case hi.isConst && hi.cval:
		// satisfied, no clause
	case hi.isConst:
		b.d.AddClause(y.Neg(), x.Neg())
	default:
		b.d.AddClause(y.Neg(), x.Neg(), hi.lit)
	}
	// y ∧ ¬x ⇒ lo
	switch {
	case lo.isConst && lo.cval:
		// satisfied, no clause
	case lo.isConst:
		b.d.AddClause(y.Neg(), x)
	default:
		b.d.AddClause(y.Neg(), x, lo.lit)
	}
	return bddRef{lit: y}
}

// BDDSize returns the number of internal BDD nodes the AtMost-k constraint
// over n literals produces after reduction. Exposed for the encoding-size
// ablation in the benchmark harness.
func BDDSize(n, k int) int {
	if k < 0 || k >= n {
		return 0
	}
	// Count distinct (i, budget) pairs with 0 <= budget <= k, i < n, and the
	// node non-constant: budget >= 0 and n-i > budget. Reduction merges
	// nothing further for cardinality constraints in this grid shape except
	// equal-branch collapse, which occurs only at constants; so size is the
	// number of grid points whose hi/lo differ, i.e. all points where both
	// subproblems are reachable non-trivially. Upper bound (n-k)*(k+1).
	count := 0
	for i := 0; i < n; i++ {
		for budget := 0; budget <= k; budget++ {
			if n-i > budget {
				count++
			}
		}
	}
	return count
}
