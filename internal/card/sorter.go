package card

import "repro/internal/cnf"

// atMostSorter encodes sum(lits) <= k with Batcher's odd-even merge sorting
// network — the encoding behind msu4 "v2" (Eén & Sörensson 2006).
//
// The network sorts the input literals into a descending unary "register"
// out[0] >= out[1] >= ...: out[i] is true iff at least i+1 inputs are true.
// Asserting ¬out[k] then enforces the bound. Comparators are encoded in the
// upward polarity only — (¬a ∨ hi), (¬b ∨ hi), (¬a ∨ ¬b ∨ lo) — which is
// sufficient (and complete) when the constraint is asserted, and is what
// minisat+ emits for ≤-constraints.
func atMostSorter(d Dest, lits []cnf.Lit, k int) {
	e := &sorterEnc{d: d}
	out := e.Sort(lits)
	d.AddClause(out[k].Neg())
}

type sorterEnc struct {
	d        Dest
	falseLit cnf.Lit
	haveF    bool
	// comparators counts emitted comparators, for size ablations.
	comparators int
}

// constFalse returns a literal fixed to false, allocating it on first use.
func (e *sorterEnc) constFalse() cnf.Lit {
	if !e.haveF {
		v := e.d.NewVar()
		e.falseLit = cnf.PosLit(v)
		e.d.AddClause(e.falseLit.Neg())
		e.haveF = true
	}
	return e.falseLit
}

// Sort builds the network and returns the descending sorted outputs, one per
// input literal (padding outputs are trimmed).
func (e *sorterEnc) Sort(lits []cnf.Lit) []cnf.Lit {
	n := len(lits)
	if n == 0 {
		return nil
	}
	// Pad with false constants to a power of two; they sink to the bottom
	// of the descending order and are trimmed from the result.
	size := 1
	for size < n {
		size *= 2
	}
	xs := make([]cnf.Lit, size)
	copy(xs, lits)
	for i := n; i < size; i++ {
		xs[i] = e.constFalse()
	}
	out := e.sortRec(xs)
	return out[:n]
}

func (e *sorterEnc) sortRec(xs []cnf.Lit) []cnf.Lit {
	if len(xs) == 1 {
		return xs
	}
	h := len(xs) / 2
	l := e.sortRec(xs[:h])
	r := e.sortRec(xs[h:])
	return e.merge(l, r)
}

// merge combines two descending-sorted sequences of equal power-of-two
// length via odd-even merge.
func (e *sorterEnc) merge(a, b []cnf.Lit) []cnf.Lit {
	m := len(a)
	if m == 1 {
		hi, lo := e.comparator(a[0], b[0])
		return []cnf.Lit{hi, lo}
	}
	ae, ao := deinterleave(a)
	be, bo := deinterleave(b)
	de := e.merge(ae, be)
	do := e.merge(ao, bo)
	out := make([]cnf.Lit, 2*m)
	out[0] = de[0]
	for i := 0; i+1 < len(de); i++ {
		hi, lo := e.comparator(do[i], de[i+1])
		out[2*i+1] = hi
		out[2*i+2] = lo
	}
	out[2*m-1] = do[m-1]
	return out
}

// comparator emits a 2-sorter: hi = a ∨ b, lo = a ∧ b (upward polarity).
func (e *sorterEnc) comparator(a, b cnf.Lit) (hi, lo cnf.Lit) {
	hi = cnf.PosLit(e.d.NewVar())
	lo = cnf.PosLit(e.d.NewVar())
	e.d.AddClause(a.Neg(), hi)
	e.d.AddClause(b.Neg(), hi)
	e.d.AddClause(a.Neg(), b.Neg(), lo)
	e.comparators++
	return hi, lo
}

func deinterleave(xs []cnf.Lit) (even, odd []cnf.Lit) {
	even = make([]cnf.Lit, 0, (len(xs)+1)/2)
	odd = make([]cnf.Lit, 0, len(xs)/2)
	for i, x := range xs {
		if i%2 == 0 {
			even = append(even, x)
		} else {
			odd = append(odd, x)
		}
	}
	return even, odd
}

// SorterComparators returns the number of comparators an n-input odd-even
// merge sorting network uses after padding to a power of two. Exposed for
// the encoding-size ablation.
func SorterComparators(n int) int {
	size := 1
	for size < n {
		size *= 2
	}
	return comparatorsForSize(size)
}

func comparatorsForSize(n int) int {
	if n <= 1 {
		return 0
	}
	return 2*comparatorsForSize(n/2) + mergeComparators(n/2)
}

func mergeComparators(m int) int {
	if m == 1 {
		return 1
	}
	return 2*mergeComparators(m/2) + m - 1
}
