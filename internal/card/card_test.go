package card

import (
	"math/bits"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
)

var allEncodings = []Encoding{BDD, Sorter, Sequential, Totalizer}

// checkAtMostSemantics exhaustively verifies that, for every assignment of
// the n input literals, the encoding is satisfiable iff the constraint
// holds. This is the defining property of an assertive-polarity encoding.
func checkAtMostSemantics(t *testing.T, enc Encoding, n, k int) {
	t.Helper()
	for bitsVal := 0; bitsVal < 1<<uint(n); bitsVal++ {
		s := sat.New()
		inputs := make([]cnf.Lit, n)
		for i := range inputs {
			inputs[i] = cnf.PosLit(s.NewVar())
		}
		AtMost(s, enc, inputs, k)
		for i := range inputs {
			if bitsVal&(1<<uint(i)) != 0 {
				s.AddClause(inputs[i])
			} else {
				s.AddClause(inputs[i].Neg())
			}
		}
		st := s.Solve()
		count := bits.OnesCount(uint(bitsVal))
		want := sat.Sat
		if count > k {
			want = sat.Unsat
		}
		if st != want {
			t.Fatalf("%v AtMost(n=%d,k=%d) inputs=%0*b (count %d): got %v, want %v",
				enc, n, k, n, bitsVal, count, st, want)
		}
	}
}

func TestAtMostSemanticsExhaustive(t *testing.T) {
	for _, enc := range allEncodings {
		enc := enc
		t.Run(enc.String(), func(t *testing.T) {
			for n := 1; n <= 7; n++ {
				for k := 0; k <= n; k++ {
					checkAtMostSemantics(t, enc, n, k)
				}
			}
		})
	}
}

func TestAtMostOneEncodings(t *testing.T) {
	for _, enc := range []Encoding{Pairwise, Ladder, Commander, Bitwise} {
		enc := enc
		t.Run(enc.String(), func(t *testing.T) {
			for n := 1; n <= 9; n++ {
				checkAtMostSemantics(t, enc, n, 1)
			}
		})
	}
}

func TestPairwiseRejectsK2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("pairwise with k=2 should panic")
		}
	}()
	s := sat.New()
	lits := []cnf.Lit{cnf.PosLit(s.NewVar()), cnf.PosLit(s.NewVar()), cnf.PosLit(s.NewVar())}
	AtMost(s, Pairwise, lits, 2)
}

func checkAtLeastSemantics(t *testing.T, enc Encoding, n, k int) {
	t.Helper()
	for bitsVal := 0; bitsVal < 1<<uint(n); bitsVal++ {
		s := sat.New()
		inputs := make([]cnf.Lit, n)
		for i := range inputs {
			inputs[i] = cnf.PosLit(s.NewVar())
		}
		AtLeast(s, enc, inputs, k)
		for i := range inputs {
			if bitsVal&(1<<uint(i)) != 0 {
				s.AddClause(inputs[i])
			} else {
				s.AddClause(inputs[i].Neg())
			}
		}
		st := s.Solve()
		count := bits.OnesCount(uint(bitsVal))
		want := sat.Sat
		if count < k {
			want = sat.Unsat
		}
		if st != want {
			t.Fatalf("%v AtLeast(n=%d,k=%d) count=%d: got %v, want %v",
				enc, n, k, count, st, want)
		}
	}
}

func TestAtLeastSemanticsExhaustive(t *testing.T) {
	for _, enc := range allEncodings {
		enc := enc
		t.Run(enc.String(), func(t *testing.T) {
			for n := 1; n <= 6; n++ {
				for k := 0; k <= n+1; k++ {
					checkAtLeastSemantics(t, enc, n, k)
				}
			}
		})
	}
}

func TestExactlySemantics(t *testing.T) {
	for _, enc := range allEncodings {
		for n := 1; n <= 5; n++ {
			for k := 0; k <= n; k++ {
				for bitsVal := 0; bitsVal < 1<<uint(n); bitsVal++ {
					s := sat.New()
					inputs := make([]cnf.Lit, n)
					for i := range inputs {
						inputs[i] = cnf.PosLit(s.NewVar())
					}
					Exactly(s, enc, inputs, k)
					for i := range inputs {
						if bitsVal&(1<<uint(i)) != 0 {
							s.AddClause(inputs[i])
						} else {
							s.AddClause(inputs[i].Neg())
						}
					}
					st := s.Solve()
					want := sat.Sat
					if bits.OnesCount(uint(bitsVal)) != k {
						want = sat.Unsat
					}
					if st != want {
						t.Fatalf("%v Exactly(n=%d,k=%d) inputs=%b: got %v, want %v",
							enc, n, k, bitsVal, st, want)
					}
				}
			}
		}
	}
}

func TestAtMostDegenerate(t *testing.T) {
	for _, enc := range allEncodings {
		// k < 0 is unsatisfiable even with no inputs forced.
		s := sat.New()
		lits := []cnf.Lit{cnf.PosLit(s.NewVar())}
		AtMost(s, enc, lits, -1)
		if s.Solve() != sat.Unsat {
			t.Fatalf("%v: AtMost k=-1 must be Unsat", enc)
		}
		// k >= n adds nothing.
		f := cnf.NewFormula(3)
		d := NewFormulaDest(f)
		AtMost(d, enc, []cnf.Lit{cnf.PosLit(0), cnf.PosLit(1)}, 2)
		if f.NumClauses() != 0 {
			t.Fatalf("%v: AtMost k>=n emitted %d clauses", enc, f.NumClauses())
		}
		// AtLeast k > n unsatisfiable.
		s2 := sat.New()
		lits2 := []cnf.Lit{cnf.PosLit(s2.NewVar())}
		AtLeast(s2, enc, lits2, 2)
		if s2.Solve() != sat.Unsat {
			t.Fatalf("%v: AtLeast k>n must be Unsat", enc)
		}
	}
}

func TestAtLeastOneIsPlainClause(t *testing.T) {
	f := cnf.NewFormula(3)
	d := NewFormulaDest(f)
	lits := []cnf.Lit{cnf.PosLit(0), cnf.PosLit(1), cnf.PosLit(2)}
	AtLeast(d, BDD, lits, 1)
	if f.NumClauses() != 1 || len(f.Clauses[0]) != 3 {
		t.Fatalf("AtLeast-1 should emit one ternary clause, got %v", f.Clauses)
	}
}

func TestSorterOutputsSorted(t *testing.T) {
	// For every input assignment, the sorter's outputs must be able to take
	// exactly the unary count pattern: out[i] true iff count > i.
	for n := 1; n <= 8; n++ {
		for bitsVal := 0; bitsVal < 1<<uint(n); bitsVal++ {
			s := sat.New()
			inputs := make([]cnf.Lit, n)
			for i := range inputs {
				inputs[i] = cnf.PosLit(s.NewVar())
			}
			e := &sorterEnc{d: s}
			out := e.Sort(inputs)
			if len(out) != n {
				t.Fatalf("Sort returned %d outputs for %d inputs", len(out), n)
			}
			count := bits.OnesCount(uint(bitsVal))
			for i := range inputs {
				if bitsVal&(1<<uint(i)) != 0 {
					s.AddClause(inputs[i])
				} else {
					s.AddClause(inputs[i].Neg())
				}
			}
			// Force outputs to the exact unary pattern; must be satisfiable
			// (upward polarity allows higher outputs but the semantic value
			// is always consistent).
			for i := range out {
				if i < count {
					s.AddClause(out[i])
				} else {
					s.AddClause(out[i].Neg())
				}
			}
			if st := s.Solve(); st != sat.Sat {
				t.Fatalf("n=%d inputs=%0*b count=%d: unary output pattern unsat",
					n, n, bitsVal, count)
			}
			// And the violating pattern out[count] = true with count true
			// inputs must be blocked in the downward... it is not blocked in
			// upward polarity, so instead check the binding property: forcing
			// out[count-1] false must be unsat when count >= 1.
			if count >= 1 {
				s2 := sat.New()
				inputs2 := make([]cnf.Lit, n)
				for i := range inputs2 {
					inputs2[i] = cnf.PosLit(s2.NewVar())
				}
				e2 := &sorterEnc{d: s2}
				out2 := e2.Sort(inputs2)
				for i := range inputs2 {
					if bitsVal&(1<<uint(i)) != 0 {
						s2.AddClause(inputs2[i])
					} else {
						s2.AddClause(inputs2[i].Neg())
					}
				}
				s2.AddClause(out2[count-1].Neg())
				if st := s2.Solve(); st != sat.Unsat {
					t.Fatalf("n=%d count=%d: out[count-1] must be forced true", n, count)
				}
			}
		}
	}
}

func TestEncodingSizes(t *testing.T) {
	// Sequential should be linear in n for fixed k; sorter O(n log^2 n);
	// BDD O(n*k). Sanity-check relative growth and the reported counters.
	if c := SorterComparators(1); c != 0 {
		t.Fatalf("SorterComparators(1) = %d", c)
	}
	if c := SorterComparators(2); c != 1 {
		t.Fatalf("SorterComparators(2) = %d", c)
	}
	if c := SorterComparators(4); c != 5 {
		t.Fatalf("SorterComparators(4) = %d, want 5 (Batcher)", c)
	}
	if c := SorterComparators(8); c != 19 {
		t.Fatalf("SorterComparators(8) = %d, want 19 (Batcher)", c)
	}
	// Verify the comparator counter matches the formula.
	for _, n := range []int{2, 3, 4, 5, 8, 9, 16} {
		f := cnf.NewFormula(n)
		d := NewFormulaDest(f)
		inputs := make([]cnf.Lit, n)
		for i := range inputs {
			inputs[i] = cnf.PosLit(cnf.Var(i))
		}
		e := &sorterEnc{d: d}
		e.Sort(inputs)
		if e.comparators != SorterComparators(n) {
			t.Fatalf("n=%d: emitted %d comparators, formula says %d",
				n, e.comparators, SorterComparators(n))
		}
	}
	if BDDSize(10, 10) != 0 || BDDSize(10, -1) != 0 {
		t.Fatal("degenerate BDD sizes should be 0")
	}
	if BDDSize(10, 3) <= 0 {
		t.Fatal("BDDSize(10,3) should be positive")
	}
}

func TestIncTotalizerBasic(t *testing.T) {
	s := sat.New()
	inputs := make([]cnf.Lit, 6)
	for i := range inputs {
		inputs[i] = cnf.PosLit(s.NewVar())
	}
	tot := NewIncTotalizer(s, inputs, len(inputs))
	// Force 4 inputs true.
	for i := 0; i < 4; i++ {
		s.AddClause(inputs[i])
	}
	for i := 4; i < 6; i++ {
		s.AddClause(inputs[i].Neg())
	}
	for k := 0; k <= 6; k++ {
		assump, ok := tot.Bound(k)
		var st sat.Status
		if ok {
			st = s.Solve(assump)
		} else {
			st = s.Solve()
		}
		want := sat.Sat
		if 4 > k {
			want = sat.Unsat
		}
		if st != want {
			t.Fatalf("Bound(%d) with 4 true: got %v, want %v", k, st, want)
		}
	}
}

func TestIncTotalizerAddInputs(t *testing.T) {
	s := sat.New()
	first := []cnf.Lit{cnf.PosLit(s.NewVar()), cnf.PosLit(s.NewVar())}
	tot := NewIncTotalizer(s, first, 10)
	more := []cnf.Lit{cnf.PosLit(s.NewVar()), cnf.PosLit(s.NewVar()), cnf.PosLit(s.NewVar())}
	tot.AddInputs(more)
	if tot.Inputs() != 5 {
		t.Fatalf("Inputs = %d, want 5", tot.Inputs())
	}
	// Force 3 of 5 true.
	all := append(append([]cnf.Lit{}, first...), more...)
	for i, l := range all {
		if i < 3 {
			s.AddClause(l)
		} else {
			s.AddClause(l.Neg())
		}
	}
	for k := 0; k < 5; k++ {
		assump, ok := tot.Bound(k)
		if !ok {
			t.Fatalf("Bound(%d) should be expressible", k)
		}
		st := s.Solve(assump)
		want := sat.Sat
		if 3 > k {
			want = sat.Unsat
		}
		if st != want {
			t.Fatalf("after AddInputs, Bound(%d): got %v, want %v", k, st, want)
		}
	}
}

func TestIncTotalizerEmptyThenAdd(t *testing.T) {
	s := sat.New()
	tot := NewIncTotalizer(s, nil, 10)
	if _, ok := tot.Bound(0); ok {
		t.Fatal("empty totalizer has no bounds")
	}
	lits := []cnf.Lit{cnf.PosLit(s.NewVar()), cnf.PosLit(s.NewVar())}
	tot.AddInputs(lits)
	s.AddClause(lits[0])
	s.AddClause(lits[1])
	assump, ok := tot.Bound(1)
	if !ok {
		t.Fatal("Bound(1) should exist")
	}
	if st := s.Solve(assump); st != sat.Unsat {
		t.Fatalf("2 true with bound 1: got %v", st)
	}
}

func TestParseEncoding(t *testing.T) {
	for _, enc := range []Encoding{BDD, Sorter, Sequential, Totalizer, Pairwise, Ladder, Commander, Bitwise} {
		got, err := ParseEncoding(enc.String())
		if err != nil || got != enc {
			t.Fatalf("ParseEncoding(%q) = %v, %v", enc.String(), got, err)
		}
	}
	if _, err := ParseEncoding("nope"); err == nil {
		t.Fatal("unknown encoding should error")
	}
}

func TestGuarded(t *testing.T) {
	// Structural: every emitted clause carries the disabling literal.
	f := cnf.NewFormula(3)
	d := NewFormulaDest(f)
	disable := cnf.PosLit(d.NewVar())
	g := Guarded(d, disable)
	if v := g.NewVar(); v != 4 {
		t.Fatalf("NewVar passthrough = %v", v)
	}
	g.AddClause(cnf.PosLit(0), cnf.PosLit(1))
	g.AddClause()
	for _, c := range f.Clauses {
		if c[len(c)-1] != disable {
			t.Fatalf("clause %v missing disable literal %v", c, disable)
		}
	}

	// Semantic: a guarded AtMost-1 over x1..x3 is enforced while assuming
	// ¬disable, and retired by the unit clause {disable}.
	s := sat.New()
	s.EnsureVars(3)
	lits := []cnf.Lit{cnf.PosLit(0), cnf.PosLit(1), cnf.PosLit(2)}
	for _, l := range lits {
		s.AddClause(l) // force all three true: violates AtMost-1
	}
	dis := cnf.PosLit(s.NewVar())
	AtMost(Guarded(s, dis), Pairwise, lits, 1)
	if st := s.Solve(dis.Neg()); st != sat.Unsat {
		t.Fatalf("active guarded constraint: %v, want UNSAT", st)
	}
	if st := s.Solve(); st != sat.Sat {
		t.Fatalf("without activation the constraint must not bind: %v", st)
	}
	s.AddClause(dis) // retire
	if st := s.Solve(); st != sat.Sat {
		t.Fatalf("retired constraint must not bind: %v", st)
	}
}

func TestFormulaDest(t *testing.T) {
	f := cnf.NewFormula(2)
	d := NewFormulaDest(f)
	v := d.NewVar()
	if v != 2 || f.NumVars != 3 {
		t.Fatalf("NewVar = %v, NumVars = %d", v, f.NumVars)
	}
	if !d.AddClause(cnf.PosLit(v)) {
		t.Fatal("AddClause should report true")
	}
	if f.NumClauses() != 1 {
		t.Fatal("clause not appended")
	}
}
