// Package card provides CNF encodings of cardinality constraints
// (AtMost-k, AtLeast-k, Exactly-k over a set of literals).
//
// The DATE 2008 msu4 paper evaluates two encodings taken from Eén &
// Sörensson's minisat+ ("Translating Pseudo-Boolean Constraints into SAT"):
// BDDs (msu4 v1) and odd-even merge sorting networks (msu4 v2). This package
// implements both, plus the sequential counter (the "linear encoding" used
// by msu2/msu3 in the companion report) and the totalizer, which serve as
// ablation points, and pairwise/ladder/commander/bitwise encodings for the
// AtMost-1 special case.
//
// All encodings are emitted in assertive polarity: they are correct when the
// constraint is asserted as part of the formula (which is how every MaxSAT
// algorithm in this repository uses them). AtLeast-k is reduced to AtMost on
// the negated literals, so a single polarity suffices throughout.
package card

import (
	"fmt"

	"repro/internal/cnf"
)

// Dest receives an encoding: fresh auxiliary variables and clauses.
// *sat.Solver and *FormulaDest both implement it.
type Dest interface {
	NewVar() cnf.Var
	AddClause(lits ...cnf.Lit) bool
}

// Encoding selects a cardinality encoding.
type Encoding int

// Available encodings.
const (
	// BDD encodes the constraint as the Tseitin translation of its reduced
	// ordered BDD — msu4 "v1" in the paper.
	BDD Encoding = iota
	// Sorter encodes via an odd-even merge sorting network — msu4 "v2".
	Sorter
	// Sequential is Sinz's sequential counter (LT-SEQ), the linear encoding
	// referenced for msu2/msu3.
	Sequential
	// Totalizer is Bailleux & Boufkhad's unary totalizer.
	Totalizer
	// Pairwise is the quadratic pairwise encoding; only valid for AtMost-1.
	Pairwise
	// Ladder is the ladder (regular) encoding; only valid for AtMost-1.
	Ladder
	// Commander is the commander AMO encoding; only valid for AtMost-1.
	Commander
	// Bitwise is the binary/bitwise AMO encoding; only valid for AtMost-1.
	Bitwise
)

// String names the encoding as used in reports and CLI flags.
func (e Encoding) String() string {
	switch e {
	case BDD:
		return "bdd"
	case Sorter:
		return "sorter"
	case Sequential:
		return "seq"
	case Totalizer:
		return "totalizer"
	case Pairwise:
		return "pairwise"
	case Ladder:
		return "ladder"
	case Commander:
		return "commander"
	case Bitwise:
		return "bitwise"
	default:
		return fmt.Sprintf("Encoding(%d)", int(e))
	}
}

// ParseEncoding converts a CLI name into an Encoding.
func ParseEncoding(s string) (Encoding, error) {
	switch s {
	case "bdd":
		return BDD, nil
	case "sorter", "sortnet", "sorting":
		return Sorter, nil
	case "seq", "sequential":
		return Sequential, nil
	case "totalizer", "tot":
		return Totalizer, nil
	case "pairwise":
		return Pairwise, nil
	case "ladder":
		return Ladder, nil
	case "commander", "cmd":
		return Commander, nil
	case "bitwise", "binary":
		return Bitwise, nil
	}
	return 0, fmt.Errorf("card: unknown encoding %q", s)
}

// AtMost asserts sum(lits) <= k using the chosen encoding.
//
// Degenerate cases are handled uniformly: k < 0 makes the formula
// unsatisfiable (an empty clause is added); k == 0 forces every literal
// false; k >= len(lits) adds nothing.
func AtMost(d Dest, enc Encoding, lits []cnf.Lit, k int) {
	n := len(lits)
	switch {
	case k < 0:
		d.AddClause() // unsatisfiable
		return
	case k >= n:
		return
	case k == 0:
		for _, l := range lits {
			d.AddClause(l.Neg())
		}
		return
	}
	switch enc {
	case BDD:
		atMostBDD(d, lits, k)
	case Sorter:
		atMostSorter(d, lits, k)
	case Sequential:
		atMostSeq(d, lits, k)
	case Totalizer:
		atMostTotalizer(d, lits, k)
	case Pairwise:
		if k != 1 {
			panic("card: pairwise encoding only supports AtMost-1")
		}
		atMostOnePairwise(d, lits)
	case Ladder:
		if k != 1 {
			panic("card: ladder encoding only supports AtMost-1")
		}
		atMostOneLadder(d, lits)
	case Commander:
		if k != 1 {
			panic("card: commander encoding only supports AtMost-1")
		}
		atMostOneCommander(d, lits)
	case Bitwise:
		if k != 1 {
			panic("card: bitwise encoding only supports AtMost-1")
		}
		atMostOneBitwise(d, lits)
	default:
		panic("card: unknown encoding")
	}
}

// AtLeast asserts sum(lits) >= k by encoding AtMost(len-k) over the negated
// literals.
func AtLeast(d Dest, enc Encoding, lits []cnf.Lit, k int) {
	n := len(lits)
	switch {
	case k <= 0:
		return
	case k > n:
		d.AddClause() // unsatisfiable
		return
	case k == n:
		for _, l := range lits {
			d.AddClause(l)
		}
		return
	case k == 1:
		d.AddClause(lits...) // plain clause: cheapest possible encoding
		return
	}
	neg := make([]cnf.Lit, n)
	for i, l := range lits {
		neg[i] = l.Neg()
	}
	AtMost(d, enc, neg, n-k)
}

// Exactly asserts sum(lits) == k.
func Exactly(d Dest, enc Encoding, lits []cnf.Lit, k int) {
	AtMost(d, enc, lits, k)
	AtLeast(d, enc, lits, k)
}

// atMostOnePairwise emits the quadratic pairwise AtMost-1 encoding.
func atMostOnePairwise(d Dest, lits []cnf.Lit) {
	for i := 0; i < len(lits); i++ {
		for j := i + 1; j < len(lits); j++ {
			d.AddClause(lits[i].Neg(), lits[j].Neg())
		}
	}
}

// atMostOneLadder emits the ladder (a.k.a. regular) AtMost-1 encoding with
// n-1 auxiliary variables and O(n) clauses.
func atMostOneLadder(d Dest, lits []cnf.Lit) {
	n := len(lits)
	if n <= 4 {
		atMostOnePairwise(d, lits)
		return
	}
	// y_i = "some literal among lits[0..i] is true"
	y := make([]cnf.Lit, n-1)
	for i := range y {
		y[i] = cnf.PosLit(d.NewVar())
	}
	// lits[i] -> y[i] for i < n-1
	for i := 0; i < n-1; i++ {
		d.AddClause(lits[i].Neg(), y[i])
	}
	// y[i-1] -> y[i]
	for i := 1; i < n-1; i++ {
		d.AddClause(y[i-1].Neg(), y[i])
	}
	// lits[i] ∧ y[i-1] -> false
	for i := 1; i < n; i++ {
		d.AddClause(lits[i].Neg(), y[i-1].Neg())
	}
}

// atMostSeq emits Sinz's sequential counter for sum(lits) <= k
// (1 <= k < len(lits)).
func atMostSeq(d Dest, lits []cnf.Lit, k int) {
	n := len(lits)
	// s[i][j]: the prefix lits[0..i] contains at least j+1 true literals.
	// Rows are allocated for i = 0 .. n-2 only; the last input contributes
	// just the overflow clause.
	s := make([][]cnf.Lit, n-1)
	for i := range s {
		row := make([]cnf.Lit, k)
		for j := range row {
			row[j] = cnf.PosLit(d.NewVar())
		}
		s[i] = row
	}
	// Base: x_0 -> s[0][0]; higher counts of a 1-prefix are impossible but
	// need no clause in assertive polarity.
	d.AddClause(lits[0].Neg(), s[0][0])
	for i := 1; i < n-1; i++ {
		// x_i -> s[i][0]
		d.AddClause(lits[i].Neg(), s[i][0])
		// s[i-1][j] -> s[i][j]
		for j := 0; j < k; j++ {
			d.AddClause(s[i-1][j].Neg(), s[i][j])
		}
		// x_i ∧ s[i-1][j-1] -> s[i][j]
		for j := 1; j < k; j++ {
			d.AddClause(lits[i].Neg(), s[i-1][j-1].Neg(), s[i][j])
		}
		// overflow: x_i ∧ s[i-1][k-1] -> ⊥
		d.AddClause(lits[i].Neg(), s[i-1][k-1].Neg())
	}
	// overflow for the last input
	d.AddClause(lits[n-1].Neg(), s[n-2][k-1].Neg())
}

// guardedDest appends a fixed disabling literal to every emitted clause.
type guardedDest struct {
	d       Dest
	disable cnf.Lit
}

func (g guardedDest) NewVar() cnf.Var { return g.d.NewVar() }

func (g guardedDest) AddClause(lits ...cnf.Lit) bool {
	out := make([]cnf.Lit, len(lits)+1)
	copy(out, lits)
	out[len(lits)] = g.disable
	return g.d.AddClause(out...)
}

// Guarded wraps d so that every emitted clause carries the extra literal
// `disable`. The encoded constraint is then switchable: assuming
// disable.Neg() activates it, while adding the unit clause {disable}
// permanently satisfies every clause of the encoding, retiring it.
//
// msu4's ReencodeBounds ablation uses this to keep only its latest
// upper-bound cardinality constraint active instead of accumulating one
// permanent encoding per SAT iteration; the default msu4 maintains a single
// incremental totalizer instead and never retracts anything.
func Guarded(d Dest, disable cnf.Lit) Dest {
	return guardedDest{d: d, disable: disable}
}

// FormulaDest adapts a *cnf.Formula as an encoding destination, for tests
// and for callers that assemble CNF before handing it to a solver.
type FormulaDest struct {
	F *cnf.Formula
}

// NewFormulaDest wraps f.
func NewFormulaDest(f *cnf.Formula) *FormulaDest { return &FormulaDest{F: f} }

// NewVar allocates a fresh variable by growing the formula's variable count.
func (d *FormulaDest) NewVar() cnf.Var {
	v := cnf.Var(d.F.NumVars)
	d.F.NumVars++
	return v
}

// AddClause appends the clause to the formula. It always reports true; the
// formula representation cannot detect level-0 conflicts.
func (d *FormulaDest) AddClause(lits ...cnf.Lit) bool {
	d.F.AddClause(lits...)
	return true
}
