package harness

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderScatterASCII draws a log-log ASCII scatter plot in the style of the
// paper's Figures 1–3: x axis = solverX time, y axis = solverY time, with
// the main diagonal marked. Points above the diagonal are instances where
// solverX (the x-axis solver, msu4-v2 in the paper's figures) is faster.
func (r *Report) RenderScatterASCII(w io.Writer, solverX, solverY string, width, height int) {
	pts := r.Scatter(solverX, solverY)
	if len(pts) == 0 {
		fmt.Fprintf(w, "no data for %s vs %s\n", solverX, solverY)
		return
	}
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 24
	}
	// Log range: from the smallest positive time (floored at 0.1 ms) to the
	// timeout (or max observed).
	lo := math.Inf(1)
	hi := 0.0
	for _, p := range pts {
		for _, v := range []float64{p.X, p.Y} {
			if v > 0 && v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if r.Timeout > 0 {
		hi = r.Timeout.Seconds()
	}
	if lo < 1e-4 || math.IsInf(lo, 1) {
		lo = 1e-4
	}
	if hi <= lo {
		hi = lo * 10
	}
	logLo, logHi := math.Log10(lo), math.Log10(hi)
	span := logHi - logLo
	scaleX := func(v float64) int {
		if v < lo {
			v = lo
		}
		return int((math.Log10(v) - logLo) / span * float64(width-1))
	}
	scaleY := func(v float64) int {
		if v < lo {
			v = lo
		}
		return int((math.Log10(v) - logLo) / span * float64(height-1))
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// Diagonal (x == y).
	for c := 0; c < width; c++ {
		rr := int(float64(c) / float64(width-1) * float64(height-1))
		grid[height-1-rr][c] = '.'
	}
	for _, p := range pts {
		c := scaleX(p.X)
		rr := scaleY(p.Y)
		grid[height-1-rr][c] = '+'
	}

	fmt.Fprintf(w, "%s (y) vs %s (x), log-log, seconds in [%.2g, %.2g]\n",
		solverY, solverX, lo, hi)
	for i, line := range grid {
		margin := " "
		if i == 0 {
			margin = "^"
		}
		fmt.Fprintf(w, "%s|%s|\n", margin, string(line))
	}
	fmt.Fprintf(w, "  %s>\n", strings.Repeat("-", width))
	above, below := 0, 0
	for _, p := range pts {
		switch {
		case p.Y > p.X:
			above++
		case p.Y < p.X:
			below++
		}
	}
	fmt.Fprintf(w, "points above diagonal (%s faster): %d; below: %d; total: %d\n",
		solverX, above, below, len(pts))
}
