// Package harness runs MaxSAT solver line-ups over benchmark suites under
// per-instance timeouts and renders the paper's artifacts: abort-count
// tables (Tables 1 and 2) and log-log scatter plots (Figures 1–3).
package harness

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/bnb"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/pbo"
	"repro/internal/portfolio"
)

// SolverSpec names a solver and knows how to build a fresh instance of it
// for one run (fresh state per instance, like restarting the binary).
type SolverSpec struct {
	Name string
	Make func(o opt.Options) opt.Solver
}

// DefaultSolvers returns the paper's Table 1 line-up: maxsatz, the PBO
// formulation, and both msu4 versions.
func DefaultSolvers() []SolverSpec {
	return []SolverSpec{
		{Name: "maxsatz", Make: func(o opt.Options) opt.Solver { return bnb.New(o) }},
		{Name: "pbo", Make: func(o opt.Options) opt.Solver { return &pbo.Linear{Opts: o} }},
		{Name: "msu4-v1", Make: func(o opt.Options) opt.Solver { return core.NewMSU4V1(o) }},
		{Name: "msu4-v2", Make: func(o opt.Options) opt.Solver { return core.NewMSU4V2(o) }},
	}
}

// ExtendedSolvers adds the related-work algorithms (msu1/msu2/msu3) and the
// binary-search PBO variant to the default line-up.
func ExtendedSolvers() []SolverSpec {
	out := DefaultSolvers()
	out = append(out,
		SolverSpec{Name: "msu1", Make: func(o opt.Options) opt.Solver { return core.NewMSU1(o) }},
		SolverSpec{Name: "msu2", Make: func(o opt.Options) opt.Solver { return core.NewMSU2(o) }},
		SolverSpec{Name: "msu3", Make: func(o opt.Options) opt.Solver { return core.NewMSU3(o) }},
		SolverSpec{Name: "wmsu1", Make: func(o opt.Options) opt.Solver { return core.NewWMSU1(o) }},
		SolverSpec{Name: "wmsu4", Make: func(o opt.Options) opt.Solver { return core.NewWMSU4(o) }},
		SolverSpec{Name: "oll", Make: func(o opt.Options) opt.Solver { return core.NewOLL(o) }},
		SolverSpec{Name: "pbo-bin", Make: func(o opt.Options) opt.Solver { return &pbo.BinarySearch{Opts: o} }},
	)
	return out
}

// WeightedSolvers is the line-up for the weighted-table experiment: every
// complete weighted-capable algorithm in the repo, with the core-guided
// pair (wmsu4, oll) alongside the PBO baselines.
func WeightedSolvers() []SolverSpec {
	return []SolverSpec{
		{Name: "pbo", Make: func(o opt.Options) opt.Solver { return &pbo.Linear{Opts: o} }},
		{Name: "pbo-bin", Make: func(o opt.Options) opt.Solver { return &pbo.BinarySearch{Opts: o} }},
		{Name: "wmsu1", Make: func(o opt.Options) opt.Solver { return core.NewWMSU1(o) }},
		{Name: "wmsu4", Make: func(o opt.Options) opt.Solver { return core.NewWMSU4(o) }},
		{Name: "oll", Make: func(o opt.Options) opt.Solver { return core.NewOLL(o) }},
	}
}

// WithPreprocessing returns a copy of spec whose solver runs with the
// soft-aware preprocessing stage enabled; its column is named "<name>+pre"
// so with/without runs sit side by side in the paper-style tables.
func WithPreprocessing(spec SolverSpec) SolverSpec {
	mk := spec.Make
	return SolverSpec{Name: spec.Name + "+pre", Make: func(o opt.Options) opt.Solver {
		o.Preprocess = true
		return mk(o)
	}}
}

// ComparePreprocessing doubles every spec with its preprocessing-enabled
// twin, interleaved (name, name+pre, ...), for Table-1-style with/without
// comparisons. CheckAgreement then doubles as a differential test: a
// preprocessed column disagreeing with its raw twin fails the run.
func ComparePreprocessing(specs []SolverSpec) []SolverSpec {
	out := make([]SolverSpec, 0, 2*len(specs))
	for _, s := range specs {
		out = append(out, s, WithPreprocessing(s))
	}
	return out
}

// PortfolioSpec returns a spec racing the default portfolio line-up with
// the given parallelism, so experiment reports can show a portfolio row
// next to the paper's per-algorithm rows.
func PortfolioSpec(jobs int) SolverSpec {
	name := "portfolio"
	if jobs > 0 {
		name = fmt.Sprintf("portfolio-%d", jobs)
	}
	return SolverSpec{Name: name, Make: func(o opt.Options) opt.Solver {
		e := portfolio.New(o, jobs)
		e.Label = name
		return e
	}}
}

// PortfolioShareSpec is PortfolioSpec with learnt-clause exchange between
// the members enabled; its column is named "<portfolio>+share" so share-on
// and share-off portfolios sit side by side in the paper-style tables.
func PortfolioShareSpec(jobs int) SolverSpec {
	name := "portfolio+share"
	if jobs > 0 {
		name = fmt.Sprintf("portfolio-%d+share", jobs)
	}
	return SolverSpec{Name: name, Make: func(o opt.Options) opt.Solver {
		e := portfolio.New(o, jobs)
		e.Share = true
		e.Label = name
		return e
	}}
}

// SolverByName returns the spec with the given name from the extended
// line-up.
func SolverByName(name string) (SolverSpec, bool) {
	for _, s := range ExtendedSolvers() {
		if s.Name == name {
			return s, true
		}
	}
	return SolverSpec{}, false
}

// Config controls a harness run.
type Config struct {
	// Timeout is the per-instance, per-solver wall-clock budget (the
	// paper's 1000 s, scaled; see EXPERIMENTS.md).
	Timeout time.Duration
	// Solvers is the line-up; nil selects DefaultSolvers.
	Solvers []SolverSpec
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

// RunResult is the outcome of one (instance, solver) run.
type RunResult struct {
	Instance string
	Family   string
	Solver   string
	Status   opt.Status
	Cost     cnf.Weight
	Elapsed  time.Duration
	// Aborted mirrors the paper's "aborted instances": the solver failed to
	// prove an optimum (or hard-unsatisfiability) within the timeout.
	Aborted bool
}

// Report aggregates a harness run.
type Report struct {
	Solvers   []string
	Instances []gen.Instance
	Timeout   time.Duration
	// Results[i][s]: instance i, solver s.
	Results [][]RunResult
}

// Run executes every solver on every instance.
func Run(insts []gen.Instance, cfg Config) *Report {
	specs := cfg.Solvers
	if specs == nil {
		specs = DefaultSolvers()
	}
	rep := &Report{Timeout: cfg.Timeout, Instances: insts}
	for _, s := range specs {
		rep.Solvers = append(rep.Solvers, s.Name)
	}
	for _, in := range insts {
		row := make([]RunResult, len(specs))
		for si, spec := range specs {
			solver := spec.Make(opt.Options{})
			ctx := context.Background()
			var cancel context.CancelFunc = func() {}
			if cfg.Timeout > 0 {
				ctx, cancel = context.WithTimeout(ctx, cfg.Timeout)
			}
			start := time.Now()
			r := solver.Solve(ctx, in.W, nil)
			cancel()
			elapsed := time.Since(start)
			row[si] = RunResult{
				Instance: in.Name,
				Family:   in.Family,
				Solver:   spec.Name,
				Status:   r.Status,
				Cost:     r.Cost,
				Elapsed:  elapsed,
				Aborted:  r.Status == opt.StatusUnknown,
			}
			if cfg.Progress != nil {
				fmt.Fprintf(cfg.Progress, "%-28s %-12s %v\n", in.Name, spec.Name, r)
			}
		}
		rep.Results = append(rep.Results, row)
	}
	return rep
}

// AbortCounts returns the per-solver aborted-instance counts — the rows of
// Tables 1 and 2.
func (r *Report) AbortCounts() map[string]int {
	out := map[string]int{}
	for _, row := range r.Results {
		for _, res := range row {
			if res.Aborted {
				out[res.Solver]++
			}
		}
	}
	return out
}

// RenderAbortTable writes the paper-style abort table.
func (r *Report) RenderAbortTable(w io.Writer, title string) {
	counts := r.AbortCounts()
	fmt.Fprintf(w, "%s (timeout %v per instance)\n", title, r.Timeout)
	fmt.Fprintf(w, "%-8s", "Total")
	for _, s := range r.Solvers {
		fmt.Fprintf(w, " %10s", s)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-8d", len(r.Instances))
	for _, s := range r.Solvers {
		fmt.Fprintf(w, " %10d", counts[s])
	}
	fmt.Fprintln(w)
}

// CheckAgreement verifies that all solvers that proved an optimum agree on
// the cost, and that the cost matches the instance's analytically known
// optimum where available. It returns the list of inconsistencies.
func (r *Report) CheckAgreement() []string {
	var problems []string
	for i, row := range r.Results {
		known := r.Instances[i].KnownCost
		agreed := cnf.Weight(-1)
		for _, res := range row {
			if res.Status != opt.StatusOptimal {
				continue
			}
			if known >= 0 && res.Cost != known {
				problems = append(problems, fmt.Sprintf(
					"%s: %s found cost %d, known optimum %d",
					res.Instance, res.Solver, res.Cost, known))
			}
			if agreed < 0 {
				agreed = res.Cost
			} else if res.Cost != agreed {
				problems = append(problems, fmt.Sprintf(
					"%s: %s found cost %d, another solver found %d",
					res.Instance, res.Solver, res.Cost, agreed))
			}
		}
	}
	return problems
}

// ScatterPoint is one instance in a solver-vs-solver comparison; times are
// clamped to the timeout for aborted runs (as in the paper's plots, where
// aborts sit on the timeout border).
type ScatterPoint struct {
	Instance string
	X, Y     float64 // seconds
}

// Scatter extracts the Figure 1–3 data: x = time of solverX, y = time of
// solverY per instance.
func (r *Report) Scatter(solverX, solverY string) []ScatterPoint {
	xi, yi := -1, -1
	for i, s := range r.Solvers {
		if s == solverX {
			xi = i
		}
		if s == solverY {
			yi = i
		}
	}
	if xi < 0 || yi < 0 {
		return nil
	}
	clamp := func(res RunResult) float64 {
		if res.Aborted && r.Timeout > 0 {
			return r.Timeout.Seconds()
		}
		t := res.Elapsed.Seconds()
		if r.Timeout > 0 && t > r.Timeout.Seconds() {
			t = r.Timeout.Seconds()
		}
		return t
	}
	var out []ScatterPoint
	for _, row := range r.Results {
		out = append(out, ScatterPoint{
			Instance: row[xi].Instance,
			X:        clamp(row[xi]),
			Y:        clamp(row[yi]),
		})
	}
	return out
}

// WriteScatterCSV emits the scatter data as CSV (instance, x, y).
func (r *Report) WriteScatterCSV(w io.Writer, solverX, solverY string) {
	fmt.Fprintf(w, "instance,%s,%s\n", solverX, solverY)
	for _, p := range r.Scatter(solverX, solverY) {
		fmt.Fprintf(w, "%s,%.6f,%.6f\n", p.Instance, p.X, p.Y)
	}
}

// WriteCSV emits the full result table as CSV.
func (r *Report) WriteCSV(w io.Writer) {
	fmt.Fprintln(w, "instance,family,solver,status,cost,seconds,aborted")
	for _, row := range r.Results {
		for _, res := range row {
			fmt.Fprintf(w, "%s,%s,%s,%s,%d,%.6f,%v\n",
				res.Instance, res.Family, res.Solver, res.Status,
				res.Cost, res.Elapsed.Seconds(), res.Aborted)
		}
	}
}
