package harness

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// FamilyAborts returns aborted counts and totals per benchmark family for
// one solver.
func (r *Report) FamilyAborts(solver string) (aborts, totals map[string]int) {
	si := r.solverIndex(solver)
	aborts = map[string]int{}
	totals = map[string]int{}
	if si < 0 {
		return aborts, totals
	}
	for _, row := range r.Results {
		res := row[si]
		totals[res.Family]++
		if res.Aborted {
			aborts[res.Family]++
		}
	}
	return aborts, totals
}

func (r *Report) solverIndex(name string) int {
	for i, s := range r.Solvers {
		if s == name {
			return i
		}
	}
	return -1
}

// RenderFamilyTable writes a per-family abort breakdown for every solver —
// the drill-down behind Table 1 that shows *where* each algorithm collapses
// (branch and bound on structured EDA families, PBO on blocking-variable-
// heavy ones).
func (r *Report) RenderFamilyTable(w io.Writer) {
	famSet := map[string]int{}
	var families []string
	for _, row := range r.Results {
		if len(row) == 0 {
			continue
		}
		f := row[0].Family
		if _, ok := famSet[f]; !ok {
			famSet[f] = 0
			families = append(families, f)
		}
		famSet[f]++
	}
	sort.Strings(families)
	fmt.Fprintf(w, "%-14s %6s", "family", "total")
	for _, s := range r.Solvers {
		fmt.Fprintf(w, " %10s", s)
	}
	fmt.Fprintln(w)
	for _, fam := range families {
		fmt.Fprintf(w, "%-14s %6d", fam, famSet[fam])
		for _, s := range r.Solvers {
			aborts, _ := r.FamilyAborts(s)
			fmt.Fprintf(w, " %10d", aborts[fam])
		}
		fmt.Fprintln(w)
	}
}

// VBS summarises the virtual best solver: for each instance the fastest
// non-aborted run. It returns the number of instances some solver finished
// and the total VBS time.
func (r *Report) VBS() (solved int, total time.Duration) {
	for _, row := range r.Results {
		best := time.Duration(-1)
		for _, res := range row {
			if res.Aborted {
				continue
			}
			if best < 0 || res.Elapsed < best {
				best = res.Elapsed
			}
		}
		if best >= 0 {
			solved++
			total += best
		}
	}
	return solved, total
}

// SolvedWithin returns, for each solver, how many instances it finished
// within the given per-instance time — the data behind cactus plots.
func (r *Report) SolvedWithin(limit time.Duration) map[string]int {
	out := map[string]int{}
	for _, row := range r.Results {
		for _, res := range row {
			if !res.Aborted && res.Elapsed <= limit {
				out[res.Solver]++
			}
		}
	}
	return out
}
