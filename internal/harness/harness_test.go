package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/opt"
)

func smallSuite() []gen.Instance {
	return []gen.Instance{
		gen.Pigeonhole(3),
		gen.EquivMiter(3),
		gen.BMCCounter(3, 4),
		gen.RandomKSAT(5, 12, 3, 6.0),
	}
}

func TestRunProducesFullGrid(t *testing.T) {
	rep := Run(smallSuite(), Config{Timeout: 10 * time.Second})
	if len(rep.Results) != 4 {
		t.Fatalf("got %d instance rows", len(rep.Results))
	}
	if len(rep.Solvers) != 4 {
		t.Fatalf("default line-up should have 4 solvers, got %v", rep.Solvers)
	}
	for _, row := range rep.Results {
		for _, res := range row {
			if res.Status == opt.StatusUnknown && !res.Aborted {
				t.Fatal("unknown status must be marked aborted")
			}
			if res.Elapsed < 0 {
				t.Fatal("negative elapsed time")
			}
		}
	}
	if problems := rep.CheckAgreement(); len(problems) > 0 {
		t.Fatalf("solver disagreement: %v", problems)
	}
}

func TestAbortCounting(t *testing.T) {
	// A microscopic timeout forces aborts everywhere possible.
	rep := Run([]gen.Instance{gen.Pigeonhole(6)}, Config{Timeout: time.Nanosecond})
	counts := rep.AbortCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("nanosecond timeout should abort at least one solver")
	}
	var buf bytes.Buffer
	rep.RenderAbortTable(&buf, "Table test")
	out := buf.String()
	if !strings.Contains(out, "Table test") || !strings.Contains(out, "maxsatz") {
		t.Fatalf("table rendering missing pieces:\n%s", out)
	}
}

func TestScatterData(t *testing.T) {
	rep := Run(smallSuite(), Config{Timeout: 10 * time.Second})
	pts := rep.Scatter("maxsatz", "msu4-v2")
	if len(pts) != len(rep.Instances) {
		t.Fatalf("scatter has %d points, want %d", len(pts), len(rep.Instances))
	}
	for _, p := range pts {
		if p.X < 0 || p.Y < 0 {
			t.Fatal("negative scatter coordinates")
		}
		if p.X > 10 || p.Y > 10 {
			t.Fatal("scatter coordinates exceed timeout clamp")
		}
	}
	if pts := rep.Scatter("nope", "msu4-v2"); pts != nil {
		t.Fatal("unknown solver should produce nil scatter")
	}
}

func TestScatterASCIIRenders(t *testing.T) {
	rep := Run(smallSuite(), Config{Timeout: 10 * time.Second})
	var buf bytes.Buffer
	rep.RenderScatterASCII(&buf, "msu4-v2", "maxsatz", 40, 16)
	out := buf.String()
	if !strings.Contains(out, "+") {
		t.Fatalf("no points plotted:\n%s", out)
	}
	if !strings.Contains(out, "points above diagonal") {
		t.Fatalf("summary line missing:\n%s", out)
	}
}

func TestCSVOutputs(t *testing.T) {
	rep := Run(smallSuite()[:2], Config{Timeout: 10 * time.Second})
	var buf bytes.Buffer
	rep.WriteCSV(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+2*len(rep.Solvers) {
		t.Fatalf("CSV has %d lines, want %d", len(lines), 1+2*len(rep.Solvers))
	}
	buf.Reset()
	rep.WriteScatterCSV(&buf, "pbo", "msu4-v1")
	if !strings.HasPrefix(buf.String(), "instance,pbo,msu4-v1") {
		t.Fatalf("scatter CSV header wrong: %q", buf.String())
	}
}

func TestSolverByName(t *testing.T) {
	for _, name := range []string{"maxsatz", "pbo", "pbo-bin", "msu1", "msu2", "msu3", "msu4-v1", "msu4-v2"} {
		spec, ok := SolverByName(name)
		if !ok {
			t.Fatalf("solver %q not found", name)
		}
		s := spec.Make(opt.Options{})
		if s.Name() == "" {
			t.Fatalf("solver %q has empty name", name)
		}
	}
	if _, ok := SolverByName("zchaff"); ok {
		t.Fatal("unknown solver should not resolve")
	}
}

func TestProgressOutput(t *testing.T) {
	var buf bytes.Buffer
	Run(smallSuite()[:1], Config{Timeout: 10 * time.Second, Progress: &buf})
	if !strings.Contains(buf.String(), "php-3") {
		t.Fatalf("progress output missing instance name:\n%s", buf.String())
	}
}

func TestFamilyBreakdown(t *testing.T) {
	rep := Run(smallSuite(), Config{Timeout: 10 * time.Second})
	aborts, totals := rep.FamilyAborts("msu4-v2")
	sum := 0
	for _, n := range totals {
		sum += n
	}
	if sum != len(rep.Instances) {
		t.Fatalf("family totals %d != instances %d", sum, len(rep.Instances))
	}
	for fam, n := range aborts {
		if n > totals[fam] {
			t.Fatalf("family %s: %d aborts > %d total", fam, n, totals[fam])
		}
	}
	var buf bytes.Buffer
	rep.RenderFamilyTable(&buf)
	if !strings.Contains(buf.String(), "pigeonhole") {
		t.Fatalf("family table missing rows:\n%s", buf.String())
	}
	if a, _ := rep.FamilyAborts("nope"); len(a) != 0 {
		t.Fatal("unknown solver should have empty breakdown")
	}
}

func TestVBSAndSolvedWithin(t *testing.T) {
	rep := Run(smallSuite(), Config{Timeout: 10 * time.Second})
	solved, total := rep.VBS()
	if solved != len(rep.Instances) {
		t.Fatalf("VBS solved %d, want all %d", solved, len(rep.Instances))
	}
	if total <= 0 {
		t.Fatal("VBS total time must be positive")
	}
	within := rep.SolvedWithin(10 * time.Second)
	if within["msu4-v2"] != len(rep.Instances) {
		t.Fatalf("msu4-v2 should finish all within timeout: %v", within)
	}
	if n := rep.SolvedWithin(0)["msu4-v2"]; n != 0 {
		t.Fatalf("zero limit should solve none, got %d", n)
	}
}
