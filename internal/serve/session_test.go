package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/opt"
)

// fakeEngine is a scripted opt.Incremental: it answers by brute force over
// the snapshot (so its answers are genuinely correct) and records lifecycle
// calls for assertions. All counters are mutex-guarded: the race suite runs
// sessions in parallel.
type fakeEngine struct {
	mu      sync.Mutex
	absorbs int
	solves  int
	closed  bool
	broken  bool // next Absorb reports the engine unusable
}

func (f *fakeEngine) Name() string { return "fake-inc" }

func (f *fakeEngine) Absorb(hards []cnf.Clause, softs []cnf.WClause) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.absorbs++
	return !f.broken
}

func (f *fakeEngine) SolveDelta(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) opt.Result {
	f.mu.Lock()
	f.solves++
	f.mu.Unlock()
	return bruteResult(w)
}

func (f *fakeEngine) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
}

func (f *fakeEngine) snapshot() (absorbs, solves int, closed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.absorbs, f.solves, f.closed
}

func bruteResult(w *cnf.WCNF) opt.Result {
	cost, model, feasible := brute.MinCostWCNF(w)
	if !feasible {
		return opt.Result{Status: opt.StatusUnsat, Cost: -1}
	}
	return opt.Result{Status: opt.StatusOptimal, Cost: cost, LowerBound: cost, Model: model}
}

// bruteSessionSolve answers with brute force; it reports the retained path
// as used whenever the serving layer offered the engine.
func bruteSessionSolve() SessionSolveFunc {
	return func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant, retained opt.Incremental) (opt.Result, bool) {
		if retained != nil {
			return retained.SolveDelta(ctx, w, shared), true
		}
		return bruteResult(w), false
	}
}

func mustOpen(t *testing.T, s *Server, spec SessionSpec) *Session {
	t.Helper()
	sess, err := s.OpenSession(context.Background(), spec)
	if err != nil {
		t.Fatalf("OpenSession: %v", err)
	}
	return sess
}

func sessionWait(t *testing.T, sess *Session) Result {
	t.Helper()
	h, err := sess.Solve(context.Background())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return waitResult(t, h)
}

func TestSessionLifecycle(t *testing.T) {
	defer checkGoroutines(t)()
	s := New(Config{Workers: 2})
	defer s.Close()
	eng := &fakeEngine{}
	sess := mustOpen(t, s, SessionSpec{
		Base: contradiction(), OptsKey: "o", Solve: bruteSessionSolve(), Retained: eng,
	})

	r := sessionWait(t, sess)
	if r.Status != opt.StatusOptimal || r.Cost != 1 {
		t.Fatalf("base solve: status %v cost %d, want OPTIMAL 1", r.Status, r.Cost)
	}
	if !r.Reused {
		t.Fatal("warm engine was offered but Result.Reused is false")
	}

	// A monotone delta: pin the variable, optimum stays 1, and the engine
	// absorbs before the next solve.
	if err := sess.Push(Delta{Hards: []cnf.Clause{{cnf.PosLit(0)}}}); err != nil {
		t.Fatalf("Push: %v", err)
	}
	r = sessionWait(t, sess)
	if r.Status != opt.StatusOptimal || r.Cost != 1 || !r.Reused {
		t.Fatalf("delta solve: status %v cost %d reused %t", r.Status, r.Cost, r.Reused)
	}
	if absorbs, solves, _ := eng.snapshot(); absorbs != 1 || solves != 2 {
		t.Fatalf("engine saw %d absorbs / %d solves, want 1 / 2", absorbs, solves)
	}

	st := s.Stats()
	if st.SessionsOpen != 1 || st.SessionsOpened != 1 || st.SessionSolves != 2 || st.SessionReused != 2 {
		t.Fatalf("stats: %+v", st)
	}

	sess.Close()
	sess.Close() // idempotent
	if _, _, closed := eng.snapshot(); !closed {
		t.Fatal("engine not closed at session close")
	}
	st = s.Stats()
	if st.SessionsOpen != 0 || st.WorkersBusy != 0 {
		t.Fatalf("after close: open=%d busy=%d", st.SessionsOpen, st.WorkersBusy)
	}
	if err := sess.Push(Delta{}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Push after Close: %v", err)
	}
	if _, err := sess.Solve(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Solve after Close: %v", err)
	}
}

// TestSessionCacheInterchangeable asserts the keying invariant: a session
// re-solve of an unchanged accumulation is a cache hit (counted in
// SessionHits), and a one-shot submission of the same accumulated formula
// hits the session's cached answer too.
func TestSessionCacheInterchangeable(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	sess := mustOpen(t, s, SessionSpec{
		Base: contradiction(), OptsKey: "o", Solve: bruteSessionSolve(),
	})
	if r := sessionWait(t, sess); r.Cached {
		t.Fatal("first solve cannot be a cache hit")
	}
	r := sessionWait(t, sess)
	if !r.Cached || r.Cost != 1 {
		t.Fatalf("unchanged re-solve: cached=%t cost=%d", r.Cached, r.Cost)
	}
	st := s.Stats()
	if st.SessionHits != 1 || st.CacheHits != 1 {
		t.Fatalf("session hit accounting: %+v", st)
	}

	// One-shot path, same accumulated formula: the session's verified
	// answer serves it without solving — and without SessionHits moving.
	h := mustSubmit(t, s, JobSpec{Formula: sess.Accumulated(), OptsKey: "o", Solve: optimal(1)})
	if r := waitResult(t, h); !r.Cached {
		t.Fatal("one-shot submission of the accumulated formula missed the cache")
	}
	st = s.Stats()
	if st.SessionHits != 1 || st.CacheHits != 2 {
		t.Fatalf("one-shot hit accounting: %+v", st)
	}
}

func TestSessionBusySerialization(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	release := make(chan struct{})
	sess := mustOpen(t, s, SessionSpec{
		Base: contradiction(), OptsKey: "o",
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant, retained opt.Incremental) (opt.Result, bool) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return bruteResult(w), false
		},
	})
	h, err := sess.Solve(context.Background())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := sess.Push(Delta{Hards: []cnf.Clause{{cnf.PosLit(0)}}}); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("Push mid-solve: %v, want ErrSessionBusy", err)
	}
	if _, err := sess.Solve(context.Background()); !errors.Is(err, ErrSessionBusy) {
		t.Fatalf("Solve mid-solve: %v, want ErrSessionBusy", err)
	}
	close(release)
	waitResult(t, h)
	// The busy flag clears asynchronously with job completion; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := sess.Push(Delta{}); err == nil {
			break
		} else if !errors.Is(err, ErrSessionBusy) {
			t.Fatalf("Push after solve: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("session never became pushable after its solve finished")
		}
		time.Sleep(time.Millisecond)
	}
	sess.Close()
}

func TestSessionLimitAndDisabled(t *testing.T) {
	s := New(Config{Workers: 4, MaxSessions: 1})
	defer s.Close()
	sess := mustOpen(t, s, SessionSpec{Base: contradiction(), Solve: bruteSessionSolve()})
	_, err := s.OpenSession(context.Background(), SessionSpec{Base: contradiction(), Solve: bruteSessionSolve()})
	if !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("second open: %v, want ErrSessionLimit", err)
	}
	if _, ok := RetryAfter(err); !ok {
		t.Fatal("session-limit shed carries no retry hint")
	}
	sess.Close()
	sess2 := mustOpen(t, s, SessionSpec{Base: contradiction(), Solve: bruteSessionSolve()})
	sess2.Close()

	off := New(Config{Workers: 1, MaxSessions: -1})
	defer off.Close()
	if _, err := off.OpenSession(context.Background(), SessionSpec{Solve: bruteSessionSolve()}); !errors.Is(err, ErrSessionsDisabled) {
		t.Fatalf("disabled open: %v, want ErrSessionsDisabled", err)
	}
}

// TestSessionQuotaHeld: a session holds one unit of its client's in-flight
// quota for its whole lifetime.
func TestSessionQuotaHeld(t *testing.T) {
	s := New(Config{Workers: 2, ClientQuota: 1})
	defer s.Close()
	sess := mustOpen(t, s, SessionSpec{Base: contradiction(), Client: "c", Solve: bruteSessionSolve()})
	_, err := s.Submit(JobSpec{Formula: contradiction(), Client: "c", OptsKey: "other", Solve: optimal(1)})
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("one-shot while session open: %v, want ErrOverQuota", err)
	}
	sess.Close()
	h := mustSubmit(t, s, JobSpec{Formula: contradiction(), Client: "c", OptsKey: "other", Solve: optimal(1)})
	waitResult(t, h)
}

func TestSessionIdleEviction(t *testing.T) {
	defer checkGoroutines(t)()
	s := New(Config{Workers: 1, MaxSessions: 1, SessionIdle: 20 * time.Millisecond})
	defer s.Close()
	eng := &fakeEngine{}
	sess := mustOpen(t, s, SessionSpec{Base: contradiction(), Solve: bruteSessionSolve(), Retained: eng})

	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().SessionsEvicted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session was never idle-evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := sess.Push(Delta{}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Push after eviction: %v", err)
	}
	if _, _, closed := eng.snapshot(); !closed {
		t.Fatal("evicted session's engine not closed")
	}
	// The pinned slot came back: a new session can open without blocking.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	sess2, err := s.OpenSession(ctx, SessionSpec{Base: contradiction(), Solve: bruteSessionSolve()})
	if err != nil {
		t.Fatalf("open after eviction: %v", err)
	}
	sess2.Close()
}

// TestSessionCloseMidSolve: Close while a delta solve is in flight defers
// teardown to solve completion — the handle stays valid, the slot comes
// back, nothing leaks.
func TestSessionCloseMidSolve(t *testing.T) {
	defer checkGoroutines(t)()
	s := New(Config{Workers: 1})
	defer s.Close()
	release := make(chan struct{})
	eng := &fakeEngine{}
	sess := mustOpen(t, s, SessionSpec{
		Base: contradiction(), OptsKey: "o", Retained: eng,
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant, retained opt.Incremental) (opt.Result, bool) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return bruteResult(w), retained != nil
		},
	})
	h, err := sess.Solve(context.Background())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	sess.Close()
	if s.Stats().SessionsOpen != 1 {
		t.Fatal("teardown ran while the solve was still in flight")
	}
	close(release)
	if r := waitResult(t, h); r.Status != opt.StatusOptimal || r.Cost != 1 {
		t.Fatalf("mid-close solve: %+v", r)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().SessionsOpen != 0 || s.Stats().WorkersBusy != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("teardown never completed: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, closed := eng.snapshot(); !closed {
		t.Fatal("engine not closed after deferred teardown")
	}
}

// TestSessionServerDrainMidSolve: Drain lets an in-flight session solve
// finish with a real result, then tears the session down.
func TestSessionServerDrainMidSolve(t *testing.T) {
	defer checkGoroutines(t)()
	s := New(Config{Workers: 1})
	release := make(chan struct{})
	eng := &fakeEngine{}
	sess := mustOpen(t, s, SessionSpec{
		Base: contradiction(), OptsKey: "o", Retained: eng,
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant, retained opt.Incremental) (opt.Result, bool) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return bruteResult(w), retained != nil
		},
	})
	h, err := sess.Solve(context.Background())
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	time.Sleep(10 * time.Millisecond) // let Drain stop admissions
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if r := waitResult(t, h); r.Status != opt.StatusOptimal || r.Cost != 1 {
		t.Fatalf("drained solve: %+v", r)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, _, closed := eng.snapshot()
		if closed && s.Stats().SessionsOpen == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session not torn down after drain")
		}
		time.Sleep(time.Millisecond)
	}
	if err := sess.Push(Delta{}); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Push after drain: %v", err)
	}
	s.Close()
}

// TestSessionEngineRouting: reweights retire the engine permanently;
// assumptions bypass it for one solve but keep it alive.
func TestSessionEngineRouting(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	var sawEngine []bool
	var mu sync.Mutex
	eng := &fakeEngine{}
	sess := mustOpen(t, s, SessionSpec{
		Base: contradiction(), OptsKey: "o", Retained: eng,
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant, retained opt.Incremental) (opt.Result, bool) {
			mu.Lock()
			sawEngine = append(sawEngine, retained != nil)
			mu.Unlock()
			return bruteResult(w), retained != nil
		},
	})
	// Solve 1: engine offered. Solve 2 (under assumptions): engine bypassed.
	// Solve 3 (assumptions cleared): engine offered again. Solve 4 (after a
	// reweight): engine retired, never offered again.
	sessionWait(t, sess)
	if err := sess.Push(Delta{Assumptions: []cnf.Lit{cnf.PosLit(0)}, SetAssumptions: true}); err != nil {
		t.Fatalf("assume: %v", err)
	}
	if r := sessionWait(t, sess); r.Cost != 1 {
		t.Fatalf("assumption solve cost %d, want 1", r.Cost)
	}
	// Clear the assumptions and grow the formula (an unchanged accumulation
	// would be a cache hit and never reach the solve closure).
	if err := sess.Push(Delta{SetAssumptions: true, Hards: []cnf.Clause{{cnf.PosLit(1), cnf.NegLit(1)}}}); err != nil {
		t.Fatalf("clear assumptions: %v", err)
	}
	sessionWait(t, sess)
	if err := sess.Push(Delta{Reweights: []Reweight{{Soft: 0, Weight: 5}}}); err != nil {
		t.Fatalf("reweight: %v", err)
	}
	if _, _, closed := eng.snapshot(); !closed {
		t.Fatal("reweight did not retire the engine")
	}
	if r := sessionWait(t, sess); r.Cost != 1 { // falsify the weight-1 soft
		t.Fatalf("reweighted solve cost %d, want 1", r.Cost)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []bool{true, false, true, false}
	if fmt.Sprint(sawEngine) != fmt.Sprint(want) {
		t.Fatalf("engine routing %v, want %v", sawEngine, want)
	}
	sess.Close()
}

// TestSessionBadDelta: validation failures leave the session unchanged.
func TestSessionBadDelta(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	sess := mustOpen(t, s, SessionSpec{Base: contradiction(), Solve: bruteSessionSolve()})
	defer sess.Close()
	if err := sess.Push(Delta{Reweights: []Reweight{{Soft: 7, Weight: 2}}}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("out-of-range reweight: %v", err)
	}
	if err := sess.Push(Delta{Softs: []cnf.WClause{{Clause: cnf.Clause{cnf.PosLit(0)}, Weight: 0}}}); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("zero-weight soft: %v", err)
	}
	if got := len(sess.Accumulated().Clauses); got != 2 {
		t.Fatalf("rejected deltas mutated the accumulation: %d clauses", got)
	}
}

// TestSessionsParallelInterleaved is the race-suite workhorse: several
// sessions push interleaved random monotone deltas and solve concurrently,
// each checked against brute force on its own accumulation at every step.
func TestSessionsParallelInterleaved(t *testing.T) {
	defer checkGoroutines(t)()
	const nSessions = 4
	s := New(Config{Workers: nSessions, MaxSessions: nSessions})
	defer s.Close()

	var wg sync.WaitGroup
	for i := 0; i < nSessions; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			base := cnf.NewWCNF(3)
			base.AddSoft(1, cnf.PosLit(0))
			base.AddSoft(1, cnf.NegLit(0))
			sess, err := s.OpenSession(context.Background(), SessionSpec{
				Base: base, OptsKey: fmt.Sprintf("s%d", seed),
				Solve: bruteSessionSolve(), Retained: &fakeEngine{},
			})
			if err != nil {
				t.Errorf("open: %v", err)
				return
			}
			defer sess.Close()
			acc := base.Clone()
			for step := 0; step < 6; step++ {
				if step > 0 {
					nv := acc.NumVars + 1
					c := cnf.Clause{cnf.NewLit(cnf.Var(rng.Intn(nv)), rng.Intn(2) == 0)}
					if rng.Intn(2) == 0 {
						if err := sess.Push(Delta{Hards: []cnf.Clause{c}}); err != nil {
							t.Errorf("push: %v", err)
							return
						}
						acc.AddHard(c...)
					} else {
						if err := sess.Push(Delta{Softs: []cnf.WClause{{Clause: c, Weight: 1}}}); err != nil {
							t.Errorf("push: %v", err)
							return
						}
						acc.AddSoft(1, c...)
					}
				}
				h, err := sess.Solve(context.Background())
				if err != nil {
					t.Errorf("solve: %v", err)
					return
				}
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				r, err := h.Wait(ctx)
				cancel()
				if err != nil {
					t.Errorf("wait: %v", err)
					return
				}
				want, _, feasible := brute.MinCostWCNF(acc)
				if !feasible {
					if r.Status != opt.StatusUnsat {
						t.Errorf("step %d: status %v, want UNSAT", step, r.Status)
					}
					return
				}
				if r.Status != opt.StatusOptimal || r.Cost != want {
					t.Errorf("step %d: status %v cost %d, want OPTIMAL %d", step, r.Status, r.Cost, want)
					return
				}
			}
		}(int64(i))
	}
	wg.Wait()
}
