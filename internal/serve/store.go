package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/proof"
	"repro/internal/store"
)

// ResultStore is the durable half of the verified-result cache: an
// append-only CRC-framed log (internal/store) of {formula, meta,
// certificate} records. Only certified results are persisted — the
// certificate is what lets the next process trust a record it did not
// produce: at startup every recovered entry is re-proved end to end by the
// independent checker (proof.CheckBytes against the recovered formula)
// before it may serve a hit, so a record that rots on disk, or that a
// buggy or malicious writer appended, is rejected rather than served.
//
// The record stores the full formula, not just its fingerprint: the checker
// needs the instance to re-prove the certificate, and the fingerprint is
// recomputed from the formula at load (never trusted from disk).
type ResultStore struct {
	log *store.Log
	// entries recovered at open, already deduplicated (last write wins per
	// formula fingerprint) but not yet validated — New consumes and
	// re-proves them.
	entries []storeEntry
	dropped int // CRC/torn-tail rejects at open
	faults  *Faults
}

type storeEntry struct {
	w    *cnf.WCNF
	meta string
	cert []byte
	raw  []byte // original payload, for compaction without re-encoding
}

const recResult byte = 1

// OpenResultStore opens (creating if absent) the durable result store at
// path. Frames the integrity layer rejects (bit rot, torn tails) are
// truncated away and counted; among the surviving records the newest one
// per formula wins, and the log is compacted when rewriting it would
// reclaim space. faults injects storage faults for chaos tests; production
// passes nil.
func OpenResultStore(path string, faults *Faults) (*ResultStore, error) {
	l, recs, dropped, err := store.Open(path, store.Options{WriteHook: faults.storeWriteHook()})
	if err != nil {
		return nil, err
	}
	rs := &ResultStore{log: l, dropped: dropped, faults: faults}
	byKey := make(map[formulaKey]int)
	for _, r := range recs {
		if r.Kind != recResult {
			rs.dropped++
			continue
		}
		e, err := decodeStoreEntry(r.Payload)
		if err != nil {
			rs.dropped++
			continue
		}
		if i, ok := byKey[keyFor(e.w)]; ok {
			rs.entries[i] = e // newer record for the same formula wins
			continue
		}
		byKey[keyFor(e.w)] = len(rs.entries)
		rs.entries = append(rs.entries, e)
	}
	if len(rs.entries) < len(recs) {
		rs.compact()
	}
	return rs, nil
}

// save appends one certified result. Called by the server on the finish
// path, synced before returning — once a client has seen a certified
// answer, a crash must not lose it.
func (rs *ResultStore) save(w *cnf.WCNF, res opt.Result, meta any) error {
	payload := encodeStoreEntry(w, metaString(meta), res.Certificate)
	if bit := rs.faults.corruptStoreBit(rs.log.Len()); bit >= 0 {
		payload[(bit/8)%len(payload)] ^= 1 << (bit % 8)
	}
	return rs.log.Append(recResult, payload, true)
}

// compact rewrites the log down to the currently live entries.
func (rs *ResultStore) compact() {
	recs := make([]store.Record, len(rs.entries))
	for i, e := range rs.entries {
		recs[i] = store.Record{Kind: recResult, Payload: e.raw}
	}
	rs.log.Compact(recs) // best-effort: a failed compact leaves the old log
}

// Close flushes and closes the underlying log.
func (rs *ResultStore) Close() error { return rs.log.Close() }

// loadStore populates the cache from the recovered store entries, admitting
// each only after the independent checker re-proves its certificate against
// its recovered formula. Runs once, from New.
func (s *Server) loadStore() {
	rs := s.cfg.Store
	if rs == nil {
		return
	}
	s.stats.RecoveredRejected += int64(rs.dropped)
	if rs.dropped > 0 {
		s.audit(AuditEvent{Action: "recover", Detail: fmt.Sprintf("store: %d records dropped by integrity layer", rs.dropped)})
	}
	var kept []storeEntry
	for _, e := range rs.entries {
		res, err := resultFromCertificate(e.w, e.cert)
		if err != nil {
			s.stats.RecoveredRejected++
			s.audit(AuditEvent{Action: "recover", Detail: "store: entry rejected: " + err.Error()})
			continue
		}
		var meta any
		if e.meta != "" {
			meta = e.meta
		}
		s.cache.add(keyFor(e.w), res, meta)
		s.stats.Recovered++
		kept = append(kept, e)
	}
	if len(kept) < len(rs.entries) {
		rs.entries = kept
		rs.compact() // rejected entries would only be re-rejected next boot
	}
	rs.entries = nil // the cache owns the data now
	s.stats.CacheSize = s.cache.len()
}

// resultFromCertificate rebuilds a servable result from a recovered record.
// Everything about the result is derived from the certificate after the
// checker accepts it — nothing else on disk is trusted.
func resultFromCertificate(w *cnf.WCNF, certBytes []byte) (opt.Result, error) {
	if err := proof.CheckBytes(w, certBytes); err != nil {
		return opt.Result{}, err
	}
	cert, err := proof.Decode(certBytes)
	if err != nil {
		return opt.Result{}, err
	}
	res := opt.Result{Cost: -1, Certificate: certBytes}
	switch cert.Kind {
	case proof.KindOptimal:
		res.Status = opt.StatusOptimal
		res.Cost = cert.Cost
		res.Model = cert.Model
		res.LowerBound = cert.Cost
	case proof.KindUnsat:
		res.Status = opt.StatusUnsat
	default:
		return opt.Result{}, fmt.Errorf("serve: recovered certificate has unknown kind %d", cert.Kind)
	}
	return res, nil
}

// metaString reduces a JobSpec.Meta to its durable form: the maxsat layer
// stores the algorithm name (a string); anything else is caller-local and
// not persisted.
func metaString(meta any) string {
	if s, ok := meta.(string); ok {
		return s
	}
	return ""
}

// encodeStoreEntry frames {meta, formula, certificate} as length-prefixed
// sections.
func encodeStoreEntry(w *cnf.WCNF, meta string, cert []byte) []byte {
	var fb bytes.Buffer
	cnf.WriteWCNF(&fb, w)
	buf := binary.AppendUvarint(nil, uint64(len(meta)))
	buf = append(buf, meta...)
	buf = binary.AppendUvarint(buf, uint64(fb.Len()))
	buf = append(buf, fb.Bytes()...)
	buf = binary.AppendUvarint(buf, uint64(len(cert)))
	return append(buf, cert...)
}

func decodeStoreEntry(payload []byte) (storeEntry, error) {
	raw := payload
	next := func() ([]byte, error) {
		n, k := binary.Uvarint(payload)
		if k <= 0 || n > uint64(len(payload)-k) {
			return nil, fmt.Errorf("serve: store record truncated")
		}
		b := payload[k : k+int(n)]
		payload = payload[k+int(n):]
		return b, nil
	}
	meta, err := next()
	if err != nil {
		return storeEntry{}, err
	}
	fb, err := next()
	if err != nil {
		return storeEntry{}, err
	}
	cert, err := next()
	if err != nil {
		return storeEntry{}, err
	}
	w, err := cnf.ParseWCNF(bytes.NewReader(fb))
	if err != nil {
		return storeEntry{}, fmt.Errorf("serve: store record formula: %w", err)
	}
	return storeEntry{w: w, meta: string(meta), cert: append([]byte(nil), cert...), raw: raw}, nil
}
