package serve

import (
	"context"

	"repro/internal/opt"
	"repro/internal/proof"
)

// Recover re-enqueues the journal's incomplete jobs after a restart. For
// each pending submission the rebuild callback turns the durable payload
// back into a runnable JobSpec (the serving layer cannot persist SolveFunc
// closures, so the maxsat layer owns that translation); jobs whose payload
// no longer rebuilds — an options format from a newer binary, say — are
// marked done and audited rather than wedging recovery.
//
// Replay is idempotent by construction: a job whose certified answer was
// already durable completes instantly from the re-validated cache, and
// duplicate pending entries for the same formula coalesce onto one run with
// every original job ID preserved — so clients polling GET /jobs/{id} from
// before the crash find their job either finished or running, never gone.
//
// Recover returns once every pending job is re-enqueued (not once they
// finish): readiness means the server can account for its past promises,
// not that it has already kept them all.
func (s *Server) Recover(rebuild func(RecoveredJob) (JobSpec, error)) error {
	if s.cfg.Journal == nil {
		return nil
	}
	for _, rj := range s.cfg.Journal.Pending() {
		spec, err := rebuild(rj)
		if err != nil {
			s.cfg.Journal.markDone(rj.ID)
			s.audit(AuditEvent{Client: rj.Client, Action: "recover", JobID: rj.ID,
				Detail: "replay dropped: " + err.Error()})
			continue
		}
		if spec.Formula == nil {
			spec.Formula = rj.Formula
		}
		if _, err := s.Resubmit(rj.ID, spec); err != nil {
			return err
		}
	}
	return nil
}

// Resubmit is Submit for journal replay: the job keeps its pre-crash ID,
// and the per-client admission bounds (rate limit, quota, queue depth) do
// not apply — those guard new work, and this work was already admitted by
// the previous life. A pending entry whose answer is in the (re-validated)
// cache completes instantly; one whose formula is already in flight
// coalesces, registering the recovered ID as an alias of the running job.
// The returned handle carries no cancellation vote.
func (s *Server) Resubmit(id uint64, spec JobSpec) (*Handle, error) {
	if spec.Formula == nil || spec.Solve == nil {
		return nil, ErrBadSpec
	}
	fkey := keyFor(spec.Formula)
	key := jobKey{formulaKey: fkey, opts: spec.OptsKey}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.nextID < id {
		s.nextID = id
	}
	if j, ok := s.jobs[id]; ok {
		// The ID is already registered (a double replay): hand back the
		// existing job.
		s.mu.Unlock()
		return noVoteHandle(s, j), nil
	}

	// The recovered result store may already hold this job's answer; the
	// cache entries it seeded were re-proved at load, and the hit path
	// re-validates against this exact formula just as Submit does.
	if res, meta, ok := s.cache.get(fkey); ok {
		s.mu.Unlock()
		modelOK := res.Model == nil || opt.VerifyModel(spec.Formula, res)
		certOK := true
		if modelOK && len(res.Certificate) > 0 {
			certOK = proof.CheckBytes(spec.Formula, res.Certificate) == nil
		}
		s.mu.Lock()
		if modelOK && certOK {
			s.stats.CacheHits++
			h := s.doneJobIDLocked(id, key, Result{Result: res, Meta: meta, Cached: true})
			s.mu.Unlock()
			if s.cfg.Journal != nil {
				s.cfg.Journal.markDone(id)
			}
			s.audit(AuditEvent{Client: spec.Client, Action: "recover", JobID: id,
				Detail: "completed from recovered store"})
			return spendVote(h), nil
		}
		if !certOK {
			s.cache.remove(fkey)
			s.stats.CertRejected++
		}
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
	}

	if j, ok := s.inflight[key]; ok {
		j.aliases = append(j.aliases, id)
		s.jobs[id] = j
		s.stats.Coalesced++
		s.stats.Replayed++
		s.mu.Unlock()
		s.audit(AuditEvent{Client: spec.Client, Action: "recover", JobID: id,
			Detail: "coalesced onto running replay"})
		return noVoteHandle(s, j), nil
	}

	slots := spec.Slots
	if slots < 1 {
		slots = 1
	}
	if slots > s.cfg.Workers {
		slots = s.cfg.Workers
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &job{
		id:      id,
		key:     key,
		spec:    spec,
		slots:   slots,
		client:  spec.Client,
		bounds:  opt.NewBounds(),
		cancel:  cancel,
		journal: s.cfg.Journal != nil,
		refs:    1,
		done:    make(chan struct{}),
	}
	j.bounds.SetObserver(j.emit)
	s.inflight[key] = j
	s.jobs[j.id] = j
	s.queued++
	s.stats.Replayed++
	s.wg.Add(1)
	s.mu.Unlock()
	s.audit(AuditEvent{Client: spec.Client, Action: "recover", JobID: id, Detail: "replayed"})

	j.w = spec.Formula.Clone()
	go s.run(ctx, j)
	return noVoteHandle(s, j), nil
}

func noVoteHandle(s *Server, j *job) *Handle {
	return spendVote(&Handle{s: s, j: j})
}

func spendVote(h *Handle) *Handle {
	h.once.Do(func() {})
	return h
}
