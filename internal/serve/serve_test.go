package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/opt"
)

// contradiction returns the canonical cost-1 instance: two conflicting unit
// softs over one variable. Any model has cost exactly 1.
func contradiction() *cnf.WCNF {
	w := cnf.NewWCNF(1)
	w.AddSoft(1, cnf.PosLit(0))
	w.AddSoft(1, cnf.NegLit(0))
	return w
}

// optimal returns a stub SolveFunc that immediately reports the given cost
// with a verifying model for contradiction().
func optimal(cost cnf.Weight) SolveFunc {
	return func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
		return opt.Result{Status: opt.StatusOptimal, Cost: cost, LowerBound: cost,
			Model: cnf.Assignment{true}}
	}
}

// blocker returns a stub that blocks until release is closed (or ctx ends),
// then reports Unknown.
func blocker(release <-chan struct{}) SolveFunc {
	return func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return opt.Result{Status: opt.StatusUnknown, Cost: -1}
	}
}

func mustSubmit(t *testing.T, s *Server, spec JobSpec) *Handle {
	t.Helper()
	h, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return h
}

func waitResult(t *testing.T, h *Handle) Result {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	r, err := h.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return r
}

func TestFingerprintCanonical(t *testing.T) {
	a := cnf.NewWCNF(3)
	a.AddHard(cnf.PosLit(0), cnf.PosLit(1))
	a.AddSoft(2, cnf.NegLit(2))
	a.AddSoft(1, cnf.PosLit(2), cnf.NegLit(0))

	// Same formula, clauses and literals permuted.
	b := cnf.NewWCNF(3)
	b.AddSoft(1, cnf.NegLit(0), cnf.PosLit(2))
	b.AddHard(cnf.PosLit(1), cnf.PosLit(0))
	b.AddSoft(2, cnf.NegLit(2))

	if Fingerprint(a) != Fingerprint(b) {
		t.Error("fingerprint not invariant under clause/literal reordering")
	}

	// Weight change must be visible.
	c := a.Clone()
	c.Clauses[1].Weight = 3
	if Fingerprint(a) == Fingerprint(c) {
		t.Error("fingerprint blind to weights")
	}

	// A duplicated clause must be visible (addition, not XOR, combine).
	d := a.Clone()
	d.Clauses = append(d.Clauses, d.Clauses[0])
	if Fingerprint(a) == Fingerprint(d) {
		t.Error("fingerprint blind to duplicate clauses")
	}

	// Declared variable count matters (DIMACS allows trailing unused vars).
	e := a.Clone()
	e.NumVars++
	if Fingerprint(a) == Fingerprint(e) {
		t.Error("fingerprint blind to NumVars")
	}

	// Regression: literal hashes must not cancel pairwise. Under an XOR
	// combine, (1 1) and (2 2) hash identically (each literal cancels
	// itself), making the UNSAT formula {(1 1), (-1 -1)} collide with the
	// SAT formula {(2 2), (-1 -1)} — and an UNSAT verdict has no model to
	// re-verify on a hit, so the collision would serve a wrong answer.
	unsat := cnf.NewWCNF(3)
	unsat.AddHard(cnf.PosLit(0), cnf.PosLit(0))
	unsat.AddHard(cnf.NegLit(0), cnf.NegLit(0))
	sat := cnf.NewWCNF(3)
	sat.AddHard(cnf.PosLit(1), cnf.PosLit(1))
	sat.AddHard(cnf.NegLit(0), cnf.NegLit(0))
	if keyFor(unsat) == keyFor(sat) {
		t.Error("duplicate literals cancel: different formulas share a cache key")
	}
	dup := cnf.NewWCNF(1)
	dup.AddSoft(1, cnf.PosLit(0), cnf.PosLit(0))
	single := cnf.NewWCNF(1)
	single.AddSoft(1, cnf.PosLit(0))
	if Fingerprint(dup) == Fingerprint(single) {
		t.Error("fingerprint blind to a duplicated literal")
	}
}

func TestCacheHitServesVerifiedResult(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()

	var calls atomic.Int32
	spec := JobSpec{
		Formula: contradiction(),
		OptsKey: "k",
		Meta:    "algo-x",
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			calls.Add(1)
			return optimal(1)(ctx, w, shared, g)
		},
	}
	r1 := waitResult(t, mustSubmit(t, s, spec))
	if r1.Cached || r1.Cost != 1 || r1.Status != opt.StatusOptimal {
		t.Fatalf("first solve: %+v", r1)
	}
	// Resubmission under *different* options still hits: the verdict is a
	// fact about the formula, not the algorithm.
	spec2 := spec
	spec2.OptsKey = "other"
	r2 := waitResult(t, mustSubmit(t, s, spec2))
	if !r2.Cached || r2.Cost != 1 {
		t.Fatalf("second solve not served from cache: %+v", r2)
	}
	if r2.Meta != "algo-x" {
		t.Fatalf("cached meta = %v, want the proving submission's", r2.Meta)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("solver ran %d times, want 1", got)
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.Submitted != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheWitnessImmuneToCallerMutation(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	spec := JobSpec{Formula: contradiction(), Solve: optimal(1)}
	r := waitResult(t, mustSubmit(t, s, spec))
	// A caller scribbling on its returned model must not corrupt the cached
	// witness (which would fail verification on every future hit).
	r.Model[0] = !r.Model[0]
	r2 := waitResult(t, mustSubmit(t, s, spec))
	if !r2.Cached {
		t.Fatal("resubmission missed the cache: witness was corrupted")
	}
	if !opt.VerifyModel(contradiction(), r2.Result) {
		t.Fatalf("cached result no longer verifies: %+v", r2.Result)
	}
}

func TestUnknownResultsAreNotCached(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	var calls atomic.Int32
	spec := JobSpec{
		Formula: contradiction(),
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			calls.Add(1)
			return opt.Result{Status: opt.StatusUnknown, Cost: -1}
		},
	}
	waitResult(t, mustSubmit(t, s, spec))
	waitResult(t, mustSubmit(t, s, spec))
	if got := calls.Load(); got != 2 {
		t.Fatalf("solver ran %d times, want 2 (UNKNOWN must not cache)", got)
	}
}

func TestUnverifiableOptimalIsNotCached(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	var calls atomic.Int32
	spec := JobSpec{
		Formula: contradiction(),
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			calls.Add(1)
			// Claims cost 0, but every model of the contradiction pays 1:
			// verification must reject it at cache-store time.
			return opt.Result{Status: opt.StatusOptimal, Cost: 0,
				Model: cnf.Assignment{true}}
		},
	}
	waitResult(t, mustSubmit(t, s, spec))
	waitResult(t, mustSubmit(t, s, spec))
	if got := calls.Load(); got != 2 {
		t.Fatalf("solver ran %d times, want 2 (bogus optimum must not cache)", got)
	}
}

func TestCoalesceIdenticalInflight(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	var calls atomic.Int32
	spec := JobSpec{
		Formula: contradiction(),
		OptsKey: "same",
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			calls.Add(1)
			close(started)
			<-release
			return opt.Result{Status: opt.StatusOptimal, Cost: 1, LowerBound: 1,
				Model: cnf.Assignment{true}}
		},
	}
	h1 := mustSubmit(t, s, spec)
	<-started
	h2 := mustSubmit(t, s, spec) // identical → attaches to h1's job
	if h1.ID() != h2.ID() {
		t.Fatalf("coalesced submission got its own job: %d vs %d", h1.ID(), h2.ID())
	}
	if st := s.Stats(); st.Coalesced != 1 {
		t.Fatalf("Coalesced = %d, want 1", st.Coalesced)
	}
	close(release)
	r1, r2 := waitResult(t, h1), waitResult(t, h2)
	if r1.Cost != 1 || r2.Cost != 1 {
		t.Fatalf("coalesced results differ: %v vs %v", r1.Cost, r2.Cost)
	}
	if calls.Load() != 1 {
		t.Fatalf("solver ran %d times, want 1", calls.Load())
	}
}

func TestDifferentOptionsDoNotCoalesce(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	release := make(chan struct{})
	spec := JobSpec{Formula: contradiction(), OptsKey: "a", Solve: blocker(release)}
	h1 := mustSubmit(t, s, spec)
	spec.OptsKey = "b"
	h2 := mustSubmit(t, s, spec)
	if h1.ID() == h2.ID() {
		t.Fatal("different options coalesced onto one job")
	}
	close(release)
	waitResult(t, h1)
	waitResult(t, h2)
}

func TestCancelIsRefCounted(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	started := make(chan struct{})
	spec := JobSpec{
		Formula: contradiction(),
		OptsKey: "k",
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			close(started)
			<-ctx.Done() // only cancellation ends this job
			return opt.Result{Status: opt.StatusUnknown, Cost: -1}
		},
	}
	h1 := mustSubmit(t, s, spec)
	<-started
	h2 := mustSubmit(t, s, spec)
	if h1.ID() != h2.ID() {
		t.Fatal("expected coalesced handles")
	}
	h1.Cancel()
	h1.Cancel() // idempotent per handle
	select {
	case <-h2.Done():
		t.Fatal("job cancelled while a handle still holds a vote")
	case <-time.After(50 * time.Millisecond):
	}
	h2.Cancel()
	select {
	case <-h2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("job not cancelled after the last vote")
	}
	if st := s.Stats(); st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", st.Cancelled)
	}
}

func TestTimeoutBoundsTheSolve(t *testing.T) {
	s := New(Config{Workers: 1, DefaultTimeout: 20 * time.Millisecond})
	defer s.Close()
	h := mustSubmit(t, s, JobSpec{Formula: contradiction(), Solve: blocker(nil)})
	r := waitResult(t, h)
	if r.Status != opt.StatusUnknown {
		t.Fatalf("status %v, want Unknown after deadline", r.Status)
	}
	// Deadline expiry is a completion, not a cancellation.
	if st := s.Stats(); st.Completed != 1 || st.Cancelled != 0 {
		t.Fatalf("stats after timeout: %+v", st)
	}
}

func TestWorkerBudgetClampsAndQueues(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	release := make(chan struct{})
	granted := make(chan int, 1)
	// A portfolio-style job asking for 5 slots on a 2-slot pool gets 2.
	h := mustSubmit(t, s, JobSpec{
		Formula: contradiction(),
		OptsKey: "wide",
		Slots:   5,
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			granted <- g.Slots
			<-release
			return opt.Result{Status: opt.StatusUnknown, Cost: -1}
		},
	})
	if got := <-granted; got != 2 {
		t.Fatalf("granted %d slots, want 2 (clamped)", got)
	}
	// The pool is now full: a 1-slot job must queue, not run.
	h2 := mustSubmit(t, s, JobSpec{Formula: contradiction(), OptsKey: "narrow",
		Slots: 1, Solve: blocker(release)})
	deadline := time.Now().Add(2 * time.Second)
	for {
		st := s.Stats()
		if st.Queued == 1 && st.Running == 1 && st.WorkersBusy == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool accounting never settled: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	waitResult(t, h)
	waitResult(t, h2)
}

func TestQueueDepthRejects(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	release := make(chan struct{})
	h := mustSubmit(t, s, JobSpec{Formula: contradiction(), OptsKey: "a",
		Solve: blocker(release)})
	_, err := s.Submit(JobSpec{Formula: contradiction(), OptsKey: "b",
		Solve: blocker(release)})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	close(release)
	waitResult(t, h)
}

func TestSubscribeStreamsMonotoneBounds(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	h := mustSubmit(t, s, JobSpec{
		Formula: contradiction(),
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			// An anytime solver's publish pattern: UB falls, LB rises.
			shared.PublishUB(5, cnf.Assignment{true})
			shared.PublishLB(0)
			shared.PublishUB(3, cnf.Assignment{true})
			shared.PublishLB(1)
			shared.PublishUB(1, cnf.Assignment{true})
			return opt.Result{Status: opt.StatusOptimal, Cost: 1, LowerBound: 1,
				Model: cnf.Assignment{true}}
		},
	})
	var events []Event
	for e := range h.Subscribe() {
		events = append(events, e)
	}
	if len(events) == 0 {
		t.Fatal("no bound events before completion")
	}
	for i := 1; i < len(events); i++ {
		prev, cur := events[i-1], events[i]
		if prev.HasLB && cur.HasLB && cur.LB < prev.LB {
			t.Fatalf("LB fell: %v after %v", cur, prev)
		}
		if prev.HasUB && cur.HasUB && cur.UB > prev.UB {
			t.Fatalf("UB rose: %v after %v", cur, prev)
		}
	}
	// An Optimal job's stream always closes with lb == ub == optimum.
	last := events[len(events)-1]
	if !last.HasLB || !last.HasUB || last.LB != 1 || last.UB != 1 {
		t.Fatalf("closing event %+v, want lb=ub=1", last)
	}
	// A late subscriber (job already done) still gets the final snapshot.
	var replay []Event
	for e := range h.Subscribe() {
		replay = append(replay, e)
	}
	if len(replay) != 1 || replay[0] != last {
		t.Fatalf("late subscribe replay = %+v, want [%+v]", replay, last)
	}
}

func TestJobLookupAndRetention(t *testing.T) {
	s := New(Config{Workers: 1, RetainDone: 2})
	defer s.Close()
	var ids []uint64
	for range 3 {
		f := contradiction()
		h := mustSubmit(t, s, JobSpec{Formula: f, Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			return opt.Result{Status: opt.StatusUnknown, Cost: -1} // never cached → 3 distinct runs
		}})
		waitResult(t, h)
		ids = append(ids, h.ID())
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Error("oldest job survived past the retention bound")
	}
	h, ok := s.Job(ids[2])
	if !ok {
		t.Fatal("latest job not addressable by ID")
	}
	if st, _ := h.State(); st != Done {
		t.Fatalf("state %v, want Done", st)
	}
	// Lookup handles hold no cancellation vote: Cancel must be a no-op even
	// on a fresh (running) job.
	release := make(chan struct{})
	run := mustSubmit(t, s, JobSpec{Formula: contradiction(), OptsKey: "x",
		Solve: blocker(release)})
	look, ok := s.Job(run.ID())
	if !ok {
		t.Fatal("running job not addressable")
	}
	look.Cancel()
	select {
	case <-run.Done():
		t.Fatal("lookup handle cancelled the job")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	waitResult(t, run)
}

func TestSolverPanicFailsJobOnly(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	h := mustSubmit(t, s, JobSpec{
		Formula: contradiction(),
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			panic("boom")
		},
	})
	r := waitResult(t, h)
	if r.Err == nil || r.Status != opt.StatusUnknown {
		t.Fatalf("panic result: %+v", r)
	}
	// The pool slot was released: the server still solves.
	r2 := waitResult(t, mustSubmit(t, s, JobSpec{Formula: contradiction(),
		OptsKey: "fresh", Solve: optimal(1)}))
	if r2.Cost != 1 {
		t.Fatalf("server unusable after a panic: %+v", r2)
	}
}

func TestCloseCancelsEverything(t *testing.T) {
	s := New(Config{Workers: 1})
	running := mustSubmit(t, s, JobSpec{Formula: contradiction(), OptsKey: "r",
		Solve: blocker(nil)})
	queued := mustSubmit(t, s, JobSpec{Formula: contradiction(), OptsKey: "q",
		Solve: blocker(nil)})
	s.Close()
	for _, h := range []*Handle{running, queued} {
		select {
		case <-h.Done():
		default:
			t.Fatal("job still open after Close")
		}
	}
	if _, err := s.Submit(JobSpec{Formula: contradiction(), Solve: optimal(1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

func TestSubmitValidates(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	if _, err := s.Submit(JobSpec{Formula: contradiction()}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("missing Solve: %v", err)
	}
	if _, err := s.Submit(JobSpec{Solve: optimal(1)}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("missing Formula: %v", err)
	}
}

func TestSemaFIFOPreventsStarvation(t *testing.T) {
	sem := newSema(2)
	ctx := context.Background()
	if err := sem.acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	wideGranted := make(chan struct{})
	go func() {
		_ = sem.acquire(ctx, 2) // head of queue: needs both slots
		close(wideGranted)
	}()
	for sem.busy() != 1 || func() bool { sem.mu.Lock(); defer sem.mu.Unlock(); return len(sem.waiters) == 0 }() {
		time.Sleep(time.Millisecond)
	}
	// A narrow acquire behind the wide one must wait even though a slot is
	// free — FIFO keeps the wide job from starving.
	narrowGranted := make(chan struct{})
	go func() {
		_ = sem.acquire(ctx, 1)
		close(narrowGranted)
	}()
	select {
	case <-narrowGranted:
		t.Fatal("narrow acquire jumped the FIFO queue")
	case <-time.After(30 * time.Millisecond):
	}
	sem.release(1) // wide gets both slots
	<-wideGranted
	select {
	case <-narrowGranted:
		t.Fatal("narrow granted while pool is full")
	case <-time.After(30 * time.Millisecond):
	}
	sem.release(2)
	<-narrowGranted
	sem.release(1)
	if got := sem.busy(); got != 0 {
		t.Fatalf("slots leaked: busy = %d", got)
	}
}

func TestSemaCancelledHeadUnblocksQueue(t *testing.T) {
	// A wide waiter at the head of the FIFO blocks narrower ones behind it.
	// When the wide waiter is cancelled, the narrow waiters must be granted
	// immediately — not only at the next release.
	sem := newSema(4)
	ctx := context.Background()
	if err := sem.acquire(ctx, 1); err != nil { // free = 3
		t.Fatal(err)
	}
	wideCtx, cancelWide := context.WithCancel(context.Background())
	wideErr := make(chan error, 1)
	go func() { wideErr <- sem.acquire(wideCtx, 4) }() // queues: needs all 4
	waitForWaiters := func(n int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			sem.mu.Lock()
			got := len(sem.waiters)
			sem.mu.Unlock()
			if got == n {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("waiters = %d, want %d", got, n)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitForWaiters(1)
	narrow := make(chan struct{})
	go func() {
		_ = sem.acquire(ctx, 1)
		_ = sem.acquire(ctx, 1)
		_ = sem.acquire(ctx, 1)
		close(narrow)
	}()
	waitForWaiters(2) // the first narrow acquire queues behind the wide one
	cancelWide()
	if err := <-wideErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("wide err = %v", err)
	}
	select {
	case <-narrow: // all three narrow acquires fit the 3 free slots
	case <-time.After(2 * time.Second):
		t.Fatal("narrow waiters stayed blocked after the head was cancelled")
	}
	if got := sem.busy(); got != 4 {
		t.Fatalf("busy = %d, want 4", got)
	}
}

func TestSemaAcquireCancel(t *testing.T) {
	sem := newSema(1)
	if err := sem.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() { errc <- sem.acquire(ctx, 1) }()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	sem.release(1)
	// The cancelled waiter must not have consumed the slot.
	if err := sem.acquire(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
	sem.release(1)
}
