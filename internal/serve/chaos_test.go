package serve

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/pbo"
	"repro/internal/proof"
)

// checkGoroutines returns a cleanup func asserting the goroutine count
// settles back to (about) its starting level — the no-leak invariant. The
// retry loop tolerates runtime bookkeeping goroutines and workers that are
// still unwinding when the test body returns.
func checkGoroutines(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<16)
				n := runtime.Stack(buf, true)
				t.Fatalf("goroutines leaked: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
}

// TestChaosDeterministicSchedule runs a mixed fault schedule — panics, slow
// workers, budget exhaustion, mid-job cancellation — over a batch of jobs and
// asserts the operator invariants: every job completes (no deadlock), failed
// jobs are isolated and counted, and no goroutine outlives the server.
func TestChaosDeterministicSchedule(t *testing.T) {
	defer checkGoroutines(t)()
	const jobs = 16
	faults := &Faults{Before: func(jobID uint64, optsKey string, attempt int) Fault {
		if jobID > jobs {
			return Fault{} // the post-chaos liveness probe runs clean
		}
		switch jobID % 4 {
		case 1:
			return Fault{Kind: FaultPanic}
		case 2:
			return Fault{Kind: FaultSlow, Delay: 5 * time.Millisecond}
		case 3:
			return Fault{Kind: FaultExhaust}
		default:
			return Fault{Kind: FaultCancel, Delay: time.Millisecond}
		}
	}}
	s := New(Config{Workers: 3, CacheEntries: -1, Faults: faults})
	defer s.Close()

	var handles []*Handle
	for i := range jobs {
		handles = append(handles, mustSubmit(t, s, JobSpec{
			Formula: contradiction(),
			OptsKey: fmt.Sprintf("job-%d", i),
			Solve:   optimal(1),
		}))
	}
	var panics, optimals, unknowns int
	for _, h := range handles {
		r := waitResult(t, h) // waitResult's own deadline is the deadlock guard
		switch {
		case r.Err != nil:
			panics++
		case r.Status == opt.StatusOptimal:
			optimals++
		default:
			unknowns++
		}
	}
	// Job IDs are assigned 1..jobs in submission order, so the schedule is
	// exact: 4 panics (ids 1,5,9,13), 4 exhausts (ids 3,7,11,15) → Unknown.
	if panics != 4 {
		t.Fatalf("panicked jobs = %d, want 4", panics)
	}
	if unknowns != 4 {
		t.Fatalf("unknown jobs = %d, want 4", unknowns)
	}
	// Slow and cancelled jobs still ran the real solve (FaultCancel fires
	// after the solve already returned its immediate optimum).
	if optimals != 8 {
		t.Fatalf("optimal jobs = %d, want 8", optimals)
	}
	st := s.Stats()
	if st.Panics != 4 {
		t.Fatalf("Stats.Panics = %d, want 4", st.Panics)
	}
	if st.Queued != 0 || st.Running != 0 || st.WorkersBusy != 0 {
		t.Fatalf("pool did not settle: %+v", st)
	}
	// The server survived the chaos: a fresh job still solves.
	r := waitResult(t, mustSubmit(t, s, JobSpec{Formula: contradiction(),
		OptsKey: "after-chaos", Solve: optimal(1)}))
	if r.Err != nil || r.Status != opt.StatusOptimal {
		t.Fatalf("server unusable after chaos: %+v", r)
	}
}

// TestFaultExhaustNeverCached asserts a budget-exhausted (Unknown) result is
// not served from the verified-result cache: the resubmission must run the
// real solver.
func TestFaultExhaustNeverCached(t *testing.T) {
	faults := &Faults{Before: func(jobID uint64, optsKey string, attempt int) Fault {
		if jobID == 1 {
			return Fault{Kind: FaultExhaust}
		}
		return Fault{}
	}}
	s := New(Config{Workers: 1, Faults: faults})
	defer s.Close()
	spec := JobSpec{Formula: contradiction(), Solve: optimal(1)}
	r1 := waitResult(t, mustSubmit(t, s, spec))
	if r1.Status != opt.StatusUnknown {
		t.Fatalf("exhausted job status %v, want Unknown", r1.Status)
	}
	r2 := waitResult(t, mustSubmit(t, s, spec))
	if r2.Cached {
		t.Fatal("an exhausted (unverified) result was served from cache")
	}
	if r2.Status != opt.StatusOptimal || r2.Cost != 1 {
		t.Fatalf("resubmission result %+v, want the real optimum", r2)
	}
}

// TestFaultPanicNeverCached asserts a panic-failed job poisons nothing: the
// resubmission runs fresh and the failure is visible in Stats.Panics.
func TestFaultPanicNeverCached(t *testing.T) {
	faults := &Faults{Before: func(jobID uint64, optsKey string, attempt int) Fault {
		if jobID == 1 {
			return Fault{Kind: FaultPanic}
		}
		return Fault{}
	}}
	s := New(Config{Workers: 1, Faults: faults})
	defer s.Close()
	spec := JobSpec{Formula: contradiction(), Solve: optimal(1)}
	r1 := waitResult(t, mustSubmit(t, s, spec))
	if r1.Err == nil {
		t.Fatal("injected panic produced no error")
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Fatalf("Stats.Panics = %d, want 1", st.Panics)
	}
	r2 := waitResult(t, mustSubmit(t, s, spec))
	if r2.Cached || r2.Err != nil || r2.Cost != 1 {
		t.Fatalf("resubmission after panic: %+v", r2)
	}
}

// certifying returns a SolveFunc that really solves and attaches a real
// certificate, mirroring what the public server wires in when a submission
// asks for certification.
func certifying() SolveFunc {
	return func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
		s := &pbo.Linear{}
		r := s.Solve(ctx, w, shared)
		if cert, err := opt.Certify(ctx, w, r, opt.Options{}); err == nil {
			r.Certificate = cert
		}
		return r
	}
}

// TestFaultCorruptCertNeverServed injects certificate corruption into the
// cache store and asserts the trust boundary holds end to end: the original
// submitter still receives the uncorrupted certificate, a cache hit on the
// corrupted entry is detected (rejected, counted, evicted) and falls back to
// a fresh solve, and the fresh result re-populates the cache so later hits
// serve a certificate that validates.
func TestFaultCorruptCertNeverServed(t *testing.T) {
	faults := &Faults{CorruptCert: func(jobID uint64) int {
		if jobID == 1 {
			return 0 // bit 0 lands in the format magic: guaranteed rejection
		}
		return -1
	}}
	s := New(Config{Workers: 1, Faults: faults})
	defer s.Close()

	formula := contradiction()
	spec := JobSpec{Formula: formula, Solve: certifying()}

	// The original waiter gets the good certificate; only the cached copy
	// is corrupted.
	r1 := waitResult(t, mustSubmit(t, s, spec))
	if r1.Status != opt.StatusOptimal || r1.Cost != 1 {
		t.Fatalf("first solve: %+v", r1)
	}
	if err := proof.CheckBytes(formula, r1.Certificate); err != nil {
		t.Fatalf("submitter received a corrupt certificate: %v", err)
	}

	// The resubmission must not be served the corrupted entry: the hit path
	// re-validates, rejects, evicts, and solves fresh.
	r2 := waitResult(t, mustSubmit(t, s, spec))
	if r2.Cached {
		t.Fatal("a corrupted certificate was served from cache")
	}
	if r2.Status != opt.StatusOptimal || r2.Cost != 1 {
		t.Fatalf("fallback solve: %+v", r2)
	}
	if err := proof.CheckBytes(formula, r2.Certificate); err != nil {
		t.Fatalf("fallback certificate rejected: %v", err)
	}
	if st := s.Stats(); st.CertRejected != 1 {
		t.Fatalf("Stats.CertRejected = %d, want 1", st.CertRejected)
	}

	// The fresh (faithful) result re-populated the cache: the third
	// submission is a hit and its certificate validates.
	r3 := waitResult(t, mustSubmit(t, s, spec))
	if !r3.Cached {
		t.Fatal("fresh result was not re-cached after eviction")
	}
	if err := proof.CheckBytes(formula, r3.Certificate); err != nil {
		t.Fatalf("re-cached certificate rejected: %v", err)
	}
	if st := s.Stats(); st.CertRejected != 1 {
		t.Fatalf("Stats.CertRejected moved to %d on a clean hit", st.CertRejected)
	}
}

// TestFaultCancelMidJob injects a cancellation that lands while the solve is
// blocked: the job must complete as cancelled, not hang.
func TestFaultCancelMidJob(t *testing.T) {
	defer checkGoroutines(t)()
	faults := &Faults{Before: func(jobID uint64, optsKey string, attempt int) Fault {
		return Fault{Kind: FaultCancel, Delay: 5 * time.Millisecond}
	}}
	s := New(Config{Workers: 1, Faults: faults})
	defer s.Close()
	h := mustSubmit(t, s, JobSpec{Formula: contradiction(), Solve: blocker(nil)})
	r := waitResult(t, h)
	if r.Status != opt.StatusUnknown {
		t.Fatalf("cancelled job result %+v", r)
	}
	if st := s.Stats(); st.Cancelled != 1 {
		t.Fatalf("Stats.Cancelled = %d, want 1", st.Cancelled)
	}
}

// TestFaultSlowUnblocksOnClose wedges a worker on an (effectively infinite)
// injected stall and closes the server: Close must cancel the stall and
// return — the no-deadlock invariant under the worst worker behaviour.
func TestFaultSlowUnblocksOnClose(t *testing.T) {
	defer checkGoroutines(t)()
	faults := &Faults{Before: func(jobID uint64, optsKey string, attempt int) Fault {
		return Fault{Kind: FaultSlow, Delay: time.Hour}
	}}
	s := New(Config{Workers: 1, Faults: faults})
	h := mustSubmit(t, s, JobSpec{Formula: contradiction(), Solve: optimal(1)})
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on a stalled worker")
	}
	if _, done := h.Result(); !done {
		t.Fatal("stalled job has no terminal result after Close")
	}
}
