// Package serve is the solving-as-a-service layer: it admits MaxSAT jobs,
// schedules them on a bounded worker pool, deduplicates identical in-flight
// submissions, caches verified results keyed by a canonical formula
// fingerprint, and streams anytime bound improvements to subscribers.
//
// The layer sits above the optimizer contract of internal/opt and below the
// public maxsat.Server / cmd/maxsatd surfaces. It is deliberately ignorant
// of algorithms: a submission carries the formula plus a SolveFunc closure
// built by the caller, so the layer composes with every optimizer — and
// every future optimizer — without knowing their names.
//
// Scheduling: the pool's budget is counted in worker slots. A sequential job
// occupies one slot; a portfolio job declares how many members it will race
// (JobSpec.Slots) and occupies that many, clamped to the pool's capacity —
// the granted slot count is handed back to the SolveFunc so the portfolio
// races exactly that many members. Slots are acquired FIFO after a job is
// admitted and released when its solve returns, so N jobs × M members can
// never oversubscribe the machine.
//
// Caching: a verified OPTIMAL verdict (model re-checked against the
// submitted formula) or an UNSATISFIABLE verdict is a fact about the formula
// alone, independent of which algorithm proved it or what resource budget it
// ran under. The cache therefore keys on the canonical formula fingerprint
// only, so a resubmission under different options still hits. UNKNOWN
// results — budget-dependent — are never cached.
//
// Coalescing: an identical submission (same formula and same canonical
// options) arriving while the first is still queued or running attaches to
// the running job instead of spawning a duplicate; every attached handle
// gets the same result and its own cancellation vote. The job is abandoned
// only when every handle has cancelled.
//
// Hardening: admission is additionally bounded per client — a token-bucket
// rate limit and an in-flight quota (see admission.go) shed a misbehaving
// client with a retry hint before it can starve the queue, and every
// decision is reported to an audit hook. Under overload (queue pressure past
// Config.HighWater), multi-slot portfolio jobs are granted fewer slots —
// down to a solo member — instead of queueing full line-ups behind each
// other; the grant reductions are visible in Stats.Degraded. Drain stops
// admissions and lets running jobs finish before a deadline, and a
// fault-injection hook set (faults.go) drives the chaos suite that holds the
// layer to its no-deadlock / no-leak / no-unverified-result invariants.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/proof"
	"repro/internal/sat"
)

// Grant is what the pool hands a SolveFunc for one attempt: the worker
// slots the job was granted (≥ 1; a portfolio should race exactly that many
// members) and which attempt this is (0 for the first run; retries of
// transiently failed jobs count up from 1 and should run a degraded profile
// — see Config.MaxRetries).
type Grant struct {
	Slots   int
	Attempt int
}

// SolveFunc runs one optimization. The serving layer calls it with the
// formula snapshot taken at Submit time, a fresh bounds channel it observes
// for anytime streaming (always non-nil), and the attempt's Grant.
type SolveFunc func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result

// JobSpec describes one submission.
type JobSpec struct {
	// Formula is the instance to solve. The server snapshots (clones) it at
	// Submit time, so the caller may reuse or mutate its copy afterwards.
	Formula *cnf.WCNF
	// OptsKey is the canonical identity of the solve options, used to
	// coalesce identical in-flight submissions. Submissions with equal
	// formulas but different OptsKeys run separately.
	OptsKey string
	// Slots is the worker-slot demand (portfolio parallelism); values < 1
	// are treated as 1 and values above the pool capacity are clamped to it.
	Slots int
	// Timeout bounds the solve, measured from the moment the job starts
	// running (queue time does not count); 0 falls back to
	// Config.DefaultTimeout, and a negative value means unbounded even when
	// a default is configured.
	Timeout time.Duration
	// Meta is opaque caller data carried into Result.Meta (the maxsat layer
	// stores the resolved algorithm name there).
	Meta any
	// Client is the submitting client's identity for admission accounting
	// and audit logging (the HTTP daemon uses the bearer token's name, or
	// the peer address when authentication is off). All anonymous
	// submissions (empty Client) share one account.
	Client string
	// Payload is an opaque, durable re-description of this submission (the
	// maxsat layer stores the resolved solve options as JSON). A SolveFunc
	// closure cannot be persisted, so the job journal records the payload
	// instead and the Recover callback rebuilds the closure from it after a
	// restart. Jobs with an empty Payload are not journaled — they cannot
	// survive a restart, which is the right default for embedded callers
	// that re-drive their own work.
	Payload []byte
	// Solve runs the optimization.
	Solve SolveFunc
}

// Config configures a Server. The zero value is usable: one slot per CPU-ish
// default is not assumed — Workers ≤ 0 falls back to 1 — so callers should
// set Workers explicitly.
type Config struct {
	// Workers is the global worker-slot budget; ≤ 0 means 1.
	Workers int
	// QueueDepth caps the number of jobs queued or running at once; further
	// submissions fail with ErrQueueFull. ≤ 0 means unbounded.
	QueueDepth int
	// CacheEntries bounds the verified-result LRU cache; 0 means 256,
	// negative disables caching.
	CacheEntries int
	// DefaultTimeout applies to jobs that do not set their own; 0 means
	// unbounded.
	DefaultTimeout time.Duration
	// RetainDone bounds how many completed jobs stay addressable by ID
	// (for poll-style clients); 0 means 1024, negative retains none beyond
	// their live handles.
	RetainDone int

	// RatePerSec is the per-client sustained submission rate (token
	// bucket); 0 disables rate limiting.
	RatePerSec float64
	// Burst is the token-bucket capacity; 0 means max(1, 2·RatePerSec).
	Burst int
	// ClientQuota caps one client's queued-or-running jobs (cache hits and
	// coalesced attaches, which occupy no workers, are exempt); 0 disables.
	ClientQuota int
	// HighWater enables graceful degradation under overload: once
	// queued+running reaches HighWater·QueueDepth, multi-slot (portfolio)
	// grants shrink linearly with the remaining queue headroom, down to a
	// single slot as the queue approaches full — new jobs race fewer
	// members instead of queueing whole line-ups behind each other.
	// 0 disables; requires QueueDepth > 0 to have any effect.
	HighWater float64
	// Audit, when non-nil, receives one event per admission decision,
	// cancellation vote, and completion. Called outside all server locks;
	// the hook must not block for long (it runs on submit and worker paths).
	Audit func(AuditEvent)
	// Faults is the fault-injection hook set for chaos testing; nil (always,
	// in production) runs every job normally.
	Faults *Faults

	// Store, when non-nil, persists certified verified results across
	// restarts: New rebuilds the cache from it, re-validating every
	// recovered entry through the independent proof checker before it can
	// serve a hit (rejections are counted in Stats.RecoveredRejected and
	// audit-logged), and finish appends each newly certified verdict.
	// Uncertified results stay memory-only — the certificate is what makes
	// a recovered answer trustworthy.
	Store *ResultStore
	// Journal, when non-nil, records submissions durably before Submit
	// returns and marks them done on completion; Recover re-enqueues the
	// incomplete ones after a restart so clients polling by job ID across
	// the restart see their job finish instead of 404.
	Journal *Journal
	// StallTimeout arms the stuck-solver watchdog: a running job whose
	// progress heartbeat (fed by the CDCL conflict counter via
	// sat.WithProgress) does not move for this long is cancelled, counted
	// in Stats.Stalled, and treated as transiently failed (retried when
	// MaxRetries allows). 0 disables the watchdog.
	StallTimeout time.Duration
	// MaxRetries is how many times a transiently failed attempt — solver
	// panic, watchdog kill, or an uncancelled Unknown (budget exhaustion)
	// — is retried server-side before the failure is surfaced to the
	// client. Retries run degraded: the job is shrunk to one worker slot
	// and the SolveFunc sees Grant.Attempt > 0. 0 disables retries.
	MaxRetries int
	// RetryBackoff is the first retry's delay, doubled per further attempt;
	// 0 means 100ms. The wait is cut short by job cancellation.
	RetryBackoff time.Duration

	// MaxSessions caps concurrently open sessions (each pins one worker
	// slot for its lifetime — see OpenSession); 0 means Workers, negative
	// disables sessions entirely.
	MaxSessions int
	// SessionIdle is the idle-eviction horizon: a session with no Push or
	// Solve activity for this long is evicted, releasing its pinned worker
	// slot and retained solver. 0 means 5 minutes; negative disables
	// eviction (sessions then live until Close).
	SessionIdle time.Duration
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	Workers     int   `json:"workers"`
	WorkersBusy int   `json:"workers_busy"`
	Queued      int   `json:"queued"`
	Running     int   `json:"running"`
	Submitted   int64 `json:"submitted"`
	Completed   int64 `json:"completed"`
	Cancelled   int64 `json:"cancelled"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Coalesced   int64 `json:"coalesced"`
	CacheSize   int   `json:"cache_size"`
	// CertRejected counts cache hits discarded because the stored
	// certificate failed re-validation (bit rot, or an injected corruption
	// fault); each one evicts the entry and falls back to a fresh solve.
	CertRejected int64 `json:"cert_rejected"`
	// Panics counts jobs that failed outright because their solver
	// panicked (Result.Err non-nil) — the crash-rate signal operators
	// alert on.
	Panics int64 `json:"panics"`
	// Degraded counts jobs granted fewer worker slots than they asked for
	// because queue pressure was past the high-water mark.
	Degraded int64 `json:"degraded"`
	// Recovered / RecoveredRejected count durable-store entries accepted
	// into (re-proved by the independent checker) and rejected from the
	// cache at startup.
	Recovered         int64 `json:"recovered"`
	RecoveredRejected int64 `json:"recovered_rejected"`
	// Replayed counts journaled incomplete jobs re-enqueued by Recover.
	Replayed int64 `json:"replayed"`
	// Stalled counts attempts killed by the stuck-solver watchdog.
	Stalled int64 `json:"stalled"`
	// Retries counts transient-failure retries started; RetrySucceeded
	// counts jobs whose final verdict came from such a retry.
	Retries        int64 `json:"retries"`
	RetrySucceeded int64 `json:"retry_succeeded"`
	// RateLimited / QuotaDenied count submissions shed by the per-client
	// admission bounds.
	RateLimited int64 `json:"rate_limited"`
	QuotaDenied int64 `json:"quota_denied"`
	// SessionsOpen is the number of currently open sessions (each pinning
	// one worker slot); SessionsOpened / SessionsEvicted are lifetime
	// totals (eviction counts only idle-eviction, not client Close).
	SessionsOpen    int   `json:"sessions_open"`
	SessionsOpened  int64 `json:"sessions_opened"`
	SessionsEvicted int64 `json:"sessions_evicted"`
	// SessionSolves counts delta solves submitted through sessions;
	// SessionReused counts those answered by a retained (warm) solver
	// rather than a from-scratch run.
	SessionSolves int64 `json:"session_solves"`
	SessionReused int64 `json:"session_reused"`
	// SessionHits counts verified-result cache hits served to session
	// solves — hits whose key was a session-accumulated fingerprint rather
	// than a one-shot submission. Every SessionHit is also a CacheHit.
	SessionHits int64 `json:"session_hits"`
	// Draining reports that the server has stopped admissions and is
	// waiting for the remaining jobs (set by Drain, and by Close).
	Draining bool `json:"draining"`
}

// State is a job's lifecycle phase.
type State int8

// Job states.
const (
	// Queued: admitted, waiting for worker slots.
	Queued State = iota
	// Running: occupying worker slots, solve in progress.
	Running
	// Done: result available (solved, cancelled, or served from cache).
	Done
)

// String names the state.
func (s State) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	default:
		return "done"
	}
}

// Result is a completed job's outcome.
type Result struct {
	opt.Result
	// Meta echoes JobSpec.Meta — for a cache hit, the Meta of the submission
	// that originally proved the result.
	Meta any
	// Cached reports that the result was served from the verified-result
	// cache instead of a fresh solve.
	Cached bool
	// Reused reports that a session's retained (warm) solver produced the
	// result — a delta re-solve — rather than a from-scratch run. Always
	// false for one-shot submissions.
	Reused bool
	// Err is non-nil when the job failed outright (solver panic); Status is
	// then StatusUnknown.
	Err error
}

// Event is a bound-improvement notification (see opt.BoundsEvent).
type Event = opt.BoundsEvent

// Errors returned by Submit.
var (
	ErrClosed    = errors.New("serve: server is closed")
	ErrQueueFull = errors.New("serve: job queue is full")
	ErrBadSpec   = errors.New("serve: job spec needs a formula and a solve function")
)

// Server is the solving service. Create one with New, submit with Submit,
// shut down with Close.
type Server struct {
	cfg     Config
	sem     *sema
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	now   func() time.Time                           // injectable clock for the admission tests
	sleep func(ctx context.Context, d time.Duration) // injectable backoff wait for the retry tests

	mu        sync.Mutex
	closed    bool
	inflight  map[jobKey]*job
	jobs      map[uint64]*job
	doneOrder []uint64
	cache     *lru
	clients   map[string]*clientState
	sessions  map[uint64]*Session
	nextID    uint64
	queued    int
	running   int
	stats     Stats
}

// New returns a running server.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 256
	}
	if cfg.RetainDone == 0 {
		cfg.RetainDone = 1024
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:      cfg,
		sem:      newSema(cfg.Workers),
		baseCtx:  ctx,
		stop:     cancel,
		now:      time.Now,
		inflight: make(map[jobKey]*job),
		jobs:     make(map[uint64]*job),
		cache:    newLRU(cfg.CacheEntries),
		clients:  make(map[string]*clientState),
		sessions: make(map[uint64]*Session),
	}
	s.sleep = func(ctx context.Context, d time.Duration) {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
	if cfg.Journal != nil {
		// Job IDs must stay unique across restarts: clients hold IDs from
		// the previous life, and Recover re-registers pending jobs under
		// their original IDs.
		s.nextID = cfg.Journal.MaxID()
	}
	s.loadStore()
	return s
}

// job is the shared state behind every handle of one (possibly coalesced)
// submission.
type job struct {
	id      uint64
	key     jobKey
	w       *cnf.WCNF
	spec    JobSpec
	slots   int
	client  string
	charged bool // holds one unit of the client's in-flight quota
	bounds  *opt.Bounds
	cancel  context.CancelFunc

	// beat is the liveness heartbeat the stuck-solver watchdog observes:
	// the solver ticks it per conflict (sat.WithProgress) and every bound
	// improvement ticks it too — a job is stuck only when neither moves.
	beat atomic.Int64
	// aliases are additional job IDs addressing this job: journal replay
	// preserves the IDs clients already hold, so coalesced replays of the
	// same formula register every original ID against the one real job.
	aliases []uint64
	journal bool // the job has a journal entry to mark done
	// leased marks a session solve: the job runs on its session's pinned
	// worker slot, so run neither acquires nor releases pool slots.
	leased bool
	// reused records whether the winning attempt came from the session's
	// retained solver (set by the session solve wrapper, read by run when it
	// assembles the Result).
	reused atomic.Bool

	mu   sync.Mutex
	st   State
	best Event
	subs []chan Event
	res  Result
	refs int
	done chan struct{}
}

// Handle is one caller's view of a job. Handles from coalesced submissions
// share the underlying job but cancel independently.
type Handle struct {
	s    *Server
	j    *job
	once sync.Once
}

// Submit admits one job. It returns immediately: with a Done handle on a
// cache hit, with a handle attached to an existing identical in-flight job
// (coalesced), or with a handle on a freshly queued job. A submission shed
// by the global queue bound or the per-client admission bounds fails with a
// *ShedError carrying a retry hint (see admission.go).
func (s *Server) Submit(spec JobSpec) (*Handle, error) {
	if spec.Formula == nil || spec.Solve == nil {
		return nil, ErrBadSpec
	}
	fkey := keyFor(spec.Formula)
	key := jobKey{formulaKey: fkey, opts: spec.OptsKey}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.stats.Submitted++

	// Rate limit before anything else — even a cache hit costs a token, so
	// a client hammering the server with resubmissions of a solved formula
	// is still throttled.
	if s.cfg.RatePerSec > 0 {
		if wait, ok := s.takeTokenLocked(spec.Client); !ok {
			s.stats.RateLimited++
			s.mu.Unlock()
			s.audit(AuditEvent{Client: spec.Client, Action: "shed", Detail: "rate-limited"})
			return nil, &ShedError{Reason: ErrRateLimited, RetryAfter: wait}
		}
	}

	// Cache next: a verified verdict answers any submission of the formula.
	if res, meta, ok := s.cache.get(fkey); ok {
		// Defeat fingerprint collisions and storage corruption: a cached
		// model must verify against the formula actually submitted, and a
		// cached certificate must re-validate end to end with the
		// independent proof checker — the stored bytes, not the solve that
		// produced them, are what the hit serves. Both checks run outside
		// the server lock (the entry is already a private copy; lru.get
		// copies the model and certificate).
		s.mu.Unlock()
		modelOK := res.Model == nil || opt.VerifyModel(spec.Formula, res)
		certOK := true
		if modelOK && len(res.Certificate) > 0 {
			certOK = proof.CheckBytes(spec.Formula, res.Certificate) == nil
		}
		if modelOK && certOK {
			s.mu.Lock()
			s.stats.CacheHits++
			h := s.doneJobLocked(key, Result{Result: res, Meta: meta, Cached: true})
			s.mu.Unlock()
			s.audit(AuditEvent{Client: spec.Client, Action: "submit", JobID: h.j.id, Detail: "cache-hit"})
			return h, nil
		}
		if !certOK {
			s.audit(AuditEvent{Client: spec.Client, Action: "cache", Detail: "certificate-rejected"})
		}
		s.mu.Lock()
		if !certOK {
			// A corrupt certificate is a property of the stored entry, not
			// of a colliding submission: evict it so it is never served or
			// re-consulted, and fall through to a fresh solve.
			s.cache.remove(fkey)
			s.stats.CertRejected++
		}
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
	}
	s.stats.CacheMisses++

	// Coalesce onto an identical in-flight job.
	if j, ok := s.inflight[key]; ok {
		j.mu.Lock()
		j.refs++
		j.mu.Unlock()
		s.stats.Coalesced++
		s.mu.Unlock()
		s.audit(AuditEvent{Client: spec.Client, Action: "submit", JobID: j.id, Detail: "coalesced"})
		return &Handle{s: s, j: j}, nil
	}

	// Only submissions that will occupy workers count against the
	// per-client in-flight quota (cache hits and coalesces above occupy
	// none).
	if s.cfg.ClientQuota > 0 {
		if c, ok := s.clients[spec.Client]; ok && c.inflight >= s.cfg.ClientQuota {
			s.stats.QuotaDenied++
			retry := s.shedRetryAfter()
			s.mu.Unlock()
			s.audit(AuditEvent{Client: spec.Client, Action: "shed", Detail: "over-quota"})
			return nil, &ShedError{Reason: ErrOverQuota, RetryAfter: retry}
		}
	}

	if s.cfg.QueueDepth > 0 && s.queued+s.running >= s.cfg.QueueDepth {
		retry := s.shedRetryAfter()
		s.mu.Unlock()
		s.audit(AuditEvent{Client: spec.Client, Action: "shed", Detail: "queue-full"})
		return nil, &ShedError{Reason: ErrQueueFull, RetryAfter: retry}
	}

	slots := spec.Slots
	if slots < 1 {
		slots = 1
	}
	if slots > s.cfg.Workers {
		slots = s.cfg.Workers
	}
	slots, degraded := s.degradeLocked(slots)
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.nextID++
	j := &job{
		id:      s.nextID,
		key:     key,
		spec:    spec,
		slots:   slots,
		client:  spec.Client,
		charged: true,
		bounds:  opt.NewBounds(),
		cancel:  cancel,
		refs:    1,
		done:    make(chan struct{}),
	}
	s.clientLocked(spec.Client).inflight++
	j.bounds.SetObserver(j.emit)
	s.inflight[key] = j
	s.jobs[j.id] = j
	s.queued++
	s.wg.Add(1)
	s.mu.Unlock()

	detail := fmt.Sprintf("run slots=%d", slots)
	if degraded {
		detail += " degraded"
	}
	s.audit(AuditEvent{Client: spec.Client, Action: "submit", JobID: j.id, Detail: detail})

	// The formula snapshot is O(formula), so it is taken outside the server
	// lock. Safe unpublished: only the run goroutine (started below, so the
	// write happens-before its reads) ever touches j.w — coalesced handles
	// and pollers never do.
	j.w = spec.Formula.Clone()

	// Journal the submission (fsynced) before the job can produce any
	// observable progress: once the caller has the job ID in hand, a crash
	// must not forget the job. A journal write failure is audited but does
	// not fail the submission — availability over durability for the job
	// record itself (results have their own, stricter path).
	if s.cfg.Journal != nil && len(spec.Payload) > 0 {
		if err := s.cfg.Journal.record(j.id, j.w, spec); err != nil {
			s.audit(AuditEvent{Client: spec.Client, Action: "journal", JobID: j.id,
				Detail: "append failed: " + err.Error()})
		} else {
			j.journal = true
		}
	}
	go s.run(ctx, j)
	return &Handle{s: s, j: j}, nil
}

// degradeLocked is the overload-degradation ladder: past the high-water mark
// a multi-slot grant shrinks linearly with the remaining queue headroom, so
// a portfolio submitted to a nearly-full server races a truncated line-up —
// down to its strongest member alone — instead of queueing the full width
// behind every job already waiting. Caller holds s.mu.
func (s *Server) degradeLocked(slots int) (int, bool) {
	if slots <= 1 || s.cfg.HighWater <= 0 || s.cfg.QueueDepth <= 0 {
		return slots, false
	}
	hw := int(math.Ceil(s.cfg.HighWater * float64(s.cfg.QueueDepth)))
	load := s.queued + s.running
	if load < hw || s.cfg.QueueDepth <= hw {
		return slots, false
	}
	pressure := float64(load-hw+1) / float64(s.cfg.QueueDepth-hw)
	if pressure > 1 {
		pressure = 1
	}
	granted := int(math.Round(float64(slots) * (1 - pressure)))
	if granted < 1 {
		granted = 1
	}
	if granted >= slots {
		return slots, false
	}
	s.stats.Degraded++
	return granted, true
}

// doneJobLocked registers an already-completed job (cache hit) so that
// poll-style clients can still address it by ID. Caller holds s.mu.
func (s *Server) doneJobLocked(key jobKey, res Result) *Handle {
	s.nextID++
	return s.doneJobIDLocked(s.nextID, key, res)
}

// doneJobIDLocked is doneJobLocked with a caller-chosen ID (journal replay
// preserves the IDs clients already hold). Caller holds s.mu.
func (s *Server) doneJobIDLocked(id uint64, key jobKey, res Result) *Handle {
	j := &job{
		id:   id,
		key:  key,
		st:   Done,
		res:  res,
		done: make(chan struct{}),
	}
	if res.Status == opt.StatusOptimal {
		j.best = Event{LB: res.Cost, UB: res.Cost, HasLB: true, HasUB: true}
	}
	close(j.done)
	s.jobs[j.id] = j
	s.retainLocked(j.id)
	return &Handle{s: s, j: j}
}

// run executes one job: acquire slots, solve under the per-job deadline —
// retrying transient failures with backoff and a degraded grant — verify,
// cache, publish.
func (s *Server) run(ctx context.Context, j *job) {
	defer s.wg.Done()
	// Release the job's cancel context on every exit path: without this,
	// each completed job would stay registered as a child of baseCtx for
	// the server's lifetime (cancel funcs are idempotent, so a handle's
	// Cancel racing this is fine).
	defer j.cancel()
	// A leased (session) job runs on its session's pinned worker slot —
	// acquired when the session opened, released when it closes — so it
	// neither waits for nor returns pool slots here.
	if j.leased {
		if ctx.Err() != nil {
			s.finish(j, Result{Result: opt.Result{Status: opt.StatusUnknown, Cost: -1}}, true)
			return
		}
	} else if err := s.sem.acquire(ctx, j.slots); err != nil {
		s.finish(j, Result{Result: opt.Result{Status: opt.StatusUnknown, Cost: -1}}, true)
		return
	}
	s.mu.Lock()
	s.queued--
	s.running++
	s.mu.Unlock()
	j.mu.Lock()
	j.st = Running
	j.mu.Unlock()

	timeout := j.spec.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	runCtx := ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	slots := j.slots
	var res opt.Result
	var err error
	for attempt := 0; ; attempt++ {
		res, err = s.attempt(runCtx, j, Grant{Slots: slots, Attempt: attempt})
		// Transient means the attempt failed for a reason a rerun could fix
		// — panic, watchdog kill, budget exhaustion — while the job itself
		// is still wanted (runCtx alive: not cancelled, not timed out).
		transient := runCtx.Err() == nil &&
			(err != nil || res.Status == opt.StatusUnknown)
		if !transient || attempt >= s.cfg.MaxRetries {
			if attempt > 0 && err == nil &&
				(res.Status == opt.StatusOptimal || res.Status == opt.StatusUnsat) {
				s.mu.Lock()
				s.stats.RetrySucceeded++
				s.mu.Unlock()
			}
			break
		}
		// Degrade before retrying: whatever sank the first attempt —
		// memory pressure, a portfolio member's bug, sharing-induced state
		// — gets a smaller target. The extra slots go back to the pool now;
		// the SolveFunc sees Attempt > 0 and shrinks its own profile
		// (solo line-up, reduced memory budget).
		if slots > 1 {
			s.sem.release(slots - 1)
			slots = 1
		}
		s.mu.Lock()
		s.stats.Retries++
		s.mu.Unlock()
		reason := "unknown-result"
		if err != nil {
			reason = err.Error()
		}
		s.audit(AuditEvent{Client: j.client, Action: "retry", JobID: j.id,
			Detail: fmt.Sprintf("attempt %d after %s", attempt+1, reason)})
		s.sleep(runCtx, s.cfg.RetryBackoff<<attempt)
	}
	if !j.leased {
		s.sem.release(slots)
	}
	s.mu.Lock()
	s.running--
	if j.leased && j.reused.Load() {
		s.stats.SessionReused++
	}
	s.mu.Unlock()
	s.finish(j, Result{Result: res, Meta: j.spec.Meta, Err: err, Reused: j.reused.Load()},
		ctx.Err() != nil)
}

// attempt runs one solve attempt under the stuck-solver watchdog. The
// attempt's context carries the job's progress heartbeat; if the heartbeat
// freezes past Config.StallTimeout the attempt is cancelled and reported as
// a stall error (transient, so the retry ladder picks it up).
func (s *Server) attempt(runCtx context.Context, j *job, g Grant) (opt.Result, error) {
	attemptCtx, cancel := context.WithCancel(runCtx)
	defer cancel()
	attemptCtx = sat.WithProgress(attemptCtx, &j.beat)

	var stalled atomic.Bool
	if s.cfg.StallTimeout > 0 {
		watchdogDone := make(chan struct{})
		go s.watchdog(attemptCtx, j, cancel, &stalled, watchdogDone)
		defer func() { cancel(); <-watchdogDone }()
	}

	res, err := s.solve(attemptCtx, j, g)
	if stalled.Load() && runCtx.Err() == nil {
		s.mu.Lock()
		s.stats.Stalled++
		s.mu.Unlock()
		s.audit(AuditEvent{Client: j.client, Action: "stall", JobID: j.id,
			Detail: fmt.Sprintf("no progress for %s", s.cfg.StallTimeout)})
		if err == nil {
			err = fmt.Errorf("serve: solver stalled: no progress for %s", s.cfg.StallTimeout)
		}
	}
	return res, err
}

// watchdog cancels the attempt when the job's heartbeat stops moving for
// Config.StallTimeout. It polls rather than waking per tick: the heartbeat
// is written on the solver's hot path and must stay a bare atomic add.
func (s *Server) watchdog(ctx context.Context, j *job, cancel context.CancelFunc,
	stalled *atomic.Bool, done chan<- struct{}) {
	defer close(done)
	poll := s.cfg.StallTimeout / 4
	if poll < time.Millisecond {
		poll = time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	last := j.beat.Load()
	lastMove := s.now()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if cur := j.beat.Load(); cur != last {
				last = cur
				lastMove = s.now()
				continue
			}
			if s.now().Sub(lastMove) >= s.cfg.StallTimeout {
				stalled.Store(true)
				cancel()
				return
			}
		}
	}
}

// solve invokes the job's SolveFunc, converting a solver panic into a failed
// result so one poisoned job cannot take the whole service down. The
// fault-injection hook runs inside the same recover scope, so an injected
// panic exercises exactly the containment a real solver panic would.
func (s *Server) solve(ctx context.Context, j *job, g Grant) (res opt.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res = opt.Result{Status: opt.StatusUnknown, Cost: -1}
			err = fmt.Errorf("serve: solver panic: %v", p)
		}
	}()
	if r, handled := s.cfg.Faults.inject(ctx, j, g.Attempt); handled {
		return r, nil
	}
	return j.spec.Solve(ctx, j.w, j.bounds, g), nil
}

// finish completes a job: caches a verified verdict, emits the closing bound
// event, publishes the result, and wakes every waiter and subscriber.
func (s *Server) finish(j *job, res Result, cancelled bool) {
	// The O(formula) model verification runs before the server lock is
	// taken; only verified verdicts are cacheable.
	cacheable := res.Err == nil &&
		(res.Status == opt.StatusUnsat ||
			(res.Status == opt.StatusOptimal && opt.VerifyModel(j.w, res.Result)))

	s.mu.Lock()
	if s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	if j.state() == Queued {
		s.queued--
	}
	if j.charged {
		j.charged = false
		s.releaseClientLocked(j.client)
	}
	detail := res.Status.String()
	wasCancelled := cancelled && res.Err == nil && res.Status == opt.StatusUnknown
	if wasCancelled {
		s.stats.Cancelled++
		detail = "cancelled"
	} else {
		s.stats.Completed++
	}
	// A job cancelled by shutdown (not by its client) is unfinished business:
	// leave its journal entry pending so the next life replays it instead of
	// forgetting an admitted submission.
	markDone := j.journal && !(wasCancelled && s.closed)
	if res.Err != nil {
		s.stats.Panics++
		detail = "failed: " + res.Err.Error()
	}
	if cacheable {
		stored := res.Result
		// The certificate-corruption fault flips a bit in the copy headed
		// for the cache — never in the result served to this job's own
		// waiters — simulating storage rot between a store and a later hit.
		if bit := s.cfg.Faults.corruptCertBit(j.id); bit >= 0 && len(stored.Certificate) > 0 {
			c := append([]byte(nil), stored.Certificate...)
			c[(bit/8)%len(c)] ^= 1 << (bit % 8)
			stored.Certificate = c
		}
		s.cache.add(j.key.formulaKey, stored, res.Meta)
	}
	s.stats.CacheSize = s.cache.len()
	s.retainLocked(j.id)
	// Snapshot under s.mu: Resubmit appends aliases in the same critical
	// section that finds the job in the inflight map, and the map entry was
	// just deleted above — so this copy is complete and race-free.
	aliases := append([]uint64(nil), j.aliases...)
	for _, id := range aliases {
		s.retainLocked(id)
	}
	s.mu.Unlock()

	// Durability, outside the server lock. Only certified results persist:
	// the certificate is what lets a later life trust the record without
	// trusting this one. The store gets the pristine certificate — the
	// corruption fault above models cache rot, while store faults are
	// injected inside the store itself.
	if cacheable && s.cfg.Store != nil && len(res.Certificate) > 0 && !res.Cached {
		if err := s.cfg.Store.save(j.w, res.Result, res.Meta); err != nil {
			s.audit(AuditEvent{Client: j.client, Action: "store", JobID: j.id,
				Detail: "append failed: " + err.Error()})
		}
	}
	if markDone {
		// Lazy (batched-fsync) marker: losing it merely makes the next
		// recovery re-run a job whose answer is already durable or cached —
		// replay is idempotent, so cheap beats synced here.
		s.cfg.Journal.markDone(j.id)
		for _, id := range aliases {
			s.cfg.Journal.markDone(id)
		}
	}
	s.audit(AuditEvent{Client: j.client, Action: "result", JobID: j.id, Detail: detail})

	// A proved optimum closes the bounds; make sure subscribers see the
	// closing improvement even if the winning publish bypassed the shared
	// bounds (fast solo solves return without publishing).
	if res.Status == opt.StatusOptimal {
		j.emit(Event{LB: res.Cost, UB: res.Cost, HasLB: true, HasUB: true})
	}
	j.mu.Lock()
	j.st = Done
	j.res = res
	subs := j.subs
	j.subs = nil
	j.mu.Unlock()
	for _, ch := range subs {
		close(ch)
	}
	close(j.done)
}

// retainLocked evicts completed jobs beyond the retention bound from the
// by-ID map. Caller holds s.mu.
func (s *Server) retainLocked(id uint64) {
	if s.cfg.RetainDone < 0 {
		delete(s.jobs, id)
		return
	}
	s.doneOrder = append(s.doneOrder, id)
	for len(s.doneOrder) > s.cfg.RetainDone {
		delete(s.jobs, s.doneOrder[0])
		s.doneOrder = s.doneOrder[1:]
	}
}

// Job returns a handle for an admitted job by ID. Completed jobs stay
// addressable until evicted by the Config.RetainDone bound. The returned
// handle carries no cancellation vote (Cancel on it is a no-op).
func (s *Server) Job(id uint64) (*Handle, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	h := &Handle{s: s, j: j}
	h.once.Do(func() {}) // spend the cancellation vote: lookups don't own one
	return h, true
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Workers = s.cfg.Workers
	st.WorkersBusy = s.sem.busy()
	st.Queued = s.queued
	st.Running = s.running
	st.CacheSize = s.cache.len()
	st.Draining = s.closed
	return st
}

// Close cancels every queued and running job and waits for them to finish.
// Subsequent Submits fail with ErrClosed; existing handles keep working.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		s.shutdownSessions()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
	s.shutdownSessions()
}

// Drain is the graceful half of Close: it stops admissions immediately
// (Submit fails with ErrClosed, Stats reports Draining) and lets the queued
// and running jobs run to completion — their handles and subscribers receive
// real results. When ctx expires first, the stragglers are cancelled Close-
// style and Drain returns ctx's error after they unwind; every job still
// completes (with its best bounds), so subscribers always see a terminal
// event. A nil error means every job finished within the deadline. Drain and
// Close compose: calling either after the other is safe.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if already {
		s.wg.Wait()
		s.shutdownSessions()
		return nil
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.shutdownSessions()
		return nil
	case <-ctx.Done():
		s.stop() // deadline passed: cancel the stragglers
		<-done
		s.shutdownSessions()
		return ctx.Err()
	}
}

// ---- job internals ----

func (j *job) state() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.st
}

// emit folds a bounds snapshot into the job's best-seen bounds and fans the
// improvement out to every subscriber. Observer callbacks may arrive out of
// order under concurrent publishes; the fold keeps the outgoing stream
// monotone (LB never falls, UB never rises).
func (j *job) emit(e Event) {
	j.beat.Add(1) // a bound improvement is progress, whatever the solver
	j.mu.Lock()
	improved := false
	if e.HasLB && (!j.best.HasLB || e.LB > j.best.LB) {
		j.best.LB, j.best.HasLB = e.LB, true
		improved = true
	}
	if e.HasUB && (!j.best.HasUB || e.UB < j.best.UB) {
		j.best.UB, j.best.HasUB = e.UB, true
		improved = true
	}
	if improved {
		snap := j.best
		for _, ch := range j.subs {
			pushConflate(ch, snap)
		}
	}
	j.mu.Unlock()
}

// pushConflate delivers e without ever blocking the publisher: when the
// subscriber's buffer is full the oldest pending event is dropped — bound
// events are cumulative snapshots, so the newest one supersedes everything
// it displaced.
func pushConflate(ch chan Event, e Event) {
	for {
		select {
		case ch <- e:
			return
		default:
		}
		select {
		case <-ch:
		default:
		}
	}
}

// ---- Handle ----

// ID returns the server-assigned job ID.
func (h *Handle) ID() uint64 { return h.j.id }

// Done returns a channel closed when the job completes.
func (h *Handle) Done() <-chan struct{} { return h.j.done }

// State returns the job's current phase and its best-seen bounds.
func (h *Handle) State() (State, Event) {
	h.j.mu.Lock()
	defer h.j.mu.Unlock()
	return h.j.st, h.j.best
}

// Wait blocks until the job completes or ctx is cancelled. A ctx error
// abandons only this wait — the job keeps running (use Cancel to withdraw).
func (h *Handle) Wait(ctx context.Context) (Result, error) {
	select {
	case <-h.j.done:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	h.j.mu.Lock()
	defer h.j.mu.Unlock()
	return h.j.res, nil
}

// Result returns the outcome if the job has completed.
func (h *Handle) Result() (Result, bool) {
	select {
	case <-h.j.done:
	default:
		return Result{}, false
	}
	h.j.mu.Lock()
	defer h.j.mu.Unlock()
	return h.j.res, true
}

// Cancel withdraws this handle's interest in the job. The underlying solve
// is cancelled only when every coalesced handle has cancelled (each handle
// holds one vote; Cancel is idempotent per handle).
func (h *Handle) Cancel() {
	h.once.Do(func() {
		h.j.mu.Lock()
		h.j.refs--
		last := h.j.refs == 0 && h.j.st != Done
		h.j.mu.Unlock()
		detail := "vote"
		if last {
			detail = "last-vote"
		}
		h.s.audit(AuditEvent{Client: h.j.client, Action: "cancel", JobID: h.j.id, Detail: detail})
		if last && h.j.cancel != nil {
			h.j.cancel()
		}
	})
}

// Subscribe returns a channel of monotone bound improvements: the current
// best bounds are replayed as the first event (when any exist), every later
// improvement follows, and the channel is closed when the job completes. A
// slow consumer never blocks the solvers — intermediate events conflate,
// keeping only the newest snapshot.
func (h *Handle) Subscribe() <-chan Event {
	ch := make(chan Event, 16)
	h.j.mu.Lock()
	if h.j.best.HasLB || h.j.best.HasUB {
		ch <- h.j.best
	}
	if h.j.st == Done {
		close(ch)
	} else {
		h.j.subs = append(h.j.subs, ch)
	}
	h.j.mu.Unlock()
	return ch
}
