package serve

import (
	"context"
	"fmt"
	"time"

	"repro/internal/opt"
)

// Fault injection: a deterministic chaos-testing hook set for the serving
// layer. Production servers leave Config.Faults nil — the hook is consulted
// (and the switch below exists) only so tests can drive the server through
// its failure paths on purpose: a member panic, a worker that stalls, a
// budget that exhausts mid-run, a cancellation that lands mid-solve. The
// chaos suite (chaos_test.go) uses it to assert the invariants operators
// rely on: the worker pool never deadlocks, goroutines never leak, and an
// unverified result is never served from the cache.

// FaultKind enumerates the injectable faults.
type FaultKind int8

// Injectable faults.
const (
	// FaultNone: run the job normally.
	FaultNone FaultKind = iota
	// FaultPanic panics in the worker goroutine in place of the solve,
	// exercising the panic-isolation path exactly where a buggy optimizer
	// would hit it.
	FaultPanic
	// FaultSlow delays the solve by Delay (respecting cancellation),
	// simulating a stalled worker; the job's deadline keeps counting.
	FaultSlow
	// FaultExhaust drops the solve and reports budget exhaustion: Unknown
	// with the job's best shared bounds, exactly what a SAT call returning
	// on a spent conflict/time/memory budget produces.
	FaultExhaust
	// FaultCancel cancels the job's own context Delay after it starts
	// running, simulating a client withdrawing mid-solve.
	FaultCancel
)

// Fault is one injected fault decision.
type Fault struct {
	Kind  FaultKind
	Delay time.Duration // FaultSlow: stall length; FaultCancel: time until the cancel lands
}

// Faults is the fault-injection hook set. Deterministic by construction:
// the server calls Before with the job's identity and acts on the returned
// decision, so a test seeding its own decision function replays the same
// fault schedule every run.
type Faults struct {
	// Before is consulted in the worker goroutine immediately before the
	// job's SolveFunc would run, once per attempt (attempt 0 is the first
	// run; server-side retries count up). Returning FaultNone runs the
	// attempt normally — so a schedule can panic a job's first attempt and
	// let its retry succeed, which is exactly what the retry chaos tests
	// assert.
	Before func(jobID uint64, optsKey string, attempt int) Fault
	// CorruptCert is consulted when a job's verified result is about to be
	// cached: a return ≥ 0 flips that bit (modulo the certificate length)
	// in the stored copy of the result's certificate, simulating storage
	// rot between the store and a later cache hit. The result served to
	// the job's own waiters is untouched. Return a negative value (or
	// leave the hook nil) to store faithfully.
	CorruptCert func(jobID uint64) int

	// CorruptStore is consulted when a record is about to be written to the
	// durable result store or job journal (seq is the record's position in
	// its log): a return ≥ 0 flips that bit (modulo the record length) in
	// the payload before it is CRC-framed — so the frame is well-formed and
	// recovery's integrity layer passes, and the corruption must be caught
	// by the re-validation layer (the independent proof checker) instead.
	// Negative (or nil hook) writes faithfully.
	CorruptStore func(seq uint64) int
	// CrashAfterWrite, when it returns true for a record, tears that
	// record's framed write in half and wedges the log — every later write
	// is silently dropped, as if the process died mid-write. Recovery must
	// truncate the torn tail cleanly.
	CrashAfterWrite func(seq uint64) bool
}

// corruptStoreBit returns the bit to flip in the store/journal record at
// seq, or -1 to write it faithfully.
func (f *Faults) corruptStoreBit(seq uint64) int {
	if f == nil || f.CorruptStore == nil {
		return -1
	}
	return f.CorruptStore(seq)
}

// storeWriteHook builds the store-layer fault hook (torn writes), or nil
// when no crash fault is configured.
func (f *Faults) storeWriteHook() func(seq uint64, frame []byte) ([]byte, bool) {
	if f == nil || f.CrashAfterWrite == nil {
		return nil
	}
	return func(seq uint64, frame []byte) ([]byte, bool) {
		if f.CrashAfterWrite(seq) {
			return frame[:len(frame)/2], true
		}
		return frame, false
	}
}

// corruptCertBit returns the bit to flip in job id's stored certificate, or
// -1 to store it faithfully.
func (f *Faults) corruptCertBit(id uint64) int {
	if f == nil || f.CorruptCert == nil {
		return -1
	}
	return f.CorruptCert(id)
}

// inject applies the configured fault decision for j under the job's run
// context. It reports the injected result when the fault replaces the solve
// entirely (handled true); otherwise the caller proceeds to the real
// SolveFunc. May panic — that is FaultPanic's purpose — and the server's
// panic isolation must contain it.
func (f *Faults) inject(ctx context.Context, j *job, attempt int) (res opt.Result, handled bool) {
	if f == nil || f.Before == nil {
		return opt.Result{}, false
	}
	switch d := f.Before(j.id, j.key.opts, attempt); d.Kind {
	case FaultPanic:
		panic(fmt.Sprintf("serve: injected fault: panic in job %d", j.id))
	case FaultSlow:
		t := time.NewTimer(d.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	case FaultExhaust:
		r := opt.Result{Status: opt.StatusUnknown, Cost: -1}
		if e := j.bounds.Snapshot(); e.HasLB {
			r.LowerBound = e.LB
		}
		if cost, model, ok := j.bounds.Best(); ok {
			r.Cost, r.Model = cost, model
		}
		return r, true
	case FaultCancel:
		// The timer is left running: j.cancel is idempotent and the job's
		// context is released when the run goroutine exits, so a late fire
		// is harmless — but firing is the point.
		time.AfterFunc(d.Delay, j.cancel)
	}
	return opt.Result{}, false
}
