package serve

import (
	"context"
	"sync"
)

// sema is a context-aware weighted semaphore: the server's global worker
// budget. A sequential job acquires one slot; a portfolio job acquires one
// slot per racing member, so N concurrent jobs × M members can never
// oversubscribe the machine beyond the configured budget.
//
// Grants are FIFO: a wide acquire at the head of the queue blocks later
// narrow ones even while some slots are free. That is deliberate — it means
// a portfolio job cannot be starved forever by a stream of sequential jobs.
type sema struct {
	mu      sync.Mutex
	free    int
	cap     int
	waiters []*semWaiter
}

type semWaiter struct {
	n     int
	ready chan struct{}
}

func newSema(n int) *sema {
	return &sema{free: n, cap: n}
}

// acquire blocks until n slots are granted or ctx is cancelled. n is clamped
// to the semaphore's capacity by the caller (Server.Submit), so every
// acquire can eventually be satisfied.
func (s *sema) acquire(ctx context.Context, n int) error {
	s.mu.Lock()
	if len(s.waiters) == 0 && s.free >= n {
		s.free -= n
		s.mu.Unlock()
		return nil
	}
	w := &semWaiter{n: n, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		granted := true
		for i, x := range s.waiters {
			if x == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				granted = false
				break
			}
		}
		if granted {
			// The grant raced the cancellation; hand the slots back.
			s.free += n
		}
		// Either way the queue changed shape: slots were returned, or a
		// (possibly wide, possibly head-of-line) waiter vanished and the
		// waiters behind it may now fit the slots that were reserved for it.
		s.grantLocked()
		s.mu.Unlock()
		return ctx.Err()
	}
}

func (s *sema) release(n int) {
	s.mu.Lock()
	s.free += n
	s.grantLocked()
	s.mu.Unlock()
}

func (s *sema) grantLocked() {
	for len(s.waiters) > 0 && s.waiters[0].n <= s.free {
		w := s.waiters[0]
		s.waiters = s.waiters[1:]
		s.free -= w.n
		close(w.ready)
	}
}

// busy returns the number of slots currently granted.
func (s *sema) busy() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cap - s.free
}
