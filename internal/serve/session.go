// Sessions: incremental solving over the serving layer.
//
// A session binds a client to a live solver for a *growing* formula: the
// client opens the session with a base instance, pushes deltas (hard
// clauses, soft clauses, reweights, assumptions), and re-solves after each
// delta at delta cost instead of from-scratch cost. The session owns one
// pinned worker-pool slot for its whole lifetime — acquired at open,
// released at close or idle eviction — so a delta solve never queues behind
// one-shot jobs and N sessions can never oversubscribe the machine.
//
// Interchangeability is the design invariant: every session solve is
// journaled, admitted, verified, cached, and certified exactly like a
// one-shot job of the *accumulated* formula (base + all deltas + current
// assumptions as hard units). The verified-result cache and the durable
// store key on the accumulated formula's canonical fingerprint, so a
// session's answer can serve a later one-shot submission of the same
// formula and vice versa, and a session's last certified answer survives a
// restart through the durable store even though sessions themselves are
// ephemeral (a restart forgets open sessions; clients reopen and replay
// deltas, whereupon the first solve of an already-certified accumulation is
// a cache hit — counted in Stats.SessionHits).
//
// The retained (warm) solver path is sound only for monotone growth: adding
// hard clauses or unit-weight soft clauses preserves every core, bound, and
// learnt clause the engine retained (see opt.Incremental). Reweighting can
// lower the optimum — it retires the retained engine for good — and
// assumptions scope a single solve, so an assumption-bearing solve routes
// to the from-scratch path while the retained engine stays valid for later
// assumption-free solves.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/proof"
)

// Session errors.
var (
	// ErrSessionClosed: the session was closed by the client, evicted idle,
	// or torn down by server shutdown.
	ErrSessionClosed = errors.New("serve: session is closed")
	// ErrSessionBusy: a delta solve is in flight; Push and Solve are
	// rejected until it completes (the retained solver is single-threaded).
	ErrSessionBusy = errors.New("serve: session has a solve in flight")
	// ErrSessionLimit: Config.MaxSessions sessions are already open.
	ErrSessionLimit = errors.New("serve: session limit reached")
	// ErrSessionsDisabled: Config.MaxSessions is negative.
	ErrSessionsDisabled = errors.New("serve: sessions are disabled")
	// ErrBadDelta: a delta referenced a soft clause that does not exist or
	// carried a non-positive weight.
	ErrBadDelta = errors.New("serve: invalid delta")
)

// Reweight changes the weight of one already-pushed soft clause, addressed
// by its index in soft-clause order (base softs first, then pushed softs in
// arrival order).
type Reweight struct {
	Soft   int
	Weight cnf.Weight
}

// Delta is one batch of session mutations. All of it is applied atomically
// by Push: clause additions extend the accumulated formula, reweights
// adjust it in place, and assumptions replace or extend the session's
// assumption set depending on SetAssumptions.
type Delta struct {
	// Hards are hard clauses to add.
	Hards []cnf.Clause
	// Softs are soft clauses to add (positive weights).
	Softs []cnf.WClause
	// Reweights adjust existing soft clauses. Any reweight permanently
	// retires the session's retained solver (non-monotone).
	Reweights []Reweight
	// Assumptions are literals scoping subsequent solves; they are appended
	// to the active set unless SetAssumptions is true, in which case they
	// replace it (an empty replacement clears all assumptions).
	Assumptions    []cnf.Lit
	SetAssumptions bool
}

// SessionSolveFunc runs one session solve. It is the session analogue of
// SolveFunc: same snapshot/bounds/grant contract, plus the session's
// retained engine — non-nil exactly when the serving layer judged the
// retained path sound for this solve (no assumptions active, engine alive,
// first attempt). The second return reports whether the retained engine
// produced the answer; implementations fall back to a from-scratch run (and
// return false) when retained is nil or its answer is unusable.
type SessionSolveFunc func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant, retained opt.Incremental) (opt.Result, bool)

// SessionSpec describes one session at open time.
type SessionSpec struct {
	// Base is the initial formula; nil means start empty. The server clones
	// it, so the caller may reuse its copy.
	Base *cnf.WCNF
	// OptsKey is the canonical identity of the solve options (see
	// JobSpec.OptsKey); it scopes coalescing of the session's delta solves.
	OptsKey string
	// Timeout bounds each delta solve (see JobSpec.Timeout).
	Timeout time.Duration
	// Meta is opaque caller data carried into each solve's Result.Meta.
	Meta any
	// Client is the owning client's identity. The session holds one unit of
	// the client's in-flight quota for its whole lifetime.
	Client string
	// Payload re-describes the solve options durably (see JobSpec.Payload);
	// it journals each delta solve so an admitted solve survives a restart
	// as a replayed one-shot job of the accumulated snapshot.
	Payload []byte
	// Solve runs each delta solve.
	Solve SessionSolveFunc
	// Retained is the session's warm engine, already loaded with Base; nil
	// runs every solve from scratch. The server owns it from here on and
	// Closes it at session teardown.
	Retained opt.Incremental
}

// Session is one open incremental-solving session. All methods are safe for
// concurrent use; mutations and solves are serialized (ErrSessionBusy).
type Session struct {
	s    *Server
	id   uint64
	spec SessionSpec

	mu       sync.Mutex
	acc      *cnf.WCNF // accumulated formula (server-owned)
	softIdx  []int     // acc.Clauses index of each soft, in soft order
	assume   []cnf.Lit
	pendingH []cnf.Clause  // pushed but not yet absorbed by the engine
	pendingS []cnf.WClause //
	retained opt.Incremental
	solving  bool
	cur      *job // the in-flight solve's job (nil while submitting)
	closed   bool
	// pendingClose defers slot/engine teardown to the solve-completion
	// watcher when Close or eviction lands mid-solve (the leased job is
	// still running on the pinned slot).
	pendingClose  bool
	pendingEvict  bool
	idle          *time.Timer
	solves        int64
	reused        int64
	lastAccClause int // acc.Clauses length at last solve (delta sizing for audit)
}

// OpenSession opens a session and pins one worker slot to it. The call
// blocks until a slot is free or ctx is cancelled — on a server whose slots
// are all pinned by other sessions, pass a ctx with a deadline. Admission
// mirrors Submit: the open costs one rate token and holds one unit of the
// client's in-flight quota until the session closes.
func (s *Server) OpenSession(ctx context.Context, spec SessionSpec) (*Session, error) {
	if spec.Solve == nil {
		return nil, ErrBadSpec
	}
	if s.cfg.MaxSessions < 0 {
		return nil, ErrSessionsDisabled
	}
	max := s.cfg.MaxSessions
	if max == 0 {
		max = s.cfg.Workers
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.cfg.RatePerSec > 0 {
		if wait, ok := s.takeTokenLocked(spec.Client); !ok {
			s.stats.RateLimited++
			s.mu.Unlock()
			s.audit(AuditEvent{Client: spec.Client, Action: "shed", Detail: "rate-limited"})
			return nil, &ShedError{Reason: ErrRateLimited, RetryAfter: wait}
		}
	}
	if s.cfg.ClientQuota > 0 {
		if c, ok := s.clients[spec.Client]; ok && c.inflight >= s.cfg.ClientQuota {
			s.stats.QuotaDenied++
			retry := s.shedRetryAfter()
			s.mu.Unlock()
			s.audit(AuditEvent{Client: spec.Client, Action: "shed", Detail: "over-quota"})
			return nil, &ShedError{Reason: ErrOverQuota, RetryAfter: retry}
		}
	}
	if len(s.sessions) >= max {
		retry := s.shedRetryAfter()
		s.mu.Unlock()
		s.audit(AuditEvent{Client: spec.Client, Action: "shed", Detail: "session-limit"})
		return nil, &ShedError{Reason: ErrSessionLimit, RetryAfter: retry}
	}
	s.mu.Unlock()

	// The pinned lease, acquired outside the server lock (it can block).
	if err := s.sem.acquire(ctx, 1); err != nil {
		return nil, err
	}

	sess := &Session{s: s, spec: spec, retained: spec.Retained}
	if spec.Base != nil {
		sess.acc = spec.Base.Clone()
	} else {
		sess.acc = cnf.NewWCNF(0)
	}
	for i, c := range sess.acc.Clauses {
		if !c.Hard() {
			sess.softIdx = append(sess.softIdx, i)
		}
	}

	s.mu.Lock()
	// Re-check under the lock: the world may have changed while the lease
	// acquisition blocked. The re-check is the authoritative one.
	if s.closed {
		s.mu.Unlock()
		s.sem.release(1)
		return nil, ErrClosed
	}
	if len(s.sessions) >= max {
		retry := s.shedRetryAfter()
		s.mu.Unlock()
		s.sem.release(1)
		s.audit(AuditEvent{Client: spec.Client, Action: "shed", Detail: "session-limit"})
		return nil, &ShedError{Reason: ErrSessionLimit, RetryAfter: retry}
	}
	s.nextID++
	sess.id = s.nextID
	s.sessions[sess.id] = sess
	s.clientLocked(spec.Client).inflight++
	s.stats.SessionsOpened++
	s.stats.SessionsOpen = len(s.sessions)
	s.mu.Unlock()

	// Arm the idle timer under sess.mu: the session is published, so the
	// callback (which locks sess.mu) could otherwise race this write.
	sess.mu.Lock()
	if d := s.sessionIdle(); d > 0 {
		sess.idle = time.AfterFunc(d, sess.idleEvict)
	}
	engine := "none"
	if sess.retained != nil {
		engine = sess.retained.Name()
	}
	sess.mu.Unlock()
	s.audit(AuditEvent{Client: spec.Client, Action: "session-open", JobID: sess.id,
		Detail: fmt.Sprintf("engine=%s base=%d clauses", engine, len(sess.acc.Clauses))})
	return sess, nil
}

// sessionIdle resolves the idle-eviction horizon: 0 means 5 minutes,
// negative disables.
func (s *Server) sessionIdle() time.Duration {
	if s.cfg.SessionIdle < 0 {
		return 0
	}
	if s.cfg.SessionIdle == 0 {
		return 5 * time.Minute
	}
	return s.cfg.SessionIdle
}

// Session returns an open session by ID (the daemon's lookup path).
func (s *Server) Session(id uint64) (*Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// ID returns the server-assigned session ID. Session and job IDs share one
// namespace, so audit lines never collide.
func (sess *Session) ID() uint64 { return sess.id }

// Client returns the owning client's identity.
func (sess *Session) Client() string { return sess.spec.Client }

// Meta returns the opaque caller data the session was opened with (the
// maxsat layer stores the resolved algorithm there).
func (sess *Session) Meta() any { return sess.spec.Meta }

// Counters reports how many delta solves this session has submitted and how
// many of them the retained engine answered.
func (sess *Session) Counters() (solves, reused int64) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.solves, sess.reused
}

// touchLocked resets the idle-eviction clock. Caller holds sess.mu.
func (sess *Session) touchLocked() {
	if sess.idle != nil {
		sess.idle.Reset(sess.s.sessionIdle())
	}
}

// busyLocked reports whether a solve is still in flight, reaping a completed
// one inline — so a sequential solve→Wait→Push pattern never observes a
// stale busy flag just because the completion watcher has not run yet.
// Caller holds sess.mu.
func (sess *Session) busyLocked() bool {
	if !sess.solving {
		return false
	}
	if sess.cur == nil {
		return true // submission in progress
	}
	select {
	case <-sess.cur.done:
		sess.completeLocked()
		return false
	default:
		return true
	}
}

// completeLocked finalizes the in-flight solve's session bookkeeping. Caller
// holds sess.mu; sess.cur is non-nil and its done channel is closed. Runs
// exactly once per solve: both callers (busyLocked, watchSolve) check
// sess.cur first and it is nilled here.
func (sess *Session) completeLocked() {
	j := sess.cur
	sess.cur = nil
	sess.solving = false
	sess.touchLocked()
	j.mu.Lock()
	reused := j.res.Reused
	j.mu.Unlock()
	if reused {
		sess.reused++
	}
}

// retireEngineLocked permanently drops the retained engine (non-monotone
// mutation, absorb failure, or poisoning). Caller holds sess.mu; the engine
// is closed outside the solve path, which is idle by the Push/Solve
// serialization. Pending deltas the engine never saw are dropped with it.
func (sess *Session) retireEngineLocked(why string) {
	if sess.retained == nil {
		return
	}
	sess.retained.Close()
	sess.retained = nil
	sess.pendingH, sess.pendingS = nil, nil
	sess.s.audit(AuditEvent{Client: sess.spec.Client, Action: "session-retire",
		JobID: sess.id, Detail: why})
}

// Push applies one delta to the accumulated formula. The delta is validated
// before anything is applied, so a rejected Push leaves the session
// unchanged. Push fails with ErrSessionBusy while a solve is in flight.
func (sess *Session) Push(d Delta) error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return ErrSessionClosed
	}
	if sess.busyLocked() {
		return ErrSessionBusy
	}
	for _, c := range d.Softs {
		if c.Weight <= 0 {
			return fmt.Errorf("%w: soft clause weight %d", ErrBadDelta, c.Weight)
		}
	}
	for _, rw := range d.Reweights {
		if rw.Soft < 0 || rw.Soft >= len(sess.softIdx) {
			return fmt.Errorf("%w: reweight of soft %d of %d", ErrBadDelta, rw.Soft, len(sess.softIdx))
		}
		if rw.Weight <= 0 {
			return fmt.Errorf("%w: reweight to %d", ErrBadDelta, rw.Weight)
		}
	}
	sess.touchLocked()

	for _, c := range d.Hards {
		sess.acc.AddHard(c...)
	}
	for _, c := range d.Softs {
		sess.softIdx = append(sess.softIdx, len(sess.acc.Clauses))
		sess.acc.AddSoft(c.Weight, c.Clause...)
	}
	if sess.retained != nil {
		// Buffer for the engine; absorption happens at the next Solve, when
		// the engine is provably idle. Non-unit softs retire the engine (the
		// retained path is unweighted); the clauses themselves stay in acc,
		// so from-scratch solves still see them.
		for _, c := range d.Hards {
			sess.pendingH = append(sess.pendingH, c.Clone())
		}
		nonUnit := false
		for _, c := range d.Softs {
			if c.Weight != 1 {
				nonUnit = true
				break
			}
		}
		if nonUnit {
			sess.retireEngineLocked("weighted soft clause")
		} else {
			for _, c := range d.Softs {
				sess.pendingS = append(sess.pendingS,
					cnf.WClause{Clause: c.Clause.Clone(), Weight: 1})
			}
		}
	}
	if len(d.Reweights) > 0 {
		for _, rw := range d.Reweights {
			sess.acc.Clauses[sess.softIdx[rw.Soft]].Weight = rw.Weight
		}
		// Reweighting can lower the optimum: every bound and core the
		// engine retained may now be wrong. Retired for good.
		sess.retireEngineLocked("reweight")
	}
	if d.SetAssumptions {
		sess.assume = append(sess.assume[:0], d.Assumptions...)
	} else {
		sess.assume = append(sess.assume, d.Assumptions...)
	}
	return nil
}

// Accumulated returns a snapshot of the session's accumulated formula with
// the active assumptions appended as hard unit clauses — exactly the
// formula a solve of the current state answers for. Callers own the copy.
func (sess *Session) Accumulated() *cnf.WCNF {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.snapshotLocked()
}

func (sess *Session) snapshotLocked() *cnf.WCNF {
	snap := sess.acc.Clone()
	for _, a := range sess.assume {
		snap.AddHard(a)
	}
	return snap
}

// Solve submits a delta solve of the accumulated formula. It returns a job
// handle immediately — the solve is admitted, journaled, cached, verified,
// and audited exactly like a one-shot Submit of the accumulated snapshot,
// so its answer is interchangeable with a one-shot answer. Only one solve
// may be in flight per session (ErrSessionBusy).
func (sess *Session) Solve(ctx context.Context) (*Handle, error) {
	s := sess.s
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return nil, ErrSessionClosed
	}
	if sess.busyLocked() {
		sess.mu.Unlock()
		return nil, ErrSessionBusy
	}
	sess.touchLocked()
	// Feed buffered deltas to the engine now: no solve is in flight, so the
	// engine is idle. An absorb failure means the engine poisoned itself —
	// retire it and run from scratch.
	if sess.retained != nil && (len(sess.pendingH) > 0 || len(sess.pendingS) > 0) {
		h, sf := sess.pendingH, sess.pendingS
		sess.pendingH, sess.pendingS = nil, nil
		if !sess.retained.Absorb(h, sf) {
			sess.retireEngineLocked("absorb failed")
		}
	}
	snap := sess.snapshotLocked()
	// The retained path is offered only when it is sound: engine alive and
	// no assumptions scoping this solve. The engine stays valid across an
	// assumption-bearing solve — it just sits this one out.
	retained := sess.retained
	if len(sess.assume) > 0 {
		retained = nil
	}
	grew := len(sess.acc.Clauses) - sess.lastAccClause
	sess.lastAccClause = len(sess.acc.Clauses)
	sess.solving = true
	sess.solves++
	sess.mu.Unlock()

	h, err := s.submitSession(sess, snap, retained, grew)
	if err != nil {
		sess.mu.Lock()
		sess.solving = false
		sess.mu.Unlock()
		return nil, err
	}
	sess.mu.Lock()
	sess.cur = h.j
	sess.mu.Unlock()
	go sess.watchSolve(h.j)
	return h, nil
}

// watchSolve clears the busy flag when the delta solve completes (unless
// busyLocked already reaped it inline) and finishes a teardown that landed
// mid-solve. When the engine was offered but the fresh path answered (the
// engine returned Unknown, or a retry attempt won), the retained state is
// still sound — it only ever absorbed monotone deltas — so the engine is
// kept until it reports itself broken at an Absorb.
func (sess *Session) watchSolve(j *job) {
	<-j.done
	sess.mu.Lock()
	if sess.cur == j {
		sess.completeLocked()
	}
	teardown := sess.pendingClose
	evict := sess.pendingEvict
	sess.pendingClose, sess.pendingEvict = false, false
	sess.mu.Unlock()
	if teardown {
		sess.s.teardownSession(sess, evict)
	}
}

// submitSession admits one delta solve. It mirrors Submit's disposition
// ladder — rate token, verified cache, coalesce, fresh job — with three
// session differences: a cache hit also counts Stats.SessionHits, the fresh
// job is leased (it runs on the session's pinned slot, bypassing QueueDepth
// and the per-solve quota charge), and the SolveFunc wraps the session's
// retained engine.
func (s *Server) submitSession(sess *Session, snap *cnf.WCNF, retained opt.Incremental, grew int) (*Handle, error) {
	spec := sess.spec
	fkey := keyFor(snap)
	key := jobKey{formulaKey: fkey, opts: spec.OptsKey}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.stats.Submitted++
	s.stats.SessionSolves++

	if s.cfg.RatePerSec > 0 {
		if wait, ok := s.takeTokenLocked(spec.Client); !ok {
			s.stats.RateLimited++
			s.mu.Unlock()
			s.audit(AuditEvent{Client: spec.Client, Action: "shed", Detail: "rate-limited"})
			return nil, &ShedError{Reason: ErrRateLimited, RetryAfter: wait}
		}
	}

	// Verified-cache check, same double validation as Submit: the model
	// must verify against the accumulated snapshot and the certificate must
	// re-check end to end. A hit here is the restart-recovery path working:
	// a reopened session replaying deltas finds its pre-crash certified
	// answer without touching a solver.
	if res, meta, ok := s.cache.get(fkey); ok {
		s.mu.Unlock()
		modelOK := res.Model == nil || opt.VerifyModel(snap, res)
		certOK := true
		if modelOK && len(res.Certificate) > 0 {
			certOK = proof.CheckBytes(snap, res.Certificate) == nil
		}
		if modelOK && certOK {
			s.mu.Lock()
			s.stats.CacheHits++
			s.stats.SessionHits++
			h := s.doneJobLocked(key, Result{Result: res, Meta: meta, Cached: true})
			s.mu.Unlock()
			s.audit(AuditEvent{Client: spec.Client, Action: "submit", JobID: h.j.id,
				Detail: "session cache-hit"})
			return h, nil
		}
		if !certOK {
			s.audit(AuditEvent{Client: spec.Client, Action: "cache", Detail: "certificate-rejected"})
		}
		s.mu.Lock()
		if !certOK {
			s.cache.remove(fkey)
			s.stats.CertRejected++
		}
		if s.closed {
			s.mu.Unlock()
			return nil, ErrClosed
		}
	}
	s.stats.CacheMisses++

	// Coalesce onto an identical in-flight job (one-shot or from another
	// session). The retained engine sits this solve out but stays valid.
	if j, ok := s.inflight[key]; ok {
		j.mu.Lock()
		j.refs++
		j.mu.Unlock()
		s.stats.Coalesced++
		s.mu.Unlock()
		s.audit(AuditEvent{Client: spec.Client, Action: "submit", JobID: j.id,
			Detail: "session coalesced"})
		return &Handle{s: s, j: j}, nil
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	s.nextID++
	j := &job{
		id:     s.nextID,
		key:    key,
		w:      snap, // already a private clone — no second copy
		slots:  1,
		client: spec.Client,
		bounds: opt.NewBounds(),
		cancel: cancel,
		refs:   1,
		leased: true,
		done:   make(chan struct{}),
	}
	j.spec = JobSpec{
		Formula: snap,
		OptsKey: spec.OptsKey,
		Slots:   1,
		Timeout: spec.Timeout,
		Meta:    spec.Meta,
		Client:  spec.Client,
		Payload: spec.Payload,
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			// Retries run degraded and from scratch: whatever sank the warm
			// attempt (an engine bug included), the rerun must not repeat it.
			r := retained
			if g.Attempt > 0 {
				r = nil
			}
			res, reused := spec.Solve(ctx, w, shared, g, r)
			j.reused.Store(reused)
			return res
		},
	}
	j.bounds.SetObserver(j.emit)
	s.inflight[key] = j
	s.jobs[j.id] = j
	s.queued++
	s.wg.Add(1)
	s.mu.Unlock()

	warm := "scratch"
	if retained != nil {
		warm = retained.Name()
	}
	s.audit(AuditEvent{Client: spec.Client, Action: "submit", JobID: j.id,
		Detail: fmt.Sprintf("session solve engine=%s delta=%d clauses", warm, grew)})

	// Journal the accumulated snapshot: a crash mid-solve replays it as a
	// one-shot job under the same ID, so a client polling across the
	// restart sees its delta solve finish (sessions themselves do not
	// survive — see the package comment).
	if s.cfg.Journal != nil && len(spec.Payload) > 0 {
		if err := s.cfg.Journal.record(j.id, j.w, j.spec); err != nil {
			s.audit(AuditEvent{Client: spec.Client, Action: "journal", JobID: j.id,
				Detail: "append failed: " + err.Error()})
		} else {
			j.journal = true
		}
	}
	go s.run(ctx, j)
	return &Handle{s: s, j: j}, nil
}

// Close ends the session: the retained engine is dropped and the pinned
// worker slot and quota unit are returned. A solve in flight keeps running
// to completion (its handle stays valid); teardown completes when it does.
// Close is idempotent.
func (sess *Session) Close() {
	sess.closeInternal(false)
}

// idleEvict is the idle-timer callback.
func (sess *Session) idleEvict() {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return
	}
	if sess.busyLocked() {
		// A solve is in flight — the session is not idle after all (the
		// timer raced the solve). Try again a full horizon later.
		sess.touchLocked()
		sess.mu.Unlock()
		return
	}
	sess.mu.Unlock()
	sess.closeInternal(true)
}

func (sess *Session) closeInternal(evict bool) {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return
	}
	sess.closed = true
	if sess.idle != nil {
		sess.idle.Stop()
	}
	if sess.busyLocked() {
		// The leased job still occupies the pinned slot; the solve watcher
		// finishes the teardown when it completes.
		sess.pendingClose = true
		sess.pendingEvict = evict
		sess.mu.Unlock()
		return
	}
	sess.mu.Unlock()
	sess.s.teardownSession(sess, evict)
}

// teardownSession releases everything a session pins: retained engine,
// worker slot, quota unit, registry entry. Runs exactly once per session
// (guarded by the closed flag in closeInternal / the pendingClose handoff).
func (s *Server) teardownSession(sess *Session, evicted bool) {
	sess.mu.Lock()
	if sess.retained != nil {
		sess.retained.Close()
		sess.retained = nil
	}
	sess.pendingH, sess.pendingS = nil, nil
	sess.mu.Unlock()
	s.sem.release(1)
	s.mu.Lock()
	if _, ok := s.sessions[sess.id]; ok {
		delete(s.sessions, sess.id)
		s.releaseClientLocked(sess.spec.Client)
		if evicted {
			s.stats.SessionsEvicted++
		}
		s.stats.SessionsOpen = len(s.sessions)
	}
	s.mu.Unlock()
	detail := "closed"
	if evicted {
		detail = "idle-evicted"
	}
	s.audit(AuditEvent{Client: sess.spec.Client, Action: "session-close",
		JobID: sess.id, Detail: detail})
}

// shutdownSessions tears down every open session at server Close/Drain.
// It runs after wg.Wait, so no delta solve is in flight — but a solve
// watcher may still hold the teardown baton (pendingClose), in which case
// closeInternal already returned and the watcher finishes the job.
func (s *Server) shutdownSessions() {
	s.mu.Lock()
	list := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		list = append(list, sess)
	}
	s.mu.Unlock()
	for _, sess := range list {
		sess.closeInternal(false)
	}
}
