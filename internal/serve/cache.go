package serve

import (
	"container/list"

	"repro/internal/opt"
)

// lru is the verified-result cache: formulaKey → proved verdict, with
// least-recently-used eviction. Only StatusOptimal results whose model
// verified against the submitted formula, and StatusUnsat verdicts, are
// stored (see Server.finish); StatusUnknown results depend on the submission's
// resource budget and are never cached.
type lru struct {
	cap int
	ll  *list.List
	m   map[formulaKey]*list.Element
}

type cacheEntry struct {
	key  formulaKey
	res  opt.Result
	meta any
}

func newLRU(capacity int) *lru {
	if capacity <= 0 {
		return nil
	}
	return &lru{cap: capacity, ll: list.New(), m: make(map[formulaKey]*list.Element)}
}

func (c *lru) len() int {
	if c == nil {
		return 0
	}
	return c.ll.Len()
}

// get returns the cached result for k, copying the model and certificate so
// callers can never alias (and a later eviction can never disturb) the
// cached witness.
func (c *lru) get(k formulaKey) (opt.Result, any, bool) {
	if c == nil {
		return opt.Result{}, nil, false
	}
	el, ok := c.m[k]
	if !ok {
		return opt.Result{}, nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	res := e.res
	if res.Model != nil {
		res.Model = append(res.Model[:0:0], res.Model...)
	}
	if res.Certificate != nil {
		res.Certificate = append(res.Certificate[:0:0], res.Certificate...)
	}
	return res, e.meta, true
}

// remove evicts k (a cache hit whose stored certificate failed re-validation
// must never be consulted again).
func (c *lru) remove(k formulaKey) {
	if c == nil {
		return
	}
	if el, ok := c.m[k]; ok {
		delete(c.m, k)
		c.ll.Remove(el)
	}
}

// add stores a verified result, copying the model and certificate: the same
// Result value is handed to the job's waiters, and a caller mutating its
// Model in place must not be able to corrupt the cached witness (which would
// turn every future hit into a failed verification).
func (c *lru) add(k formulaKey, res opt.Result, meta any) {
	if c == nil {
		return
	}
	if res.Model != nil {
		res.Model = append(res.Model[:0:0], res.Model...)
	}
	if res.Certificate != nil {
		res.Certificate = append(res.Certificate[:0:0], res.Certificate...)
	}
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.res, e.meta = res, meta
		return
	}
	c.m[k] = c.ll.PushFront(&cacheEntry{key: k, res: res, meta: meta})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		delete(c.m, last.Value.(*cacheEntry).key)
		c.ll.Remove(last)
	}
}
