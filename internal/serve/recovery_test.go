package serve

import (
	"context"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/proof"
	"repro/internal/sat"
)

// openStoreT / openJournalT open durability primitives with test fatality.
func openStoreT(t *testing.T, path string, f *Faults) *ResultStore {
	t.Helper()
	rs, err := OpenResultStore(path, f)
	if err != nil {
		t.Fatalf("OpenResultStore: %v", err)
	}
	return rs
}

func openJournalT(t *testing.T, path string, f *Faults) *Journal {
	t.Helper()
	jl, err := OpenJournal(path, f)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return jl
}

// replayCertifying is the standard rebuild callback for these tests: every
// journaled payload maps to a real certifying solve.
func replayCertifying(rj RecoveredJob) (JobSpec, error) {
	return JobSpec{
		Formula: rj.Formula,
		OptsKey: rj.OptsKey,
		Client:  rj.Client,
		Timeout: rj.Timeout,
		Payload: rj.Payload,
		Solve:   certifying(),
	}, nil
}

// TestStoreRoundTripAcrossRestart solves with certification in one server
// life and asserts the second life serves the answer from the recovered
// store — with the certificate intact and verifying.
func TestStoreRoundTripAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.log")
	formula := contradiction()

	rs := openStoreT(t, path, nil)
	s := New(Config{Workers: 1, Store: rs})
	r1 := waitResult(t, mustSubmit(t, s, JobSpec{Formula: formula, Solve: certifying()}))
	if r1.Status != opt.StatusOptimal || len(r1.Certificate) == 0 {
		t.Fatalf("first life solve: %+v", r1)
	}
	s.Close()
	if err := rs.Close(); err != nil {
		t.Fatalf("store close: %v", err)
	}

	rs2 := openStoreT(t, path, nil)
	s2 := New(Config{Workers: 1, Store: rs2})
	defer func() { s2.Close(); rs2.Close() }()
	if st := s2.Stats(); st.Recovered != 1 || st.RecoveredRejected != 0 {
		t.Fatalf("recovery stats: %+v", st)
	}
	// The second life must answer from the recovered store without running
	// a solver at all.
	noSolver := func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
		t.Error("recovered result not served: solver ran in the second life")
		return opt.Result{Status: opt.StatusUnknown, Cost: -1}
	}
	r2 := waitResult(t, mustSubmit(t, s2, JobSpec{Formula: formula, Solve: noSolver}))
	if !r2.Cached || r2.Status != opt.StatusOptimal || r2.Cost != r1.Cost {
		t.Fatalf("recovered hit: %+v", r2)
	}
	if err := proof.CheckBytes(formula, r2.Certificate); err != nil {
		t.Fatalf("recovered certificate rejected by the checker: %v", err)
	}
}

// TestUncertifiedResultsNotDurable asserts the trust boundary: a verified
// but uncertified optimum is cacheable in memory yet never written to the
// durable store.
func TestUncertifiedResultsNotDurable(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.log")
	formula := contradiction()

	rs := openStoreT(t, path, nil)
	s := New(Config{Workers: 1, Store: rs})
	r := waitResult(t, mustSubmit(t, s, JobSpec{Formula: formula, Solve: optimal(1)}))
	if r.Status != opt.StatusOptimal || len(r.Certificate) != 0 {
		t.Fatalf("uncertified solve: %+v", r)
	}
	s.Close()
	rs.Close()

	rs2 := openStoreT(t, path, nil)
	defer rs2.Close()
	if n := len(rs2.entries); n != 0 {
		t.Fatalf("uncertified result persisted: %d store entries", n)
	}
}

// TestCorruptStoreNeverServed flips a payload bit on the way into the
// durable store (a valid CRC frame around a corrupt certificate) and asserts
// the recovery re-validation layer rejects it: the entry is dropped, counted
// and the formula is re-solved rather than served.
func TestCorruptStoreNeverServed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.log")
	formula := contradiction()

	faults := &Faults{CorruptStore: func(seq uint64) int { return 9000 }}
	rs := openStoreT(t, path, faults)
	s := New(Config{Workers: 1, Store: rs, Faults: faults})
	r1 := waitResult(t, mustSubmit(t, s, JobSpec{Formula: formula, Solve: certifying()}))
	if r1.Status != opt.StatusOptimal {
		t.Fatalf("first life solve: %+v", r1)
	}
	s.Close()
	rs.Close()

	rs2 := openStoreT(t, path, nil)
	s2 := New(Config{Workers: 1, Store: rs2})
	defer func() { s2.Close(); rs2.Close() }()
	st := s2.Stats()
	if st.Recovered != 0 {
		t.Fatalf("a corrupted store entry was admitted: %+v", st)
	}
	if st.RecoveredRejected == 0 {
		t.Fatalf("corrupted entry not counted as rejected: %+v", st)
	}
	// The formula still solves — freshly.
	r2 := waitResult(t, mustSubmit(t, s2, JobSpec{Formula: formula, Solve: certifying()}))
	if r2.Cached || r2.Status != opt.StatusOptimal {
		t.Fatalf("post-corruption solve: %+v", r2)
	}
}

// TestCrashAfterWriteTruncatedCleanly tears the second store record
// mid-write (simulated crash) and asserts recovery keeps the first record,
// drops the torn tail, and counts it.
func TestCrashAfterWriteTruncatedCleanly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "results.log")
	f1 := contradiction()
	f2 := cnf.NewWCNF(2)
	f2.AddSoft(1, cnf.PosLit(0))
	f2.AddSoft(1, cnf.NegLit(0))
	f2.AddSoft(1, cnf.PosLit(1))
	f2.AddSoft(1, cnf.NegLit(1))

	faults := &Faults{CrashAfterWrite: func(seq uint64) bool { return seq == 1 }}
	rs := openStoreT(t, path, faults)
	s := New(Config{Workers: 1, Store: rs, Faults: faults})
	if r := waitResult(t, mustSubmit(t, s, JobSpec{Formula: f1, Solve: certifying()})); r.Status != opt.StatusOptimal {
		t.Fatalf("job 1: %+v", r)
	}
	if r := waitResult(t, mustSubmit(t, s, JobSpec{Formula: f2, OptsKey: "two", Solve: certifying()})); r.Status != opt.StatusOptimal {
		t.Fatalf("job 2: %+v", r)
	}
	s.Close()
	rs.Close()

	rs2 := openStoreT(t, path, nil)
	s2 := New(Config{Workers: 1, Store: rs2})
	defer func() { s2.Close(); rs2.Close() }()
	st := s2.Stats()
	if st.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1 (the record before the crash)", st.Recovered)
	}
	if st.RecoveredRejected == 0 {
		t.Fatalf("torn tail not counted: %+v", st)
	}
	// The surviving entry is the first formula's.
	r := waitResult(t, mustSubmit(t, s2, JobSpec{Formula: f1, Solve: certifying()}))
	if !r.Cached {
		t.Fatal("pre-crash record not served after recovery")
	}
}

// TestJournalReplay shuts a server down with one running and one queued job
// and asserts the next life replays both to completion under their original
// IDs — an admitted submission is never forgotten.
func TestJournalReplay(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.log")
	formula := contradiction()

	jl := openJournalT(t, jpath, nil)
	s := New(Config{Workers: 1, Journal: jl})
	// A blocker occupies the only worker so the second job is journaled but
	// never runs — the "in flight at shutdown" shape.
	hBlock := mustSubmit(t, s, JobSpec{Formula: formula, OptsKey: "block",
		Payload: []byte("x"), Solve: blocker(nil)})
	hQueued := mustSubmit(t, s, JobSpec{Formula: formula, OptsKey: "queued",
		Payload: []byte("x"), Solve: certifying()})
	queuedID := hQueued.ID()
	// Close cancels both before they finish; shutdown-cancelled jobs keep
	// their journal entries pending.
	s.Close()
	jl.Close()

	jl2 := openJournalT(t, jpath, nil)
	s2 := New(Config{Workers: 1, Journal: jl2})
	defer func() { s2.Close(); jl2.Close() }()
	if err := s2.Recover(replayCertifying); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	h, ok := s2.Job(queuedID)
	if !ok {
		t.Fatalf("job %d not addressable after replay", queuedID)
	}
	r := waitResult(t, h)
	if r.Err != nil || r.Status != opt.StatusOptimal {
		t.Fatalf("replayed job result: %+v", r)
	}
	if st := s2.Stats(); st.Replayed == 0 {
		t.Fatalf("Stats.Replayed = 0 after replay: %+v", st)
	}
	if hBlock.ID() == queuedID {
		t.Fatal("test invariant: distinct IDs")
	}
	// New submissions never collide with pre-crash IDs.
	h3 := mustSubmit(t, s2, JobSpec{Formula: formula, OptsKey: "fresh", Solve: optimal(1)})
	if h3.ID() <= queuedID {
		t.Fatalf("fresh job ID %d not past recovered ID %d", h3.ID(), queuedID)
	}
	waitResult(t, h3)
}

// TestJournalReplayIdempotent covers the store-backed dedup layer: a pending
// journal entry whose certified answer is already durable (its done marker
// was lost in the crash) completes instantly from the recovered store — no
// solver runs, and the recovered ID is addressable with the cached result.
func TestJournalReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.log")
	spath := filepath.Join(dir, "results.log")
	formula := contradiction()

	// First life: solve and certify, making the answer durable.
	jl := openJournalT(t, jpath, nil)
	rs := openStoreT(t, spath, nil)
	s := New(Config{Workers: 1, Journal: jl, Store: rs})
	r := waitResult(t, mustSubmit(t, s, JobSpec{Formula: formula, OptsKey: "dup",
		Payload: []byte("x"), Solve: certifying()}))
	if r.Status != opt.StatusOptimal {
		t.Fatalf("first life solve: %+v", r)
	}
	s.Close()
	jl.Close()
	rs.Close()

	// Simulate a submission accepted just before the crash — or equivalently
	// a completed one whose lazy done marker was lost: a bare submit record
	// with no marker.
	jl = openJournalT(t, jpath, nil)
	if err := jl.record(99, formula, JobSpec{OptsKey: "dup", Payload: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	// Second life: the pending job's formula is already answered in the
	// re-validated store; replay must not run a solver.
	jl2 := openJournalT(t, jpath, nil)
	rs2 := openStoreT(t, spath, nil)
	s2 := New(Config{Workers: 1, Journal: jl2, Store: rs2})
	defer func() { s2.Close(); jl2.Close(); rs2.Close() }()
	ranSolver := atomic.Bool{}
	if err := s2.Recover(func(rj RecoveredJob) (JobSpec, error) {
		return JobSpec{Formula: rj.Formula, OptsKey: rj.OptsKey, Payload: rj.Payload,
			Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
				ranSolver.Store(true)
				return certifying()(ctx, w, shared, g)
			}}, nil
	}); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	h, ok := s2.Job(99)
	if !ok {
		t.Fatal("recovered job 99 not addressable")
	}
	rr := waitResult(t, h)
	if !rr.Cached || rr.Status != opt.StatusOptimal {
		t.Fatalf("store-completed replay: %+v", rr)
	}
	if ranSolver.Load() {
		t.Fatal("replay ran a solver for a job whose answer was durable")
	}
	if st := s2.Stats(); st.CacheHits != 1 || st.Recovered != 1 {
		t.Fatalf("idempotent replay stats: %+v", st)
	}
}

// TestJournalReplayCoalesces loses done markers for two identical pending
// submissions and asserts replay runs the formula once, with both original
// IDs addressing the one run.
func TestJournalReplayCoalesces(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal.log")
	formula := contradiction()

	// First life: journal two identical submissions and crash before either
	// runs (blocker pins the worker; Close cancels them, and cancelled jobs
	// do not reach markDone... they do — finish always marks. So simulate
	// the crash harder: never close the first server's journal cleanly;
	// write the journal by hand instead.)
	jl := openJournalT(t, jpath, nil)
	for id := uint64(1); id <= 2; id++ {
		if err := jl.record(id, formula, JobSpec{OptsKey: "same", Payload: []byte("x")}); err != nil {
			t.Fatal(err)
		}
	}
	jl.Close()

	jl2 := openJournalT(t, jpath, nil)
	s := New(Config{Workers: 1, Journal: jl2})
	defer func() { s.Close(); jl2.Close() }()
	var runs atomic.Int64
	if err := s.Recover(func(rj RecoveredJob) (JobSpec, error) {
		return JobSpec{Formula: rj.Formula, OptsKey: rj.OptsKey, Payload: rj.Payload,
			Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
				runs.Add(1)
				return certifying()(ctx, w, shared, g)
			}}, nil
	}); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for id := uint64(1); id <= 2; id++ {
		h, ok := s.Job(id)
		if !ok {
			t.Fatalf("recovered job %d not addressable", id)
		}
		if r := waitResult(t, h); r.Status != opt.StatusOptimal {
			t.Fatalf("job %d: %+v", id, r)
		}
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("coalesced replay ran the solver %d times, want 1", n)
	}
	if st := s.Stats(); st.Coalesced != 1 || st.Replayed != 2 {
		t.Fatalf("replay stats: %+v", st)
	}
}

// TestWatchdogKillsStalledSolver asserts the watchdog cancels a solver whose
// heartbeat never moves, and that with retries off the failure surfaces.
func TestWatchdogKillsStalledSolver(t *testing.T) {
	defer checkGoroutines(t)()
	s := New(Config{Workers: 1, StallTimeout: 30 * time.Millisecond})
	defer s.Close()
	h := mustSubmit(t, s, JobSpec{Formula: contradiction(),
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			<-ctx.Done() // stalled: blocks, no heartbeat — until the watchdog fires
			return opt.Result{Status: opt.StatusUnknown, Cost: -1}
		}})
	r := waitResult(t, h)
	if r.Err == nil {
		t.Fatalf("stalled job did not fail: %+v", r)
	}
	if st := s.Stats(); st.Stalled != 1 {
		t.Fatalf("Stats.Stalled = %d, want 1", st.Stalled)
	}
}

// TestWatchdogSparesProgressingSolver asserts a slow solver that keeps
// ticking its heartbeat is never killed, even over many stall windows.
func TestWatchdogSparesProgressingSolver(t *testing.T) {
	defer checkGoroutines(t)()
	s := New(Config{Workers: 1, StallTimeout: 40 * time.Millisecond})
	defer s.Close()
	h := mustSubmit(t, s, JobSpec{Formula: contradiction(),
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			// 8 stall windows of wall time, but the heartbeat ticks well
			// inside every window.
			beat := sat.ProgressFrom(ctx)
			for range 32 {
				if ctx.Err() != nil {
					return opt.Result{Status: opt.StatusUnknown, Cost: -1}
				}
				time.Sleep(10 * time.Millisecond)
				beat.Add(1)
			}
			return optimal(1)(ctx, w, shared, g)
		}})
	r := waitResult(t, h)
	if r.Err != nil || r.Status != opt.StatusOptimal {
		t.Fatalf("slow-but-progressing job killed: %+v", r)
	}
	if st := s.Stats(); st.Stalled != 0 {
		t.Fatalf("Stats.Stalled = %d, want 0", st.Stalled)
	}
}

// TestRetryLadder drives a deterministic fail-then-succeed schedule through
// the retry machinery under an instrumented backoff clock: attempt 0 panics,
// attempt 1 exhausts, attempt 2 succeeds — one job, three attempts, two
// deterministic backoffs, zero client resubmissions.
func TestRetryLadder(t *testing.T) {
	defer checkGoroutines(t)()
	faults := &Faults{Before: func(jobID uint64, optsKey string, attempt int) Fault {
		switch attempt {
		case 0:
			return Fault{Kind: FaultPanic}
		case 1:
			return Fault{Kind: FaultExhaust}
		default:
			return Fault{}
		}
	}}
	s := New(Config{Workers: 2, MaxRetries: 3, RetryBackoff: 10 * time.Millisecond, Faults: faults})
	defer s.Close()
	var backoffs []time.Duration
	s.sleep = func(ctx context.Context, d time.Duration) { backoffs = append(backoffs, d) }

	h := mustSubmit(t, s, JobSpec{Formula: contradiction(), Slots: 2, Solve: optimal(1)})
	r := waitResult(t, h)
	if r.Err != nil || r.Status != opt.StatusOptimal || r.Cost != 1 {
		t.Fatalf("job did not recover via retries: %+v", r)
	}
	st := s.Stats()
	if st.Retries != 2 || st.RetrySucceeded != 1 {
		t.Fatalf("retry stats: Retries=%d RetrySucceeded=%d, want 2/1", st.Retries, st.RetrySucceeded)
	}
	if st.Panics != 0 {
		t.Fatalf("recovered job still counted as a panic: %+v", st)
	}
	if len(backoffs) != 2 || backoffs[0] != 10*time.Millisecond || backoffs[1] != 20*time.Millisecond {
		t.Fatalf("backoff ladder %v, want [10ms 20ms] (exponential)", backoffs)
	}
}

// TestRetryExhaustion asserts a job that fails every attempt surfaces the
// failure after exactly MaxRetries retries.
func TestRetryExhaustion(t *testing.T) {
	faults := &Faults{Before: func(jobID uint64, optsKey string, attempt int) Fault {
		return Fault{Kind: FaultPanic}
	}}
	s := New(Config{Workers: 1, MaxRetries: 2, RetryBackoff: time.Nanosecond, Faults: faults})
	defer s.Close()
	s.sleep = func(ctx context.Context, d time.Duration) {}
	r := waitResult(t, mustSubmit(t, s, JobSpec{Formula: contradiction(), Solve: optimal(1)}))
	if r.Err == nil {
		t.Fatalf("permanently failing job reported success: %+v", r)
	}
	st := s.Stats()
	if st.Retries != 2 || st.RetrySucceeded != 0 || st.Panics != 1 {
		t.Fatalf("exhaustion stats: %+v", st)
	}
}

// TestChaosRetriesRecoverPanickedJobs is the acceptance-criteria chaos run:
// a schedule that panics several jobs' first attempts must end with every
// one of them succeeding via server-side retry — zero failures surfaced,
// zero client resubmissions.
func TestChaosRetriesRecoverPanickedJobs(t *testing.T) {
	defer checkGoroutines(t)()
	const jobs = 8
	faults := &Faults{Before: func(jobID uint64, optsKey string, attempt int) Fault {
		if jobID%2 == 1 && attempt == 0 {
			return Fault{Kind: FaultPanic}
		}
		return Fault{}
	}}
	s := New(Config{Workers: 3, CacheEntries: -1, MaxRetries: 1,
		RetryBackoff: time.Millisecond, Faults: faults})
	defer s.Close()
	var handles []*Handle
	for i := range jobs {
		handles = append(handles, mustSubmit(t, s, JobSpec{
			Formula: contradiction(),
			OptsKey: "chaos-" + string(rune('a'+i)),
			Solve:   optimal(1),
		}))
	}
	for i, h := range handles {
		r := waitResult(t, h)
		if r.Err != nil || r.Status != opt.StatusOptimal {
			t.Fatalf("job %d did not recover: %+v", i, r)
		}
	}
	st := s.Stats()
	if st.RetrySucceeded != 4 {
		t.Fatalf("RetrySucceeded = %d, want 4 (the odd job IDs)", st.RetrySucceeded)
	}
	if st.Panics != 0 {
		t.Fatalf("retried jobs still surfaced failures: %+v", st)
	}
}
