package serve

import "repro/internal/cnf"

// Canonical formula fingerprinting, reusing the splitmix64 discipline of the
// clause-exchange layer (internal/sat/share.go): every literal is hashed
// through the SplitMix64 finalizer and the hashes are combined by addition,
// both within a clause and across clauses. Addition is commutative — two
// copies of the same formula fingerprint identically regardless of clause
// order or of literal order inside a clause — but, unlike the XOR used by
// the exchange layer's per-clause dedup, it is duplicate-sensitive: a
// repeated literal (DIMACS parsing does not dedup) or a repeated clause
// changes the fingerprint instead of cancelling out. Cancellation would be
// fatal here, because two *different* formulas colliding on the cache key
// could serve a wrong UNSAT verdict (UNSAT carries no model to re-verify).
//
// The fingerprint is a cache key, not a proof of identity: a 64-bit collision
// between two different formulas is possible, so the cache additionally keys
// on the formula's shape (variable count, clause count, soft-weight sum) and
// re-verifies every cached model against the submitted formula before
// serving it (see Server.Submit).

// splitmix64 is the SplitMix64 finalizer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Fingerprint returns the canonical fingerprint of w: invariant under clause
// reordering and under literal reordering inside a clause, sensitive to
// weights, duplicate clauses, and the declared variable count.
func Fingerprint(w *cnf.WCNF) uint64 {
	var sum uint64
	for _, c := range w.Clauses {
		ch := splitmix64(uint64(len(c.Clause))) + splitmix64(uint64(c.Weight))
		for _, l := range c.Clause {
			ch += splitmix64(uint64(uint32(l)))
		}
		sum += splitmix64(ch)
	}
	return splitmix64(sum + splitmix64(uint64(w.NumVars)))
}

// formulaKey is the result-cache key: the canonical fingerprint hardened with
// the formula's shape. Options are deliberately absent — a verified OPTIMAL
// (or UNSATISFIABLE) verdict is a fact about the formula alone, so a result
// proved by one algorithm answers a resubmission under any other.
type formulaKey struct {
	fp      uint64
	numVars int
	clauses int
	softSum cnf.Weight
}

// jobKey identifies an in-flight submission for coalescing: the formula plus
// the caller's canonical options string. Unlike the cache, coalescing joins a
// *running* job, so the options must match — racing msu4 and racing the
// portfolio are different work even on the same formula.
type jobKey struct {
	formulaKey
	opts string
}

func keyFor(w *cnf.WCNF) formulaKey {
	return formulaKey{
		fp:      Fingerprint(w),
		numVars: w.NumVars,
		clauses: len(w.Clauses),
		softSum: w.SoftWeightSum(),
	}
}
