package serve

import (
	"errors"
	"time"
)

// Admission control: the per-client half of the server's trust boundary.
//
// QueueDepth protects the server globally, but one misbehaving client can
// fill the whole queue and starve everyone else. The admission layer adds
// two per-client bounds on top of it:
//
//   - a token-bucket rate limit (Config.RatePerSec / Config.Burst) on
//     submissions, counted per client whatever their disposition — fresh
//     run, cache hit, or coalesce — so even cheap resubmissions cannot be
//     used to hammer the server;
//   - an in-flight quota (Config.ClientQuota) on jobs a client has queued
//     or running. Cache hits and coalesced attaches do not count: they
//     occupy no worker slots.
//
// A shed submission fails with a *ShedError wrapping ErrRateLimited,
// ErrOverQuota, or ErrQueueFull and carrying the delay after which a retry
// can succeed; the HTTP daemon surfaces it as 429 + Retry-After. Every
// admission decision, cancellation, and completion is reported to the
// Config.Audit hook when one is installed.

// Shed reasons returned (wrapped in *ShedError) by Submit.
var (
	// ErrRateLimited: the client exceeded its sustained submission rate.
	ErrRateLimited = errors.New("serve: client rate limit exceeded")
	// ErrOverQuota: the client has too many jobs queued or running.
	ErrOverQuota = errors.New("serve: client in-flight quota exceeded")
)

// ShedError is an admission rejection: the wrapped reason (ErrQueueFull,
// ErrRateLimited, or ErrOverQuota — match with errors.Is) plus the delay
// after which a retry has a chance of being admitted.
type ShedError struct {
	Reason     error
	RetryAfter time.Duration
}

// Error returns the wrapped reason's message.
func (e *ShedError) Error() string { return e.Reason.Error() }

// Unwrap exposes the reason to errors.Is / errors.As.
func (e *ShedError) Unwrap() error { return e.Reason }

// RetryAfter extracts the retry hint from a Submit error; ok is false when
// the error carries none (ErrClosed, ErrBadSpec).
func RetryAfter(err error) (time.Duration, bool) {
	var se *ShedError
	if errors.As(err, &se) {
		return se.RetryAfter, true
	}
	return 0, false
}

// AuditEvent is one entry of the admission audit log: who asked for what and
// how the server disposed of it.
type AuditEvent struct {
	// Time is when the decision was made.
	Time time.Time
	// Client is the submitting client's identity (JobSpec.Client; empty when
	// the caller supplied none).
	Client string
	// Action is "submit" (admitted), "shed" (refused), "cancel" (a handle
	// withdrew its vote), or "result" (job completed).
	Action string
	// JobID identifies the job for admitted submissions and results; 0 for
	// sheds (no job was created).
	JobID uint64
	// Detail qualifies the action: the disposition of a submit ("run",
	// "cache-hit", "coalesced", with "degraded" appended when overload
	// shrank the slot grant), the reason of a shed, or the status line of a
	// result.
	Detail string
}

// clientState is one client's admission bookkeeping: the token bucket and
// the in-flight job count. Server.mu guards it.
type clientState struct {
	tokens   float64   // current bucket level
	last     time.Time // last refill instant
	inflight int       // jobs queued or running on this client's account
}

// client returns (creating on demand) the state for name. Caller holds s.mu.
func (s *Server) clientLocked(name string) *clientState {
	c, ok := s.clients[name]
	if !ok {
		c = &clientState{tokens: s.burst(), last: s.now()}
		s.clients[name] = c
	}
	return c
}

// burst returns the effective token-bucket capacity.
func (s *Server) burst() float64 {
	if s.cfg.Burst > 0 {
		return float64(s.cfg.Burst)
	}
	b := 2 * s.cfg.RatePerSec
	if b < 1 {
		b = 1
	}
	return b
}

// takeTokenLocked refills name's bucket to now and consumes one token. When
// the bucket is empty it reports the delay until the next token instead.
// Caller holds s.mu; rate limiting must be enabled.
func (s *Server) takeTokenLocked(name string) (time.Duration, bool) {
	c := s.clientLocked(name)
	now := s.now()
	burst := s.burst()
	c.tokens += now.Sub(c.last).Seconds() * s.cfg.RatePerSec
	if c.tokens > burst {
		c.tokens = burst
	}
	c.last = now
	if c.tokens < 1 {
		wait := time.Duration((1 - c.tokens) / s.cfg.RatePerSec * float64(time.Second))
		return wait, false
	}
	c.tokens--
	return 0, true
}

// releaseClientLocked returns one in-flight unit to name's account and drops
// the entry once it holds no state worth keeping (no in-flight jobs and a
// bucket that would refill to full anyway), so the client map cannot grow
// without bound under churning client identities. Caller holds s.mu.
func (s *Server) releaseClientLocked(name string) {
	c, ok := s.clients[name]
	if !ok {
		return
	}
	if c.inflight > 0 {
		c.inflight--
	}
	if c.inflight == 0 {
		refilled := c.tokens + s.now().Sub(c.last).Seconds()*s.cfg.RatePerSec
		if s.cfg.RatePerSec <= 0 || refilled >= s.burst() {
			delete(s.clients, name)
		}
	}
}

// audit delivers e to the audit hook. Never called with s.mu held: the hook
// is caller code and may call back into Stats or Submit.
func (s *Server) audit(e AuditEvent) {
	if s.cfg.Audit == nil {
		return
	}
	e.Time = s.now()
	s.cfg.Audit(e)
}

// shedRetryAfter is the retry hint for queue-full and over-quota sheds: the
// delay is governed by how long the jobs ahead will run, which the default
// timeout approximates when one is configured.
func (s *Server) shedRetryAfter() time.Duration {
	if d := s.cfg.DefaultTimeout / 4; d > time.Second {
		if d > time.Minute {
			return time.Minute
		}
		return d
	}
	return time.Second
}
