package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/cnf"
	"repro/internal/opt"
)

// fakeClock is an injectable clock for the token-bucket tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestRateLimitTokenBucket(t *testing.T) {
	s := New(Config{Workers: 1, RatePerSec: 1, Burst: 2, CacheEntries: -1})
	defer s.Close()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	s.now = clk.now

	spec := JobSpec{Formula: contradiction(), Client: "alice", Solve: optimal(1)}
	for i := range 2 {
		if _, err := s.Submit(spec); err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
	}
	_, err := s.Submit(spec)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	wait, ok := RetryAfter(err)
	if !ok || wait <= 0 || wait > time.Second {
		t.Fatalf("RetryAfter = %v %v, want (0, 1s]", wait, ok)
	}
	// Other clients have their own buckets.
	bob := spec
	bob.Client = "bob"
	if _, err := s.Submit(bob); err != nil {
		t.Fatalf("independent client throttled: %v", err)
	}
	// One second refills one token.
	clk.advance(time.Second)
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}
	if st := s.Stats(); st.RateLimited != 1 {
		t.Fatalf("RateLimited = %d, want 1", st.RateLimited)
	}
}

func TestClientQuota(t *testing.T) {
	s := New(Config{Workers: 1, ClientQuota: 1})
	defer s.Close()
	release := make(chan struct{})
	h := mustSubmit(t, s, JobSpec{Formula: contradiction(), OptsKey: "a1",
		Client: "alice", Solve: blocker(release)})

	_, err := s.Submit(JobSpec{Formula: contradiction(), OptsKey: "a2",
		Client: "alice", Solve: blocker(release)})
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("err = %v, want ErrOverQuota", err)
	}
	if _, ok := RetryAfter(err); !ok {
		t.Fatal("quota denial carries no retry hint")
	}
	// A coalescing resubmission occupies no workers, so it is exempt.
	h2, err := s.Submit(JobSpec{Formula: contradiction(), OptsKey: "a1",
		Client: "alice", Solve: blocker(release)})
	if err != nil {
		t.Fatalf("coalesced submission hit the quota: %v", err)
	}
	if h2.ID() != h.ID() {
		t.Fatal("expected a coalesced handle")
	}
	// Other clients are unaffected.
	h3, err := s.Submit(JobSpec{Formula: contradiction(), OptsKey: "b1",
		Client: "bob", Solve: blocker(release)})
	if err != nil {
		t.Fatalf("independent client denied: %v", err)
	}
	close(release)
	waitResult(t, h)
	waitResult(t, h3)
	// Completion released the quota unit.
	h4, err := s.Submit(JobSpec{Formula: contradiction(), OptsKey: "a3",
		Client: "alice", Solve: optimal(1)})
	if err != nil {
		t.Fatalf("quota not released on completion: %v", err)
	}
	waitResult(t, h4)
	if st := s.Stats(); st.QuotaDenied != 1 {
		t.Fatalf("QuotaDenied = %d, want 1", st.QuotaDenied)
	}
}

// TestDegradationUnderPressure drives the queue past the high-water mark and
// checks a portfolio-style submission is granted a shrunken slot count.
func TestDegradationUnderPressure(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 12, HighWater: 0.5, CacheEntries: -1})
	defer s.Close()
	release := make(chan struct{})
	var handles []*Handle
	// 4 running + 2 queued = load 6 = the high-water mark (0.5 * 12).
	for i := range 6 {
		handles = append(handles, mustSubmit(t, s, JobSpec{
			Formula: contradiction(), OptsKey: string(rune('a' + i)),
			Solve: blocker(release)}))
	}
	granted := make(chan int, 1)
	wide := mustSubmit(t, s, JobSpec{
		Formula: contradiction(), OptsKey: "wide", Slots: 4,
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			granted <- g.Slots
			return opt.Result{Status: opt.StatusUnknown, Cost: -1}
		},
	})
	// pressure = (6-6+1)/(12-6) = 1/6 → granted = round(4 · 5/6) = 3.
	if st := s.Stats(); st.Degraded != 1 {
		t.Fatalf("Degraded = %d, want 1", st.Degraded)
	}
	close(release)
	for _, h := range handles {
		waitResult(t, h)
	}
	if got := <-granted; got != 3 {
		t.Fatalf("granted %d slots under pressure, want 3", got)
	}
	waitResult(t, wide)

	// Below the high-water mark the full request is granted.
	granted2 := make(chan int, 1)
	calm := mustSubmit(t, s, JobSpec{
		Formula: contradiction(), OptsKey: "calm", Slots: 4,
		Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
			granted2 <- g.Slots
			return opt.Result{Status: opt.StatusUnknown, Cost: -1}
		},
	})
	waitResult(t, calm)
	if got := <-granted2; got != 4 {
		t.Fatalf("granted %d slots on an idle server, want 4", got)
	}
}

// TestAuditTrail checks the audit hook sees every admission decision,
// cancellation vote, and completion with the right client attribution.
func TestAuditTrail(t *testing.T) {
	var mu sync.Mutex
	var events []AuditEvent
	s := New(Config{Workers: 1, Audit: func(e AuditEvent) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}})
	defer s.Close()

	waitResult(t, mustSubmit(t, s, JobSpec{Formula: contradiction(),
		Client: "alice", Solve: optimal(1)}))
	// Resubmission: a cache hit, still audited.
	waitResult(t, mustSubmit(t, s, JobSpec{Formula: contradiction(),
		Client: "bob", Solve: optimal(1)}))
	// A cancellation vote — on a distinct formula, so alice's cached verdict
	// cannot answer it.
	other := cnf.NewWCNF(2)
	other.AddSoft(1, cnf.PosLit(1))
	other.AddSoft(1, cnf.NegLit(1))
	h := mustSubmit(t, s, JobSpec{Formula: other, OptsKey: "blocked",
		Client: "carol", Solve: blocker(nil)})
	h.Cancel()
	waitResult(t, h)

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(events)
		mu.Unlock()
		if n >= 6 || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	find := func(client, action, detail string) *AuditEvent {
		for i := range events {
			e := &events[i]
			if e.Client == client && e.Action == action &&
				(detail == "" || e.Detail == detail) {
				return e
			}
		}
		return nil
	}
	if e := find("alice", "submit", "run slots=1"); e == nil || e.JobID == 0 {
		t.Fatalf("no run-submit event for alice: %+v", events)
	}
	if find("alice", "result", "OPTIMAL") == nil {
		t.Fatalf("no result event for alice: %+v", events)
	}
	if find("bob", "submit", "cache-hit") == nil {
		t.Fatalf("no cache-hit event for bob: %+v", events)
	}
	if find("carol", "cancel", "last-vote") == nil {
		t.Fatalf("no cancel event for carol: %+v", events)
	}
	for _, e := range events {
		if e.Time.IsZero() {
			t.Fatalf("unstamped audit event: %+v", e)
		}
	}
}

func TestDrainLetsJobsFinish(t *testing.T) {
	s := New(Config{Workers: 1})
	release := make(chan struct{})
	started := make(chan struct{})
	h := mustSubmit(t, s, JobSpec{Formula: contradiction(), Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
		close(started)
		select {
		case <-release:
			return opt.Result{Status: opt.StatusOptimal, Cost: 1, LowerBound: 1,
				Model: cnf.Assignment{true}}
		case <-ctx.Done():
			return opt.Result{Status: opt.StatusUnknown, Cost: -1}
		}
	}})
	<-started

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Admissions stop immediately and the drain is observable in Stats.
	deadline := time.Now().Add(2 * time.Second)
	for !s.Stats().Draining {
		if time.Now().After(deadline) {
			t.Fatal("Stats.Draining never turned true")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(JobSpec{Formula: contradiction(), OptsKey: "late",
		Solve: optimal(1)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit during drain: %v, want ErrClosed", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v while a job was still running", err)
	case <-time.After(30 * time.Millisecond):
	}

	// The running job finishes normally — a real result, not a cancellation.
	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain never returned after the last job finished")
	}
	r := waitResult(t, h)
	if r.Status != opt.StatusOptimal || r.Cost != 1 {
		t.Fatalf("drained job result %+v, want the real optimum", r)
	}
}

func TestDrainDeadlineCancelsStragglers(t *testing.T) {
	s := New(Config{Workers: 1})
	started := make(chan struct{})
	h := mustSubmit(t, s, JobSpec{Formula: contradiction(), Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
		close(started)
		<-ctx.Done() // only cancellation ends this job
		return opt.Result{Status: opt.StatusUnknown, Cost: -1}
	}})
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	// The straggler was cancelled but still completed with a terminal result.
	r := waitResult(t, h)
	if r.Status != opt.StatusUnknown {
		t.Fatalf("straggler result %+v", r)
	}
}

// TestCloseRacesSubscriber closes the server while an Updates subscriber is
// attached mid-stream: the subscriber must receive a closed channel (its
// terminal signal) and the job a terminal result — no hang, no leak (the
// chaos suite's leak checker covers this file's tests too under -race).
func TestCloseRacesSubscriber(t *testing.T) {
	defer checkGoroutines(t)()
	s := New(Config{Workers: 1})
	started := make(chan struct{})
	h := mustSubmit(t, s, JobSpec{Formula: contradiction(), Solve: func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g Grant) opt.Result {
		close(started)
		shared.PublishUB(3, cnf.Assignment{true})
		<-ctx.Done()
		return opt.Result{Status: opt.StatusUnknown, Cost: -1}
	}})
	<-started
	sub := h.Subscribe()
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		for range sub {
		}
	}()
	s.Close()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber channel never closed after Close")
	}
	if _, done := h.Result(); !done {
		t.Fatal("job has no terminal result after Close")
	}
}
