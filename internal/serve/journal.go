package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sync"
	"time"

	"repro/internal/cnf"
	"repro/internal/store"
)

// Journal is the durable intent log of the serving layer: a submission is
// recorded (fsynced) before its job ID is handed back, and marked done
// (lazily — replay is idempotent, so losing a marker only costs a re-run)
// when it completes. After a restart, Pending lists the jobs the previous
// life accepted but never finished; Server.Recover re-enqueues them under
// their original IDs so a client polling GET /jobs/{id} across the restart
// sees its job finish instead of 404.
//
// A SolveFunc closure cannot be persisted, so each record carries the
// submission's opaque Payload (the maxsat layer's serialized options); the
// Recover callback rebuilds the closure from it. Everything recovered here
// is intent, not truth: a replayed job re-runs through the full solve (or
// hits the re-validated result cache) — the journal never supplies answers.
type Journal struct {
	mu      sync.Mutex
	log     *store.Log
	pending []RecoveredJob
	maxID   uint64
	dropped int
	faults  *Faults
}

// RecoveredJob is one incomplete submission recovered from the journal.
type RecoveredJob struct {
	ID      uint64
	Client  string
	OptsKey string
	Slots   int
	Timeout time.Duration
	Payload []byte
	Formula *cnf.WCNF
}

const (
	recSubmit byte = 10
	recDone   byte = 11
)

// OpenJournal opens (creating if absent) the job journal at path. dropped
// counts records the integrity layer rejected (and is folded into
// Stats.RecoveredRejected by the server). faults injects storage faults for
// chaos tests; production passes nil.
func OpenJournal(path string, faults *Faults) (*Journal, error) {
	l, recs, dropped, err := store.Open(path, store.Options{WriteHook: faults.storeWriteHook()})
	if err != nil {
		return nil, err
	}
	j := &Journal{log: l, dropped: dropped, faults: faults}
	byID := make(map[uint64]int) // id -> index into order of live submits
	var order []RecoveredJob
	completed := make(map[uint64]bool)
	for _, r := range recs {
		switch r.Kind {
		case recSubmit:
			rj, err := decodeSubmit(r.Payload)
			if err != nil {
				j.dropped++
				continue
			}
			if rj.ID > j.maxID {
				j.maxID = rj.ID
			}
			if _, dup := byID[rj.ID]; !dup {
				byID[rj.ID] = len(order)
				order = append(order, rj)
			}
		case recDone:
			id, n := binary.Uvarint(r.Payload)
			if n <= 0 {
				j.dropped++
				continue
			}
			completed[id] = true
			if id > j.maxID {
				j.maxID = id
			}
		default:
			j.dropped++
		}
	}
	for _, rj := range order {
		if !completed[rj.ID] {
			j.pending = append(j.pending, rj)
		}
	}
	if len(j.pending) < len(order) || j.dropped > 0 {
		j.compactLocked()
	}
	return j, nil
}

// MaxID returns the highest job ID the journal has seen; the server seeds
// its ID counter past it so IDs stay unique across restarts.
func (j *Journal) MaxID() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxID
}

// Pending returns the recovered incomplete submissions in original
// submission order.
func (j *Journal) Pending() []RecoveredJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]RecoveredJob(nil), j.pending...)
}

// record journals one admitted submission, fsynced before returning.
func (j *Journal) record(id uint64, w *cnf.WCNF, spec JobSpec) error {
	payload := encodeSubmit(RecoveredJob{
		ID: id, Client: spec.Client, OptsKey: spec.OptsKey,
		Slots: spec.Slots, Timeout: spec.Timeout, Payload: spec.Payload,
	}, w)
	j.mu.Lock()
	defer j.mu.Unlock()
	if id > j.maxID {
		j.maxID = id
	}
	if bit := j.faults.corruptStoreBit(j.log.Len()); bit >= 0 {
		payload[(bit/8)%len(payload)] ^= 1 << (bit % 8)
	}
	return j.log.Append(recSubmit, payload, true)
}

// markDone records a completion marker. Unsynced on purpose: the marker is
// an optimization (it keeps recovery from re-running a finished job), not a
// correctness requirement. Submit/done pairs grow the log monotonically at
// runtime; the next Open rewrites it down to whatever is still pending —
// runtime compaction would need the live in-flight picture this type does
// not have.
func (j *Journal) markDone(id uint64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.log.Append(recDone, binary.AppendUvarint(nil, id), false)
}

// compactLocked rewrites the log down to the pending submissions.
func (j *Journal) compactLocked() {
	recs := make([]store.Record, 0, len(j.pending))
	for _, rj := range j.pending {
		recs = append(recs, store.Record{Kind: recSubmit, Payload: encodeSubmit(rj, rj.Formula)})
	}
	j.log.Compact(recs) // best-effort; a failed compact leaves the old log
}

// Sync flushes batched done markers.
func (j *Journal) Sync() error { return j.log.Sync() }

// Close flushes and closes the journal.
func (j *Journal) Close() error { return j.log.Close() }

func encodeSubmit(rj RecoveredJob, w *cnf.WCNF) []byte {
	var fb bytes.Buffer
	cnf.WriteWCNF(&fb, w)
	buf := binary.AppendUvarint(nil, rj.ID)
	buf = binary.AppendVarint(buf, int64(rj.Timeout))
	buf = binary.AppendUvarint(buf, uint64(rj.Slots))
	for _, sec := range [][]byte{[]byte(rj.Client), []byte(rj.OptsKey), rj.Payload, fb.Bytes()} {
		buf = binary.AppendUvarint(buf, uint64(len(sec)))
		buf = append(buf, sec...)
	}
	return buf
}

func decodeSubmit(payload []byte) (RecoveredJob, error) {
	var rj RecoveredJob
	id, n := binary.Uvarint(payload)
	if n <= 0 {
		return rj, fmt.Errorf("serve: journal record truncated")
	}
	payload = payload[n:]
	to, n := binary.Varint(payload)
	if n <= 0 {
		return rj, fmt.Errorf("serve: journal record truncated")
	}
	payload = payload[n:]
	slots, n := binary.Uvarint(payload)
	if n <= 0 {
		return rj, fmt.Errorf("serve: journal record truncated")
	}
	payload = payload[n:]
	var secs [4][]byte
	for i := range secs {
		ln, k := binary.Uvarint(payload)
		if k <= 0 || ln > uint64(len(payload)-k) {
			return rj, fmt.Errorf("serve: journal record truncated")
		}
		secs[i] = payload[k : k+int(ln)]
		payload = payload[k+int(ln):]
	}
	w, err := cnf.ParseWCNF(bytes.NewReader(secs[3]))
	if err != nil {
		return rj, fmt.Errorf("serve: journal record formula: %w", err)
	}
	rj.ID = id
	rj.Timeout = time.Duration(to)
	rj.Slots = int(slots)
	rj.Client = string(secs[0])
	rj.OptsKey = string(secs[1])
	rj.Payload = append([]byte(nil), secs[2]...)
	rj.Formula = w
	return rj, nil
}
