package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string, opts Options) (*Log, []Record, int) {
	t.Helper()
	l, recs, dropped, err := Open(path, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", path, err)
	}
	return l, recs, dropped
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, recs, dropped := openT(t, path, Options{})
	if len(recs) != 0 || dropped != 0 {
		t.Fatalf("fresh log recovered %d records, dropped %d", len(recs), dropped)
	}
	want := [][]byte{[]byte("alpha"), {}, []byte("gamma gamma gamma")}
	for i, p := range want {
		if err := l.Append(byte(i), p, i%2 == 0); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, recs, dropped := openT(t, path, Options{})
	defer l2.Close()
	if dropped != 0 {
		t.Fatalf("clean log dropped %d records", dropped)
	}
	if len(recs) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.Kind != byte(i) || !bytes.Equal(r.Payload, want[i]) || r.Seq != uint64(i) {
			t.Fatalf("record %d = %+v, want kind=%d payload=%q", i, r, i, want[i])
		}
	}
	if l2.Len() != uint64(len(want)) {
		t.Fatalf("Len = %d, want %d", l2.Len(), len(want))
	}
}

// TestTornTailTruncated crash-writes a partial frame at the end and asserts
// recovery keeps the good prefix, drops the tail, and leaves a file the next
// Append extends cleanly.
func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := openT(t, path, Options{})
	for i := range 5 {
		if err := l.Append(1, []byte{byte(i)}, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn write: chop the file mid-frame.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, recs, dropped := openT(t, path, Options{})
	if len(recs) != 4 || dropped != 1 {
		t.Fatalf("after torn tail: %d records, %d dropped; want 4, 1", len(recs), dropped)
	}
	if err := l2.Append(2, []byte("post-crash"), true); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, dropped = openT(t, path, Options{})
	if len(recs) != 5 || dropped != 0 {
		t.Fatalf("after post-crash append: %d records, %d dropped; want 5, 0", len(recs), dropped)
	}
	if !bytes.Equal(recs[4].Payload, []byte("post-crash")) {
		t.Fatalf("appended record corrupted: %q", recs[4].Payload)
	}
}

// TestBitFlipDropsTail flips one payload bit in a middle record: the CRC must
// catch it, and recovery keeps only the records before the flip.
func TestBitFlipDropsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := openT(t, path, Options{})
	for i := range 4 {
		if err := l.Append(0, []byte(fmt.Sprintf("record-%d", i)), false); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside record 2's payload ("record-2"). Each frame is
	// 1 (len) + 1 (kind) + 8 (payload) + 4 (crc) = 14 bytes.
	data[len(magic)+2*14+5] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs, dropped := openT(t, path, Options{})
	defer l2.Close()
	if len(recs) != 2 {
		t.Fatalf("recovered %d records past a bit flip, want 2", len(recs))
	}
	if dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (the flipped record and the one after)", dropped)
	}
}

// TestWriteHookCorruption injects a bit flip through the fault hook and
// asserts the corrupted record is rejected at recovery.
func TestWriteHookCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	hook := func(seq uint64, frame []byte) ([]byte, bool) {
		if seq == 1 {
			mut := append([]byte(nil), frame...)
			mut[len(mut)/2] ^= 0x01
			return mut, false
		}
		return frame, false
	}
	l, _, _ := openT(t, path, Options{WriteHook: hook})
	for i := range 3 {
		if err := l.Append(0, []byte{byte(i), byte(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	_, recs, dropped := openT(t, path, Options{})
	if len(recs) != 1 || dropped != 2 {
		t.Fatalf("recovered %d, dropped %d; want 1, 2", len(recs), dropped)
	}
}

// TestWriteHookWedge simulates a crash after a torn write: half the frame
// lands, every later append vanishes, and recovery truncates back to the
// last whole record.
func TestWriteHookWedge(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	hook := func(seq uint64, frame []byte) ([]byte, bool) {
		if seq == 2 {
			return frame[:len(frame)/2], true
		}
		return frame, false
	}
	l, _, _ := openT(t, path, Options{WriteHook: hook})
	for i := range 5 {
		if err := l.Append(0, []byte{byte(i)}, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync on wedged log: %v", err)
	}
	l.Close()
	_, recs, dropped := openT(t, path, Options{})
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want the 2 before the crash", len(recs))
	}
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1 (the torn frame)", dropped)
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := openT(t, path, Options{})
	for i := range 10 {
		if err := l.Append(0, []byte{byte(i)}, false); err != nil {
			t.Fatal(err)
		}
	}
	keep := []Record{{Kind: 7, Payload: []byte("seven")}, {Kind: 9, Payload: []byte("nine")}}
	if err := l.Compact(keep); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	// The compacted log keeps accepting appends.
	if err := l.Append(1, []byte("post"), true); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, recs, dropped := openT(t, path, Options{})
	if dropped != 0 || len(recs) != 3 {
		t.Fatalf("after compact: %d records, %d dropped; want 3, 0", len(recs), dropped)
	}
	if recs[0].Kind != 7 || !bytes.Equal(recs[1].Payload, []byte("nine")) ||
		!bytes.Equal(recs[2].Payload, []byte("post")) {
		t.Fatalf("compacted contents wrong: %+v", recs)
	}
}

// TestCompactionProperty is the randomized round-trip property: any sequence
// of appends, compactions (keeping a random subset), and reopens preserves
// exactly the surviving records in order.
func TestCompactionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := range 20 {
		path := filepath.Join(t.TempDir(), fmt.Sprintf("log-%d", trial))
		l, _, _ := openT(t, path, Options{})
		var model []Record // what the log should hold
		add := func(n int) {
			for range n {
				p := make([]byte, rng.Intn(64))
				rng.Read(p)
				kind := byte(rng.Intn(4))
				if err := l.Append(kind, p, rng.Intn(2) == 0); err != nil {
					t.Fatal(err)
				}
				model = append(model, Record{Kind: kind, Payload: append([]byte(nil), p...)})
			}
		}
		add(rng.Intn(20) + 1)
		for range rng.Intn(3) {
			// Compact to a random subset.
			var keep []Record
			for _, r := range model {
				if rng.Intn(3) > 0 {
					keep = append(keep, r)
				}
			}
			if err := l.Compact(keep); err != nil {
				t.Fatal(err)
			}
			model = keep
			add(rng.Intn(10))
		}
		l.Close()
		l2, recs, dropped := openT(t, path, Options{})
		if dropped != 0 {
			t.Fatalf("trial %d: clean log dropped %d", trial, dropped)
		}
		if len(recs) != len(model) {
			t.Fatalf("trial %d: recovered %d records, want %d", trial, len(recs), len(model))
		}
		for i := range recs {
			if recs[i].Kind != model[i].Kind || !bytes.Equal(recs[i].Payload, model[i].Payload) {
				t.Fatalf("trial %d: record %d mismatch", trial, i)
			}
		}
		l2.Close()
	}
}

func TestBadMagicRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	if err := os.WriteFile(path, []byte("not a log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open accepted a file with bad magic")
	}
}

func TestClosedLogRejectsAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "log")
	l, _, _ := openT(t, path, Options{})
	l.Close()
	if err := l.Append(0, nil, false); err == nil {
		t.Fatal("Append on closed log succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}
