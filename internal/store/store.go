// Package store implements the durable substrate of the serving layer: an
// append-only log of CRC-framed records in a single file, with batched
// fsync, clean truncation of a torn tail on recovery, and compaction by
// atomic rewrite.
//
// The log knows nothing about what it stores — records are (kind, payload)
// pairs — so the verified-result store and the job journal in internal/serve
// share one implementation and one set of durability tests. The trust story
// is layered accordingly: this package guarantees only that what Open
// returns was written by Append (CRC-framed, tail-truncated); whether a
// recovered payload may be *served* is decided above, by re-validating it
// through the independent proof checker.
//
// On-disk format: an 8-byte magic header, then one frame per record:
//
//	uvarint payload length | kind byte | payload | crc32(IEEE) of kind+payload (4 bytes LE)
//
// A frame that is truncated (partial tail write at crash) or whose CRC does
// not match (bit rot) ends recovery: everything from the first bad frame on
// is dropped and the file is truncated back to the last good frame, so the
// next Append continues from a clean tail. The count of dropped-at-open
// frames is reported so the layer above can audit them.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

var magic = []byte("MXSTLG1\n")

// Record is one recovered log entry.
type Record struct {
	// Seq is the record's position in the log (0-based, counting from the
	// current file start; compaction renumbers).
	Seq uint64
	// Kind is the caller's record type tag.
	Kind byte
	// Payload is the record body. The slice is private to the caller.
	Payload []byte
}

// WriteHook intercepts one framed record on its way to disk; tests use it to
// inject storage faults. It receives the record's sequence number and the
// complete frame and returns the bytes actually written. Returning wedge
// true simulates a crash immediately after this (possibly mutated or
// truncated) write: every later Append is dropped, as if the process had
// died — recovery then has to cope with whatever made it to disk.
type WriteHook func(seq uint64, frame []byte) (write []byte, wedge bool)

// Options tunes a Log.
type Options struct {
	// SyncEvery batches fsyncs of unsynced appends: an Append(sync=false)
	// only fsyncs when this much time has passed since the last sync, so a
	// burst of low-value records (completion markers) costs one fsync per
	// interval instead of one each. Zero means unsynced appends are left to
	// the OS (a sync append, Sync, or Close flushes them). Appends issued
	// with sync=true always fsync immediately.
	SyncEvery time.Duration
	// WriteHook, when non-nil, intercepts every framed write (fault
	// injection; see WriteHook).
	WriteHook WriteHook
	// Now is the clock used for fsync batching; nil means time.Now.
	Now func() time.Time
}

// Log is an append-only record log backed by one file.
type Log struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	opts     Options
	seq      uint64 // next sequence number
	dirty    bool   // unsynced bytes outstanding
	lastSync time.Time
	wedged   bool // a WriteHook simulated a crash; all writes are dropped
}

// Open opens (creating if absent) the log at path and replays it: every
// well-framed record is returned in order, and a torn or corrupt tail is
// truncated away. dropped counts the frames discarded by that truncation —
// zero on a clean log.
func Open(path string, opts Options) (l *Log, recs []Record, dropped int, err error) {
	if opts.Now == nil {
		opts.Now = time.Now
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, 0, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	if st.Size() == 0 {
		if _, err := f.Write(magic); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		return &Log{f: f, path: path, opts: opts, lastSync: opts.Now()}, nil, 0, nil
	}

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		f.Close()
		return nil, nil, 0, fmt.Errorf("store: %s is not a record log (bad magic)", path)
	}
	recs, good, bad := scan(data[len(magic):])
	goodEnd := int64(len(magic)) + good
	if bad {
		// Torn or corrupt tail: cut it off so the next Append starts clean.
		// Count whole frames we can no longer trust; a partial frame counts
		// as one.
		dropped = countTail(data[goodEnd:])
		if err := f.Truncate(goodEnd); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, 0, err
		}
	}
	if _, err := f.Seek(goodEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, 0, err
	}
	return &Log{f: f, path: path, opts: opts, seq: uint64(len(recs)), lastSync: opts.Now()}, recs, dropped, nil
}

// scan parses frames from data, returning the records, the byte length of
// the well-framed prefix, and whether anything after it had to be dropped.
func scan(data []byte) (recs []Record, good int64, bad bool) {
	off := 0
	for off < len(data) {
		n, k := binary.Uvarint(data[off:])
		if k <= 0 || n > uint64(len(data)-off) {
			return recs, int64(off), true
		}
		frameLen := k + 1 + int(n) + 4
		if off+frameLen > len(data) {
			return recs, int64(off), true
		}
		kind := data[off+k]
		payload := data[off+k+1 : off+k+1+int(n)]
		stored := binary.LittleEndian.Uint32(data[off+k+1+int(n):])
		if crcOf(kind, payload) != stored {
			return recs, int64(off), true
		}
		recs = append(recs, Record{
			Seq:     uint64(len(recs)),
			Kind:    kind,
			Payload: append([]byte(nil), payload...),
		})
		off += frameLen
	}
	return recs, int64(off), false
}

// countTail estimates how many records the dropped tail held: frames whose
// length prefix still parses count individually; the final unparseable
// remnant counts as one.
func countTail(tail []byte) int {
	n := 0
	off := 0
	for off < len(tail) {
		ln, k := binary.Uvarint(tail[off:])
		if k <= 0 {
			return n + 1
		}
		frameLen := k + 1 + int(ln) + 4
		if ln > uint64(len(tail)) || off+frameLen > len(tail) {
			return n + 1
		}
		n++
		off += frameLen
	}
	if off < len(tail) {
		n++
	}
	return n
}

func crcOf(kind byte, payload []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte{kind})
	h.Write(payload)
	return h.Sum32()
}

func frame(kind byte, payload []byte) []byte {
	buf := binary.AppendUvarint(make([]byte, 0, len(payload)+16), uint64(len(payload)))
	buf = append(buf, kind)
	buf = append(buf, payload...)
	return binary.LittleEndian.AppendUint32(buf, crcOf(kind, payload))
}

// Append writes one record. With sync true the record is fsynced before
// Append returns — the durability promise for records whose acknowledgement
// implies persistence (journal submits, stored results). With sync false the
// fsync is batched per Options.SyncEvery; a crash may lose the record, which
// is only acceptable for records whose loss recovery tolerates (completion
// markers — replay is idempotent).
func (l *Log) Append(kind byte, payload []byte, sync bool) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("store: log %s is closed", l.path)
	}
	if l.wedged {
		return nil // simulated crash: the write is lost, like the process
	}
	buf := frame(kind, payload)
	seq := l.seq
	l.seq++
	wedge := false
	if l.opts.WriteHook != nil {
		buf, wedge = l.opts.WriteHook(seq, buf)
	}
	if len(buf) > 0 {
		if _, err := l.f.Write(buf); err != nil {
			return err
		}
	}
	if wedge {
		l.wedged = true
		return nil
	}
	l.dirty = true
	if sync || (l.opts.SyncEvery > 0 && l.opts.Now().Sub(l.lastSync) >= l.opts.SyncEvery) {
		return l.syncLocked()
	}
	return nil
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.dirty = false
	l.lastSync = l.opts.Now()
	return nil
}

// Sync flushes any batched appends to disk.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil || l.wedged {
		return nil
	}
	return l.syncLocked()
}

// Len returns the number of records appended to the current file (including
// those recovered at Open).
func (l *Log) Len() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Compact atomically replaces the log's contents with the given records: the
// replacement is written to a temporary file, fsynced, and renamed over the
// log, so a crash at any point leaves either the old log or the new one —
// never a mix. Sequence numbers restart from zero.
func (l *Log) Compact(records []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("store: log %s is closed", l.path)
	}
	if l.wedged {
		return nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(l.path), filepath.Base(l.path)+".compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after the successful rename
	if _, err := tmp.Write(magic); err != nil {
		tmp.Close()
		return err
	}
	for _, r := range records {
		if _, err := tmp.Write(frame(r.Kind, r.Payload)); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f.Close()
	l.f = f
	l.seq = uint64(len(records))
	l.dirty = false
	return nil
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	var err error
	if !l.wedged {
		err = l.syncLocked()
	}
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
