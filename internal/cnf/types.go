// Package cnf provides the propositional-logic substrate shared by every
// solver in this repository: variables, literals, clauses, CNF and WCNF
// formulas, and DIMACS I/O.
//
// Variables are 0-based integers. A literal packs a variable and a sign into
// a single int32 using the MiniSat convention: lit = 2*var for the positive
// literal and 2*var+1 for the negative one. DIMACS I/O converts to and from
// the external 1-based signed representation.
package cnf

import (
	"fmt"
	"slices"
)

// Var is a 0-based propositional variable index.
type Var int32

// Lit is a literal: a variable together with a sign.
// The zero-adjacent encoding (2*v, 2*v+1) makes literals usable directly as
// slice indices for watch lists and saves a pointer chase in hot loops.
type Lit int32

// LitUndef is a sentinel literal distinct from every valid literal.
const LitUndef Lit = -1

// VarUndef is a sentinel variable distinct from every valid variable.
const VarUndef Var = -1

// NewLit returns the literal for v, negated if neg is true.
func NewLit(v Var, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// PosLit returns the positive literal of v.
func PosLit(v Var) Lit { return Lit(v << 1) }

// NegLit returns the negative literal of v.
func NegLit(v Var) Lit { return Lit(v<<1) | 1 }

// Var returns the variable underlying l.
func (l Lit) Var() Var { return Var(l >> 1) }

// Neg returns the complement of l.
func (l Lit) Neg() Lit { return l ^ 1 }

// Sign reports whether l is a negative literal.
func (l Lit) Sign() bool { return l&1 == 1 }

// DIMACS returns the 1-based signed integer form of l.
func (l Lit) DIMACS() int {
	v := int(l.Var()) + 1
	if l.Sign() {
		return -v
	}
	return v
}

// FromDIMACS converts a non-zero 1-based signed DIMACS literal.
func FromDIMACS(i int) Lit {
	if i > 0 {
		return PosLit(Var(i - 1))
	}
	return NegLit(Var(-i - 1))
}

// String renders l in DIMACS form, e.g. "3" or "-7".
func (l Lit) String() string {
	if l == LitUndef {
		return "undef"
	}
	return fmt.Sprintf("%d", l.DIMACS())
}

// Clause is a disjunction of literals.
type Clause []Lit

// Clone returns an independent copy of c.
func (c Clause) Clone() Clause {
	out := make(Clause, len(c))
	copy(out, c)
	return out
}

// MaxVar returns the largest variable mentioned in c, or VarUndef if empty.
func (c Clause) MaxVar() Var {
	m := VarUndef
	for _, l := range c {
		if v := l.Var(); v > m {
			m = v
		}
	}
	return m
}

// Has reports whether c contains the literal l.
func (c Clause) Has(l Lit) bool {
	for _, x := range c {
		if x == l {
			return true
		}
	}
	return false
}

// String renders c as space-separated DIMACS literals.
func (c Clause) String() string {
	s := ""
	for i, l := range c {
		if i > 0 {
			s += " "
		}
		s += l.String()
	}
	return s
}

// Normalize sorts c, removes duplicate literals, and reports whether the
// clause is a tautology (contains a literal and its complement). The returned
// clause aliases c's backing array.
func (c Clause) Normalize() (Clause, bool) {
	if len(c) == 0 {
		return c, false
	}
	slices.Sort(c)
	out := c[:1]
	for i := 1; i < len(c); i++ {
		prev := out[len(out)-1]
		switch {
		case c[i] == prev:
			// duplicate, skip
		case c[i] == prev.Neg():
			return c, true
		default:
			out = append(out, c[i])
		}
	}
	return out, false
}

// Formula is a CNF formula: a clause list plus a variable count.
// NumVars may exceed the largest variable actually mentioned (DIMACS allows
// declaring unused variables).
type Formula struct {
	NumVars int
	Clauses []Clause
}

// NewFormula returns an empty formula over numVars variables.
func NewFormula(numVars int) *Formula {
	return &Formula{NumVars: numVars}
}

// AddClause appends a clause built from the given literals, growing NumVars
// as needed. The literals are copied.
func (f *Formula) AddClause(lits ...Lit) {
	c := make(Clause, len(lits))
	copy(c, lits)
	if mv := c.MaxVar(); int(mv)+1 > f.NumVars {
		f.NumVars = int(mv) + 1
	}
	f.Clauses = append(f.Clauses, c)
}

// NumClauses returns the number of clauses.
func (f *Formula) NumClauses() int { return len(f.Clauses) }

// Clone returns a deep copy of f.
func (f *Formula) Clone() *Formula {
	g := &Formula{NumVars: f.NumVars, Clauses: make([]Clause, len(f.Clauses))}
	for i, c := range f.Clauses {
		g.Clauses[i] = c.Clone()
	}
	return g
}

// MaxVar returns the largest variable mentioned in any clause, or VarUndef.
func (f *Formula) MaxVar() Var {
	m := VarUndef
	for _, c := range f.Clauses {
		if v := c.MaxVar(); v > m {
			m = v
		}
	}
	return m
}

// Assignment is a total truth assignment: Assignment[v] is the value of
// variable v.
type Assignment []bool

// Lit reports the truth value of l under a.
func (a Assignment) Lit(l Lit) bool {
	return a[l.Var()] != l.Sign()
}

// Satisfies reports whether clause c is satisfied under a.
func (a Assignment) Satisfies(c Clause) bool {
	for _, l := range c {
		if a.Lit(l) {
			return true
		}
	}
	return false
}

// CountSatisfied returns the number of clauses of f satisfied by a.
func (f *Formula) CountSatisfied(a Assignment) int {
	n := 0
	for _, c := range f.Clauses {
		if a.Satisfies(c) {
			n++
		}
	}
	return n
}

// CountFalsified returns the number of clauses of f falsified by a.
func (f *Formula) CountFalsified(a Assignment) int {
	return len(f.Clauses) - f.CountSatisfied(a)
}

// Eval reports whether a satisfies every clause of f.
func (f *Formula) Eval(a Assignment) bool {
	return f.CountSatisfied(a) == len(f.Clauses)
}
