package cnf

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ParseError describes a syntax error in a DIMACS stream.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("dimacs: line %d: %s", e.Line, e.Msg)
}

func parseErr(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// ParseDIMACS reads a DIMACS CNF formula. It tolerates comment lines anywhere,
// clauses spanning multiple lines, and clause/variable counts in the header
// that disagree with the body (the body wins for variables; a mismatched
// clause count is an error only if the body has more clauses than declared
// headroom allows — in practice we accept any count and record the larger).
func ParseDIMACS(r io.Reader) (*Formula, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	f := &Formula{}
	var cur Clause
	line := 0
	sawHeader := false
	declaredVars := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "p") {
			if sawHeader {
				return nil, parseErr(line, "duplicate p line")
			}
			fields := strings.Fields(text)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, parseErr(line, "malformed header %q (want \"p cnf <vars> <clauses>\")", text)
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return nil, parseErr(line, "bad variable count %q", fields[2])
			}
			if _, err := strconv.Atoi(fields[3]); err != nil {
				return nil, parseErr(line, "bad clause count %q", fields[3])
			}
			declaredVars = nv
			sawHeader = true
			continue
		}
		if !sawHeader {
			return nil, parseErr(line, "clause before p line")
		}
		for _, tok := range strings.Fields(text) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, parseErr(line, "bad literal %q", tok)
			}
			if v == 0 {
				f.Clauses = append(f.Clauses, cur)
				cur = nil
				continue
			}
			cur = append(cur, FromDIMACS(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: %w", err)
	}
	if !sawHeader {
		return nil, parseErr(line, "missing p line")
	}
	if len(cur) > 0 {
		// Trailing clause without terminating 0: accept it, matching common
		// solver behaviour.
		f.Clauses = append(f.Clauses, cur)
	}
	f.NumVars = declaredVars
	if mv := f.MaxVar(); int(mv)+1 > f.NumVars {
		f.NumVars = int(mv) + 1
	}
	return f, nil
}

// ParseDIMACSFile reads a DIMACS CNF file from disk.
func ParseDIMACSFile(path string) (*Formula, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return ParseDIMACS(fh)
}

// WriteDIMACS writes f in DIMACS CNF format.
func WriteDIMACS(w io.Writer, f *Formula) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)); err != nil {
		return err
	}
	for _, c := range f.Clauses {
		for _, l := range c {
			if _, err := fmt.Fprintf(bw, "%d ", l.DIMACS()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseWCNF reads a weighted DIMACS formula. Three dialects are supported:
//
//   - classic:  "p wcnf <vars> <clauses> [top]" header; each clause line
//     starts with a weight; weight == top (when given) marks hard clauses.
//   - plain cnf: parsed as soft unit-weight clauses (plain MaxSAT reading).
//   - MaxSAT Evaluation 2022: no header at all; hard clauses start with the
//     letter "h", soft clauses with their (positive) weight. Detected by the
//     first content line not being a "p" header.
func ParseWCNF(r io.Reader) (*WCNF, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	w := &WCNF{}
	line := 0
	sawHeader := false
	isWCNF := false
	is2022 := false
	var top int64 = -1
	declaredVars := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "c") {
			continue
		}
		if strings.HasPrefix(text, "p") {
			if is2022 {
				return nil, parseErr(line, "p line after headerless (2022-format) clauses")
			}
			if sawHeader {
				return nil, parseErr(line, "duplicate p line")
			}
			fields := strings.Fields(text)
			if len(fields) < 4 {
				return nil, parseErr(line, "malformed header %q", text)
			}
			switch fields[1] {
			case "wcnf":
				isWCNF = true
				if len(fields) == 5 {
					t, err := strconv.ParseInt(fields[4], 10, 64)
					if err != nil || t <= 0 {
						return nil, parseErr(line, "bad top weight %q", fields[4])
					}
					top = t
				} else if len(fields) != 4 {
					return nil, parseErr(line, "malformed wcnf header %q", text)
				}
			case "cnf":
				if len(fields) != 4 {
					return nil, parseErr(line, "malformed cnf header %q", text)
				}
			default:
				return nil, parseErr(line, "unknown format %q", fields[1])
			}
			nv, err := strconv.Atoi(fields[2])
			if err != nil || nv < 0 {
				return nil, parseErr(line, "bad variable count %q", fields[2])
			}
			declaredVars = nv
			sawHeader = true
			continue
		}
		if !sawHeader {
			// A clause before any header: the MaxSAT Evaluation 2022
			// headerless dialect.
			is2022 = true
			sawHeader = true
		}
		toks := strings.Fields(text)
		// WCNF clauses must fit on one line (weight prefix is ambiguous
		// otherwise); CNF clauses may span lines but we handle the common
		// one-clause-per-line case here and multi-line via the 0 terminator.
		var weight Weight = 1
		start := 0
		switch {
		case is2022:
			if toks[0] == "h" {
				weight = HardWeight
			} else {
				wt, err := strconv.ParseInt(toks[0], 10, 64)
				if err != nil || wt <= 0 {
					return nil, parseErr(line, "bad clause weight %q (2022 format: \"h\" or a positive weight)", toks[0])
				}
				weight = Weight(wt)
			}
			start = 1
		case isWCNF:
			wt, err := strconv.ParseInt(toks[0], 10, 64)
			if err != nil || wt < 0 {
				return nil, parseErr(line, "bad clause weight %q", toks[0])
			}
			if top > 0 && wt >= top {
				weight = HardWeight
			} else if wt == 0 {
				return nil, parseErr(line, "zero clause weight")
			} else {
				weight = Weight(wt)
			}
			start = 1
		}
		var cur Clause
		closed := false
		for _, tok := range toks[start:] {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, parseErr(line, "bad literal %q", tok)
			}
			if v == 0 {
				closed = true
				break
			}
			cur = append(cur, FromDIMACS(v))
		}
		if !closed {
			return nil, parseErr(line, "clause not terminated by 0")
		}
		w.Clauses = append(w.Clauses, WClause{Clause: cur, Weight: weight})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: %w", err)
	}
	if !sawHeader {
		return nil, parseErr(line, "missing p line")
	}
	w.NumVars = declaredVars
	for _, c := range w.Clauses {
		if mv := c.Clause.MaxVar(); int(mv)+1 > w.NumVars {
			w.NumVars = int(mv) + 1
		}
	}
	return w, nil
}

// ParseWCNFFile reads a WCNF (or CNF) file from disk.
func ParseWCNFFile(path string) (*WCNF, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	return ParseWCNF(fh)
}

// WriteWCNF2022 writes w in the MaxSAT Evaluation 2022 headerless format:
// hard clauses as "h <lits> 0", soft clauses as "<weight> <lits> 0".
// ParseWCNF reads the format back (the variable count round-trips through
// the literals actually used, since the format has no header to carry it).
func WriteWCNF2022(out io.Writer, w *WCNF) error {
	bw := bufio.NewWriter(out)
	for _, c := range w.Clauses {
		if c.Hard() {
			if _, err := fmt.Fprint(bw, "h "); err != nil {
				return err
			}
		} else {
			if _, err := fmt.Fprintf(bw, "%d ", int64(c.Weight)); err != nil {
				return err
			}
		}
		for _, l := range c.Clause {
			if _, err := fmt.Fprintf(bw, "%d ", l.DIMACS()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteWCNF writes w in classic "p wcnf" format. Hard clauses get weight
// top = 1 + total soft weight.
func WriteWCNF(out io.Writer, w *WCNF) error {
	bw := bufio.NewWriter(out)
	top := int64(w.SoftWeightSum()) + 1
	if _, err := fmt.Fprintf(bw, "p wcnf %d %d %d\n", w.NumVars, len(w.Clauses), top); err != nil {
		return err
	}
	for _, c := range w.Clauses {
		wt := int64(c.Weight)
		if c.Hard() {
			wt = top
		}
		if _, err := fmt.Fprintf(bw, "%d ", wt); err != nil {
			return err
		}
		for _, l := range c.Clause {
			if _, err := fmt.Fprintf(bw, "%d ", l.DIMACS()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, "0"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
