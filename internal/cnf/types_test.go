package cnf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	for v := Var(0); v < 100; v++ {
		pos := PosLit(v)
		neg := NegLit(v)
		if pos.Var() != v || neg.Var() != v {
			t.Fatalf("var roundtrip failed for %d", v)
		}
		if pos.Sign() || !neg.Sign() {
			t.Fatalf("sign wrong for %d", v)
		}
		if pos.Neg() != neg || neg.Neg() != pos {
			t.Fatalf("negation wrong for %d", v)
		}
		if NewLit(v, false) != pos || NewLit(v, true) != neg {
			t.Fatalf("NewLit wrong for %d", v)
		}
	}
}

func TestLitDIMACSRoundTrip(t *testing.T) {
	f := func(i int16) bool {
		if i == 0 {
			return true
		}
		v := int(i)
		return FromDIMACS(v).DIMACS() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLitString(t *testing.T) {
	if got := PosLit(0).String(); got != "1" {
		t.Errorf("PosLit(0) = %q, want 1", got)
	}
	if got := NegLit(2).String(); got != "-3" {
		t.Errorf("NegLit(2) = %q, want -3", got)
	}
	if got := LitUndef.String(); got != "undef" {
		t.Errorf("LitUndef = %q", got)
	}
}

func TestClauseNormalize(t *testing.T) {
	cases := []struct {
		in       []int
		wantOut  []int
		wantTaut bool
	}{
		{[]int{1, 2, 3}, []int{1, 2, 3}, false},
		{[]int{3, 1, 2, 1}, []int{1, 2, 3}, false},
		{[]int{1, -1}, nil, true},
		{[]int{2, 1, -2, 3}, nil, true},
		{[]int{5, 5, 5}, []int{5}, false},
		{[]int{}, []int{}, false},
		{[]int{-4, -4, 2}, []int{2, -4}, false},
	}
	for _, tc := range cases {
		c := make(Clause, len(tc.in))
		for i, x := range tc.in {
			c[i] = FromDIMACS(x)
		}
		out, taut := c.Normalize()
		if taut != tc.wantTaut {
			t.Errorf("Normalize(%v): taut = %v, want %v", tc.in, taut, tc.wantTaut)
			continue
		}
		if taut {
			continue
		}
		if len(out) != len(tc.wantOut) {
			t.Errorf("Normalize(%v) = %v (len %d), want %v", tc.in, out, len(out), tc.wantOut)
			continue
		}
		for i, x := range tc.wantOut {
			if out[i] != FromDIMACS(x) {
				t.Errorf("Normalize(%v)[%d] = %v, want %d", tc.in, i, out[i], x)
			}
		}
	}
}

func TestNormalizeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		n := rng.Intn(12)
		c := make(Clause, n)
		for i := range c {
			c[i] = NewLit(Var(rng.Intn(5)), rng.Intn(2) == 0)
		}
		orig := c.Clone()
		out, taut := c.Normalize()
		if taut {
			// must contain complementary pair
			found := false
			for i := range orig {
				for j := range orig {
					if orig[i] == orig[j].Neg() {
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("claimed tautology without complementary pair: %v", orig)
			}
			continue
		}
		// sorted, no dups, same literal set
		for i := 1; i < len(out); i++ {
			if out[i] <= out[i-1] {
				t.Fatalf("not strictly sorted: %v", out)
			}
		}
		for _, l := range orig {
			if !out.Has(l) {
				t.Fatalf("literal %v lost: %v -> %v", l, orig, out)
			}
		}
		for _, l := range out {
			if !orig.Has(l) {
				t.Fatalf("literal %v invented: %v -> %v", l, orig, out)
			}
		}
	}
}

func TestFormulaAddClauseGrowsVars(t *testing.T) {
	f := NewFormula(0)
	f.AddClause(FromDIMACS(3), FromDIMACS(-7))
	if f.NumVars != 7 {
		t.Fatalf("NumVars = %d, want 7", f.NumVars)
	}
	if f.NumClauses() != 1 {
		t.Fatalf("NumClauses = %d, want 1", f.NumClauses())
	}
}

func TestAssignmentEval(t *testing.T) {
	f := NewFormula(3)
	f.AddClause(FromDIMACS(1), FromDIMACS(2))
	f.AddClause(FromDIMACS(-1), FromDIMACS(3))
	a := Assignment{true, false, true}
	if !f.Eval(a) {
		t.Fatal("assignment should satisfy formula")
	}
	if got := f.CountSatisfied(a); got != 2 {
		t.Fatalf("CountSatisfied = %d, want 2", got)
	}
	b := Assignment{true, false, false}
	if f.Eval(b) {
		t.Fatal("assignment should not satisfy formula")
	}
	if got := f.CountFalsified(b); got != 1 {
		t.Fatalf("CountFalsified = %d, want 1", got)
	}
}

func TestFormulaClone(t *testing.T) {
	f := NewFormula(2)
	f.AddClause(FromDIMACS(1), FromDIMACS(-2))
	g := f.Clone()
	g.Clauses[0][0] = FromDIMACS(2)
	if f.Clauses[0][0] != FromDIMACS(1) {
		t.Fatal("clone aliases original")
	}
}

func TestWCNFBasics(t *testing.T) {
	w := NewWCNF(0)
	w.AddHard(FromDIMACS(1), FromDIMACS(2))
	w.AddSoft(3, FromDIMACS(-1))
	w.AddSoft(1, FromDIMACS(-2))
	if w.NumHard() != 1 || w.NumSoft() != 2 {
		t.Fatalf("hard/soft = %d/%d, want 1/2", w.NumHard(), w.NumSoft())
	}
	if w.SoftWeightSum() != 4 {
		t.Fatalf("SoftWeightSum = %d, want 4", w.SoftWeightSum())
	}
	if !w.Weighted() {
		t.Fatal("should be weighted")
	}
	cost, hardOK := w.CostOf(Assignment{true, false})
	if !hardOK || cost != 3 {
		t.Fatalf("CostOf = %d,%v want 3,true", cost, hardOK)
	}
	cost, hardOK = w.CostOf(Assignment{false, false})
	if hardOK {
		t.Fatalf("hard clause should be violated, cost=%d", cost)
	}
}

func TestWCNFSoftWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddSoft(0) should panic")
		}
	}()
	w := NewWCNF(1)
	w.AddSoft(0, FromDIMACS(1))
}

func TestFromFormula(t *testing.T) {
	f := NewFormula(2)
	f.AddClause(FromDIMACS(1))
	f.AddClause(FromDIMACS(-1), FromDIMACS(2))
	w := FromFormula(f)
	if w.NumSoft() != 2 || w.NumHard() != 0 {
		t.Fatalf("FromFormula soft/hard = %d/%d", w.NumSoft(), w.NumHard())
	}
	if w.Weighted() {
		t.Fatal("plain MaxSAT lift must be unweighted")
	}
}
