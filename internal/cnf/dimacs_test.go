package cnf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestParseDIMACSBasic(t *testing.T) {
	in := `c a comment
p cnf 3 2
1 -2 0
2 3 0
`
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || f.NumClauses() != 2 {
		t.Fatalf("got %d vars %d clauses", f.NumVars, f.NumClauses())
	}
	if f.Clauses[0][0] != FromDIMACS(1) || f.Clauses[0][1] != FromDIMACS(-2) {
		t.Fatalf("clause 0 = %v", f.Clauses[0])
	}
}

func TestParseDIMACSMultiLineClause(t *testing.T) {
	in := "p cnf 4 1\n1 2\n3 -4 0\n"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 1 || len(f.Clauses[0]) != 4 {
		t.Fatalf("got %v", f.Clauses)
	}
}

func TestParseDIMACSBodyGrowsVars(t *testing.T) {
	in := "p cnf 1 1\n5 0\n"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 5 {
		t.Fatalf("NumVars = %d, want 5", f.NumVars)
	}
}

func TestParseDIMACSErrors(t *testing.T) {
	cases := []string{
		"1 2 0\n",                // clause before header
		"p cnf x 2\n",            // bad var count
		"p cnf 2 x\n",            // bad clause count
		"p dnf 2 2\n",            // wrong format
		"p cnf 2 1\n1 zero 0\n",  // bad literal
		"",                       // empty
		"p cnf 1 1\np cnf 1 1\n", // duplicate header
		"c only a comment\n",     // missing header
		"p cnf 1\n",              // short header
		"p cnf 1 1 1 1\n1 0\n",   // long header
	}
	for _, in := range cases {
		if _, err := ParseDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestParseDIMACSTrailingClause(t *testing.T) {
	in := "p cnf 2 1\n1 2"
	f, err := ParseDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumClauses() != 1 {
		t.Fatalf("trailing clause not accepted: %v", f.Clauses)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		f := NewFormula(1 + rng.Intn(20))
		nc := rng.Intn(30)
		for i := 0; i < nc; i++ {
			var c []Lit
			for j := 0; j <= rng.Intn(5); j++ {
				c = append(c, NewLit(Var(rng.Intn(f.NumVars)), rng.Intn(2) == 0))
			}
			f.AddClause(c...)
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, f); err != nil {
			t.Fatal(err)
		}
		g, err := ParseDIMACS(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumVars != f.NumVars || g.NumClauses() != f.NumClauses() {
			t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
				f.NumVars, f.NumClauses(), g.NumVars, g.NumClauses())
		}
		for i := range f.Clauses {
			if len(f.Clauses[i]) != len(g.Clauses[i]) {
				t.Fatalf("clause %d length mismatch", i)
			}
			for j := range f.Clauses[i] {
				if f.Clauses[i][j] != g.Clauses[i][j] {
					t.Fatalf("clause %d literal %d mismatch", i, j)
				}
			}
		}
	}
}

func TestParseWCNFClassic(t *testing.T) {
	in := `c weighted
p wcnf 3 3 10
10 1 2 0
3 -1 0
1 -2 3 0
`
	w, err := ParseWCNF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.NumVars != 3 || w.NumClauses() != 3 {
		t.Fatalf("got %d vars %d clauses", w.NumVars, w.NumClauses())
	}
	if !w.Clauses[0].Hard() {
		t.Fatal("clause 0 should be hard")
	}
	if w.Clauses[1].Weight != 3 || w.Clauses[2].Weight != 1 {
		t.Fatalf("weights = %d,%d", w.Clauses[1].Weight, w.Clauses[2].Weight)
	}
}

func TestParseWCNFNoTop(t *testing.T) {
	in := "p wcnf 2 2\n2 1 0\n5 -1 2 0\n"
	w, err := ParseWCNF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.NumHard() != 0 {
		t.Fatal("no top weight: all clauses soft")
	}
	if w.Clauses[1].Weight != 5 {
		t.Fatalf("weight = %d, want 5", w.Clauses[1].Weight)
	}
}

func TestParseWCNFPlainCNF(t *testing.T) {
	in := "p cnf 2 2\n1 2 0\n-1 -2 0\n"
	w, err := ParseWCNF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.NumSoft() != 2 || w.Weighted() {
		t.Fatalf("plain cnf should read as unit-weight soft: %+v", w)
	}
}

func TestParseWCNFErrors(t *testing.T) {
	cases := []string{
		"p wcnf 2 1 10\nx 1 0\n", // bad weight
		"p wcnf 2 1 10\n0 1 0\n", // zero weight
		"p wcnf 2 1 10\n1 1\n",   // unterminated clause
		"p wcnf 2 1 0\n1 1 0\n",  // bad top
		"1 1 0\np wcnf 2 1 10\n", // header after 2022-format clauses
		"p wcnf 2 1 10 extra\n",  // long header
		"h 1\n",                  // 2022: unterminated clause
		"0 1 0\n",                // 2022: zero weight
		"-3 1 0\n",               // 2022: negative weight
		"w 1 0\n",                // 2022: bad hard marker
	}
	for _, in := range cases {
		if _, err := ParseWCNF(strings.NewReader(in)); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func TestWCNFRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 30; iter++ {
		w := NewWCNF(1 + rng.Intn(10))
		for i := 0; i < rng.Intn(20); i++ {
			var c []Lit
			for j := 0; j <= rng.Intn(4); j++ {
				c = append(c, NewLit(Var(rng.Intn(w.NumVars)), rng.Intn(2) == 0))
			}
			if rng.Intn(3) == 0 {
				w.AddHard(c...)
			} else {
				w.AddSoft(Weight(1+rng.Intn(5)), c...)
			}
		}
		var buf bytes.Buffer
		if err := WriteWCNF(&buf, w); err != nil {
			t.Fatal(err)
		}
		g, err := ParseWCNF(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g.NumClauses() != w.NumClauses() || g.NumHard() != w.NumHard() {
			t.Fatalf("round trip mismatch: %d/%d vs %d/%d clauses/hard",
				w.NumClauses(), w.NumHard(), g.NumClauses(), g.NumHard())
		}
		for i := range w.Clauses {
			if w.Clauses[i].Hard() != g.Clauses[i].Hard() {
				t.Fatalf("clause %d hardness mismatch", i)
			}
			if !w.Clauses[i].Hard() && w.Clauses[i].Weight != g.Clauses[i].Weight {
				t.Fatalf("clause %d weight mismatch", i)
			}
		}
	}
}

func TestParseErrorMessage(t *testing.T) {
	_, err := ParseDIMACS(strings.NewReader("p cnf 2 1\n1 bad 0\n"))
	if err == nil {
		t.Fatal("want error")
	}
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("want *ParseError, got %T", err)
	}
	if pe.Line != 2 {
		t.Fatalf("line = %d, want 2", pe.Line)
	}
	if !strings.Contains(pe.Error(), "line 2") {
		t.Fatalf("error message %q lacks line info", pe.Error())
	}
}

// TestParserNeverPanics mutates valid DIMACS bytes randomly and checks the
// parsers fail gracefully (error or success, never a panic or hang).
func TestParserNeverPanics(t *testing.T) {
	base := []byte("p cnf 4 3\n1 -2 0\n2 3 -4 0\n-1 4 0\n")
	baseW := []byte("p wcnf 3 2 10\n10 1 2 0\n3 -1 0\n")
	rng := rand.New(rand.NewSource(2718))
	chars := []byte("pcnfw 0123456789-\n\tx")
	for iter := 0; iter < 2000; iter++ {
		src := base
		if iter%2 == 1 {
			src = baseW
		}
		mut := append([]byte{}, src...)
		for k := 0; k < 1+rng.Intn(6); k++ {
			pos := rng.Intn(len(mut))
			switch rng.Intn(3) {
			case 0:
				mut[pos] = chars[rng.Intn(len(chars))]
			case 1:
				mut = append(mut[:pos], mut[pos+1:]...)
			case 2:
				mut = append(mut[:pos], append([]byte{chars[rng.Intn(len(chars))]}, mut[pos:]...)...)
			}
			if len(mut) == 0 {
				break
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", mut, r)
				}
			}()
			_, _ = ParseDIMACS(bytes.NewReader(mut))
			_, _ = ParseWCNF(bytes.NewReader(mut))
		}()
	}
}

// TestParseWCNF2022 parses the published example of the MaxSAT Evaluation
// 2022 format description: headerless, "h"-prefixed hard clauses, weight-
// prefixed soft clauses.
func TestParseWCNF2022(t *testing.T) {
	in := `c This is a comment
c MaxSAT Evaluation 2022 input format example
h 1 2 0
h -1 3 0
1 -3 0
2 4 0
`
	w, err := ParseWCNF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.NumVars != 4 || w.NumClauses() != 4 {
		t.Fatalf("got %d vars %d clauses, want 4/4", w.NumVars, w.NumClauses())
	}
	if w.NumHard() != 2 || w.NumSoft() != 2 {
		t.Fatalf("got %d hard %d soft, want 2/2", w.NumHard(), w.NumSoft())
	}
	if !w.Clauses[0].Hard() || !w.Clauses[1].Hard() {
		t.Fatal("h-prefixed clauses must be hard")
	}
	if w.Clauses[2].Weight != 1 || w.Clauses[3].Weight != 2 {
		t.Fatalf("soft weights = %d,%d, want 1,2", w.Clauses[2].Weight, w.Clauses[3].Weight)
	}
	if got := w.Clauses[1].Clause; len(got) != 2 || got[0] != FromDIMACS(-1) || got[1] != FromDIMACS(3) {
		t.Fatalf("clause 1 literals wrong: %v", got)
	}
}

// TestParseWCNF2022Unweighted checks the unweighted 2022 reading: every
// soft clause written with weight 1.
func TestParseWCNF2022Unweighted(t *testing.T) {
	in := "h 1 -2 0\n1 2 0\n1 -1 0\n"
	w, err := ParseWCNF(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if w.Weighted() {
		t.Fatal("unit-weight 2022 instance must read as unweighted")
	}
	if w.NumHard() != 1 || w.NumSoft() != 2 {
		t.Fatalf("got %d hard %d soft, want 1/2", w.NumHard(), w.NumSoft())
	}
}

// TestWCNF2022RoundTrip writes random instances in the 2022 format and
// parses them back; clauses, weights and hardness must survive. Variable
// counts round-trip through the literals used (the format has no header),
// so instances are built with their highest variable mentioned.
func TestWCNF2022RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for iter := 0; iter < 30; iter++ {
		w := NewWCNF(1 + rng.Intn(10))
		for i := 0; i < 1+rng.Intn(20); i++ {
			var c []Lit
			for j := 0; j <= rng.Intn(4); j++ {
				c = append(c, NewLit(Var(rng.Intn(w.NumVars)), rng.Intn(2) == 0))
			}
			if rng.Intn(3) == 0 {
				w.AddHard(c...)
			} else {
				w.AddSoft(Weight(1+rng.Intn(5)), c...)
			}
		}
		// Pin the variable count into the instance for the round trip.
		w.AddHard(PosLit(Var(w.NumVars-1)), NegLit(Var(w.NumVars-1)))
		var buf bytes.Buffer
		if err := WriteWCNF2022(&buf, w); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(buf.String(), "p ") {
			t.Fatal("2022 format must not contain a header")
		}
		g, err := ParseWCNF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: %v\n%s", iter, err, buf.String())
		}
		if g.NumVars != w.NumVars || g.NumClauses() != w.NumClauses() {
			t.Fatalf("iter %d: size mismatch %d/%d vs %d/%d",
				iter, w.NumVars, w.NumClauses(), g.NumVars, g.NumClauses())
		}
		for i := range w.Clauses {
			if w.Clauses[i].Weight != g.Clauses[i].Weight {
				t.Fatalf("iter %d: clause %d weight %d vs %d",
					iter, i, w.Clauses[i].Weight, g.Clauses[i].Weight)
			}
			if len(w.Clauses[i].Clause) != len(g.Clauses[i].Clause) {
				t.Fatalf("iter %d: clause %d length mismatch", iter, i)
			}
			for j, l := range w.Clauses[i].Clause {
				if g.Clauses[i].Clause[j] != l {
					t.Fatalf("iter %d: clause %d literal %d mismatch", iter, i, j)
				}
			}
		}
	}
}
