package cnf

// Weight is a clause weight. HardWeight marks clauses that must be satisfied
// (partial MaxSAT); any other positive value is a soft-clause weight.
type Weight int64

// HardWeight marks a hard clause in a WCNF formula.
const HardWeight Weight = -1

// WClause is a weighted clause.
type WClause struct {
	Clause Clause
	Weight Weight
}

// Hard reports whether the clause is hard.
func (w WClause) Hard() bool { return w.Weight == HardWeight }

// WCNF is a weighted partial MaxSAT formula.
//
// Plain MaxSAT corresponds to every clause soft with weight 1 and no hard
// clauses; partial MaxSAT adds hard clauses; weighted variants use arbitrary
// positive soft weights.
type WCNF struct {
	NumVars int
	Clauses []WClause
}

// NewWCNF returns an empty weighted formula over numVars variables.
func NewWCNF(numVars int) *WCNF {
	return &WCNF{NumVars: numVars}
}

// AddHard appends a hard clause (copying the literals).
func (w *WCNF) AddHard(lits ...Lit) {
	w.add(HardWeight, lits)
}

// AddSoft appends a soft clause of the given weight (copying the literals).
// Weights must be positive; AddSoft panics otherwise, since a zero or
// negative soft weight has no MaxSAT meaning and always indicates a caller
// bug.
func (w *WCNF) AddSoft(weight Weight, lits ...Lit) {
	if weight <= 0 {
		panic("cnf: soft clause weight must be positive")
	}
	w.add(weight, lits)
}

func (w *WCNF) add(weight Weight, lits []Lit) {
	c := make(Clause, len(lits))
	copy(c, lits)
	if mv := c.MaxVar(); int(mv)+1 > w.NumVars {
		w.NumVars = int(mv) + 1
	}
	w.Clauses = append(w.Clauses, WClause{Clause: c, Weight: weight})
}

// NumClauses returns the total number of clauses.
func (w *WCNF) NumClauses() int { return len(w.Clauses) }

// NumSoft returns the number of soft clauses.
func (w *WCNF) NumSoft() int {
	n := 0
	for _, c := range w.Clauses {
		if !c.Hard() {
			n++
		}
	}
	return n
}

// NumHard returns the number of hard clauses.
func (w *WCNF) NumHard() int { return len(w.Clauses) - w.NumSoft() }

// SoftWeightSum returns the total weight of all soft clauses.
func (w *WCNF) SoftWeightSum() Weight {
	var s Weight
	for _, c := range w.Clauses {
		if !c.Hard() {
			s += c.Weight
		}
	}
	return s
}

// Weighted reports whether any soft clause has weight different from 1.
func (w *WCNF) Weighted() bool {
	for _, c := range w.Clauses {
		if !c.Hard() && c.Weight != 1 {
			return true
		}
	}
	return false
}

// Clone returns a deep copy.
func (w *WCNF) Clone() *WCNF {
	out := &WCNF{NumVars: w.NumVars, Clauses: make([]WClause, len(w.Clauses))}
	for i, c := range w.Clauses {
		out.Clauses[i] = WClause{Clause: c.Clause.Clone(), Weight: c.Weight}
	}
	return out
}

// Hards returns the hard clauses as a plain formula.
func (w *WCNF) Hards() *Formula {
	f := NewFormula(w.NumVars)
	for _, c := range w.Clauses {
		if c.Hard() {
			f.Clauses = append(f.Clauses, c.Clause.Clone())
		}
	}
	return f
}

// FromFormula lifts a plain CNF formula into the weighted representation
// with every clause soft and weight 1 — the plain MaxSAT reading used
// throughout the DATE 2008 paper.
func FromFormula(f *Formula) *WCNF {
	w := NewWCNF(f.NumVars)
	for _, c := range f.Clauses {
		w.Clauses = append(w.Clauses, WClause{Clause: c.Clone(), Weight: 1})
	}
	return w
}

// CostOf returns the total weight of soft clauses falsified by a, and
// whether all hard clauses are satisfied.
func (w *WCNF) CostOf(a Assignment) (Weight, bool) {
	var cost Weight
	hardOK := true
	for _, c := range w.Clauses {
		if a.Satisfies(c.Clause) {
			continue
		}
		if c.Hard() {
			hardOK = false
		} else {
			cost += c.Weight
		}
	}
	return cost, hardOK
}
