package circuit

import "fmt"

// Sequential is a synchronous sequential circuit described by its
// combinational core: the core's first NumState inputs are the current
// state, the rest are free inputs; the core's first NumState outputs are
// the next state, the rest are observable outputs (properties).
type Sequential struct {
	Core     *Circuit
	NumState int
	// Init gives the reset value of each state bit.
	Init []bool
}

// NewSequential validates and wraps a combinational core.
func NewSequential(core *Circuit, numState int, init []bool) *Sequential {
	if numState > core.NumInputs() || numState > core.NumOutputs() {
		panic("circuit: state bits exceed core interface")
	}
	if len(init) != numState {
		panic(fmt.Sprintf("circuit: init has %d bits, want %d", len(init), numState))
	}
	return &Sequential{Core: core, NumState: numState, Init: init}
}

// Unroll builds the k-step time-expansion of the sequential circuit
// (bounded model checking): state bits start at Init, each frame's free
// inputs become fresh primary inputs, and every frame's observable outputs
// become primary outputs of the unrolling (frame-major order).
func (s *Sequential) Unroll(k int) *Circuit {
	u := New()
	state := make([]int, s.NumState)
	for i, b := range s.Init {
		state[i] = u.Const(b)
	}
	freeIns := s.Core.NumInputs() - s.NumState
	obsOuts := s.Core.NumOutputs() - s.NumState
	for frame := 0; frame < k; frame++ {
		drivers := make([]int, s.Core.NumInputs())
		copy(drivers, state)
		for i := 0; i < freeIns; i++ {
			drivers[s.NumState+i] = u.NewInput()
		}
		outs := Embed(u, s.Core, drivers)
		copy(state, outs[:s.NumState])
		for i := 0; i < obsOuts; i++ {
			u.MarkOutput(outs[s.NumState+i])
		}
	}
	return u
}

// Counter builds an n-bit synchronous counter with an overflow property
// output: the observable output is true iff the counter value equals
// 2^n - 1. Starting from zero, the property first holds at step 2^n - 1,
// so Unroll(k) with the property asserted at every frame is satisfiable iff
// k >= 2^n - 1 — a classic BMC reachability family with a controllable
// unsatisfiability depth.
func Counter(n int) *Sequential {
	c := New()
	state := make([]int, n)
	for i := range state {
		state[i] = c.NewInput()
	}
	// increment: next = state + 1
	carry := c.Const(true)
	next := make([]int, n)
	for i := 0; i < n; i++ {
		next[i] = c.Xor(state[i], carry)
		carry = c.And(state[i], carry)
	}
	allOnes := c.And(state...)
	for _, nx := range next {
		c.MarkOutput(nx)
	}
	c.MarkOutput(allOnes)
	return NewSequential(c, n, make([]bool, n))
}

// ShiftRegisterEqual builds a w-bit shift register whose property output is
// true iff the register contents equal the all-ones pattern; the register
// shifts in one free input per cycle. Reaching all-ones needs w consecutive
// one-inputs, so the property is unreachable before depth w.
func ShiftRegisterEqual(w int) *Sequential {
	c := New()
	state := make([]int, w)
	for i := range state {
		state[i] = c.NewInput()
	}
	in := c.NewInput()
	// shift: next[0] = in, next[i] = state[i-1]
	next := make([]int, w)
	next[0] = c.Buf(in)
	for i := 1; i < w; i++ {
		next[i] = c.Buf(state[i-1])
	}
	prop := c.And(state...)
	for _, nx := range next {
		c.MarkOutput(nx)
	}
	c.MarkOutput(prop)
	return NewSequential(c, w, make([]bool, w))
}
