package circuit

import (
	"fmt"
	"math/rand"
)

// Fault describes a single design error injected into a circuit, in the
// style of the design-debugging literature the paper builds on (Safarpour
// et al., FMCAD 2007): a gate is replaced by a different function or stuck
// at a constant.
type Fault struct {
	Gate int      // gate id in the faulty circuit
	Was  GateType // original function
	Now  GateType // injected function
}

// String renders the fault.
func (f Fault) String() string {
	return fmt.Sprintf("gate %d: %v -> %v", f.Gate, f.Was, f.Now)
}

// wrongGateFor returns a plausible replacement function for the given gate,
// preserving arity so the netlist stays well-formed.
func wrongGateFor(rng *rand.Rand, t GateType, arity int) GateType {
	var candidates []GateType
	switch {
	case t == Input, t == Const0, t == Const1:
		return t // not substitutable
	case arity == 1:
		candidates = []GateType{Buf, Not, Const0, Const1}
	case t == Xor || t == Xnor || arity == 2:
		candidates = []GateType{And, Or, Nand, Nor, Xor, Xnor, Const0, Const1}
	default:
		candidates = []GateType{And, Or, Nand, Nor, Const0, Const1}
	}
	for {
		nt := candidates[rng.Intn(len(candidates))]
		if nt != t {
			return nt
		}
	}
}

// InjectFault returns a copy of c with one randomly chosen internal gate
// replaced by a wrong function, along with the fault description. Gates
// whose replacement would be a no-op are re-drawn. Deterministic for a
// given rng state.
func InjectFault(rng *rand.Rand, c *Circuit) (*Circuit, Fault) {
	out := c.Clone()
	// Collect substitutable gates (non-inputs, non-constants).
	var cand []int
	for id, g := range out.Gates {
		if g.Type != Input && g.Type != Const0 && g.Type != Const1 {
			cand = append(cand, id)
		}
	}
	if len(cand) == 0 {
		panic("circuit: no substitutable gate")
	}
	id := cand[rng.Intn(len(cand))]
	g := out.Gates[id]
	nt := wrongGateFor(rng, g.Type, len(g.Fanin))
	fault := Fault{Gate: id, Was: g.Type, Now: nt}
	switch nt {
	case Const0, Const1:
		// Stuck-at fault: drop the fanin.
		out.Gates[id] = Gate{Type: nt}
	case Xor, Xnor:
		// Ensure binary fanin for xor-class replacements.
		fan := g.Fanin
		if len(fan) > 2 {
			fan = fan[:2]
		} else if len(fan) == 1 {
			fan = []int{fan[0], fan[0]}
		}
		out.Gates[id] = Gate{Type: nt, Fanin: fan}
	default:
		out.Gates[id] = Gate{Type: nt, Fanin: g.Fanin}
	}
	return out, fault
}

// FaultObservable reports whether the fault changes the circuit's
// input/output behaviour on any of the given test vectors.
func FaultObservable(good, bad *Circuit, vectors [][]bool) bool {
	for _, v := range vectors {
		g := good.OutputsOf(good.Eval(v))
		b := bad.OutputsOf(bad.Eval(v))
		for i := range g {
			if g[i] != b[i] {
				return true
			}
		}
	}
	return false
}

// RandomVectors draws n input vectors for a circuit with the given input
// count.
func RandomVectors(rng *rand.Rand, nInputs, n int) [][]bool {
	out := make([][]bool, n)
	for i := range out {
		v := make([]bool, nInputs)
		for j := range v {
			v[j] = rng.Intn(2) == 0
		}
		out[i] = v
	}
	return out
}
