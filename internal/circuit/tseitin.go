package circuit

import "repro/internal/cnf"

// Dest receives the Tseitin encoding; *sat.Solver, *card.FormulaDest, and
// the WCNF builder in package gen all satisfy it.
type Dest interface {
	NewVar() cnf.Var
	AddClause(lits ...cnf.Lit) bool
}

// Tseitin encodes the circuit into d with full (two-sided) gate-consistency
// clauses and returns one literal per gate. The encoding introduces one
// fresh variable per gate except constants, which reuse a shared
// unit-clause-backed variable pair.
func Tseitin(d Dest, c *Circuit) []cnf.Lit {
	lits := make([]cnf.Lit, len(c.Gates))
	constTrue := cnf.LitUndef
	getTrue := func() cnf.Lit {
		if constTrue == cnf.LitUndef {
			constTrue = cnf.PosLit(d.NewVar())
			d.AddClause(constTrue)
		}
		return constTrue
	}
	for id, g := range c.Gates {
		switch g.Type {
		case Input:
			lits[id] = cnf.PosLit(d.NewVar())
		case Const0:
			lits[id] = getTrue().Neg()
		case Const1:
			lits[id] = getTrue()
		case Buf:
			lits[id] = lits[g.Fanin[0]]
		case Not:
			lits[id] = lits[g.Fanin[0]].Neg()
		case And, Nand:
			y := cnf.PosLit(d.NewVar())
			out := y
			if g.Type == Nand {
				out = y.Neg() // y encodes the AND; the gate literal is ¬y
			}
			// y -> a_i
			long := make([]cnf.Lit, 0, len(g.Fanin)+1)
			for _, f := range g.Fanin {
				d.AddClause(y.Neg(), lits[f])
				long = append(long, lits[f].Neg())
			}
			// (∧ a_i) -> y
			long = append(long, y)
			d.AddClause(long...)
			lits[id] = out
		case Or, Nor:
			y := cnf.PosLit(d.NewVar())
			out := y
			if g.Type == Nor {
				out = y.Neg()
			}
			// a_i -> y
			long := make([]cnf.Lit, 0, len(g.Fanin)+1)
			for _, f := range g.Fanin {
				d.AddClause(y, lits[f].Neg())
				long = append(long, lits[f])
			}
			// y -> (∨ a_i)
			long = append(long, y.Neg())
			d.AddClause(long...)
			lits[id] = out
		case Xor, Xnor:
			y := cnf.PosLit(d.NewVar())
			a, b := lits[g.Fanin[0]], lits[g.Fanin[1]]
			if g.Type == Xnor {
				b = b.Neg() // y = a xnor b  ==  y = a xor ¬b
			}
			d.AddClause(y.Neg(), a, b)
			d.AddClause(y.Neg(), a.Neg(), b.Neg())
			d.AddClause(y, a.Neg(), b)
			d.AddClause(y, a, b.Neg())
			lits[id] = y
		}
	}
	return lits
}

// Miter builds the equivalence-checking miter of two circuits with the same
// number of primary inputs and outputs: shared inputs, pairwise XOR of
// outputs, OR-reduced into a single output that is true iff the circuits
// disagree on some output. The miter is unsatisfiable (output
// unrealizable as true) exactly when the circuits are equivalent.
func Miter(a, b *Circuit) *Circuit {
	if a.NumInputs() != b.NumInputs() || a.NumOutputs() != b.NumOutputs() {
		panic("circuit: miter requires matching interfaces")
	}
	m := New()
	ins := make([]int, a.NumInputs())
	for i := range ins {
		ins[i] = m.NewInput()
	}
	aOuts := Embed(m, a, ins)
	bOuts := Embed(m, b, ins)
	var xors []int
	for i := range aOuts {
		xors = append(xors, m.Xor(aOuts[i], bOuts[i]))
	}
	var top int
	if len(xors) == 1 {
		top = xors[0]
	} else {
		top = m.Or(xors...)
	}
	m.MarkOutput(top)
	return m
}

// Embed copies src into dst, driving src's primary inputs from the given
// dst gate ids, and returns the dst ids of src's outputs. It is the
// building block for miters and unrollings.
func Embed(dst *Circuit, src *Circuit, drivers []int) []int {
	if len(drivers) != src.NumInputs() {
		panic("circuit: driver count mismatch")
	}
	remap := make([]int, len(src.Gates))
	inIdx := 0
	for id, g := range src.Gates {
		if g.Type == Input {
			remap[id] = drivers[inIdx]
			inIdx++
			continue
		}
		fan := make([]int, len(g.Fanin))
		for i, f := range g.Fanin {
			fan[i] = remap[f]
		}
		remap[id] = dst.add(g.Type, fan...)
	}
	outs := make([]int, len(src.Outputs))
	for i, o := range src.Outputs {
		outs[i] = remap[o]
	}
	return outs
}
