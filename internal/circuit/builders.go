package circuit

import "math/rand"

// RippleAdder builds an n-bit ripple-carry adder: inputs a[0..n), b[0..n)
// (LSB first), outputs sum[0..n) and the final carry.
func RippleAdder(n int) *Circuit {
	c := New()
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = c.NewInput()
	}
	for i := range b {
		b[i] = c.NewInput()
	}
	carry := c.Const(false)
	for i := 0; i < n; i++ {
		axb := c.Xor(a[i], b[i])
		sum := c.Xor(axb, carry)
		carry = c.Or(c.And(a[i], b[i]), c.And(axb, carry))
		c.MarkOutput(sum)
	}
	c.MarkOutput(carry)
	return c
}

// CarrySelectAdder builds a functionally equivalent n-bit adder with a
// different structure (conditional-sum style): both carry hypotheses are
// computed per bit and selected. Equivalence-checking miters between this
// and RippleAdder give non-trivial but well-structured UNSAT instances.
func CarrySelectAdder(n int) *Circuit {
	c := New()
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = c.NewInput()
	}
	for i := range b {
		b[i] = c.NewInput()
	}
	carry := c.Const(false)
	for i := 0; i < n; i++ {
		axb := c.Xor(a[i], b[i])
		// sum if carry-in = 0 / 1
		s0 := axb
		s1 := c.Not(axb)
		// select on actual carry
		sum := c.Or(c.And(c.Not(carry), s0), c.And(carry, s1))
		c0 := c.And(a[i], b[i])
		c1 := c.Or(a[i], b[i])
		carry = c.Or(c.And(c.Not(carry), c0), c.And(carry, c1))
		c.MarkOutput(sum)
	}
	c.MarkOutput(carry)
	return c
}

// Comparator builds an n-bit unsigned comparator with a single output
// a > b (MSB last in the input order, LSB first like the adders).
func Comparator(n int) *Circuit {
	c := New()
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = c.NewInput()
	}
	for i := range b {
		b[i] = c.NewInput()
	}
	// gt_i = a_i > b_i within prefix [0..i]: gt = (a_i ∧ ¬b_i) ∨ (a_i≡b_i ∧ gt_{i-1})
	gt := c.Const(false)
	for i := 0; i < n; i++ {
		aAndNotB := c.And(a[i], c.Not(b[i]))
		eq := c.Xnor(a[i], b[i])
		gt = c.Or(aAndNotB, c.And(eq, gt))
	}
	c.MarkOutput(gt)
	return c
}

// ParityTree builds an n-input XOR tree with one output.
func ParityTree(n int) *Circuit {
	c := New()
	layer := make([]int, n)
	for i := range layer {
		layer[i] = c.NewInput()
	}
	for len(layer) > 1 {
		var next []int
		for i := 0; i+1 < len(layer); i += 2 {
			next = append(next, c.Xor(layer[i], layer[i+1]))
		}
		if len(layer)%2 == 1 {
			next = append(next, layer[len(layer)-1])
		}
		layer = next
	}
	c.MarkOutput(layer[0])
	return c
}

// Multiplier builds an n×n-bit array multiplier (LSB first), 2n outputs.
// Array multipliers produce the hard, deeply structured instances typical
// of equivalence-checking benchmarks.
func Multiplier(n int) *Circuit {
	c := New()
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = c.NewInput()
	}
	for i := range b {
		b[i] = c.NewInput()
	}
	// partial products, then ripple accumulation row by row
	acc := make([]int, 2*n)
	for i := range acc {
		acc[i] = c.Const(false)
	}
	for i := 0; i < n; i++ {
		carry := c.Const(false)
		for j := 0; j < n; j++ {
			pp := c.And(a[j], b[i])
			s1 := c.Xor(acc[i+j], pp)
			c1 := c.And(acc[i+j], pp)
			s2 := c.Xor(s1, carry)
			c2 := c.And(s1, carry)
			acc[i+j] = s2
			carry = c.Or(c1, c2)
		}
		// propagate remaining carry
		for k := i + n; k < 2*n && k >= 0; k++ {
			s := c.Xor(acc[k], carry)
			carry = c.And(acc[k], carry)
			acc[k] = s
		}
	}
	for _, s := range acc {
		c.MarkOutput(s)
	}
	return c
}

// RandomCombinational builds a random n-input netlist with the given number
// of internal gates; every sink gate becomes an output. Deterministic for a
// given rng state.
func RandomCombinational(rng *rand.Rand, nInputs, nGates int) *Circuit {
	c := New()
	for i := 0; i < nInputs; i++ {
		c.NewInput()
	}
	types := []GateType{And, Or, Nand, Nor, Xor, Xnor, Not}
	for g := 0; g < nGates; g++ {
		t := types[rng.Intn(len(types))]
		hi := len(c.Gates)
		pick := func() int {
			// Prefer recent gates for depth.
			if hi > 4 && rng.Intn(2) == 0 {
				return hi - 1 - rng.Intn(4)
			}
			return rng.Intn(hi)
		}
		switch t {
		case Not:
			c.Not(pick())
		case Xor, Xnor:
			a, b := pick(), pick()
			if t == Xor {
				c.Xor(a, b)
			} else {
				c.Xnor(a, b)
			}
		default:
			fanin := 2 + rng.Intn(2)
			in := make([]int, fanin)
			for i := range in {
				in[i] = pick()
			}
			c.add(t, in...)
		}
	}
	// Mark sinks (gates with no fanout) as outputs.
	fanout := make([]int, len(c.Gates))
	for _, g := range c.Gates {
		for _, f := range g.Fanin {
			fanout[f]++
		}
	}
	for id := nInputs; id < len(c.Gates); id++ {
		if fanout[id] == 0 {
			c.MarkOutput(id)
		}
	}
	if len(c.Outputs) == 0 {
		c.MarkOutput(len(c.Gates) - 1)
	}
	return c
}

// KoggeStoneAdder builds an n-bit Kogge-Stone parallel-prefix adder —
// logarithmic depth, heavy sharing, structurally as far from a ripple
// carry chain as adders get, which makes miters against RippleAdder the
// classic equivalence-checking stress case.
func KoggeStoneAdder(n int) *Circuit {
	c := New()
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = c.NewInput()
	}
	for i := range b {
		b[i] = c.NewInput()
	}
	// Generate/propagate pairs.
	g := make([]int, n)
	p := make([]int, n)
	for i := 0; i < n; i++ {
		g[i] = c.And(a[i], b[i])
		p[i] = c.Xor(a[i], b[i])
	}
	// Prefix tree: after the last level, G[i] is the carry out of bit i.
	G := append([]int{}, g...)
	P := append([]int{}, p...)
	for dist := 1; dist < n; dist *= 2 {
		nextG := append([]int{}, G...)
		nextP := append([]int{}, P...)
		for i := dist; i < n; i++ {
			nextG[i] = c.Or(G[i], c.And(P[i], G[i-dist]))
			nextP[i] = c.And(P[i], P[i-dist])
		}
		G, P = nextG, nextP
	}
	// sum[0] = p[0]; sum[i] = p[i] xor carry_in(i) = p[i] xor G[i-1].
	c.MarkOutput(p[0])
	for i := 1; i < n; i++ {
		c.MarkOutput(c.Xor(p[i], G[i-1]))
	}
	c.MarkOutput(G[n-1]) // final carry
	return c
}
