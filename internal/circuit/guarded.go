package circuit

import "repro/internal/cnf"

// TseitinGuarded encodes the circuit like Tseitin, but the consistency
// clauses of every gate listed in guards are extended with ¬guard: the
// gate's function is enforced only while its guard literal is true. This is
// the standard construction of SAT-based design debugging (Smith et al.,
// Safarpour et al.): hard input/output constraints plus per-gate soft
// "this gate is correct" guards; a MaxSAT solver then finds the smallest
// set of gates whose suspension explains the observed behaviour.
//
// Unlike Tseitin, guarded gates always get a dedicated variable (Buf/Not
// cannot alias their fanin literal, otherwise there would be no clause to
// guard). Unguarded gates are encoded exactly as in Tseitin.
func TseitinGuarded(d Dest, c *Circuit, guards map[int]cnf.Lit) []cnf.Lit {
	lits := make([]cnf.Lit, len(c.Gates))
	constTrue := cnf.LitUndef
	getTrue := func() cnf.Lit {
		if constTrue == cnf.LitUndef {
			constTrue = cnf.PosLit(d.NewVar())
			d.AddClause(constTrue)
		}
		return constTrue
	}
	for id, g := range c.Gates {
		guard, guarded := guards[id]
		// add emits a clause, weakened by the guard when present.
		add := func(clause ...cnf.Lit) {
			if guarded {
				clause = append(clause, guard.Neg())
			}
			d.AddClause(clause...)
		}
		switch g.Type {
		case Input:
			lits[id] = cnf.PosLit(d.NewVar())
		case Const0, Const1:
			if !guarded {
				if g.Type == Const1 {
					lits[id] = getTrue()
				} else {
					lits[id] = getTrue().Neg()
				}
				continue
			}
			y := cnf.PosLit(d.NewVar())
			if g.Type == Const1 {
				add(y)
			} else {
				add(y.Neg())
			}
			lits[id] = y
		case Buf, Not:
			a := lits[g.Fanin[0]]
			if g.Type == Not {
				a = a.Neg()
			}
			if !guarded {
				lits[id] = a
				continue
			}
			y := cnf.PosLit(d.NewVar())
			add(y.Neg(), a)
			add(y, a.Neg())
			lits[id] = y
		case And, Nand:
			y := cnf.PosLit(d.NewVar())
			out := y
			if g.Type == Nand {
				out = y.Neg()
			}
			long := make([]cnf.Lit, 0, len(g.Fanin)+1)
			for _, f := range g.Fanin {
				add(y.Neg(), lits[f])
				long = append(long, lits[f].Neg())
			}
			long = append(long, y)
			add(long...)
			lits[id] = out
		case Or, Nor:
			y := cnf.PosLit(d.NewVar())
			out := y
			if g.Type == Nor {
				out = y.Neg()
			}
			long := make([]cnf.Lit, 0, len(g.Fanin)+1)
			for _, f := range g.Fanin {
				add(y, lits[f].Neg())
				long = append(long, lits[f])
			}
			long = append(long, y.Neg())
			add(long...)
			lits[id] = out
		case Xor, Xnor:
			y := cnf.PosLit(d.NewVar())
			a, b := lits[g.Fanin[0]], lits[g.Fanin[1]]
			if g.Type == Xnor {
				b = b.Neg()
			}
			add(y.Neg(), a, b)
			add(y.Neg(), a.Neg(), b.Neg())
			add(y, a.Neg(), b)
			add(y, a, b.Neg())
			lits[id] = y
		}
	}
	return lits
}
