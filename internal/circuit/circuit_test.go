package circuit

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
)

func TestEvalBasicGates(t *testing.T) {
	c := New()
	a := c.NewInput()
	b := c.NewInput()
	and := c.And(a, b)
	or := c.Or(a, b)
	xor := c.Xor(a, b)
	nand := c.Nand(a, b)
	nor := c.Nor(a, b)
	xnor := c.Xnor(a, b)
	not := c.Not(a)
	buf := c.Buf(a)
	for _, tc := range []struct{ a, b bool }{{false, false}, {false, true}, {true, false}, {true, true}} {
		vals := c.Eval([]bool{tc.a, tc.b})
		if vals[and] != (tc.a && tc.b) {
			t.Fatalf("and(%v,%v)", tc.a, tc.b)
		}
		if vals[or] != (tc.a || tc.b) {
			t.Fatalf("or(%v,%v)", tc.a, tc.b)
		}
		if vals[xor] != (tc.a != tc.b) {
			t.Fatalf("xor(%v,%v)", tc.a, tc.b)
		}
		if vals[nand] != !(tc.a && tc.b) {
			t.Fatalf("nand(%v,%v)", tc.a, tc.b)
		}
		if vals[nor] != !(tc.a || tc.b) {
			t.Fatalf("nor(%v,%v)", tc.a, tc.b)
		}
		if vals[xnor] != (tc.a == tc.b) {
			t.Fatalf("xnor(%v,%v)", tc.a, tc.b)
		}
		if vals[not] != !tc.a || vals[buf] != tc.a {
			t.Fatalf("not/buf(%v)", tc.a)
		}
	}
}

func TestRippleAdderAddsCorrectly(t *testing.T) {
	n := 4
	c := RippleAdder(n)
	for a := 0; a < 1<<n; a++ {
		for b := 0; b < 1<<n; b++ {
			in := make([]bool, 2*n)
			for i := 0; i < n; i++ {
				in[i] = a&(1<<i) != 0
				in[n+i] = b&(1<<i) != 0
			}
			outs := c.OutputsOf(c.Eval(in))
			got := 0
			for i, o := range outs {
				if o {
					got |= 1 << i
				}
			}
			if got != a+b {
				t.Fatalf("%d+%d = %d, circuit says %d", a, b, a+b, got)
			}
		}
	}
}

func TestAddersEquivalent(t *testing.T) {
	n := 5
	r := RippleAdder(n)
	s := CarrySelectAdder(n)
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		in := make([]bool, 2*n)
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		ro := r.OutputsOf(r.Eval(in))
		so := s.OutputsOf(s.Eval(in))
		for i := range ro {
			if ro[i] != so[i] {
				t.Fatalf("adders disagree on %v at output %d", in, i)
			}
		}
	}
}

func TestComparator(t *testing.T) {
	n := 4
	c := Comparator(n)
	for a := 0; a < 1<<n; a++ {
		for b := 0; b < 1<<n; b++ {
			in := make([]bool, 2*n)
			for i := 0; i < n; i++ {
				in[i] = a&(1<<i) != 0
				in[n+i] = b&(1<<i) != 0
			}
			out := c.OutputsOf(c.Eval(in))[0]
			if out != (a > b) {
				t.Fatalf("cmp(%d,%d) = %v", a, b, out)
			}
		}
	}
}

func TestMultiplier(t *testing.T) {
	n := 3
	c := Multiplier(n)
	for a := 0; a < 1<<n; a++ {
		for b := 0; b < 1<<n; b++ {
			in := make([]bool, 2*n)
			for i := 0; i < n; i++ {
				in[i] = a&(1<<i) != 0
				in[n+i] = b&(1<<i) != 0
			}
			outs := c.OutputsOf(c.Eval(in))
			got := 0
			for i, o := range outs {
				if o {
					got |= 1 << i
				}
			}
			if got != a*b {
				t.Fatalf("%d*%d = %d, circuit says %d", a, b, a*b, got)
			}
		}
	}
}

func TestParityTree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8} {
		c := ParityTree(n)
		for bits := 0; bits < 1<<n; bits++ {
			in := make([]bool, n)
			parity := false
			for i := 0; i < n; i++ {
				in[i] = bits&(1<<i) != 0
				if in[i] {
					parity = !parity
				}
			}
			if got := c.OutputsOf(c.Eval(in))[0]; got != parity {
				t.Fatalf("parity(%0*b) = %v", n, bits, got)
			}
		}
	}
}

// TestTseitinAgreesWithEval: for random circuits and random inputs, forcing
// the input literals to the vector must force each gate literal to the
// simulated value.
func TestTseitinAgreesWithEval(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 40; iter++ {
		c := RandomCombinational(rng, 3+rng.Intn(5), 5+rng.Intn(25))
		s := sat.New()
		lits := Tseitin(s, c)
		in := make([]bool, c.NumInputs())
		for i := range in {
			in[i] = rng.Intn(2) == 0
		}
		for i, id := range c.Inputs {
			l := lits[id]
			if !in[i] {
				l = l.Neg()
			}
			s.AddClause(l)
		}
		if st := s.Solve(); st != sat.Sat {
			t.Fatalf("iter %d: forced inputs unsat", iter)
		}
		model := s.Model()
		vals := c.Eval(in)
		for id := range c.Gates {
			if model.Lit(lits[id]) != vals[id] {
				t.Fatalf("iter %d: gate %d (%v) tseitin=%v eval=%v",
					iter, id, c.Gates[id].Type, model.Lit(lits[id]), vals[id])
			}
		}
	}
}

func TestMiterEquivalentIsUnsat(t *testing.T) {
	m := Miter(RippleAdder(4), CarrySelectAdder(4))
	s := sat.New()
	lits := Tseitin(s, m)
	s.AddClause(lits[m.Outputs[0]]) // assert disagreement
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("equivalent adders: miter is %v, want Unsat", st)
	}
}

func TestMiterFaultyIsSat(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	good := RippleAdder(4)
	for tries := 0; tries < 10; tries++ {
		bad, fault := InjectFault(rng, good)
		m := Miter(good, bad)
		s := sat.New()
		lits := Tseitin(s, m)
		s.AddClause(lits[m.Outputs[0]])
		st := s.Solve()
		// An injected fault may be functionally benign (e.g. And->Or with
		// equal fanins); check observability both ways against the SAT
		// verdict on the complete input space.
		observable := false
		n := good.NumInputs()
		for bits := 0; bits < 1<<uint(n); bits++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = bits&(1<<i) != 0
			}
			g := good.OutputsOf(good.Eval(in))
			b := bad.OutputsOf(bad.Eval(in))
			for i := range g {
				if g[i] != b[i] {
					observable = true
				}
			}
		}
		want := sat.Unsat
		if observable {
			want = sat.Sat
		}
		if st != want {
			t.Fatalf("fault %v: miter %v, observable=%v", fault, st, observable)
		}
	}
}

func TestCounterUnrollDepths(t *testing.T) {
	// Frame j observes state j (the property is sampled before the
	// increment), so the all-ones state 2^n-1 appears first in frame
	// 2^n-1, which exists only when the unrolling has k >= 2^n frames.
	n := 3
	ctr := Counter(n)
	for _, k := range []int{3, 7, 8, 9} {
		u := ctr.Unroll(k)
		s := sat.New()
		lits := Tseitin(s, u)
		// Property asserted somewhere within the unrolling.
		var anyFrame []cnf.Lit
		for _, o := range u.Outputs {
			anyFrame = append(anyFrame, lits[o])
		}
		s.AddClause(anyFrame...)
		want := sat.Unsat
		if k >= 1<<n {
			want = sat.Sat
		}
		if st := s.Solve(); st != want {
			t.Fatalf("counter unroll k=%d: got %v, want %v", k, st, want)
		}
	}
}

func TestShiftRegisterUnroll(t *testing.T) {
	w := 4
	sr := ShiftRegisterEqual(w)
	for _, k := range []int{2, 3, 4, 6} {
		u := sr.Unroll(k)
		s := sat.New()
		lits := Tseitin(s, u)
		var anyFrame []cnf.Lit
		for _, o := range u.Outputs {
			anyFrame = append(anyFrame, lits[o])
		}
		s.AddClause(anyFrame...)
		want := sat.Unsat
		if k > w {
			// state after j steps holds the last j shifted bits; all-ones
			// requires w ones shifted in, observable at frame w (0-based),
			// so k > w frames are needed to see it.
			want = sat.Sat
		}
		if st := s.Solve(); st != want {
			t.Fatalf("shift register k=%d: got %v, want %v", k, st, want)
		}
	}
}

func TestUnrollEvalConsistency(t *testing.T) {
	// Simulating the unrolled circuit must match stepping the sequential
	// machine by hand.
	ctr := Counter(3)
	k := 5
	u := ctr.Unroll(k)
	if u.NumInputs() != 0 {
		t.Fatalf("counter has no free inputs, unrolling has %d", u.NumInputs())
	}
	vals := u.Eval(nil)
	outs := u.OutputsOf(vals)
	if len(outs) != k {
		t.Fatalf("want %d property outputs, got %d", k, len(outs))
	}
	for frame, o := range outs {
		want := frame == 7 // counter==7 first at step 7; k=5 so never
		if o != want {
			t.Fatalf("frame %d property = %v", frame, o)
		}
	}
}

func TestInjectFaultChangesGate(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := RippleAdder(3)
	bad, fault := InjectFault(rng, c)
	if bad.Gates[fault.Gate].Type == c.Gates[fault.Gate].Type {
		t.Fatal("fault did not change the gate type")
	}
	if fault.Was == fault.Now {
		t.Fatal("fault reports no change")
	}
	// Original untouched.
	for id := range c.Gates {
		if id != fault.Gate && bad.Gates[id].Type != c.Gates[id].Type {
			t.Fatal("unrelated gate changed")
		}
	}
}

func TestRandomVectorsAndObservability(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	good := Comparator(3)
	vec := RandomVectors(rng, good.NumInputs(), 32)
	if len(vec) != 32 || len(vec[0]) != good.NumInputs() {
		t.Fatal("vector shape wrong")
	}
	if FaultObservable(good, good, vec) {
		t.Fatal("identical circuits cannot be distinguishable")
	}
}

func TestCloneIndependence(t *testing.T) {
	c := RippleAdder(2)
	d := c.Clone()
	d.Gates[len(d.Gates)-1].Type = Nor
	if c.Gates[len(c.Gates)-1].Type == Nor {
		t.Fatal("clone aliases original")
	}
}

func TestGateTypeString(t *testing.T) {
	names := map[GateType]string{And: "and", Xnor: "xnor", Input: "input", Const1: "const1"}
	for ty, want := range names {
		if ty.String() != want {
			t.Fatalf("%v", ty)
		}
	}
}

func TestKoggeStoneAdder(t *testing.T) {
	n := 4
	c := KoggeStoneAdder(n)
	for a := 0; a < 1<<n; a++ {
		for b := 0; b < 1<<n; b++ {
			in := make([]bool, 2*n)
			for i := 0; i < n; i++ {
				in[i] = a&(1<<i) != 0
				in[n+i] = b&(1<<i) != 0
			}
			outs := c.OutputsOf(c.Eval(in))
			got := 0
			for i, o := range outs {
				if o {
					got |= 1 << i
				}
			}
			if got != a+b {
				t.Fatalf("%d+%d = %d, kogge-stone says %d", a, b, a+b, got)
			}
		}
	}
}

func TestKoggeStoneMiterUnsat(t *testing.T) {
	m := Miter(RippleAdder(5), KoggeStoneAdder(5))
	s := sat.New()
	lits := Tseitin(s, m)
	s.AddClause(lits[m.Outputs[0]])
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("ripple vs kogge-stone miter: %v, want Unsat", st)
	}
}

func TestTseitinGuardedSemantics(t *testing.T) {
	// A guarded gate's function is enforced iff its guard is true. Build
	// y = AND(a, b) guarded by g and check all combinations exhaustively.
	c := New()
	a := c.NewInput()
	b := c.NewInput()
	y := c.And(a, b)
	c.MarkOutput(y)

	for _, gVal := range []bool{true, false} {
		for bits := 0; bits < 8; bits++ {
			s := sat.New()
			g := cnf.PosLit(s.NewVar())
			lits := TseitinGuarded(s, c, map[int]cnf.Lit{y: g})
			av := bits&1 != 0
			bv := bits&2 != 0
			yv := bits&4 != 0
			force := func(l cnf.Lit, val bool) {
				if !val {
					l = l.Neg()
				}
				s.AddClause(l)
			}
			force(g, gVal)
			force(lits[a], av)
			force(lits[b], bv)
			force(lits[y], yv)
			st := s.Solve()
			want := sat.Sat
			if gVal && yv != (av && bv) {
				want = sat.Unsat // guard on: gate semantics enforced
			}
			if st != want {
				t.Fatalf("g=%v a=%v b=%v y=%v: got %v, want %v",
					gVal, av, bv, yv, st, want)
			}
		}
	}
}

func TestTseitinGuardedBufNotMaterialized(t *testing.T) {
	// Guarded Buf/Not gates must get dedicated variables (aliasing would
	// leave nothing to guard).
	c := New()
	a := c.NewInput()
	n := c.Not(a)
	c.MarkOutput(n)
	s := sat.New()
	g := cnf.PosLit(s.NewVar())
	lits := TseitinGuarded(s, c, map[int]cnf.Lit{n: g})
	if lits[n] == lits[a].Neg() {
		t.Fatal("guarded Not gate aliased its fanin")
	}
	// With the guard off, y may disagree with ¬a.
	s.AddClause(g.Neg())
	s.AddClause(lits[a])
	s.AddClause(lits[n]) // y true while a true: violates NOT, allowed when unguarded
	if st := s.Solve(); st != sat.Sat {
		t.Fatalf("suspended gate must be free, got %v", st)
	}
}
