// Package circuit provides the gate-level substrate behind the benchmark
// families of the DATE 2008 paper's evaluation: combinational netlists with
// Tseitin CNF encoding, miter construction (equivalence checking),
// sequential unrolling (bounded model checking), and fault injection
// (test-pattern generation and design debugging).
package circuit

import "fmt"

// GateType enumerates supported gate functions.
type GateType int8

// Gate functions. Input gates have no fanin; Const gates ignore fanin.
const (
	Input GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
)

// String names the gate type.
func (t GateType) String() string {
	switch t {
	case Input:
		return "input"
	case Const0:
		return "const0"
	case Const1:
		return "const1"
	case Buf:
		return "buf"
	case Not:
		return "not"
	case And:
		return "and"
	case Or:
		return "or"
	case Nand:
		return "nand"
	case Nor:
		return "nor"
	case Xor:
		return "xor"
	case Xnor:
		return "xnor"
	default:
		return fmt.Sprintf("GateType(%d)", int(t))
	}
}

// Gate is one node of a netlist. Fanin entries are indices of earlier gates
// (the netlist is topologically ordered by construction).
type Gate struct {
	Type  GateType
	Fanin []int
}

// Circuit is a combinational netlist. Gate 0..len(Gates)-1 in topological
// order; Inputs lists the primary-input gate ids in order; Outputs lists the
// primary outputs.
type Circuit struct {
	Gates   []Gate
	Inputs  []int
	Outputs []int
}

// New returns an empty circuit.
func New() *Circuit { return &Circuit{} }

// NumGates returns the total gate count.
func (c *Circuit) NumGates() int { return len(c.Gates) }

// NumInputs returns the primary-input count.
func (c *Circuit) NumInputs() int { return len(c.Inputs) }

// NumOutputs returns the primary-output count.
func (c *Circuit) NumOutputs() int { return len(c.Outputs) }

func (c *Circuit) add(t GateType, fanin ...int) int {
	for _, f := range fanin {
		if f < 0 || f >= len(c.Gates) {
			panic(fmt.Sprintf("circuit: fanin %d out of range (have %d gates)", f, len(c.Gates)))
		}
	}
	c.Gates = append(c.Gates, Gate{Type: t, Fanin: fanin})
	return len(c.Gates) - 1
}

// NewInput appends a primary input and returns its gate id.
func (c *Circuit) NewInput() int {
	id := c.add(Input)
	c.Inputs = append(c.Inputs, id)
	return id
}

// Const appends a constant gate.
func (c *Circuit) Const(val bool) int {
	if val {
		return c.add(Const1)
	}
	return c.add(Const0)
}

// Buf appends a buffer gate.
func (c *Circuit) Buf(a int) int { return c.add(Buf, a) }

// Not appends an inverter.
func (c *Circuit) Not(a int) int { return c.add(Not, a) }

// And appends an n-ary AND gate (n >= 1).
func (c *Circuit) And(in ...int) int { return c.addNary(And, in) }

// Or appends an n-ary OR gate (n >= 1).
func (c *Circuit) Or(in ...int) int { return c.addNary(Or, in) }

// Nand appends an n-ary NAND gate.
func (c *Circuit) Nand(in ...int) int { return c.addNary(Nand, in) }

// Nor appends an n-ary NOR gate.
func (c *Circuit) Nor(in ...int) int { return c.addNary(Nor, in) }

// Xor appends a 2-input XOR; wider XORs chain.
func (c *Circuit) Xor(in ...int) int {
	if len(in) == 0 {
		panic("circuit: xor needs at least one input")
	}
	out := in[0]
	for _, x := range in[1:] {
		out = c.add(Xor, out, x)
	}
	return out
}

// Xnor appends a 2-input XNOR; wider XNORs chain a XOR then invert.
func (c *Circuit) Xnor(a, b int) int { return c.add(Xnor, a, b) }

func (c *Circuit) addNary(t GateType, in []int) int {
	if len(in) == 0 {
		panic("circuit: gate needs at least one input")
	}
	return c.add(t, in...)
}

// MarkOutput designates a gate as a primary output.
func (c *Circuit) MarkOutput(id int) {
	if id < 0 || id >= len(c.Gates) {
		panic("circuit: output id out of range")
	}
	c.Outputs = append(c.Outputs, id)
}

// Clone returns a deep copy.
func (c *Circuit) Clone() *Circuit {
	out := &Circuit{
		Gates:   make([]Gate, len(c.Gates)),
		Inputs:  append([]int{}, c.Inputs...),
		Outputs: append([]int{}, c.Outputs...),
	}
	for i, g := range c.Gates {
		out.Gates[i] = Gate{Type: g.Type, Fanin: append([]int{}, g.Fanin...)}
	}
	return out
}

// Eval simulates the circuit: inputs[i] drives Inputs[i]. It returns the
// value of every gate; index the result with Outputs to read the primary
// outputs.
func (c *Circuit) Eval(inputs []bool) []bool {
	if len(inputs) != len(c.Inputs) {
		panic(fmt.Sprintf("circuit: got %d inputs, want %d", len(inputs), len(c.Inputs)))
	}
	vals := make([]bool, len(c.Gates))
	inIdx := 0
	for id, g := range c.Gates {
		switch g.Type {
		case Input:
			vals[id] = inputs[inIdx]
			inIdx++
		case Const0:
			vals[id] = false
		case Const1:
			vals[id] = true
		case Buf:
			vals[id] = vals[g.Fanin[0]]
		case Not:
			vals[id] = !vals[g.Fanin[0]]
		case And, Nand:
			v := true
			for _, f := range g.Fanin {
				v = v && vals[f]
			}
			if g.Type == Nand {
				v = !v
			}
			vals[id] = v
		case Or, Nor:
			v := false
			for _, f := range g.Fanin {
				v = v || vals[f]
			}
			if g.Type == Nor {
				v = !v
			}
			vals[id] = v
		case Xor:
			vals[id] = vals[g.Fanin[0]] != vals[g.Fanin[1]]
		case Xnor:
			vals[id] = vals[g.Fanin[0]] == vals[g.Fanin[1]]
		}
	}
	return vals
}

// OutputsOf projects the primary-output values out of an Eval result.
func (c *Circuit) OutputsOf(vals []bool) []bool {
	out := make([]bool, len(c.Outputs))
	for i, id := range c.Outputs {
		out[i] = vals[id]
	}
	return out
}
