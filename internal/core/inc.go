package core

import (
	"context"
	"time"

	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/sat"
)

// Inc is the retained msu3-style engine behind serving sessions: one CDCL
// solver, one selector per soft clause, and one growing totalizer kept alive
// across delta solves of a growing formula. Where MSU3.Solve pays the whole
// lower-bound climb on every call, Inc resumes each SolveDelta from the
// relaxed set, lower bound, learnt clauses and kept trail of the previous one
// — sound because Absorb only ever adds clauses (see opt.Incremental).
//
// Variable discipline: the solver interleaves formula variables with
// selectors and totalizer variables, so an external formula variable that
// first appears in a delta cannot be used as a solver index directly. vmap
// translates external variables to solver variables (identity for the base
// prefix, fresh allocations for delta growth) and externalModel translates
// the witness back.
//
// Totalizer growth: the totalizer is built with headroom for the soft count
// at the time of its construction. When later deltas add enough soft clauses
// that the climbing bound reaches the old output truncation, a fresh
// totalizer is rebuilt over the full relaxed set — the superseded encoding's
// clauses remain in the solver as sound garbage (they are definitional over
// their own variables), exactly like a one-shot totalizer that was built too
// small would be unsound to keep querying.
type Inc struct {
	opts  opt.Options
	s     *sat.Solver
	vmap  []cnf.Var // external formula var → solver var
	softs []*softClause
	owner map[cnf.Var]*softClause

	tot       *card.IncTotalizer
	totLimit  int
	relaxedIn []cnf.Lit // blocking literals already fed to tot

	lb      int
	hardOK  bool // accumulated hard clauses still satisfiable at level 0
	broken  bool // a recovered panic poisoned the retained state
	assumps []cnf.Lit
}

// NewInc returns a retained engine loaded with the base formula. Soft
// clauses must have unit weight; the caller routes weighted instances away
// from the retained path.
func NewInc(o opt.Options, base *cnf.WCNF) *Inc {
	m := &Inc{
		opts:   o,
		s:      sat.New(),
		owner:  make(map[cnf.Var]*softClause),
		hardOK: true,
	}
	if base != nil {
		var hards []cnf.Clause
		var softs []cnf.WClause
		for _, c := range base.Clauses {
			if c.Hard() {
				hards = append(hards, c.Clause)
			} else {
				softs = append(softs, c)
			}
		}
		m.Absorb(hards, softs)
	}
	return m
}

// Name implements opt.Incremental.
func (m *Inc) Name() string { return "msu3-inc" }

// solverLit translates an external literal into solver space, allocating a
// fresh solver variable the first time an external variable is seen.
func (m *Inc) solverLit(l cnf.Lit) cnf.Lit {
	v := l.Var()
	for int(v) >= len(m.vmap) {
		m.vmap = append(m.vmap, cnf.VarUndef)
	}
	if m.vmap[v] == cnf.VarUndef {
		m.vmap[v] = m.s.NewVar()
	}
	return cnf.NewLit(m.vmap[v], l.Sign())
}

// Absorb implements opt.Incremental: it adds the delta's hard clauses and
// unit-weight soft shells to the retained solver. Adding clauses backtracks
// the solver to level 0 internally, which safely discards the kept trail for
// the next solve while keeping every learnt clause.
func (m *Inc) Absorb(hards []cnf.Clause, softs []cnf.WClause) bool {
	if m.broken {
		return false
	}
	scratch := make([]cnf.Lit, 0, 8)
	for _, c := range hards {
		scratch = scratch[:0]
		for _, l := range c {
			scratch = append(scratch, m.solverLit(l))
		}
		if !m.s.AddClause(scratch...) {
			// Hard clauses unsatisfiable — permanent under add-only deltas.
			m.hardOK = false
		}
	}
	for _, c := range softs {
		if c.Weight != 1 {
			// Weighted deltas never reach the retained path; treat one as
			// poisoning so the caller falls back for good.
			m.broken = true
			return false
		}
		scratch = scratch[:0]
		for _, l := range c.Clause {
			scratch = append(scratch, m.solverLit(l))
		}
		sel := m.s.NewVar()
		shell := append(append(cnf.Clause(nil), scratch...), cnf.NegLit(sel))
		m.s.AddClause(shell...)
		sc := &softClause{lits: append(cnf.Clause(nil), scratch...), selector: sel, index: len(m.softs)}
		m.softs = append(m.softs, sc)
		m.owner[sel] = sc
	}
	return true
}

// externalModel translates a solver-space model back to the external
// variable space of the accumulated formula. Declared-but-unconstrained
// external variables (never seen in any clause) default to false — they
// appear in no clause, so any value is consistent.
func (m *Inc) externalModel(model cnf.Assignment, n int) cnf.Assignment {
	out := make(cnf.Assignment, n)
	for v := 0; v < n && v < len(m.vmap); v++ {
		if sv := m.vmap[v]; sv != cnf.VarUndef && int(sv) < len(model) {
			out[v] = model[sv]
		}
	}
	return out
}

// SolveDelta implements opt.Incremental: the msu3 main loop resumed from the
// retained relaxed set and lower bound. A panic anywhere inside is recovered
// into StatusUnknown and poisons the engine (the serving layer then falls
// back to from-scratch solves and retires it at the next Absorb).
func (m *Inc) SolveDelta(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) (res opt.Result) {
	start := time.Now()
	res = opt.Result{Cost: -1, Solver: m.Name()}
	defer func() {
		if p := recover(); p != nil {
			m.broken = true
			res.Status = opt.StatusUnknown
			res.Cost = -1
		}
		res.Elapsed = time.Since(start)
	}()
	if m.broken {
		return res
	}
	if !m.hardOK {
		res.Status = opt.StatusUnsat
		return res
	}
	m.s.SetBudget(m.opts.Budget(ctx))

	for {
		if ctx.Err() != nil {
			finishUnknown(&res, cnf.Weight(m.lb))
			return res
		}
		if adoptClosed(shared, &res, cnf.Weight(m.lb)) {
			return res
		}
		// The totalizer must be able to express the current bound whenever a
		// bound is genuinely needed (lb < relaxed count). If soft growth has
		// pushed lb to the old truncation limit, rebuild with fresh headroom.
		if m.tot != nil && m.lb >= m.totLimit && m.lb < len(m.relaxedIn) {
			m.totLimit = len(m.softs) + 1
			m.tot = card.NewIncTotalizer(m.s, m.relaxedIn, m.totLimit)
		}
		// Enforced selectors first (in stable soft order), the bound literal
		// last: between session solves the assumption prefix repeats, so the
		// solver's kept trail carries the propagated selector prefix over.
		m.assumps = m.assumps[:0]
		for _, c := range m.softs {
			if !c.relaxed {
				m.assumps = append(m.assumps, c.assumption())
			}
		}
		boundLit := cnf.LitUndef
		if m.tot != nil {
			if bl, need := m.tot.Bound(m.lb); need {
				boundLit = bl
				m.assumps = append(m.assumps, bl)
			}
		}
		st := m.s.Solve(m.assumps...)
		res.Iterations++
		res.Observe(m.s.Stats())

		switch st {
		case sat.Unknown:
			finishUnknown(&res, cnf.Weight(m.lb))
			return res

		case sat.Sat:
			res.SatCalls++
			model := m.s.Model()
			cost := modelCost(m.softs, model)
			res.Status = opt.StatusOptimal
			res.Cost = cnf.Weight(cost)
			res.LowerBound = res.Cost
			res.Model = m.externalModel(model, w.NumVars)
			shared.PublishUB(res.Cost, res.Model)
			return res

		case sat.Unsat:
			res.UnsatCalls++
			coreLits := m.s.Core()
			var newBlocking []cnf.Lit
			sawBound := false
			for _, l := range coreLits {
				if l == boundLit {
					sawBound = true
					continue
				}
				c := m.owner[l.Var()]
				c.relaxed = true
				newBlocking = append(newBlocking, c.blocking())
			}
			switch {
			case len(newBlocking) > 0:
				if m.tot == nil {
					m.totLimit = len(m.softs) + 1
					m.tot = card.NewIncTotalizer(m.s, nil, m.totLimit)
				}
				m.tot.AddInputs(newBlocking)
				m.relaxedIn = append(m.relaxedIn, newBlocking...)
			case sawBound:
				m.lb++
				shared.PublishLB(cnf.Weight(m.lb))
			default:
				res.Status = opt.StatusUnsat
				return res
			}
		}
	}
}

// Close implements opt.Incremental: the retained solver state is dropped.
func (m *Inc) Close() {
	m.s = nil
	m.softs = nil
	m.owner = nil
	m.tot = nil
	m.broken = true
}

// TrailReused exposes the solver's cumulative trail-reuse counter — the
// levels of propagation carried between consecutive solves — for tests and
// reuse reporting.
func (m *Inc) TrailReused() int64 {
	if m.s == nil {
		return 0
	}
	return m.s.Stats().TrailReused
}
