package core

import (
	"context"
	"time"

	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/sat"
)

// MSU3 is the UNSAT-driven lower-bound search of the companion report
// (Marques-Silva & Planes, arXiv:0712.0097), in the incremental formulation
// used by its modern descendants: at most one blocking variable per soft
// clause, blocking variables introduced lazily for clauses that appear in
// some core, and a single growing totalizer whose bound is imposed per SAT
// call through an assumption literal.
//
// Soundness of the bound update: the lower bound increases only when the
// reported core contains no enforced (initial) soft clause. Such a core
// proves that the hard clauses together with the relaxed shells and the
// bound Σb ≤ lb are unsatisfiable regardless of the remaining soft clauses,
// hence every assignment falsifies more than lb relaxed clauses and
// optimum ≥ lb+1 unconditionally. When the core names initial clauses they
// are relaxed and the same bound is retried. A SAT outcome at bound lb
// yields a model of cost ≤ lb, which together with optimum ≥ lb proves
// optimality.
type MSU3 struct {
	Opts opt.Options
	// DisjointPhase enables the report's preprocessing step: before the
	// bounded search, repeatedly extract cores with no bound imposed,
	// relaxing each and crediting the lower bound (disjoint cores in the
	// sense of the paper's Proposition 1 — each round's core is disjoint
	// from all previously relaxed clauses, so every assignment pays at
	// least one unit per round).
	DisjointPhase bool
}

// NewMSU3 returns msu3 with default options applied.
func NewMSU3(o opt.Options) *MSU3 { return &MSU3{Opts: o} }

// Name implements opt.Solver.
func (m *MSU3) Name() string { return "msu3" }

// Solve implements opt.Solver. Soft clauses must have unit weight.
func (m *MSU3) Solve(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) (res opt.Result) {
	requireUnweighted(w, "msu3")
	start := time.Now()
	res = opt.Result{Cost: -1}
	defer func() { res.Elapsed = time.Since(start) }()

	prep, w := opt.MaybePrep(w, m.Opts)
	if prep.HardUnsat() {
		res.Status = opt.StatusUnsat
		return res
	}
	defer prep.Finish(&res)

	s := sat.New()
	m.Opts.ConfigureSolver(ctx, s)
	softs, ok := loadSoft(s, w)
	if !ok {
		res.Status = opt.StatusUnsat
		return res
	}
	owner := selectorOwner(softs)
	// Same sharing scope as msu4: formula plus the (identically numbered)
	// selector block; msu3's totalizer is assumption-bounded, so every
	// addition stays a conservative extension of that scope.
	m.Opts.AttachExchange(s, w.NumVars+len(softs))
	tot := card.NewIncTotalizer(s, nil, len(softs)+1)

	lb := 0
	var assumps []cnf.Lit

	if m.DisjointPhase {
		// Phase 1: disjoint core extraction. Solve with every unrelaxed
		// soft clause enforced and no bound; each UNSAT core is disjoint
		// from everything already relaxed, so it raises the lower bound by
		// one. Stop at the first SAT/empty-core outcome.
	disjoint:
		for ctx.Err() == nil {
			if adoptClosed(shared, &res, cnf.Weight(lb)) {
				return res
			}
			assumps = assumps[:0]
			for _, c := range softs {
				if !c.relaxed {
					assumps = append(assumps, c.assumption())
				}
			}
			st := s.Solve(assumps...)
			res.Iterations++
			res.Observe(s.Stats())
			switch st {
			case sat.Unknown:
				finishUnknown(&res, cnf.Weight(lb))
				return res
			case sat.Sat:
				if lb == 0 {
					// Everything satisfiable: optimum 0, done.
					model := s.Model()
					res.SatCalls++
					res.Status = opt.StatusOptimal
					res.Cost = 0
					res.Model = snapshotModel(model, w.NumVars)
					return res
				}
				res.SatCalls++
				break disjoint
			case sat.Unsat:
				res.UnsatCalls++
				coreLits := s.Core()
				if len(coreLits) == 0 {
					res.Status = opt.StatusUnsat
					return res
				}
				var newBlocking []cnf.Lit
				for _, l := range coreLits {
					c := owner[l.Var()]
					c.relaxed = true
					newBlocking = append(newBlocking, c.blocking())
				}
				// Disjoint-phase cores hold with no bound assumed: their
				// at-least-one clause is implied by hard clauses and shells
				// alone and is safe to hand to the sharing members.
				s.ShareClause(newBlocking...)
				tot.AddInputs(newBlocking)
				lb++
				shared.PublishLB(cnf.Weight(lb))
			}
		}
	}
	for {
		if ctx.Err() != nil {
			finishUnknown(&res, cnf.Weight(lb))
			return res
		}
		if adoptClosed(shared, &res, cnf.Weight(lb)) {
			return res
		}
		// Enforced selectors first, the bound literal last: when only the
		// bound moves between calls the solver's trail reuse keeps the
		// whole propagated selector prefix.
		assumps = assumps[:0]
		for _, c := range softs {
			if !c.relaxed {
				assumps = append(assumps, c.assumption())
			}
		}
		boundLit := cnf.LitUndef
		if bl, need := tot.Bound(lb); need {
			boundLit = bl
			assumps = append(assumps, bl)
		}
		st := s.Solve(assumps...)
		res.Iterations++
		res.Observe(s.Stats())

		switch st {
		case sat.Unknown:
			finishUnknown(&res, cnf.Weight(lb))
			return res

		case sat.Sat:
			res.SatCalls++
			model := s.Model()
			cost := modelCost(softs, model)
			res.Status = opt.StatusOptimal
			res.Cost = cnf.Weight(cost)
			res.LowerBound = res.Cost
			res.Model = snapshotModel(model, w.NumVars)
			prep.PublishUB(shared, res.Cost, res.Model)
			return res

		case sat.Unsat:
			res.UnsatCalls++
			coreLits := s.Core()
			var newBlocking []cnf.Lit
			sawBound := false
			for _, l := range coreLits {
				if l == boundLit {
					sawBound = true
					continue
				}
				c := owner[l.Var()]
				c.relaxed = true
				newBlocking = append(newBlocking, c.blocking())
			}
			switch {
			case len(newBlocking) > 0:
				// Fresh soft clauses entered a core: relax them and retry
				// at the same bound.
				if !sawBound {
					// Implied by hard clauses and shells alone (the bound
					// took no part in the refutation): shareable.
					s.ShareClause(newBlocking...)
				}
				tot.AddInputs(newBlocking)
			case sawBound:
				// Core is {bound} (possibly with hard/relaxed context):
				// the bound itself is too tight.
				lb++
				shared.PublishLB(cnf.Weight(lb))
			default:
				// Unsatisfiable without any assumption: hard clauses
				// conflict.
				res.Status = opt.StatusUnsat
				return res
			}
		}
	}
}
