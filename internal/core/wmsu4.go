package core

import (
	"context"
	"math"
	"time"

	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/pb"
	"repro/internal/sat"
)

// WMSU4 lifts the paper's Algorithm 1 to weighted partial MaxSAT — the
// natural generalization the paper's PBO discussion already implies: the
// cardinality constraint of line 30 becomes the pseudo-Boolean constraint
// Σ wᵢ·bᵢ <= BV−1 (encoded through the minisat+ BDD translation of package
// pb), and the upper-bound refinement of lines 23-24 credits each core with
// the minimum soft weight it contains (the weighted reading of
// Proposition 1: disjoint cores cost at least the sum of their minimum
// weights).
//
// Correctness mirrors MSU4: every SAT outcome strictly improves the best
// model cost, so the loop terminates; the algorithm returns the best model
// cost when a core contains no initial clause or when the accumulated
// core-weight lower bound reaches it, and both exits are justified by the
// indicator-extension argument of the unweighted case with weights
// attached.
type WMSU4 struct {
	Opts opt.Options
	// SkipAtLeast1 disables the optional per-core clause (line 19).
	SkipAtLeast1 bool
}

// NewWMSU4 returns wmsu4 with default options.
func NewWMSU4(o opt.Options) *WMSU4 { return &WMSU4{Opts: o} }

// Name implements opt.Solver.
func (m *WMSU4) Name() string { return "wmsu4" }

// Solve implements opt.Solver. Handles weighted partial MaxSAT.
func (m *WMSU4) Solve(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) (res opt.Result) {
	start := time.Now()
	res = opt.Result{Cost: -1}
	defer func() { res.Elapsed = time.Since(start) }()

	prep, w := opt.MaybePrep(w, m.Opts)
	if prep.HardUnsat() {
		res.Status = opt.StatusUnsat
		return res
	}
	defer prep.Finish(&res)

	s := sat.New()
	// wmsu4 asserts its PB bound unguarded, so its clause database is not
	// a conservative extension of the shared formula: no clause sharing.
	m.Opts.ConfigureSolver(ctx, s)
	softs, ok := loadSoft(s, w)
	if !ok {
		res.Status = opt.StatusUnsat
		return res
	}
	owner := selectorOwner(softs)
	weightOf := make(map[*softClause]cnf.Weight, len(softs))
	for _, c := range softs {
		weightOf[c] = w.Clauses[c.index].Weight
	}

	var (
		bestCost = cnf.Weight(math.MaxInt64) // BV analog: best model cost
		lb       cnf.Weight                  // Σ min-weight over disjoint cores
		relaxed  []*softClause               // VB
		assumps  []cnf.Lit
	)

	for {
		if ctx.Err() != nil {
			finishUnknown(&res, lb)
			return res
		}
		if adoptClosed(shared, &res, lb) {
			return res
		}
		// An externally improved model tightens BV like a local one.
		if cost, ok := adoptBetterUB(shared, &res); ok && cost < bestCost {
			bestCost = cost
			if bestCost == 0 || lb >= bestCost {
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return res
			}
		}
		assumps = assumps[:0]
		for _, c := range softs {
			if !c.relaxed {
				assumps = append(assumps, c.assumption())
			}
		}
		st := s.Solve(assumps...)
		res.Iterations++
		res.Observe(s.Stats())

		switch st {
		case sat.Unknown:
			finishUnknown(&res, lb)
			return res

		case sat.Unsat:
			res.UnsatCalls++
			coreSels := s.Core()
			if len(coreSels) == 0 {
				if res.Model == nil {
					res.Status = opt.StatusUnsat
					return res
				}
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return res
			}
			newBlocking := make([]cnf.Lit, 0, len(coreSels))
			minW := cnf.Weight(0)
			for _, sel := range coreSels {
				c := owner[sel.Var()]
				c.relaxed = true
				relaxed = append(relaxed, c)
				newBlocking = append(newBlocking, c.blocking())
				if cw := weightOf[c]; minW == 0 || cw < minW {
					minW = cw
				}
			}
			if !m.SkipAtLeast1 {
				s.AddClause(newBlocking...)
			}
			lb += minW
			shared.PublishLB(lb)
			if res.Model != nil && lb >= bestCost {
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return res
			}

		case sat.Sat:
			res.SatCalls++
			model := s.Model()
			cost := weightedModelCost(softs, weightOf, model)
			if cost < bestCost {
				bestCost = cost
				res.Cost = cost
				res.Model = snapshotModel(model, w.NumVars)
				prep.PublishUB(shared, res.Cost, res.Model)
			}
			if cost == 0 {
				res.Status = opt.StatusOptimal
				res.LowerBound = 0
				return res
			}
			if lb >= bestCost {
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return res
			}
			// Weighted line 30: Σ w·b <= bestCost - 1 over all blocking
			// variables so far, via the BDD PB translation.
			terms := make([]pb.Term, len(relaxed))
			for i, c := range relaxed {
				terms[i] = pb.Term{Coef: int64(weightOf[c]), Lit: c.blocking()}
			}
			constraint := &pb.LinearLE{Terms: terms, Bound: int64(bestCost) - 1}
			constraint.Encode(s)
		}
	}
}

// weightedModelCost sums the weights of soft clauses falsified by the model.
func weightedModelCost(softs []*softClause, weightOf map[*softClause]cnf.Weight, model cnf.Assignment) cnf.Weight {
	var cost cnf.Weight
	for _, c := range softs {
		sat := false
		for _, l := range c.lits {
			if model.Lit(l) {
				sat = true
				break
			}
		}
		if !sat {
			cost += weightOf[c]
		}
	}
	return cost
}
