package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/opt"
)

func TestWMSU1UnweightedMatchesMSU1(t *testing.T) {
	w := paperExample2()
	r := NewWMSU1(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 2 {
		t.Fatalf("status %v cost %d, want optimal 2", r.Status, r.Cost)
	}
	if !opt.VerifyModel(w, r) {
		t.Fatal("model inconsistent")
	}
}

func TestWMSU1WeightedBasics(t *testing.T) {
	// Weighted contradiction: must pay the cheaper side.
	w := cnf.NewWCNF(1)
	w.AddSoft(5, lit(1))
	w.AddSoft(2, lit(-1))
	r := NewWMSU1(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 2 {
		t.Fatalf("status %v cost %d, want optimal 2", r.Status, r.Cost)
	}
	if !r.Model[0] {
		t.Fatal("model should set x1 true (weight 5 kept)")
	}
}

func TestWMSU1ClauseSplitting(t *testing.T) {
	// Two contradictions sharing a heavy clause exercise the split path:
	// (x, 10), (¬x, 3), (¬x∨y, 4), (¬y, 2) — optimum: brute force decides.
	w := cnf.NewWCNF(2)
	w.AddSoft(10, lit(1))
	w.AddSoft(3, lit(-1))
	w.AddSoft(4, lit(-1), lit(2))
	w.AddSoft(2, lit(-2))
	want, _, _ := brute.MinCostWCNF(w)
	r := NewWMSU1(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Cost != want {
		t.Fatalf("cost %d, want %d", r.Cost, want)
	}
}

func TestWMSU1AgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	for iter := 0; iter < 80; iter++ {
		w := cnf.NewWCNF(3 + rng.Intn(6))
		nc := 4 + rng.Intn(18)
		for i := 0; i < nc; i++ {
			width := 1 + rng.Intn(3)
			c := make([]cnf.Lit, 0, width)
			for j := 0; j < width; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(w.NumVars)), rng.Intn(2) == 0))
			}
			if rng.Intn(5) == 0 {
				w.AddHard(c...)
			} else {
				w.AddSoft(cnf.Weight(1+rng.Intn(6)), c...)
			}
		}
		want, _, feasible := brute.MinCostWCNF(w)
		r := NewWMSU1(opt.Options{}).Solve(context.Background(), w, nil)
		if !feasible {
			if r.Status != opt.StatusUnsat {
				t.Fatalf("iter %d: status %v, want UNSAT", iter, r.Status)
			}
			continue
		}
		if r.Status != opt.StatusOptimal {
			t.Fatalf("iter %d: status %v", iter, r.Status)
		}
		if r.Cost != want {
			t.Fatalf("iter %d: cost %d, want %d\n%v", iter, r.Cost, want, w.Clauses)
		}
		if !opt.VerifyModel(w, r) {
			t.Fatalf("iter %d: model inconsistent", iter)
		}
	}
}

func TestWMSU1HardUnsat(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddHard(lit(1))
	w.AddHard(lit(-1))
	w.AddSoft(3, lit(1))
	if r := NewWMSU1(opt.Options{}).Solve(context.Background(), w, nil); r.Status != opt.StatusUnsat {
		t.Fatalf("got %v, want UNSAT", r.Status)
	}
}

func TestWMSU1Cancelled(t *testing.T) {
	w := paperExample2()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if r := NewWMSU1(opt.Options{}).Solve(ctx, w, nil); r.Status != opt.StatusUnknown {
		t.Fatalf("got %v, want Unknown", r.Status)
	}
}

func TestWMSU1EmptySoftClause(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddSoft(4)
	w.AddSoft(1, lit(1))
	r := NewWMSU1(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 4 {
		t.Fatalf("status %v cost %d, want optimal 4", r.Status, r.Cost)
	}
}

func TestWMSU1Name(t *testing.T) {
	if NewWMSU1(opt.Options{}).Name() != "wmsu1" {
		t.Fatal("name")
	}
}
