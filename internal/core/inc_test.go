package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/opt"
)

// TestIncDeltaVsBrute grows random formulas delta by delta and checks every
// SolveDelta against brute force on the accumulated formula — the engine's
// core contract: a delta re-solve answers exactly like a fresh solve.
func TestIncDeltaVsBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(90210))
	for iter := 0; iter < 30; iter++ {
		vars := 3 + rng.Intn(6)
		acc := randomWCNF(rng, vars, 3+rng.Intn(8), true)
		m := NewInc(opt.Options{}, acc)
		for step := 0; step < 4; step++ {
			if step > 0 {
				// Random monotone delta: hard clauses and unit softs, some
				// over fresh variables (exercising the vmap growth path).
				dv := vars + rng.Intn(3)
				var hards []cnf.Clause
				var softs []cnf.WClause
				for i, n := 0, 1+rng.Intn(4); i < n; i++ {
					width := 1 + rng.Intn(3)
					c := make(cnf.Clause, 0, width)
					for j := 0; j < width; j++ {
						c = append(c, cnf.NewLit(cnf.Var(rng.Intn(dv)), rng.Intn(2) == 0))
					}
					if rng.Intn(4) == 0 {
						hards = append(hards, c)
						acc.AddHard(c...)
					} else {
						softs = append(softs, cnf.WClause{Clause: c, Weight: 1})
						acc.AddSoft(1, c...)
					}
				}
				if !m.Absorb(hards, softs) {
					t.Fatalf("iter %d step %d: engine retired itself on a monotone delta", iter, step)
				}
			}
			want, _, feasible := brute.MinCostWCNF(acc)
			r := m.SolveDelta(context.Background(), acc, nil)
			if !feasible {
				if r.Status != opt.StatusUnsat {
					t.Fatalf("iter %d step %d: status %v, want UNSAT", iter, step, r.Status)
				}
				break // hard conflict is permanent; no point growing further
			}
			if r.Status != opt.StatusOptimal {
				t.Fatalf("iter %d step %d: status %v, want OPTIMAL", iter, step, r.Status)
			}
			if r.Cost != want {
				t.Fatalf("iter %d step %d: cost %d, want %d\nclauses: %v",
					iter, step, r.Cost, want, acc.Clauses)
			}
			if !opt.VerifyModel(acc, r) {
				t.Fatalf("iter %d step %d: model does not witness cost %d", iter, step, r.Cost)
			}
		}
		m.Close()
	}
}

// TestIncTotalizerRegrowth drives the lower bound past the headroom of the
// first totalizer the engine built: each delta adds another contradictory
// unit-soft pair, raising the optimum by one, until the bound reaches the
// old encoding's truncation limit and the engine must rebuild. Before the
// rebuild logic existed, this pattern returned a false optimum.
func TestIncTotalizerRegrowth(t *testing.T) {
	base := cnf.NewWCNF(1)
	base.AddSoft(1, lit(1))
	base.AddSoft(1, lit(-1))
	m := NewInc(opt.Options{}, base)
	defer m.Close()
	acc := base.Clone()
	for k := 1; k <= 6; k++ {
		if k > 1 {
			v := k // fresh variable per pair
			softs := []cnf.WClause{
				{Clause: cnf.Clause{lit(v + 1)}, Weight: 1},
				{Clause: cnf.Clause{lit(-(v + 1))}, Weight: 1},
			}
			acc.AddSoft(1, lit(v+1))
			acc.AddSoft(1, lit(-(v + 1)))
			if !m.Absorb(nil, softs) {
				t.Fatalf("k=%d: engine retired itself", k)
			}
		}
		r := m.SolveDelta(context.Background(), acc, nil)
		if r.Status != opt.StatusOptimal || r.Cost != cnf.Weight(k) {
			t.Fatalf("k=%d: status %v cost %d, want OPTIMAL %d", k, r.Status, r.Cost, k)
		}
		if !opt.VerifyModel(acc, r) {
			t.Fatalf("k=%d: model does not witness cost %d", k, r.Cost)
		}
	}
}

// TestIncHardConflict checks that an unsatisfiable hard delta turns every
// later solve into UNSAT — permanently, since deltas only add clauses.
func TestIncHardConflict(t *testing.T) {
	base := cnf.NewWCNF(2)
	base.AddSoft(1, lit(1))
	m := NewInc(opt.Options{}, base)
	defer m.Close()
	if r := m.SolveDelta(context.Background(), base, nil); r.Status != opt.StatusOptimal || r.Cost != 0 {
		t.Fatalf("base solve: status %v cost %d", r.Status, r.Cost)
	}
	if !m.Absorb([]cnf.Clause{{lit(2)}, {lit(-2)}}, nil) {
		t.Fatal("engine retired itself on a hard delta")
	}
	acc := base.Clone()
	acc.AddHard(lit(2))
	acc.AddHard(lit(-2))
	if r := m.SolveDelta(context.Background(), acc, nil); r.Status != opt.StatusUnsat {
		t.Fatalf("after hard conflict: status %v, want UNSAT", r.Status)
	}
	// Still UNSAT after more (irrelevant) growth.
	if !m.Absorb(nil, []cnf.WClause{{Clause: cnf.Clause{lit(1)}, Weight: 1}}) {
		t.Fatal("engine retired itself")
	}
	acc.AddSoft(1, lit(1))
	if r := m.SolveDelta(context.Background(), acc, nil); r.Status != opt.StatusUnsat {
		t.Fatalf("after further growth: status %v, want UNSAT", r.Status)
	}
}

// TestIncWeightedSoftRetires checks that a non-unit soft clause makes Absorb
// report the engine unusable (the caller then falls back for good).
func TestIncWeightedSoftRetires(t *testing.T) {
	base := cnf.NewWCNF(1)
	base.AddSoft(1, lit(1))
	m := NewInc(opt.Options{}, base)
	defer m.Close()
	if m.Absorb(nil, []cnf.WClause{{Clause: cnf.Clause{lit(-1)}, Weight: 2}}) {
		t.Fatal("Absorb accepted a weighted soft clause")
	}
	if r := m.SolveDelta(context.Background(), base, nil); r.Status != opt.StatusUnknown {
		t.Fatalf("poisoned engine answered %v, want UNKNOWN", r.Status)
	}
}

// TestIncTrailReuse checks the warm-solver signal: a delta solve that climbs
// the lower bound re-solves under a repeated assumption prefix and must
// carry trail levels over between consecutive SAT calls.
func TestIncTrailReuse(t *testing.T) {
	// Many satisfiable softs (a long stable selector prefix) plus one
	// contradictory pair that forces a core and a bound climb.
	w := cnf.NewWCNF(12)
	for i := 1; i <= 10; i++ {
		w.AddSoft(1, lit(i))
	}
	w.AddSoft(1, lit(11))
	w.AddSoft(1, lit(-11))
	m := NewInc(opt.Options{}, w)
	defer m.Close()
	r := m.SolveDelta(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 1 {
		t.Fatalf("status %v cost %d, want OPTIMAL 1", r.Status, r.Cost)
	}
	if m.TrailReused() == 0 {
		t.Fatal("expected trail reuse across the bound climb, got none")
	}
}
