package core

import (
	"context"
	"testing"

	"repro/internal/cnf"
	"repro/internal/gen"
	"repro/internal/opt"
)

// TestOLLWeightedFamilies is the gen-family differential suite: on every
// instance of the weighted suite, OLL (plain and preprocessed) must agree
// with the known optimum where one exists and with wmsu4 everywhere.
func TestOLLWeightedFamilies(t *testing.T) {
	for _, in := range gen.WeightedSuite(11) {
		want := in.KnownCost
		if want < 0 {
			ref := NewWMSU4(opt.Options{}).Solve(context.Background(), in.W, nil)
			if ref.Status != opt.StatusOptimal {
				t.Fatalf("%s: wmsu4 reference did not finish: %v", in.Name, ref.Status)
			}
			want = ref.Cost
		}
		for _, m := range []*OLL{
			NewOLL(opt.Options{}),
			{Opts: opt.Options{Preprocess: true}},
		} {
			r := m.Solve(context.Background(), in.W, nil)
			if r.Status != opt.StatusOptimal || r.Cost != want {
				t.Fatalf("%s (pre=%v): got %v, want optimal %d", in.Name, m.Opts.Preprocess, r, want)
			}
			if !opt.VerifyModel(in.W, r) {
				t.Fatalf("%s (pre=%v): model inconsistent", in.Name, m.Opts.Preprocess)
			}
		}
	}
}

// TestOLLSelectionMechanisms pins the BLO showcase: on the selection family
// the top stratum is satisfiable alone, so stratification solves it first
// and hardening pins the heaviest option before the unit-weight levels are
// even considered.
func TestOLLSelectionMechanisms(t *testing.T) {
	in := gen.SelectionWeighted(5, 4, 2)
	probe := &OLLProbe{}
	m := &OLL{Probe: probe}
	r := m.Solve(context.Background(), in.W, nil)
	if r.Status != opt.StatusOptimal || r.Cost != in.KnownCost {
		t.Fatalf("got %v, want optimal %d", r, in.KnownCost)
	}
	if probe.Strata < 2 {
		t.Fatalf("strata %d, want >= 2", probe.Strata)
	}
	if probe.Hardened == 0 {
		t.Fatal("hardening never fired on the selection family")
	}
}

// TestOLLWeightedPigeonholeExhausts pins the exhaustion showcase: the
// weighted soft pigeonhole's single big core must be re-bounded without a
// fresh model between rounds.
func TestOLLWeightedPigeonholeExhausts(t *testing.T) {
	in := gen.PigeonholeWeighted(5)
	probe := &OLLProbe{}
	m := &OLL{Probe: probe}
	r := m.Solve(context.Background(), in.W, nil)
	if r.Status != opt.StatusOptimal || r.Cost != in.KnownCost {
		t.Fatalf("got %v, want optimal %d", r, in.KnownCost)
	}
	if probe.Cores == 0 {
		t.Fatal("no cores on soft pigeonhole")
	}
	if lb := r.LowerBound; lb != cnf.Weight(1) {
		t.Fatalf("lower bound %d, want 1", lb)
	}
}
