package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/opt"
)

func TestWMSU4PaperExampleUnweighted(t *testing.T) {
	w := paperExample2()
	r := NewWMSU4(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 2 {
		t.Fatalf("status %v cost %d, want optimal 2", r.Status, r.Cost)
	}
	if !opt.VerifyModel(w, r) {
		t.Fatal("model inconsistent")
	}
}

func TestWMSU4WeightedBasics(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddSoft(5, lit(1))
	w.AddSoft(2, lit(-1))
	r := NewWMSU4(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 2 {
		t.Fatalf("status %v cost %d, want optimal 2", r.Status, r.Cost)
	}
}

func TestWMSU4AgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(90210))
	for iter := 0; iter < 100; iter++ {
		w := cnf.NewWCNF(3 + rng.Intn(6))
		for i := 0; i < 4+rng.Intn(18); i++ {
			width := 1 + rng.Intn(3)
			c := make([]cnf.Lit, 0, width)
			for j := 0; j < width; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(w.NumVars)), rng.Intn(2) == 0))
			}
			switch {
			case rng.Intn(5) == 0:
				w.AddHard(c...)
			case iter%2 == 0:
				w.AddSoft(cnf.Weight(1+rng.Intn(6)), c...)
			default:
				w.AddSoft(1, c...)
			}
		}
		want, _, feasible := brute.MinCostWCNF(w)
		for _, solver := range []opt.Solver{
			NewWMSU4(opt.Options{}),
			&WMSU4{SkipAtLeast1: true},
		} {
			r := solver.Solve(context.Background(), w, nil)
			if !feasible {
				if r.Status != opt.StatusUnsat {
					t.Fatalf("iter %d: status %v, want UNSAT", iter, r.Status)
				}
				continue
			}
			if r.Status != opt.StatusOptimal {
				t.Fatalf("iter %d: status %v", iter, r.Status)
			}
			if r.Cost != want {
				t.Fatalf("iter %d: cost %d, want %d\n%v", iter, r.Cost, want, w.Clauses)
			}
			if !opt.VerifyModel(w, r) {
				t.Fatalf("iter %d: model inconsistent", iter)
			}
		}
	}
}

func TestWMSU4AgreesWithWMSU1(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for iter := 0; iter < 30; iter++ {
		w := cnf.NewWCNF(4 + rng.Intn(5))
		for i := 0; i < 6+rng.Intn(14); i++ {
			c := []cnf.Lit{
				cnf.NewLit(cnf.Var(rng.Intn(w.NumVars)), rng.Intn(2) == 0),
				cnf.NewLit(cnf.Var(rng.Intn(w.NumVars)), rng.Intn(2) == 0),
			}
			w.AddSoft(cnf.Weight(1+rng.Intn(4)), c...)
		}
		a := NewWMSU4(opt.Options{}).Solve(context.Background(), w, nil)
		b := NewWMSU1(opt.Options{}).Solve(context.Background(), w, nil)
		if a.Cost != b.Cost {
			t.Fatalf("iter %d: wmsu4 %d vs wmsu1 %d", iter, a.Cost, b.Cost)
		}
	}
}

func TestWMSU4HardUnsatAndDeadline(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddHard(lit(1))
	w.AddHard(lit(-1))
	w.AddSoft(3, lit(1))
	if r := NewWMSU4(opt.Options{}).Solve(context.Background(), w, nil); r.Status != opt.StatusUnsat {
		t.Fatalf("got %v, want UNSAT", r.Status)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w2 := paperExample2()
	if r := NewWMSU4(opt.Options{}).Solve(ctx, w2, nil); r.Status != opt.StatusUnknown {
		t.Fatalf("got %v, want Unknown", r.Status)
	}
}

func TestWMSU4Name(t *testing.T) {
	if NewWMSU4(opt.Options{}).Name() != "wmsu4" {
		t.Fatal("name")
	}
}
