package core

import (
	"context"
	"time"

	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/sat"
)

// MSU1 is Fu & Malik's core-guided algorithm ("On Solving the Partial
// MAX-SAT Problem", SAT 2006) — reference [11] of the paper and the point
// of departure for msu4. Every UNSAT core raises the optimum by one: each
// soft clause in the core receives a fresh relaxation variable, an
// exactly-one constraint over the new variables is added, and the search
// repeats until the formula is satisfiable. A clause that appears in k
// cores accumulates k relaxation variables — the drawback msu4 §2.3
// discusses (at most one blocking variable per clause in msu4 versus up to
// |φ| in msu1).
type MSU1 struct {
	Opts opt.Options
	// AMOEncoding selects the at-most-one encoding of the per-core
	// exactly-one constraint (A3 ablation). The zero value (BDD) is valid;
	// NewMSU1 picks Ladder, the customary choice for AMO.
	AMOEncoding card.Encoding
}

// NewMSU1 returns msu1 with the ladder AMO encoding.
func NewMSU1(o opt.Options) *MSU1 {
	return &MSU1{Opts: o, AMOEncoding: card.Ladder}
}

// Name implements opt.Solver.
func (m *MSU1) Name() string { return "msu1" }

// Solve implements opt.Solver. Soft clauses must have unit weight.
func (m *MSU1) Solve(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) (res opt.Result) {
	requireUnweighted(w, "msu1")
	amo := m.AMOEncoding
	start := time.Now()
	res = opt.Result{Cost: -1}
	defer func() { res.Elapsed = time.Since(start) }()

	prep, w := opt.MaybePrep(w, m.Opts)
	if prep.HardUnsat() {
		res.Status = opt.StatusUnsat
		return res
	}
	defer prep.Finish(&res)

	s := sat.New()
	m.Opts.ConfigureSolver(ctx, s)
	softs, ok := loadSoft(s, w)
	if !ok {
		res.Status = opt.StatusUnsat
		return res
	}
	owner := selectorOwner(softs)
	// msu1 retires selectors by unit clauses when it re-shells a core — a
	// non-conservative move in selector space — so it may only share the
	// plain formula prefix (where its additions all carry fresh variables).
	m.Opts.AttachExchange(s, w.NumVars)
	// content[i] carries the clause literals plus accumulated relaxation
	// variables; the original lits stay in softs for cost verification.
	content := make(map[*softClause]cnf.Clause, len(softs))
	for _, c := range softs {
		content[c] = c.lits.Clone()
	}

	cost := 0
	var assumps []cnf.Lit
	for {
		if ctx.Err() != nil {
			finishUnknown(&res, cnf.Weight(cost))
			return res
		}
		// cost is a valid global lower bound (each core raises the optimum
		// by one); if it meets an externally published model's cost, that
		// model is optimal and the remaining SAT call is unnecessary.
		if adoptClosed(shared, &res, cnf.Weight(cost)) {
			return res
		}
		assumps = assumps[:0]
		for _, c := range softs {
			assumps = append(assumps, c.assumption())
		}
		st := s.Solve(assumps...)
		res.Iterations++
		res.Observe(s.Stats())

		switch st {
		case sat.Unknown:
			finishUnknown(&res, cnf.Weight(cost))
			return res

		case sat.Sat:
			res.SatCalls++
			model := s.Model()
			res.Status = opt.StatusOptimal
			res.Cost = cnf.Weight(cost)
			res.LowerBound = res.Cost
			res.Model = snapshotModel(model, w.NumVars)
			prep.PublishUB(shared, res.Cost, res.Model)
			return res

		case sat.Unsat:
			res.UnsatCalls++
			coreSels := s.Core()
			if len(coreSels) == 0 {
				// Unsatisfiable without assumptions: the hard side
				// (original hard clauses plus exactly-one constraints,
				// which are always extendable) conflicts — only possible
				// if the hard clauses themselves are unsatisfiable.
				res.Status = opt.StatusUnsat
				return res
			}
			cost++
			shared.PublishLB(cnf.Weight(cost))
			newRelax := make([]cnf.Lit, 0, len(coreSels))
			for _, sel := range coreSels {
				c := owner[sel.Var()]
				// Disable the current shell by fixing its selector false …
				s.AddClause(cnf.NegLit(c.selector))
				// … extend the clause with a fresh relaxation variable …
				r := cnf.PosLit(s.NewVar())
				content[c] = append(content[c], r)
				newRelax = append(newRelax, r)
				// … and re-add it under a fresh selector.
				c.selector = s.NewVar()
				owner[c.selector] = c
				shell := append(content[c].Clone(), cnf.NegLit(c.selector))
				s.AddClause(shell...)
			}
			// Fu & Malik's exactly-one over the new relaxation variables.
			card.Exactly(s, amo, newRelax, 1)
		}
	}
}
