package core

import (
	"context"
	"time"

	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/sat"
)

// WMSU1 is the weighted extension of Fu & Malik's algorithm (the WPM1/WBO
// scheme of Ansótegui, Bonet & Levy and Manquinho, Marques-Silva & Planes,
// both 2009) — the "interplay between different algorithms based on
// unsatisfiable core identification should be further developed" line of
// the paper's conclusions, carried to weighted partial MaxSAT.
//
// Each UNSAT core raises the optimum by the minimum weight wmin among its
// soft clauses. Every core clause is split: a copy carrying weight wmin
// gets a fresh relaxation variable, while the original keeps the residual
// weight w−wmin (dropping it entirely when the residual is zero). An
// exactly-one constraint over the new relaxation variables closes the
// iteration.
type WMSU1 struct {
	Opts opt.Options
	// AMOEncoding selects the at-most-one encoding for the per-core
	// exactly-one constraints.
	AMOEncoding card.Encoding
}

// NewWMSU1 returns wmsu1 with the ladder AMO encoding.
func NewWMSU1(o opt.Options) *WMSU1 {
	return &WMSU1{Opts: o, AMOEncoding: card.Ladder}
}

// Name implements opt.Solver.
func (m *WMSU1) Name() string { return "wmsu1" }

// softItem is one weighted soft clause copy inside the wmsu1 loop.
type softItem struct {
	lits     cnf.Clause // clause literals including accumulated relax vars
	weight   cnf.Weight
	selector cnf.Var
}

// Solve implements opt.Solver. Handles weighted partial MaxSAT.
func (m *WMSU1) Solve(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) (res opt.Result) {
	start := time.Now()
	res = opt.Result{Cost: -1}
	defer func() { res.Elapsed = time.Since(start) }()

	prep, w := opt.MaybePrep(w, m.Opts)
	if prep.HardUnsat() {
		res.Status = opt.StatusUnsat
		return res
	}
	defer prep.Finish(&res)

	s := sat.New()
	m.Opts.ConfigureSolver(ctx, s)
	s.EnsureVars(w.NumVars)
	// Like msu1, wmsu1 retires selectors by unit clauses (and splits
	// clauses), so only the plain formula prefix is safe to share.
	m.Opts.AttachExchange(s, w.NumVars)

	items := make(map[cnf.Var]*softItem)
	var order []*softItem // stable iteration for assumptions
	addItem := func(lits cnf.Clause, weight cnf.Weight) *softItem {
		sel := s.NewVar()
		shell := append(lits.Clone(), cnf.NegLit(sel))
		s.AddClause(shell...)
		it := &softItem{lits: lits, weight: weight, selector: sel}
		items[sel] = it
		order = append(order, it)
		return it
	}

	for _, c := range w.Clauses {
		if c.Hard() {
			if !s.AddClauseFrom(c.Clause) {
				res.Status = opt.StatusUnsat
				return res
			}
			continue
		}
		addItem(c.Clause.Clone(), c.Weight)
	}

	var cost cnf.Weight
	var assumps []cnf.Lit
	for {
		if ctx.Err() != nil {
			finishUnknown(&res, cost)
			return res
		}
		// cost (the sum of per-core minimum weights) is a valid global lower
		// bound; when it meets an externally published model's cost that
		// model is optimal.
		if adoptClosed(shared, &res, cost) {
			return res
		}
		assumps = assumps[:0]
		for _, it := range order {
			if it.weight > 0 {
				assumps = append(assumps, cnf.PosLit(it.selector))
			}
		}
		st := s.Solve(assumps...)
		res.Iterations++
		res.Observe(s.Stats())

		switch st {
		case sat.Unknown:
			finishUnknown(&res, cost)
			return res

		case sat.Sat:
			res.SatCalls++
			model := s.Model()
			res.Status = opt.StatusOptimal
			res.Cost = cost
			res.LowerBound = cost
			res.Model = snapshotModel(model, w.NumVars)
			prep.PublishUB(shared, res.Cost, res.Model)
			return res

		case sat.Unsat:
			res.UnsatCalls++
			coreSels := s.Core()
			if len(coreSels) == 0 {
				res.Status = opt.StatusUnsat
				return res
			}
			// Minimum weight in the core.
			wmin := cnf.Weight(0)
			for _, sel := range coreSels {
				it := items[sel.Var()]
				if wmin == 0 || it.weight < wmin {
					wmin = it.weight
				}
			}
			cost += wmin
			shared.PublishLB(cost)
			newRelax := make([]cnf.Lit, 0, len(coreSels))
			for _, sel := range coreSels {
				it := items[sel.Var()]
				// Split: relaxed copy at weight wmin …
				r := cnf.PosLit(s.NewVar())
				relaxedLits := append(it.lits.Clone(), r)
				addItem(relaxedLits, wmin)
				newRelax = append(newRelax, r)
				// … residual weight stays on the original (or the original
				// is disabled when fully consumed).
				it.weight -= wmin
				if it.weight == 0 {
					s.AddClause(cnf.NegLit(it.selector))
				}
			}
			card.Exactly(s, m.AMOEncoding, newRelax, 1)
		}
	}
}
