package core

import (
	"context"
	"time"

	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/sat"
)

// MSU2 is the non-incremental sibling of MSU3, matching the pre-incremental
// style of the companion report's intermediate algorithms: the same
// UNSAT-driven lower-bound search, but each round rebuilds the SAT instance
// from scratch and re-encodes the cardinality constraint with the
// sequential ("linear") encoding the report introduces for msu2/msu3.
// Comparing MSU2 against MSU3 isolates the value of incremental solving and
// incremental cardinality encodings (ablation A1/A3 territory).
type MSU2 struct {
	Opts opt.Options
	// Encoding for the per-round cardinality constraint; NewMSU2 selects
	// Sequential, the report's linear encoding.
	Encoding card.Encoding
}

// NewMSU2 returns msu2 with the sequential encoding.
func NewMSU2(o opt.Options) *MSU2 {
	return &MSU2{Opts: o, Encoding: card.Sequential}
}

// Name implements opt.Solver.
func (m *MSU2) Name() string { return "msu2" }

// Solve implements opt.Solver. Soft clauses must have unit weight.
func (m *MSU2) Solve(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) (res opt.Result) {
	requireUnweighted(w, "msu2")
	start := time.Now()
	res = opt.Result{Cost: -1}
	defer func() { res.Elapsed = time.Since(start) }()

	prep, w := opt.MaybePrep(w, m.Opts)
	if prep.HardUnsat() {
		res.Status = opt.StatusUnsat
		return res
	}
	defer prep.Finish(&res)

	// relaxedIdx records which soft clauses have been relaxed so far; the
	// rest are enforced each round.
	relaxed := make([]bool, w.NumClauses())
	lb := 0

	for {
		if ctx.Err() != nil {
			finishUnknown(&res, cnf.Weight(lb))
			return res
		}
		if adoptClosed(shared, &res, cnf.Weight(lb)) {
			return res
		}
		s := sat.New()
		// msu2 rebuilds the solver with an unguarded AtMost bound every
		// iteration: not a conservative extension, so no clause sharing.
		m.Opts.ConfigureSolver(ctx, s)
		s.EnsureVars(w.NumVars)

		// Rebuild: hard clauses, enforced soft clauses with selectors (for
		// core extraction), relaxed soft clauses with blocking variables.
		type enforcedRef struct {
			sel cnf.Var
			idx int
		}
		var (
			enforced []enforcedRef
			blits    []cnf.Lit
			bIdx     []int
			hardBad  bool
		)
		for i, c := range w.Clauses {
			switch {
			case c.Hard():
				if !s.AddClauseFrom(c.Clause) {
					hardBad = true
				}
			case relaxed[i]:
				b := cnf.PosLit(s.NewVar())
				s.AddClause(append(c.Clause.Clone(), b)...)
				blits = append(blits, b)
				bIdx = append(bIdx, i)
			default:
				sel := s.NewVar()
				s.AddClause(append(c.Clause.Clone(), cnf.NegLit(sel))...)
				enforced = append(enforced, enforcedRef{sel, i})
			}
		}
		if hardBad {
			res.Status = opt.StatusUnsat
			return res
		}
		if len(blits) > 0 {
			card.AtMost(s, m.Encoding, blits, lb)
		}

		assumps := make([]cnf.Lit, len(enforced))
		selOwner := make(map[cnf.Var]int, len(enforced))
		for i, e := range enforced {
			assumps[i] = cnf.PosLit(e.sel)
			selOwner[e.sel] = e.idx
		}
		st := s.Solve(assumps...)
		res.Iterations++
		res.Conflicts += s.Stats().Conflicts

		switch st {
		case sat.Unknown:
			finishUnknown(&res, cnf.Weight(lb))
			return res

		case sat.Sat:
			res.SatCalls++
			model := s.Model()
			cost := 0
			for _, c := range w.Clauses {
				if !c.Hard() && !model[:w.NumVars].Satisfies(c.Clause) {
					cost++
				}
			}
			res.Status = opt.StatusOptimal
			res.Cost = cnf.Weight(cost)
			res.LowerBound = res.Cost
			res.Model = snapshotModel(model, w.NumVars)
			prep.PublishUB(shared, res.Cost, res.Model)
			return res

		case sat.Unsat:
			res.UnsatCalls++
			coreLits := s.Core()
			newClauses := 0
			for _, l := range coreLits {
				if idx, ok := selOwner[l.Var()]; ok {
					relaxed[idx] = true
					newClauses++
				}
			}
			switch {
			case newClauses > 0:
				// Retry at the same bound with the new clauses relaxed.
			case len(blits) > 0 && lb < len(blits):
				// Core involves only the cardinality constraint and
				// context: the bound is too tight.
				lb++
				shared.PublishLB(cnf.Weight(lb))
			default:
				// No enforced soft clause and no effective bound in the
				// conflict: the hard clauses are unsatisfiable.
				res.Status = opt.StatusUnsat
				return res
			}
		}
	}
}
