package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/opt"
)

func TestOLLPaperExampleUnweighted(t *testing.T) {
	w := paperExample2()
	r := NewOLL(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 2 {
		t.Fatalf("status %v cost %d, want optimal 2", r.Status, r.Cost)
	}
	if !opt.VerifyModel(w, r) {
		t.Fatal("model inconsistent")
	}
}

func TestOLLWeightedBasics(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddSoft(5, lit(1))
	w.AddSoft(2, lit(-1))
	r := NewOLL(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 2 {
		t.Fatalf("status %v cost %d, want optimal 2", r.Status, r.Cost)
	}
	if !opt.VerifyModel(w, r) {
		t.Fatal("model inconsistent")
	}
}

// randWeighted builds a small random weighted partial MaxSAT instance.
func randWeighted(rng *rand.Rand) *cnf.WCNF {
	w := cnf.NewWCNF(3 + rng.Intn(6))
	for i := 0; i < 4+rng.Intn(18); i++ {
		width := 1 + rng.Intn(3)
		c := make([]cnf.Lit, 0, width)
		for j := 0; j < width; j++ {
			c = append(c, cnf.NewLit(cnf.Var(rng.Intn(w.NumVars)), rng.Intn(2) == 0))
		}
		switch {
		case rng.Intn(5) == 0:
			w.AddHard(c...)
		default:
			w.AddSoft(cnf.Weight(1+rng.Intn(9)), c...)
		}
	}
	return w
}

// TestOLLAgainstBruteForce is the main differential suite: the full engine
// and every single-mechanism ablation must agree with brute force on random
// weighted instances, with and without preprocessing.
func TestOLLAgainstBruteForce(t *testing.T) {
	solvers := []*OLL{
		NewOLL(opt.Options{}),
		{NoStratify: true},
		{NoHarden: true},
		{NoExhaust: true},
		{NoStratify: true, NoHarden: true, NoExhaust: true},
		{MinimizeCores: true},
		{Opts: opt.Options{Preprocess: true}},
		{ExhaustConflicts: 1},
	}
	rng := rand.New(rand.NewSource(90210))
	for iter := 0; iter < 120; iter++ {
		w := randWeighted(rng)
		want, _, feasible := brute.MinCostWCNF(w)
		for si, solver := range solvers {
			r := solver.Solve(context.Background(), w, nil)
			if !feasible {
				if r.Status != opt.StatusUnsat {
					t.Fatalf("iter %d solver %d: status %v, want UNSAT", iter, si, r.Status)
				}
				continue
			}
			if r.Status != opt.StatusOptimal {
				t.Fatalf("iter %d solver %d: status %v", iter, si, r.Status)
			}
			if r.Cost != want {
				t.Fatalf("iter %d solver %d: cost %d, want %d\n%v", iter, si, r.Cost, want, w.Clauses)
			}
			if !opt.VerifyModel(w, r) {
				t.Fatalf("iter %d solver %d: model inconsistent", iter, si)
			}
			if r.LowerBound != r.Cost {
				t.Fatalf("iter %d solver %d: optimal with lb %d != cost %d", iter, si, r.LowerBound, r.Cost)
			}
		}
	}
}

func TestOLLAgreesWithWMSU4(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for iter := 0; iter < 40; iter++ {
		w := cnf.NewWCNF(4 + rng.Intn(5))
		for i := 0; i < 6+rng.Intn(14); i++ {
			c := []cnf.Lit{
				cnf.NewLit(cnf.Var(rng.Intn(w.NumVars)), rng.Intn(2) == 0),
				cnf.NewLit(cnf.Var(rng.Intn(w.NumVars)), rng.Intn(2) == 0),
			}
			w.AddSoft(cnf.Weight(1+rng.Intn(4)), c...)
		}
		a := NewOLL(opt.Options{}).Solve(context.Background(), w, nil)
		b := NewWMSU4(opt.Options{}).Solve(context.Background(), w, nil)
		if a.Cost != b.Cost {
			t.Fatalf("iter %d: oll %d vs wmsu4 %d", iter, a.Cost, b.Cost)
		}
	}
}

// ladder builds the hand-built weight-ladder instance of the stratification
// and hardening unit suite: n conflicting unit pairs over one variable each,
// pair i weighted (base^i, 1) — the cheap side of every pair is falsified in
// the optimum, so cost = n and the weight profile is maximally diverse.
func ladder(n int, base cnf.Weight) *cnf.WCNF {
	w := cnf.NewWCNF(n)
	wt := cnf.Weight(1)
	for i := 0; i < n; i++ {
		w.AddSoft(wt, cnf.PosLit(cnf.Var(i)))
		w.AddSoft(1, cnf.NegLit(cnf.Var(i)))
		wt *= base
	}
	return w
}

func TestOLLStratificationLadder(t *testing.T) {
	// Broad levels: 6 items at weight 100, then unit-weight conflicts.
	// Stratification must solve the heavy stratum first (Probe.Strata > 1)
	// and still prove the optimum.
	w := cnf.NewWCNF(8)
	for i := 0; i < 6; i++ {
		w.AddSoft(100, cnf.PosLit(cnf.Var(i)))
	}
	w.AddSoft(1, cnf.PosLit(cnf.Var(6)))
	w.AddSoft(1, cnf.NegLit(cnf.Var(6)))
	w.AddSoft(1, cnf.PosLit(cnf.Var(7)))
	w.AddSoft(1, cnf.NegLit(cnf.Var(7)))
	probe := &OLLProbe{}
	m := &OLL{Probe: probe}
	r := m.Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 2 {
		t.Fatalf("got %v, want optimal 2", r)
	}
	if probe.Strata < 2 {
		t.Fatalf("strata %d, want >= 2 (heavy level first)", probe.Strata)
	}

	// A fully diverse ladder (all weights distinct) merges into one
	// stratum: one SAT call per near-singleton level would cost more than
	// it buys.
	probe2 := &OLLProbe{}
	m2 := &OLL{Probe: probe2}
	r2 := m2.Solve(context.Background(), ladder(6, 3), nil)
	if r2.Status != opt.StatusOptimal || r2.Cost != 6 {
		t.Fatalf("ladder: got %v, want optimal 6", r2)
	}
	if probe2.Strata != 1 {
		t.Fatalf("ladder strata %d, want 1 (diversity heuristic merges distinct levels)", probe2.Strata)
	}
}

func TestOLLLadderAllMechanisms(t *testing.T) {
	// Weight ladders exercise residual-weight bookkeeping hard; every
	// ablation must agree with brute force on all of them.
	for _, n := range []int{2, 4, 6} {
		for _, base := range []cnf.Weight{1, 2, 7} {
			w := ladder(n, base)
			want, _, _ := brute.MinCostWCNF(w)
			for si, m := range []*OLL{
				NewOLL(opt.Options{}),
				{NoStratify: true},
				{NoHarden: true},
				{NoExhaust: true},
			} {
				r := m.Solve(context.Background(), w, nil)
				if r.Status != opt.StatusOptimal || r.Cost != want {
					t.Fatalf("n=%d base=%d solver %d: got %v, want optimal %d", n, base, si, r, want)
				}
			}
		}
	}
}

func TestOLLHardeningFires(t *testing.T) {
	// One heavy soft that must hold and a sea of unit conflicts: after the
	// first model (UB small) any core raises LB enough that the heavy
	// assumption's weight exceeds UB − LB and hardening fires.
	w := cnf.NewWCNF(5)
	w.AddSoft(1000, cnf.PosLit(0))
	for i := 1; i < 5; i++ {
		w.AddSoft(1, cnf.PosLit(cnf.Var(i)))
		w.AddSoft(1, cnf.NegLit(cnf.Var(i)))
	}
	probe := &OLLProbe{}
	m := &OLL{Probe: probe}
	r := m.Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 4 {
		t.Fatalf("got %v, want optimal 4", r)
	}
	if probe.Hardened == 0 {
		t.Fatal("hardening never fired on the heavy soft")
	}
	if !opt.VerifyModel(w, r) {
		t.Fatal("model inconsistent")
	}
}

func TestOLLExhaustionAndSumCores(t *testing.T) {
	// Soft pigeonhole: n+2 pigeons into n holes, all placement clauses
	// soft. The optimum falsifies exactly 2, the first core is re-assumed
	// at a higher bound (exhaustion or a core over the sum output).
	n := 3
	w := cnf.NewWCNF(n * (n + 2))
	at := func(p, h int) cnf.Lit { return cnf.PosLit(cnf.Var(p*n + h)) }
	for p := 0; p < n+2; p++ {
		c := make([]cnf.Lit, n)
		for h := 0; h < n; h++ {
			c[h] = at(p, h)
		}
		w.AddSoft(3, c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n+2; p1++ {
			for p2 := p1 + 1; p2 < n+2; p2++ {
				w.AddHard(at(p1, h).Neg(), at(p2, h).Neg())
			}
		}
	}
	probe := &OLLProbe{}
	m := &OLL{Probe: probe}
	r := m.Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 6 {
		t.Fatalf("got %v, want optimal 6", r)
	}
	if probe.ExhaustRounds == 0 && probe.SumCores == 0 {
		t.Fatal("neither exhaustion nor a core over a sum output fired on soft pigeonhole")
	}

	// With exhaustion disabled the second violation must be found by a
	// core over the first core's totalizer output: cores over cores.
	probe2 := &OLLProbe{}
	m2 := &OLL{NoExhaust: true, Probe: probe2}
	r2 := m2.Solve(context.Background(), w, nil)
	if r2.Status != opt.StatusOptimal || r2.Cost != 6 {
		t.Fatalf("no-exhaust: got %v, want optimal 6", r2)
	}
	if probe2.SumCores == 0 {
		t.Fatal("no core ever contained a totalizer output")
	}
}

func TestOLLPublishesBounds(t *testing.T) {
	// LB events must be published to the shared bounds after every core.
	w := ladder(5, 2)
	var lbEvents int
	shared := opt.NewBounds()
	shared.SetObserver(func(e opt.BoundsEvent) {
		if e.HasLB && e.LB > 0 {
			lbEvents++
		}
	})
	r := NewOLL(opt.Options{}).Solve(context.Background(), w, shared)
	if r.Status != opt.StatusOptimal || r.Cost != 5 {
		t.Fatalf("got %v, want optimal 5", r)
	}
	if lbEvents == 0 {
		t.Fatal("no lower-bound improvements were published")
	}
	if lb, ok := shared.LB(); !ok || lb != 5 {
		t.Fatalf("shared LB %d ok=%v, want 5", lb, ok)
	}
}

func TestOLLAdoptsSharedUB(t *testing.T) {
	// A shared incumbent equal to the optimum lets OLL finish by closing
	// the bounds instead of finding its own model.
	w := ladder(4, 2)
	want, model, _ := brute.MinCostWCNF(w)
	shared := opt.NewBounds()
	shared.PublishUB(want, model)
	r := NewOLL(opt.Options{}).Solve(context.Background(), w, shared)
	if r.Status != opt.StatusOptimal || r.Cost != want {
		t.Fatalf("got %v, want optimal %d", r, want)
	}
}

func TestOLLHardUnsatAndDeadline(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddHard(lit(1))
	w.AddHard(lit(-1))
	w.AddSoft(3, lit(1))
	if r := NewOLL(opt.Options{}).Solve(context.Background(), w, nil); r.Status != opt.StatusUnsat {
		t.Fatalf("got %v, want UNSAT", r.Status)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w2 := paperExample2()
	if r := NewOLL(opt.Options{}).Solve(ctx, w2, nil); r.Status != opt.StatusUnknown {
		t.Fatalf("got %v, want Unknown", r.Status)
	}
}

func TestOLLName(t *testing.T) {
	if NewOLL(opt.Options{}).Name() != "oll" {
		t.Fatal("name")
	}
}

func TestNextStratum(t *testing.T) {
	mk := func(ws ...cnf.Weight) []*ollItem {
		items := make([]*ollItem, len(ws))
		for i, wt := range ws {
			items[i] = &ollItem{weight: wt}
		}
		return items
	}
	max := cnf.Weight(1 << 60)
	// Broad top level stands alone.
	if next, ok := nextStratum(mk(100, 100, 100, 1, 1), max); !ok || next != 100 {
		t.Fatalf("broad level: got %d ok=%v, want 100", next, ok)
	}
	// Fully diverse ladder merges down to the bottom.
	if next, ok := nextStratum(mk(16, 8, 4, 2, 1), max); !ok || next != 1 {
		t.Fatalf("diverse ladder: got %d ok=%v, want 1", next, ok)
	}
	// Singleton top level merges with the broad level below it.
	if next, ok := nextStratum(mk(50, 10, 10, 10, 10), max); !ok || next != 10 {
		t.Fatalf("singleton top: got %d ok=%v, want 10", next, ok)
	}
	// Levels at or above cur are excluded; spent and hardened items too.
	items := mk(100, 7, 7, 3)
	items[3].hard = true
	if next, ok := nextStratum(items, 100); !ok || next != 7 {
		t.Fatalf("below cur: got %d ok=%v, want 7", next, ok)
	}
	if _, ok := nextStratum(mk(5, 5), 5); ok {
		t.Fatal("no level below cur should report ok")
	}
}
