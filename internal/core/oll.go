package core

import (
	"context"
	"math"
	"sort"
	"time"

	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/sat"
)

// OLL is the soft-cardinality core-guided optimizer of the post-2008
// lineage: OLL as introduced for ASP by Andrés, Kaufmann, Matheis & Schaub
// (2012) and recast for MaxSAT by Morgado, Dodaro & Marques-Silva,
// "Core-Guided MaxSAT with Soft Cardinality Constraints" (CP 2014) — the
// algorithm underneath RC2 and EvalMaxSAT, and the direct descendant of the
// msu family this repository reproduces.
//
// Where msu3/msu4 keep one global cardinality constraint over all blocking
// variables, OLL gives every UNSAT core its own incremental totalizer
// (package card) and turns the totalizer's *sum outputs into new soft
// literals*: the assumption ¬out[k] ("this core's clauses suffer at most k
// violations") carries a weight, can itself appear in later cores, and is
// then reformulated exactly like an original soft clause — cores over
// cores. Each core raises the proved lower bound by the minimum residual
// weight it contains; every member keeps its residual, and a member that is
// itself a sum advances its totalizer bound by one at that minimum weight
// (the weighted bookkeeping of RC2's process_core/process_sums). Bounds are
// imposed per Solve call through assumption literals, so the kept-trail
// reuse of the incremental SAT core applies, and the shared opt.Bounds is
// published after every core.
//
// Three weighted-instance staples ride on top, each individually
// disablable for ablation:
//
//   - Stratification (Ansótegui, Bonet & Levy 2012): solve high-weight
//     strata first; a SAT outcome over a stratum yields an upper bound
//     early, and the next weight levels are merged in by the standard
//     diversity heuristic (see nextStratum).
//   - Hardening: once upper and lower bound are close, a soft whose
//     residual weight exceeds UB − LB cannot be violated by any model
//     beating the incumbent, so its assumption becomes a hard unit.
//   - Core exhaustion: a freshly created totalizer is re-assumed alone at
//     increasing bounds (under a conflict budget) until it stops being a
//     core on its own, raising the lower bound by its weight each round.
//
// OLL handles weighted and unweighted instances alike; on unit weights the
// stratification and weight bookkeeping degenerate and the loop is the
// classic unweighted OLL/MSCG scheme.
type OLL struct {
	Opts opt.Options
	// NoStratify disables stratified weight levels (ablation; unweighted
	// instances have a single stratum regardless).
	NoStratify bool
	// NoHarden disables the hardening rule (ablation).
	NoHarden bool
	// NoExhaust disables weight-aware core exhaustion (ablation).
	NoExhaust bool
	// ExhaustConflicts caps each exhaustion probe; 0 means 4000.
	ExhaustConflicts int64
	// MinimizeCores destructively shrinks every extracted core before
	// reformulation (see minimizeCore); smaller cores mean smaller
	// totalizers at the price of extra budgeted SAT probes.
	MinimizeCores bool
	// Probe, when non-nil, receives the mechanism counters of the last
	// Solve call (tests and diagnostics; not safe for concurrent reuse).
	Probe *OLLProbe
}

// OLLProbe counts the internal mechanisms of one OLL run.
type OLLProbe struct {
	// Strata is the number of weight strata actually solved (1 when
	// stratification is off or the instance is unweighted).
	Strata int
	// Hardened counts assumptions turned into hard units by the hardening
	// rule.
	Hardened int
	// Cores counts processed cores; SumCores counts how many of their
	// members were totalizer outputs (cores over cores).
	Cores, SumCores int
	// ExhaustRounds counts lower-bound increases proved by core exhaustion.
	ExhaustRounds int
}

// NewOLL returns oll with default options.
func NewOLL(o opt.Options) *OLL { return &OLL{Opts: o} }

// Name implements opt.Solver.
func (m *OLL) Name() string { return "oll" }

// ollItem is one weighted assumption of the OLL loop: either an original
// soft-clause selector or a totalizer output turned soft literal.
type ollItem struct {
	lit    cnf.Lit    // assumed (positively) while the item is active
	weight cnf.Weight // residual weight; 0 deactivates the item
	sum    *card.IncTotalizer
	bound  int  // sum != nil: lit is ¬out[bound], asserting sum ≤ bound
	hard   bool // asserted as a hard unit (hardening); never assumed again
}

const ollDefaultExhaustConflicts = 4000

// Solve implements opt.Solver. Handles weighted and unweighted partial
// MaxSAT.
func (m *OLL) Solve(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) (res opt.Result) {
	start := time.Now()
	res = opt.Result{Cost: -1}
	defer func() { res.Elapsed = time.Since(start) }()
	probe := m.Probe
	if probe != nil {
		*probe = OLLProbe{}
	}

	prep, w := opt.MaybePrep(w, m.Opts)
	if prep.HardUnsat() {
		res.Status = opt.StatusUnsat
		return res
	}
	defer prep.Finish(&res)

	s := sat.New()
	// No clause sharing: hardening and unit-core elimination assert
	// unguarded units over selector (and hence formula) variables, so OLL's
	// clause database is not a conservative extension of any shareable
	// scope (see opt.Options.AttachExchange).
	m.Opts.ConfigureSolver(ctx, s)
	softs, ok := loadSoft(s, w)
	if !ok {
		res.Status = opt.StatusUnsat
		return res
	}
	weightOf := make(map[*softClause]cnf.Weight, len(softs))
	for _, c := range softs {
		weightOf[c] = w.Clauses[c.index].Weight
	}

	run := &ollRun{
		m:        m,
		ctx:      ctx,
		s:        s,
		w:        w,
		prep:     prep,
		shared:   shared,
		softs:    softs,
		weightOf: weightOf,
		res:      &res,
		probe:    probe,
		byLit:    make(map[cnf.Lit]*ollItem),
		bestCost: cnf.Weight(math.MaxInt64),
	}
	for _, c := range softs {
		run.addItem(c.assumption(), weightOf[c], nil, 0)
	}
	run.strat = 1
	if !m.NoStratify && w.Weighted() {
		if next, ok := nextStratum(run.items, cnf.Weight(math.MaxInt64)); ok {
			run.strat = next
		}
	}
	if probe != nil {
		probe.Strata = 1
	}
	run.loop()
	return res
}

// ollRun is the mutable state of one OLL Solve call.
type ollRun struct {
	m        *OLL
	ctx      context.Context
	s        *sat.Solver
	w        *cnf.WCNF
	prep     *opt.Prep
	shared   *opt.Bounds
	softs    []*softClause
	weightOf map[*softClause]cnf.Weight
	res      *opt.Result
	probe    *OLLProbe

	items    []*ollItem // creation order: stable assumption prefix for trail reuse
	byLit    map[cnf.Lit]*ollItem
	bestCost cnf.Weight // incumbent model cost (MaxInt64 until a model exists)
	lb       cnf.Weight // Σ minimum residual weight over processed cores
	strat    cnf.Weight // active stratum boundary: assume items of weight ≥ strat
	assumps  []cnf.Lit
}

func (r *ollRun) addItem(l cnf.Lit, wt cnf.Weight, sum *card.IncTotalizer, bound int) *ollItem {
	it := &ollItem{lit: l, weight: wt, sum: sum, bound: bound}
	r.items = append(r.items, it)
	r.byLit[l] = it
	return it
}

// finishBest ends the run when the clause database (hard clauses plus
// hardened units and unit-core eliminations) admits no model: no assignment
// beats the incumbent. Without an incumbent the hard clauses themselves
// conflict — hardening and elimination only fire on proved consequences or
// with a model in hand.
func (r *ollRun) finishBest() {
	if r.res.Model == nil {
		r.res.Status = opt.StatusUnsat
		return
	}
	r.res.Status = opt.StatusOptimal
	r.res.LowerBound = r.res.Cost
}

// harden turns every active assumption whose residual weight exceeds
// UB − LB into a hard unit: violating it would already cost more than the
// incumbent model. Returns false when a hardened unit conflicts at level 0
// (no model beats the incumbent — finish via finishBest).
func (r *ollRun) harden() bool {
	if r.m.NoHarden || r.res.Model == nil {
		return true
	}
	gap := r.bestCost - r.lb
	for _, it := range r.items {
		if it.weight > 0 && !it.hard && it.weight > gap {
			it.hard = true
			if r.probe != nil {
				r.probe.Hardened++
			}
			if !r.s.AddClause(it.lit) {
				return false
			}
		}
	}
	return true
}

// advanceSum registers bound `bound` of a totalizer at weight wt — the RC2
// process_sums step. An existing item for that bound absorbs the weight
// instead (reactivating it if its residual was spent); a hardened bound
// means no model beating the incumbent ever exceeds it, so the charge can
// never apply and the chain ends. Returns the item carrying the bound, or
// nil when the sum is saturated or hardened.
func (r *ollRun) advanceSum(sum *card.IncTotalizer, bound int, wt cnf.Weight) *ollItem {
	bl, need := sum.Bound(bound)
	if !need {
		return nil // saturated: every violation of this sum is paid for
	}
	if it, ok := r.byLit[bl]; ok {
		if it.hard {
			return nil
		}
		it.weight += wt
		return it
	}
	return r.addItem(bl, wt, sum, bound)
}

// exhaust probes a fresh totalizer alone at increasing bounds under a
// conflict budget: each UNSAT outcome proves every model exceeds the bound,
// so the lower bound rises by the sum's weight and the bound advances; a
// SAT outcome yields a full model and improves the incumbent for free.
// Returns false when a probe proved the clause database unsatisfiable
// (finish via finishBest).
func (r *ollRun) exhaust(it *ollItem) bool {
	if r.m.NoExhaust {
		return true
	}
	outer := r.m.Opts.Budget(r.ctx)
	pb := outer
	pb.MaxConflicts = r.m.ExhaustConflicts
	if pb.MaxConflicts <= 0 {
		pb.MaxConflicts = ollDefaultExhaustConflicts
	}
	if outer.MaxConflicts > 0 && outer.MaxConflicts < pb.MaxConflicts {
		pb.MaxConflicts = outer.MaxConflicts
	}
	r.s.SetBudget(pb)
	defer r.s.SetBudget(outer)
	for it != nil && it.weight > 0 && r.ctx.Err() == nil {
		st := r.s.Solve(it.lit)
		r.res.Observe(r.s.Stats())
		switch st {
		case sat.Unknown:
			return true // probe budget spent; keep the current bound
		case sat.Sat:
			r.res.SatCalls++
			r.improveUB(r.s.Model())
			return true
		case sat.Unsat:
			r.res.UnsatCalls++
			if len(r.s.Core()) == 0 {
				return false
			}
			// The sum alone is a core: every model exceeds its bound.
			r.lb += it.weight
			r.shared.PublishLB(r.lb)
			if r.probe != nil {
				r.probe.ExhaustRounds++
			}
			wt := it.weight
			it.weight = 0
			if !r.s.AddClause(it.lit.Neg()) { // out[bound] is entailed
				return false
			}
			it = r.advanceSum(it.sum, it.bound+1, wt)
		}
	}
	return true
}

// improveUB rescores a model against the original soft clauses and adopts
// it when it beats the incumbent.
func (r *ollRun) improveUB(model cnf.Assignment) {
	cost := weightedModelCost(r.softs, r.weightOf, model)
	if cost < r.bestCost {
		r.bestCost = cost
		r.res.Cost = cost
		r.res.Model = snapshotModel(model, r.w.NumVars)
		r.prep.PublishUB(r.shared, r.res.Cost, r.res.Model)
	}
}

// lowerStratum activates the next weight levels; ok is false when every
// active item is already in the current stratum (the final stratum).
func (r *ollRun) lowerStratum() bool {
	next, ok := nextStratum(r.items, r.strat)
	if !ok {
		return false
	}
	r.strat = next
	if r.probe != nil {
		r.probe.Strata++
	}
	return true
}

// loop is the main OLL loop; it fills r.res.
func (r *ollRun) loop() {
	res, s := r.res, r.s
	for {
		if r.ctx.Err() != nil {
			finishUnknown(res, r.lb)
			return
		}
		if adoptClosed(r.shared, res, r.lb) {
			return
		}
		// An externally improved model tightens the incumbent like a
		// local one (and may enable hardening).
		if cost, ok := adoptBetterUB(r.shared, res); ok && cost < r.bestCost {
			r.bestCost = cost
			if r.bestCost == 0 || r.lb >= r.bestCost {
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return
			}
			if !r.harden() {
				r.finishBest()
				return
			}
		}
		r.assumps = r.assumps[:0]
		for _, it := range r.items {
			if it.weight > 0 && !it.hard && it.weight >= r.strat {
				r.assumps = append(r.assumps, it.lit)
			}
		}
		st := s.Solve(r.assumps...)
		res.Iterations++
		res.Observe(s.Stats())

		switch st {
		case sat.Unknown:
			finishUnknown(res, r.lb)
			return

		case sat.Sat:
			res.SatCalls++
			r.improveUB(s.Model())
			if r.bestCost == 0 {
				res.Status = opt.StatusOptimal
				res.LowerBound = 0
				return
			}
			if r.lb >= r.bestCost {
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return
			}
			if r.lowerStratum() {
				if !r.harden() {
					r.finishBest()
					return
				}
				continue
			}
			// Every active assumption was satisfied: the model pays
			// exactly the exhausted core weights, cost = LB = optimum.
			res.Status = opt.StatusOptimal
			res.LowerBound = res.Cost
			return

		case sat.Unsat:
			res.UnsatCalls++
			if !r.processCore() {
				return
			}
		}
	}
}

// processCore reformulates one UNSAT core; it reports false when the run is
// finished (res filled in).
func (r *ollRun) processCore() bool {
	res, s := r.res, r.s
	coreLits := s.Core()
	if len(coreLits) == 0 {
		// Unsatisfiable with no assumption involved.
		r.finishBest()
		return false
	}
	if r.m.MinimizeCores && len(coreLits) > 1 {
		probeConflicts := int64(1000)
		coreLits, _ = minimizeCore(s, coreLits, r.m.Opts.Budget(r.ctx), probeConflicts)
	}
	if r.probe != nil {
		r.probe.Cores++
	}

	// The core's minimum residual weight is exhausted: every model
	// violates at least one member, so the optimum pays at least minw more
	// than previously proved.
	minw := cnf.Weight(0)
	for _, l := range coreLits {
		it := r.byLit[l]
		if minw == 0 || it.weight < minw {
			minw = it.weight
		}
	}
	r.lb += minw
	r.shared.PublishLB(r.lb)

	// Reformulate: every member keeps its residual weight; sum members
	// advance their totalizer bound by one at weight minw; the relaxation
	// literals (one violation is paid by the lower bound) feed a new
	// totalizer whose outputs are the next generation of soft literals.
	rels := make([]cnf.Lit, 0, len(coreLits))
	for _, l := range coreLits {
		it := r.byLit[l]
		rels = append(rels, l.Neg())
		it.weight -= minw
		if it.sum != nil {
			if r.probe != nil {
				r.probe.SumCores++
			}
			r.advanceSum(it.sum, it.bound+1, minw)
		}
	}
	if len(rels) == 1 {
		// Unit core: the assumption is false in every model; its full
		// weight is paid (minw equals it) and the unit is asserted.
		if !s.AddClause(rels[0]) {
			r.finishBest()
			return false
		}
	} else {
		tot := card.NewIncTotalizer(s, rels, len(rels))
		if it := r.advanceSum(tot, 1, minw); it != nil {
			if !r.exhaust(it) {
				r.finishBest()
				return false
			}
		}
	}
	if r.res.Model != nil && r.lb >= r.bestCost {
		res.Status = opt.StatusOptimal
		res.LowerBound = res.Cost
		return false
	}
	if !r.harden() {
		r.finishBest()
		return false
	}
	return true
}

// nextStratum lowers the stratum boundary below cur over the active items'
// residual weights: the next distinct weight level always joins, and
// further levels keep joining while the admitted slice stays "diverse" —
// more than half as many distinct weights as items — the standard
// stratification heuristic (Ansótegui, Bonet & Levy 2012): near-singleton
// levels are merged together (one SAT call per level would cost more than
// the pruning buys), while broad levels get their own stratum. Returns
// ok=false when no active item has weight below cur.
func nextStratum(items []*ollItem, cur cnf.Weight) (cnf.Weight, bool) {
	counts := make(map[cnf.Weight]int)
	for _, it := range items {
		if it.weight > 0 && !it.hard && it.weight < cur {
			counts[it.weight]++
		}
	}
	if len(counts) == 0 {
		return 0, false
	}
	levels := make([]cnf.Weight, 0, len(counts))
	for wt := range counts {
		levels = append(levels, wt)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[i] > levels[j] })
	total, distinct := 0, 0
	for i, wt := range levels {
		total += counts[wt]
		distinct++
		if i+1 == len(levels) {
			return wt, true
		}
		if 2*distinct <= total {
			return wt, true // slice no longer diverse: stop merging
		}
	}
	return levels[len(levels)-1], true
}
