package core

import (
	"context"
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/opt"
)

// FuzzOLLVsBrute differential-tests the OLL engine against exhaustive
// enumeration on fuzzer-chosen weighted partial MaxSAT instances.
//
// Input encoding (one byte stream, consumed clause by clause): each clause
// starts with a header byte h — width = h%3+1, weight = h/3%8 (0 marks the
// clause hard) — followed by width literal bytes (variable = byte % 5,
// negative if byte >= 128).
func FuzzOLLVsBrute(f *testing.F) {
	f.Add([]byte{4, 1, 4, 129, 0, 1, 0, 129}) // soft x2∨¬x2, hard x1, hard ¬x1
	f.Add([]byte{3, 0, 6, 1, 9, 129, 12, 2})  // weighted units over x1/x2
	f.Add([]byte{5, 1, 130, 8, 2, 1, 11, 3, 131, 14, 0, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		const fuzzVars = 5
		const maxClauses = 24
		w := cnf.NewWCNF(fuzzVars)
		i, clauses := 0, 0
		for i < len(data) && clauses < maxClauses {
			h := int(data[i])
			i++
			width := h%3 + 1
			if i+width > len(data) {
				break
			}
			c := make([]cnf.Lit, 0, width)
			for j := 0; j < width; j++ {
				b := data[i+j]
				c = append(c, cnf.NewLit(cnf.Var(int(b)%fuzzVars), b >= 128))
			}
			i += width
			if wt := h / 3 % 8; wt == 0 {
				w.AddHard(c...)
			} else {
				w.AddSoft(cnf.Weight(wt), c...)
			}
			clauses++
		}
		if clauses == 0 {
			return
		}
		want, _, feasible := brute.MinCostWCNF(w)
		for _, m := range []*OLL{NewOLL(opt.Options{}), {NoExhaust: true}, {Opts: opt.Options{Preprocess: true}}} {
			r := m.Solve(context.Background(), w, nil)
			if !feasible {
				if r.Status != opt.StatusUnsat {
					t.Fatalf("status %v, want UNSAT\n%v", r.Status, w.Clauses)
				}
				continue
			}
			if r.Status != opt.StatusOptimal || r.Cost != want {
				t.Fatalf("got %v, want optimal %d\n%v", r, want, w.Clauses)
			}
			if !opt.VerifyModel(w, r) {
				t.Fatalf("model inconsistent\n%v", w.Clauses)
			}
		}
	})
}
