// Package core implements the core-guided MaxSAT algorithm family centred
// on msu4, the contribution of Marques-Silva & Planes, "Algorithms for
// Maximum Satisfiability using Unsatisfiable Cores", DATE 2008.
//
// All algorithms share one mechanism: a CDCL SAT solver is called on a
// working formula in which every not-yet-relaxed soft clause ωᵢ carries a
// selector literal (the clause is added as ωᵢ ∨ ¬sᵢ and sᵢ is passed as an
// assumption). An unsatisfiable outcome yields, through the solver's
// final-conflict analysis, the subset of selectors — hence of soft clauses —
// forming an unsatisfiable core. Relaxing a clause is then free: the
// negated selector ¬sᵢ already sits in the clause and simply changes role
// from "disabled" to "blocking variable bᵢ"; the algorithm stops assuming sᵢ
// and starts counting bᵢ in cardinality constraints.
//
// The paper's MiniSat 1.14 extracted cores from resolution traces; the
// assumption-based mechanism used here is the standard modern replacement
// (RC2, Open-WBO, EvalMaxSAT) and produces the same algorithmic object.
// See DESIGN.md §3 for the substitution notes.
//
// Algorithms provided:
//
//   - MSU4 — the paper's Algorithm 1. Alternates: UNSAT outcomes relax the
//     initial clauses of the reported core (optionally adding the paper's
//     line-19 "at least one blocking variable true" constraint); SAT
//     outcomes refine the upper bound and add "fewer blocking variables
//     than the best model" cardinality constraints (line 30). Terminates
//     when a core contains no initial clause, or when bounds meet.
//     The cardinality encoding is selectable: BDD (paper's v1) or sorting
//     networks (paper's v2), plus sequential counter and totalizer as
//     ablations.
//
//   - MSU1 — Fu & Malik's original core-guided algorithm, the paper's
//     reference point [11]: every UNSAT core gets a fresh relaxation
//     variable per clause plus an exactly-one constraint; clauses may
//     accumulate several relaxation variables.
//
//   - MSU2, MSU3 — the intermediate algorithms of the companion report
//     (Marques-Silva & Planes, arXiv:0712.0097): at most one blocking
//     variable per clause and an UNSAT-driven lower-bound search. MSU3
//     maintains the bound incrementally over a growing totalizer; MSU2
//     re-encodes the cardinality constraint (sequential/linear encoding)
//     in a fresh solver each round, as solvers did before incremental
//     encodings.
//
// All algorithms handle partial MaxSAT (hard clauses) and require
// unit-weight soft clauses; weighted instances must be routed to the PBO
// optimizer by the caller (the public facade does this).
package core
