package core

import (
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/sat"
)

// softClause tracks one soft clause inside an incremental core-guided run.
type softClause struct {
	lits     cnf.Clause // original literals
	selector cnf.Var    // s: assumed while the clause is initial
	relaxed  bool       // once relaxed, ¬s acts as the blocking variable b
	index    int        // position in the original WCNF
}

// blocking returns the clause's blocking literal b = ¬s.
func (c *softClause) blocking() cnf.Lit { return cnf.NegLit(c.selector) }

// assumption returns the selector literal assumed while the clause is
// enforced.
func (c *softClause) assumption() cnf.Lit { return cnf.PosLit(c.selector) }

// requireUnweighted panics if w carries non-unit soft weights; the
// core-guided algorithms in this package are defined for unit weights and
// the public facade routes weighted instances elsewhere.
func requireUnweighted(w *cnf.WCNF, algo string) {
	if w.Weighted() {
		panic("core: " + algo + " requires unit-weight soft clauses; route weighted instances to the PBO optimizer")
	}
}

// loadSoft adds w's hard clauses directly to s and every soft clause as a
// selector-guarded shell (ω ∨ ¬sel). It returns the soft clause states, or
// ok=false if the hard clauses alone are unsatisfiable.
func loadSoft(s *sat.Solver, w *cnf.WCNF) (softs []*softClause, ok bool) {
	s.EnsureVars(w.NumVars)
	for i, c := range w.Clauses {
		if c.Hard() {
			if !s.AddClauseFrom(c.Clause) {
				return nil, false
			}
			continue
		}
		sel := s.NewVar()
		shell := append(c.Clause.Clone(), cnf.NegLit(sel))
		// A shell can never conflict: ¬sel is fresh and unassigned.
		s.AddClause(shell...)
		softs = append(softs, &softClause{lits: c.Clause, selector: sel, index: i})
	}
	return softs, true
}

// selectorOwner builds a map from selector variable to soft clause.
func selectorOwner(softs []*softClause) map[cnf.Var]*softClause {
	m := make(map[cnf.Var]*softClause, len(softs))
	for _, c := range softs {
		m[c.selector] = c
	}
	return m
}

// modelCost counts the soft clauses falsified by the model. All soft
// clauses are inspected against their original literals, so gratuitously
// set blocking variables never inflate the count.
func modelCost(softs []*softClause, model cnf.Assignment) int {
	cost := 0
	for _, c := range softs {
		sat := false
		for _, l := range c.lits {
			if model.Lit(l) {
				sat = true
				break
			}
		}
		if !sat {
			cost++
		}
	}
	return cost
}

// snapshotModel copies the first n values of the model.
func snapshotModel(m cnf.Assignment, n int) cnf.Assignment {
	out := make(cnf.Assignment, n)
	copy(out, m[:n])
	return out
}

// finishUnknown fills the Unknown-result fields shared by all algorithms.
func finishUnknown(res *opt.Result, lowerBound cnf.Weight) {
	res.Status = opt.StatusUnknown
	if res.Cost >= 0 && lowerBound > res.Cost {
		lowerBound = res.Cost
	}
	res.LowerBound = lowerBound
}

// adoptClosed checks whether the shared bounds have met (another portfolio
// member proved the optimum); if so it fills res with the shared best model
// and reports true. lb is the caller's own proved lower bound, published
// before the check so the caller's final proof round also counts.
func adoptClosed(shared *opt.Bounds, res *opt.Result, lb cnf.Weight) bool {
	shared.PublishLB(lb)
	return shared.AdoptClosed(res)
}

// adoptBetterUB pulls an externally improved upper bound (and its witnessing
// model) into res when it beats res.Cost. It returns the adopted cost and
// true, or res.Cost and false.
func adoptBetterUB(shared *opt.Bounds, res *opt.Result) (cnf.Weight, bool) {
	ub, ok := shared.UB()
	if !ok || (res.Cost >= 0 && ub >= res.Cost) {
		return res.Cost, false
	}
	cost, model, ok := shared.Best()
	if !ok || (res.Cost >= 0 && cost >= res.Cost) {
		return res.Cost, false
	}
	res.Cost = cost
	res.Model = model
	return cost, true
}
