package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/brute"
	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/sat"
)

func lit(i int) cnf.Lit { return cnf.FromDIMACS(i) }

// paperExample2 is the CNF formula of Section 3.3 of the DATE 2008 paper:
// φ = ω1…ω8 = (x1)(¬x1∨¬x2)(x2)(¬x1∨¬x3)(x3)(¬x2∨¬x3)(x1∨¬x4)(¬x1∨x4).
// Its MaxSAT solution is 6 (two clauses must be falsified).
func paperExample2() *cnf.WCNF {
	f := cnf.NewFormula(4)
	f.AddClause(lit(1))
	f.AddClause(lit(-1), lit(-2))
	f.AddClause(lit(2))
	f.AddClause(lit(-1), lit(-3))
	f.AddClause(lit(3))
	f.AddClause(lit(-2), lit(-3))
	f.AddClause(lit(1), lit(-4))
	f.AddClause(lit(-1), lit(4))
	return cnf.FromFormula(f)
}

func allSolvers(o opt.Options) []opt.Solver {
	return []opt.Solver{
		NewMSU1(o),
		NewMSU2(o),
		NewMSU3(o),
		NewMSU4V1(o),
		NewMSU4V2(o),
		&MSU4{Opts: opt.Options{Encoding: card.Sequential}, Label: "msu4-seq"},
		&MSU4{Opts: opt.Options{Encoding: card.Totalizer}, Label: "msu4-tot"},
		&MSU4{Opts: o, SkipAtLeast1: true, Label: "msu4-noal1"},
		&MSU3{Opts: o, DisjointPhase: true},
	}
}

func TestMSU4PaperExample(t *testing.T) {
	w := paperExample2()
	for _, s := range allSolvers(opt.Options{}) {
		r := s.Solve(context.Background(), w, nil)
		if r.Status != opt.StatusOptimal {
			t.Fatalf("%s: status %v", s.Name(), r.Status)
		}
		if r.Cost != 2 {
			t.Fatalf("%s: cost = %d, want 2 (MaxSAT solution 6)", s.Name(), r.Cost)
		}
		if got := r.MaxSatisfied(w.NumClauses()); got != 6 {
			t.Fatalf("%s: MaxSatisfied = %d, want 6", s.Name(), got)
		}
		if !opt.VerifyModel(w, r) {
			t.Fatalf("%s: model does not witness cost %d", s.Name(), r.Cost)
		}
	}
}

func TestMSU4PaperExampleIterationShape(t *testing.T) {
	// The paper's §3.3 trace: first core {ω1,ω2,ω3}, then SAT, then core
	// {ω4,ω5,ω6}, terminating with bounds equal. The exact trace depends on
	// solver heuristics, but msu4 must finish such instances within a few
	// iterations and report both SAT and UNSAT outcomes.
	m := NewMSU4V2(opt.Options{})
	r := m.Solve(context.Background(), paperExample2(), nil)
	if r.UnsatCalls < 2 {
		t.Fatalf("expected at least 2 UNSAT iterations (two disjoint cores), got %d", r.UnsatCalls)
	}
	if r.Iterations > 10 {
		t.Fatalf("expected a short run on the paper example, got %d iterations", r.Iterations)
	}
}

func randomWCNF(rng *rand.Rand, vars, clauses int, partial bool) *cnf.WCNF {
	w := cnf.NewWCNF(vars)
	for i := 0; i < clauses; i++ {
		width := 1 + rng.Intn(3)
		c := make([]cnf.Lit, 0, width)
		for j := 0; j < width; j++ {
			c = append(c, cnf.NewLit(cnf.Var(rng.Intn(vars)), rng.Intn(2) == 0))
		}
		if partial && rng.Intn(4) == 0 {
			w.AddHard(c...)
		} else {
			w.AddSoft(1, c...)
		}
	}
	return w
}

func TestAgainstBruteForcePlain(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	solvers := allSolvers(opt.Options{})
	for iter := 0; iter < 60; iter++ {
		w := randomWCNF(rng, 3+rng.Intn(8), 4+rng.Intn(24), false)
		want, _, feasible := brute.MinCostWCNF(w)
		if !feasible {
			t.Fatal("plain MaxSAT is always feasible")
		}
		for _, s := range solvers {
			r := s.Solve(context.Background(), w, nil)
			if r.Status != opt.StatusOptimal {
				t.Fatalf("iter %d %s: status %v", iter, s.Name(), r.Status)
			}
			if r.Cost != want {
				t.Fatalf("iter %d %s: cost %d, want %d\nclauses: %v",
					iter, s.Name(), r.Cost, want, w.Clauses)
			}
			if !opt.VerifyModel(w, r) {
				t.Fatalf("iter %d %s: model inconsistent with cost", iter, s.Name())
			}
		}
	}
}

func TestAgainstBruteForcePartial(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	solvers := allSolvers(opt.Options{})
	for iter := 0; iter < 60; iter++ {
		w := randomWCNF(rng, 3+rng.Intn(7), 4+rng.Intn(20), true)
		want, _, feasible := brute.MinCostWCNF(w)
		for _, s := range solvers {
			r := s.Solve(context.Background(), w, nil)
			if !feasible {
				if r.Status != opt.StatusUnsat {
					t.Fatalf("iter %d %s: status %v, want UNSAT (hard conflict)",
						iter, s.Name(), r.Status)
				}
				continue
			}
			if r.Status != opt.StatusOptimal {
				t.Fatalf("iter %d %s: status %v", iter, s.Name(), r.Status)
			}
			if r.Cost != want {
				t.Fatalf("iter %d %s: cost %d, want %d\nclauses: %v",
					iter, s.Name(), r.Cost, want, w.Clauses)
			}
			if !opt.VerifyModel(w, r) {
				t.Fatalf("iter %d %s: model inconsistent", iter, s.Name())
			}
		}
	}
}

func TestSatisfiableInstanceCostZero(t *testing.T) {
	w := cnf.NewWCNF(2)
	w.AddSoft(1, lit(1), lit(2))
	w.AddSoft(1, lit(-1))
	for _, s := range allSolvers(opt.Options{}) {
		r := s.Solve(context.Background(), w, nil)
		if r.Status != opt.StatusOptimal || r.Cost != 0 {
			t.Fatalf("%s: got status %v cost %d, want optimal 0", s.Name(), r.Status, r.Cost)
		}
	}
}

func TestHardUnsat(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddHard(lit(1))
	w.AddHard(lit(-1))
	w.AddSoft(1, lit(1))
	for _, s := range allSolvers(opt.Options{}) {
		if r := s.Solve(context.Background(), w, nil); r.Status != opt.StatusUnsat {
			t.Fatalf("%s: got %v, want UNSAT", s.Name(), r.Status)
		}
	}
}

func TestHardUnsatDiscoveredLate(t *testing.T) {
	// Hard clauses that are unsatisfiable only through longer propagation
	// chains, to exercise the non-level-0 hard-unsat paths.
	w := cnf.NewWCNF(4)
	w.AddHard(lit(1), lit(2))
	w.AddHard(lit(1), lit(-2))
	w.AddHard(lit(-1), lit(3))
	w.AddHard(lit(-1), lit(-3))
	w.AddSoft(1, lit(4))
	w.AddSoft(1, lit(-4))
	for _, s := range allSolvers(opt.Options{}) {
		if r := s.Solve(context.Background(), w, nil); r.Status != opt.StatusUnsat {
			t.Fatalf("%s: got %v, want UNSAT", s.Name(), r.Status)
		}
	}
}

func TestEmptySoftClauses(t *testing.T) {
	// Empty soft clauses are unconditionally falsified and must be counted.
	w := cnf.NewWCNF(1)
	w.AddSoft(1)
	w.AddSoft(1)
	w.AddSoft(1, lit(1))
	for _, s := range allSolvers(opt.Options{}) {
		r := s.Solve(context.Background(), w, nil)
		if r.Status != opt.StatusOptimal || r.Cost != 2 {
			t.Fatalf("%s: got status %v cost %d, want optimal 2", s.Name(), r.Status, r.Cost)
		}
	}
}

func TestAllClausesContradictory(t *testing.T) {
	// n unit clauses on the same variable, half positive half negative.
	w := cnf.NewWCNF(1)
	for i := 0; i < 4; i++ {
		w.AddSoft(1, lit(1))
		w.AddSoft(1, lit(-1))
	}
	for _, s := range allSolvers(opt.Options{}) {
		r := s.Solve(context.Background(), w, nil)
		if r.Status != opt.StatusOptimal || r.Cost != 4 {
			t.Fatalf("%s: got status %v cost %d, want optimal 4", s.Name(), r.Status, r.Cost)
		}
	}
}

func TestCancelledContext(t *testing.T) {
	// An already-cancelled context must yield Unknown immediately (not hang,
	// not fabricate an optimum).
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := paperExample2()
	for _, s := range allSolvers(opt.Options{}) {
		r := s.Solve(ctx, w, nil)
		if r.Status != opt.StatusUnknown {
			t.Fatalf("%s: got %v, want Unknown under cancelled context", s.Name(), r.Status)
		}
	}
}

func TestExpiredDeadlineContext(t *testing.T) {
	// A context deadline in the past behaves like cancellation.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	w := paperExample2()
	for _, s := range allSolvers(opt.Options{}) {
		r := s.Solve(ctx, w, nil)
		if r.Status != opt.StatusUnknown {
			t.Fatalf("%s: got %v, want Unknown under expired deadline", s.Name(), r.Status)
		}
	}
}

func TestWeightedPanics(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddSoft(2, lit(1))
	for _, s := range allSolvers(opt.Options{}) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: weighted input should panic", s.Name())
				}
			}()
			s.Solve(context.Background(), w, nil)
		}()
	}
}

func TestMSU4BoundsMeetTermination(t *testing.T) {
	// Instances engineered to have many disjoint contradictory pairs drive
	// the U == BV termination path.
	w := cnf.NewWCNF(6)
	for v := 1; v <= 6; v++ {
		w.AddSoft(1, lit(v))
		w.AddSoft(1, lit(-v))
	}
	m := NewMSU4V2(opt.Options{})
	r := m.Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 6 {
		t.Fatalf("got status %v cost %d, want optimal 6", r.Status, r.Cost)
	}
	if r.LowerBound != r.Cost {
		t.Fatalf("bounds should meet: lb=%d cost=%d", r.LowerBound, r.Cost)
	}
}

func TestMSU4StatsPopulated(t *testing.T) {
	m := NewMSU4V1(opt.Options{})
	r := m.Solve(context.Background(), paperExample2(), nil)
	// Conflicts may legitimately be zero: with the incremental totalizer
	// bound, the example's UNSAT iterations resolve by propagation into
	// failed assumptions without a single search conflict.
	if r.Iterations == 0 || r.Elapsed <= 0 {
		t.Fatalf("stats not populated: %+v", r)
	}
	if r.SatCalls+r.UnsatCalls != r.Iterations {
		t.Fatalf("call counts %d+%d should equal iterations %d",
			r.SatCalls, r.UnsatCalls, r.Iterations)
	}
}

func TestNames(t *testing.T) {
	o := opt.Options{}
	cases := map[string]opt.Solver{
		"msu1":    NewMSU1(o),
		"msu2":    NewMSU2(o),
		"msu3":    NewMSU3(o),
		"msu4-v1": NewMSU4V1(o),
		"msu4-v2": NewMSU4V2(o),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Errorf("Name() = %q, want %q", s.Name(), want)
		}
	}
	if (&MSU4{Opts: opt.Options{Encoding: card.Sorter}}).Name() != "msu4-sorter" {
		t.Error("derived msu4 name wrong")
	}
}

func TestMSU4LargerStructured(t *testing.T) {
	// A chain of pigeonhole-style conflicts: groups of 3 variables where
	// exactly one of each group's 4 clauses must fail.
	w := cnf.NewWCNF(0)
	base := 0
	groups := 5
	for g := 0; g < groups; g++ {
		a := cnf.PosLit(cnf.Var(base))
		b := cnf.PosLit(cnf.Var(base + 1))
		c := cnf.PosLit(cnf.Var(base + 2))
		w.AddSoft(1, a, b)
		w.AddSoft(1, a.Neg(), b.Neg())
		w.AddSoft(1, a, b.Neg(), c)
		w.AddSoft(1, a.Neg(), b, c.Neg())
		base += 3
	}
	w.NumVars = base
	want, _, _ := brute.MinCostWCNF(w)
	for _, s := range allSolvers(opt.Options{}) {
		r := s.Solve(context.Background(), w, nil)
		if r.Status != opt.StatusOptimal || r.Cost != want {
			t.Fatalf("%s: cost %d, want %d", s.Name(), r.Cost, want)
		}
	}
}

func TestMSU4MinimizeCores(t *testing.T) {
	// Correctness under minimization, cross-checked against brute force.
	rng := rand.New(rand.NewSource(777))
	for iter := 0; iter < 30; iter++ {
		w := randomWCNF(rng, 3+rng.Intn(7), 4+rng.Intn(20), iter%2 == 0)
		want, _, feasible := brute.MinCostWCNF(w)
		m := &MSU4{Opts: opt.Options{Encoding: card.Sorter}, MinimizeCores: true, Label: "msu4-min"}
		r := m.Solve(context.Background(), w, nil)
		if !feasible {
			if r.Status != opt.StatusUnsat {
				t.Fatalf("iter %d: status %v, want UNSAT", iter, r.Status)
			}
			continue
		}
		if r.Status != opt.StatusOptimal || r.Cost != want {
			t.Fatalf("iter %d: status %v cost %d, want optimal %d", iter, r.Status, r.Cost, want)
		}
		if !opt.VerifyModel(w, r) {
			t.Fatalf("iter %d: model inconsistent", iter)
		}
	}
}

func TestMinimizeCoreShrinks(t *testing.T) {
	// Build a solver where the assumption core {s1, s2, s3} can be shrunk:
	// s1 -> x, s2 -> ¬x, s3 -> y. Only {s1, s2} is needed.
	s := sat.New()
	s.AddClause(lit(-10), lit(1))
	s.AddClause(lit(-11), lit(-1))
	s.AddClause(lit(-12), lit(2))
	assumps := []cnf.Lit{lit(10), lit(11), lit(12)}
	if s.Solve(assumps...) != sat.Unsat {
		t.Fatal("want unsat")
	}
	coreIn := append([]cnf.Lit{}, s.Core()...)
	coreOut, probes := minimizeCore(s, coreIn, sat.Budget{}, 1000)
	if len(coreOut) > 2 {
		t.Fatalf("core not shrunk: %v (probes %d)", coreOut, probes)
	}
	// Result is still a core.
	if s.Solve(coreOut...) != sat.Unsat {
		t.Fatal("minimized set is not a core")
	}
}

func TestSharedBoundsShortCircuit(t *testing.T) {
	// Closed shared bounds (an external member proved the optimum) make
	// every core-guided algorithm return the shared model without a single
	// SAT call.
	w := paperExample2()
	ref := NewMSU4V2(opt.Options{}).Solve(context.Background(), w, nil)
	if ref.Status != opt.StatusOptimal {
		t.Fatal("reference solve failed")
	}
	shared := opt.NewBounds()
	shared.PublishUB(ref.Cost, ref.Model)
	shared.PublishLB(ref.Cost)
	for _, s := range allSolvers(opt.Options{}) {
		r := s.Solve(context.Background(), w, shared)
		if r.Status != opt.StatusOptimal || r.Cost != ref.Cost {
			t.Fatalf("%s: status %v cost %d, want optimal %d", s.Name(), r.Status, r.Cost, ref.Cost)
		}
		if r.Iterations != 0 {
			t.Fatalf("%s: %d iterations, want 0 (closed bounds short-circuit)", s.Name(), r.Iterations)
		}
		if !opt.VerifyModel(w, r) {
			t.Fatalf("%s: adopted model inconsistent", s.Name())
		}
	}
}

func TestMSU4AdoptsExternalUB(t *testing.T) {
	// An externally published model (e.g. from WalkSAT) tightens msu4's
	// cardinality bound exactly like a locally found one: the run stays
	// correct and its lower bound closes against the adopted cost.
	w := paperExample2()
	ref := NewMSU4V2(opt.Options{}).Solve(context.Background(), w, nil)
	shared := opt.NewBounds()
	shared.PublishUB(ref.Cost, ref.Model)
	r := NewMSU4V2(opt.Options{}).Solve(context.Background(), w, shared)
	if r.Status != opt.StatusOptimal || r.Cost != ref.Cost {
		t.Fatalf("status %v cost %d, want optimal %d", r.Status, r.Cost, ref.Cost)
	}
	if !opt.VerifyModel(w, r) {
		t.Fatal("model inconsistent with cost")
	}
}

func TestMSU3DisjointPhaseLowerBound(t *testing.T) {
	// Six disjoint contradictory pairs: the disjoint phase alone should
	// reach lb = 6 and the main loop should confirm immediately.
	w := cnf.NewWCNF(6)
	for v := 1; v <= 6; v++ {
		w.AddSoft(1, lit(v))
		w.AddSoft(1, lit(-v))
	}
	m := &MSU3{DisjointPhase: true}
	r := m.Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 6 {
		t.Fatalf("status %v cost %d, want optimal 6", r.Status, r.Cost)
	}
	plain := NewMSU3(opt.Options{}).Solve(context.Background(), w, nil)
	if plain.Cost != r.Cost {
		t.Fatalf("disjoint phase changed the optimum: %d vs %d", r.Cost, plain.Cost)
	}
}

// TestMSU4IncrementalVsReencode differentially tests the default
// incremental-totalizer bound maintenance against the guarded re-encoding
// ablation (and brute force) on random unit-weight instances.
func TestMSU4IncrementalVsReencode(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	for iter := 0; iter < 120; iter++ {
		vars := 3 + rng.Intn(5)
		w := cnf.NewWCNF(vars)
		for i := 0; i < 4+rng.Intn(14); i++ {
			width := 1 + rng.Intn(3)
			var c []cnf.Lit
			for j := 0; j < width; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(vars)), rng.Intn(2) == 0))
			}
			if rng.Intn(4) == 0 {
				w.AddHard(c...)
			} else {
				w.AddSoft(1, c...)
			}
		}
		want, _, feasible := brute.MinCostWCNF(w)

		inc := &MSU4{Opts: opt.Options{Encoding: card.Sorter}}
		ri := inc.Solve(context.Background(), w, nil)
		re := &MSU4{Opts: opt.Options{Encoding: card.Sorter}, ReencodeBounds: true}
		rr := re.Solve(context.Background(), w, nil)

		if !feasible {
			if ri.Status != opt.StatusUnsat || rr.Status != opt.StatusUnsat {
				t.Fatalf("iter %d: infeasible instance not reported unsat (%v/%v)",
					iter, ri.Status, rr.Status)
			}
			continue
		}
		for name, r := range map[string]opt.Result{"incremental": ri, "reencode": rr} {
			if r.Status != opt.StatusOptimal || r.Cost != want {
				t.Fatalf("iter %d: %s got %v cost %d, want optimal %d\n%v",
					iter, name, r.Status, r.Cost, want, w.Clauses)
			}
			if !opt.VerifyModel(w, r) {
				t.Fatalf("iter %d: %s model inconsistent", iter, name)
			}
		}
	}
}

// TestCoreAlgorithmsPreprocessed differentially tests every core-guided
// algorithm with the soft-aware preprocessing stage on random instances:
// same optimum as brute force, and the returned model must be valid for
// the ORIGINAL formula (reconstruction round-trip).
func TestCoreAlgorithmsPreprocessed(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	pre := opt.Options{Encoding: card.Sorter, Preprocess: true}
	solvers := map[string]func() opt.Solver{
		"msu1":  func() opt.Solver { return NewMSU1(pre) },
		"msu2":  func() opt.Solver { return NewMSU2(pre) },
		"msu3":  func() opt.Solver { return NewMSU3(pre) },
		"msu4":  func() opt.Solver { return &MSU4{Opts: pre} },
		"wmsu1": func() opt.Solver { return NewWMSU1(pre) },
		"wmsu4": func() opt.Solver { return NewWMSU4(pre) },
	}
	for iter := 0; iter < 60; iter++ {
		vars := 3 + rng.Intn(5)
		w := cnf.NewWCNF(vars)
		for i := 0; i < 4+rng.Intn(12); i++ {
			width := 1 + rng.Intn(3)
			var c []cnf.Lit
			for j := 0; j < width; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(vars)), rng.Intn(2) == 0))
			}
			if rng.Intn(4) == 0 {
				w.AddHard(c...)
			} else {
				w.AddSoft(1, c...)
			}
		}
		want, _, feasible := brute.MinCostWCNF(w)
		for name, mk := range solvers {
			r := mk().Solve(context.Background(), w.Clone(), nil)
			if !feasible {
				if r.Status != opt.StatusUnsat {
					t.Fatalf("iter %d: %s+pre missed hard-unsat: %v", iter, name, r.Status)
				}
				continue
			}
			if r.Status != opt.StatusOptimal || r.Cost != want {
				t.Fatalf("iter %d: %s+pre got %v cost %d, want optimal %d\n%v",
					iter, name, r.Status, r.Cost, want, w.Clauses)
			}
			if !opt.VerifyModel(w, r) {
				t.Fatalf("iter %d: %s+pre model invalid on original formula", iter, name)
			}
		}
	}
}
