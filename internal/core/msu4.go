package core

import (
	"math"
	"time"

	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/sat"
)

// MSU4 is the paper's Algorithm 1.
//
// Bookkeeping follows the paper with costs instead of satisfied-clause
// counts (cost = |φ| − MaxSAT solution): U counts UNSAT iterations and is a
// lower bound on the cost; BV, the smallest number of blocking variables any
// model needed, is an upper bound on the cost. The algorithm returns BV —
// the cost of the best model — when a core contains no initial clause or
// when U reaches BV. (The pseudo-code's line 22 returns its UB variable; at
// both exits the bounds have met, so the best model's cost is the returned
// optimum, and returning it keeps the result witnessed by a model.)
type MSU4 struct {
	Opts opt.Options
	// SkipAtLeast1 disables the optional cardinality constraint of line 19
	// ("at least one of the new blocking variables is true"). The paper
	// notes the constraint is optional but "most often useful"; this switch
	// is the A2 ablation.
	SkipAtLeast1 bool
	// MinimizeCores destructively shrinks every extracted core with
	// budgeted probe SAT calls before relaxing its clauses (see
	// minimizeCore). Fewer blocking variables per iteration at the price of
	// extra SAT work.
	MinimizeCores bool
	// MinimizeProbeConflicts caps each minimization probe; 0 means 1000.
	MinimizeProbeConflicts int64
	// Label overrides the reported name (e.g. "msu4-v1"); when empty the
	// name derives from the encoding.
	Label string
}

// NewMSU4V1 returns msu4 with BDD-encoded cardinality constraints
// (the paper's "v1").
func NewMSU4V1(o opt.Options) *MSU4 {
	o.Encoding = card.BDD
	return &MSU4{Opts: o, Label: "msu4-v1"}
}

// NewMSU4V2 returns msu4 with sorting-network cardinality constraints
// (the paper's "v2").
func NewMSU4V2(o opt.Options) *MSU4 {
	o.Encoding = card.Sorter
	return &MSU4{Opts: o, Label: "msu4-v2"}
}

// Name implements opt.Solver.
func (m *MSU4) Name() string {
	if m.Label != "" {
		return m.Label
	}
	return "msu4-" + m.Opts.Encoding.String()
}

// Solve implements opt.Solver. Soft clauses must have unit weight.
func (m *MSU4) Solve(w *cnf.WCNF) (res opt.Result) {
	requireUnweighted(w, "msu4")
	start := time.Now()
	res = opt.Result{Cost: -1}
	defer func() { res.Elapsed = time.Since(start) }()

	s := sat.New()
	s.SetBudget(m.Opts.Budget())
	softs, ok := loadSoft(s, w)
	if !ok {
		res.Status = opt.StatusUnsat
		return res
	}
	owner := selectorOwner(softs)

	var (
		bestCost = math.MaxInt // BV: blocking variables needed by best model
		unsatIts = 0           // U: iterations with UNSAT outcome
		relaxed  []cnf.Lit     // VB: blocking literals of relaxed clauses
		assumps  []cnf.Lit
	)

	for {
		if m.Opts.Expired() {
			finishUnknown(&res, cnf.Weight(unsatIts))
			return res
		}
		assumps = assumps[:0]
		for _, c := range softs {
			if !c.relaxed {
				assumps = append(assumps, c.assumption())
			}
		}
		st := s.Solve(assumps...)
		res.Iterations++
		res.Conflicts = s.Stats().Conflicts

		switch st {
		case sat.Unknown:
			finishUnknown(&res, cnf.Weight(unsatIts))
			return res

		case sat.Unsat:
			res.UnsatCalls++
			coreSels := s.Core()
			if m.MinimizeCores && len(coreSels) > 1 {
				probeConflicts := m.MinimizeProbeConflicts
				if probeConflicts <= 0 {
					probeConflicts = 1000
				}
				// Probe calls are not main-loop iterations; their work is
				// still visible through res.Conflicts.
				coreSels, _ = minimizeCore(s, coreSels, m.Opts.Budget(), probeConflicts)
			}
			if len(coreSels) == 0 {
				// The core contains no initial clause (paper line 21-22).
				if res.Model == nil {
					// Never satisfiable, even before any cardinality
					// constraint: the hard clauses conflict.
					res.Status = opt.StatusUnsat
					return res
				}
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return res
			}
			// Relax every initial clause in the core (paper lines 13-18):
			// the shell ω ∨ ¬s is already in the solver; dropping the
			// assumption turns ¬s into the blocking variable b.
			newBlocking := make([]cnf.Lit, 0, len(coreSels))
			for _, sel := range coreSels {
				c := owner[sel.Var()]
				c.relaxed = true
				newBlocking = append(newBlocking, c.blocking())
			}
			relaxed = append(relaxed, newBlocking...)
			if !m.SkipAtLeast1 {
				// Paper line 19: CNF(Σ_{i∈I} bᵢ >= 1) — simply the clause
				// over the new blocking literals. Optional but it prevents
				// the solver from re-deriving the same core.
				s.AddClause(newBlocking...)
			}
			unsatIts++ // paper lines 23-24 refine the upper bound
			if res.Model != nil && unsatIts >= bestCost {
				// Lower and upper bound met (paper lines 32-33).
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return res
			}

		case sat.Sat:
			res.SatCalls++
			model := s.Model()
			// Paper line 26 counts blocking variables assigned 1; counting
			// the relaxed clauses the model actually falsifies is the same
			// quantity after discarding gratuitous blockings (a model
			// shrink MiniSat-based implementations also perform), and all
			// initial clauses are enforced by their assumptions.
			cost := modelCost(softs, model)
			if cost < bestCost {
				bestCost = cost
				res.Cost = cnf.Weight(cost)
				res.Model = snapshotModel(model, w.NumVars)
			}
			if cost == 0 {
				res.Status = opt.StatusOptimal
				res.LowerBound = 0
				return res
			}
			if unsatIts >= bestCost {
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return res
			}
			// Paper lines 30-31: require fewer blocking variables than the
			// best model used, over all blocking variables so far.
			card.AtMost(s, m.Opts.Encoding, relaxed, bestCost-1)
		}
	}
}
