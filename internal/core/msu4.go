package core

import (
	"context"
	"math"
	"time"

	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/sat"
)

// MSU4 is the paper's Algorithm 1.
//
// Bookkeeping follows the paper with costs instead of satisfied-clause
// counts (cost = |φ| − MaxSAT solution): U counts UNSAT iterations and is a
// lower bound on the cost; BV, the smallest number of blocking variables any
// model needed, is an upper bound on the cost. The algorithm returns BV —
// the cost of the best model — when a core contains no initial clause or
// when U reaches BV. (The pseudo-code's line 22 returns its UB variable; at
// both exits the bounds have met, so the best model's cost is the returned
// optimum, and returning it keeps the result witnessed by a model.)
//
// The line-30 cardinality constraint CNF(Σ b ≤ BV−1) is maintained as a
// single incremental totalizer (the mechanism msu3 already uses): relaxed
// blocking variables extend the counter by merging fresh subtrees, and the
// bound is imposed per SAT call by assuming the negation of one totalizer
// output. Tightening the bound after a better model is an assumption
// change, not a re-encoding, so no superseded encoding ever enters the
// clause database. ReencodeBounds restores the paper-faithful per-bound
// re-encoding (card.AtMost with Opts.Encoding behind a disabling guard,
// superseded bounds retired by unit clauses) as an ablation; only there
// does the v1/v2 encoding choice still matter.
//
// When run inside a portfolio, MSU4 publishes U as a lower bound and every
// improved model as an upper bound, and prunes against externally improved
// models by tightening the bound at the improved value.
type MSU4 struct {
	Opts opt.Options
	// SkipAtLeast1 disables the optional cardinality constraint of line 19
	// ("at least one of the new blocking variables is true"). The paper
	// notes the constraint is optional but "most often useful"; this switch
	// is the A2 ablation.
	SkipAtLeast1 bool
	// MinimizeCores destructively shrinks every extracted core with
	// budgeted probe SAT calls before relaxing its clauses (see
	// minimizeCore). Fewer blocking variables per iteration at the price of
	// extra SAT work.
	MinimizeCores bool
	// MinimizeProbeConflicts caps each minimization probe; 0 means 1000.
	MinimizeProbeConflicts int64
	// ReencodeBounds re-encodes the line-30 constraint at every improved
	// bound with Opts.Encoding behind a guard (the pre-incremental
	// behaviour, and the regime the paper's v1/v2 comparison measures)
	// instead of tightening one incremental totalizer via assumptions.
	ReencodeBounds bool
	// Label overrides the reported name (e.g. "msu4-v1"); when empty the
	// name derives from the encoding.
	Label string
}

// NewMSU4V1 returns msu4 with BDD-encoded cardinality constraints
// (the paper's "v1").
func NewMSU4V1(o opt.Options) *MSU4 {
	o.Encoding = card.BDD
	return &MSU4{Opts: o, Label: "msu4-v1"}
}

// NewMSU4V2 returns msu4 with sorting-network cardinality constraints
// (the paper's "v2").
func NewMSU4V2(o opt.Options) *MSU4 {
	o.Encoding = card.Sorter
	return &MSU4{Opts: o, Label: "msu4-v2"}
}

// Name implements opt.Solver.
func (m *MSU4) Name() string {
	if m.Label != "" {
		return m.Label
	}
	return "msu4-" + m.Opts.Encoding.String()
}

// Solve implements opt.Solver. Soft clauses must have unit weight.
func (m *MSU4) Solve(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) (res opt.Result) {
	requireUnweighted(w, "msu4")
	start := time.Now()
	res = opt.Result{Cost: -1}
	defer func() { res.Elapsed = time.Since(start) }()

	prep, w := opt.MaybePrep(w, m.Opts)
	if prep.HardUnsat() {
		res.Status = opt.StatusUnsat
		return res
	}
	defer prep.Finish(&res)

	s := sat.New()
	m.Opts.ConfigureSolver(ctx, s)
	softs, ok := loadSoft(s, w)
	if !ok {
		res.Status = opt.StatusUnsat
		return res
	}
	owner := selectorOwner(softs)
	// Sharing scope: the formula plus the selector block — every
	// loadSoft-based member numbers the selectors identically and owns the
	// same shells, and msu4 only ever adds core-implied clauses,
	// assumption-bounded totalizers, and guarded encodings beyond them
	// (see opt.Options.AttachExchange for the obligations).
	m.Opts.AttachExchange(s, w.NumVars+len(softs))

	var (
		bestCost = math.MaxInt // BV: blocking variables needed by best model
		unsatIts = 0           // U: iterations with UNSAT outcome
		relaxed  []cnf.Lit     // VB: blocking literals of relaxed clauses
		assumps  []cnf.Lit

		// Incremental bound (default): one growing totalizer, bound imposed
		// per call through boundLit. Created lazily at the first bound so
		// its output register can be truncated at the first model's cost
		// (the k-simplification the truncated per-bound encodings enjoy):
		// bestCost only ever decreases, so no later bound outgrows it.
		tot *card.IncTotalizer

		// Guarded re-encoding state (ReencodeBounds; see setBound).
		boundAssump  = cnf.LitUndef // assumed to activate the constraint
		boundDisable = cnf.LitUndef // unit-added to retire it
		curBound     = math.MaxInt  // k of the active AtMost(relaxed, k)
	)

	// setBound retires the active guarded bound encoding (if any) and emits
	// AtMost(relaxed, k) behind a fresh guard. Vacuous bounds need no
	// encoding and leave no active guard. ReencodeBounds mode only.
	setBound := func(k int) {
		if boundDisable != cnf.LitUndef {
			s.AddClause(boundDisable)
			boundAssump, boundDisable = cnf.LitUndef, cnf.LitUndef
		}
		curBound = k
		if k >= len(relaxed) {
			return
		}
		gv := s.NewVar()
		boundDisable = cnf.PosLit(gv)
		boundAssump = cnf.NegLit(gv)
		card.AtMost(card.Guarded(s, boundDisable), m.Opts.Encoding, relaxed, k)
	}

	for {
		if ctx.Err() != nil {
			finishUnknown(&res, cnf.Weight(unsatIts))
			return res
		}
		if adoptClosed(shared, &res, cnf.Weight(unsatIts)) {
			return res
		}
		// Pull an externally improved model: it tightens BV exactly as a
		// locally found one would (paper lines 26-31).
		if cost, ok := adoptBetterUB(shared, &res); ok && int(cost) < bestCost {
			bestCost = int(cost)
			if bestCost == 0 {
				res.Status = opt.StatusOptimal
				res.LowerBound = 0
				return res
			}
			if unsatIts >= bestCost {
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return res
			}
			if m.ReencodeBounds && bestCost-1 < curBound {
				setBound(bestCost - 1)
			}
		}
		// Assumptions: enforced selectors first, the bound literal last —
		// after a SAT iteration only the bound tightens, so the whole
		// selector prefix stays reusable by the solver's trail reuse.
		assumps = assumps[:0]
		for _, c := range softs {
			if !c.relaxed {
				assumps = append(assumps, c.assumption())
			}
		}
		boundLit := cnf.LitUndef
		if m.ReencodeBounds {
			boundLit = boundAssump
		} else if bestCost != math.MaxInt {
			if tot == nil {
				tot = card.NewIncTotalizer(s, relaxed, bestCost)
			}
			if bl, need := tot.Bound(bestCost - 1); need {
				boundLit = bl
			}
		}
		if boundLit != cnf.LitUndef {
			assumps = append(assumps, boundLit)
		}
		st := s.Solve(assumps...)
		res.Iterations++
		res.Observe(s.Stats())

		switch st {
		case sat.Unknown:
			finishUnknown(&res, cnf.Weight(unsatIts))
			return res

		case sat.Unsat:
			res.UnsatCalls++
			coreSels := s.Core()
			rawCore := len(coreSels)
			// The bound literal is not a soft-clause selector; a core that
			// contains only it plays the role the permanently-encoded
			// bound's empty core played before incrementality.
			coreSels = dropLit(coreSels, boundLit)
			boundFree := len(coreSels) == rawCore
			if m.MinimizeCores && len(coreSels) > 1 {
				probeConflicts := m.MinimizeProbeConflicts
				if probeConflicts <= 0 {
					probeConflicts = 1000
				}
				// Probe calls are not main-loop iterations; their work is
				// still visible through res.Conflicts.
				coreSels, _ = minimizeCore(s, coreSels, m.Opts.Budget(ctx), probeConflicts)
			}
			if len(coreSels) == 0 {
				// The core contains no initial clause (paper line 21-22).
				if res.Model == nil {
					// Never satisfiable, even before any cardinality
					// constraint: the hard clauses conflict.
					res.Status = opt.StatusUnsat
					return res
				}
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return res
			}
			// Relax every initial clause in the core (paper lines 13-18):
			// the shell ω ∨ ¬s is already in the solver; dropping the
			// assumption turns ¬s into the blocking variable b.
			newBlocking := make([]cnf.Lit, 0, len(coreSels))
			for _, sel := range coreSels {
				c := owner[sel.Var()]
				c.relaxed = true
				newBlocking = append(newBlocking, c.blocking())
			}
			relaxed = append(relaxed, newBlocking...)
			if boundFree {
				// The core held without the bound assumption, so its
				// at-least-one clause is implied by the hard clauses and
				// shells alone — exactly what the other portfolio members
				// own too. Handing it over saves them the search that would
				// re-derive this core. (A core that needed the bound is only
				// valid under this member's current bound: not shareable.)
				s.ShareClause(newBlocking...)
			}
			if tot != nil {
				// Before the first model no totalizer exists yet; relaxed
				// literals accumulated so far become its initial inputs.
				tot.AddInputs(newBlocking)
			}
			if !m.SkipAtLeast1 {
				// Paper line 19: CNF(Σ_{i∈I} bᵢ >= 1) — simply the clause
				// over the new blocking literals. Optional but it prevents
				// the solver from re-deriving the same core.
				s.AddClause(newBlocking...)
			}
			unsatIts++ // paper lines 23-24 refine the upper bound
			shared.PublishLB(cnf.Weight(unsatIts))
			if res.Model != nil && unsatIts >= bestCost {
				// Lower and upper bound met (paper lines 32-33).
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return res
			}

		case sat.Sat:
			res.SatCalls++
			model := s.Model()
			// Paper line 26 counts blocking variables assigned 1; counting
			// the relaxed clauses the model actually falsifies is the same
			// quantity after discarding gratuitous blockings (a model
			// shrink MiniSat-based implementations also perform), and all
			// initial clauses are enforced by their assumptions.
			cost := modelCost(softs, model)
			if cost < bestCost {
				bestCost = cost
				res.Cost = cnf.Weight(cost)
				res.Model = snapshotModel(model, w.NumVars)
				prep.PublishUB(shared, res.Cost, res.Model)
			}
			if cost == 0 {
				res.Status = opt.StatusOptimal
				res.LowerBound = 0
				return res
			}
			if unsatIts >= bestCost {
				res.Status = opt.StatusOptimal
				res.LowerBound = res.Cost
				return res
			}
			// Paper lines 30-31: require fewer blocking variables than the
			// best model used, over all blocking variables so far. The
			// incremental totalizer already covers every relaxed literal,
			// so the next iteration's bound assumption suffices; the
			// guarded ablation re-encodes even when the numeric bound is
			// unchanged, because the relaxed set has grown.
			if m.ReencodeBounds {
				setBound(bestCost - 1)
			}
		}
	}
}

// dropLit returns lits without l (order preserved). LitUndef never matches.
func dropLit(lits []cnf.Lit, l cnf.Lit) []cnf.Lit {
	if l == cnf.LitUndef {
		return lits
	}
	out := lits[:0]
	for _, x := range lits {
		if x != l {
			out = append(out, x)
		}
	}
	return out
}
