package core

import (
	"repro/internal/cnf"
	"repro/internal/sat"
)

// minimizeCore destructively shrinks a core of selector literals. The
// paper's conclusion notes msu4 "is effective only for instances for which
// SAT solvers are effective at identifying small unsatisfiable cores";
// destructive minimization trades extra (budgeted) SAT calls for smaller
// cores, hence fewer blocking variables and smaller cardinality constraints.
//
// For each selector, the probe re-solves under the remaining selectors with
// a conflict budget. If the probe is still UNSAT the selector was redundant
// and the probe's (possibly even smaller) core replaces the working set;
// SAT or budget exhaustion keeps the selector. The result is always a core:
// it equals the last UNSAT outcome's failed-assumption set, or the input
// when no probe succeeded.
//
// The caller's budget is restored before returning. probes counts SAT calls
// made.
func minimizeCore(s *sat.Solver, coreIn []cnf.Lit, outer sat.Budget, probeConflicts int64) (coreOut []cnf.Lit, probes int) {
	if len(coreIn) <= 1 {
		return coreIn, 0
	}
	work := append([]cnf.Lit{}, coreIn...)
	probeBudget := outer
	probeBudget.MaxConflicts = probeConflicts
	s.SetBudget(probeBudget)
	defer s.SetBudget(outer)

	for i := 0; i < len(work) && len(work) > 1; {
		probe := make([]cnf.Lit, 0, len(work)-1)
		probe = append(probe, work[:i]...)
		probe = append(probe, work[i+1:]...)
		switch s.Solve(probe...) {
		case sat.Unsat:
			probes++
			// The refined core is the failed-assumption subset of probe.
			next := append(work[:0], s.Core()...)
			work = next
			// Restart scanning: positions shifted.
			i = 0
		default:
			probes++
			i++
		}
	}
	return work, probes
}
