// Package proof implements DRAT-style clausal proof logging and an
// independent checker for the solvers in this repository.
//
// The package is deliberately a leaf: it imports only internal/cnf and
// shares no propagation, clause storage, or watcher code with internal/sat.
// A certificate that passes this package's checker is therefore vouched for
// by a second, much smaller implementation — the trusted base is the
// ~hundred-line RUP checker in check.go plus the bound encoder in
// encode.go, not the CDCL core, the preprocessor, the sharing bus, or any
// of the eleven optimizers.
//
// Three layers:
//
//   - Trace: a compact record of clause additions and deletions (DRAT
//     form), produced by internal/sat via its Solver.SetProof sink and by
//     internal/simp during preprocessing. Traces serialize to a varint
//     binary format and render as standard ASCII DRAT for external
//     cross-checking with drat-trim.
//   - CheckTrace: backward RUP verification of a trace against a formula
//     (its own two-watched-literal propagation; see check.go).
//   - Certificate: an optimality certificate for a MaxSAT result — the
//     model witnesses the upper bound, and one or more UNSAT steps, each a
//     DRAT refutation of hards ∧ (cost ≤ bound), witness the lower bound
//     (see certificate.go).
package proof

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/cnf"
)

// Op tags one record in a trace.
type Op byte

const (
	// OpLearn adds a clause that must be RUP with respect to the formula
	// and the preceding additions (a learnt clause, a preprocessor
	// rewrite, or the final empty clause).
	OpLearn Op = iota
	// OpDelete removes a clause from the active set (reduceDB, satisfied
	// or subsumed clauses). Deleting a clause that is not active is
	// ignored by the checker: the active set stays a superset of what the
	// producer used, which keeps RUP checks sound.
	OpDelete
	// OpImport adds a clause received from the sharing bus. Imports are
	// explicit obligations, not lemmas: the checker either rejects them
	// outright (strict mode, used for certificates — certificate traces
	// come from solo solvers) or admits them as axioms only when every
	// variable falls inside the declared sharing scope (see
	// CheckOptions.ImportScope).
	OpImport
	// OpAxiom adds a clause the producer asserts as given — a caller
	// AddClause issued after proof logging started. Certificate traces
	// must not contain axioms; strict mode rejects them.
	OpAxiom
)

func (o Op) String() string {
	switch o {
	case OpLearn:
		return "learn"
	case OpDelete:
		return "delete"
	case OpImport:
		return "import"
	case OpAxiom:
		return "axiom"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Record is one trace entry: an operation and its clause.
type Record struct {
	Op   Op
	Lits []cnf.Lit
}

// Trace is an ordered sequence of clause additions and deletions.
type Trace struct {
	Records []Record
}

// Recorder accumulates a Trace. It satisfies the sat.Proof and simp proof
// sink interfaces structurally (Learn/Delete/Import/Axiom), copying every
// literal slice it is handed — producers reuse their buffers.
type Recorder struct {
	t Trace
}

// NewRecorder returns an empty in-memory trace recorder.
func NewRecorder() *Recorder { return &Recorder{} }

func (r *Recorder) add(op Op, lits []cnf.Lit) {
	c := make([]cnf.Lit, len(lits))
	copy(c, lits)
	r.t.Records = append(r.t.Records, Record{Op: op, Lits: c})
}

// Learn records a clause addition that must be RUP.
func (r *Recorder) Learn(lits []cnf.Lit) { r.add(OpLearn, lits) }

// Delete records a clause deletion.
func (r *Recorder) Delete(lits []cnf.Lit) { r.add(OpDelete, lits) }

// Import records a clause imported from the sharing bus.
func (r *Recorder) Import(lits []cnf.Lit) { r.add(OpImport, lits) }

// Axiom records a clause added by the caller after logging started.
func (r *Recorder) Axiom(lits []cnf.Lit) { r.add(OpAxiom, lits) }

// Trace returns the recorded trace. The recorder keeps ownership; callers
// must not append further records through the recorder after using the
// returned trace.
func (r *Recorder) Trace() *Trace { return &r.t }

// Len returns the number of records accumulated so far.
func (r *Recorder) Len() int { return len(r.t.Records) }

// DRATWriter streams proof records as standard ASCII DRAT ("d" prefix for
// deletions, literals in DIMACS form, 0-terminated) to an io.Writer, for
// cross-checking with external tools such as drat-trim. Imports and axioms
// are emitted as plain additions — external checkers treat them as lemmas,
// so a DRAT file containing imports only checks if the imports happen to be
// RUP; solo (non-sharing) runs never emit them.
type DRATWriter struct {
	w   *bufio.Writer
	err error
}

// NewDRATWriter wraps w in an ASCII DRAT emitter.
func NewDRATWriter(w io.Writer) *DRATWriter {
	return &DRATWriter{w: bufio.NewWriter(w)}
}

func (d *DRATWriter) line(prefix string, lits []cnf.Lit) {
	if d.err != nil {
		return
	}
	if prefix != "" {
		if _, d.err = d.w.WriteString(prefix); d.err != nil {
			return
		}
	}
	for _, l := range lits {
		if _, d.err = fmt.Fprintf(d.w, "%d ", l.DIMACS()); d.err != nil {
			return
		}
	}
	_, d.err = d.w.WriteString("0\n")
}

// Learn emits an addition line.
func (d *DRATWriter) Learn(lits []cnf.Lit) { d.line("", lits) }

// Delete emits a "d" deletion line.
func (d *DRATWriter) Delete(lits []cnf.Lit) { d.line("d ", lits) }

// Import emits an addition line (see the type comment).
func (d *DRATWriter) Import(lits []cnf.Lit) { d.line("", lits) }

// Axiom emits an addition line (see the type comment).
func (d *DRATWriter) Axiom(lits []cnf.Lit) { d.line("", lits) }

// Flush drains buffered output and reports the first write error.
func (d *DRATWriter) Flush() error {
	if d.err != nil {
		return d.err
	}
	return d.w.Flush()
}

// WriteDRAT renders the trace as ASCII DRAT.
func (t *Trace) WriteDRAT(w io.Writer) error {
	d := NewDRATWriter(w)
	for _, rec := range t.Records {
		switch rec.Op {
		case OpDelete:
			d.Delete(rec.Lits)
		default:
			d.Learn(rec.Lits)
		}
	}
	return d.Flush()
}

// Binary trace format: each record is one op byte, a varint length, and
// that many varint literals (the raw non-negative 2v/2v+1 encoding).
// Decoding is strict — unknown ops, truncated records, and out-of-range
// literals are errors, so bit flips in stored certificates surface as
// decode failures rather than silently altered clauses.

var errTruncated = errors.New("proof: truncated trace")

func (t *Trace) appendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t.Records)))
	for _, rec := range t.Records {
		buf = append(buf, byte(rec.Op))
		buf = binary.AppendUvarint(buf, uint64(len(rec.Lits)))
		for _, l := range rec.Lits {
			buf = binary.AppendUvarint(buf, uint64(uint32(l)))
		}
	}
	return buf
}

func decodeTrace(buf []byte, numVars int) (*Trace, []byte, error) {
	n, buf, err := readUvarint(buf)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(buf)) { // each record is ≥ 2 bytes; cheap sanity cap
		return nil, nil, fmt.Errorf("proof: implausible record count %d", n)
	}
	t := &Trace{Records: make([]Record, 0, n)}
	for i := uint64(0); i < n; i++ {
		if len(buf) == 0 {
			return nil, nil, errTruncated
		}
		op := Op(buf[0])
		buf = buf[1:]
		if op > OpAxiom {
			return nil, nil, fmt.Errorf("proof: unknown op %d", byte(op))
		}
		var k uint64
		k, buf, err = readUvarint(buf)
		if err != nil {
			return nil, nil, err
		}
		if k > uint64(len(buf)) {
			return nil, nil, errTruncated
		}
		lits := make([]cnf.Lit, k)
		for j := range lits {
			var u uint64
			u, buf, err = readUvarint(buf)
			if err != nil {
				return nil, nil, err
			}
			if u >= uint64(numVars)*2 {
				return nil, nil, fmt.Errorf("proof: literal %d out of range (%d vars)", u, numVars)
			}
			lits[j] = cnf.Lit(u)
		}
		t.Records = append(t.Records, Record{Op: op, Lits: lits})
	}
	return t, buf, nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	u, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, errTruncated
	}
	return u, buf[n:], nil
}
