package proof

import (
	"fmt"
	"slices"

	"repro/internal/cnf"
)

// CheckOptions controls which trace operations the checker admits.
// The zero value is strict mode: only OpLearn and OpDelete records are
// allowed, which is what certificate traces (produced by solo solvers)
// must satisfy.
type CheckOptions struct {
	// AllowImports admits OpImport records as axioms — explicit
	// obligations discharged by the exporting solver's own proof — but
	// only when every variable in the import falls below ImportScope,
	// mirroring the sharing bus's conservative-extension discipline
	// (only variables of the original formula may cross solvers). An
	// import mentioning a variable ≥ ImportScope is rejected.
	AllowImports bool
	// ImportScope is the exclusive upper bound on variables allowed in
	// imported clauses when AllowImports is set.
	ImportScope int
	// AllowAxioms admits OpAxiom records (clauses the producer's caller
	// added after logging started). Never set for certificates.
	AllowAxioms bool
}

// CheckTrace verifies that t is a valid DRAT-style refutation of f: the
// trace must derive the empty clause, and every learnt clause consulted on
// the path to it must have the RUP property — asserting its negation and
// unit-propagating over the clauses active at that point yields a
// conflict. Verification is backward (drat-trim style): a forward pass
// indexes additions and deletions up to the first empty clause, then a
// reverse sweep checks only the lemmas marked as antecedents of later
// conflicts, unwinding additions and deletions as it goes.
//
// The propagation engine here is written against cnf.Clause slices and
// shares nothing with internal/sat — this function is the independent half
// of the proof pipeline.
func CheckTrace(f *cnf.Formula, t *Trace, opts CheckOptions) error {
	_, _, err := runCheck(f, t, opts)
	return err
}

// Trim verifies t against f and returns the trimmed trace: only the lemmas
// the backward sweep marked as antecedents of some later conflict survive,
// in their original order, ending with the empty clause; deletions are
// dropped entirely. The trim is sound because RUP is monotone in the clause
// set — each kept lemma's check used only formula clauses and earlier
// marked (hence kept) records, and dropping deletions only enlarges the
// active set. The result verifies under the same options (asserted by the
// trimming tests, and cheap enough to re-check at the call site).
//
// Trimming a trace that fails verification returns the error; a trace
// accepted wholesale without deriving an empty learnt clause (an empty
// import/axiom obligation, impossible in strict mode) is returned as is.
func Trim(f *cnf.Formula, t *Trace, opts CheckOptions) (*Trace, error) {
	c, emptyAt, err := runCheck(f, t, opts)
	if err != nil {
		return nil, err
	}
	if emptyAt < 0 {
		return t, nil
	}
	out := &Trace{}
	for i := range emptyAt {
		rec := t.Records[i]
		if rec.Op == OpDelete {
			continue
		}
		if c.marked[c.byRecord[i]] {
			out.Records = append(out.Records, rec)
		}
	}
	out.Records = append(out.Records, t.Records[emptyAt])
	return out, nil
}

// runCheck is the shared verification core behind CheckTrace and Trim. On
// success it returns the checker (whose marked flags record which additions
// some conflict consumed) and the index of the empty learnt clause, or
// emptyAt = -1 when the trace was accepted wholesale via an empty
// import/axiom obligation.
func runCheck(f *cnf.Formula, t *Trace, opts CheckOptions) (*checker, int, error) {
	c := newChecker(f)
	// Forward pass: admit records, build the clause timeline, find the
	// first empty-clause addition.
	emptyAt := -1
	for i, rec := range t.Records {
		switch rec.Op {
		case OpLearn:
		case OpDelete:
			c.delete(i, rec.Lits)
			continue
		case OpImport:
			if !opts.AllowImports {
				return nil, -1, fmt.Errorf("proof: record %d: import not allowed in a strict trace", i)
			}
			for _, l := range rec.Lits {
				if int(l.Var()) >= opts.ImportScope {
					return nil, -1, fmt.Errorf("proof: record %d: imported clause mentions variable %d outside sharing scope %d",
						i, int(l.Var())+1, opts.ImportScope)
				}
			}
		case OpAxiom:
			if !opts.AllowAxioms {
				return nil, -1, fmt.Errorf("proof: record %d: axiom not allowed in a strict trace", i)
			}
		default:
			return nil, -1, fmt.Errorf("proof: record %d: unknown op %d", i, byte(rec.Op))
		}
		c.add(i, rec.Op, rec.Lits)
		if len(rec.Lits) == 0 {
			if rec.Op != OpLearn {
				// An empty import or axiom is an obligation the producer
				// asserts wholesale; admitted modes accept it as given.
				return c, -1, nil
			}
			emptyAt = i
			break
		}
	}
	if emptyAt < 0 {
		return nil, -1, fmt.Errorf("proof: trace does not derive the empty clause")
	}

	// The final obligation: with everything before the empty clause
	// active, unit propagation alone must conflict.
	c.deactivateLast() // the empty clause itself is not an antecedent
	if err := c.rup(nil); err != nil {
		return nil, -1, fmt.Errorf("proof: empty clause: %w", err)
	}

	// Backward sweep.
	for i := emptyAt - 1; i >= 0; i-- {
		rec := t.Records[i]
		if rec.Op == OpDelete {
			c.undelete(i)
			continue
		}
		id := c.byRecord[i]
		c.deactivate(id)
		if !c.marked[id] || rec.Op != OpLearn {
			continue // unused lemma, or an import/axiom obligation
		}
		if err := c.rup(rec.Lits); err != nil {
			return nil, -1, fmt.Errorf("proof: record %d (%v): %w", i, cnf.Clause(rec.Lits), err)
		}
	}
	return c, emptyAt, nil
}

// checker is the verification state: a clause database with activity
// flags, two-watched-literal propagation, and antecedent marking.
type checker struct {
	nVars    int
	clauses  [][]cnf.Lit
	active   []bool
	marked   []bool
	watches  [][]int32 // watches[lit] = ids of clauses watching lit
	units    []int32   // ids of clauses with < 2 literals
	byKey    map[string][]int32
	byRecord map[int]int32 // record index -> clause id
	deleted  map[int]int32 // delete-record index -> deactivated id (or absent)
	lastID   int32

	val    []int8 // 1 true, -1 false, 0 unassigned
	trail  []cnf.Lit
	reason []int32 // per var: clause id forcing it, or -1
	queue  int
}

func newChecker(f *cnf.Formula) *checker {
	c := &checker{
		nVars:    f.NumVars,
		byKey:    make(map[string][]int32),
		byRecord: make(map[int]int32),
		deleted:  make(map[int]int32),
		val:      make([]int8, f.NumVars),
		reason:   make([]int32, f.NumVars),
	}
	c.watches = make([][]int32, 2*f.NumVars)
	for _, cl := range f.Clauses {
		c.install(cl)
	}
	return c
}

// install appends a clause (copying it), activates it, and hooks watches.
func (c *checker) install(lits []cnf.Lit) int32 {
	id := int32(len(c.clauses))
	cl := make([]cnf.Lit, len(lits))
	copy(cl, lits)
	// Sort and drop duplicate literals so the two watches are always
	// distinct; order is irrelevant to RUP.
	slices.Sort(cl)
	cl = slices.Compact(cl)
	c.clauses = append(c.clauses, cl)
	c.active = append(c.active, true)
	c.marked = append(c.marked, false)
	if len(cl) >= 2 {
		c.watches[cl[0]] = append(c.watches[cl[0]], id)
		c.watches[cl[1]] = append(c.watches[cl[1]], id)
	} else {
		c.units = append(c.units, id)
	}
	c.byKey[key(lits)] = append(c.byKey[key(lits)], id)
	c.lastID = id
	return id
}

func (c *checker) add(recIdx int, op Op, lits []cnf.Lit) int32 {
	id := c.install(lits)
	c.byRecord[recIdx] = id
	if op != OpLearn {
		// Imports and axioms are admitted obligations: never RUP-checked,
		// so mark them up front to keep the bookkeeping uniform.
		c.marked[id] = true
	}
	return id
}

func (c *checker) delete(recIdx int, lits []cnf.Lit) {
	ids := c.byKey[key(lits)]
	for i := len(ids) - 1; i >= 0; i-- {
		if c.active[ids[i]] {
			c.active[ids[i]] = false
			c.deleted[recIdx] = ids[i]
			return
		}
	}
	// Deleting a clause that is not active is ignored: the checker's
	// active set stays a superset of the producer's, and RUP is monotone
	// in the clause set.
}

func (c *checker) undelete(recIdx int) {
	if id, ok := c.deleted[recIdx]; ok {
		c.active[id] = true
	}
}

func (c *checker) deactivate(id int32) { c.active[id] = false }
func (c *checker) deactivateLast()     { c.active[c.lastID] = false }

// key returns a canonical map key for a clause (sorted literal set).
func key(lits []cnf.Lit) string {
	s := make([]cnf.Lit, len(lits))
	copy(s, lits)
	slices.Sort(s)
	b := make([]byte, 0, 4*len(s))
	for _, l := range s {
		b = append(b, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(b)
}

// rup asserts the negation of lemma, propagates over the active clauses,
// and requires a conflict; the conflict's antecedents are marked. The
// assignment is fully reset afterwards.
func (c *checker) rup(lemma []cnf.Lit) error {
	defer c.reset()
	for _, l := range lemma {
		if !c.enqueue(l.Neg(), -1) {
			// The negated lemma is itself contradictory (the lemma is a
			// tautology): trivially valid, nothing to mark.
			return nil
		}
	}
	for _, id := range c.units {
		if !c.active[id] {
			continue
		}
		cl := c.clauses[id]
		if len(cl) == 0 {
			c.markFrom(id)
			return nil
		}
		if !c.enqueue(cl[0], id) {
			c.markConflict(cl[0], id)
			return nil
		}
	}
	if confl := c.propagate(); confl >= 0 {
		c.markFrom(confl)
		return nil
	}
	return fmt.Errorf("not RUP: unit propagation does not conflict")
}

func (c *checker) enqueue(l cnf.Lit, why int32) bool {
	v := l.Var()
	want := int8(1)
	if l.Sign() {
		want = -1
	}
	switch c.val[v] {
	case want:
		return true
	case -want:
		return false
	}
	c.val[v] = want
	c.reason[v] = why
	c.trail = append(c.trail, l)
	return true
}

func (c *checker) falsified(l cnf.Lit) bool {
	v := c.val[l.Var()]
	if l.Sign() {
		return v == 1
	}
	return v == -1
}

func (c *checker) satisfied(l cnf.Lit) bool {
	v := c.val[l.Var()]
	if l.Sign() {
		return v == -1
	}
	return v == 1
}

// propagate runs two-watched-literal unit propagation. It returns the id
// of a conflicting clause, or -1 at fixpoint.
func (c *checker) propagate() int32 {
	for c.queue < len(c.trail) {
		p := c.trail[c.queue] // p became true; visit clauses watching ¬p
		c.queue++
		false_ := p.Neg()
		ws := c.watches[false_]
		kept := ws[:0]
		for wi := 0; wi < len(ws); wi++ {
			id := ws[wi]
			if !c.active[id] {
				kept = append(kept, id) // keep hook; may be reactivated
				continue
			}
			cl := c.clauses[id]
			// Normalize: watched literals are cl[0], cl[1].
			if cl[0] == false_ {
				cl[0], cl[1] = cl[1], cl[0]
			}
			if c.satisfied(cl[0]) {
				kept = append(kept, id)
				continue
			}
			// Find a replacement watch.
			moved := false
			for k := 2; k < len(cl); k++ {
				if !c.falsified(cl[k]) {
					cl[1], cl[k] = cl[k], cl[1]
					c.watches[cl[1]] = append(c.watches[cl[1]], id)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			kept = append(kept, id)
			if !c.enqueue(cl[0], id) {
				// Conflict: keep the remaining hooks before returning.
				kept = append(kept, ws[wi+1:]...)
				c.watches[false_] = kept
				return id
			}
		}
		c.watches[false_] = kept
	}
	return -1
}

// markFrom marks the conflicting clause and, transitively, every reason
// clause of the literals falsifying it.
func (c *checker) markFrom(confl int32) {
	seen := make(map[cnf.Var]bool)
	var stack []cnf.Lit
	c.marked[confl] = true
	stack = append(stack, c.clauses[confl]...)
	for len(stack) > 0 {
		l := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := l.Var()
		if seen[v] {
			continue
		}
		seen[v] = true
		if r := c.reason[v]; r >= 0 {
			c.marked[r] = true
			stack = append(stack, c.clauses[r]...)
		}
	}
}

// markConflict handles a conflict found while asserting unit clauses: the
// unit clause id forcing ¬l plus the reason chain of l.
func (c *checker) markConflict(l cnf.Lit, id int32) {
	c.marked[id] = true
	if r := c.reason[l.Var()]; r >= 0 {
		c.markFrom(r)
	}
}

func (c *checker) reset() {
	for _, l := range c.trail {
		c.val[l.Var()] = 0
		c.reason[l.Var()] = -1
	}
	c.trail = c.trail[:0]
	c.queue = 0
}
