package proof_test

// Adversarial certificate suite: every targeted mutation of a valid
// certificate — wrong costs, tampered models, dropped or altered proof
// steps — must be rejected by the independent checker, and arbitrary
// single-bit corruption must never let a certificate vouch for a wrong
// verdict.

import (
	"context"
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/pbo"
	"repro/internal/proof"
)

// solveAndCertify solves w with the PBO optimizer (handles weights) and
// returns the decoded, known-good certificate plus its encoding.
func solveAndCertify(t *testing.T, w *cnf.WCNF) (*proof.Certificate, []byte) {
	t.Helper()
	s := &pbo.Linear{}
	r := s.Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal {
		t.Fatalf("solve: %v", r.Status)
	}
	data, err := opt.Certify(context.Background(), w, r, opt.Options{})
	if err != nil {
		t.Fatalf("certify: %v", err)
	}
	cert, err := proof.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if err := proof.Check(w, cert); err != nil {
		t.Fatalf("baseline certificate rejected: %v", err)
	}
	return cert, data
}

// adversarialInstance is a small weighted instance with a nonzero optimum
// (so certificates carry a real proof step).
func adversarialInstance() *cnf.WCNF {
	w := cnf.NewWCNF(4)
	w.AddHard(cnf.PosLit(0), cnf.PosLit(1))
	w.AddHard(cnf.NegLit(2), cnf.PosLit(3))
	w.AddSoft(2, cnf.NegLit(0))
	w.AddSoft(3, cnf.NegLit(1))
	w.AddSoft(1, cnf.PosLit(2))
	w.AddSoft(4, cnf.NegLit(3))
	return w
}

func TestCertificateAdversarialMutations(t *testing.T) {
	w := adversarialInstance()
	cert, _ := solveAndCertify(t, w)
	if len(cert.Steps) != 1 {
		t.Fatalf("expected one proof step, got %d", len(cert.Steps))
	}

	// clone deep-copies the parts each mutation touches.
	clone := func() *proof.Certificate {
		c := *cert
		c.Model = append(cnf.Assignment(nil), cert.Model...)
		c.Steps = make([]proof.Step, len(cert.Steps))
		for i, st := range cert.Steps {
			recs := make([]proof.Record, len(st.Trace.Records))
			for j, r := range st.Trace.Records {
				recs[j] = proof.Record{Op: r.Op, Lits: append([]cnf.Lit(nil), r.Lits...)}
			}
			c.Steps[i] = proof.Step{Bound: st.Bound, Trace: &proof.Trace{Records: recs}}
		}
		return &c
	}

	reject := func(t *testing.T, m *proof.Certificate, what string) {
		t.Helper()
		if err := proof.Check(w, m); err == nil {
			t.Fatalf("%s accepted", what)
		}
	}

	t.Run("cost-too-low", func(t *testing.T) {
		m := clone()
		m.Cost--
		reject(t, m, "understated cost") // model no longer achieves it
	})
	t.Run("cost-too-high", func(t *testing.T) {
		m := clone()
		m.Cost++
		reject(t, m, "overstated cost") // model cost mismatch
	})
	t.Run("model-bit-flip", func(t *testing.T) {
		for v := range cert.Model {
			m := clone()
			m.Model[v] = !m.Model[v]
			reject(t, m, "tampered model")
		}
	})
	t.Run("dropped-proof-step", func(t *testing.T) {
		m := clone()
		m.Steps = nil
		reject(t, m, "certificate without its lower-bound proof")
	})
	t.Run("loose-bound", func(t *testing.T) {
		// A valid refutation at a bound below Cost−1 proves a weaker lower
		// bound; the checker requires tightness.
		m := clone()
		m.Steps[0].Bound--
		reject(t, m, "non-tight bound step")
	})
	t.Run("bound-at-cost", func(t *testing.T) {
		// Bound == Cost would "refute" a formula that is satisfiable (the
		// model itself satisfies it), so the step must be out of range.
		m := clone()
		m.Steps[0].Bound = m.Cost
		reject(t, m, "bound ≥ cost")
	})
	t.Run("dropped-trace-records", func(t *testing.T) {
		// Removing any single Learn record either breaks a later RUP check
		// or removes the empty clause; the refutation must not survive
		// every such cut. (Some individual learnt clauses are redundant —
		// dropping an unused lemma legitimately still checks — so assert
		// the aggregate: at least the final empty-clause drop fails.)
		m := clone()
		recs := m.Steps[0].Trace.Records
		m.Steps[0].Trace.Records = recs[:len(recs)-1]
		reject(t, m, "trace truncated before the empty clause")
	})
	t.Run("imported-clause-in-certificate", func(t *testing.T) {
		// Certificates are solo artifacts: an import record — even one
		// whose clause is harmless — must be rejected by strict checking.
		m := clone()
		recs := m.Steps[0].Trace.Records
		m.Steps[0].Trace.Records = append([]proof.Record{
			{Op: proof.OpImport, Lits: []cnf.Lit{cnf.PosLit(0)}},
		}, recs...)
		reject(t, m, "import inside a certificate trace")
	})
	t.Run("wrong-numvars", func(t *testing.T) {
		m := clone()
		m.NumVars++
		reject(t, m, "variable-count mismatch")
	})
	t.Run("model-too-short", func(t *testing.T) {
		m := clone()
		m.Model = m.Model[:len(m.Model)-1]
		reject(t, m, "truncated model")
	})
}

// TestCertificateBitFlipSoundness flips every bit of a serialized
// certificate and asserts the one property corruption must never break:
// an accepted certificate certifies the true optimum. (Many flips are
// rejected outright by the strict decoder; a flip that survives decoding
// and checking must not have changed the verdict.)
func TestCertificateBitFlipSoundness(t *testing.T) {
	w := adversarialInstance()
	_, data := solveAndCertify(t, w)
	trueCost, _, feasible := brute.MinCostWCNF(w)
	if !feasible {
		t.Fatal("instance must be feasible")
	}

	rejected := 0
	for bit := 0; bit < len(data)*8; bit++ {
		mut := append([]byte(nil), data...)
		mut[bit/8] ^= 1 << (bit % 8)
		cert, err := proof.Decode(mut)
		if err != nil {
			rejected++
			continue
		}
		if err := proof.Check(w, cert); err != nil {
			rejected++
			continue
		}
		// Survived: the certified verdict must still be the truth.
		if cert.Kind != proof.KindOptimal || cert.Cost != trueCost {
			t.Fatalf("bit %d: corrupted certificate verified a wrong verdict (kind=%d cost=%d, true cost %d)",
				bit, cert.Kind, cert.Cost, trueCost)
		}
	}
	if rejected == 0 {
		t.Fatal("no corruption was ever rejected — the checker is not looking at the bytes")
	}
	t.Logf("bit flips: %d/%d rejected, %d benign", rejected, len(data)*8, len(data)*8-rejected)
}
