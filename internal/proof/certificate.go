package proof

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/cnf"
)

// Kind distinguishes the two certificate shapes.
type Kind byte

const (
	// KindOptimal certifies an OPTIMAL MaxSAT answer: the model witnesses
	// the upper bound, the UNSAT steps witness the lower bound.
	KindOptimal Kind = 1
	// KindUnsat certifies that the hard clauses alone are unsatisfiable.
	KindUnsat Kind = 2
)

// Step is one lower-bound witness: a DRAT refutation of
// hards ∧ (cost ≤ Bound), i.e. a machine-checked proof that every
// assignment satisfying the hards costs more than Bound. For KindUnsat
// certificates Bound is -1 and the trace refutes the hards alone.
type Step struct {
	Bound cnf.Weight
	Trace *Trace
}

// Certificate is a self-contained, independently checkable record of a
// MaxSAT verdict. Check validates it against the original instance — not
// against anything the producing solver stored — so a certificate that
// passes vouches for the answer even if the solver, the preprocessor, the
// sharing bus, or the cache that stored it misbehaved.
type Certificate struct {
	Kind    Kind
	NumVars int
	Cost    cnf.Weight
	Model   cnf.Assignment
	Steps   []Step
}

// Check validates cert against the instance w:
//
//   - KindOptimal: the model is total over w's variables, satisfies every
//     hard clause, and its soft cost equals cert.Cost; every step's trace
//     is a strict-mode RUP refutation of hards ∧ (cost ≤ step.Bound); and
//     unless Cost is zero, some step has Bound = Cost−1 — together: no
//     assignment does better than the model, so Cost is the optimum.
//   - KindUnsat: at least one step refutes the hard clauses alone.
//
// The bound formulas are rebuilt here from (w, bound) by the same encoder
// the producer used; nothing clause-shaped inside the certificate is
// trusted without a RUP check.
func Check(w *cnf.WCNF, cert *Certificate) error {
	switch cert.Kind {
	case KindUnsat:
		if len(cert.Steps) == 0 {
			return fmt.Errorf("proof: UNSAT certificate has no refutation step")
		}
		hards := w.Hards()
		for i, st := range cert.Steps {
			if st.Bound != -1 {
				return fmt.Errorf("proof: UNSAT certificate step %d has bound %d (want -1)", i, st.Bound)
			}
			if err := checkStep(hards, st); err != nil {
				return fmt.Errorf("proof: step %d: %w", i, err)
			}
		}
		return nil
	case KindOptimal:
		if cert.NumVars != w.NumVars {
			return fmt.Errorf("proof: certificate is for %d variables, instance has %d", cert.NumVars, w.NumVars)
		}
		if len(cert.Model) < w.NumVars {
			return fmt.Errorf("proof: model covers %d of %d variables", len(cert.Model), w.NumVars)
		}
		cost, hardOK := w.CostOf(cert.Model)
		if !hardOK {
			return fmt.Errorf("proof: model violates a hard clause")
		}
		if cost != cert.Cost {
			return fmt.Errorf("proof: model costs %d, certificate claims %d", cost, cert.Cost)
		}
		if cert.Cost < 0 {
			return fmt.Errorf("proof: negative certified cost %d", cert.Cost)
		}
		tight := cert.Cost == 0
		for i, st := range cert.Steps {
			if st.Bound < 0 || st.Bound >= cert.Cost {
				return fmt.Errorf("proof: step %d bound %d outside [0, %d)", i, st.Bound, cert.Cost)
			}
			f := BoundFormula(w, st.Bound)
			if err := checkStep(f, st); err != nil {
				return fmt.Errorf("proof: step %d (bound %d): %w", i, st.Bound, err)
			}
			if st.Bound == cert.Cost-1 {
				tight = true
			}
		}
		if !tight {
			return fmt.Errorf("proof: no step refutes bound %d; cost %d is not certified optimal", cert.Cost-1, cert.Cost)
		}
		return nil
	default:
		return fmt.Errorf("proof: unknown certificate kind %d", byte(cert.Kind))
	}
}

func checkStep(f *cnf.Formula, st Step) error {
	if st.Trace == nil {
		return fmt.Errorf("missing trace")
	}
	for i, rec := range st.Trace.Records {
		for _, l := range rec.Lits {
			if l < 0 || int(l.Var()) >= f.NumVars {
				return fmt.Errorf("record %d: literal %d outside the %d-variable bound formula", i, int32(l), f.NumVars)
			}
		}
	}
	return CheckTrace(f, st.Trace, CheckOptions{})
}

// CheckBytes decodes a serialized certificate and validates it against w.
// Any decode failure — including truncation and bit flips that corrupt the
// framing — is a rejection.
func CheckBytes(w *cnf.WCNF, data []byte) error {
	cert, err := Decode(data)
	if err != nil {
		return err
	}
	return Check(w, cert)
}

var certMagic = []byte("MXC1")

// Encode serializes the certificate to a compact binary blob.
func (c *Certificate) Encode() []byte {
	buf := append([]byte(nil), certMagic...)
	buf = append(buf, byte(c.Kind))
	buf = binary.AppendUvarint(buf, uint64(c.NumVars))
	if c.Kind == KindOptimal {
		buf = binary.AppendUvarint(buf, uint64(c.Cost))
		model := make([]byte, (c.NumVars+7)/8)
		for v := 0; v < c.NumVars && v < len(c.Model); v++ {
			if c.Model[v] {
				model[v/8] |= 1 << (v % 8)
			}
		}
		buf = append(buf, model...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.Steps)))
	for _, st := range c.Steps {
		buf = binary.AppendUvarint(buf, uint64(st.Bound+1))
		buf = st.Trace.appendBinary(buf)
	}
	return buf
}

// maxTraceVars bounds literal values accepted while decoding a trace; the
// real bound (the rebuilt step formula's variable count) is enforced by
// Check before any propagation touches the literals.
const maxTraceVars = 1 << 28

// Decode parses a certificate produced by Encode. Decoding is strict:
// unknown kinds, truncated fields, out-of-range values, and trailing bytes
// are all errors.
func Decode(data []byte) (*Certificate, error) {
	if !bytes.HasPrefix(data, certMagic) {
		return nil, fmt.Errorf("proof: bad certificate magic")
	}
	buf := data[len(certMagic):]
	if len(buf) == 0 {
		return nil, errTruncated
	}
	cert := &Certificate{Kind: Kind(buf[0])}
	buf = buf[1:]
	if cert.Kind != KindOptimal && cert.Kind != KindUnsat {
		return nil, fmt.Errorf("proof: unknown certificate kind %d", byte(cert.Kind))
	}
	nv, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if nv > maxTraceVars {
		return nil, fmt.Errorf("proof: implausible variable count %d", nv)
	}
	cert.NumVars = int(nv)
	if cert.Kind == KindOptimal {
		var cost uint64
		cost, buf, err = readUvarint(buf)
		if err != nil {
			return nil, err
		}
		cert.Cost = cnf.Weight(cost)
		nbytes := (cert.NumVars + 7) / 8
		if len(buf) < nbytes {
			return nil, errTruncated
		}
		cert.Model = make(cnf.Assignment, cert.NumVars)
		for v := 0; v < cert.NumVars; v++ {
			cert.Model[v] = buf[v/8]&(1<<(v%8)) != 0
		}
		buf = buf[nbytes:]
	}
	nsteps, buf, err := readUvarint(buf)
	if err != nil {
		return nil, err
	}
	if nsteps > uint64(len(buf))+1 {
		return nil, fmt.Errorf("proof: implausible step count %d", nsteps)
	}
	for i := uint64(0); i < nsteps; i++ {
		var b uint64
		b, buf, err = readUvarint(buf)
		if err != nil {
			return nil, err
		}
		var t *Trace
		t, buf, err = decodeTrace(buf, maxTraceVars)
		if err != nil {
			return nil, err
		}
		cert.Steps = append(cert.Steps, Step{Bound: cnf.Weight(b) - 1, Trace: t})
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("proof: %d trailing bytes after certificate", len(buf))
	}
	return cert, nil
}
