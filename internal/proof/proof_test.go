package proof_test

// Tests for the proof package's three layers — trace format, independent
// RUP checker, bound encoding — plus cross-checks of the producers
// (internal/sat proof logging, internal/simp rewrite logging) against the
// checker. The package under test is a leaf; the test package may import
// the producers because the dependency arrow still points the right way.

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/proof"
	"repro/internal/sat"
	"repro/internal/simp"
)

// php builds the pigeonhole CNF PHP(pigeons, holes): unsatisfiable whenever
// pigeons > holes.
func php(pigeons, holes int) *cnf.Formula {
	f := cnf.NewFormula(pigeons * holes)
	v := func(p, h int) cnf.Lit { return cnf.PosLit(cnf.Var(p*holes + h)) }
	for p := 0; p < pigeons; p++ {
		c := make([]cnf.Lit, holes)
		for h := 0; h < holes; h++ {
			c[h] = v(p, h)
		}
		f.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(v(p1, h).Neg(), v(p2, h).Neg())
			}
		}
	}
	return f
}

// refuteWithSolver runs a fresh proof-logged solver on f and returns the
// recorded trace (t.Fatal on a SAT or Unknown verdict).
func refuteWithSolver(t *testing.T, f *cnf.Formula) *proof.Trace {
	t.Helper()
	s := sat.New()
	s.EnsureVars(f.NumVars)
	for _, c := range f.Clauses {
		if !s.AddClauseFrom(c) {
			return &proof.Trace{Records: []proof.Record{{Op: proof.OpLearn}}}
		}
	}
	rec := proof.NewRecorder()
	s.SetProof(rec)
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("expected UNSAT, got %v", st)
	}
	return rec.Trace()
}

func TestSolverTraceChecks(t *testing.T) {
	f := php(4, 3)
	tr := refuteWithSolver(t, f)
	if err := proof.CheckTrace(f, tr, proof.CheckOptions{}); err != nil {
		t.Fatalf("solver refutation rejected: %v", err)
	}
}

func TestCheckTraceRejectsAdversarial(t *testing.T) {
	f := php(4, 3)
	tr := refuteWithSolver(t, f)

	t.Run("truncated-before-empty", func(t *testing.T) {
		cut := *tr
		// Drop the final empty clause (and anything after it).
		for i, r := range cut.Records {
			if r.Op == proof.OpLearn && len(r.Lits) == 0 {
				cut.Records = cut.Records[:i]
				break
			}
		}
		if err := proof.CheckTrace(f, &cut, proof.CheckOptions{}); err == nil {
			t.Fatal("trace without an empty clause accepted")
		}
	})

	t.Run("non-rup-lemma", func(t *testing.T) {
		// A bare unit over a fresh-ish variable is not a consequence of
		// PHP's clauses, and the empty clause right after it does not
		// propagate to a conflict either.
		bogus := &proof.Trace{Records: []proof.Record{
			{Op: proof.OpLearn, Lits: []cnf.Lit{cnf.PosLit(0)}},
			{Op: proof.OpLearn},
		}}
		if err := proof.CheckTrace(f, bogus, proof.CheckOptions{}); err == nil {
			t.Fatal("non-RUP derivation accepted")
		}
	})

	t.Run("import-rejected-strict", func(t *testing.T) {
		withImport := &proof.Trace{Records: append([]proof.Record{
			{Op: proof.OpImport, Lits: []cnf.Lit{cnf.PosLit(0)}},
		}, tr.Records...)}
		err := proof.CheckTrace(f, withImport, proof.CheckOptions{})
		if err == nil || !strings.Contains(err.Error(), "import") {
			t.Fatalf("import in strict mode: got %v", err)
		}
	})

	t.Run("axiom-rejected-strict", func(t *testing.T) {
		withAxiom := &proof.Trace{Records: append([]proof.Record{
			{Op: proof.OpAxiom, Lits: []cnf.Lit{cnf.PosLit(0)}},
		}, tr.Records...)}
		err := proof.CheckTrace(f, withAxiom, proof.CheckOptions{})
		if err == nil || !strings.Contains(err.Error(), "axiom") {
			t.Fatalf("axiom in strict mode: got %v", err)
		}
	})

	t.Run("import-out-of-scope", func(t *testing.T) {
		// Imports are admitted only below the declared sharing scope; a
		// clause mentioning a variable at or past it must be rejected even
		// in the permissive mode.
		out := &proof.Trace{Records: []proof.Record{
			{Op: proof.OpImport, Lits: []cnf.Lit{cnf.PosLit(cnf.Var(f.NumVars - 1))}},
			{Op: proof.OpLearn},
		}}
		opts := proof.CheckOptions{AllowImports: true, ImportScope: f.NumVars - 1}
		err := proof.CheckTrace(f, out, opts)
		if err == nil || !strings.Contains(err.Error(), "scope") {
			t.Fatalf("out-of-scope import: got %v", err)
		}
	})

	t.Run("import-in-scope-admitted", func(t *testing.T) {
		// An in-scope import is an axiom: asserting a unit that
		// contradicts PHP's propagation makes the empty clause RUP.
		in := &proof.Trace{Records: append([]proof.Record{
			{Op: proof.OpImport, Lits: []cnf.Lit{cnf.PosLit(0)}},
		}, tr.Records...)}
		opts := proof.CheckOptions{AllowImports: true, ImportScope: f.NumVars}
		if err := proof.CheckTrace(f, in, opts); err != nil {
			t.Fatalf("in-scope import rejected: %v", err)
		}
	})

	t.Run("deleting-needed-clause", func(t *testing.T) {
		// Deleting every original clause up front starves the final
		// propagation: nothing can conflict, so the trace must fail.
		var recs []proof.Record
		for _, c := range f.Clauses {
			recs = append(recs, proof.Record{Op: proof.OpDelete, Lits: append([]cnf.Lit(nil), c...)})
		}
		recs = append(recs, proof.Record{Op: proof.OpLearn})
		if err := proof.CheckTrace(f, &proof.Trace{Records: recs}, proof.CheckOptions{}); err == nil {
			t.Fatal("trace that deleted its own support accepted")
		}
	})
}

// TestSimpTraceChecks drives the preprocessor's proof sink: on a formula
// preprocessing alone refutes, the logged rewrites must form a checkable
// refutation.
func TestSimpTraceChecks(t *testing.T) {
	// Unit chain forcing a conflict: x1, x1→x2, x2→x3, ¬x3 ∨ ¬x1 plus x3→¬x1
	// style binary clauses. Unit propagation inside simp derives the empty
	// clause.
	f := cnf.NewFormula(3)
	f.AddClause(cnf.PosLit(0))
	f.AddClause(cnf.NegLit(0), cnf.PosLit(1))
	f.AddClause(cnf.NegLit(1), cnf.PosLit(2))
	f.AddClause(cnf.NegLit(2), cnf.NegLit(0))

	rec := proof.NewRecorder()
	res := simp.Preprocess(f, simp.Options{Proof: rec})
	if !res.Unsat {
		t.Fatal("expected preprocessing to prove UNSAT")
	}
	if err := proof.CheckTrace(f, rec.Trace(), proof.CheckOptions{}); err != nil {
		t.Fatalf("simp refutation rejected: %v", err)
	}
}

// TestSimpPlusSolverTraceChecks replays the cmd/sat -simp -proof pipeline in
// memory: the preprocessor's rewrites followed by the solver's learnt
// clauses must check against the ORIGINAL formula.
func TestSimpPlusSolverTraceChecks(t *testing.T) {
	f := php(4, 3)
	rec := proof.NewRecorder()
	res := simp.Preprocess(f, simp.Options{Proof: rec})
	if res.Unsat {
		t.Skip("preprocessing alone refuted the instance; covered elsewhere")
	}
	s := sat.New()
	s.EnsureVars(f.NumVars)
	if !s.AddFormula(res.Formula) {
		rec.Learn(nil)
	} else {
		s.SetProof(rec)
		if st := s.Solve(); st != sat.Unsat {
			t.Fatalf("expected UNSAT, got %v", st)
		}
	}
	if err := proof.CheckTrace(f, rec.Trace(), proof.CheckOptions{}); err != nil {
		t.Fatalf("simp+solver refutation rejected against the original formula: %v", err)
	}
}

// TestBoundFormulaSemantics checks the relaxation encoding against brute
// force: BoundFormula(w, b) must be satisfiable exactly when some
// assignment satisfies the hards with soft cost ≤ b.
func TestBoundFormulaSemantics(t *testing.T) {
	w := cnf.NewWCNF(4)
	w.AddHard(cnf.PosLit(0), cnf.PosLit(1))
	w.AddSoft(3, cnf.NegLit(0))
	w.AddSoft(4, cnf.NegLit(1))
	w.AddSoft(2, cnf.PosLit(2), cnf.PosLit(3))
	w.AddSoft(5, cnf.NegLit(2))

	minCost, _, feasible := brute.MinCostWCNF(w)
	if !feasible {
		t.Fatal("test instance should be feasible")
	}
	maxW := w.SoftWeightSum()
	for b := cnf.Weight(0); b <= maxW; b++ {
		f := proof.BoundFormula(w, b)
		s := sat.New()
		s.EnsureVars(f.NumVars)
		ok := true
		for _, c := range f.Clauses {
			if !s.AddClauseFrom(c) {
				ok = false
				break
			}
		}
		satisfiable := ok && s.Solve() == sat.Sat
		want := b >= minCost
		if satisfiable != want {
			t.Fatalf("bound %d: satisfiable=%v, want %v (min cost %d)", b, satisfiable, want, minCost)
		}
	}
}

func TestTraceBinaryRoundTrip(t *testing.T) {
	f := php(4, 3)
	tr := refuteWithSolver(t, f)
	cert := &proof.Certificate{
		Kind:    proof.KindUnsat,
		NumVars: f.NumVars,
		Steps:   []proof.Step{{Bound: -1, Trace: tr}},
	}
	enc := cert.Encode()
	dec, err := proof.Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Kind != cert.Kind || dec.NumVars != cert.NumVars || len(dec.Steps) != 1 {
		t.Fatalf("round trip changed the header: %+v", dec)
	}
	if len(dec.Steps[0].Trace.Records) != len(tr.Records) {
		t.Fatalf("round trip changed the record count: %d vs %d",
			len(dec.Steps[0].Trace.Records), len(tr.Records))
	}
	for i, r := range tr.Records {
		got := dec.Steps[0].Trace.Records[i]
		if got.Op != r.Op || len(got.Lits) != len(r.Lits) {
			t.Fatalf("record %d changed: %+v vs %+v", i, got, r)
		}
	}
	// Truncations of the encoding must all fail to decode, not panic.
	for n := 0; n < len(enc); n++ {
		if _, err := proof.Decode(enc[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// Trailing garbage is rejected.
	if _, err := proof.Decode(append(append([]byte(nil), enc...), 0x00)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestDRATOutput(t *testing.T) {
	tr := &proof.Trace{Records: []proof.Record{
		{Op: proof.OpLearn, Lits: []cnf.Lit{cnf.PosLit(0), cnf.NegLit(1)}},
		{Op: proof.OpDelete, Lits: []cnf.Lit{cnf.PosLit(0), cnf.NegLit(1)}},
		{Op: proof.OpLearn},
	}}
	var buf bytes.Buffer
	if err := tr.WriteDRAT(&buf); err != nil {
		t.Fatal(err)
	}
	want := "1 -2 0\nd 1 -2 0\n0\n"
	if buf.String() != want {
		t.Fatalf("DRAT output %q, want %q", buf.String(), want)
	}
}

// TestCertifyEndToEnd produces real certificates through opt.Certify and
// validates them with the independent checker.
func TestCertifyEndToEnd(t *testing.T) {
	ctx := context.Background()

	t.Run("unsat", func(t *testing.T) {
		f := php(4, 3)
		w := cnf.NewWCNF(f.NumVars)
		for _, c := range f.Clauses {
			w.AddHard(c...)
		}
		w.AddSoft(1, cnf.PosLit(0))
		r := opt.Result{Status: opt.StatusUnsat, Cost: -1}
		data, err := opt.Certify(ctx, w, r, opt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := proof.CheckBytes(w, data); err != nil {
			t.Fatalf("UNSAT certificate rejected: %v", err)
		}
	})

	t.Run("optimal-not-actually-optimal", func(t *testing.T) {
		// Claiming a cost above the optimum must fail certification: the
		// bound formula at claimed−1 is satisfiable.
		w := cnf.NewWCNF(2)
		w.AddSoft(1, cnf.PosLit(0))
		w.AddSoft(1, cnf.NegLit(0))
		w.AddSoft(1, cnf.PosLit(1))
		// True optimum is 1 (falsify one of the x0 units). Claim 2 with a
		// model that really costs 2.
		r := opt.Result{Status: opt.StatusOptimal, Cost: 2, Model: cnf.Assignment{true, false}}
		if _, err := opt.Certify(ctx, w, r, opt.Options{}); err == nil {
			t.Fatal("certified a non-optimal cost")
		}
	})

	t.Run("model-cost-mismatch", func(t *testing.T) {
		w := cnf.NewWCNF(1)
		w.AddSoft(1, cnf.PosLit(0))
		w.AddSoft(1, cnf.NegLit(0))
		r := opt.Result{Status: opt.StatusOptimal, Cost: 0, Model: cnf.Assignment{true}}
		if _, err := opt.Certify(ctx, w, r, opt.Options{}); err == nil {
			t.Fatal("certified a model that does not achieve the claimed cost")
		}
	})
}

// TestTrim asserts the backward-marking trim: the trimmed trace still
// verifies, is never larger than the original, drops all deletions, and on
// real solver refutations is materially smaller.
func TestTrim(t *testing.T) {
	f := php(5, 4)
	tr := refuteWithSolver(t, f)
	trimmed, err := proof.Trim(f, tr, proof.CheckOptions{})
	if err != nil {
		t.Fatalf("Trim rejected a valid refutation: %v", err)
	}
	if err := proof.CheckTrace(f, trimmed, proof.CheckOptions{}); err != nil {
		t.Fatalf("trimmed trace no longer verifies: %v", err)
	}
	if len(trimmed.Records) > len(tr.Records) {
		t.Fatalf("trim grew the trace: %d -> %d", len(tr.Records), len(trimmed.Records))
	}
	for i, rec := range trimmed.Records {
		if rec.Op == proof.OpDelete {
			t.Fatalf("trimmed trace keeps a deletion at record %d", i)
		}
	}
	last := trimmed.Records[len(trimmed.Records)-1]
	if last.Op != proof.OpLearn || len(last.Lits) != 0 {
		t.Fatalf("trimmed trace does not end with the empty clause: %+v", last)
	}
	// Idempotence: trimming a trimmed trace changes nothing.
	again, err := proof.Trim(f, trimmed, proof.CheckOptions{})
	if err != nil {
		t.Fatalf("re-trim failed: %v", err)
	}
	if len(again.Records) != len(trimmed.Records) {
		t.Fatalf("trim not idempotent: %d -> %d", len(trimmed.Records), len(again.Records))
	}
}

// TestTrimRejectsInvalid asserts Trim refuses what CheckTrace refuses.
func TestTrimRejectsInvalid(t *testing.T) {
	f := php(4, 3)
	// A trace that never derives the empty clause.
	tr := &proof.Trace{Records: []proof.Record{{Op: proof.OpLearn, Lits: []cnf.Lit{cnf.PosLit(0)}}}}
	if _, err := proof.Trim(f, tr, proof.CheckOptions{}); err == nil {
		t.Fatal("Trim accepted a trace with no empty clause")
	}
	// A non-RUP lemma on the path to the empty clause.
	sat := cnf.NewFormula(2)
	sat.AddClause(cnf.PosLit(0), cnf.PosLit(1))
	bogus := &proof.Trace{Records: []proof.Record{
		{Op: proof.OpLearn, Lits: []cnf.Lit{cnf.PosLit(0)}},
		{Op: proof.OpLearn},
	}}
	if _, err := proof.Trim(sat, bogus, proof.CheckOptions{}); err == nil {
		t.Fatal("Trim accepted a bogus refutation of a satisfiable formula")
	}
}

// TestCertifyTracesAreTrimmed asserts the certificate pipeline ships trimmed
// refutations: every step's trace is deletion-free and ends at its first
// empty clause.
func TestCertifyTracesAreTrimmed(t *testing.T) {
	w := cnf.NewWCNF(2)
	w.AddSoft(1, cnf.PosLit(0))
	w.AddSoft(1, cnf.NegLit(0))
	w.AddSoft(1, cnf.PosLit(1))
	w.AddSoft(1, cnf.NegLit(1))
	r := opt.Result{Status: opt.StatusOptimal, Cost: 2,
		Model: cnf.Assignment{true, true}}
	data, err := opt.Certify(context.Background(), w, r, opt.Options{})
	if err != nil {
		t.Fatalf("certification failed: %v", err)
	}
	cert, err := proof.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	for si, st := range cert.Steps {
		for ri, rec := range st.Trace.Records {
			if rec.Op == proof.OpDelete {
				t.Fatalf("step %d record %d: certificate trace kept a deletion", si, ri)
			}
			if len(rec.Lits) == 0 && ri != len(st.Trace.Records)-1 {
				t.Fatalf("step %d: empty clause at %d is not the final record", si, ri)
			}
		}
	}
}
