package proof

import (
	"slices"

	"repro/internal/cnf"
)

// BoundFormula builds, deterministically, the CNF formula
//
//	hards(w)  ∧  ⋀_i (ω_i ∨ r_i)  ∧  Σ weight_i·r_i ≤ bound
//
// over fresh relaxation variables r_i (one per soft clause, in clause
// order). An assignment of w with cost ≤ bound extends to a model of the
// result by setting r_i exactly on the falsified softs, and conversely any
// model restricted to w's variables has cost ≤ bound — so the formula is
// unsatisfiable iff every assignment satisfying the hards costs more than
// bound. A DRAT refutation of it is therefore a machine-checkable lower
// bound, which is how certificates witness optimality (see certificate.go).
//
// Both the certificate producer (internal/opt) and the checker call this
// same function: the checker never trusts clauses stored in a certificate,
// it rebuilds the formula from (instance, bound) and checks the trace
// against its own copy. The encoder is part of the trusted base and is kept
// deliberately simple: a generalized totalizer (sums materialized as one
// variable per achievable value, capped at bound+1) with implication-only
// clauses, after normalizing weights by their GCD. Capping keeps the size
// O(softs · bound/gcd) in the worst case — fine for the small bounds
// core-guided optima have on this repo's workloads.
func BoundFormula(w *cnf.WCNF, bound cnf.Weight) *cnf.Formula {
	f := cnf.NewFormula(w.NumVars)
	type soft struct {
		weight cnf.Weight
		relax  cnf.Lit
	}
	var softs []soft
	next := cnf.Var(w.NumVars)
	for _, c := range w.Clauses {
		if c.Hard() {
			f.AddClause(c.Clause...)
			continue
		}
		r := cnf.PosLit(next)
		next++
		f.AddClause(append(slices.Clone(c.Clause), r)...)
		softs = append(softs, soft{weight: c.Weight, relax: r})
	}
	if len(softs) == 0 || bound < 0 {
		f.NumVars = int(next)
		return f
	}

	// Normalize by the GCD of the soft weights: Σ w_i·r_i ≤ B is
	// equivalent to Σ (w_i/g)·r_i ≤ ⌊B/g⌋ when g divides every w_i.
	g := cnf.Weight(0)
	for _, s := range softs {
		g = gcd(g, s.weight)
	}
	b := bound / g
	if b == 0 {
		// Cost ≤ 0: no soft may be relaxed.
		for _, s := range softs {
			f.AddClause(s.relax.Neg())
		}
		f.NumVars = int(next)
		return f
	}
	cap := b + 1

	// A node maps each achievable (capped) partial sum to the literal
	// asserting "the relaxed weight in this subtree reaches at least this
	// value". Leaves use the relaxation literal directly.
	type out struct {
		val cnf.Weight
		lit cnf.Lit
	}
	nodes := make([][]out, len(softs))
	for i, s := range softs {
		v := s.weight / g
		if v > cap {
			v = cap
		}
		nodes[i] = []out{{val: v, lit: s.relax}}
	}
	// Balanced binary merge, left to right, until one root remains.
	for len(nodes) > 1 {
		merged := make([][]out, 0, (len(nodes)+1)/2)
		for i := 0; i+1 < len(nodes); i += 2 {
			a, bn := nodes[i], nodes[i+1]
			vals := make([]cnf.Weight, 0, len(a)+len(bn)+len(a)*len(bn))
			for _, x := range a {
				vals = append(vals, x.val)
			}
			for _, y := range bn {
				vals = append(vals, y.val)
			}
			for _, x := range a {
				for _, y := range bn {
					s := x.val + y.val
					if s > cap {
						s = cap
					}
					vals = append(vals, s)
				}
			}
			slices.Sort(vals)
			vals = slices.Compact(vals)
			lit := make(map[cnf.Weight]cnf.Lit, len(vals))
			node := make([]out, 0, len(vals))
			for _, v := range vals {
				l := cnf.PosLit(next)
				next++
				lit[v] = l
				node = append(node, out{val: v, lit: l})
			}
			for _, x := range a {
				f.AddClause(x.lit.Neg(), lit[x.val])
			}
			for _, y := range bn {
				f.AddClause(y.lit.Neg(), lit[y.val])
			}
			for _, x := range a {
				for _, y := range bn {
					s := x.val + y.val
					if s > cap {
						s = cap
					}
					f.AddClause(x.lit.Neg(), y.lit.Neg(), lit[s])
				}
			}
			merged = append(merged, node)
		}
		if len(nodes)%2 == 1 {
			merged = append(merged, nodes[len(nodes)-1])
		}
		nodes = merged
	}
	// Forbid every root sum exceeding the bound (with capping, exactly
	// the cap output when present).
	for _, o := range nodes[0] {
		if o.val > b {
			f.AddClause(o.lit.Neg())
		}
	}
	f.NumVars = int(next)
	return f
}

func gcd(a, b cnf.Weight) cnf.Weight {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
