package sat

import (
	"testing"

	"repro/internal/cnf"
)

// fakeExchange records exports and serves a scripted inbox.
type fakeExchange struct {
	exported [][]cnf.Lit
	inbox    [][]cnf.Lit
	inboxLBD []int32
}

func (f *fakeExchange) Export(lits []cnf.Lit, lbd int32) {
	f.exported = append(f.exported, append([]cnf.Lit(nil), lits...))
}

func (f *fakeExchange) Import(yield func(lits []cnf.Lit, lbd int32)) {
	for i, c := range f.inbox {
		lbd := int32(2)
		if i < len(f.inboxLBD) {
			lbd = f.inboxLBD[i]
		}
		yield(c, lbd)
	}
	f.inbox = nil
}

func (f *fakeExchange) Pending() int { return len(f.inbox) }

func lits(xs ...int) []cnf.Lit {
	out := make([]cnf.Lit, len(xs))
	for i, x := range xs {
		if x < 0 {
			out[i] = cnf.NegLit(cnf.Var(-x - 1))
		} else {
			out[i] = cnf.PosLit(cnf.Var(x - 1))
		}
	}
	return out
}

// TestImportAttachesWatchers: an imported long clause lands in the arena as
// a learnt clause with both watchers installed, and propagates like a native
// clause.
func TestImportAttachesWatchers(t *testing.T) {
	s := New()
	s.EnsureVars(5)
	x := &fakeExchange{inbox: [][]cnf.Lit{lits(1, 2, 3)}}
	s.SetExchange(x, 5)
	s.importClauses()

	if got := s.Stats().Imported; got != 1 {
		t.Fatalf("Imported = %d, want 1", got)
	}
	if len(s.learnts) != 1 {
		t.Fatalf("learnts = %d, want 1", len(s.learnts))
	}
	cr := s.learnts[0]
	if !s.ca.learnt(cr) || s.ca.size(cr) != 3 {
		t.Fatalf("imported clause header wrong: learnt=%v size=%d", s.ca.learnt(cr), s.ca.size(cr))
	}
	// Both watched literals must carry a watcher for cr.
	for i := 0; i < 2; i++ {
		p := s.ca.lit(cr, i).Neg()
		found := false
		for _, w := range s.watches[p] {
			if w.cref == cr {
				found = true
			}
		}
		if !found {
			t.Fatalf("no watcher for imported clause on literal %v", s.ca.lit(cr, i))
		}
	}
	// The clause must propagate: under ¬x1, ¬x2 it implies x3.
	if st := s.Solve(lits(-1)[0], lits(-2)[0]); st != Sat {
		t.Fatalf("solve: %v", st)
	}
	if m := s.Model(); !m[2] {
		t.Fatal("imported clause did not imply x3")
	}
}

// TestImportSurvivesGC: after a compacting arena collection the imported
// clause is relocated, its watchers remapped, and it still propagates.
func TestImportSurvivesGC(t *testing.T) {
	s := New()
	s.EnsureVars(8)
	// Native garbage so the GC has something to reclaim.
	var garbage []CRef
	for i := 0; i < 16; i++ {
		cr := s.ca.alloc(lits(4, 5, 6, 7), false)
		s.clauses = append(s.clauses, cr)
		s.attach(cr)
		garbage = append(garbage, cr)
	}
	x := &fakeExchange{inbox: [][]cnf.Lit{lits(1, 2, 3)}}
	s.SetExchange(x, 8)
	s.importClauses()

	for _, cr := range garbage {
		s.removeClause(cr)
	}
	s.clauses = s.clauses[:0]
	s.garbageCollect()

	if len(s.learnts) != 1 {
		t.Fatalf("learnts after GC = %d, want 1", len(s.learnts))
	}
	cr := s.learnts[0]
	got := s.ca.lits(cr)
	want := lits(1, 2, 3)
	if len(got) != 3 {
		t.Fatalf("relocated clause size %d", len(got))
	}
	for i := range got {
		if cnf.Lit(got[i]) != want[i] {
			t.Fatalf("relocated clause lits %v, want %v", got, want)
		}
	}
	if st := s.Solve(lits(-2)[0], lits(-3)[0]); st != Sat {
		t.Fatalf("solve after GC: %v", st)
	}
	if m := s.Model(); !m[0] {
		t.Fatal("imported clause lost by GC: ¬x2 ∧ ¬x3 did not imply x1")
	}
}

// TestImportLevelZeroSemantics: units are enqueued, level-0 satisfied
// clauses and fingerprint duplicates are dropped as subsumed, and a clause
// refuting the level-0 trail flips the solver to permanently unsat.
func TestImportLevelZeroSemantics(t *testing.T) {
	s := New()
	s.EnsureVars(4)
	x := &fakeExchange{inbox: [][]cnf.Lit{lits(1)}}
	s.SetExchange(x, 4)
	s.importClauses()
	if got := s.Stats().Imported; got != 1 {
		t.Fatalf("unit import: Imported = %d, want 1", got)
	}
	if s.value(lits(1)[0]) != lTrue || s.level[0] != 0 {
		t.Fatal("imported unit not enqueued at level 0")
	}

	// (x1 ∨ x2) is satisfied at level 0 by the unit; a re-sent copy of the
	// unit is a fingerprint duplicate.
	x.inbox = [][]cnf.Lit{lits(1, 2), lits(1)}
	s.importClauses()
	st := s.Stats()
	if st.Imported != 1 || st.ImportSubsumed != 2 {
		t.Fatalf("subsumed import: imported=%d subsumed=%d, want 1/2", st.Imported, st.ImportSubsumed)
	}

	// ¬x1 contradicts the level-0 unit: the clause set is refuted.
	x.inbox = [][]cnf.Lit{lits(-1)}
	s.importClauses()
	if s.Okay() {
		t.Fatal("importing a refuting unit must make the solver unsat")
	}
	if s.Solve() != Unsat {
		t.Fatal("solver not permanently unsat after refuting import")
	}
}

// TestExportFilter: only short (len <= shareMaxLen) or low-LBD
// (<= shareMaxLBD) clauses over the shared prefix are exported, non-unit
// exports are rate-limited, and duplicates are suppressed.
func TestExportFilter(t *testing.T) {
	s := New()
	s.EnsureVars(12)
	x := &fakeExchange{}
	s.SetExchange(x, 10) // vars 0..9 shared, 10..11 member-local

	long := lits(1, 2, 3, 4, 5, 6, 7, 8, 9)[:shareMaxLen+1]
	s.shareSince = defaultShareGap // open the limiter
	s.maybeExport(long, shareMaxLBD+1)
	if len(x.exported) != 0 {
		t.Fatal("long high-LBD clause must not pass the filter")
	}
	s.maybeExport(lits(1, 2, 3), 2)
	if len(x.exported) != 1 || s.Stats().Exported != 1 {
		t.Fatalf("glue clause not exported: %d", len(x.exported))
	}
	// Rate limiter: shareSince was reset by the successful export.
	s.maybeExport(lits(2, 3, 4), 2)
	if len(x.exported) != 1 {
		t.Fatal("rate limiter did not hold back the second long export")
	}
	// Units bypass the limiter.
	s.maybeExport(lits(4), 1)
	if len(x.exported) != 2 {
		t.Fatal("unit clause must bypass the rate limiter")
	}
	// Clauses touching non-shared variables never cross.
	s.shareSince = defaultShareGap
	s.maybeExport(lits(1, 11), 1)
	if len(x.exported) != 2 {
		t.Fatal("clause over non-shared variable exported")
	}
	// Duplicate suppression.
	s.shareSince = defaultShareGap
	s.maybeExport(lits(1, 2, 3), 2)
	if len(x.exported) != 2 {
		t.Fatal("duplicate clause re-exported")
	}
}

// TestSearchExportsGlue: an end-to-end run over a shared prefix exports at
// least one clause (the pigeonhole proof learns plenty of short clauses).
func TestSearchExportsGlue(t *testing.T) {
	s := New()
	x := &fakeExchange{}
	const holes = 4 // 5 pigeons in 4 holes: (holes+1)*holes variables
	s.EnsureVars((holes + 1) * holes)
	s.SetExchange(x, (holes+1)*holes)
	addPigeonhole(s, holes)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("php: %v", st)
	}
	if s.Stats().Exported == 0 || len(x.exported) == 0 {
		t.Fatal("no clauses exported from a conflict-heavy proof")
	}
}

// TestLBDCounterWraparound: when the stamp counter wraps, stale stamps are
// cleared so levels are not falsely treated as already counted.
func TestLBDCounterWraparound(t *testing.T) {
	s := New()
	s.EnsureVars(4)
	// Pretend the literals sit at distinct decision levels 1..3.
	ls := lits(1, 2, 3)
	for i, l := range ls {
		s.level[l.Var()] = int32(i + 1)
	}
	// Fresh stamps are all 0; the wrapped counter value would also be 0,
	// falsely matching every level without the overflow fix.
	s.lbdCounter = ^uint32(0)
	if got := s.computeLBD(ls); got != 3 {
		t.Fatalf("computeLBD after counter wrap = %d, want 3", got)
	}
	if s.lbdCounter == 0 {
		t.Fatal("lbdCounter left at the ambiguous value 0")
	}
	// The next call must still count correctly.
	if got := s.computeLBD(ls); got != 3 {
		t.Fatalf("computeLBD after wrap recovery = %d, want 3", got)
	}
}

// TestGlucoseRestartPolicy: the adaptive policy still proves a conflict-heavy
// instance and actually restarts, and the diversification knobs keep the
// solver correct on a satisfiable one.
func TestGlucoseRestartPolicy(t *testing.T) {
	s := New()
	s.SetRestartPolicy(RestartGlucose)
	s.SetVarDecay(0.92)
	addPigeonhole(s, 6)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("php under glucose restarts: %v", st)
	}
	if s.Stats().Restarts == 0 {
		t.Fatal("glucose policy never restarted on a conflict-heavy proof")
	}

	pos := New()
	pos.SetDefaultPhase(true)
	pos.AddClause(lits(1, 2)...)
	pos.AddClause(lits(-1, 2)...)
	if st := pos.Solve(); st != Sat {
		t.Fatalf("positive-phase solver: %v", st)
	}
	if m := pos.Model(); !m[1] {
		t.Fatal("model does not satisfy the formula")
	}
}
