package sat

import (
	"context"
	"sync/atomic"
)

// The progress pulse rides on the context so the serving layer's stuck-solver
// watchdog needs no cooperation from individual optimizers: every optimizer
// already threads its context into the solver budget (opt.Options.Budget), so
// attaching a counter to that context is enough to get a liveness signal out
// of any search running under it. The counter only ever increments; the
// watchdog decides a job is stuck when it stops moving, not from its value.

type progressKey struct{}

// WithProgress returns a context whose searches tick the given counter as
// they work (one tick per CDCL conflict; branch-and-bound ticks per node
// batch). The counter is a cheap heartbeat, not an exact statistic.
func WithProgress(ctx context.Context, counter *atomic.Int64) context.Context {
	return context.WithValue(ctx, progressKey{}, counter)
}

// ProgressFrom extracts the progress counter installed by WithProgress, or
// nil if the context carries none.
func ProgressFrom(ctx context.Context) *atomic.Int64 {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(progressKey{}).(*atomic.Int64)
	return c
}
