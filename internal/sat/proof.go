package sat

import "repro/internal/cnf"

// Proof is a sink for DRAT-style clausal proof logging. The solver calls it
// synchronously from the search loop; implementations must copy the literal
// slices they are handed (they alias solver-owned scratch) and must not
// call back into the solver. internal/proof provides the two standard
// sinks: Recorder (in-memory trace) and DRATWriter (ASCII DRAT stream).
//
// What gets logged, and why it is sound:
//
//   - Learn: every learnt clause the search derives, and the empty clause
//     whenever the solver concludes top-level unsatisfiability. Learnt
//     clauses (and the empty clause) have the RUP property with respect to
//     the clauses active when they were derived.
//   - Delete: every clause removal — reduceDB, level-0 simplification —
//     logged before the arena slot is freed. Arena GC emits nothing: it
//     compacts storage for clauses whose deletion was already logged.
//   - Import: every foreign clause attached from the sharing bus, logged
//     as an explicit obligation (it is justified by the exporting solver's
//     proof, not this one's). Checkers either reject imports (strict mode)
//     or admit them only inside the declared sharing scope.
//   - Axiom: clauses the caller adds after logging starts (incremental
//     optimizers adding relaxation encodings mid-run). Checkers admit them
//     only when explicitly allowed.
//
// Clauses added before SetProof are not logged: they are the formula the
// proof is relative to, and the checker is given them separately.
//
// Logging is opt-in; with no sink attached the solver pays one nil check
// per logging site.
type Proof interface {
	Learn(lits []cnf.Lit)
	Delete(lits []cnf.Lit)
	Import(lits []cnf.Lit)
	Axiom(lits []cnf.Lit)
}

// SetProof attaches a proof sink (nil detaches). Attach it after loading
// the base formula: clauses added while a sink is attached are logged as
// axioms, which strict checkers reject.
func (s *Solver) SetProof(p Proof) { s.proof = p }

func (s *Solver) proofLearn(lits []cnf.Lit) {
	if s.proof != nil {
		s.proof.Learn(lits)
	}
}

func (s *Solver) proofImport(lits []cnf.Lit) {
	if s.proof != nil {
		s.proof.Import(lits)
	}
}

func (s *Solver) proofAxiom(lits []cnf.Lit) {
	if s.proof != nil {
		s.proof.Axiom(lits)
	}
}

// proofDelete logs the deletion of the clause stored at cr, converting the
// arena's raw words through a reused scratch buffer.
func (s *Solver) proofDelete(cr CRef) {
	if s.proof == nil {
		return
	}
	buf := s.proofBuf[:0]
	for _, lw := range s.ca.lits(cr) {
		buf = append(buf, cnf.Lit(lw))
	}
	s.proofBuf = buf
	s.proof.Delete(buf)
}
