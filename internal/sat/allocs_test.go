package sat

import (
	"testing"

	"repro/internal/cnf"
)

// buildPropagationChain returns a solver whose clause set propagates a long
// implication cascade from a single assumption: a binary chain x_i → x_{i+1}
// (the arena-free binary watcher path) plus ternary shells ¬x_i ∨ y ∨ x_{i+2}
// (the long-clause watcher path). Solving under {¬y, x_0} drives both paths
// through the whole chain without a single conflict.
func buildPropagationChain(n int) (s *Solver, y, x0 cnf.Lit) {
	s = New()
	y = cnf.PosLit(s.NewVar())
	xs := make([]cnf.Lit, n)
	for i := range xs {
		xs[i] = cnf.PosLit(s.NewVar())
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(xs[i].Neg(), xs[i+1])
	}
	for i := 0; i+2 < n; i++ {
		s.AddClause(xs[i].Neg(), y, xs[i+2])
	}
	return s, y, xs[0]
}

// buildGuardedPigeonhole returns PHP(n+1, n) with pigeon p's placement
// clause guarded by ¬sels[p] (the msu selector pattern). Assuming every
// selector yields the unsatisfiable proof; leaving one out asks for a
// placement of n pigeons into n holes, which is satisfiable but needs
// search. Rotating the left-out pigeon between Solve calls keeps conflict
// analysis genuinely busy instead of letting the learnt DB memoize a single
// query.
func buildGuardedPigeonhole(n int) (s *Solver, sels []cnf.Lit) {
	s = New()
	pigeons, holes := n+1, n
	sels = make([]cnf.Lit, pigeons)
	for p := range sels {
		sels[p] = cnf.PosLit(s.NewVar())
	}
	pv := func(p, h int) cnf.Lit {
		return cnf.PosLit(cnf.Var(pigeons + p*holes + h))
	}
	for p := 0; p < pigeons; p++ {
		c := []cnf.Lit{sels[p].Neg()}
		for h := 0; h < holes; h++ {
			c = append(c, pv(p, h))
		}
		s.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(pv(p1, h).Neg(), pv(p2, h).Neg())
			}
		}
	}
	return s, sels
}

// TestPropagateSteadyStateAllocs asserts the arena's core claim: once watch
// lists and scratch buffers have reached steady state, a Solve call that
// propagates thousands of implications performs zero heap allocations.
func TestPropagateSteadyStateAllocs(t *testing.T) {
	s, y, x0 := buildPropagationChain(2000)
	withY := []cnf.Lit{y, x0}
	withoutY := []cnf.Lit{y.Neg(), x0}
	for i := 0; i < 6; i++ { // warm up watch lists, trail, model buffer
		if s.Solve(withY...) != Sat || s.Solve(withoutY...) != Sat {
			t.Fatal("chain instance must be Sat")
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		if s.Solve(withY...) != Sat {
			t.Fatal("want Sat")
		}
		if s.Solve(withoutY...) != Sat {
			t.Fatal("want Sat")
		}
	})
	if avg > 0.5 {
		t.Fatalf("steady-state Solve allocates %.1f times per run, want ~0", avg)
	}
}

// BenchmarkPropagateAllocs reports ns/op and allocs/op for the two hot
// loops: "chain" is pure unit propagation (binary fast path + long watcher
// path, no conflicts), "search" is a full conflict-driven proof under an
// assumption (propagate + analyze + learn + reduceDB). Both should show ~0
// allocs/op after warm-up; see CHANGES.md for before/after numbers.
func BenchmarkPropagateAllocs(b *testing.B) {
	b.Run("chain", func(b *testing.B) {
		s, y, x0 := buildPropagationChain(2000)
		withY := []cnf.Lit{y, x0}
		withoutY := []cnf.Lit{y.Neg(), x0}
		for i := 0; i < 6; i++ {
			s.Solve(withY...)
			s.Solve(withoutY...)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := withY
			if i&1 == 0 {
				a = withoutY
			}
			if s.Solve(a...) != Sat {
				b.Fatal("want Sat")
			}
		}
	})
	b.Run("search", func(b *testing.B) {
		s, sels := buildGuardedPigeonhole(7)
		pigeons := len(sels)
		assumps := make([]cnf.Lit, 0, pigeons)
		query := func(i int) Status {
			assumps = assumps[:0]
			leaveOut := i % (pigeons + 1)
			for p, sel := range sels {
				if p != leaveOut {
					assumps = append(assumps, sel)
				}
			}
			st := s.Solve(assumps...)
			if leaveOut < pigeons && st != Sat {
				b.Fatalf("leave-one-out PHP query %d: %v, want Sat", i, st)
			}
			if leaveOut == pigeons && st != Unsat {
				b.Fatalf("full PHP query %d: %v, want Unsat", i, st)
			}
			return st
		}
		for i := 0; i <= pigeons; i++ { // warm up: one full rotation
			query(i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			query(i)
		}
	})
}
