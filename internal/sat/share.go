package sat

import "repro/internal/cnf"

// This file implements learnt-clause sharing in the ManySAT style: a solver
// participating in a parallel portfolio exports a filtered stream of its
// learnt clauses and imports the clauses other members exported, so the
// portfolio stops re-deriving the same deductions once per member.
//
// Soundness contract. Exported clauses are logical consequences of the
// solver's whole clause database, which besides the shared formula holds
// member-local encodings (soft-clause shells, cardinality constraints, ...).
// A clause over the shared variable prefix is safe to hand to another member
// only when every local addition is a conservative extension of the shared
// formula — every model of the shared clauses extends to the added
// variables. Then a shared-prefix consequence of the database is a
// consequence of the shared clauses alone, and importing it excludes no
// model of any other member's database. Enforcing that contract is the
// caller's job: SetExchange must only be called for solvers whose future
// clause additions keep the database conservative (see
// opt.Options.AttachExchange for the per-optimizer obligations).
//
// Export filter: only short (length <= shareMaxLen) or low-LBD
// (<= shareMaxLBD) clauses whose variables all lie below the shared prefix
// cross the bus, and non-unit exports are rate-limited to one per
// defaultShareGap conflicts; learnt units always pass. Imports happen at decision level 0 only — after a restart, or
// at a Solve boundary that starts from level 0 — so attaching a foreign
// clause never disturbs the kept assumption-trail prefix that incremental
// callers rely on. Clause fingerprints deduplicate traffic in both
// directions: a clause this solver already exported or imported is dropped
// on sight (a fingerprint collision only costs a skipped import, never
// soundness).

// Exchange connects a Solver to a clause-sharing bus. Export is called from
// the search loop with solver-owned scratch (implementations must copy and
// must not block); Import yields foreign clauses, each valid only for the
// duration of the callback; Pending cheaply estimates how many clauses an
// Import would yield (incremental solvers use it to decide whether a
// deliberate backtrack to level 0 — giving up the reusable trail prefix
// once — is worth the catch-up).
type Exchange interface {
	Export(lits []cnf.Lit, lbd int32)
	Import(yield func(lits []cnf.Lit, lbd int32))
	Pending() int
}

// importEagerMin is the pending-clause backlog at which a Solve call gives
// up its reusable trail prefix to import: below it, imports wait for a
// natural level-0 boundary (a restart, or a prefix-invalidating AddClause).
const importEagerMin = 64

// Export-filter thresholds. The textbook portfolio filter (LBD <= 2 or
// length <= 2) passes essentially nothing here: core-guided solving places
// every assumed selector on its own decision level, so even structurally
// tight learnt clauses span many levels (measured on the generator families,
// msu4's learnt stream bottoms out around length 5 / LBD 4). The calibrated
// filter keeps the same shape — short or low-LBD clauses only — at
// thresholds that actually select the best few percent of the stream, and
// the rate limiter bounds the traffic.
const (
	shareMaxLen = 8 // clauses this short are worth exchanging
	shareMaxLBD = 4 // or clauses spanning this few decision levels

	// defaultShareGap is the minimum number of conflicts between two
	// non-unit exports; learnt units bypass the limiter.
	defaultShareGap = 4
)

// SetExchange attaches a clause-sharing exchange. Only clauses whose
// variables are all below sharedVars cross the bus, in either direction:
// sharedVars is the scope this solver vouches for (see
// opt.Options.AttachExchange), and variables above it are member-local.
// A nil exchange detaches.
func (s *Solver) SetExchange(x Exchange, sharedVars int) {
	s.exchange = x
	s.shareVars = sharedVars
	if x != nil && s.shareSeen == nil {
		s.shareSeen = make(map[uint64]struct{})
	}
}

// splitmix64 is the SplitMix64 finalizer, used to hash single literals.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fingerprint hashes a clause independently of literal order (learnt and
// imported copies of the same clause watch different literals first).
func fingerprint(lits []cnf.Lit) uint64 {
	h := splitmix64(uint64(len(lits)))
	for _, l := range lits {
		h ^= splitmix64(uint64(uint32(l)))
	}
	return h
}

// maybeExport offers a freshly learnt clause to the exchange if it passes
// the sharing filter. Called from the search loop right after learning.
func (s *Solver) maybeExport(lits []cnf.Lit, lbd int32) {
	if len(lits) > shareMaxLen && lbd > shareMaxLBD {
		return
	}
	if len(lits) > 1 && s.shareSince < defaultShareGap {
		return
	}
	for _, l := range lits {
		if int(l.Var()) >= s.shareVars {
			return
		}
	}
	fp := fingerprint(lits)
	if _, dup := s.shareSeen[fp]; dup {
		return
	}
	s.shareSeen[fp] = struct{}{}
	s.shareSince = 0
	s.stats.Exported++
	s.exchange.Export(lits, lbd)
}

// shareMaxProvedLen caps ShareClause exports. Proved clauses (cores) are
// worth more than learnt ones, so the cap is looser than shareMaxLen, but
// giant cores prune too little per literal to be worth the bus slot.
const shareMaxProvedLen = 32

// ShareClause exports a clause the caller has proved from the shared
// scope's own clauses — for the core-guided optimizers, the at-least-one
// clause over a core's blocking literals, which the UNSAT result just
// established is implied by the hard clauses and shells every sharing
// member owns. Unlike learn-time exports it bypasses the LBD/length filter
// and the rate limiter (cores are rare and precious: an imported core saves
// the whole search that would re-derive it), but the scope and duplicate
// filters still apply. No-op without an attached exchange.
func (s *Solver) ShareClause(lits ...cnf.Lit) {
	if s.exchange == nil || len(lits) == 0 || len(lits) > shareMaxProvedLen {
		return
	}
	for _, l := range lits {
		if int(l.Var()) >= s.shareVars {
			return
		}
	}
	fp := fingerprint(lits)
	if _, dup := s.shareSeen[fp]; dup {
		return
	}
	s.shareSeen[fp] = struct{}{}
	s.stats.Exported++
	s.exchange.Export(lits, 2) // treat a core like glue: keep it around
}

// importClauses drains the exchange into the clause database. It must only
// run at decision level 0 with the trail fully propagated; restarts and
// level-0 Solve boundaries are the call sites. On a level-0 conflict the
// solver becomes permanently unsat (the shared clauses are refuted).
func (s *Solver) importClauses() {
	if s.exchange == nil || !s.ok || s.decisionLevel() != 0 {
		return
	}
	s.exchange.Import(func(lits []cnf.Lit, lbd int32) {
		if s.ok {
			s.importOne(lits, lbd)
		}
	})
}

func (s *Solver) importOne(lits []cnf.Lit, lbd int32) {
	fp := fingerprint(lits)
	if _, dup := s.shareSeen[fp]; dup {
		s.stats.ImportSubsumed++
		return
	}
	s.shareSeen[fp] = struct{}{}
	s.EnsureVars(s.shareVars)
	// Evaluate against the level-0 trail: drop false literals, and skip the
	// clause entirely when a literal already holds (level-0 satisfied
	// clauses are what simplify would remove anyway). Clauses reaching
	// beyond this solver's shared scope are dropped too: members on the
	// same bus may vouch for different scopes (the core family shares its
	// selector block, others only the formula prefix), and a variable above
	// the local scope means something else — or nothing — here.
	buf := s.shareBuf[:0]
	for _, l := range lits {
		switch {
		case int(l.Var()) >= s.shareVars:
			s.shareBuf = buf
			s.stats.ImportSubsumed++
			return
		case s.value(l) == lTrue && s.level[l.Var()] == 0:
			s.shareBuf = buf
			s.stats.ImportSubsumed++
			return
		case s.value(l) == lFalse && s.level[l.Var()] == 0:
			// drop
		default:
			buf = append(buf, l)
		}
	}
	s.shareBuf = buf
	s.stats.Imported++
	// Log the clause as it crossed the bus — an explicit obligation
	// justified by the exporter's proof, not this solver's. The stripped
	// form attached below is propagation-equivalent given the level-0
	// trail, which any checker re-derives from the formula.
	s.proofImport(lits)
	switch len(buf) {
	case 0:
		// A foreign clause is false at level 0: the shared clauses are
		// unsatisfiable (the exporter would have reached the same verdict).
		s.ok = false
		s.proofLearn(nil)
	case 1:
		s.uncheckedEnqueue(buf[0], CRefUndef)
		if s.propagate() != CRefUndef {
			s.ok = false
			s.proofLearn(nil)
		}
	default:
		// All remaining literals are unassigned (we are at level 0), so any
		// watch order is valid.
		cr := s.ca.alloc(buf, true)
		if lbd < 1 {
			lbd = 1
		}
		s.ca.setLBD(cr, lbd)
		s.learnts = append(s.learnts, cr)
		s.attach(cr)
		s.claBumpActivity(cr)
	}
}
