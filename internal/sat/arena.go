package sat

import (
	"math"

	"repro/internal/cnf"
)

// This file implements the flat clause arena, in the style of MiniSat 2.2's
// RegionAllocator/ClauseAllocator. Every clause — problem and learnt — lives
// inline in one []uint32 and is addressed by an integer CRef, so clause
// storage contains no Go pointers: the garbage collector never scans it, and
// the propagate loop walks contiguous memory instead of chasing heap
// objects.
//
// Deletion is lazy: removeClause only marks the header dead and accounts the
// words as wasted. Watchers of dead clauses are skipped (and dropped) by
// propagate, and once enough of the arena is wasted a compacting GC pass
// relocates the live clauses and remaps every stored CRef (watch lists,
// trail reasons, clause lists).

// CRef is an integer handle to a clause in the arena: the word offset of the
// clause header. CRefs are stable except across garbageCollect, which remaps
// every stored reference.
type CRef uint32

// CRefUndef is the null clause reference.
const CRefUndef CRef = ^CRef(0)

// Clause layout, starting at the word the CRef points to:
//
//	word 0   size<<3 | reloced<<2 | dead<<1 | learnt
//	word 1   float32 activity bits (forwarding CRef while reloced during GC)
//	word 2   LBD
//	word 3+  literals, one cnf.Lit per word
const (
	hdrLearnt    = 1 << 0
	hdrDead      = 1 << 1
	hdrReloced   = 1 << 2
	hdrSizeShift = 3
	hdrWords     = 3
)

type arena struct {
	data   []uint32
	wasted int // words held by dead clauses, reclaimable by a GC pass
}

// alloc appends a clause and returns its handle. The literals are copied.
func (a *arena) alloc(lits []cnf.Lit, learnt bool) CRef {
	need := hdrWords + len(lits)
	if uint64(len(a.data))+uint64(need) >= uint64(CRefUndef) {
		// A CRef is a uint32 word offset; past this point handles would wrap
		// and corrupt live clauses. 16 GiB of clauses means the instance is
		// hopeless anyway, so fail loudly like MiniSat's allocator.
		panic("sat: clause arena exceeds 2^32 words")
	}
	if len(a.data)+need > cap(a.data) {
		newCap := 2*cap(a.data) + need
		if newCap < 1024 {
			newCap = 1024
		}
		grown := make([]uint32, len(a.data), newCap)
		copy(grown, a.data)
		a.data = grown
	}
	cr := CRef(len(a.data))
	a.data = a.data[:len(a.data)+need]
	h := uint32(len(lits)) << hdrSizeShift
	if learnt {
		h |= hdrLearnt
	}
	a.data[cr] = h
	a.data[cr+1] = 0
	a.data[cr+2] = 0
	for i, l := range lits {
		a.data[int(cr)+hdrWords+i] = uint32(l)
	}
	return cr
}

func (a *arena) size(cr CRef) int    { return int(a.data[cr] >> hdrSizeShift) }
func (a *arena) learnt(cr CRef) bool { return a.data[cr]&hdrLearnt != 0 }
func (a *arena) dead(cr CRef) bool   { return a.data[cr]&hdrDead != 0 }

// lits returns the literal block of cr as raw words (each word is a cnf.Lit).
// The slice aliases the arena and is invalidated by alloc and GC.
func (a *arena) lits(cr CRef) []uint32 {
	base := int(cr) + hdrWords
	return a.data[base : base+a.size(cr)]
}

func (a *arena) lit(cr CRef, i int) cnf.Lit {
	return cnf.Lit(a.data[int(cr)+hdrWords+i])
}

func (a *arena) activity(cr CRef) float32 {
	return math.Float32frombits(a.data[cr+1])
}

func (a *arena) setActivity(cr CRef, act float32) {
	a.data[cr+1] = math.Float32bits(act)
}

func (a *arena) lbd(cr CRef) int32         { return int32(a.data[cr+2]) }
func (a *arena) setLBD(cr CRef, lbd int32) { a.data[cr+2] = uint32(lbd) }

// free marks cr dead. The words are reclaimed by the next GC pass; until
// then propagate skips (and drops) watchers that reference the clause.
func (a *arena) free(cr CRef) {
	a.data[cr] |= hdrDead
	a.wasted += hdrWords + a.size(cr)
}

// reloc copies cr into arena to (once — repeated calls return the same new
// handle via a forwarding reference left in the old header) and returns the
// new handle.
func (a *arena) reloc(cr CRef, to *arena) CRef {
	h := a.data[cr]
	if h&hdrReloced != 0 {
		return CRef(a.data[cr+1])
	}
	n := hdrWords + int(h>>hdrSizeShift)
	ncr := CRef(len(to.data))
	to.data = append(to.data, a.data[cr:int(cr)+n]...)
	a.data[cr] = h | hdrReloced
	a.data[cr+1] = uint32(ncr)
	return ncr
}
