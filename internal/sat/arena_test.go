package sat

import (
	"math/rand"
	"reflect"
	"testing"
	"unsafe"

	"repro/internal/brute"
	"repro/internal/cnf"
)

// TestWatcherAndArenaArePointerFree pins the acceptance criterion of the
// arena design: clause storage and watch lists contain no Go pointers, so
// the runtime GC never scans them.
func TestWatcherAndArenaArePointerFree(t *testing.T) {
	wt := reflect.TypeOf(watcher{})
	for i := 0; i < wt.NumField(); i++ {
		switch wt.Field(i).Type.Kind() {
		case reflect.Pointer, reflect.UnsafePointer, reflect.Slice, reflect.Map, reflect.Interface, reflect.Chan:
			t.Fatalf("watcher field %s has pointer kind %v", wt.Field(i).Name, wt.Field(i).Type.Kind())
		}
	}
	if size := unsafe.Sizeof(watcher{}); size != 8 {
		t.Fatalf("watcher is %d bytes, want 8", size)
	}
	var a arena
	if k := reflect.TypeOf(a.data).Elem().Kind(); k != reflect.Uint32 {
		t.Fatalf("arena element kind %v, want uint32", k)
	}
}

func TestArenaAllocFreeReloc(t *testing.T) {
	var a arena
	c1 := []cnf.Lit{cnf.PosLit(0), cnf.NegLit(1), cnf.PosLit(2)}
	c2 := []cnf.Lit{cnf.NegLit(3), cnf.PosLit(4)}
	cr1 := a.alloc(c1, false)
	cr2 := a.alloc(c2, true)
	a.setActivity(cr2, 3.5)
	a.setLBD(cr2, 7)

	if a.size(cr1) != 3 || a.size(cr2) != 2 {
		t.Fatalf("sizes %d/%d, want 3/2", a.size(cr1), a.size(cr2))
	}
	if a.learnt(cr1) || !a.learnt(cr2) {
		t.Fatal("learnt flags wrong")
	}
	for i, want := range c1 {
		if got := a.lit(cr1, i); got != want {
			t.Fatalf("cr1 lit %d = %v, want %v", i, got, want)
		}
	}

	a.free(cr1)
	if !a.dead(cr1) || a.dead(cr2) {
		t.Fatal("dead marks wrong")
	}
	if a.wasted != hdrWords+3 {
		t.Fatalf("wasted = %d, want %d", a.wasted, hdrWords+3)
	}

	to := arena{data: make([]uint32, 0, len(a.data)-a.wasted)}
	n2 := a.reloc(cr2, &to)
	if again := a.reloc(cr2, &to); again != n2 {
		t.Fatalf("second reloc returned %v, want %v", again, n2)
	}
	if to.size(n2) != 2 || !to.learnt(n2) || to.dead(n2) {
		t.Fatal("relocated clause flags wrong")
	}
	if to.activity(n2) != 3.5 || to.lbd(n2) != 7 {
		t.Fatalf("relocated act/lbd = %v/%v, want 3.5/7", to.activity(n2), to.lbd(n2))
	}
	for i, want := range c2 {
		if got := to.lit(n2, i); got != want {
			t.Fatalf("relocated lit %d = %v, want %v", i, got, want)
		}
	}
}

// random3SAT builds a uniform 3-SAT formula with the given clause/variable
// ratio: all clauses width 3 with distinct variables, so search (not level-0
// propagation) decides the instance.
func random3SAT(rng *rand.Rand, vars int, ratio float64) *cnf.Formula {
	f := cnf.NewFormula(vars)
	clauses := int(ratio * float64(vars))
	for i := 0; i < clauses; i++ {
		var vs [3]int
		vs[0] = rng.Intn(vars)
		for {
			vs[1] = rng.Intn(vars)
			if vs[1] != vs[0] {
				break
			}
		}
		for {
			vs[2] = rng.Intn(vars)
			if vs[2] != vs[0] && vs[2] != vs[1] {
				break
			}
		}
		c := make([]cnf.Lit, 3)
		for j, v := range vs {
			c[j] = cnf.NewLit(cnf.Var(v), rng.Intn(2) == 0)
		}
		f.AddClause(c...)
	}
	return f
}

// TestArenaGCPreservesCorrectness interrupts real searches mid-proof, forces
// a reduceDB plus a compacting collection (remapping watchers, reasons, and
// clause lists), and checks the verdict afterwards still matches exhaustive
// search.
func TestArenaGCPreservesCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	gcs := int64(0)
	for iter := 0; iter < 40; iter++ {
		f := random3SAT(rng, 12+rng.Intn(4), 4.3)
		s := New()
		s.AddFormula(f)
		s.SetBudget(Budget{MaxConflicts: 20 + int64(rng.Intn(40))})
		s.Solve() // partial search: seed the learnt DB and trail
		s.SetBudget(Budget{})
		if !s.ok {
			continue // already decided at level 0
		}
		if len(s.learnts) > 0 {
			s.reduceDB()
		}
		s.garbageCollect()
		gcs += 1
		if s.ca.wasted != 0 {
			t.Fatalf("iter %d: wasted = %d after GC, want 0", iter, s.ca.wasted)
		}
		st := s.Solve()
		want, _ := brute.SAT(f)
		if (st == Sat) != want || st == Unknown {
			t.Fatalf("iter %d: post-GC verdict %v, brute sat=%v", iter, st, want)
		}
		if st == Sat && !f.Eval(s.Model()[:f.NumVars]) {
			t.Fatalf("iter %d: post-GC model invalid", iter)
		}
		if s.Stats().ArenaGCs == 0 {
			t.Fatalf("iter %d: ArenaGCs not counted", iter)
		}
	}
	if gcs == 0 {
		t.Fatal("no garbage collections exercised")
	}
}

// TestLazyDeletionSelfCleansWatchers deletes learnt clauses through the lazy
// path and checks that propagation over the same literals still succeeds and
// drops the dead watchers as it visits them.
func TestLazyDeletionSelfCleansWatchers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 30; iter++ {
		f := random3SAT(rng, 12, 4.5)
		s := New()
		s.AddFormula(f)
		s.SetBudget(Budget{MaxConflicts: 50})
		s.Solve()
		s.SetBudget(Budget{})
		if !s.ok {
			continue
		}
		// Delete every non-locked long learnt clause lazily (no GC): their
		// watchers stay in the lists and must be skipped by propagate.
		ls := s.learnts
		j := 0
		for _, cr := range ls {
			if s.ca.size(cr) > 2 && !s.locked(cr) {
				s.removeClause(cr)
			} else {
				ls[j] = cr
				j++
			}
		}
		s.learnts = ls[:j]
		st := s.Solve()
		want, _ := brute.SAT(f)
		if (st == Sat) != want || st == Unknown {
			t.Fatalf("iter %d: verdict %v after lazy deletion, brute sat=%v", iter, st, want)
		}
	}
}
