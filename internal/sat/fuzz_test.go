package sat

import (
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
)

// FuzzSolverVsBrute differential-tests the arena solver against exhaustive
// enumeration on fuzzer-chosen instances, including the msu access pattern:
// interleaved clause additions and incremental Solve calls under
// assumptions.
//
// Input encoding (one byte stream):
//   - 0xFF starts a Solve: the next two bytes select the assumption set
//     (inclusion mask over the variables, sign mask).
//   - Any other byte b starts a clause of width b%3+1, whose literals are
//     read from the following bytes (variable = byte % fuzzVars, negative if
//     byte >= 128).
//
// A trailing Solve without assumptions closes every run.
func FuzzSolverVsBrute(f *testing.F) {
	// A few hand-written seeds: plain clauses, an unsat pair of units, and
	// incremental solve-add-solve sequences under assumptions.
	f.Add([]byte{2, 1, 2, 2, 129, 2, 0xFF, 0x03, 0x01})
	f.Add([]byte{0, 1, 0, 129}) // x1 and ¬x1: level-0 unsat
	f.Add([]byte{2, 1, 2, 0xFF, 0x01, 0x00, 2, 130, 3, 0xFF, 0x07, 0x05, 1, 4, 5, 0xFF, 0x3F, 0x2A})
	f.Add([]byte{0xFF, 0x00, 0x00}) // solve the empty formula
	f.Add([]byte{1, 0, 1, 1, 2, 131, 0xFF, 0x0B, 0x08, 0xFF, 0x0B, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		const fuzzVars = 6
		const maxClauses = 48
		const maxSolves = 8

		s := New()
		s.EnsureVars(fuzzVars)
		form := cnf.NewFormula(fuzzVars)

		solveAndCheck := func(include, signs byte) bool {
			var assumps []cnf.Lit
			for v := 0; v < fuzzVars; v++ {
				if include&(1<<uint(v)) != 0 {
					assumps = append(assumps, cnf.NewLit(cnf.Var(v), signs&(1<<uint(v)) != 0))
				}
			}
			st := s.Solve(assumps...)
			g := form.Clone()
			for _, a := range assumps {
				g.AddClause(a)
			}
			want, _ := brute.SAT(g)
			switch st {
			case Sat:
				if !want {
					t.Fatalf("solver Sat, brute Unsat\nclauses: %v\nassumps: %v", form.Clauses, assumps)
				}
				m := s.Model()[:fuzzVars]
				if !form.Eval(m) {
					t.Fatalf("model %v does not satisfy formula %v", m, form.Clauses)
				}
				for _, a := range assumps {
					if !m.Lit(a) {
						t.Fatalf("model %v violates assumption %v", m, a)
					}
				}
			case Unsat:
				if want {
					t.Fatalf("solver Unsat, brute Sat\nclauses: %v\nassumps: %v", form.Clauses, assumps)
				}
				inAssumps := map[cnf.Lit]bool{}
				for _, a := range assumps {
					inAssumps[a] = true
				}
				core := s.Core()
				g2 := form.Clone()
				for _, l := range core {
					if !inAssumps[l] {
						t.Fatalf("core literal %v is not among assumptions %v", l, assumps)
					}
					g2.AddClause(l)
				}
				if coreWant, _ := brute.SAT(g2); coreWant {
					t.Fatalf("core %v of %v is not unsatisfiable", core, assumps)
				}
			default:
				t.Fatalf("unbudgeted Solve returned %v", st)
			}
			return s.Okay()
		}

		clauses, solves := 0, 0
		i := 0
		for i < len(data) && clauses < maxClauses && solves < maxSolves {
			b := data[i]
			i++
			if b == 0xFF {
				var include, signs byte
				if i < len(data) {
					include = data[i]
					i++
				}
				if i < len(data) {
					signs = data[i]
					i++
				}
				solves++
				if !solveAndCheck(include, signs) {
					return // permanently unsat, verified against brute above
				}
				continue
			}
			width := int(b%3) + 1
			if i+width > len(data) {
				break
			}
			c := make([]cnf.Lit, 0, width)
			for k := 0; k < width; k++ {
				lb := data[i]
				i++
				c = append(c, cnf.NewLit(cnf.Var(lb%fuzzVars), lb >= 128))
			}
			form.AddClause(c...)
			added := s.AddClause(c...)
			clauses++
			if !added {
				// Level-0 conflict: brute force must agree the formula is
				// unsatisfiable, and the solver must stay in the Unsat state.
				if want, _ := brute.SAT(form); want {
					t.Fatalf("AddClause reported unsat but %v is satisfiable", form.Clauses)
				}
				if s.Solve() != Unsat {
					t.Fatal("solver must stay Unsat after level-0 conflict")
				}
				return
			}
		}
		solveAndCheck(0, 0)
	})
}
