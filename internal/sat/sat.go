// Package sat implements a conflict-driven clause-learning (CDCL) SAT solver
// in the architecture of MiniSat 1.14/2.2, the solver underlying the msu4
// algorithm of Marques-Silva & Planes (DATE 2008).
//
// Features: two-watched-literal propagation with blocker literals and a
// dedicated binary-clause watch list, VSIDS variable activities with phase
// saving, Luby restarts, first-UIP clause learning with recursive
// minimization, activity-based learnt-clause deletion, incremental solving
// under assumptions, and extraction of a subset of the assumptions
// responsible for unsatisfiability (the mechanism the MaxSAT algorithms in
// this repository use to obtain unsatisfiable cores).
//
// Clauses are stored in a flat []uint32 arena addressed by integer CRef
// handles (see arena.go), so the hot propagate/analyze loop is free of
// pointer chasing and steady-state heap allocation.
//
// The solver is resource-bounded: a Budget can cap conflicts, wall-clock
// time, and clause-storage bytes, in which case Solve returns Unknown. This
// is how the experiment harness emulates the per-instance timeout of the
// paper's evaluation, and how the serving layer keeps a pathological
// instance from OOM-killing the daemon.
package sat

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
)

// Status is a solver verdict.
type Status int8

// Solver verdicts.
const (
	Unknown Status = iota // budget exhausted or interrupted
	Sat
	Unsat
)

// String returns the conventional solver-output name of the status.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SATISFIABLE"
	case Unsat:
		return "UNSATISFIABLE"
	default:
		return "UNKNOWN"
	}
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// Budget bounds a Solve call. The zero value means "no limit".
type Budget struct {
	// Deadline, when non-zero, aborts the search once passed. It is checked
	// every few hundred conflicts, so overshoot is bounded by the time the
	// solver spends on that many conflicts.
	Deadline time.Time
	// MaxConflicts, when positive, caps the number of conflicts of one
	// Solve call.
	MaxConflicts int64
	// MaxMemory, when positive, caps the solver's clause-storage footprint
	// in bytes (see MemoryFootprint). Learnt-clause growth is what makes a
	// CDCL run's memory unbounded, so a byte cap turns a pathological
	// instance into an Unknown verdict instead of an OOM kill. The cap is
	// checked alongside the deadline — every few hundred conflicts and at
	// Solve entry — so overshoot is bounded by that many learnt clauses.
	MaxMemory int64
	// Stop, when non-nil, aborts the search as soon as it is observed true.
	Stop *atomic.Bool
	// Ctx, when non-nil, aborts the search once the context is cancelled or
	// its deadline passes. Like Deadline it is polled every few hundred
	// conflicts, so cancellation latency is bounded by that much search work.
	Ctx context.Context
}

// Stats are cumulative solver statistics across all Solve calls.
type Stats struct {
	Solves       int64
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnt       int64
	Removed      int64
	MinimizedLit int64 // literals deleted by conflict-clause minimization
	ArenaGCs     int64 // compacting collections of the clause arena
	// TrailReused counts decision levels carried over between consecutive
	// Solve calls by assumption-prefix trail reuse — the solver-warmth signal
	// the serving layer's incremental sessions report.
	TrailReused int64

	// Clause-sharing traffic (see share.go); all zero without an Exchange.
	Exported       int64 // learnt clauses offered to the exchange
	Imported       int64 // foreign clauses attached (or enqueued as units)
	ImportSubsumed int64 // foreign clauses dropped: duplicate or level-0 satisfied
}

// watcher is one entry of a watch list: the watched clause plus a blocker
// literal whose truth lets propagate skip the clause without touching the
// arena. For binary clauses the blocker is the clause's other literal, so
// binary propagation never dereferences the arena at all. The struct is
// 8 bytes and pointer-free.
type watcher struct {
	cref    CRef
	blocker cnf.Lit
}

// ClauseManagement selects the learnt-clause deletion policy.
type ClauseManagement int8

// Deletion policies.
const (
	// ActivityBased is MiniSat's policy: delete low-activity halves.
	ActivityBased ClauseManagement = iota
	// LBDBased is the Glucose policy: delete high-LBD clauses first and
	// always keep "glue" clauses (LBD <= 2).
	LBDBased
)

// Solver is an incremental CDCL SAT solver. The zero value is not usable;
// construct with New.
type Solver struct {
	ok      bool // false once the clause set is known unsat at level 0
	ca      arena
	clauses []CRef
	learnts []CRef

	watches    [][]watcher // long clauses; indexed by literal p: clauses watching ¬p
	watchesBin [][]watcher // binary clauses; blocker is the implied literal

	assigns  []lbool // per variable
	level    []int32
	reason   []CRef // CRefUndef for decisions and unassigned variables
	polarity []bool // saved phase: sign to use on next decision
	activity []float64
	order    varHeap

	trail    []cnf.Lit
	trailLim []int
	qhead    int

	seen           []byte
	analyzeToClear []cnf.Lit
	analyzeStack   []cnf.Lit
	analyzeLearnt  []cnf.Lit // reused backing for the learnt clause under construction

	varInc   float64
	varDecay float64
	claInc   float64
	claDecay float64

	restartFirst  int
	maxLearnts    float64
	learntAdjust  float64
	learntAdjustC float64

	assumptions []cnf.Lit
	prevAssumps []cnf.Lit // previous Solve's assumptions, for trail reuse
	conflictSet []cnf.Lit // failed assumptions from last Unsat-under-assumptions

	model    cnf.Assignment
	modelBuf cnf.Assignment // reused backing for model

	budget Budget
	pulse  *atomic.Int64 // liveness heartbeat from Budget.Ctx (see progress.go)
	stats  Stats

	// Management selects the learnt-clause deletion policy (default
	// ActivityBased, the MiniSat behaviour matching the paper's era;
	// LBDBased is the Glucose-style ablation).
	Management ClauseManagement

	lbdStamp   []uint32
	lbdCounter uint32

	restartPolicy   RestartPolicy
	defaultPolarity bool    // phase a fresh variable is first decided with
	lbdEmaFast      float64 // recent learnt-LBD average (Glucose restarts)
	lbdTotal        float64 // sum of all learnt LBDs
	lbdCount        int64
	trailEma        float64 // running trail size at conflicts (restart blocking)

	exchange   Exchange
	shareVars  int   // variables below this bound are portfolio-shared
	shareSince int64 // conflicts since the last export (rate limiter)
	shareSeen  map[uint64]struct{}
	shareBuf   []cnf.Lit

	proof    Proof     // nil unless SetProof attached a sink
	proofBuf []cnf.Lit // scratch for deletion logging
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		ok:              true,
		varInc:          1,
		varDecay:        0.95,
		claInc:          1,
		claDecay:        0.999,
		restartFirst:    100,
		defaultPolarity: true, // negative-first, MiniSat default
	}
}

// NumVars returns the number of variables allocated so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NewVar allocates and returns a fresh variable.
func (s *Solver) NewVar() cnf.Var {
	v := cnf.Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, CRefUndef)
	s.polarity = append(s.polarity, s.defaultPolarity)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, 0)
	s.lbdStamp = append(s.lbdStamp, 0)
	s.watches = append(s.watches, nil, nil)
	s.watchesBin = append(s.watchesBin, nil, nil)
	s.order.insert(v, s.activity)
	return v
}

// EnsureVars allocates variables until at least n exist.
func (s *Solver) EnsureVars(n int) {
	for len(s.assigns) < n {
		s.NewVar()
	}
}

// Okay reports whether the clause set is still possibly satisfiable. Once it
// returns false the solver is permanently unsat and Solve returns Unsat
// immediately.
func (s *Solver) Okay() bool { return s.ok }

// Stats returns cumulative statistics.
func (s *Solver) Stats() Stats { return s.stats }

// SetBudget installs the budget used by subsequent Solve calls. If the
// budget's context carries a progress counter (WithProgress), the search
// ticks it on every conflict so an external watchdog can tell a stuck solver
// from a slow one.
func (s *Solver) SetBudget(b Budget) {
	s.budget = b
	s.pulse = ProgressFrom(b.Ctx)
}

func (s *Solver) value(l cnf.Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals (copied). It returns false
// if the clause set became trivially unsatisfiable at level 0. Variables are
// allocated on demand.
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	tmp := make(cnf.Clause, len(lits))
	copy(tmp, lits)
	return s.addClauseOwned(tmp)
}

// AddClauseFrom adds a copy of c.
func (s *Solver) AddClauseFrom(c cnf.Clause) bool {
	return s.AddClause(c...)
}

// addClauseOwned takes ownership of tmp.
func (s *Solver) addClauseOwned(tmp cnf.Clause) bool {
	if !s.ok {
		return false
	}
	// Clauses attach at level 0. The trail may still hold the previous
	// Solve's assumption levels (kept for reuse); adding a clause
	// invalidates them, so backtrack first.
	s.cancelUntil(0)
	if mv := tmp.MaxVar(); mv != cnf.VarUndef {
		s.EnsureVars(int(mv) + 1)
	}
	tmp, taut := tmp.Normalize()
	if taut {
		return true
	}
	// A clause added while a proof sink is attached is not a lemma the
	// search derived — it is new input, logged as an explicit axiom.
	s.proofAxiom(tmp)
	// Strip literals already false at level 0; drop clause if one is true.
	j := 0
	for _, l := range tmp {
		switch {
		case s.value(l) == lTrue && s.level[l.Var()] == 0:
			return true
		case s.value(l) == lFalse && s.level[l.Var()] == 0:
			// drop
		default:
			tmp[j] = l
			j++
		}
	}
	tmp = tmp[:j]
	switch len(tmp) {
	case 0:
		s.ok = false
		s.proofLearn(nil) // empty clause: axiom + level-0 trail conflict
		return false
	case 1:
		s.uncheckedEnqueue(tmp[0], CRefUndef)
		if s.propagate() != CRefUndef {
			s.ok = false
			s.proofLearn(nil)
			return false
		}
		return true
	default:
		cr := s.ca.alloc(tmp, false)
		s.clauses = append(s.clauses, cr)
		s.attach(cr)
		return true
	}
}

func (s *Solver) attach(cr CRef) {
	lits := s.ca.lits(cr)
	l0, l1 := cnf.Lit(lits[0]), cnf.Lit(lits[1])
	if len(lits) == 2 {
		s.watchesBin[l0.Neg()] = append(s.watchesBin[l0.Neg()], watcher{cr, l1})
		s.watchesBin[l1.Neg()] = append(s.watchesBin[l1.Neg()], watcher{cr, l0})
		return
	}
	s.watches[l0.Neg()] = append(s.watches[l0.Neg()], watcher{cr, l1})
	s.watches[l1.Neg()] = append(s.watches[l1.Neg()], watcher{cr, l0})
}

// removeClause marks cr dead. Long clauses are detached lazily: propagate
// skips (and drops) watchers of dead clauses, and the next arena GC sweeps
// the rest, so deletion is O(1) with no watch-list scan. Binary watchers
// never consult the arena and so cannot observe the dead mark; they are
// detached eagerly, which only happens on the cold simplify path (reduceDB
// never deletes binary clauses).
func (s *Solver) removeClause(cr CRef) {
	s.proofDelete(cr)
	lits := s.ca.lits(cr)
	if len(lits) == 2 {
		s.removeWatchBin(cnf.Lit(lits[0]).Neg(), cr)
		s.removeWatchBin(cnf.Lit(lits[1]).Neg(), cr)
	}
	s.ca.free(cr)
	s.stats.Removed++
}

func (s *Solver) removeWatchBin(p cnf.Lit, cr CRef) {
	ws := s.watchesBin[p]
	for i := range ws {
		if ws[i].cref == cr {
			ws[i] = ws[len(ws)-1]
			s.watchesBin[p] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) uncheckedEnqueue(p cnf.Lit, from CRef) {
	v := p.Var()
	if p.Sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, p)
}

// propagate performs unit propagation over the trail; it returns a
// conflicting clause or CRefUndef.
func (s *Solver) propagate() CRef {
	confl := CRefUndef
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true
		s.qhead++
		s.stats.Propagations++

		// Binary fast path: the blocker is the clause's only other literal,
		// so implication and conflict detection need no arena access.
		for _, w := range s.watchesBin[p] {
			switch s.value(w.blocker) {
			case lFalse:
				s.qhead = len(s.trail)
				return w.cref
			case lUndef:
				s.uncheckedEnqueue(w.blocker, w.cref)
			}
		}

		ws := s.watches[p]
		data := s.ca.data
		i, j := 0, 0
	nextWatcher:
		for i < len(ws) {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				i++
				j++
				continue
			}
			h := data[w.cref]
			if h&hdrDead != 0 {
				i++ // lazily deleted clause: self-clean the watcher
				continue
			}
			base := int(w.cref) + hdrWords
			lits := data[base : base+int(h>>hdrSizeShift)]
			falseLit := uint32(p.Neg())
			if lits[0] == falseLit {
				lits[0], lits[1] = lits[1], lits[0]
			}
			// Invariant: lits[1] == falseLit.
			i++
			first := cnf.Lit(lits[0])
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = watcher{w.cref, first}
				j++
				continue
			}
			for k := 2; k < len(lits); k++ {
				if s.value(cnf.Lit(lits[k])) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					q := cnf.Lit(lits[1]).Neg()
					s.watches[q] = append(s.watches[q], watcher{w.cref, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{w.cref, first}
			j++
			if s.value(first) == lFalse {
				confl = w.cref
				s.qhead = len(s.trail)
				for i < len(ws) {
					ws[j] = ws[i]
					j++
					i++
				}
			} else {
				s.uncheckedEnqueue(first, w.cref)
			}
		}
		s.watches[p] = ws[:j]
		if confl != CRefUndef {
			return confl
		}
	}
	return CRefUndef
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		p := s.trail[i]
		v := p.Var()
		s.polarity[v] = p.Sign()
		s.assigns[v] = lUndef
		s.reason[v] = CRefUndef
		s.order.insert(v, s.activity)
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) varBumpActivity(v cnf.Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.increased(v, s.activity)
}

func (s *Solver) claBumpActivity(cr CRef) {
	act := s.ca.activity(cr) + float32(s.claInc)
	s.ca.setActivity(cr, act)
	if act > 1e20 {
		for _, lr := range s.learnts {
			s.ca.setActivity(lr, s.ca.activity(lr)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

func abstractLevel(level int32) uint32 { return 1 << (uint(level) & 31) }

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backtrack level. The returned slice is
// scratch owned by the solver, valid until the next analyze call.
func (s *Solver) analyze(confl CRef) ([]cnf.Lit, int) {
	learnt := append(s.analyzeLearnt[:0], cnf.LitUndef)
	pathC := 0
	p := cnf.LitUndef
	index := len(s.trail) - 1

	for {
		if s.ca.learnt(confl) {
			s.claBumpActivity(confl)
		}
		for _, qw := range s.ca.lits(confl) {
			q := cnf.Lit(qw)
			if p != cnf.LitUndef && q.Var() == p.Var() {
				continue
			}
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.seen[v] = 1
				s.varBumpActivity(v)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for s.seen[s.trail[index].Var()] == 0 {
			index--
		}
		p = s.trail[index]
		index--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Neg()

	// Recursive conflict-clause minimization (MiniSat "deep" mode).
	s.analyzeToClear = append(s.analyzeToClear[:0], learnt...)
	var levels uint32
	for _, l := range learnt[1:] {
		levels |= abstractLevel(s.level[l.Var()])
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		l := learnt[i]
		if s.reason[l.Var()] == CRefUndef || !s.litRedundant(l, levels) {
			learnt[j] = l
			j++
		} else {
			s.stats.MinimizedLit++
		}
	}
	learnt = learnt[:j]

	// Compute backtrack level; place a literal of that level at position 1.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}

	for _, l := range s.analyzeToClear {
		s.seen[l.Var()] = 0
	}
	s.analyzeToClear = s.analyzeToClear[:0]
	s.analyzeLearnt = learnt
	return learnt, btLevel
}

// computeLBD counts the distinct decision levels among the clause literals
// (the Glucose "literals blocks distance").
func (s *Solver) computeLBD(lits []cnf.Lit) int32 {
	s.lbdCounter++
	if s.lbdCounter == 0 {
		// The stamp counter wrapped: stale stamps from 2^32 calls ago would
		// now falsely match. Clear them and skip the ambiguous value 0.
		clear(s.lbdStamp)
		s.lbdCounter = 1
	}
	var lbd int32
	for _, l := range lits {
		lv := s.level[l.Var()]
		if int(lv) < len(s.lbdStamp) && s.lbdStamp[lv] != s.lbdCounter {
			s.lbdStamp[lv] = s.lbdCounter
			lbd++
		}
	}
	return lbd
}

// litRedundant checks whether p is implied by other literals of the learnt
// clause (seen-marked) and can therefore be dropped.
func (s *Solver) litRedundant(p cnf.Lit, abstractLevels uint32) bool {
	s.analyzeStack = append(s.analyzeStack[:0], p)
	top := len(s.analyzeToClear)
	for len(s.analyzeStack) > 0 {
		q := s.analyzeStack[len(s.analyzeStack)-1]
		s.analyzeStack = s.analyzeStack[:len(s.analyzeStack)-1]
		for _, lw := range s.ca.lits(s.reason[q.Var()]) {
			l := cnf.Lit(lw)
			if l.Var() == q.Var() {
				continue
			}
			v := l.Var()
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			if s.reason[v] != CRefUndef && abstractLevel(s.level[v])&abstractLevels != 0 {
				s.seen[v] = 1
				s.analyzeStack = append(s.analyzeStack, l)
				s.analyzeToClear = append(s.analyzeToClear, l)
			} else {
				for k := top; k < len(s.analyzeToClear); k++ {
					s.seen[s.analyzeToClear[k].Var()] = 0
				}
				s.analyzeToClear = s.analyzeToClear[:top]
				return false
			}
		}
	}
	return true
}

// analyzeFinal computes the subset of assumptions responsible for forcing p
// false; p itself is the failed assumption.
func (s *Solver) analyzeFinal(p cnf.Lit) {
	s.conflictSet = append(s.conflictSet[:0], p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == CRefUndef {
			// A decision inside the assumption prefix is an assumption.
			s.conflictSet = append(s.conflictSet, s.trail[i])
		} else {
			for _, lw := range s.ca.lits(s.reason[v]) {
				l := cnf.Lit(lw)
				if l.Var() != v && s.level[l.Var()] > 0 {
					s.seen[l.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}

// locked reports whether cr is the reason of one of its watched literals.
// Long clauses keep the implied literal at index 0 (propagate maintains it);
// binary implications enqueue the blocker without reordering the clause, so
// either position may hold the implied literal.
func (s *Solver) locked(cr CRef) bool {
	l0 := s.ca.lit(cr, 0)
	if s.value(l0) == lTrue && s.reason[l0.Var()] == cr {
		return true
	}
	if s.ca.size(cr) == 2 {
		l1 := s.ca.lit(cr, 1)
		if s.value(l1) == lTrue && s.reason[l1.Var()] == cr {
			return true
		}
	}
	return false
}

// reduceDB removes roughly half of the learnt clauses, keeping binary,
// locked, and high-activity ones.
func (s *Solver) reduceDB() {
	extraLim := s.claInc / float64(len(s.learnts)+1)
	ls := s.learnts
	lbdMode := s.Management == LBDBased
	// Sort ascending: clauses to delete first.
	s.quickSortLearnts(ls, 0, len(ls)-1, lbdMode)
	j := 0
	for i, cr := range ls {
		keepGlue := lbdMode && s.ca.lbd(cr) <= 2
		del := s.ca.size(cr) > 2 && !s.locked(cr) && !keepGlue
		if lbdMode {
			del = del && i < len(ls)/2
		} else {
			del = del && (i < len(ls)/2 || float64(s.ca.activity(cr)) < extraLim)
		}
		if del {
			s.removeClause(cr)
		} else {
			ls[j] = cr
			j++
		}
	}
	s.learnts = ls[:j]
	s.checkGarbage()
}

// learntLess orders learnt clauses for deletion: clauses to delete first.
// ActivityBased is MiniSat's order (long low-activity first); LBDBased is
// Glucose's (high LBD first, activity as tie-breaker).
func (s *Solver) learntLess(a, b CRef, lbdMode bool) bool {
	if lbdMode {
		la, lb := s.ca.lbd(a), s.ca.lbd(b)
		if la != lb {
			return la > lb
		}
		return s.ca.activity(a) < s.ca.activity(b)
	}
	ab := s.ca.size(a) > 2
	bb := s.ca.size(b) > 2
	if ab != bb {
		return ab // long clauses sort first (deleted first)
	}
	return s.ca.activity(a) < s.ca.activity(b)
}

func (s *Solver) quickSortLearnts(ls []CRef, lo, hi int, lbdMode bool) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				c := ls[i]
				j := i - 1
				for j >= lo && s.learntLess(c, ls[j], lbdMode) {
					ls[j+1] = ls[j]
					j--
				}
				ls[j+1] = c
			}
			return
		}
		p := ls[(lo+hi)/2]
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if !s.learntLess(ls[i], p, lbdMode) {
					break
				}
			}
			for {
				j--
				if !s.learntLess(p, ls[j], lbdMode) {
					break
				}
			}
			if i >= j {
				break
			}
			ls[i], ls[j] = ls[j], ls[i]
		}
		s.quickSortLearnts(ls, lo, j, lbdMode)
		lo = j + 1
	}
}

// simplify removes satisfied clauses at decision level 0.
func (s *Solver) simplify() {
	if s.decisionLevel() != 0 || !s.ok {
		return
	}
	s.learnts = s.removeSatisfied(s.learnts)
	s.clauses = s.removeSatisfied(s.clauses)
	s.checkGarbage()
}

func (s *Solver) removeSatisfied(cs []CRef) []CRef {
	j := 0
	for _, cr := range cs {
		sat := false
		for _, lw := range s.ca.lits(cr) {
			l := cnf.Lit(lw)
			if s.value(l) == lTrue && s.level[l.Var()] == 0 {
				sat = true
				break
			}
		}
		if sat && !s.locked(cr) {
			s.removeClause(cr)
		} else {
			cs[j] = cr
			j++
		}
	}
	return cs[:j]
}

// checkGarbage compacts the arena once at least 20% of it is dead words.
func (s *Solver) checkGarbage() {
	if s.ca.wasted*5 > len(s.ca.data) {
		s.garbageCollect()
	}
}

// garbageCollect copies the live clauses into a fresh arena and remaps every
// stored CRef: watch lists (dropping watchers of dead clauses — this is
// where lazily deleted clauses finally disappear), trail reasons, and the
// clause lists.
func (s *Solver) garbageCollect() {
	to := arena{data: make([]uint32, 0, len(s.ca.data)-s.ca.wasted)}
	for li := range s.watches {
		s.watches[li] = s.relocWatchers(s.watches[li], &to)
		s.watchesBin[li] = s.relocWatchers(s.watchesBin[li], &to)
	}
	for _, p := range s.trail {
		v := p.Var()
		cr := s.reason[v]
		if cr == CRefUndef {
			continue
		}
		if s.ca.dead(cr) {
			// A satisfied level-0 reason may have been deleted by simplify;
			// such reasons are never dereferenced again.
			s.reason[v] = CRefUndef
		} else {
			s.reason[v] = s.ca.reloc(cr, &to)
		}
	}
	s.clauses = s.relocCRefs(s.clauses, &to)
	s.learnts = s.relocCRefs(s.learnts, &to)
	s.ca = to
	s.stats.ArenaGCs++
}

func (s *Solver) relocWatchers(ws []watcher, to *arena) []watcher {
	j := 0
	for _, w := range ws {
		if s.ca.dead(w.cref) {
			continue
		}
		ws[j] = watcher{s.ca.reloc(w.cref, to), w.blocker}
		j++
	}
	return ws[:j]
}

func (s *Solver) relocCRefs(cs []CRef, to *arena) []CRef {
	j := 0
	for _, cr := range cs {
		if s.ca.dead(cr) {
			continue
		}
		cs[j] = s.ca.reloc(cr, to)
		j++
	}
	return cs[:j]
}

func (s *Solver) pickBranchLit() cnf.Lit {
	for {
		v := s.order.removeMax(s.activity)
		if v == cnf.VarUndef {
			return cnf.LitUndef
		}
		if s.assigns[v] == lUndef {
			return cnf.NewLit(v, s.polarity[v])
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based spirit,
// 0-based argument) with base factor y.
func luby(y float64, x int) float64 {
	size, seq := 1, 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x = x % size
	}
	r := 1.0
	for i := 0; i < seq; i++ {
		r *= y
	}
	return r
}

type searchOutcome int8

const (
	outSat searchOutcome = iota
	outUnsat
	outRestart
	outAborted
)

// search runs CDCL until a verdict, a restart point, or budget exhaustion.
func (s *Solver) search(nofConflicts int64, conflictBudget *int64) searchOutcome {
	var conflictC int64
	for {
		confl := s.propagate()
		if confl != CRefUndef {
			s.stats.Conflicts++
			conflictC++
			*conflictBudget--
			if s.pulse != nil {
				s.pulse.Add(1)
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				s.proofLearn(nil)
				return outUnsat
			}
			learnt, btLevel := s.analyze(confl)
			s.proofLearn(learnt)
			s.cancelUntil(btLevel)
			lbd := int32(1)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], CRefUndef)
			} else {
				cr := s.ca.alloc(learnt, true)
				lbd = s.computeLBD(learnt)
				s.ca.setLBD(cr, lbd)
				s.learnts = append(s.learnts, cr)
				s.attach(cr)
				s.claBumpActivity(cr)
				s.stats.Learnt++
				s.uncheckedEnqueue(learnt[0], cr)
			}
			s.noteLearntLBD(lbd)
			if s.exchange != nil {
				s.shareSince++
				s.maybeExport(learnt, lbd)
			}
			s.varInc /= s.varDecay
			s.claInc /= s.claDecay

			s.learntAdjustC--
			if s.learntAdjustC <= 0 {
				s.learntAdjust *= 1.5
				s.learntAdjustC = s.learntAdjust
				s.maxLearnts *= 1.1
			}
			if conflictC&255 == 0 && s.budgetExhausted() {
				return outAborted
			}
			continue
		}
		// No conflict.
		if s.shouldRestart(nofConflicts, conflictC) {
			s.stats.Restarts++
			s.cancelUntil(0)
			return outRestart
		}
		if s.budget.MaxConflicts > 0 && *conflictBudget <= 0 {
			return outAborted
		}
		if s.decisionLevel() == 0 {
			s.simplify()
		}
		if float64(len(s.learnts)-len(s.trail)) >= s.maxLearnts {
			s.reduceDB()
		}
		next := cnf.LitUndef
		for s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.newDecisionLevel() // dummy level: assumption already holds
			case lFalse:
				s.analyzeFinal(p)
				return outUnsat
			default:
				next = p
			}
			if next != cnf.LitUndef {
				break
			}
		}
		if next == cnf.LitUndef {
			s.stats.Decisions++
			next = s.pickBranchLit()
			if next == cnf.LitUndef {
				return outSat // all variables assigned
			}
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, CRefUndef)
	}
}

func (s *Solver) budgetExhausted() bool {
	if s.budget.Stop != nil && s.budget.Stop.Load() {
		return true
	}
	if s.budget.Ctx != nil && s.budget.Ctx.Err() != nil {
		return true
	}
	if !s.budget.Deadline.IsZero() && time.Now().After(s.budget.Deadline) {
		return true
	}
	if s.budget.MaxMemory > 0 && s.MemoryFootprint() > s.budget.MaxMemory {
		return true
	}
	return false
}

// MemoryFootprint returns the solver's clause-storage footprint in bytes:
// the clause arena (problem and learnt clauses live inline in one []uint32,
// including the dead words awaiting GC) plus the two watcher entries each
// attached clause holds. Fixed per-variable state is excluded — it is set by
// EnsureVars, not by search, so it cannot grow without bound. This is the
// quantity Budget.MaxMemory caps.
func (s *Solver) MemoryFootprint() int64 {
	return 4*int64(cap(s.ca.data)) + 16*int64(len(s.clauses)+len(s.learnts))
}

// Solve determines satisfiability of the clause set under the given
// assumptions. On Sat, Model returns a satisfying assignment; on Unsat under
// assumptions, Core returns a subset of the assumptions that is already
// unsatisfiable together with the clauses. Unknown means the budget was
// exhausted.
//
// Between consecutive Solve calls the solver keeps the trail segment whose
// assumption prefix is unchanged: decision level i of a finished call holds
// assumption i's placement and everything it propagated, so a following
// call that repeats assumptions[0..k) resumes from level k instead of
// re-deciding and re-propagating the shared prefix. Core-guided MaxSAT
// loops, which mostly drop one selector or tighten one trailing bound
// literal per call, keep almost the whole trail. Adding a clause between
// calls backtracks to level 0 (see addClauseOwned), which safely disables
// the reuse for that transition.
func (s *Solver) Solve(assumps ...cnf.Lit) Status {
	s.stats.Solves++
	s.model = nil
	s.conflictSet = s.conflictSet[:0]
	if !s.ok {
		return Unsat
	}
	for _, a := range assumps {
		if int(a.Var()) >= s.NumVars() {
			s.EnsureVars(int(a.Var()) + 1)
		}
	}
	// Trail reuse: levels 1..decisionLevel() of the previous call (if still
	// standing) correspond one-to-one to its assumption prefix; keep the
	// longest prefix the new assumptions repeat verbatim.
	keep := s.decisionLevel()
	if len(s.prevAssumps) < keep {
		keep = len(s.prevAssumps)
	}
	if len(assumps) < keep {
		keep = len(assumps)
	}
	match := 0
	for match < keep && s.prevAssumps[match] == assumps[match] {
		match++
	}
	s.stats.TrailReused += int64(match)
	s.cancelUntil(match)
	// A large backlog of foreign clauses is worth more than the kept trail
	// prefix (which one backtrack rebuilds next search anyway): drop to
	// level 0 so the import point below can drain it.
	if s.exchange != nil && s.decisionLevel() > 0 && s.exchange.Pending() >= importEagerMin {
		s.cancelUntil(0)
	}
	s.assumptions = assumps

	s.maxLearnts = float64(len(s.clauses)) / 3
	if s.maxLearnts < 4000 {
		s.maxLearnts = 4000
	}
	s.learntAdjust = 100
	s.learntAdjustC = 100

	conflictBudget := s.budget.MaxConflicts
	if conflictBudget <= 0 {
		conflictBudget = 1 << 62
	}

	status := Unknown
	for curRestarts := 0; ; curRestarts++ {
		if s.budgetExhausted() {
			break
		}
		// Level-0 boundaries — the first episode of a from-scratch call and
		// every restart — are where foreign clauses enter; mid-trail resumes
		// (assumption-prefix reuse) are left untouched.
		if s.exchange != nil && s.decisionLevel() == 0 {
			s.importClauses()
			if !s.ok {
				status = Unsat
				break
			}
		}
		restartLim := int64(-1) // adaptive policies restart on their own
		if s.restartPolicy == RestartLuby {
			restartLim = int64(luby(2, curRestarts) * float64(s.restartFirst))
		}
		switch s.search(restartLim, &conflictBudget) {
		case outSat:
			n := s.NumVars()
			if cap(s.modelBuf) < n {
				s.modelBuf = make(cnf.Assignment, n)
			}
			m := s.modelBuf[:n]
			for v := range s.assigns {
				m[v] = s.assigns[v] == lTrue
			}
			s.model = m
			status = Sat
		case outUnsat:
			status = Unsat
		case outAborted:
			status = Unknown
		case outRestart:
			continue
		}
		break
	}
	// Do not backtrack to level 0: the assumption levels stay on the trail
	// for the next call's prefix reuse (s.prevAssumps records what they
	// mean). Every other entry point that needs level 0 backtracks itself.
	s.prevAssumps = append(s.prevAssumps[:0], assumps...)
	s.assumptions = nil
	return status
}

// Model returns the satisfying assignment found by the last Sat Solve call.
// The returned slice is owned by the solver until the next Solve.
func (s *Solver) Model() cnf.Assignment { return s.model }

// Core returns the failed assumptions from the last Unsat Solve call: a
// subset of the assumptions that, together with the clauses, is
// unsatisfiable. An empty core means the clause set is unsatisfiable without
// any assumptions.
func (s *Solver) Core() []cnf.Lit { return s.conflictSet }

// NumClauses returns the number of attached problem clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of currently retained learnt clauses.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// AddFormula adds every clause of f, returning false on level-0 conflict.
func (s *Solver) AddFormula(f *cnf.Formula) bool {
	s.EnsureVars(f.NumVars)
	for _, c := range f.Clauses {
		if !s.AddClauseFrom(c) {
			return false
		}
	}
	return true
}
