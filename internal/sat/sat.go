// Package sat implements a conflict-driven clause-learning (CDCL) SAT solver
// in the architecture of MiniSat 1.14/2.2, the solver underlying the msu4
// algorithm of Marques-Silva & Planes (DATE 2008).
//
// Features: two-watched-literal propagation with blocker literals, VSIDS
// variable activities with phase saving, Luby restarts, first-UIP clause
// learning with recursive minimization, activity-based learnt-clause
// deletion, incremental solving under assumptions, and extraction of a
// subset of the assumptions responsible for unsatisfiability (the mechanism
// the MaxSAT algorithms in this repository use to obtain unsatisfiable
// cores).
//
// The solver is resource-bounded: a Budget can cap conflicts and wall-clock
// time, in which case Solve returns Unknown. This is how the experiment
// harness emulates the per-instance timeout of the paper's evaluation.
package sat

import (
	"sync/atomic"
	"time"

	"repro/internal/cnf"
)

// Status is a solver verdict.
type Status int8

// Solver verdicts.
const (
	Unknown Status = iota // budget exhausted or interrupted
	Sat
	Unsat
)

// String returns the conventional solver-output name of the status.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SATISFIABLE"
	case Unsat:
		return "UNSATISFIABLE"
	default:
		return "UNKNOWN"
	}
}

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

// Budget bounds a Solve call. The zero value means "no limit".
type Budget struct {
	// Deadline, when non-zero, aborts the search once passed. It is checked
	// every few hundred conflicts, so overshoot is bounded by the time the
	// solver spends on that many conflicts.
	Deadline time.Time
	// MaxConflicts, when positive, caps the number of conflicts of one
	// Solve call.
	MaxConflicts int64
	// Stop, when non-nil, aborts the search as soon as it is observed true.
	Stop *atomic.Bool
}

// Stats are cumulative solver statistics across all Solve calls.
type Stats struct {
	Solves       int64
	Conflicts    int64
	Decisions    int64
	Propagations int64
	Restarts     int64
	Learnt       int64
	Removed      int64
	MinimizedLit int64 // literals deleted by conflict-clause minimization
}

type clause struct {
	lits   []cnf.Lit
	act    float64
	lbd    int32
	learnt bool
}

type watcher struct {
	c       *clause
	blocker cnf.Lit
}

// ClauseManagement selects the learnt-clause deletion policy.
type ClauseManagement int8

// Deletion policies.
const (
	// ActivityBased is MiniSat's policy: delete low-activity halves.
	ActivityBased ClauseManagement = iota
	// LBDBased is the Glucose policy: delete high-LBD clauses first and
	// always keep "glue" clauses (LBD <= 2).
	LBDBased
)

// Solver is an incremental CDCL SAT solver. The zero value is not usable;
// construct with New.
type Solver struct {
	ok      bool // false once the clause set is known unsat at level 0
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by literal p: clauses watching ¬p

	assigns  []lbool // per variable
	level    []int32
	reason   []*clause
	polarity []bool // saved phase: sign to use on next decision
	activity []float64
	order    varHeap

	trail    []cnf.Lit
	trailLim []int
	qhead    int

	seen           []byte
	analyzeToClear []cnf.Lit
	analyzeStack   []cnf.Lit

	varInc   float64
	varDecay float64
	claInc   float64
	claDecay float64

	restartFirst  int
	maxLearnts    float64
	learntAdjust  float64
	learntAdjustC float64

	assumptions []cnf.Lit
	conflictSet []cnf.Lit // failed assumptions from last Unsat-under-assumptions

	model cnf.Assignment

	budget Budget
	stats  Stats

	// Management selects the learnt-clause deletion policy (default
	// ActivityBased, the MiniSat behaviour matching the paper's era;
	// LBDBased is the Glucose-style ablation).
	Management ClauseManagement

	lbdStamp   []uint32
	lbdCounter uint32
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{
		ok:           true,
		varInc:       1,
		varDecay:     0.95,
		claInc:       1,
		claDecay:     0.999,
		restartFirst: 100,
	}
}

// NumVars returns the number of variables allocated so far.
func (s *Solver) NumVars() int { return len(s.assigns) }

// NewVar allocates and returns a fresh variable.
func (s *Solver) NewVar() cnf.Var {
	v := cnf.Var(len(s.assigns))
	s.assigns = append(s.assigns, lUndef)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.polarity = append(s.polarity, true) // negative-first, MiniSat default
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, 0)
	s.lbdStamp = append(s.lbdStamp, 0)
	s.watches = append(s.watches, nil, nil)
	s.order.insert(v, s.activity)
	return v
}

// EnsureVars allocates variables until at least n exist.
func (s *Solver) EnsureVars(n int) {
	for len(s.assigns) < n {
		s.NewVar()
	}
}

// Okay reports whether the clause set is still possibly satisfiable. Once it
// returns false the solver is permanently unsat and Solve returns Unsat
// immediately.
func (s *Solver) Okay() bool { return s.ok }

// Stats returns cumulative statistics.
func (s *Solver) Stats() Stats { return s.stats }

// SetBudget installs the budget used by subsequent Solve calls.
func (s *Solver) SetBudget(b Budget) { s.budget = b }

func (s *Solver) value(l cnf.Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		if v == lTrue {
			return lFalse
		}
		return lTrue
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a clause over the given literals (copied). It returns false
// if the clause set became trivially unsatisfiable at level 0. Variables are
// allocated on demand.
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	tmp := make(cnf.Clause, len(lits))
	copy(tmp, lits)
	return s.addClauseOwned(tmp)
}

// AddClauseFrom adds a copy of c.
func (s *Solver) AddClauseFrom(c cnf.Clause) bool {
	return s.AddClause(c...)
}

// addClauseOwned takes ownership of tmp.
func (s *Solver) addClauseOwned(tmp cnf.Clause) bool {
	if !s.ok {
		return false
	}
	if mv := tmp.MaxVar(); mv != cnf.VarUndef {
		s.EnsureVars(int(mv) + 1)
	}
	tmp, taut := tmp.Normalize()
	if taut {
		return true
	}
	// Strip literals already false at level 0; drop clause if one is true.
	j := 0
	for _, l := range tmp {
		switch {
		case s.value(l) == lTrue && s.level[l.Var()] == 0:
			return true
		case s.value(l) == lFalse && s.level[l.Var()] == 0:
			// drop
		default:
			tmp[j] = l
			j++
		}
	}
	tmp = tmp[:j]
	switch len(tmp) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(tmp[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	default:
		c := &clause{lits: tmp}
		s.clauses = append(s.clauses, c)
		s.attach(c)
		return true
	}
}

func (s *Solver) attach(c *clause) {
	l0, l1 := c.lits[0], c.lits[1]
	s.watches[l0.Neg()] = append(s.watches[l0.Neg()], watcher{c, l1})
	s.watches[l1.Neg()] = append(s.watches[l1.Neg()], watcher{c, l0})
}

func (s *Solver) detach(c *clause) {
	s.removeWatch(c.lits[0].Neg(), c)
	s.removeWatch(c.lits[1].Neg(), c)
}

func (s *Solver) removeWatch(p cnf.Lit, c *clause) {
	ws := s.watches[p]
	for i := range ws {
		if ws[i].c == c {
			ws[i] = ws[len(ws)-1]
			s.watches[p] = ws[:len(ws)-1]
			return
		}
	}
}

func (s *Solver) uncheckedEnqueue(p cnf.Lit, from *clause) {
	v := p.Var()
	if p.Sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, p)
}

// propagate performs unit propagation over the trail; it returns a
// conflicting clause or nil.
func (s *Solver) propagate() *clause {
	var confl *clause
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead] // p is now true
		s.qhead++
		s.stats.Propagations++
		ws := s.watches[p]
		i, j := 0, 0
	nextWatcher:
		for i < len(ws) {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				i++
				j++
				continue
			}
			c := w.c
			lits := c.lits
			falseLit := p.Neg()
			if lits[0] == falseLit {
				lits[0], lits[1] = lits[1], lits[0]
			}
			// Invariant: lits[1] == falseLit.
			i++
			first := lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = watcher{c, first}
				j++
				continue
			}
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					q := lits[1].Neg()
					s.watches[q] = append(s.watches[q], watcher{c, first})
					continue nextWatcher
				}
			}
			// Clause is unit or conflicting.
			ws[j] = watcher{c, first}
			j++
			if s.value(first) == lFalse {
				confl = c
				s.qhead = len(s.trail)
				for i < len(ws) {
					ws[j] = ws[i]
					j++
					i++
				}
			} else {
				s.uncheckedEnqueue(first, c)
			}
		}
		s.watches[p] = ws[:j]
		if confl != nil {
			return confl
		}
	}
	return nil
}

func (s *Solver) newDecisionLevel() {
	s.trailLim = append(s.trailLim, len(s.trail))
}

// cancelUntil backtracks to the given decision level.
func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		p := s.trail[i]
		v := p.Var()
		s.polarity[v] = p.Sign()
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.insert(v, s.activity)
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) varBumpActivity(v cnf.Var) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.increased(v, s.activity)
}

func (s *Solver) claBumpActivity(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, l := range s.learnts {
			l.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

func abstractLevel(level int32) uint32 { return 1 << (uint(level) & 31) }

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]cnf.Lit, int) {
	learnt := []cnf.Lit{cnf.LitUndef}
	pathC := 0
	p := cnf.LitUndef
	index := len(s.trail) - 1

	for {
		lits := confl.lits
		if confl.learnt {
			s.claBumpActivity(confl)
		}
		for _, q := range lits {
			if p != cnf.LitUndef && q.Var() == p.Var() {
				continue
			}
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.seen[v] = 1
				s.varBumpActivity(v)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for s.seen[s.trail[index].Var()] == 0 {
			index--
		}
		p = s.trail[index]
		index--
		confl = s.reason[p.Var()]
		s.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Neg()

	// Recursive conflict-clause minimization (MiniSat "deep" mode).
	s.analyzeToClear = append(s.analyzeToClear[:0], learnt...)
	var levels uint32
	for _, l := range learnt[1:] {
		levels |= abstractLevel(s.level[l.Var()])
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		l := learnt[i]
		if s.reason[l.Var()] == nil || !s.litRedundant(l, levels) {
			learnt[j] = l
			j++
		} else {
			s.stats.MinimizedLit++
		}
	}
	learnt = learnt[:j]

	// Compute backtrack level; place a literal of that level at position 1.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}

	for _, l := range s.analyzeToClear {
		s.seen[l.Var()] = 0
	}
	s.analyzeToClear = s.analyzeToClear[:0]
	return learnt, btLevel
}

// computeLBD counts the distinct decision levels among the clause literals
// (the Glucose "literals blocks distance").
func (s *Solver) computeLBD(lits []cnf.Lit) int32 {
	s.lbdCounter++
	var lbd int32
	for _, l := range lits {
		lv := s.level[l.Var()]
		if int(lv) < len(s.lbdStamp) && s.lbdStamp[lv] != s.lbdCounter {
			s.lbdStamp[lv] = s.lbdCounter
			lbd++
		}
	}
	return lbd
}

// litRedundant checks whether p is implied by other literals of the learnt
// clause (seen-marked) and can therefore be dropped.
func (s *Solver) litRedundant(p cnf.Lit, abstractLevels uint32) bool {
	s.analyzeStack = append(s.analyzeStack[:0], p)
	top := len(s.analyzeToClear)
	for len(s.analyzeStack) > 0 {
		q := s.analyzeStack[len(s.analyzeStack)-1]
		s.analyzeStack = s.analyzeStack[:len(s.analyzeStack)-1]
		c := s.reason[q.Var()]
		for _, l := range c.lits {
			if l.Var() == q.Var() {
				continue
			}
			v := l.Var()
			if s.seen[v] != 0 || s.level[v] == 0 {
				continue
			}
			if s.reason[v] != nil && abstractLevel(s.level[v])&abstractLevels != 0 {
				s.seen[v] = 1
				s.analyzeStack = append(s.analyzeStack, l)
				s.analyzeToClear = append(s.analyzeToClear, l)
			} else {
				for k := top; k < len(s.analyzeToClear); k++ {
					s.seen[s.analyzeToClear[k].Var()] = 0
				}
				s.analyzeToClear = s.analyzeToClear[:top]
				return false
			}
		}
	}
	return true
}

// analyzeFinal computes the subset of assumptions responsible for forcing p
// false; p itself is the failed assumption.
func (s *Solver) analyzeFinal(p cnf.Lit) {
	s.conflictSet = append(s.conflictSet[:0], p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if s.reason[v] == nil {
			// A decision inside the assumption prefix is an assumption.
			s.conflictSet = append(s.conflictSet, s.trail[i])
		} else {
			for _, l := range s.reason[v].lits {
				if l.Var() != v && s.level[l.Var()] > 0 {
					s.seen[l.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}

func (s *Solver) locked(c *clause) bool {
	l := c.lits[0]
	return s.value(l) == lTrue && s.reason[l.Var()] == c
}

func (s *Solver) removeClause(c *clause) {
	s.detach(c)
	s.stats.Removed++
}

// reduceDB removes roughly half of the learnt clauses, keeping binary,
// locked, and high-activity ones.
func (s *Solver) reduceDB() {
	extraLim := s.claInc / float64(len(s.learnts)+1)
	ls := s.learnts
	lbdMode := s.Management == LBDBased
	// Sort ascending: clauses to delete first.
	sortLearnts(ls, lbdMode)
	j := 0
	for i, c := range ls {
		keepGlue := lbdMode && c.lbd <= 2
		del := len(c.lits) > 2 && !s.locked(c) && !keepGlue
		if lbdMode {
			del = del && i < len(ls)/2
		} else {
			del = del && (i < len(ls)/2 || c.act < extraLim)
		}
		if del {
			s.removeClause(c)
		} else {
			ls[j] = c
			j++
		}
	}
	s.learnts = ls[:j]
}

func sortLearnts(ls []*clause, lbdMode bool) {
	less := learntLessActivity
	if lbdMode {
		less = learntLessLBD
	}
	quickSortLearnts(ls, 0, len(ls)-1, less)
}

// learntLessActivity: MiniSat order — long low-activity clauses first.
func learntLessActivity(a, b *clause) bool {
	ab := len(a.lits) > 2
	bb := len(b.lits) > 2
	if ab != bb {
		return ab // long clauses sort first (deleted first)
	}
	return a.act < b.act
}

// learntLessLBD: Glucose order — high-LBD clauses first (deleted first),
// activity as the tie-breaker.
func learntLessLBD(a, b *clause) bool {
	if a.lbd != b.lbd {
		return a.lbd > b.lbd
	}
	return a.act < b.act
}

func quickSortLearnts(ls []*clause, lo, hi int, less func(a, b *clause) bool) {
	for lo < hi {
		if hi-lo < 12 {
			for i := lo + 1; i <= hi; i++ {
				c := ls[i]
				j := i - 1
				for j >= lo && less(c, ls[j]) {
					ls[j+1] = ls[j]
					j--
				}
				ls[j+1] = c
			}
			return
		}
		p := ls[(lo+hi)/2]
		i, j := lo-1, hi+1
		for {
			for {
				i++
				if !less(ls[i], p) {
					break
				}
			}
			for {
				j--
				if !less(p, ls[j]) {
					break
				}
			}
			if i >= j {
				break
			}
			ls[i], ls[j] = ls[j], ls[i]
		}
		quickSortLearnts(ls, lo, j, less)
		lo = j + 1
	}
}

// simplify removes satisfied clauses at decision level 0.
func (s *Solver) simplify() {
	if s.decisionLevel() != 0 || !s.ok {
		return
	}
	s.learnts = s.removeSatisfied(s.learnts)
	s.clauses = s.removeSatisfied(s.clauses)
}

func (s *Solver) removeSatisfied(cs []*clause) []*clause {
	j := 0
	for _, c := range cs {
		sat := false
		for _, l := range c.lits {
			if s.value(l) == lTrue && s.level[l.Var()] == 0 {
				sat = true
				break
			}
		}
		if sat && !s.locked(c) {
			s.removeClause(c)
		} else {
			cs[j] = c
			j++
		}
	}
	return cs[:j]
}

func (s *Solver) pickBranchLit() cnf.Lit {
	for {
		v := s.order.removeMax(s.activity)
		if v == cnf.VarUndef {
			return cnf.LitUndef
		}
		if s.assigns[v] == lUndef {
			return cnf.NewLit(v, s.polarity[v])
		}
	}
}

// luby computes the Luby restart sequence value for index i (1-based spirit,
// 0-based argument) with base factor y.
func luby(y float64, x int) float64 {
	size, seq := 1, 0
	for size < x+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != x {
		size = (size - 1) / 2
		seq--
		x = x % size
	}
	r := 1.0
	for i := 0; i < seq; i++ {
		r *= y
	}
	return r
}

type searchOutcome int8

const (
	outSat searchOutcome = iota
	outUnsat
	outRestart
	outAborted
)

// search runs CDCL until a verdict, a restart point, or budget exhaustion.
func (s *Solver) search(nofConflicts int64, conflictBudget *int64) searchOutcome {
	var conflictC int64
	for {
		confl := s.propagate()
		if confl != nil {
			s.stats.Conflicts++
			conflictC++
			*conflictBudget--
			if s.decisionLevel() == 0 {
				s.ok = false
				return outUnsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true, lbd: s.computeLBD(learnt)}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.claBumpActivity(c)
				s.stats.Learnt++
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.varInc /= s.varDecay
			s.claInc /= s.claDecay

			s.learntAdjustC--
			if s.learntAdjustC <= 0 {
				s.learntAdjust *= 1.5
				s.learntAdjustC = s.learntAdjust
				s.maxLearnts *= 1.1
			}
			if conflictC&255 == 0 && s.budgetExhausted() {
				return outAborted
			}
			continue
		}
		// No conflict.
		if nofConflicts >= 0 && conflictC >= nofConflicts {
			s.stats.Restarts++
			s.cancelUntil(0)
			return outRestart
		}
		if s.budget.MaxConflicts > 0 && *conflictBudget <= 0 {
			return outAborted
		}
		if s.decisionLevel() == 0 {
			s.simplify()
		}
		if float64(len(s.learnts)-len(s.trail)) >= s.maxLearnts {
			s.reduceDB()
		}
		next := cnf.LitUndef
		for s.decisionLevel() < len(s.assumptions) {
			p := s.assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.newDecisionLevel() // dummy level: assumption already holds
			case lFalse:
				s.analyzeFinal(p)
				return outUnsat
			default:
				next = p
			}
			if next != cnf.LitUndef {
				break
			}
		}
		if next == cnf.LitUndef {
			s.stats.Decisions++
			next = s.pickBranchLit()
			if next == cnf.LitUndef {
				return outSat // all variables assigned
			}
		}
		s.newDecisionLevel()
		s.uncheckedEnqueue(next, nil)
	}
}

func (s *Solver) budgetExhausted() bool {
	if s.budget.Stop != nil && s.budget.Stop.Load() {
		return true
	}
	if !s.budget.Deadline.IsZero() && time.Now().After(s.budget.Deadline) {
		return true
	}
	return false
}

// Solve determines satisfiability of the clause set under the given
// assumptions. On Sat, Model returns a satisfying assignment; on Unsat under
// assumptions, Core returns a subset of the assumptions that is already
// unsatisfiable together with the clauses. Unknown means the budget was
// exhausted.
func (s *Solver) Solve(assumps ...cnf.Lit) Status {
	s.stats.Solves++
	s.model = nil
	s.conflictSet = s.conflictSet[:0]
	if !s.ok {
		return Unsat
	}
	for _, a := range assumps {
		if int(a.Var()) >= s.NumVars() {
			s.EnsureVars(int(a.Var()) + 1)
		}
	}
	s.assumptions = assumps

	s.maxLearnts = float64(len(s.clauses)) / 3
	if s.maxLearnts < 4000 {
		s.maxLearnts = 4000
	}
	s.learntAdjust = 100
	s.learntAdjustC = 100

	conflictBudget := s.budget.MaxConflicts
	if conflictBudget <= 0 {
		conflictBudget = 1 << 62
	}

	status := Unknown
	for curRestarts := 0; ; curRestarts++ {
		if s.budgetExhausted() {
			break
		}
		restartLim := int64(luby(2, curRestarts) * float64(s.restartFirst))
		switch s.search(restartLim, &conflictBudget) {
		case outSat:
			s.model = make(cnf.Assignment, s.NumVars())
			for v := range s.assigns {
				s.model[v] = s.assigns[v] == lTrue
			}
			status = Sat
		case outUnsat:
			status = Unsat
		case outAborted:
			status = Unknown
		case outRestart:
			continue
		}
		break
	}
	s.cancelUntil(0)
	s.assumptions = nil
	return status
}

// Model returns the satisfying assignment found by the last Sat Solve call.
// The returned slice is owned by the solver until the next Solve.
func (s *Solver) Model() cnf.Assignment { return s.model }

// Core returns the failed assumptions from the last Unsat Solve call: a
// subset of the assumptions that, together with the clauses, is
// unsatisfiable. An empty core means the clause set is unsatisfiable without
// any assumptions.
func (s *Solver) Core() []cnf.Lit { return s.conflictSet }

// NumClauses returns the number of attached problem clauses.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearnts returns the number of currently retained learnt clauses.
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// AddFormula adds every clause of f, returning false on level-0 conflict.
func (s *Solver) AddFormula(f *cnf.Formula) bool {
	s.EnsureVars(f.NumVars)
	for _, c := range f.Clauses {
		if !s.AddClauseFrom(c) {
			return false
		}
	}
	return true
}
