package sat

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/brute"
	"repro/internal/cnf"
)

// quickFormula is a testing/quick generator for small random formulas.
type quickFormula struct {
	f *cnf.Formula
}

// Generate implements quick.Generator.
func (quickFormula) Generate(r *rand.Rand, size int) reflect.Value {
	vars := 2 + r.Intn(8)
	f := cnf.NewFormula(vars)
	clauses := 1 + r.Intn(20)
	for i := 0; i < clauses; i++ {
		width := 1 + r.Intn(3)
		c := make([]cnf.Lit, 0, width)
		for j := 0; j < width; j++ {
			c = append(c, cnf.NewLit(cnf.Var(r.Intn(vars)), r.Intn(2) == 0))
		}
		f.AddClause(c...)
	}
	return reflect.ValueOf(quickFormula{f})
}

// TestQuickVerdictMatchesBruteForce: the CDCL verdict equals exhaustive
// search on arbitrary generated formulas.
func TestQuickVerdictMatchesBruteForce(t *testing.T) {
	prop := func(qf quickFormula) bool {
		s := New()
		s.AddFormula(qf.f)
		st := s.Solve()
		want, _ := brute.SAT(qf.f)
		if (st == Sat) != want {
			return false
		}
		if st == Sat && !qf.f.Eval(s.Model()[:qf.f.NumVars]) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSolveIsIdempotent: re-solving without changes returns the same
// verdict and the solver state stays usable.
func TestQuickSolveIsIdempotent(t *testing.T) {
	prop := func(qf quickFormula) bool {
		s := New()
		s.AddFormula(qf.f)
		first := s.Solve()
		second := s.Solve()
		return first == second
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHeapMaxOrder: popping the heap after arbitrary insertions and
// bumps yields variables in non-increasing activity order.
func TestQuickHeapMaxOrder(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		act := make([]float64, n)
		var h varHeap
		for v := 0; v < n; v++ {
			act[v] = rng.Float64() * 100
			h.insert(cnf.Var(v), act)
		}
		for i := 0; i < n/2; i++ {
			v := cnf.Var(rng.Intn(n))
			act[v] += rng.Float64() * 50
			h.increased(v, act)
		}
		prev := -1.0
		first := true
		for {
			v := h.removeMax(act)
			if v == cnf.VarUndef {
				break
			}
			if !first && act[v] > prev {
				return false
			}
			prev = act[v]
			first = false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLubyShape: the Luby sequence over base 2 always yields powers of
// two, is 1 infinitely often, and is monotone within each regeneration.
func TestQuickLubyShape(t *testing.T) {
	prop := func(raw uint8) bool {
		i := int(raw) // indices 0..255
		v := luby(2, i)
		if v < 1 {
			return false
		}
		// Power of two.
		x := int64(v)
		return float64(x) == v && x&(x-1) == 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCoreImpliesUnsat: whenever Solve under random assumptions is
// Unsat, the reported core added as units is Unsat too.
func TestQuickCoreImpliesUnsat(t *testing.T) {
	prop := func(qf quickFormula, mask uint16) bool {
		s := New()
		s.AddFormula(qf.f)
		var assumps []cnf.Lit
		for v := 0; v < qf.f.NumVars && v < 16; v++ {
			if mask&(1<<uint(v)) != 0 {
				assumps = append(assumps, cnf.NewLit(cnf.Var(v), v%2 == 0))
			}
		}
		if s.Solve(assumps...) != Unsat {
			return true // property only constrains Unsat outcomes
		}
		core := append([]cnf.Lit{}, s.Core()...)
		s2 := New()
		s2.AddFormula(qf.f)
		for _, l := range core {
			s2.AddClause(l)
		}
		return s2.Solve() == Unsat
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
