package sat

import "repro/internal/cnf"

// varHeap is an indexed binary max-heap over variables ordered by VSIDS
// activity. Activities live in the solver; the heap receives them as an
// argument so it stays a plain value type inside Solver.
type varHeap struct {
	heap    []cnf.Var
	indices []int32 // position of each var in heap, or -1
}

func (h *varHeap) inHeap(v cnf.Var) bool {
	return int(v) < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) insert(v cnf.Var, act []float64) {
	for int(v) >= len(h.indices) {
		h.indices = append(h.indices, -1)
	}
	if h.inHeap(v) {
		return
	}
	h.indices[v] = int32(len(h.heap))
	h.heap = append(h.heap, v)
	h.percolateUp(int(h.indices[v]), act)
}

// increased restores heap order after v's activity was bumped.
func (h *varHeap) increased(v cnf.Var, act []float64) {
	if h.inHeap(v) {
		h.percolateUp(int(h.indices[v]), act)
	}
}

// removeMax pops the most active variable, or VarUndef if empty.
func (h *varHeap) removeMax(act []float64) cnf.Var {
	if len(h.heap) == 0 {
		return cnf.VarUndef
	}
	top := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[top] = -1
	if len(h.heap) > 0 {
		h.heap[0] = last
		h.indices[last] = 0
		h.percolateDown(0, act)
	}
	return top
}

func (h *varHeap) percolateUp(i int, act []float64) {
	v := h.heap[i]
	for i > 0 {
		parent := (i - 1) / 2
		if act[h.heap[parent]] >= act[v] {
			break
		}
		h.heap[i] = h.heap[parent]
		h.indices[h.heap[i]] = int32(i)
		i = parent
	}
	h.heap[i] = v
	h.indices[v] = int32(i)
}

func (h *varHeap) percolateDown(i int, act []float64) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if child+1 < n && act[h.heap[child+1]] > act[h.heap[child]] {
			child++
		}
		if act[h.heap[child]] <= act[v] {
			break
		}
		h.heap[i] = h.heap[child]
		h.indices[h.heap[i]] = int32(i)
		i = child
	}
	h.heap[i] = v
	h.indices[v] = int32(i)
}

func (h *varHeap) size() int { return len(h.heap) }
