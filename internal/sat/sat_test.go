package sat

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/brute"
	"repro/internal/cnf"
)

func lit(i int) cnf.Lit { return cnf.FromDIMACS(i) }

func TestEmptySolverIsSat(t *testing.T) {
	s := New()
	if st := s.Solve(); st != Sat {
		t.Fatalf("empty solver: %v, want Sat", st)
	}
}

func TestSimpleSat(t *testing.T) {
	s := New()
	s.AddClause(lit(1), lit(2))
	s.AddClause(lit(-1), lit(2))
	s.AddClause(lit(1), lit(-2))
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	m := s.Model()
	if !m[0] || !m[1] {
		t.Fatalf("model %v does not satisfy (both must be true)", m)
	}
}

func TestSimpleUnsat(t *testing.T) {
	s := New()
	s.AddClause(lit(1), lit(2))
	s.AddClause(lit(-1), lit(2))
	s.AddClause(lit(1), lit(-2))
	s.AddClause(lit(-1), lit(-2))
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	if s.Okay() {
		t.Fatal("solver should be permanently unsat")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatal("subsequent solve must stay Unsat")
	}
}

func TestUnitConflictAtAdd(t *testing.T) {
	s := New()
	if !s.AddClause(lit(1)) {
		t.Fatal("first unit should succeed")
	}
	if s.AddClause(lit(-1)) {
		t.Fatal("contradicting unit should fail")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Fatal("empty clause should return false")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	s.AddClause(lit(1), lit(-1))
	if s.NumClauses() != 0 {
		t.Fatal("tautology should not be attached")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
}

func TestPaperExample1PBOFormulaSat(t *testing.T) {
	// φW = (x1 ∨ b1)(x2 ∨ ¬x1 ∨ b2)(¬x2 ∨ b3) from Example 1 of the paper
	// is satisfiable (that is the whole point of blocking variables).
	s := New()
	x1, x2, b1, b2, b3 := lit(1), lit(2), lit(3), lit(4), lit(5)
	s.AddClause(x1, b1)
	s.AddClause(x2, x1.Neg(), b2)
	s.AddClause(x2.Neg(), b3)
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	s.AddClause(lit(-1), lit(2))
	s.AddClause(lit(-2), lit(3))
	if st := s.Solve(lit(1), lit(-3)); st != Unsat {
		t.Fatalf("got %v, want Unsat under assumptions", st)
	}
	core := s.Core()
	if len(core) == 0 {
		t.Fatal("core must be non-empty")
	}
	// Solver must remain usable and satisfiable without assumptions.
	if st := s.Solve(); st != Sat {
		t.Fatalf("got %v, want Sat without assumptions", st)
	}
	if st := s.Solve(lit(1), lit(3)); st != Sat {
		t.Fatalf("got %v, want Sat under consistent assumptions", st)
	}
	m := s.Model()
	if !m[0] || !m[1] || !m[2] {
		t.Fatalf("model %v must satisfy assumptions and implications", m)
	}
}

func TestCoreIsSubsetOfAssumptions(t *testing.T) {
	s := New()
	// x1..x4 chain, contradiction only between a1 and a3.
	s.AddClause(lit(-10), lit(1))
	s.AddClause(lit(-11), lit(2))
	s.AddClause(lit(-12), lit(-1))
	s.AddClause(lit(-13), lit(3))
	assumps := []cnf.Lit{lit(10), lit(11), lit(12), lit(13)}
	if st := s.Solve(assumps...); st != Unsat {
		t.Fatal("want Unsat")
	}
	core := s.Core()
	inAssumps := map[cnf.Lit]bool{}
	for _, a := range assumps {
		inAssumps[a] = true
	}
	coreSet := map[cnf.Lit]bool{}
	for _, l := range core {
		if !inAssumps[l] {
			t.Fatalf("core literal %v is not an assumption", l)
		}
		coreSet[l] = true
	}
	if !coreSet[lit(10)] || !coreSet[lit(12)] {
		t.Fatalf("core %v must contain the conflicting selectors 10 and 12", core)
	}
	if coreSet[lit(11)] || coreSet[lit(13)] {
		t.Fatalf("core %v should not contain irrelevant selectors", core)
	}
}

func TestIncrementalAddBetweenSolves(t *testing.T) {
	s := New()
	s.AddClause(lit(1), lit(2))
	if st := s.Solve(); st != Sat {
		t.Fatal("want Sat")
	}
	s.AddClause(lit(-1))
	s.AddClause(lit(-2))
	if st := s.Solve(); st != Unsat {
		t.Fatal("want Unsat after adding contradicting units")
	}
}

func TestModelSatisfiesFormulaRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		f := randomFormula(rng, 3+rng.Intn(12), 1+rng.Intn(50), 3)
		s := New()
		s.AddFormula(f)
		st := s.Solve()
		want, _ := brute.SAT(f)
		switch st {
		case Sat:
			if !want {
				t.Fatalf("iter %d: solver Sat but formula unsat:\n%v", iter, f.Clauses)
			}
			m := s.Model()
			if !f.Eval(m[:f.NumVars]) {
				t.Fatalf("iter %d: model does not satisfy formula", iter)
			}
		case Unsat:
			if want {
				t.Fatalf("iter %d: solver Unsat but formula sat:\n%v", iter, f.Clauses)
			}
		default:
			t.Fatalf("iter %d: unexpected Unknown", iter)
		}
	}
}

func TestVerdictMatchesBruteForceHardFormulas(t *testing.T) {
	// Denser, larger formulas stress clause learning and restarts.
	rng := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 60; iter++ {
		n := 8 + rng.Intn(8)
		f := randomFormula(rng, n, int(4.5*float64(n)), 3)
		s := New()
		s.AddFormula(f)
		st := s.Solve()
		want, _ := brute.SAT(f)
		if (st == Sat) != want || st == Unknown {
			t.Fatalf("iter %d: got %v, brute force sat=%v", iter, st, want)
		}
	}
}

func TestAssumptionCoreIsUnsat(t *testing.T) {
	// Whenever Solve(assumps) is Unsat, adding the core literals as unit
	// clauses to a fresh solver over the same formula must be Unsat.
	rng := rand.New(rand.NewSource(99))
	tested := 0
	for iter := 0; iter < 300 && tested < 40; iter++ {
		f := randomFormula(rng, 6+rng.Intn(6), 10+rng.Intn(30), 3)
		s := New()
		s.AddFormula(f)
		var assumps []cnf.Lit
		for v := 0; v < f.NumVars; v++ {
			if rng.Intn(2) == 0 {
				assumps = append(assumps, cnf.NewLit(cnf.Var(v), rng.Intn(2) == 0))
			}
		}
		if s.Solve(assumps...) != Unsat {
			continue
		}
		tested++
		core := s.Core()
		s2 := New()
		s2.AddFormula(f)
		for _, l := range core {
			s2.AddClause(l)
		}
		if st := s2.Solve(); st != Unsat {
			t.Fatalf("iter %d: core %v is not unsat (got %v)", iter, core, st)
		}
	}
	if tested < 10 {
		t.Fatalf("only %d unsat-under-assumption cases exercised", tested)
	}
}

func TestPigeonhole(t *testing.T) {
	// PHP(n+1, n) is unsatisfiable and requires real search.
	for _, n := range []int{3, 4, 5, 6} {
		s := New()
		addPigeonhole(s, n)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d+1,%d): got %v, want Unsat", n, n, st)
		}
	}
	// PHP(n, n) is satisfiable.
	s := New()
	addPigeonholeSquare(s, 5)
	if st := s.Solve(); st != Sat {
		t.Fatalf("PHP(5,5): got %v, want Sat", st)
	}
}

// pigeonVar maps pigeon p in hole h (both 0-based) to a variable.
func pigeonVar(p, h, holes int) cnf.Lit {
	return cnf.PosLit(cnf.Var(p*holes + h))
}

func addPigeonhole(s *Solver, n int) {
	pigeons, holes := n+1, n
	for p := 0; p < pigeons; p++ {
		var c []cnf.Lit
		for h := 0; h < holes; h++ {
			c = append(c, pigeonVar(p, h, holes))
		}
		s.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(pigeonVar(p1, h, holes).Neg(), pigeonVar(p2, h, holes).Neg())
			}
		}
	}
}

func addPigeonholeSquare(s *Solver, n int) {
	for p := 0; p < n; p++ {
		var c []cnf.Lit
		for h := 0; h < n; h++ {
			c = append(c, pigeonVar(p, h, n))
		}
		s.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 < n; p1++ {
			for p2 := p1 + 1; p2 < n; p2++ {
				s.AddClause(pigeonVar(p1, h, n).Neg(), pigeonVar(p2, h, n).Neg())
			}
		}
	}
}

func TestBudgetConflicts(t *testing.T) {
	s := New()
	addPigeonhole(s, 7) // hard enough to exceed a tiny conflict budget
	s.SetBudget(Budget{MaxConflicts: 10})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("got %v, want Unknown under 10-conflict budget", st)
	}
	if !s.Okay() {
		t.Fatal("aborted solve must not mark solver unsat")
	}
	// Lifting the budget must allow completion.
	s.SetBudget(Budget{})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat without budget", st)
	}
}

func TestBudgetMemory(t *testing.T) {
	s := New()
	addPigeonhole(s, 7) // learns far more than a few hundred bytes of clauses
	if s.MemoryFootprint() <= 0 {
		t.Fatal("footprint of a loaded solver must be positive")
	}
	s.SetBudget(Budget{MaxMemory: 256})
	if st := s.Solve(); st != Unknown {
		t.Fatalf("got %v, want Unknown under a 256-byte memory budget", st)
	}
	if !s.Okay() {
		t.Fatal("aborted solve must not mark solver unsat")
	}
	// Lifting the cap must allow completion.
	s.SetBudget(Budget{})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("got %v, want Unsat without budget", st)
	}
}

func TestBudgetDeadline(t *testing.T) {
	s := New()
	addPigeonhole(s, 11)
	s.SetBudget(Budget{Deadline: time.Now().Add(10 * time.Millisecond)})
	start := time.Now()
	st := s.Solve()
	elapsed := time.Since(start)
	if st == Sat {
		t.Fatal("PHP cannot be Sat")
	}
	if st == Unknown && elapsed > 5*time.Second {
		t.Fatalf("deadline abort took %v", elapsed)
	}
}

func TestStatsProgress(t *testing.T) {
	s := New()
	addPigeonhole(s, 5)
	s.Solve()
	st := s.Stats()
	if st.Conflicts == 0 || st.Decisions == 0 || st.Propagations == 0 {
		t.Fatalf("stats should be non-zero: %+v", st)
	}
	if st.Solves != 1 {
		t.Fatalf("Solves = %d, want 1", st.Solves)
	}
}

func TestEnsureVars(t *testing.T) {
	s := New()
	s.EnsureVars(10)
	if s.NumVars() != 10 {
		t.Fatalf("NumVars = %d, want 10", s.NumVars())
	}
	if st := s.Solve(); st != Sat {
		t.Fatal("vars without clauses must be Sat")
	}
	if len(s.Model()) != 10 {
		t.Fatalf("model length %d, want 10", len(s.Model()))
	}
}

func TestSolveWithUnallocatedAssumptionVar(t *testing.T) {
	s := New()
	s.AddClause(lit(1))
	if st := s.Solve(lit(5)); st != Sat {
		t.Fatalf("got %v, want Sat", st)
	}
	m := s.Model()
	if !m.Lit(lit(5)) {
		t.Fatal("assumption must hold in model")
	}
}

func TestManySolvesIncremental(t *testing.T) {
	// Simulates the msu4 usage pattern: repeated solves with growing clause
	// set and changing assumptions.
	rng := rand.New(rand.NewSource(5))
	s := New()
	f := cnf.NewFormula(12)
	for round := 0; round < 30; round++ {
		c := make([]cnf.Lit, 0, 3)
		for j := 0; j < 3; j++ {
			c = append(c, cnf.NewLit(cnf.Var(rng.Intn(12)), rng.Intn(2) == 0))
		}
		f.AddClause(c...)
		s.AddClause(c...)
		var assumps []cnf.Lit
		for v := 0; v < 3; v++ {
			if rng.Intn(3) == 0 {
				assumps = append(assumps, cnf.NewLit(cnf.Var(v), rng.Intn(2) == 0))
			}
		}
		st := s.Solve(assumps...)
		// Cross-check with brute force on formula + assumption units.
		g := f.Clone()
		for _, a := range assumps {
			g.AddClause(a)
		}
		want, _ := brute.SAT(g)
		if (st == Sat) != want {
			t.Fatalf("round %d: got %v, brute sat=%v", round, st, want)
		}
		if !want {
			return // solver now permanently unsat, pattern complete
		}
	}
}

func TestLuby(t *testing.T) {
	want := []float64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(2, i); got != w {
			t.Fatalf("luby(2,%d) = %v, want %v", i, got, w)
		}
	}
}

func TestHeapOrdering(t *testing.T) {
	var h varHeap
	act := []float64{5, 1, 9, 3, 7}
	for v := 0; v < 5; v++ {
		h.insert(cnf.Var(v), act)
	}
	want := []cnf.Var{2, 4, 0, 3, 1}
	for i, w := range want {
		if got := h.removeMax(act); got != w {
			t.Fatalf("pop %d = %v, want %v", i, got, w)
		}
	}
	if got := h.removeMax(act); got != cnf.VarUndef {
		t.Fatalf("empty heap returned %v", got)
	}
}

func TestHeapIncrease(t *testing.T) {
	var h varHeap
	act := []float64{1, 2, 3}
	for v := 0; v < 3; v++ {
		h.insert(cnf.Var(v), act)
	}
	act[0] = 10
	h.increased(0, act)
	if got := h.removeMax(act); got != 0 {
		t.Fatalf("after bump, max = %v, want 0", got)
	}
	// Re-inserting an existing element is a no-op.
	h.insert(1, act)
	h.insert(1, act)
	if h.size() != 2 {
		t.Fatalf("size = %d, want 2", h.size())
	}
}

// randomFormula builds a random k-SAT formula (clauses may be shorter).
func randomFormula(rng *rand.Rand, vars, clauses, k int) *cnf.Formula {
	f := cnf.NewFormula(vars)
	for i := 0; i < clauses; i++ {
		width := 1 + rng.Intn(k)
		c := make([]cnf.Lit, 0, width)
		for j := 0; j < width; j++ {
			c = append(c, cnf.NewLit(cnf.Var(rng.Intn(vars)), rng.Intn(2) == 0))
		}
		f.AddClause(c...)
	}
	return f
}

func TestClauseDBReductionTriggered(t *testing.T) {
	// A large random unsat-ish instance must run long enough to trigger
	// learnt-clause deletion without losing correctness.
	rng := rand.New(rand.NewSource(31))
	s := New()
	f := randomFormula(rng, 60, 380, 3)
	s.AddFormula(f)
	st := s.Solve()
	if st == Unknown {
		t.Fatal("unbudgeted solve returned Unknown")
	}
	if st == Sat && !f.Eval(s.Model()[:f.NumVars]) {
		t.Fatal("model check failed")
	}
	stats := s.Stats()
	if stats.Conflicts < 100 {
		t.Skipf("instance too easy to exercise reduction (%d conflicts)", stats.Conflicts)
	}
	// Learnt bookkeeping must stay consistent.
	if s.NumLearnts() < 0 {
		t.Fatal("negative learnt count")
	}
}

func TestRestartsHappen(t *testing.T) {
	s := New()
	addPigeonhole(s, 7)
	s.Solve()
	if s.Stats().Restarts == 0 {
		t.Fatal("PHP(8,7) should trigger restarts")
	}
	if s.Stats().MinimizedLit == 0 {
		t.Fatal("conflict-clause minimization never fired")
	}
}

func TestLBDManagementCorrect(t *testing.T) {
	// The Glucose-style deletion policy must not change verdicts.
	rng := rand.New(rand.NewSource(1618))
	for iter := 0; iter < 60; iter++ {
		f := randomFormula(rng, 8+rng.Intn(8), 40+rng.Intn(40), 3)
		s := New()
		s.Management = LBDBased
		s.AddFormula(f)
		st := s.Solve()
		want, _ := brute.SAT(f)
		if (st == Sat) != want || st == Unknown {
			t.Fatalf("iter %d: LBD mode got %v, brute sat=%v", iter, st, want)
		}
		if st == Sat && !f.Eval(s.Model()[:f.NumVars]) {
			t.Fatalf("iter %d: LBD mode model invalid", iter)
		}
	}
	// And on a structured proof.
	s := New()
	s.Management = LBDBased
	addPigeonhole(s, 6)
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP with LBD mode: %v", st)
	}
}

// TestTrailReuseAcrossSolves checks the incremental-solve optimization:
// between consecutive Solve calls the trail segment whose assumption prefix
// is unchanged is kept, so an identical call re-propagates nothing, and a
// call that only changes a trailing assumption keeps the shared prefix.
func TestTrailReuseAcrossSolves(t *testing.T) {
	s := New()
	a := cnf.PosLit(0)
	b := cnf.PosLit(1)
	// A long implication chain hanging off a: a -> x2 -> x3 -> ... -> x9.
	for v := 2; v < 10; v++ {
		prev := a
		if v > 2 {
			prev = cnf.PosLit(cnf.Var(v - 1))
		}
		s.AddClause(prev.Neg(), cnf.PosLit(cnf.Var(v)))
	}
	if st := s.Solve(a, b); st != Sat {
		t.Fatalf("first solve: %v", st)
	}
	if s.decisionLevel() == 0 {
		t.Fatal("trail not kept after Solve")
	}
	props := s.stats.Propagations
	if st := s.Solve(a, b); st != Sat {
		t.Fatalf("second solve: %v", st)
	}
	if delta := s.stats.Propagations - props; delta != 0 {
		t.Fatalf("identical re-solve re-propagated %d literals", delta)
	}

	// Flipping only the trailing assumption keeps a's level: the chain
	// (propagated at level 1) must not be re-propagated.
	props = s.stats.Propagations
	if st := s.Solve(a, b.Neg()); st != Sat {
		t.Fatalf("flipped-tail solve: %v", st)
	}
	if delta := s.stats.Propagations - props; delta > 2 {
		t.Fatalf("tail flip re-propagated the shared prefix: %d literals", delta)
	}
	m := s.Model()
	if !m.Lit(a) || m.Lit(b) {
		t.Fatalf("model ignores assumptions: %v", m[:10])
	}

	// Adding a clause invalidates the kept trail; the solver must recover
	// and stay correct.
	s.AddClause(cnf.NegLit(9), cnf.PosLit(10))
	if s.decisionLevel() != 0 {
		t.Fatal("AddClause must backtrack to level 0")
	}
	if st := s.Solve(a, b); st != Sat {
		t.Fatalf("post-AddClause solve: %v", st)
	}
	if m := s.Model(); !m[10] {
		t.Fatal("new clause not propagated after trail reset")
	}

	// A changed leading assumption discards everything and still works.
	if st := s.Solve(a.Neg(), b); st != Sat {
		t.Fatalf("flipped-head solve: %v", st)
	}
	if m := s.Model(); m.Lit(a) {
		t.Fatal("flipped head assumption not honoured")
	}
}

// TestTrailReuseUnsatCore checks that core extraction stays correct when
// the failing call reuses a kept assumption prefix.
func TestTrailReuseUnsatCore(t *testing.T) {
	s := New()
	x, y, z := cnf.PosLit(0), cnf.PosLit(1), cnf.PosLit(2)
	s.AddClause(x.Neg(), y.Neg()) // x and y conflict
	if st := s.Solve(x, z); st != Sat {
		t.Fatalf("warmup: %v", st)
	}
	// Same leading assumption, new failing tail.
	if st := s.Solve(x, z, y); st != Unsat {
		t.Fatalf("want Unsat, got %v", st)
	}
	core := s.Core()
	seen := map[cnf.Lit]bool{}
	for _, l := range core {
		seen[l] = true
	}
	if !seen[x] && !seen[y] {
		t.Fatalf("core %v misses the conflicting assumptions", core)
	}
	if seen[z] {
		t.Fatalf("core %v contains irrelevant assumption", core)
	}
	// And the solver remains usable afterwards.
	if st := s.Solve(y, z); st != Sat {
		t.Fatalf("post-core solve: %v", st)
	}
}
