package sat

// RestartPolicy selects the restart schedule of the search loop.
type RestartPolicy int8

// Restart policies.
const (
	// RestartLuby is MiniSat's schedule: restart after luby(2, i) * 100
	// conflicts. The default, matching the paper's era.
	RestartLuby RestartPolicy = iota
	// RestartGlucose restarts adaptively: when the exponential moving
	// average of recent learnt-clause LBDs exceeds the global average (the
	// search is currently producing worse clauses than it historically did),
	// restart; when a conflict happens with an unusually large trail (the
	// search may be close to a full assignment), postpone.
	RestartGlucose
)

// Glucose-policy tuning: restart when recentLBD * glucoseK > globalLBD
// (recent clause quality at least 1/K = 1.25x worse than the global
// average), with a warm-up of glucoseMinConflicts per search episode and
// glucoseMinSamples learnt clauses overall. A conflict whose trail exceeds
// glucoseBlockR times the running average resets the recent-LBD average,
// postponing the next restart.
const (
	glucoseK            = 0.8
	glucoseMinConflicts = 32
	glucoseMinSamples   = 100
	glucoseBlockR       = 1.4
)

// SetRestartPolicy selects the restart schedule for subsequent Solve calls.
func (s *Solver) SetRestartPolicy(p RestartPolicy) { s.restartPolicy = p }

// SetVarDecay overrides the VSIDS activity decay factor (default 0.95).
// Values outside (0, 1] are ignored. A portfolio diversification knob.
func (s *Solver) SetVarDecay(d float64) {
	if d > 0 && d <= 1 {
		s.varDecay = d
	}
}

// SetDefaultPhase sets the polarity a variable is first decided with:
// positive when pos, negative otherwise (the MiniSat default). Existing
// saved phases are reset too, so calling it mid-run restarts phase saving
// from the new default. A portfolio diversification knob.
func (s *Solver) SetDefaultPhase(pos bool) {
	s.defaultPolarity = !pos // polarity true = negative literal first
	for v := range s.polarity {
		s.polarity[v] = s.defaultPolarity
	}
}

// noteLearntLBD feeds one learnt clause's LBD into the adaptive-restart
// state (Glucose policy only; under Luby the call is a no-op so the default
// schedule stays bit-identical).
func (s *Solver) noteLearntLBD(lbd int32) {
	if s.restartPolicy != RestartGlucose {
		return
	}
	s.lbdTotal += float64(lbd)
	s.lbdCount++
	if s.lbdCount == 1 {
		s.lbdEmaFast = float64(lbd)
	} else {
		s.lbdEmaFast += (float64(lbd) - s.lbdEmaFast) / 32
	}
	t := float64(len(s.trail))
	if s.trailEma == 0 {
		s.trailEma = t
	} else {
		s.trailEma += (t - s.trailEma) / 5000
	}
	if s.lbdCount > glucoseMinSamples && t > glucoseBlockR*s.trailEma {
		// Trail-size blocking: the search looks close to a full assignment;
		// resetting the recent average to the global one defers the restart.
		s.lbdEmaFast = s.lbdTotal / float64(s.lbdCount)
	}
}

// shouldRestart decides whether search returns to level 0 now. Under Luby
// the conflict budget nofConflicts rules; under Glucose the LBD averages do
// (and a firing restart resets the recent average, like Glucose clearing its
// LBD queue, so restarts keep a minimum spacing).
func (s *Solver) shouldRestart(nofConflicts, conflictC int64) bool {
	if s.restartPolicy == RestartGlucose {
		if conflictC < glucoseMinConflicts || s.lbdCount < glucoseMinSamples {
			return false
		}
		if s.lbdEmaFast*glucoseK > s.lbdTotal/float64(s.lbdCount) {
			s.lbdEmaFast = s.lbdTotal / float64(s.lbdCount)
			return true
		}
		return false
	}
	return nofConflicts >= 0 && conflictC >= nofConflicts
}
