package pbo

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/opt"
)

func lit(i int) cnf.Lit { return cnf.FromDIMACS(i) }

func solvers(o opt.Options) []opt.Solver {
	return []opt.Solver{&Linear{Opts: o}, &BinarySearch{Opts: o}}
}

func randomWCNF(rng *rand.Rand, vars, clauses int, partial, weighted bool) *cnf.WCNF {
	w := cnf.NewWCNF(vars)
	for i := 0; i < clauses; i++ {
		width := 1 + rng.Intn(3)
		c := make([]cnf.Lit, 0, width)
		for j := 0; j < width; j++ {
			c = append(c, cnf.NewLit(cnf.Var(rng.Intn(vars)), rng.Intn(2) == 0))
		}
		switch {
		case partial && rng.Intn(4) == 0:
			w.AddHard(c...)
		case weighted:
			w.AddSoft(cnf.Weight(1+rng.Intn(4)), c...)
		default:
			w.AddSoft(1, c...)
		}
	}
	return w
}

func TestPaperExample1(t *testing.T) {
	// φ = (x1)(x2 ∨ ¬x1)(¬x2): the PBO formulation must find cost 1.
	w := cnf.NewWCNF(2)
	w.AddSoft(1, lit(1))
	w.AddSoft(1, lit(2), lit(-1))
	w.AddSoft(1, lit(-2))
	for _, s := range solvers(opt.Options{}) {
		r := s.Solve(context.Background(), w, nil)
		if r.Status != opt.StatusOptimal || r.Cost != 1 {
			t.Fatalf("%s: status %v cost %d, want optimal 1", s.Name(), r.Status, r.Cost)
		}
		if !opt.VerifyModel(w, r) {
			t.Fatalf("%s: bad model", s.Name())
		}
	}
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 50; iter++ {
		partial := iter%2 == 0
		weighted := iter%3 == 0
		w := randomWCNF(rng, 3+rng.Intn(7), 4+rng.Intn(20), partial, weighted)
		want, _, feasible := brute.MinCostWCNF(w)
		for _, s := range solvers(opt.Options{}) {
			r := s.Solve(context.Background(), w, nil)
			if !feasible {
				if r.Status != opt.StatusUnsat {
					t.Fatalf("iter %d %s: status %v, want UNSAT", iter, s.Name(), r.Status)
				}
				continue
			}
			if r.Status != opt.StatusOptimal {
				t.Fatalf("iter %d %s: status %v", iter, s.Name(), r.Status)
			}
			if r.Cost != want {
				t.Fatalf("iter %d %s: cost %d, want %d (weighted=%v)\n%v",
					iter, s.Name(), r.Cost, want, weighted, w.Clauses)
			}
			if !opt.VerifyModel(w, r) {
				t.Fatalf("iter %d %s: model inconsistent", iter, s.Name())
			}
		}
	}
}

func TestEmptySoftClause(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddSoft(3)
	w.AddSoft(1, lit(1))
	for _, s := range solvers(opt.Options{}) {
		r := s.Solve(context.Background(), w, nil)
		if r.Status != opt.StatusOptimal || r.Cost != 3 {
			t.Fatalf("%s: cost %d, want 3", s.Name(), r.Cost)
		}
	}
}

func TestHardUnsat(t *testing.T) {
	w := cnf.NewWCNF(2)
	w.AddHard(lit(1), lit(2))
	w.AddHard(lit(-1), lit(2))
	w.AddHard(lit(1), lit(-2))
	w.AddHard(lit(-1), lit(-2))
	w.AddSoft(1, lit(1))
	for _, s := range solvers(opt.Options{}) {
		if r := s.Solve(context.Background(), w, nil); r.Status != opt.StatusUnsat {
			t.Fatalf("%s: got %v, want UNSAT", s.Name(), r.Status)
		}
	}
}

func TestCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := cnf.NewWCNF(1)
	w.AddSoft(1, lit(1))
	w.AddSoft(1, lit(-1))
	for _, s := range solvers(opt.Options{}) {
		if r := s.Solve(ctx, w, nil); r.Status != opt.StatusUnknown {
			t.Fatalf("%s: got %v, want Unknown", s.Name(), r.Status)
		}
	}
}

func TestBinarySearchFallsBackWeighted(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddSoft(5, lit(1))
	w.AddSoft(2, lit(-1))
	b := &BinarySearch{}
	r := b.Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 2 {
		t.Fatalf("weighted fallback: status %v cost %d, want optimal 2", r.Status, r.Cost)
	}
}

func TestNames(t *testing.T) {
	if (&Linear{}).Name() != "pbo" {
		t.Error("Linear name")
	}
	if (&BinarySearch{}).Name() != "pbo-bin" {
		t.Error("BinarySearch name")
	}
}

func TestBinarySearchFewerIterationsOnWideGap(t *testing.T) {
	// 16 independent contradictory pairs: optimum 16. Binary search should
	// need O(log ub) bound probes, linear needs one per improvement step;
	// both must agree on the optimum.
	w := cnf.NewWCNF(16)
	for v := 1; v <= 16; v++ {
		w.AddSoft(1, lit(v))
		w.AddSoft(1, lit(-v))
	}
	lin := (&Linear{}).Solve(context.Background(), w, nil)
	bin := (&BinarySearch{}).Solve(context.Background(), w, nil)
	if lin.Cost != 16 || bin.Cost != 16 {
		t.Fatalf("costs: linear %d binary %d, want 16", lin.Cost, bin.Cost)
	}
}
