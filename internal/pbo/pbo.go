// Package pbo implements the PBO formulation of MaxSAT evaluated as the
// "pbo" baseline in the DATE 2008 paper (its Section 2.2 and Example 1):
// every clause ωᵢ receives a fresh blocking variable bᵢ, making the formula
// satisfiable, and the optimizer minimizes Σ wᵢ·bᵢ the way minisat+ does —
// by iterated SAT calls that tighten an objective-bounding constraint after
// every model (linear SAT-UNSAT search). A binary-search variant is provided
// as an extension.
//
// The paper observes that this formulation "does not scale for industrial
// problems, since the large number of clauses results in a large number of
// blocking variables, and corresponding larger search space" — the
// experiment harness reproduces exactly that effect against msu4.
package pbo

import (
	"context"
	"time"

	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/opt"
	"repro/internal/pb"
	"repro/internal/sat"
)

// Linear is the minisat+-style linear SAT-UNSAT PBO optimizer.
type Linear struct {
	Opts opt.Options
}

// Name implements opt.Solver.
func (l *Linear) Name() string { return "pbo" }

// Solve implements opt.Solver.
func (l *Linear) Solve(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) (res opt.Result) {
	start := time.Now()
	res = opt.Result{Cost: -1}
	defer func() { res.Elapsed = time.Since(start) }()

	// KeepSofts mode: pbo adds its own blocking variables over the soft
	// clauses and discounts gratuitous blockings against them, so it only
	// wants the hard structure simplified.
	prep, w := opt.MaybePrepKeepSofts(w, l.Opts)
	if prep.HardUnsat() {
		res.Status = opt.StatusUnsat
		return res
	}
	defer prep.Finish(&res)

	s := sat.New()
	s.EnsureVars(w.NumVars)
	// Linear search asserts each tightened objective bound as permanent
	// unguarded clauses: not a conservative extension of the raced formula,
	// so the clause-sharing exchange is not attached.
	l.Opts.ConfigureSolver(ctx, s)

	var (
		blits    []cnf.Lit
		weights  []cnf.Weight
		baseCost cnf.Weight // weight of empty soft clauses, always falsified
		softIdx  []int      // original clause index per blocking variable
	)
	for i, c := range w.Clauses {
		if c.Hard() {
			if !s.AddClauseFrom(c.Clause) {
				res.Status = opt.StatusUnsat
				return res
			}
			continue
		}
		if len(c.Clause) == 0 {
			baseCost += c.Weight
			continue
		}
		var b cnf.Lit
		if len(c.Clause) == 1 {
			// A unit soft (l) needs no fresh blocking variable: ¬l is true
			// exactly when the soft is falsified. (KeepSofts preprocessing
			// leaves multi-literal softs verbatim; those still get fresh
			// blocking variables below.)
			b = c.Clause[0].Neg()
		} else {
			b = cnf.PosLit(s.NewVar())
			s.AddClause(append(c.Clause.Clone(), b)...)
		}
		blits = append(blits, b)
		weights = append(weights, c.Weight)
		softIdx = append(softIdx, i)
	}
	weighted := w.Weighted()

	for {
		if ctx.Err() != nil {
			res.Status = opt.StatusUnknown
			if lb, ok := shared.LB(); ok && (res.Cost < 0 || lb <= res.Cost) {
				res.LowerBound = lb
			}
			return res
		}
		if shared.AdoptClosed(&res) {
			return res
		}
		st := s.Solve()
		res.Observe(s.Stats())
		res.Iterations++
		switch st {
		case sat.Unknown:
			res.Status = opt.StatusUnknown
			return res
		case sat.Unsat:
			res.UnsatCalls++
			if res.Model == nil {
				// Unsatisfiable before any objective bound: hard clauses
				// conflict.
				res.Status = opt.StatusUnsat
				return res
			}
			res.Status = opt.StatusOptimal
			res.LowerBound = res.Cost
			shared.PublishLB(res.Cost)
			return res
		case sat.Sat:
			res.SatCalls++
			model := s.Model()
			// Recompute the true cost from the original soft clauses: the
			// model may set blocking variables (or, under preprocessing,
			// selectors) gratuitously. With preprocessing active the honest
			// cost lives in the original space — restoring the model and
			// rescoring it there discounts every selector whose underlying
			// clause the assignment satisfies anyway, so each bound cuts as
			// deep as it would on the raw formula.
			var cost cnf.Weight
			if prep != nil {
				res.Model = prep.Restore(model)
				cost = prep.Score(res.Model)
			} else {
				cost = baseCost
				for _, ci := range softIdx {
					if !model.Satisfies(w.Clauses[ci].Clause) {
						cost += w.Clauses[ci].Weight
					}
				}
				res.Model = snapshot(model, w.NumVars)
			}
			res.Cost = cost
			shared.PublishUB(res.Cost, res.Model)
			// An externally improved model lets the next bound cut deeper
			// than this round's local model would.
			if ext, extModel, ok := shared.Best(); ok && ext < cost {
				cost = ext
				res.Cost = ext
				res.Model = extModel
			}
			if cost == baseCost {
				// No soft clause beyond the unavoidable empty ones is
				// falsified; nothing to improve.
				res.Status = opt.StatusOptimal
				res.LowerBound = cost
				return res
			}
			// Require strictly better: Σ w·b <= cost - baseCost - 1.
			bound := int64(cost - baseCost - 1)
			if weighted {
				terms := make([]pb.Term, len(blits))
				for i := range blits {
					terms[i] = pb.Term{Coef: int64(weights[i]), Lit: blits[i]}
				}
				c := &pb.LinearLE{Terms: terms, Bound: bound}
				c.Encode(s)
			} else {
				card.AtMost(s, l.Opts.Encoding, blits, int(bound))
			}
		}
	}
}

// BinarySearch is the binary-search variant of the PBO optimizer
// (unweighted instances only; weighted instances fall back to linear
// search). It keeps the bound as a per-call assumption over an incremental
// totalizer, so no constraint ever needs retracting.
type BinarySearch struct {
	Opts opt.Options
}

// Name implements opt.Solver.
func (b *BinarySearch) Name() string { return "pbo-bin" }

// Solve implements opt.Solver.
func (b *BinarySearch) Solve(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) (res opt.Result) {
	if w.Weighted() {
		l := &Linear{Opts: b.Opts}
		r := l.Solve(ctx, w, shared)
		return r
	}
	start := time.Now()
	res = opt.Result{Cost: -1}
	defer func() { res.Elapsed = time.Since(start) }()

	prep, w := opt.MaybePrepKeepSofts(w, b.Opts) // see Linear
	if prep.HardUnsat() {
		res.Status = opt.StatusUnsat
		return res
	}
	defer prep.Finish(&res)

	s := sat.New()
	s.EnsureVars(w.NumVars)
	b.Opts.ConfigureSolver(ctx, s)
	// Binary search keeps its bound as a per-call totalizer assumption, so
	// every added clause is a conservative extension of the formula prefix
	// and sharing it is sound. Its blocking variables are numbered
	// differently from the core family's selectors, so the scope stops at
	// the formula.
	b.Opts.AttachExchange(s, w.NumVars)

	var (
		blits    []cnf.Lit
		baseCost cnf.Weight
		softIdx  []int
	)
	for i, c := range w.Clauses {
		if c.Hard() {
			if !s.AddClauseFrom(c.Clause) {
				res.Status = opt.StatusUnsat
				return res
			}
			continue
		}
		if len(c.Clause) == 0 {
			baseCost += c.Weight
			continue
		}
		var bv cnf.Lit
		if len(c.Clause) == 1 {
			bv = c.Clause[0].Neg() // see Linear: unit softs block themselves
		} else {
			bv = cnf.PosLit(s.NewVar())
			s.AddClause(append(c.Clause.Clone(), bv)...)
		}
		blits = append(blits, bv)
		softIdx = append(softIdx, i)
	}

	// First call without a bound establishes feasibility and an upper bound.
	st := s.Solve()
	res.Iterations++
	res.Observe(s.Stats())
	switch st {
	case sat.Unknown:
		res.Status = opt.StatusUnknown
		return res
	case sat.Unsat:
		res.Status = opt.StatusUnsat
		return res
	}
	res.SatCalls++
	// evaluate maps a model to (witness, cost): under preprocessing the
	// honest cost comes from restoring and rescoring in the original space
	// (see Linear), otherwise from the soft clauses directly.
	evaluate := func(model cnf.Assignment) (cnf.Assignment, cnf.Weight) {
		if prep != nil {
			m := prep.Restore(model)
			return m, prep.Score(m)
		}
		cost := baseCost
		for _, ci := range softIdx {
			if !model.Satisfies(w.Clauses[ci].Clause) {
				cost += w.Clauses[ci].Weight
			}
		}
		return snapshot(model, w.NumVars), cost
	}
	model, cost := evaluate(s.Model())
	ub := cost - baseCost
	res.Cost = cost
	res.Model = model
	shared.PublishUB(res.Cost, res.Model)

	tot := card.NewIncTotalizer(s, blits, len(blits))
	lb := cnf.Weight(-1) // largest bound proved infeasible
	for lb+1 < ub {
		if ctx.Err() != nil {
			res.Status = opt.StatusUnknown
			res.LowerBound = lb + 1 + baseCost
			return res
		}
		if shared.AdoptClosed(&res) {
			return res
		}
		// Adopt an externally improved model: it halves the remaining
		// search interval from above.
		if ext, extModel, ok := shared.Best(); ok && ext < res.Cost {
			ub = ext - baseCost
			res.Cost = ext
			res.Model = extModel
			if lb+1 >= ub {
				break
			}
		}
		mid := (lb + ub) / 2
		assump, ok := tot.Bound(int(mid))
		var st sat.Status
		if ok {
			st = s.Solve(assump)
		} else {
			st = s.Solve()
		}
		res.Iterations++
		res.Observe(s.Stats())
		switch st {
		case sat.Unknown:
			res.Status = opt.StatusUnknown
			res.LowerBound = lb + 1 + baseCost
			return res
		case sat.Unsat:
			res.UnsatCalls++
			lb = mid
			shared.PublishLB(lb + 1 + baseCost)
		case sat.Sat:
			res.SatCalls++
			model, cost := evaluate(s.Model())
			ub = cost - baseCost
			res.Cost = cost
			res.Model = model
			shared.PublishUB(res.Cost, res.Model)
		}
	}
	res.Status = opt.StatusOptimal
	res.LowerBound = res.Cost
	shared.PublishLB(res.Cost)
	return res
}

func snapshot(m cnf.Assignment, n int) cnf.Assignment {
	out := make(cnf.Assignment, n)
	copy(out, m[:n])
	return out
}
