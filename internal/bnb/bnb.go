// Package bnb implements a branch-and-bound MaxSAT solver in the
// architecture of maxsatz (Li, Manyà & Planes), the best-performing solver
// of the 2007 MaxSAT evaluation and the "maxsatz" baseline of the DATE 2008
// paper's Table 1 and Figure 1.
//
// The solver is a DPLL-style depth-first search over variable assignments.
// At every node the falsified soft weight so far ("distance") is extended
// with an underestimation computed by detecting disjoint inconsistent
// subformulas through simulated unit propagation — the lower-bound technique
// of Li, Manyà & Planes (AAAI 2006), reference [17] of the paper. Branching
// uses a MOMS-style weighted-occurrence heuristic, hard clauses are enforced
// by genuine unit propagation, and the initial upper bound comes from a
// majority-polarity greedy assignment.
//
// As in the paper, this algorithm class is effective on small or random
// instances and collapses on large structured (industrial) instances, which
// is precisely the phenomenon Table 1 reports.
package bnb

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/cnf"
	"repro/internal/ls"
	"repro/internal/opt"
	"repro/internal/sat"
)

// BnB is the branch-and-bound MaxSAT optimizer. It supports weighted
// partial MaxSAT.
type BnB struct {
	Opts opt.Options
	// DisableUPLB turns off the unit-propagation lower bound, leaving only
	// the trivial distance bound (ablation; reproduces the gap the [17]
	// technique closed).
	DisableUPLB bool
	// LocalSearchUB, when positive, runs that many WalkSAT flips to seed
	// the initial upper bound before the search, replacing the greedy
	// majority assignment when it finds something better.
	LocalSearchUB int
}

// New returns a maxsatz-style solver with the given options.
func New(o opt.Options) *BnB { return &BnB{Opts: o} }

// Name implements opt.Solver.
func (b *BnB) Name() string { return "maxsatz" }

const (
	vUndef int8 = iota
	vTrue
	vFalse
)

const hardWeight int64 = -1

type bClause struct {
	lits   []cnf.Lit
	weight int64 // hardWeight for hard clauses
}

type searcher struct {
	clauses []bClause
	occPos  [][]int32 // clause indices per variable, positive occurrences
	occNeg  [][]int32
	nv      int

	val     []int8
	trail   []cnf.Var
	satCnt  []int32 // per clause: true literals under current assignment
	freeCnt []int32 // per clause: unassigned literals

	cost int64 // falsified soft weight under current partial assignment
	ub   int64 // best complete cost found so far (exclusive pruning bound)
	best cnf.Assignment

	// Bound exchange (nil-safe): improvements to ub are published, and an
	// externally improved model replaces ub/best at every budget check.
	// Published models pass through the preprocessing stage (when active)
	// so bound witnesses are always original-formula models.
	shared   *opt.Bounds
	prep     *opt.Prep
	baseCost int64

	// Probe scratch (versioned to avoid clearing):
	vval      []int8
	vversion  []uint32
	version   uint32
	roundBase uint32 // version of the current underestimate() round
	vreason   []int32
	consumed  []uint32 // stamped with roundBase when used by an inconsistency

	nodes   int64
	ctx     context.Context
	pulse   *atomic.Int64 // liveness heartbeat (sat.WithProgress)
	aborted bool
	upLB    bool
	hardBad bool // hard clause falsified during the current assign batch
}

// Solve implements opt.Solver.
func (b *BnB) Solve(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) (res opt.Result) {
	start := time.Now()
	res = opt.Result{Cost: -1}
	defer func() { res.Elapsed = time.Since(start) }()

	// KeepSofts mode: the searcher's unit-propagation lower bound and MOMS
	// branching read the soft clauses directly, so only hard structure is
	// simplified; selector indirection would blind both heuristics.
	prep, w := opt.MaybePrepKeepSofts(w, b.Opts)
	if prep.HardUnsat() {
		res.Status = opt.StatusUnsat
		return res
	}
	defer prep.Finish(&res)

	s := &searcher{nv: w.NumVars, upLB: !b.DisableUPLB, ctx: ctx, shared: shared, prep: prep,
		pulse: sat.ProgressFrom(ctx)}
	if s.expired() {
		res.Status = opt.StatusUnknown
		return res
	}
	var baseCost int64
	for _, c := range w.Clauses {
		norm, taut := c.Clause.Clone().Normalize()
		if taut {
			continue
		}
		weight := int64(c.Weight)
		if c.Hard() {
			weight = hardWeight
		}
		if len(norm) == 0 {
			if c.Hard() {
				res.Status = opt.StatusUnsat
				return res
			}
			baseCost += weight
			continue
		}
		s.clauses = append(s.clauses, bClause{lits: norm, weight: weight})
	}
	s.init()
	s.baseCost = baseCost

	// Greedy majority-polarity assignment provides the initial upper bound
	// (inclusive: the search only looks for strictly better assignments).
	greedy := s.majorityAssignment()
	gCost, gHardOK := w.CostOf(greedy)
	s.ub = int64(w.SoftWeightSum()) + 1 // sentinel: any feasible leaf beats it
	if gHardOK {
		s.ub = int64(gCost) - baseCost
		s.best = greedy
	}
	if b.LocalSearchUB > 0 {
		lr := ls.Minimize(ctx, w, ls.Params{
			Seed:     1,
			MaxFlips: b.LocalSearchUB,
			Tries:    3,
		})
		if lr.Cost >= 0 && int64(lr.Cost)-baseCost < s.ub {
			s.ub = int64(lr.Cost) - baseCost
			s.best = lr.Model
		}
	}
	if s.best != nil {
		prep.PublishUB(shared, cnf.Weight(s.ub+baseCost), s.best)
	}
	s.observeShared()

	s.dfs()

	res.Iterations = int(s.nodes)
	switch {
	case s.aborted:
		res.Status = opt.StatusUnknown
		if s.best != nil {
			res.Cost = cnf.Weight(s.ub + baseCost)
			res.Model = s.best
		}
	case s.best == nil:
		res.Status = opt.StatusUnsat
	default:
		res.Status = opt.StatusOptimal
		res.Cost = cnf.Weight(s.ub + baseCost)
		res.LowerBound = res.Cost
		res.Model = s.best
	}
	return res
}

func (s *searcher) init() {
	s.val = make([]int8, s.nv)
	s.occPos = make([][]int32, s.nv)
	s.occNeg = make([][]int32, s.nv)
	s.satCnt = make([]int32, len(s.clauses))
	s.freeCnt = make([]int32, len(s.clauses))
	for ci, c := range s.clauses {
		s.freeCnt[ci] = int32(len(c.lits))
		for _, l := range c.lits {
			v := l.Var()
			if l.Sign() {
				s.occNeg[v] = append(s.occNeg[v], int32(ci))
			} else {
				s.occPos[v] = append(s.occPos[v], int32(ci))
			}
		}
	}
	s.vval = make([]int8, s.nv)
	s.vversion = make([]uint32, s.nv)
	s.vreason = make([]int32, s.nv)
	s.consumed = make([]uint32, len(s.clauses))
}

// majorityAssignment sets every variable to its more frequent polarity.
func (s *searcher) majorityAssignment() cnf.Assignment {
	a := make(cnf.Assignment, s.nv)
	for v := 0; v < s.nv; v++ {
		a[v] = len(s.occPos[v]) >= len(s.occNeg[v])
	}
	return a
}

func (s *searcher) litVal(l cnf.Lit) int8 {
	v := s.val[l.Var()]
	if v == vUndef {
		return vUndef
	}
	if l.Sign() {
		if v == vTrue {
			return vFalse
		}
		return vTrue
	}
	return v
}

// assign sets l true, updating clause counters and the cost. It sets
// s.hardBad when a hard clause becomes falsified.
func (s *searcher) assign(l cnf.Lit) {
	v := l.Var()
	if l.Sign() {
		s.val[v] = vFalse
	} else {
		s.val[v] = vTrue
	}
	s.trail = append(s.trail, v)
	sameOcc, oppOcc := s.occPos[v], s.occNeg[v]
	if l.Sign() {
		sameOcc, oppOcc = oppOcc, sameOcc
	}
	for _, ci := range sameOcc {
		s.satCnt[ci]++
		s.freeCnt[ci]--
	}
	for _, ci := range oppOcc {
		s.freeCnt[ci]--
		if s.freeCnt[ci] == 0 && s.satCnt[ci] == 0 {
			if w := s.clauses[ci].weight; w == hardWeight {
				s.hardBad = true
			} else {
				s.cost += w
			}
		}
	}
}

// undoTo unassigns trail entries beyond mark, reversing assign exactly.
func (s *searcher) undoTo(mark int) {
	for len(s.trail) > mark {
		v := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		neg := s.val[v] == vFalse
		sameOcc, oppOcc := s.occPos[v], s.occNeg[v]
		if neg {
			sameOcc, oppOcc = oppOcc, sameOcc
		}
		for _, ci := range sameOcc {
			s.satCnt[ci]--
			s.freeCnt[ci]++
		}
		for _, ci := range oppOcc {
			if s.freeCnt[ci] == 0 && s.satCnt[ci] == 0 {
				if w := s.clauses[ci].weight; w != hardWeight {
					s.cost -= w
				}
			}
			s.freeCnt[ci]++
		}
		s.val[v] = vUndef
	}
	s.hardBad = false
}

// propagateHard forces unit hard clauses until fixpoint; it reports false on
// a hard conflict.
func (s *searcher) propagateHard() bool {
	for {
		if s.hardBad {
			return false
		}
		progress := false
		for ci, c := range s.clauses {
			if c.weight != hardWeight || s.satCnt[ci] > 0 || s.freeCnt[ci] != 1 {
				continue
			}
			for _, l := range c.lits {
				if s.litVal(l) == vUndef {
					s.assign(l)
					progress = true
					break
				}
			}
			if s.hardBad {
				return false
			}
		}
		if !progress {
			return true
		}
	}
}

func (s *searcher) expired() bool {
	return s.ctx != nil && s.ctx.Err() != nil
}

// observeShared adopts an externally published model when it beats the
// current upper bound, tightening the pruning threshold mid-search.
func (s *searcher) observeShared() {
	ext, ok := s.shared.UB()
	if !ok || int64(ext)-s.baseCost >= s.ub {
		return
	}
	if cost, model, ok := s.shared.Best(); ok && int64(cost)-s.baseCost < s.ub {
		s.ub = int64(cost) - s.baseCost
		s.best = model
	}
}

// dfs explores the subtree under the current partial assignment.
func (s *searcher) dfs() {
	s.nodes++
	if s.nodes&63 == 0 {
		if s.pulse != nil {
			s.pulse.Add(1)
		}
		if s.expired() {
			s.aborted = true
			return
		}
		s.observeShared()
	}
	if s.cost >= s.ub {
		return
	}
	mark := len(s.trail)
	if !s.propagateHard() {
		s.undoTo(mark)
		return
	}
	if s.cost >= s.ub {
		s.undoTo(mark)
		return
	}
	if s.upLB && s.cost+s.underestimate() >= s.ub {
		s.undoTo(mark)
		return
	}
	v := s.pickVar()
	if v == cnf.VarUndef {
		// Complete assignment: record the improvement.
		s.ub = s.cost
		s.best = make(cnf.Assignment, s.nv)
		for i := 0; i < s.nv; i++ {
			// Unassigned isolated variables default to false.
			s.best[i] = s.val[i] == vTrue
		}
		s.prep.PublishUB(s.shared, cnf.Weight(s.ub+s.baseCost), s.best)
		s.undoTo(mark)
		return
	}
	first := cnf.PosLit(v)
	if len(s.occNeg[v]) > len(s.occPos[v]) {
		first = cnf.NegLit(v)
	}
	for _, l := range []cnf.Lit{first, first.Neg()} {
		m2 := len(s.trail)
		s.assign(l)
		if !s.hardBad {
			s.dfs()
		}
		s.undoTo(m2)
		if s.aborted {
			break
		}
	}
	s.undoTo(mark)
}

// pickVar returns the unassigned variable with the highest MOMS-style
// score over active clauses, or VarUndef when every active clause is
// decided. Variables in no active clause are skipped: their value cannot
// change the cost.
func (s *searcher) pickVar() cnf.Var {
	bestVar := cnf.VarUndef
	bestScore := int64(-1)
	for v := 0; v < s.nv; v++ {
		if s.val[v] != vUndef {
			continue
		}
		score := int64(0)
		for _, ci := range s.occPos[v] {
			score += s.clauseScore(ci)
		}
		for _, ci := range s.occNeg[v] {
			score += s.clauseScore(ci)
		}
		if score > bestScore && score > 0 {
			bestScore = score
			bestVar = cnf.Var(v)
		}
	}
	return bestVar
}

// clauseScore weights active short clauses higher (unit clauses dominate).
func (s *searcher) clauseScore(ci int32) int64 {
	if s.satCnt[ci] > 0 || s.freeCnt[ci] == 0 {
		return 0
	}
	switch s.freeCnt[ci] {
	case 1:
		return 64
	case 2:
		return 8
	default:
		return 1
	}
}

// underestimate lower-bounds the additional soft weight every extension of
// the current assignment must pay, by repeatedly finding disjoint
// inconsistent subformulas via simulated unit propagation.
func (s *searcher) underestimate() int64 {
	var total int64
	s.version++
	s.roundBase = s.version // consumption tags for this round
	for {
		set, minW := s.upProbe()
		if set == nil {
			return total
		}
		for _, ci := range set {
			s.consumed[ci] = s.roundBase
		}
		total += minW
		if s.cost+total >= s.ub {
			return total
		}
	}
}

// upProbe simulates unit propagation over the active, non-consumed clauses.
// On deriving a conflict it returns the clause indices of the inconsistent
// subformula and the minimum soft weight within it; otherwise it returns
// (nil, 0). Virtual assignments are version-stamped so each probe starts
// clean without clearing.
func (s *searcher) upProbe() ([]int32, int64) {
	s.version++
	probeVersion := s.version
	for {
		progress := false
		for ci, c := range s.clauses {
			if s.consumed[ci] == s.roundBase || s.satCnt[ci] > 0 {
				continue
			}
			free := cnf.LitUndef
			nFree := 0
			satisfied := false
			for _, l := range c.lits {
				switch s.probeVal(l, probeVersion) {
				case vTrue:
					satisfied = true
				case vUndef:
					nFree++
					free = l
				}
				if satisfied || nFree > 1 {
					break
				}
			}
			if satisfied || nFree > 1 {
				continue
			}
			if nFree == 0 {
				if s.freeCnt[ci] == 0 {
					// Falsified by the real assignment: already in cost.
					continue
				}
				return s.collectConflict(int32(ci), probeVersion)
			}
			// Unit: virtually assign.
			v := free.Var()
			s.vversion[v] = probeVersion
			if free.Sign() {
				s.vval[v] = vFalse
			} else {
				s.vval[v] = vTrue
			}
			s.vreason[v] = int32(ci)
			progress = true
		}
		if !progress {
			return nil, 0
		}
	}
}

func (s *searcher) probeVal(l cnf.Lit, probeVersion uint32) int8 {
	if rv := s.litVal(l); rv != vUndef {
		return rv
	}
	v := l.Var()
	if s.vversion[v] != probeVersion {
		return vUndef
	}
	val := s.vval[v]
	if l.Sign() {
		if val == vTrue {
			return vFalse
		}
		return vTrue
	}
	return val
}

// collectConflict walks reasons from the conflicting clause, gathering the
// inconsistent subformula and its minimum soft weight.
func (s *searcher) collectConflict(conflict int32, probeVersion uint32) ([]int32, int64) {
	set := []int32{conflict}
	seenClause := map[int32]bool{conflict: true}
	minW := int64(1) << 60
	if w := s.clauses[conflict].weight; w != hardWeight && w < minW {
		minW = w
	}
	queue := []int32{conflict}
	for len(queue) > 0 {
		ci := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, l := range s.clauses[ci].lits {
			v := l.Var()
			if s.val[v] != vUndef || s.vversion[v] != probeVersion {
				continue
			}
			r := s.vreason[v]
			if !seenClause[r] {
				seenClause[r] = true
				set = append(set, r)
				queue = append(queue, r)
				if w := s.clauses[r].weight; w != hardWeight && w < minW {
					minW = w
				}
			}
		}
	}
	if minW == int64(1)<<60 {
		// All-hard inconsistency: the real propagation will discover it;
		// claim no soft weight (the subformula may not cost anything).
		minW = 0
	}
	return set, minW
}
