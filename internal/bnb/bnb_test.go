package bnb

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/opt"
)

func lit(i int) cnf.Lit { return cnf.FromDIMACS(i) }

func TestPaperExample2(t *testing.T) {
	// The §3.3 formula: MaxSAT solution 6 of 8 (cost 2).
	f := cnf.NewFormula(4)
	f.AddClause(lit(1))
	f.AddClause(lit(-1), lit(-2))
	f.AddClause(lit(2))
	f.AddClause(lit(-1), lit(-3))
	f.AddClause(lit(3))
	f.AddClause(lit(-2), lit(-3))
	f.AddClause(lit(1), lit(-4))
	f.AddClause(lit(-1), lit(4))
	w := cnf.FromFormula(f)
	r := New(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 2 {
		t.Fatalf("status %v cost %d, want optimal 2", r.Status, r.Cost)
	}
	if !opt.VerifyModel(w, r) {
		t.Fatal("model inconsistent")
	}
}

func randomWCNF(rng *rand.Rand, vars, clauses int, partial, weighted bool) *cnf.WCNF {
	w := cnf.NewWCNF(vars)
	for i := 0; i < clauses; i++ {
		width := 1 + rng.Intn(3)
		c := make([]cnf.Lit, 0, width)
		for j := 0; j < width; j++ {
			c = append(c, cnf.NewLit(cnf.Var(rng.Intn(vars)), rng.Intn(2) == 0))
		}
		switch {
		case partial && rng.Intn(4) == 0:
			w.AddHard(c...)
		case weighted:
			w.AddSoft(cnf.Weight(1+rng.Intn(4)), c...)
		default:
			w.AddSoft(1, c...)
		}
	}
	return w
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for iter := 0; iter < 80; iter++ {
		partial := iter%2 == 0
		weighted := iter%3 == 0
		w := randomWCNF(rng, 3+rng.Intn(8), 4+rng.Intn(24), partial, weighted)
		want, _, feasible := brute.MinCostWCNF(w)
		for _, solver := range []*BnB{New(opt.Options{}), {DisableUPLB: true}} {
			r := solver.Solve(context.Background(), w, nil)
			if !feasible {
				if r.Status != opt.StatusUnsat {
					t.Fatalf("iter %d (uplb=%v): status %v, want UNSAT",
						iter, !solver.DisableUPLB, r.Status)
				}
				continue
			}
			if r.Status != opt.StatusOptimal {
				t.Fatalf("iter %d (uplb=%v): status %v", iter, !solver.DisableUPLB, r.Status)
			}
			if r.Cost != want {
				t.Fatalf("iter %d (uplb=%v): cost %d, want %d\n%v",
					iter, !solver.DisableUPLB, r.Cost, want, w.Clauses)
			}
			if !opt.VerifyModel(w, r) {
				t.Fatalf("iter %d: model inconsistent", iter)
			}
		}
	}
}

func TestUPLBPrunesMore(t *testing.T) {
	// On contradictory-unit-rich instances, the UP lower bound should
	// explore no more nodes than the trivial bound.
	w := cnf.NewWCNF(8)
	for v := 1; v <= 8; v++ {
		w.AddSoft(1, lit(v))
		w.AddSoft(1, lit(-v))
	}
	with := New(opt.Options{}).Solve(context.Background(), w, nil)
	without := (&BnB{DisableUPLB: true}).Solve(context.Background(), w, nil)
	if with.Cost != 8 || without.Cost != 8 {
		t.Fatalf("costs %d/%d, want 8", with.Cost, without.Cost)
	}
	if with.Iterations > without.Iterations {
		t.Fatalf("UP LB explored more nodes (%d) than trivial bound (%d)",
			with.Iterations, without.Iterations)
	}
}

func TestHardUnsat(t *testing.T) {
	w := cnf.NewWCNF(2)
	w.AddHard(lit(1), lit(2))
	w.AddHard(lit(-1), lit(2))
	w.AddHard(lit(1), lit(-2))
	w.AddHard(lit(-1), lit(-2))
	w.AddSoft(1, lit(1))
	if r := New(opt.Options{}).Solve(context.Background(), w, nil); r.Status != opt.StatusUnsat {
		t.Fatalf("got %v, want UNSAT", r.Status)
	}
}

func TestEmptyHardClauseUnsat(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddHard()
	w.AddSoft(1, lit(1))
	if r := New(opt.Options{}).Solve(context.Background(), w, nil); r.Status != opt.StatusUnsat {
		t.Fatalf("got %v, want UNSAT", r.Status)
	}
}

func TestEmptySoftClauses(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddSoft(2)
	w.AddSoft(1, lit(1))
	r := New(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 2 {
		t.Fatalf("status %v cost %d, want optimal 2", r.Status, r.Cost)
	}
}

func TestSatisfiableCostZero(t *testing.T) {
	w := cnf.NewWCNF(3)
	w.AddSoft(1, lit(1), lit(2))
	w.AddSoft(1, lit(-1), lit(3))
	r := New(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 0 {
		t.Fatalf("status %v cost %d, want optimal 0", r.Status, r.Cost)
	}
}

func TestTautologyIgnored(t *testing.T) {
	w := cnf.NewWCNF(2)
	w.AddSoft(1, lit(1), lit(-1))
	w.AddSoft(1, lit(2))
	r := New(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Cost != 0 {
		t.Fatalf("cost %d, want 0 (tautology always satisfied)", r.Cost)
	}
}

func TestDeadlineAbort(t *testing.T) {
	// A hard random instance with an immediate deadline must return Unknown.
	rng := rand.New(rand.NewSource(9))
	w := randomWCNF(rng, 40, 300, false, false)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	r := New(opt.Options{}).Solve(ctx, w, nil)
	if r.Status == opt.StatusUnsat {
		t.Fatal("plain MaxSAT can never be UNSAT")
	}
	// Either it finished very fast (Optimal) or aborted (Unknown): both are
	// acceptable; what matters is that it returns promptly.
}

func TestName(t *testing.T) {
	if New(opt.Options{}).Name() != "maxsatz" {
		t.Fatal("name")
	}
}

func TestLocalSearchUBCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for iter := 0; iter < 25; iter++ {
		w := randomWCNF(rng, 3+rng.Intn(7), 4+rng.Intn(20), iter%2 == 0, false)
		want, _, feasible := brute.MinCostWCNF(w)
		solver := &BnB{LocalSearchUB: 500}
		r := solver.Solve(context.Background(), w, nil)
		if !feasible {
			if r.Status != opt.StatusUnsat {
				t.Fatalf("iter %d: status %v, want UNSAT", iter, r.Status)
			}
			continue
		}
		if r.Status != opt.StatusOptimal || r.Cost != want {
			t.Fatalf("iter %d: status %v cost %d, want optimal %d", iter, r.Status, r.Cost, want)
		}
		if !opt.VerifyModel(w, r) {
			t.Fatalf("iter %d: model inconsistent", iter)
		}
	}
}

func TestLocalSearchUBReducesNodes(t *testing.T) {
	// With a strong initial UB the search should not explore more nodes.
	rng := rand.New(rand.NewSource(607))
	w := randomWCNF(rng, 14, 80, false, false)
	plain := New(opt.Options{}).Solve(context.Background(), w, nil)
	seeded := (&BnB{LocalSearchUB: 5000}).Solve(context.Background(), w, nil)
	if plain.Cost != seeded.Cost {
		t.Fatalf("costs differ: %d vs %d", plain.Cost, seeded.Cost)
	}
	if seeded.Iterations > plain.Iterations*2 {
		t.Fatalf("seeded UB explored far more nodes: %d vs %d",
			seeded.Iterations, plain.Iterations)
	}
}
