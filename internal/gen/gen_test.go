package gen

import (
	"context"
	"testing"
	"time"

	"repro/internal/circuit"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/sat"
)

// solveHards checks satisfiability of an instance's clauses with all soft
// clauses included (the "is it really unsatisfiable" check).
func solveAll(t *testing.T, in Instance) sat.Status {
	t.Helper()
	s := sat.New()
	s.EnsureVars(in.W.NumVars)
	for _, c := range in.W.Clauses {
		s.AddClauseFrom(c.Clause)
	}
	s.SetBudget(sat.Budget{Deadline: time.Now().Add(20 * time.Second)})
	return s.Solve()
}

func TestPigeonholeUnsatWithKnownCost(t *testing.T) {
	in := Pigeonhole(4)
	if st := solveAll(t, in); st != sat.Unsat {
		t.Fatalf("PHP must be unsat, got %v", st)
	}
	r := core.NewMSU4V2(opt.Options{}).Solve(context.Background(), in.W, nil)
	if r.Cost != in.KnownCost {
		t.Fatalf("cost %d, want %d", r.Cost, in.KnownCost)
	}
}

func TestEquivMiterUnsat(t *testing.T) {
	for _, bits := range []int{3, 4, 6} {
		in := EquivMiter(bits)
		if st := solveAll(t, in); st != sat.Unsat {
			t.Fatalf("ec-adder-%d: got %v, want Unsat", bits, st)
		}
		r := core.NewMSU4V2(opt.Options{}).Solve(context.Background(), in.W, nil)
		if r.Cost != 1 {
			t.Fatalf("ec-adder-%d: cost %d, want 1", bits, r.Cost)
		}
	}
}

func TestEquivMiterMultiplierUnsat(t *testing.T) {
	in := EquivMiterMultiplier(2)
	if st := solveAll(t, in); st != sat.Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
}

func TestBMCInstances(t *testing.T) {
	in := BMCCounter(3, 5)
	if st := solveAll(t, in); st != sat.Unsat {
		t.Fatalf("bmc-counter below depth must be unsat, got %v", st)
	}
	if in.KnownCost != 1 {
		t.Fatalf("known cost %d", in.KnownCost)
	}
	sat8 := BMCCounter(3, 8)
	if st := solveAll(t, sat8); st != sat.Sat {
		t.Fatalf("bmc-counter at depth 8 must be sat, got %v", st)
	}
	if sat8.KnownCost != 0 {
		t.Fatalf("known cost %d, want 0", sat8.KnownCost)
	}
	inS := BMCShift(6, 5)
	if st := solveAll(t, inS); st != sat.Unsat {
		t.Fatalf("bmc-shift below depth must be unsat, got %v", st)
	}
}

// TestBMCFramesPrefixStable pins the property BMCCounterFrames relies on:
// the Tseitin CNF of Unroll(k-1) is a strict prefix of Unroll(k)'s, so the
// per-frame clause diff reassembles every depth's formula exactly — the
// contract that lets a session accumulate frames as deltas. It also checks
// the forced optimum at every depth.
func TestBMCFramesPrefixStable(t *testing.T) {
	const n, maxK = 3, 9
	frames := BMCCounterFrames(n, maxK)
	acc := cnf.NewWCNF(0)
	for k := 1; k <= maxK; k++ {
		fr := frames[k-1]
		for _, c := range fr.Hards {
			acc.AddHard(c...)
		}
		acc.AddSoft(1, fr.Prop)

		u := circuit.Counter(n).Unroll(k)
		f, lits := circuitCNF(u)
		if fr.Prop != lits[u.Outputs[k-1]] {
			t.Fatalf("k=%d: property literal drifted across depths", k)
		}
		var hards []cnf.Clause
		for _, c := range acc.Clauses {
			if c.Hard() {
				hards = append(hards, c.Clause)
			}
		}
		if len(hards) != len(f.Clauses) {
			t.Fatalf("k=%d: accumulated %d hard clauses, Unroll(k) has %d",
				k, len(hards), len(f.Clauses))
		}
		for i := range hards {
			if len(hards[i]) != len(f.Clauses[i]) {
				t.Fatalf("k=%d: clause %d differs in width", k, i)
			}
			for j := range hards[i] {
				if hards[i][j] != f.Clauses[i][j] {
					t.Fatalf("k=%d: clause %d differs at literal %d", k, i, j)
				}
			}
		}

		r := core.NewMSU3(opt.Options{}).Solve(context.Background(), acc, nil)
		want := cnf.Weight(k - k/(1<<n))
		if r.Status != opt.StatusOptimal || r.Cost != want {
			t.Fatalf("k=%d: status %v cost %d, want OPTIMAL %d", k, r.Status, r.Cost, want)
		}
	}
}

// TestBMCShiftFramesOptimum checks the nondeterministic family: free
// shift-in inputs let the solver satisfy every frame from index w on, so
// the depth-k optimum is min(k, w).
func TestBMCShiftFramesOptimum(t *testing.T) {
	const w, maxK = 3, 6
	frames := BMCShiftFrames(w, maxK)
	acc := cnf.NewWCNF(0)
	for k := 1; k <= maxK; k++ {
		fr := frames[k-1]
		for _, c := range fr.Hards {
			acc.AddHard(c...)
		}
		acc.AddSoft(1, fr.Prop)
		r := core.NewMSU3(opt.Options{}).Solve(context.Background(), acc, nil)
		want := cnf.Weight(min(k, w))
		if r.Status != opt.StatusOptimal || r.Cost != want {
			t.Fatalf("k=%d: status %v cost %d, want OPTIMAL %d", k, r.Status, r.Cost, want)
		}
	}
}

func TestATPGRedundantUnsat(t *testing.T) {
	for _, bits := range []int{3, 4, 6} {
		in := ATPGRedundant(bits)
		if st := solveAll(t, in); st != sat.Unsat {
			t.Fatalf("atpg-red-%d: got %v, want Unsat (fault must be undetectable)", bits, st)
		}
	}
}

func TestRandomKSATDeterministic(t *testing.T) {
	a := RandomKSAT(7, 20, 3, 6.0)
	b := RandomKSAT(7, 20, 3, 6.0)
	if a.W.NumClauses() != b.W.NumClauses() {
		t.Fatal("same seed, different instance")
	}
	for i := range a.W.Clauses {
		for j := range a.W.Clauses[i].Clause {
			if a.W.Clauses[i].Clause[j] != b.W.Clauses[i].Clause[j] {
				t.Fatal("same seed, different clause content")
			}
		}
	}
	if st := solveAll(t, a); st != sat.Unsat {
		t.Fatalf("ratio-6 3-SAT should be unsat, got %v", st)
	}
}

func TestColoringHasHardAndSoft(t *testing.T) {
	in := Coloring(1, 8, 20, 3)
	if in.W.NumHard() == 0 || in.W.NumSoft() == 0 {
		t.Fatal("coloring must be partial MaxSAT")
	}
	r := core.NewMSU3(opt.Options{}).Solve(context.Background(), in.W, nil)
	if r.Status != opt.StatusOptimal {
		t.Fatalf("status %v", r.Status)
	}
	if r.Cost < 1 {
		t.Fatalf("over-constrained colouring should have positive cost, got %d", r.Cost)
	}
}

func TestDesignDebugInstance(t *testing.T) {
	di := DesignDebugDetailed(3, circuit.RippleAdder(3), 4)
	w := di.W
	if w.NumHard() == 0 || w.NumSoft() == 0 {
		t.Fatal("debug instance must be partial MaxSAT")
	}
	// The instance must be unsatisfiable with every guard on (the fault is
	// observable) …
	s := sat.New()
	s.EnsureVars(w.NumVars)
	for _, c := range w.Clauses {
		s.AddClauseFrom(c.Clause)
	}
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("all-guards-on must be unsat, got %v", st)
	}
	// … and the optimum must be exactly 1: suspending the faulty gate
	// explains everything.
	r := core.NewMSU4V2(opt.Options{}).Solve(context.Background(), w, nil)
	if r.Status != opt.StatusOptimal || r.Cost != 1 {
		t.Fatalf("diagnosis: status %v cost %d, want optimal 1", r.Status, r.Cost)
	}
	// The model must point at a plausible suspect: find the falsified soft
	// clause and check the faulty gate is among the suspects whose
	// suspension repairs the behaviour. (Multiple minimal diagnoses can
	// exist; at minimum the model must suspend exactly one gate.)
	suspended := 0
	softIdx := 0
	for _, c := range w.Clauses {
		if c.Hard() {
			continue
		}
		if !r.Model.Satisfies(c.Clause) {
			suspended++
		}
		softIdx++
	}
	if suspended != 1 {
		t.Fatalf("model suspends %d gates, want 1", suspended)
	}
}

func TestSuiteComposition(t *testing.T) {
	insts := Suite(42)
	if len(insts) < 40 {
		t.Fatalf("suite has %d instances, want a substantial set", len(insts))
	}
	fams := Families(insts)
	wantFams := map[string]bool{
		"pigeonhole": false, "random": false, "equivalence": false,
		"bmc": false, "atpg": false, "coloring": false,
	}
	for _, f := range fams {
		if _, ok := wantFams[f]; ok {
			wantFams[f] = true
		}
	}
	for f, seen := range wantFams {
		if !seen {
			t.Fatalf("family %q missing from suite", f)
		}
	}
	names := map[string]bool{}
	for _, in := range insts {
		if names[in.Name] {
			t.Fatalf("duplicate instance name %q", in.Name)
		}
		names[in.Name] = true
		if in.W.NumClauses() == 0 {
			t.Fatalf("instance %q is empty", in.Name)
		}
	}
}

func TestDebugSuiteHas29(t *testing.T) {
	insts := DebugSuite(7)
	if len(insts) != 29 {
		t.Fatalf("debug suite has %d instances, want 29 (Table 2)", len(insts))
	}
	for _, in := range insts {
		if in.Family != "debug" {
			t.Fatalf("instance %q family %q", in.Name, in.Family)
		}
	}
}

func TestSuiteDeterministic(t *testing.T) {
	a := Suite(42)
	b := Suite(42)
	if len(a) != len(b) {
		t.Fatal("suite size differs across calls")
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].W.NumClauses() != b[i].W.NumClauses() {
			t.Fatalf("instance %d differs across calls", i)
		}
	}
}

func TestKnownCostsAreConsistent(t *testing.T) {
	// Spot-check: for instances with a known optimum, one solver must agree.
	for _, in := range []Instance{Pigeonhole(3), EquivMiter(3), BMCCounter(3, 4), ATPGRedundant(3)} {
		r := core.NewMSU4V1(opt.Options{}).Solve(context.Background(), in.W, nil)
		if r.Status != opt.StatusOptimal {
			t.Fatalf("%s: status %v", in.Name, r.Status)
		}
		if in.KnownCost >= 0 && r.Cost != in.KnownCost {
			t.Fatalf("%s: cost %d, want %d", in.Name, r.Cost, in.KnownCost)
		}
	}
}

func TestDesignDebugPlainInstance(t *testing.T) {
	in := DesignDebugPlain(5, circuit.RippleAdder(3), 3)
	if in.W.NumHard() != 0 || in.W.Weighted() {
		t.Fatal("plain debug instance must be unweighted pure MaxSAT")
	}
	if st := solveAll(t, in); st != sat.Unsat {
		t.Fatalf("plain debug instance must be unsat, got %v", st)
	}
	r := core.NewMSU4V2(opt.Options{}).Solve(context.Background(), in.W, nil)
	if r.Status != opt.StatusOptimal || r.Cost < 1 {
		t.Fatalf("status %v cost %d, want optimal >=1", r.Status, r.Cost)
	}
}

func TestColoringWeighted(t *testing.T) {
	in := ColoringWeighted(3, 8, 20, 3, 5)
	if !in.W.Weighted() {
		t.Fatal("weighted coloring must carry non-unit weights")
	}
	if in.W.NumHard() == 0 {
		t.Fatal("hard clauses missing")
	}
	a := core.NewWMSU4(opt.Options{}).Solve(context.Background(), in.W, nil)
	b := core.NewWMSU1(opt.Options{}).Solve(context.Background(), in.W, nil)
	if a.Status != opt.StatusOptimal || b.Status != opt.StatusOptimal {
		t.Fatalf("statuses %v/%v", a.Status, b.Status)
	}
	if a.Cost != b.Cost {
		t.Fatalf("wmsu4 %d vs wmsu1 %d", a.Cost, b.Cost)
	}
}

func TestEquivMiterKSUnsat(t *testing.T) {
	in := EquivMiterKS(4)
	if st := solveAll(t, in); st != sat.Unsat {
		t.Fatalf("got %v, want Unsat", st)
	}
	r := core.NewMSU4V2(opt.Options{}).Solve(context.Background(), in.W, nil)
	if r.Cost != 1 {
		t.Fatalf("cost %d, want 1", r.Cost)
	}
}
