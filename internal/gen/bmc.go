package gen

import (
	"repro/internal/circuit"
	"repro/internal/cnf"
)

// BMCFrame is one unrolling step of a bounded-model-checking workload in
// delta form: the hard clauses this frame adds on top of the previous
// depth's formula (its slice of the transition relation and property cone),
// and the frame's property literal. Pushing frame k's Hards plus a
// unit-weight soft clause {Prop} onto a session whose accumulation holds
// frames 0..k-1 yields exactly the depth-(k+1) BMC MaxSAT instance: the
// optimum counts the frames in the window whose property assertion must be
// dropped.
type BMCFrame struct {
	Vars  int          // variables in use through this frame
	Hards []cnf.Clause // clauses this frame adds
	Prop  cnf.Lit      // true iff the property holds in this frame
}

// unrollFrames slices a sequential circuit's unrolling into per-frame
// deltas by diffing consecutive depths. Unrolling and Tseitin conversion
// are deterministic and frame-major, so Unroll(k-1)'s clause list is a
// strict prefix of Unroll(k)'s and the per-frame delta is exactly the
// suffix (TestBMCFramesPrefixStable pins this property down).
func unrollFrames(s *circuit.Sequential, maxK int) []BMCFrame {
	frames := make([]BMCFrame, 0, maxK)
	prev := 0
	for k := 1; k <= maxK; k++ {
		u := s.Unroll(k)
		f, lits := circuitCNF(u)
		fr := BMCFrame{Vars: f.NumVars}
		for _, c := range f.Clauses[prev:] {
			fr.Hards = append(fr.Hards, c.Clone())
		}
		fr.Prop = lits[u.Outputs[k-1]]
		frames = append(frames, fr)
		prev = len(f.Clauses)
	}
	return frames
}

// BMCCounterFrames returns the first maxK frames of the n-bit counter BMC
// problem (property: counter == all-ones, sampled once per frame). The
// counter has no free inputs, so every property value is forced and the
// depth-k optimum is exactly k - floor(k/2^n).
func BMCCounterFrames(n, maxK int) []BMCFrame {
	return unrollFrames(circuit.Counter(n), maxK)
}

// BMCShiftFrames returns the first maxK frames of the w-bit shift-register
// BMC problem. Ones can be shifted in from the start, making the all-ones
// property satisfiable in every frame from index w on simultaneously: the
// depth-k optimum is min(k, w).
func BMCShiftFrames(w, maxK int) []BMCFrame {
	return unrollFrames(circuit.ShiftRegisterEqual(w), maxK)
}
