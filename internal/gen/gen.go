// Package gen synthesizes the benchmark families of the DATE 2008 paper's
// evaluation. The paper ran on 691 unsatisfiable industrial instances from
// the SAT competition archives and SATLIB — "model checking, equivalence
// checking and test-pattern generation" — plus 29 design-debugging MaxSAT
// instances (Safarpour et al.). Those archives are fixed artifacts we do not
// redistribute; this package generates structurally analogous, seeded,
// laptop-scale families from the same application domains (see DESIGN.md §3,
// substitution 2):
//
//   - equivalence-checking miters between structurally different but
//     functionally equal arithmetic circuits;
//   - bounded-model-checking unrollings with unreachable properties;
//   - test-pattern-generation instances for undetectable faults;
//   - pigeonhole and fixed-seed over-constrained random k-SAT as the
//     classic combinatorial fillers present in SATLIB;
//   - over-constrained graph colouring, giving instances whose MaxSAT
//     optimum is large (the paper's routing/scheduling-like tail);
//   - design-debugging WCNF instances: a golden circuit, an injected gate
//     fault, observed I/O vectors as hard clauses and per-gate correctness
//     guards as soft clauses.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/card"
	"repro/internal/circuit"
	"repro/internal/cnf"
)

// Instance is one benchmark instance.
type Instance struct {
	Name   string
	Family string
	W      *cnf.WCNF
	// KnownCost is the externally known MaxSAT optimum (minimum falsified
	// soft weight), or -1 when not known analytically. The harness uses it
	// to cross-validate solver agreement.
	KnownCost cnf.Weight
}

// Pigeonhole returns PHP(p+1, p) as a plain MaxSAT instance. The CNF is
// unsatisfiable; dropping a single "pigeon placed" clause makes it
// satisfiable, so the MaxSAT cost is exactly 1.
func Pigeonhole(p int) Instance {
	f := cnf.NewFormula(0)
	pigeons, holes := p+1, p
	v := func(pg, h int) cnf.Lit { return cnf.PosLit(cnf.Var(pg*holes + h)) }
	for pg := 0; pg < pigeons; pg++ {
		c := make([]cnf.Lit, holes)
		for h := 0; h < holes; h++ {
			c[h] = v(pg, h)
		}
		f.AddClause(c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				f.AddClause(v(p1, h).Neg(), v(p2, h).Neg())
			}
		}
	}
	return Instance{
		Name:      fmt.Sprintf("php-%d", p),
		Family:    "pigeonhole",
		W:         cnf.FromFormula(f),
		KnownCost: 1,
	}
}

// RandomKSAT returns a fixed-seed random k-SAT instance at the given
// clause/variable ratio. At ratios well above the satisfiability threshold
// the instance is unsatisfiable with overwhelming probability and has a
// non-trivial MaxSAT optimum — the SATLIB-style random filler family.
func RandomKSAT(seed int64, vars, k int, ratio float64) Instance {
	rng := rand.New(rand.NewSource(seed))
	f := cnf.NewFormula(vars)
	clauses := int(ratio * float64(vars))
	for i := 0; i < clauses; i++ {
		c := make([]cnf.Lit, 0, k)
		used := map[int]bool{}
		for len(c) < k {
			v := rng.Intn(vars)
			if used[v] {
				continue
			}
			used[v] = true
			c = append(c, cnf.NewLit(cnf.Var(v), rng.Intn(2) == 0))
		}
		f.AddClause(c...)
	}
	return Instance{
		Name:      fmt.Sprintf("rand%d-v%d-r%.1f-s%d", k, vars, ratio, seed),
		Family:    "random",
		W:         cnf.FromFormula(f),
		KnownCost: -1,
	}
}

// circuitCNF encodes a circuit into a fresh formula and returns the formula
// plus the literal of each gate.
func circuitCNF(c *circuit.Circuit) (*cnf.Formula, []cnf.Lit) {
	f := cnf.NewFormula(0)
	d := card.NewFormulaDest(f)
	lits := circuit.Tseitin(d, c)
	return f, lits
}

// EquivMiter returns an equivalence-checking miter between two functionally
// equivalent adder implementations, with the disagreement output asserted:
// an unsatisfiable CNF whose MaxSAT cost is 1 (retracting the assertion
// satisfies the rest).
func EquivMiter(bits int) Instance {
	m := circuit.Miter(circuit.RippleAdder(bits), circuit.CarrySelectAdder(bits))
	f, lits := circuitCNF(m)
	f.AddClause(lits[m.Outputs[0]])
	return Instance{
		Name:      fmt.Sprintf("ec-adder-%d", bits),
		Family:    "equivalence",
		W:         cnf.FromFormula(f),
		KnownCost: 1,
	}
}

// EquivMiterMultiplier is the multiplier self-equivalence variant, the
// denser and harder instance class of equivalence checking.
func EquivMiterMultiplier(bits int) Instance {
	a := circuit.Multiplier(bits)
	b := circuit.Multiplier(bits)
	m := circuit.Miter(a, b)
	f, lits := circuitCNF(m)
	f.AddClause(lits[m.Outputs[0]])
	return Instance{
		Name:      fmt.Sprintf("ec-mult-%d", bits),
		Family:    "equivalence",
		W:         cnf.FromFormula(f),
		KnownCost: 1,
	}
}

// BMCCounter returns the k-frame unrolling of an n-bit counter with the
// "counter reaches all-ones" property asserted within the window. For
// k < 2^n the property is unreachable and the CNF is unsatisfiable with
// MaxSAT cost 1.
func BMCCounter(n, k int) Instance {
	u := circuit.Counter(n).Unroll(k)
	f, lits := circuitCNF(u)
	prop := make([]cnf.Lit, 0, len(u.Outputs))
	for _, o := range u.Outputs {
		prop = append(prop, lits[o])
	}
	f.AddClause(prop...)
	known := cnf.Weight(1)
	if k >= 1<<n {
		known = 0
	}
	return Instance{
		Name:      fmt.Sprintf("bmc-counter-%d-k%d", n, k),
		Family:    "bmc",
		W:         cnf.FromFormula(f),
		KnownCost: known,
	}
}

// BMCShift returns the k-frame unrolling of a w-bit shift register with the
// all-ones property asserted within the window (unreachable for k <= w).
func BMCShift(w, k int) Instance {
	u := circuit.ShiftRegisterEqual(w).Unroll(k)
	f, lits := circuitCNF(u)
	prop := make([]cnf.Lit, 0, len(u.Outputs))
	for _, o := range u.Outputs {
		prop = append(prop, lits[o])
	}
	f.AddClause(prop...)
	known := cnf.Weight(1)
	if k > w {
		known = 0
	}
	return Instance{
		Name:      fmt.Sprintf("bmc-shift-%d-k%d", w, k),
		Family:    "bmc",
		W:         cnf.FromFormula(f),
		KnownCost: known,
	}
}

// ATPGRedundant builds a test-pattern-generation instance for a redundant
// (undetectable) fault: the miter between a circuit and a faulty copy whose
// fault never propagates to an output. Asserting the miter output yields an
// unsatisfiable CNF — the ATPG tool's proof that no test pattern exists.
// The redundancy is constructed, not searched for: the faulty site feeds a
// masked sub-circuit (x AND ¬x), so any gate substitution there is
// unobservable.
func ATPGRedundant(bits int) Instance {
	good := buildMaskedCircuit(bits)
	bad := good.Clone()
	// The masked gate is the one AND feeding the contradiction; flip it.
	bad.Gates[maskedGateIndex(bits)].Type = circuit.Or
	m := circuit.Miter(good, bad)
	f, lits := circuitCNF(m)
	f.AddClause(lits[m.Outputs[0]])
	return Instance{
		Name:      fmt.Sprintf("atpg-red-%d", bits),
		Family:    "atpg",
		W:         cnf.FromFormula(f),
		KnownCost: 1,
	}
}

// buildMaskedCircuit creates an adder whose output is XORed with a masked
// signal (g AND NOT g == 0): the masked region is redundant logic.
func buildMaskedCircuit(bits int) *circuit.Circuit {
	c := circuit.New()
	a := make([]int, bits)
	b := make([]int, bits)
	for i := range a {
		a[i] = c.NewInput()
	}
	for i := range b {
		b[i] = c.NewInput()
	}
	carry := c.Const(false)
	var sums []int
	for i := 0; i < bits; i++ {
		axb := c.Xor(a[i], b[i])
		sums = append(sums, c.Xor(axb, carry))
		carry = c.Or(c.And(a[i], b[i]), c.And(axb, carry))
	}
	// Redundant masked region: (a0 AND b0) AND NOT(a0 AND b0) == 0.
	inner := c.And(a[0], b[0]) // the substitutable masked gate
	masked := c.And(inner, c.Not(inner))
	for _, s := range sums {
		c.MarkOutput(c.Xor(s, masked))
	}
	c.MarkOutput(carry)
	return c
}

// maskedGateIndex returns the gate id of the masked AND inside
// buildMaskedCircuit(bits). It relies on the deterministic construction
// order: the gate is built right after the adder chain.
func maskedGateIndex(bits int) int {
	c := buildMaskedCircuit(bits)
	// The masked gate is the third-from-last gate before outputs were
	// appended; recompute by rebuilding and tracking: gate order is
	// inputs, adder gates, inner, not, masked, xors, ... Find the AND whose
	// fanins are inputs a0 and b0 appearing after the adder chain.
	a0, b0 := c.Inputs[0], c.Inputs[bits]
	last := -1
	for id, g := range c.Gates {
		if g.Type == circuit.And && len(g.Fanin) == 2 {
			if (g.Fanin[0] == a0 && g.Fanin[1] == b0) || (g.Fanin[0] == b0 && g.Fanin[1] == a0) {
				last = id
			}
		}
	}
	if last < 0 {
		panic("gen: masked gate not found")
	}
	return last
}

// Coloring returns an over-constrained graph colouring MaxSAT instance:
// hard exactly-one-colour constraints per vertex, soft "endpoints differ"
// clauses per edge. Dense random graphs with too few colours yield optima
// well above 1, filling the large-cost region of the scatter plots.
func Coloring(seed int64, vertices, edges, colors int) Instance {
	rng := rand.New(rand.NewSource(seed))
	w := cnf.NewWCNF(vertices * colors)
	v := func(node, c int) cnf.Lit { return cnf.PosLit(cnf.Var(node*colors + c)) }
	// Hard: exactly one colour per vertex (pairwise AMO is fine at this size).
	for node := 0; node < vertices; node++ {
		all := make([]cnf.Lit, colors)
		for c := 0; c < colors; c++ {
			all[c] = v(node, c)
		}
		w.AddHard(all...)
		for c1 := 0; c1 < colors; c1++ {
			for c2 := c1 + 1; c2 < colors; c2++ {
				w.AddHard(v(node, c1).Neg(), v(node, c2).Neg())
			}
		}
	}
	// Soft: edge endpoints get different colours.
	seen := map[[2]int]bool{}
	added := 0
	for added < edges {
		x, y := rng.Intn(vertices), rng.Intn(vertices)
		if x == y {
			continue
		}
		if x > y {
			x, y = y, x
		}
		if seen[[2]int{x, y}] {
			continue
		}
		seen[[2]int{x, y}] = true
		added++
		for c := 0; c < colors; c++ {
			w.AddSoft(1, v(x, c).Neg(), v(y, c).Neg())
		}
	}
	return Instance{
		Name:      fmt.Sprintf("color-v%d-e%d-c%d-s%d", vertices, edges, colors, seed),
		Family:    "coloring",
		W:         w,
		KnownCost: -1,
	}
}

// ColoringWeighted is the weighted variant of Coloring: each edge carries a
// random positive weight (all of that edge's per-colour soft clauses share
// it), producing weighted partial MaxSAT instances for the weighted
// algorithm extensions (wmsu1/wmsu4).
func ColoringWeighted(seed int64, vertices, edges, colors int, maxWeight int) Instance {
	base := Coloring(seed, vertices, edges, colors)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	w := base.W
	i := 0
	var cur cnf.Weight
	for ci := range w.Clauses {
		if w.Clauses[ci].Hard() {
			continue
		}
		// Soft clauses come in per-edge groups of size `colors`.
		if i%colors == 0 {
			cur = cnf.Weight(1 + rng.Intn(maxWeight))
		}
		w.Clauses[ci].Weight = cur
		i++
	}
	base.Name = fmt.Sprintf("wcolor-v%d-e%d-c%d-s%d", vertices, edges, colors, seed)
	base.Family = "coloring-weighted"
	return base
}

// EquivMiterKS is the ripple vs Kogge-Stone equivalence pair — maximal
// structural distance between the two implementations, the hardest of the
// adder miters.
func EquivMiterKS(bits int) Instance {
	m := circuit.Miter(circuit.RippleAdder(bits), circuit.KoggeStoneAdder(bits))
	f, lits := circuitCNF(m)
	f.AddClause(lits[m.Outputs[0]])
	return Instance{
		Name:      fmt.Sprintf("ec-ks-%d", bits),
		Family:    "equivalence",
		W:         cnf.FromFormula(f),
		KnownCost: 1,
	}
}
