package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/cnf"
)

// PigeonholeWeighted is the soft pigeonhole family with a fully diverse
// weight profile: PHP(p+1, p) hole constraints are hard, every "pigeon
// placed" clause is soft with a distinct weight 1..p+1. Exactly one pigeon
// must stay unplaced, and the optimum drops the cheapest: cost 1. The
// instance family is the classic core-guided stress test (one big core that
// must be re-bounded repeatedly), here with the weighted bookkeeping
// exercised on top.
func PigeonholeWeighted(p int) Instance {
	pigeons, holes := p+1, p
	w := cnf.NewWCNF(pigeons * holes)
	v := func(pg, h int) cnf.Lit { return cnf.PosLit(cnf.Var(pg*holes + h)) }
	for pg := 0; pg < pigeons; pg++ {
		c := make([]cnf.Lit, holes)
		for h := 0; h < holes; h++ {
			c[h] = v(pg, h)
		}
		w.AddSoft(cnf.Weight(pg+1), c...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				w.AddHard(v(p1, h).Neg(), v(p2, h).Neg())
			}
		}
	}
	return Instance{
		// No "-<digits>" suffix: benchmark tooling strips a trailing
		// "-N" as the GOMAXPROCS marker, so it can't end the name.
		Name:      fmt.Sprintf("wphp%d", p),
		Family:    "pigeonhole-weighted",
		W:         w,
		KnownCost: 1,
	}
}

// SelectionWeighted is a Boolean-lexicographic (BLO-structured) selection
// family: groups·per mutually exclusive options (hard pairwise conflicts),
// per options at each weight level base^0 … base^(groups−1). The optimum
// keeps exactly one option — a heaviest one — so cost = per·Σ base^i −
// base^(groups−1), known analytically. Broad weight levels spanning orders
// of magnitude are the shape stratification and hardening are designed for:
// the top stratum is satisfiable on its own and immediately pins the
// incumbent.
func SelectionWeighted(groups, per int, base cnf.Weight) Instance {
	n := groups * per
	w := cnf.NewWCNF(n)
	var total, max cnf.Weight
	wt := cnf.Weight(1)
	for g := 0; g < groups; g++ {
		for p := 0; p < per; p++ {
			w.AddSoft(wt, cnf.PosLit(cnf.Var(g*per+p)))
			total += wt
		}
		if wt > max {
			max = wt
		}
		wt *= base
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			w.AddHard(cnf.NegLit(cnf.Var(i)), cnf.NegLit(cnf.Var(j)))
		}
	}
	return Instance{
		Name:      fmt.Sprintf("wselect-g%dx%d-b%d", groups, per, base),
		Family:    "blo-selection",
		W:         w,
		KnownCost: total - max,
	}
}

// RandomKSATWeighted is the SATLIB-style random filler family with random
// soft weights in 1..maxWeight (optimum not known analytically).
func RandomKSATWeighted(seed int64, vars, k int, ratio float64, maxWeight int) Instance {
	base := RandomKSAT(seed, vars, k, ratio)
	rng := rand.New(rand.NewSource(seed ^ 0x77e1647ed))
	for ci := range base.W.Clauses {
		base.W.Clauses[ci].Weight = cnf.Weight(1 + rng.Intn(maxWeight))
	}
	base.Name = fmt.Sprintf("wrand%d-v%d-r%.1f-s%d", k, vars, ratio, seed)
	base.Family = "random-weighted"
	return base
}

// WeightedSuite is the weighted companion of Suite: the weighted graph
// coloring family of the Table 1 suite plus the three weighted families
// above, at sizes a complete algorithm proves in well under a second.
func WeightedSuite(seed int64) []Instance {
	return []Instance{
		ColoringWeighted(seed, 12, 28, 3, 6),
		ColoringWeighted(seed+1, 14, 34, 3, 9),
		ColoringWeighted(seed+2, 16, 40, 3, 6),
		PigeonholeWeighted(4),
		PigeonholeWeighted(5),
		SelectionWeighted(5, 4, 2),
		SelectionWeighted(4, 5, 10),
		RandomKSATWeighted(seed, 30, 3, 6.0, 7),
		RandomKSATWeighted(seed+3, 40, 3, 5.5, 4),
	}
}
