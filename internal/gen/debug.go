package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/card"
	"repro/internal/circuit"
	"repro/internal/cnf"
)

// DesignDebug builds a design-debugging MaxSAT instance in the style of
// Safarpour et al. (FMCAD 2007), the application motivating the DATE 2008
// paper (its Table 2):
//
//   - take a golden circuit and inject one gate fault (the "design error");
//   - simulate the golden circuit on test vectors to obtain the expected
//     input/output behaviour;
//   - encode the faulty circuit once per vector with a shared per-gate
//     correctness guard, the I/O values as hard unit clauses, and a soft
//     unit clause per guard.
//
// Maximizing satisfied soft clauses minimizes the number of suspended
// gates; every optimal solution is a minimal diagnosis, and the injected
// fault site is always one explanation, so the optimum cost is at least 1
// (exactly 1 whenever a single suspension suffices, which holds for single
// injected faults by construction).
//
// The generator retries fault injection until the fault is observable on
// the sampled vectors, so the instance is never trivially satisfiable.
func DesignDebug(seed int64, golden *circuit.Circuit, nVectors int) Instance {
	return DesignDebugDetailed(seed, golden, nVectors).Instance
}

// DebugInstance augments a design-debugging instance with the injected
// fault and the suspect-gate map, for diagnosis-quality checks: soft clause
// i (in WCNF order) guards gate SuspectGates[i] of Bad.
type DebugInstance struct {
	Instance
	Fault        circuit.Fault
	SuspectGates []int
	Bad          *circuit.Circuit
	Vectors      [][]bool
}

// DesignDebugDetailed is DesignDebug with the diagnosis ground truth kept.
func DesignDebugDetailed(seed int64, golden *circuit.Circuit, nVectors int) DebugInstance {
	rng := rand.New(rand.NewSource(seed))
	var bad *circuit.Circuit
	var fault circuit.Fault
	var vectors [][]bool
	for tries := 0; ; tries++ {
		if tries > 200 {
			panic("gen: could not inject an observable fault")
		}
		bad, fault = circuit.InjectFault(rng, golden)
		vectors = circuit.RandomVectors(rng, golden.NumInputs(), nVectors)
		if circuit.FaultObservable(golden, bad, vectors) {
			break
		}
	}

	w := cnf.NewWCNF(0)
	d := &wcnfHardDest{w: w}

	// Shared per-gate guards for every substitutable gate.
	guards := map[int]cnf.Lit{}
	var guardOrder []int
	for id, g := range bad.Gates {
		switch g.Type {
		case circuit.Input:
			// not a suspect
		default:
			guards[id] = cnf.PosLit(cnf.Var(d.NewVar()))
			guardOrder = append(guardOrder, id)
		}
	}

	for _, vec := range vectors {
		lits := circuit.TseitinGuarded(d, bad, guards)
		// Hard input values.
		for i, id := range bad.Inputs {
			l := lits[id]
			if !vec[i] {
				l = l.Neg()
			}
			w.AddHard(l)
		}
		// Hard golden output values.
		goldenOut := golden.OutputsOf(golden.Eval(vec))
		for i, id := range bad.Outputs {
			l := lits[id]
			if !goldenOut[i] {
				l = l.Neg()
			}
			w.AddHard(l)
		}
	}
	// Soft: each gate is presumed correct.
	for _, id := range guardOrder {
		w.AddSoft(1, guards[id])
	}
	return DebugInstance{
		Instance: Instance{
			Name:      fmt.Sprintf("debug-g%d-v%d-s%d", golden.NumGates(), nVectors, seed),
			Family:    "debug",
			W:         w,
			KnownCost: -1, // at least 1; exact minimal diagnosis size data-dependent
		},
		Fault:        fault,
		SuspectGates: guardOrder,
		Bad:          bad,
		Vectors:      vectors,
	}
}

// DesignDebugPlain builds the plain-MaxSAT reading of a design-debugging
// instance, matching how the DATE 2008 paper consumes the instances of
// Safarpour et al. in Table 2: the faulty circuit is replicated per test
// vector and every clause — gate consistency and observed I/O values alike —
// is a unit-weight soft clause. The CNF is unsatisfiable (the fault is
// observable), so the optimum is >= 1; the clause count grows as
// vectors × gates × ~4, which is exactly the blocking-variable blow-up that
// makes the PBO formulation collapse on this family while msu4, relaxing
// only core clauses, stays fast.
func DesignDebugPlain(seed int64, golden *circuit.Circuit, nVectors int) Instance {
	rng := rand.New(rand.NewSource(seed))
	var bad *circuit.Circuit
	var vectors [][]bool
	for tries := 0; ; tries++ {
		if tries > 200 {
			panic("gen: could not inject an observable fault")
		}
		bad, _ = circuit.InjectFault(rng, golden)
		vectors = circuit.RandomVectors(rng, golden.NumInputs(), nVectors)
		if circuit.FaultObservable(golden, bad, vectors) {
			break
		}
	}
	f := cnf.NewFormula(0)
	d := card.NewFormulaDest(f)
	for _, vec := range vectors {
		lits := circuit.Tseitin(d, bad)
		for i, id := range bad.Inputs {
			l := lits[id]
			if !vec[i] {
				l = l.Neg()
			}
			f.AddClause(l)
		}
		goldenOut := golden.OutputsOf(golden.Eval(vec))
		for i, id := range bad.Outputs {
			l := lits[id]
			if !goldenOut[i] {
				l = l.Neg()
			}
			f.AddClause(l)
		}
	}
	return Instance{
		Name:      fmt.Sprintf("debugp-g%d-v%d-s%d", golden.NumGates(), nVectors, seed),
		Family:    "debug",
		W:         cnf.FromFormula(f),
		KnownCost: -1,
	}
}

// wcnfHardDest adapts a WCNF as a hard-clause encoding destination.
type wcnfHardDest struct {
	w *cnf.WCNF
}

func (d *wcnfHardDest) NewVar() cnf.Var {
	v := cnf.Var(d.w.NumVars)
	d.w.NumVars++
	return v
}

func (d *wcnfHardDest) AddClause(lits ...cnf.Lit) bool {
	d.w.AddHard(lits...)
	return true
}

var _ circuit.Dest = (*wcnfHardDest)(nil)
var _ card.Dest = (*wcnfHardDest)(nil)
