package gen

import (
	"math/rand"

	"repro/internal/circuit"
)

// Suite returns the industrial-style benchmark suite standing in for the
// paper's 691 unsatisfiable instances (Table 1, Figures 1–3). Instances are
// deterministic for a given seed. Sizes are laptop-scale: the full suite
// with the default harness timeout regenerates the table in minutes while
// preserving the relative solver behaviour (see EXPERIMENTS.md).
func Suite(seed int64) []Instance {
	var out []Instance

	// Pigeonhole: classic combinatorial UNSAT, brutal for branch and bound
	// above toy sizes, trivial cost structure (1).
	for _, p := range []int{3, 4, 5, 6, 7} {
		out = append(out, Pigeonhole(p))
	}

	// Random over-constrained 3-SAT: the family where branch and bound is
	// competitive (small, random, large optimum).
	i := 0
	for _, vars := range []int{16, 20, 24, 28} {
		for s := int64(0); s < 3; s++ {
			out = append(out, RandomKSAT(seed+100+int64(i), vars, 3, 6.0))
			i++
		}
	}

	// Equivalence checking: structured EDA UNSAT instances of increasing
	// size; SAT solvers find small cores quickly, DPLL-based MaxSAT drowns.
	for _, bits := range []int{3, 4, 5, 6, 8, 10, 12, 14, 16, 20, 24} {
		out = append(out, EquivMiter(bits))
	}
	for _, bits := range []int{2, 3, 4, 5} {
		out = append(out, EquivMiterMultiplier(bits))
	}
	for _, bits := range []int{4, 8, 12, 16} {
		out = append(out, EquivMiterKS(bits))
	}

	// Bounded model checking: unreachable properties at varying depth.
	for _, nk := range [][2]int{{3, 5}, {3, 7}, {4, 8}, {4, 12}, {5, 16}, {5, 24}, {6, 32}} {
		out = append(out, BMCCounter(nk[0], nk[1]))
	}
	for _, wk := range [][2]int{{6, 5}, {8, 7}, {10, 9}, {12, 11}, {14, 13}, {18, 17}, {24, 23}} {
		out = append(out, BMCShift(wk[0], wk[1]))
	}

	// Test-pattern generation for redundant faults.
	for _, bits := range []int{3, 4, 6, 8, 10, 12, 16} {
		out = append(out, ATPGRedundant(bits))
	}

	// Over-constrained graph colouring: the large-optimum tail.
	for idx, ve := range [][3]int{{8, 20, 3}, {10, 26, 3}, {12, 32, 3}, {10, 34, 3}, {14, 38, 3}, {16, 44, 3}} {
		out = append(out, Coloring(seed+200+int64(idx), ve[0], ve[1], ve[2]))
	}

	return out
}

// DebugSuite returns 29 design-debugging instances, the analog of the
// paper's Table 2 (29 instances from Safarpour et al.). Golden circuits
// span the arithmetic and random netlists of this repository; each gets a
// single injected observable gate fault and a handful of test vectors.
// The instances use the plain-MaxSAT reading (every clause soft), the form
// in which the paper's evaluation consumed them; DesignDebugDetailed
// provides the per-gate-guard partial-MaxSAT reading for diagnosis work.
func DebugSuite(seed int64) []Instance {
	var out []Instance
	add := func(golden *circuit.Circuit, vectors int) {
		s := seed + int64(len(out))
		out = append(out, DesignDebugPlain(s, golden, vectors))
	}

	for _, bits := range []int{6, 8, 10, 12, 16} {
		add(circuit.RippleAdder(bits), 8)
	}
	for _, bits := range []int{8, 10, 12, 14} {
		add(circuit.CarrySelectAdder(bits), 8)
	}
	for _, bits := range []int{8, 12, 16, 20} {
		add(circuit.Comparator(bits), 8)
	}
	for _, n := range []int{16, 24, 32} {
		add(circuit.ParityTree(n), 6)
	}
	for _, bits := range []int{3, 4} {
		add(circuit.Multiplier(bits), 6)
	}
	rng := rand.New(rand.NewSource(seed + 999))
	for i := 0; i < 11; i++ {
		nIn := 8 + rng.Intn(8)
		nGates := 60 + rng.Intn(200)
		add(circuit.RandomCombinational(rng, nIn, nGates), 6)
	}

	if len(out) != 29 {
		panic("gen: debug suite must have 29 instances to mirror Table 2")
	}
	return out
}

// Families returns the distinct family names of a suite, in first-seen
// order.
func Families(insts []Instance) []string {
	seen := map[string]bool{}
	var out []string
	for _, in := range insts {
		if !seen[in.Family] {
			seen[in.Family] = true
			out = append(out, in.Family)
		}
	}
	return out
}
