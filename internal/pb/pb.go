// Package pb provides linear pseudo-Boolean constraints over literals and
// their translation to CNF through reduced ordered BDDs, following Eén &
// Sörensson's minisat+ ("Translating Pseudo-Boolean Constraints into SAT",
// JSAT 2006). The PBO formulation of MaxSAT evaluated in the DATE 2008 paper
// (the "pbo" column of Table 1) relies on this translation for its
// objective-bounding constraints.
package pb

import (
	"fmt"
	"sort"

	"repro/internal/card"
	"repro/internal/cnf"
)

// Term is a weighted literal.
type Term struct {
	Coef int64
	Lit  cnf.Lit
}

// LinearLE is the constraint sum(Coef_i * Lit_i) <= Bound.
type LinearLE struct {
	Terms []Term
	Bound int64
}

// Normalize rewrites the constraint so that all coefficients are positive
// (replacing c*l by c*¬l shifts the bound), merges duplicate literals,
// cancels complementary pairs, and sorts terms by decreasing coefficient.
// A trivially false constraint keeps a negative bound, which the encoder
// turns into an empty clause.
func (c *LinearLE) Normalize() {
	// Flip negative coefficients.
	for i := range c.Terms {
		if c.Terms[i].Coef < 0 {
			c.Terms[i].Coef = -c.Terms[i].Coef
			c.Terms[i].Lit = c.Terms[i].Lit.Neg()
			c.Bound += c.Terms[i].Coef
		}
	}
	// Merge duplicate literals and cancel complements.
	byVar := make(map[cnf.Var]int64) // signed coefficient of the positive literal
	for _, t := range c.Terms {
		if t.Coef == 0 {
			continue
		}
		if t.Lit.Sign() {
			byVar[t.Lit.Var()] -= t.Coef
			// c*¬x = c - c*x: shift bound
			c.Bound -= t.Coef
		} else {
			byVar[t.Lit.Var()] += t.Coef
		}
	}
	// Rebuild the term list with positive coefficients, converting negative
	// accumulated coefficients back to negated literals.
	c.Terms = c.Terms[:0]
	for v, coef := range byVar {
		switch {
		case coef > 0:
			c.Terms = append(c.Terms, Term{Coef: coef, Lit: cnf.PosLit(v)})
		case coef < 0:
			c.Terms = append(c.Terms, Term{Coef: -coef, Lit: cnf.NegLit(v)})
			c.Bound += -coef
		}
	}
	sort.Slice(c.Terms, func(i, j int) bool {
		if c.Terms[i].Coef != c.Terms[j].Coef {
			return c.Terms[i].Coef > c.Terms[j].Coef
		}
		return c.Terms[i].Lit < c.Terms[j].Lit
	})
}

// Eval returns the left-hand-side value under a.
func (c *LinearLE) Eval(a cnf.Assignment) int64 {
	var s int64
	for _, t := range c.Terms {
		if a.Lit(t.Lit) {
			s += t.Coef
		}
	}
	return s
}

// Holds reports whether a satisfies the constraint.
func (c *LinearLE) Holds(a cnf.Assignment) bool { return c.Eval(a) <= c.Bound }

// String renders the constraint.
func (c *LinearLE) String() string {
	s := ""
	for i, t := range c.Terms {
		if i > 0 {
			s += " + "
		}
		s += fmt.Sprintf("%d·%v", t.Coef, t.Lit)
	}
	return fmt.Sprintf("%s <= %d", s, c.Bound)
}

// Encode asserts the constraint into d as CNF via its reduced ordered BDD.
// The constraint is normalized first (in place).
func (c *LinearLE) Encode(d card.Dest) {
	c.Normalize()
	n := len(c.Terms)
	// Trivial cases.
	var total int64
	for _, t := range c.Terms {
		total += t.Coef
	}
	switch {
	case c.Bound < 0:
		d.AddClause()
		return
	case total <= c.Bound:
		return
	}
	// All-unit coefficients degenerate to a cardinality constraint, for
	// which the dedicated grid BDD in package card is more compact.
	if n > 0 && c.Terms[0].Coef == 1 {
		lits := make([]cnf.Lit, n)
		for i, t := range c.Terms {
			lits[i] = t.Lit
		}
		card.AtMost(d, card.BDD, lits, int(c.Bound))
		return
	}
	b := &pbBDD{
		d:     d,
		terms: c.Terms,
		memo:  make(map[memoKey]pbRef),
		sums:  make([]int64, n+1),
	}
	for i := n - 1; i >= 0; i-- {
		b.sums[i] = b.sums[i+1] + c.Terms[i].Coef
	}
	root := b.node(0, c.Bound)
	switch {
	case root.isConst && root.cval:
		return
	case root.isConst:
		d.AddClause()
	default:
		d.AddClause(root.lit)
	}
}

type memoKey struct {
	idx   int
	bound int64
}

type pbRef struct {
	isConst bool
	cval    bool
	lit     cnf.Lit
}

var (
	pbTrue  = pbRef{isConst: true, cval: true}
	pbFalse = pbRef{isConst: true, cval: false}
)

type pbBDD struct {
	d     card.Dest
	terms []Term
	memo  map[memoKey]pbRef
	sums  []int64 // sums[i] = sum of coefficients of terms[i:]
	nodes int
}

// node returns a reference for "sum(terms[i:]) <= bound".
func (b *pbBDD) node(i int, bound int64) pbRef {
	if bound < 0 {
		return pbFalse
	}
	if b.sums[i] <= bound {
		return pbTrue
	}
	// Clamp the bound to the remaining sum so that equivalent subproblems
	// share one memo entry (a light version of minisat+'s interval memo).
	if bound > b.sums[i] {
		bound = b.sums[i]
	}
	key := memoKey{i, bound}
	if ref, ok := b.memo[key]; ok {
		return ref
	}
	hi := b.node(i+1, bound-b.terms[i].Coef)
	lo := b.node(i+1, bound)
	ref := b.emitITE(b.terms[i].Lit, hi, lo)
	b.memo[key] = ref
	return ref
}

func (b *pbBDD) emitITE(x cnf.Lit, hi, lo pbRef) pbRef {
	if hi == lo {
		return hi
	}
	y := cnf.PosLit(b.d.NewVar())
	b.nodes++
	switch {
	case hi.isConst && hi.cval:
	case hi.isConst:
		b.d.AddClause(y.Neg(), x.Neg())
	default:
		b.d.AddClause(y.Neg(), x.Neg(), hi.lit)
	}
	switch {
	case lo.isConst && lo.cval:
	case lo.isConst:
		b.d.AddClause(y.Neg(), x)
	default:
		b.d.AddClause(y.Neg(), x, lo.lit)
	}
	return pbRef{lit: y}
}
