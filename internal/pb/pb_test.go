package pb

import (
	"math/rand"
	"testing"

	"repro/internal/cnf"
	"repro/internal/sat"
)

func TestNormalizeFlipsNegativeCoefficients(t *testing.T) {
	c := &LinearLE{
		Terms: []Term{{Coef: -3, Lit: cnf.PosLit(0)}, {Coef: 2, Lit: cnf.PosLit(1)}},
		Bound: 1,
	}
	c.Normalize()
	for _, term := range c.Terms {
		if term.Coef <= 0 {
			t.Fatalf("negative coefficient survived: %+v", c)
		}
	}
	// -3x0 + 2x1 <= 1  ≡  3¬x0 + 2x1 <= 4
	if c.Bound != 4 {
		t.Fatalf("bound = %d, want 4", c.Bound)
	}
}

func TestNormalizeMergesDuplicates(t *testing.T) {
	x := cnf.PosLit(0)
	c := &LinearLE{
		Terms: []Term{{Coef: 2, Lit: x}, {Coef: 3, Lit: x}, {Coef: 1, Lit: x.Neg()}},
		Bound: 4,
	}
	c.Normalize()
	// 2x + 3x + (1-x) <= 4  ≡  4x <= 3
	if len(c.Terms) != 1 || c.Terms[0].Coef != 4 || c.Terms[0].Lit != x || c.Bound != 3 {
		t.Fatalf("got %v", c)
	}
}

func TestNormalizeSemanticInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 300; iter++ {
		n := 1 + rng.Intn(5)
		c := &LinearLE{Bound: int64(rng.Intn(21) - 10)}
		for i := 0; i < 1+rng.Intn(6); i++ {
			c.Terms = append(c.Terms, Term{
				Coef: int64(rng.Intn(11) - 5),
				Lit:  cnf.NewLit(cnf.Var(rng.Intn(n)), rng.Intn(2) == 0),
			})
		}
		orig := &LinearLE{Terms: append([]Term{}, c.Terms...), Bound: c.Bound}
		c.Normalize()
		a := make(cnf.Assignment, n)
		for bits := 0; bits < 1<<uint(n); bits++ {
			for v := 0; v < n; v++ {
				a[v] = bits&(1<<uint(v)) != 0
			}
			if orig.Holds(a) != c.Holds(a) {
				t.Fatalf("normalize changed semantics:\norig %v\nnorm %v\nassignment %v",
					orig, c, a)
			}
		}
	}
}

// TestEncodeSemantics exhaustively checks that the BDD encoding is
// satisfiable exactly when the constraint holds, for every assignment.
func TestEncodeSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 150; iter++ {
		n := 1 + rng.Intn(6)
		c := &LinearLE{Bound: int64(rng.Intn(15))}
		for v := 0; v < n; v++ {
			c.Terms = append(c.Terms, Term{
				Coef: int64(rng.Intn(9) - 4),
				Lit:  cnf.NewLit(cnf.Var(v), rng.Intn(2) == 0),
			})
		}
		spec := &LinearLE{Terms: append([]Term{}, c.Terms...), Bound: c.Bound}
		for bits := 0; bits < 1<<uint(n); bits++ {
			s := sat.New()
			s.EnsureVars(n)
			enc := &LinearLE{Terms: append([]Term{}, c.Terms...), Bound: c.Bound}
			enc.Encode(s)
			a := make(cnf.Assignment, n)
			for v := 0; v < n; v++ {
				a[v] = bits&(1<<uint(v)) != 0
				if a[v] {
					s.AddClause(cnf.PosLit(cnf.Var(v)))
				} else {
					s.AddClause(cnf.NegLit(cnf.Var(v)))
				}
			}
			st := s.Solve()
			want := sat.Sat
			if !spec.Holds(a) {
				want = sat.Unsat
			}
			if st != want {
				t.Fatalf("iter %d %v assignment %v: got %v, want %v",
					iter, spec, a, st, want)
			}
		}
	}
}

func TestEncodeUnitCoefficientsUsesCardinality(t *testing.T) {
	// All-unit constraints route to the card grid BDD; semantics must hold.
	for n := 1; n <= 6; n++ {
		for k := 0; k <= n; k++ {
			for bits := 0; bits < 1<<uint(n); bits++ {
				s := sat.New()
				s.EnsureVars(n)
				c := &LinearLE{Bound: int64(k)}
				ones := 0
				for v := 0; v < n; v++ {
					c.Terms = append(c.Terms, Term{Coef: 1, Lit: cnf.PosLit(cnf.Var(v))})
					if bits&(1<<uint(v)) != 0 {
						ones++
						s.AddClause(cnf.PosLit(cnf.Var(v)))
					} else {
						s.AddClause(cnf.NegLit(cnf.Var(v)))
					}
				}
				c.Encode(s)
				want := sat.Sat
				if ones > k {
					want = sat.Unsat
				}
				if st := s.Solve(); st != want {
					t.Fatalf("n=%d k=%d ones=%d: got %v want %v", n, k, ones, st, want)
				}
			}
		}
	}
}

func TestEncodeTrivial(t *testing.T) {
	// Negative bound: empty clause.
	s := sat.New()
	c := &LinearLE{Terms: []Term{{Coef: 2, Lit: cnf.PosLit(s.NewVar())}}, Bound: -1}
	c.Encode(s)
	if st := s.Solve(); st != sat.Unsat {
		t.Fatalf("negative bound: got %v", st)
	}
	// Bound above total: nothing.
	f := cnf.NewFormula(1)
	d := &formulaDest{f}
	c2 := &LinearLE{Terms: []Term{{Coef: 2, Lit: cnf.PosLit(0)}}, Bound: 5}
	c2.Encode(d)
	if f.NumClauses() != 0 {
		t.Fatalf("trivially true constraint emitted %d clauses", f.NumClauses())
	}
}

func TestString(t *testing.T) {
	c := &LinearLE{Terms: []Term{{Coef: 3, Lit: cnf.PosLit(0)}}, Bound: 2}
	if got := c.String(); got != "3·1 <= 2" {
		t.Fatalf("String() = %q", got)
	}
}

type formulaDest struct{ f *cnf.Formula }

func (d *formulaDest) NewVar() cnf.Var {
	v := cnf.Var(d.f.NumVars)
	d.f.NumVars++
	return v
}

func (d *formulaDest) AddClause(lits ...cnf.Lit) bool {
	d.f.AddClause(lits...)
	return true
}
