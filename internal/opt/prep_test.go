package opt

import (
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/sat"
	"repro/internal/simp"
)

func plit(i int) cnf.Lit { return cnf.FromDIMACS(i) }

func TestMaybePrepDisabled(t *testing.T) {
	w := cnf.NewWCNF(2)
	w.AddSoft(1, plit(1))
	p, pw := MaybePrep(w, Options{})
	if p != nil || pw != w {
		t.Fatal("disabled preprocessing must be a no-op")
	}
	// Nil-safe method surface.
	if p.HardUnsat() {
		t.Fatal("nil Prep reports unsat")
	}
	var res Result
	p.Finish(&res)
	b := NewBounds()
	p.PublishUB(b, 1, cnf.Assignment{true, false})
	if ub, ok := b.UB(); !ok || ub != 1 {
		t.Fatal("nil Prep PublishUB must degrade to a plain publish")
	}
}

func TestPrepRewriteShape(t *testing.T) {
	w := cnf.NewWCNF(4)
	w.AddHard(plit(1), plit(2))
	w.AddSoft(1, plit(3), plit(4)) // non-unit: gets a selector
	w.AddSoft(2, plit(-3))         // unit: kept, variable frozen
	w.AddSoft(3)                   // empty: constant cost
	p := NewPrep(w, simp.Options{}, Selectors)
	if p.HardUnsat() {
		t.Fatal("satisfiable hard clauses reported unsat")
	}
	out := p.W()
	if out.NumVars != 5 {
		t.Fatalf("want 4 original + 1 selector variables, got %d", out.NumVars)
	}
	soft := 0
	for _, c := range out.Clauses {
		if c.Hard() {
			continue
		}
		soft++
		if len(c.Clause) > 1 {
			t.Fatalf("rewritten soft clause is not unit/empty: %v", c.Clause)
		}
	}
	if soft != 3 {
		t.Fatalf("want 3 rewritten softs, got %d", soft)
	}
	if out.SoftWeightSum() != w.SoftWeightSum() {
		t.Fatalf("soft weight changed: %d != %d", out.SoftWeightSum(), w.SoftWeightSum())
	}
}

func TestPrepFoldsFixedSelectors(t *testing.T) {
	// Hard (x1) makes the soft (¬x1) unsatisfiable — its weight is always
	// paid — and the soft (x1) free — it disappears.
	w := cnf.NewWCNF(1)
	w.AddHard(plit(1))
	w.AddSoft(5, plit(-1))
	w.AddSoft(7, plit(1))
	p := NewPrep(w, simp.Options{}, Selectors)
	out := p.W()
	var softs []cnf.WClause
	for _, c := range out.Clauses {
		if !c.Hard() {
			softs = append(softs, c)
		}
	}
	if len(softs) != 1 || len(softs[0].Clause) != 0 || softs[0].Weight != 5 {
		t.Fatalf("want exactly the always-paid weight-5 empty soft, got %v", softs)
	}
}

func TestPrepHardUnsat(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddHard(plit(1))
	w.AddHard(plit(-1))
	w.AddSoft(1, plit(1))
	p := NewPrep(w, simp.Options{}, Selectors)
	if !p.HardUnsat() {
		t.Fatal("conflicting hard clauses not detected")
	}
}

func TestPrepFinishSkipsAdoptedOriginalModels(t *testing.T) {
	// A model already in the original space (adopted from shared bounds,
	// published by another member through PublishUB) must pass through
	// Finish untouched except for rescoring.
	w := cnf.NewWCNF(3)
	w.AddHard(plit(1), plit(2))
	w.AddSoft(1, plit(-1), plit(3))
	w.AddSoft(1, plit(-2), plit(3))
	p := NewPrep(w, simp.Options{}, Selectors)
	adopted := cnf.Assignment{true, true, true} // original space, cost 0
	res := Result{Status: StatusOptimal, Cost: 0, Model: adopted}
	p.Finish(&res)
	if res.Cost != 0 || len(res.Model) != 3 {
		t.Fatalf("adopted model mangled: cost=%d len=%d", res.Cost, len(res.Model))
	}
}

// solvePrep finds an optimal model of the rewritten formula by brute force
// over its clauses (hards as constraints, softs as objective).
func solvePrep(t *testing.T, out *cnf.WCNF) (cnf.Weight, cnf.Assignment, bool) {
	t.Helper()
	return brute.MinCostWCNF(out)
}

func TestPrepPreservesOptimumRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 400; iter++ {
		vars := 2 + rng.Intn(6)
		w := cnf.NewWCNF(vars)
		weighted := rng.Intn(2) == 0
		for i := 0; i < 2+rng.Intn(12); i++ {
			width := 1 + rng.Intn(3)
			var c []cnf.Lit
			for j := 0; j < width; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(vars)), rng.Intn(2) == 0))
			}
			switch {
			case rng.Intn(3) == 0:
				w.AddHard(c...)
			case weighted:
				w.AddSoft(cnf.Weight(1+rng.Intn(4)), c...)
			default:
				w.AddSoft(1, c...)
			}
		}
		wantCost, _, wantFeasible := brute.MinCostWCNF(w)
		p := NewPrep(w, simp.Options{}, Selectors)
		if p.HardUnsat() {
			if wantFeasible {
				t.Fatalf("iter %d: prep unsat on feasible instance", iter)
			}
			continue
		}
		gotCost, gotModel, gotFeasible := solvePrep(t, p.W())
		if gotFeasible != wantFeasible {
			t.Fatalf("iter %d: feasibility drift (got %v want %v)", iter, gotFeasible, wantFeasible)
		}
		if !wantFeasible {
			continue
		}
		if gotCost != wantCost {
			t.Fatalf("iter %d: optimum drift: rewritten %d, original %d\n%v",
				iter, gotCost, wantCost, w.Clauses)
		}
		m := p.Restore(gotModel)
		cost, hardOK := w.CostOf(m)
		if !hardOK {
			t.Fatalf("iter %d: restored model violates hard clauses", iter)
		}
		if cost != wantCost {
			t.Fatalf("iter %d: restored model costs %d, optimum %d", iter, cost, wantCost)
		}
		if got := p.Score(m); got != cost {
			t.Fatalf("iter %d: Score %d disagrees with CostOf %d", iter, got, cost)
		}
	}
}

// TestPrepSolveRoundTrip runs an actual SAT solver over the rewritten hard
// clauses with all rewritten softs enforced relaxable — the integration
// surface every optimizer uses — and checks restored models and published
// bounds are original-space.
func TestPrepSolveRoundTrip(t *testing.T) {
	w := cnf.NewWCNF(6)
	w.AddHard(plit(1), plit(2), plit(3))
	w.AddHard(plit(-1), plit(4))
	w.AddSoft(1, plit(-4), plit(5))
	w.AddSoft(1, plit(-2), plit(6))
	w.AddSoft(1, plit(-3))
	p := NewPrep(w, simp.Options{}, Selectors)
	out := p.W()

	s := sat.New()
	s.EnsureVars(out.NumVars)
	for _, c := range out.Clauses {
		if c.Hard() {
			if !s.AddClauseFrom(c.Clause) {
				t.Fatal("hard conflict")
			}
		}
	}
	if s.Solve() != sat.Sat {
		t.Fatal("rewritten hards unsatisfiable")
	}
	model := make(cnf.Assignment, out.NumVars)
	copy(model, s.Model())

	shared := NewBounds()
	p.PublishUB(shared, p.Score(p.Restore(model)), model)
	cost, m, ok := shared.Best()
	if !ok {
		t.Fatal("publish lost")
	}
	if len(m) != 6 {
		t.Fatalf("published witness not original-space: len %d", len(m))
	}
	if c2, hardOK := w.CostOf(m); !hardOK || c2 != cost {
		t.Fatalf("published witness inconsistent: cost %d recomputed %d hardOK %v", cost, c2, hardOK)
	}
}

func TestPrepKeepSoftsMode(t *testing.T) {
	// KeepSofts: softs stay verbatim (modulo fixed values), their
	// variables are frozen, and only hard structure simplifies.
	w := cnf.NewWCNF(5)
	w.AddHard(plit(1))           // fixes x1
	w.AddHard(plit(-1), plit(4)) // propagates x4
	w.AddSoft(2, plit(-1), plit(2), plit(3))
	w.AddSoft(3, plit(-4), plit(5))
	p := NewPrep(w, simp.Options{}, KeepSofts)
	out := p.W()
	if out.NumVars != 5 {
		t.Fatalf("KeepSofts must not add variables, got %d", out.NumVars)
	}
	var softs []cnf.WClause
	for _, c := range out.Clauses {
		if !c.Hard() {
			softs = append(softs, c)
		}
	}
	// x1 fixed true: first soft loses ¬x1; x4 fixed true: second loses ¬x4.
	if len(softs) != 2 {
		t.Fatalf("want both softs kept, got %v", softs)
	}
	for _, c := range softs {
		for _, l := range c.Clause {
			if v := l.Var(); v == 0 || v == 3 {
				t.Fatalf("fixed variable survives in kept soft: %v", c.Clause)
			}
		}
	}

	// Differential: optimum preserved and restored models rescore exactly.
	rng := rand.New(rand.NewSource(55))
	for iter := 0; iter < 200; iter++ {
		vars := 2 + rng.Intn(6)
		rw := cnf.NewWCNF(vars)
		for i := 0; i < 2+rng.Intn(12); i++ {
			width := 1 + rng.Intn(3)
			var c []cnf.Lit
			for j := 0; j < width; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(vars)), rng.Intn(2) == 0))
			}
			if rng.Intn(3) == 0 {
				rw.AddHard(c...)
			} else {
				rw.AddSoft(cnf.Weight(1+rng.Intn(3)), c...)
			}
		}
		wantCost, _, wantFeasible := brute.MinCostWCNF(rw)
		kp := NewPrep(rw, simp.Options{}, KeepSofts)
		if kp.HardUnsat() {
			if wantFeasible {
				t.Fatalf("iter %d: KeepSofts unsat on feasible instance", iter)
			}
			continue
		}
		gotCost, gotModel, gotFeasible := brute.MinCostWCNF(kp.W())
		if gotFeasible != wantFeasible {
			t.Fatalf("iter %d: feasibility drift", iter)
		}
		if !wantFeasible {
			continue
		}
		if gotCost != wantCost {
			t.Fatalf("iter %d: optimum drift %d != %d\n%v", iter, gotCost, wantCost, rw.Clauses)
		}
		m := kp.Restore(gotModel)
		if cost, hardOK := rw.CostOf(m); !hardOK || cost != wantCost {
			t.Fatalf("iter %d: restored cost %d (hardOK %v), want %d", iter, cost, hardOK, wantCost)
		}
	}
}
