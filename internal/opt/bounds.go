package opt

import (
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cnf"
)

// Bounds is the shared-bound protocol of the parallel portfolio engine: the
// best proved lower bound, the best known upper bound, and the model
// witnessing that upper bound, safe for concurrent publish and observe.
//
// All publishes are monotonic — a lower bound only ever rises, an upper
// bound only ever falls — so racing solvers can publish without
// coordination; stale publishes are simply ignored. The upper bound and its
// witnessing model are updated together under a mutex, so Best always
// returns a consistent (cost, model) pair, while UB and LB are lock-free
// for the hot observe paths inside search loops.
//
// Every method tolerates a nil receiver (no-op publish, empty observe), so
// solver code can call through an optional *Bounds unconditionally.
type Bounds struct {
	lb atomic.Int64 // best proved lower bound; noLB until first publish
	ub atomic.Int64 // best known cost; noUB until first model

	mu    sync.Mutex
	model cnf.Assignment // witnesses ub; nil until first publish

	obs func(BoundsEvent) // improvement observer; set before sharing
}

// BoundsEvent is a snapshot of the shared bounds, delivered to the observer
// registered with SetObserver after every improving publish. HasLB / HasUB
// report whether the corresponding bound has been published at all.
type BoundsEvent struct {
	LB, UB       cnf.Weight
	HasLB, HasUB bool
}

const (
	noLB = int64(math.MinInt64)
	noUB = int64(math.MaxInt64)
)

// NewBounds returns empty bounds: no lower bound proved, no model known.
func NewBounds() *Bounds {
	b := &Bounds{}
	b.lb.Store(noLB)
	b.ub.Store(noUB)
	return b
}

// SetObserver registers fn to be called after every improving publish with a
// snapshot of the bounds. The serving layer uses it to stream anytime bound
// improvements to subscribers without polling.
//
// SetObserver must be called before the Bounds is shared with any solver
// (there is no internal synchronization on the registration itself). fn may
// be called concurrently from every publishing goroutine and must not block;
// under concurrent publishes, callbacks may be delivered out of order, but
// each carries a snapshot no older than the publish that triggered it, so a
// receiver that keeps its own best-seen bounds observes a monotone stream.
func (b *Bounds) SetObserver(fn func(BoundsEvent)) {
	if b == nil {
		return
	}
	b.obs = fn
}

// Snapshot returns the current bounds as an event value.
func (b *Bounds) Snapshot() BoundsEvent {
	var e BoundsEvent
	if b == nil {
		return e
	}
	e.LB, e.HasLB = b.LB()
	e.UB, e.HasUB = b.UB()
	return e
}

func (b *Bounds) notify() {
	if b.obs != nil {
		b.obs(b.Snapshot())
	}
}

// PublishLB raises the shared lower bound to lb if it improves on the
// current one. It reports whether the publish improved the bound.
func (b *Bounds) PublishLB(lb cnf.Weight) bool {
	if b == nil {
		return false
	}
	for {
		cur := b.lb.Load()
		if int64(lb) <= cur {
			return false
		}
		if b.lb.CompareAndSwap(cur, int64(lb)) {
			b.notify()
			return true
		}
	}
}

// PublishUB lowers the shared upper bound to cost, witnessed by model, if it
// improves on the current one. The model is copied. It reports whether the
// publish improved the bound.
func (b *Bounds) PublishUB(cost cnf.Weight, model cnf.Assignment) bool {
	if b == nil || model == nil {
		return false
	}
	b.mu.Lock()
	if int64(cost) >= b.ub.Load() {
		b.mu.Unlock()
		return false
	}
	b.model = append(b.model[:0], model...)
	b.ub.Store(int64(cost))
	// Notify outside the lock so a slow observer never blocks Best() for
	// the racing solvers.
	b.mu.Unlock()
	b.notify()
	return true
}

// LB returns the best published lower bound and whether one exists.
func (b *Bounds) LB() (cnf.Weight, bool) {
	if b == nil {
		return 0, false
	}
	lb := b.lb.Load()
	if lb == noLB {
		return 0, false
	}
	return cnf.Weight(lb), true
}

// UB returns the best published upper bound and whether one exists. The
// witnessing model is available through Best.
func (b *Bounds) UB() (cnf.Weight, bool) {
	if b == nil {
		return 0, false
	}
	ub := b.ub.Load()
	if ub == noUB {
		return 0, false
	}
	return cnf.Weight(ub), true
}

// Best returns a copy of the best published model and its cost.
func (b *Bounds) Best() (cnf.Weight, cnf.Assignment, bool) {
	if b == nil {
		return 0, nil, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.model == nil {
		return 0, nil, false
	}
	out := make(cnf.Assignment, len(b.model))
	copy(out, b.model)
	return cnf.Weight(b.ub.Load()), out, true
}

// Closed reports whether the published bounds have met: the upper bound is
// witnessed by a model and the lower bound proves it optimal. Any solver
// observing closed bounds may return that model as the optimum.
func (b *Bounds) Closed() bool {
	if b == nil {
		return false
	}
	ub := b.ub.Load()
	return ub != noUB && b.lb.Load() >= ub
}

// AdoptClosed fills res with the shared best model when the bounds have
// closed — the cross-member optimality exit shared by every solver and the
// portfolio engine. It reports whether res was filled.
func (b *Bounds) AdoptClosed(res *Result) bool {
	if !b.Closed() {
		return false
	}
	cost, model, ok := b.Best()
	if !ok {
		return false
	}
	res.Status = StatusOptimal
	res.Cost = cost
	res.LowerBound = cost
	res.Model = model
	return true
}
