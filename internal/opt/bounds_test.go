package opt

import (
	"sync"
	"testing"

	"repro/internal/cnf"
)

func TestBoundsZero(t *testing.T) {
	b := NewBounds()
	if _, ok := b.LB(); ok {
		t.Fatal("fresh bounds should have no lower bound")
	}
	if _, ok := b.UB(); ok {
		t.Fatal("fresh bounds should have no upper bound")
	}
	if _, _, ok := b.Best(); ok {
		t.Fatal("fresh bounds should have no model")
	}
	if b.Closed() {
		t.Fatal("fresh bounds cannot be closed")
	}
}

func TestBoundsNilSafe(t *testing.T) {
	var b *Bounds
	if b.PublishLB(3) || b.PublishUB(1, cnf.Assignment{true}) {
		t.Fatal("nil bounds should ignore publishes")
	}
	if _, ok := b.LB(); ok {
		t.Fatal("nil bounds have no LB")
	}
	if _, ok := b.UB(); ok {
		t.Fatal("nil bounds have no UB")
	}
	if _, _, ok := b.Best(); ok {
		t.Fatal("nil bounds have no model")
	}
	if b.Closed() {
		t.Fatal("nil bounds are never closed")
	}
}

func TestBoundsMonotonic(t *testing.T) {
	b := NewBounds()
	if !b.PublishLB(2) {
		t.Fatal("first LB publish should improve")
	}
	if b.PublishLB(1) {
		t.Fatal("weaker LB should be ignored")
	}
	if !b.PublishLB(5) {
		t.Fatal("stronger LB should improve")
	}
	if lb, ok := b.LB(); !ok || lb != 5 {
		t.Fatalf("LB = %d, want 5", lb)
	}

	m1 := cnf.Assignment{true, false}
	m2 := cnf.Assignment{false, true}
	if !b.PublishUB(9, m1) {
		t.Fatal("first UB publish should improve")
	}
	if b.PublishUB(9, m2) || b.PublishUB(11, m2) {
		t.Fatal("equal/worse UB should be ignored")
	}
	if cost, model, ok := b.Best(); !ok || cost != 9 || !model[0] || model[1] {
		t.Fatalf("Best = %d %v, want 9 witnessed by m1", cost, model)
	}
	if !b.PublishUB(7, m2) {
		t.Fatal("better UB should improve")
	}
	if cost, model, ok := b.Best(); !ok || cost != 7 || model[0] || !model[1] {
		t.Fatalf("Best = %d %v, want 7 witnessed by m2", cost, model)
	}

	if b.Closed() {
		t.Fatal("lb=5 < ub=7: not closed")
	}
	b.PublishLB(7)
	if !b.Closed() {
		t.Fatal("lb=7 = ub=7: closed")
	}
}

func TestBoundsPublishCopiesModel(t *testing.T) {
	b := NewBounds()
	m := cnf.Assignment{true}
	b.PublishUB(1, m)
	m[0] = false // mutating the caller's slice must not leak in
	if _, model, _ := b.Best(); !model[0] {
		t.Fatal("PublishUB must copy the model")
	}
	_, out, _ := b.Best()
	out[0] = false // mutating the returned slice must not leak back
	if _, model, _ := b.Best(); !model[0] {
		t.Fatal("Best must return a copy")
	}
}

// TestBoundsConcurrent hammers Bounds from publishers and observers at once;
// run under -race it is the shared-bound protocol's data-race check. The
// final state must be the strongest publish from either side, and every
// observed (cost, model) pair must be consistent.
func TestBoundsConcurrent(t *testing.T) {
	b := NewBounds()
	const n = 8
	const rounds = 500
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		g := g
		wg.Add(2)
		go func() { // publisher: descending UBs, ascending LBs
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				cost := cnf.Weight(rounds - i + g)
				model := cnf.Assignment{g%2 == 0, i%2 == 0}
				b.PublishUB(cost, model)
				b.PublishLB(cnf.Weight(i - rounds - g))
			}
		}()
		go func() { // observer: UB must never rise, pairs must be consistent
			defer wg.Done()
			last := cnf.Weight(1 << 40)
			for i := 0; i < rounds; i++ {
				if ub, ok := b.UB(); ok {
					if ub > last {
						t.Errorf("UB rose: %d after %d", ub, last)
						return
					}
					last = ub
				}
				if cost, model, ok := b.Best(); ok && model == nil {
					t.Errorf("cost %d without model", cost)
					return
				}
				b.Closed()
				b.LB()
			}
		}()
	}
	wg.Wait()
	if ub, ok := b.UB(); !ok || ub != cnf.Weight(1) {
		t.Fatalf("final UB = %d, want 1", ub)
	}
	if lb, ok := b.LB(); !ok || lb != cnf.Weight(-1) {
		t.Fatalf("final LB = %d, want -1", lb)
	}
}

func TestBoundsObserver(t *testing.T) {
	b := NewBounds()
	var events []BoundsEvent
	b.SetObserver(func(e BoundsEvent) { events = append(events, e) })

	if b.PublishLB(1) != true {
		t.Fatal("publish failed")
	}
	b.PublishUB(5, cnf.Assignment{true})
	b.PublishUB(9, cnf.Assignment{true}) // no improvement → no event
	b.PublishLB(0)                       // no improvement → no event
	b.PublishUB(3, cnf.Assignment{true})

	want := []BoundsEvent{
		{LB: 1, HasLB: true},
		{LB: 1, UB: 5, HasLB: true, HasUB: true},
		{LB: 1, UB: 3, HasLB: true, HasUB: true},
	}
	if len(events) != len(want) {
		t.Fatalf("events = %+v, want %+v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("event[%d] = %+v, want %+v", i, events[i], want[i])
		}
	}
	if snap := b.Snapshot(); snap != (BoundsEvent{LB: 1, UB: 3, HasLB: true, HasUB: true}) {
		t.Fatalf("snapshot = %+v", snap)
	}
	var nilB *Bounds
	nilB.SetObserver(func(BoundsEvent) {}) // nil-safe, like every Bounds method
	if snap := nilB.Snapshot(); snap != (BoundsEvent{}) {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

func TestBoundsObserverConcurrentMonotoneFold(t *testing.T) {
	// Callbacks may be delivered out of order under concurrent publishes,
	// but a receiver folding them into best-seen bounds observes a monotone
	// stream; the final fold must equal the final bounds.
	b := NewBounds()
	var mu sync.Mutex
	best := BoundsEvent{}
	b.SetObserver(func(e BoundsEvent) {
		mu.Lock()
		if e.HasLB && (!best.HasLB || e.LB > best.LB) {
			best.LB, best.HasLB = e.LB, true
		}
		if e.HasUB && (!best.HasUB || e.UB < best.UB) {
			best.UB, best.HasUB = e.UB, true
		}
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range 50 {
				b.PublishLB(cnf.Weight(i - 40))
				b.PublishUB(cnf.Weight(100-i+g), cnf.Assignment{true})
			}
		}()
	}
	wg.Wait()
	if !best.HasLB || !best.HasUB || best.LB != 9 || best.UB != 51 {
		t.Fatalf("folded bounds = %+v, want lb=9 ub=51", best)
	}
}
