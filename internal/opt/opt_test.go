package opt

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cnf"
)

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusOptimal: "OPTIMAL",
		StatusUnsat:   "UNSATISFIABLE",
		StatusUnknown: "UNKNOWN",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestMaxSatisfied(t *testing.T) {
	r := Result{Cost: 2}
	if got := r.MaxSatisfied(8); got != 6 {
		t.Fatalf("MaxSatisfied = %d, want 6", got)
	}
}

func TestOptionsBudget(t *testing.T) {
	dl := time.Now().Add(time.Hour)
	var stop atomic.Bool
	o := Options{Deadline: dl, MaxConflictsPerCall: 42, Stop: &stop}
	b := o.Budget()
	if !b.Deadline.Equal(dl) || b.MaxConflicts != 42 || b.Stop != &stop {
		t.Fatalf("budget does not mirror options: %+v", b)
	}
}

func TestOptionsExpired(t *testing.T) {
	if (Options{}).Expired() {
		t.Fatal("zero options never expire")
	}
	if (Options{Deadline: time.Now().Add(time.Hour)}).Expired() {
		t.Fatal("future deadline should not be expired")
	}
	if !(Options{Deadline: time.Now().Add(-time.Second)}).Expired() {
		t.Fatal("past deadline should be expired")
	}
	var stop atomic.Bool
	o := Options{Stop: &stop}
	if o.Expired() {
		t.Fatal("unset stop flag")
	}
	stop.Store(true)
	if !o.Expired() {
		t.Fatal("set stop flag should expire")
	}
}

func TestVerifyModel(t *testing.T) {
	w := cnf.NewWCNF(2)
	w.AddHard(cnf.FromDIMACS(1))
	w.AddSoft(1, cnf.FromDIMACS(2))
	w.AddSoft(1, cnf.FromDIMACS(-2))

	good := Result{Cost: 1, Model: cnf.Assignment{true, true}}
	if !VerifyModel(w, good) {
		t.Fatal("consistent model rejected")
	}
	wrongCost := Result{Cost: 0, Model: cnf.Assignment{true, true}}
	if VerifyModel(w, wrongCost) {
		t.Fatal("inconsistent cost accepted")
	}
	hardViolated := Result{Cost: 1, Model: cnf.Assignment{false, true}}
	if VerifyModel(w, hardViolated) {
		t.Fatal("hard-violating model accepted")
	}
	if VerifyModel(w, Result{Cost: 1}) {
		t.Fatal("nil model accepted")
	}
	if VerifyModel(w, Result{Cost: 1, Model: cnf.Assignment{true}}) {
		t.Fatal("short model accepted")
	}
}
