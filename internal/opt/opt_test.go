package opt

import (
	"context"
	"testing"
	"time"

	"repro/internal/cnf"
)

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		StatusOptimal: "OPTIMAL",
		StatusUnsat:   "UNSATISFIABLE",
		StatusUnknown: "UNKNOWN",
	}
	for st, want := range cases {
		if st.String() != want {
			t.Errorf("%d.String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestMaxSatisfied(t *testing.T) {
	r := Result{Cost: 2}
	if got := r.MaxSatisfied(8); got != 6 {
		t.Fatalf("MaxSatisfied = %d, want 6", got)
	}
}

func TestOptionsBudget(t *testing.T) {
	dl := time.Now().Add(time.Hour)
	ctx, cancel := context.WithDeadline(context.Background(), dl)
	defer cancel()
	o := Options{MaxConflictsPerCall: 42, MemBytes: 1 << 20}
	b := o.Budget(ctx)
	if !b.Deadline.Equal(dl) || b.MaxConflicts != 42 || b.Ctx != ctx || b.MaxMemory != 1<<20 {
		t.Fatalf("budget does not mirror options/context: %+v", b)
	}
	// A context without a deadline leaves the budget's deadline zero.
	b = o.Budget(context.Background())
	if !b.Deadline.IsZero() {
		t.Fatalf("deadline should be zero without a context deadline: %v", b.Deadline)
	}
}

func TestResultString(t *testing.T) {
	r := Result{
		Status: StatusOptimal, Cost: 2, LowerBound: 2,
		Iterations: 5, SatCalls: 3, UnsatCalls: 2, Conflicts: 77,
		Elapsed: 1500 * time.Millisecond,
	}
	want := "OPTIMAL cost=2 lb=2 iters=5 (sat 3, unsat 2) conflicts=77 1.500s"
	if got := r.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	r.Solver = "msu4-v2"
	if got := r.String(); got != "msu4-v2 "+want {
		t.Fatalf("String() with solver = %q", got)
	}
}

func TestVerifyModel(t *testing.T) {
	w := cnf.NewWCNF(2)
	w.AddHard(cnf.FromDIMACS(1))
	w.AddSoft(1, cnf.FromDIMACS(2))
	w.AddSoft(1, cnf.FromDIMACS(-2))

	good := Result{Cost: 1, Model: cnf.Assignment{true, true}}
	if !VerifyModel(w, good) {
		t.Fatal("consistent model rejected")
	}
	wrongCost := Result{Cost: 0, Model: cnf.Assignment{true, true}}
	if VerifyModel(w, wrongCost) {
		t.Fatal("inconsistent cost accepted")
	}
	hardViolated := Result{Cost: 1, Model: cnf.Assignment{false, true}}
	if VerifyModel(w, hardViolated) {
		t.Fatal("hard-violating model accepted")
	}
	if VerifyModel(w, Result{Cost: 1}) {
		t.Fatal("nil model accepted")
	}
	if VerifyModel(w, Result{Cost: 1, Model: cnf.Assignment{true}}) {
		t.Fatal("short model accepted")
	}
}
