package opt

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/cnf"
	"repro/internal/proof"
	"repro/internal/sat"
)

// Certify produces a serialized optimality (or unsatisfiability)
// certificate for a finished result, checkable by internal/proof against
// the original instance alone.
//
// The construction is a post-solve certification pass, uniform across every
// algorithm in the repo — branch and bound, the msu family, OLL, PBO
// search, portfolio winners, preprocessed and clause-sharing runs alike:
//
//   - StatusOptimal with cost C: the model is the upper-bound witness; for
//     the lower bound a fresh solo solver (no sharing, no preprocessing)
//     proof-logs a refutation of hards ∧ (cost ≤ C−1), built by
//     proof.BoundFormula. The checker rebuilds that formula itself, so the
//     certificate's validity never depends on the optimizer that found C —
//     if the optimizer was wrong, this pass fails (a better assignment
//     satisfies the bound formula) and no certificate is issued.
//   - StatusUnsat: the refutation is of the hard clauses alone.
//
// The pass re-proves one UNSAT result at the tightest bound rather than
// replaying the optimizer's own iteration-by-iteration reasoning; that one
// step subsumes the whole chain and keeps the checker's trusted base
// independent of all eleven algorithms' bookkeeping.
//
// The returned bytes have already been validated by the independent
// checker; Certify never returns an unverified certificate.
func Certify(ctx context.Context, w *cnf.WCNF, r Result, o Options) ([]byte, error) {
	cert, err := buildCertificate(ctx, w, r, o)
	if err != nil {
		return nil, err
	}
	if err := proof.Check(w, cert); err != nil {
		return nil, fmt.Errorf("opt: produced certificate failed self-check: %w", err)
	}
	return cert.Encode(), nil
}

func buildCertificate(ctx context.Context, w *cnf.WCNF, r Result, o Options) (*proof.Certificate, error) {
	switch r.Status {
	case StatusUnsat:
		t, err := refute(ctx, w.Hards(), o)
		if err != nil {
			return nil, fmt.Errorf("opt: certifying UNSAT: %w", err)
		}
		return &proof.Certificate{
			Kind:    proof.KindUnsat,
			NumVars: w.NumVars,
			Steps:   []proof.Step{{Bound: -1, Trace: t}},
		}, nil
	case StatusOptimal:
		if !VerifyModel(w, r) {
			return nil, errors.New("opt: result model does not achieve the claimed cost")
		}
		cert := &proof.Certificate{
			Kind:    proof.KindOptimal,
			NumVars: w.NumVars,
			Cost:    r.Cost,
			Model:   append(cnf.Assignment(nil), r.Model[:w.NumVars]...),
		}
		if r.Cost == 0 {
			return cert, nil // the model alone certifies a zero-cost optimum
		}
		t, err := refute(ctx, proof.BoundFormula(w, r.Cost-1), o)
		if err != nil {
			return nil, fmt.Errorf("opt: certifying lower bound %d: %w", r.Cost, err)
		}
		cert.Steps = []proof.Step{{Bound: r.Cost - 1, Trace: t}}
		return cert, nil
	default:
		return nil, fmt.Errorf("opt: cannot certify a %v result", r.Status)
	}
}

// refute runs a fresh proof-logged solo solver on f and returns the trace
// deriving the empty clause.
func refute(ctx context.Context, f *cnf.Formula, o Options) (*proof.Trace, error) {
	s := sat.New()
	s.EnsureVars(f.NumVars)
	for _, c := range f.Clauses {
		if !s.AddClauseFrom(c) {
			// Conflict while loading: the formula refutes itself by unit
			// propagation, which is exactly what a lone empty-clause
			// record asks the checker to confirm.
			return &proof.Trace{Records: []proof.Record{{Op: proof.OpLearn}}}, nil
		}
	}
	rec := proof.NewRecorder()
	s.SetProof(rec)
	b := o.Budget(ctx)
	b.MaxConflicts = 0 // per-call caps are an optimizer-loop notion; run to a verdict
	s.SetBudget(b)
	switch s.Solve() {
	case sat.Unsat:
		// Trim to the lemmas the checker's backward marking actually
		// consumed: certificates are stored durably and served over HTTP,
		// so the dead search effort (typically most of the trace) is pure
		// payload cost. Trim verifies as it marks, so a trimming failure
		// means the raw trace was already invalid.
		t, err := proof.Trim(f, rec.Trace(), proof.CheckOptions{})
		if err != nil {
			return nil, fmt.Errorf("trimming refutation: %w", err)
		}
		return t, nil
	case sat.Sat:
		return nil, errors.New("bound formula is satisfiable — the claimed optimum is not optimal")
	default:
		return nil, fmt.Errorf("budget exhausted before the refutation completed: %w", ctx.Err())
	}
}
