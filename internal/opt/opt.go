// Package opt defines the types shared by every MaxSAT optimizer in this
// repository: verdicts, results, options, and the Solver interface the
// experiment harness drives.
//
// Cost convention: all optimizers minimize the total weight of falsified
// soft clauses. For the plain MaxSAT instances of the DATE 2008 paper
// (every clause soft, weight 1), the paper's "MaxSAT solution" — the number
// of satisfied clauses — is NumClauses - Cost; Result.MaxSatisfied performs
// that conversion.
package opt

import (
	"sync/atomic"
	"time"

	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/sat"
)

// Status is an optimizer verdict.
type Status int8

// Optimizer verdicts.
const (
	// StatusUnknown: resource budget exhausted before the optimum was proved.
	StatusUnknown Status = iota
	// StatusOptimal: Cost is the proved optimum and Model witnesses it.
	StatusOptimal
	// StatusUnsat: the hard clauses are unsatisfiable (partial MaxSAT only).
	StatusUnsat
)

// String names the status for reports.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "OPTIMAL"
	case StatusUnsat:
		return "UNSATISFIABLE"
	default:
		return "UNKNOWN"
	}
}

// Result reports the outcome of a MaxSAT optimization.
type Result struct {
	Status Status
	// Cost is the total weight of falsified soft clauses: the proved optimum
	// when Status is StatusOptimal, otherwise the best upper bound found
	// (or -1 if no feasible assignment was seen).
	Cost cnf.Weight
	// LowerBound is the best proved lower bound on Cost (useful when
	// Status is StatusUnknown).
	LowerBound cnf.Weight
	// Model is an assignment achieving Cost, when one was found.
	Model cnf.Assignment
	// Iterations counts main-loop iterations of the algorithm.
	Iterations int
	// SatCalls / UnsatCalls count SAT-solver invocations by outcome.
	SatCalls, UnsatCalls int
	// Conflicts is the cumulative conflict count of the underlying solver(s).
	Conflicts int64
	// Elapsed is the wall-clock optimization time.
	Elapsed time.Duration
}

// MaxSatisfied converts the cost into the paper's "MaxSAT solution": the
// number of satisfied clauses for a plain MaxSAT instance with the given
// total clause count.
func (r Result) MaxSatisfied(totalClauses int) int {
	return totalClauses - int(r.Cost)
}

// Options configures an optimizer run.
type Options struct {
	// Encoding selects the cardinality encoding where the algorithm uses one
	// (msu4 v1 = card.BDD, v2 = card.Sorter).
	Encoding card.Encoding
	// Deadline, when non-zero, bounds the whole optimization; expiring it
	// yields StatusUnknown.
	Deadline time.Time
	// MaxConflictsPerCall, when positive, caps each SAT call.
	MaxConflictsPerCall int64
	// Stop, when non-nil, aborts the optimization when set.
	Stop *atomic.Bool
}

// Budget converts the options into a per-call SAT budget.
func (o Options) Budget() sat.Budget {
	return sat.Budget{
		Deadline:     o.Deadline,
		MaxConflicts: o.MaxConflictsPerCall,
		Stop:         o.Stop,
	}
}

// Expired reports whether the options' deadline or stop flag has fired.
func (o Options) Expired() bool {
	if o.Stop != nil && o.Stop.Load() {
		return true
	}
	return !o.Deadline.IsZero() && time.Now().After(o.Deadline)
}

// Solver is a complete MaxSAT optimizer.
type Solver interface {
	// Name identifies the algorithm in reports (e.g. "msu4-v2").
	Name() string
	// Solve optimizes w. Implementations must not retain w.
	Solve(w *cnf.WCNF) Result
}

// VerifyModel recomputes the cost of r.Model on w and checks hard-clause
// feasibility; it reports whether the model is consistent with r.Cost.
// Optimizers' tests use it to guard against bookkeeping drift between the
// incremental solver state and the original formula.
func VerifyModel(w *cnf.WCNF, r Result) bool {
	if r.Model == nil {
		return false
	}
	if len(r.Model) < w.NumVars {
		return false
	}
	cost, hardOK := w.CostOf(r.Model[:w.NumVars])
	return hardOK && cost == r.Cost
}
