// Package opt defines the types shared by every MaxSAT optimizer in this
// repository: verdicts, results, options, the shared-bound protocol used by
// the parallel portfolio engine, and the Solver interface the experiment
// harness drives.
//
// Cost convention: all optimizers minimize the total weight of falsified
// soft clauses. For the plain MaxSAT instances of the DATE 2008 paper
// (every clause soft, weight 1), the paper's "MaxSAT solution" — the number
// of satisfied clauses — is NumClauses - Cost; Result.MaxSatisfied performs
// that conversion.
//
// Cancellation convention: Solve takes a context.Context; cancelling it (or
// letting its deadline expire) makes the optimizer return StatusUnknown with
// the best bounds it proved so far. Optimizers poll the context between SAT
// calls and the underlying SAT solver polls it every few hundred conflicts,
// so cancellation latency is bounded by that much search work.
package opt

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/sat"
)

// Status is an optimizer verdict.
type Status int8

// Optimizer verdicts.
const (
	// StatusUnknown: resource budget exhausted before the optimum was proved.
	StatusUnknown Status = iota
	// StatusOptimal: Cost is the proved optimum and Model witnesses it.
	StatusOptimal
	// StatusUnsat: the hard clauses are unsatisfiable (partial MaxSAT only).
	StatusUnsat
)

// String names the status for reports.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "OPTIMAL"
	case StatusUnsat:
		return "UNSATISFIABLE"
	default:
		return "UNKNOWN"
	}
}

// Result reports the outcome of a MaxSAT optimization.
type Result struct {
	Status Status
	// Cost is the total weight of falsified soft clauses: the proved optimum
	// when Status is StatusOptimal, otherwise the best upper bound found
	// (or -1 if no feasible assignment was seen).
	Cost cnf.Weight
	// LowerBound is the best proved lower bound on Cost (useful when
	// Status is StatusUnknown).
	LowerBound cnf.Weight
	// Model is an assignment achieving Cost, when one was found.
	Model cnf.Assignment
	// Solver names the algorithm that produced the result when the caller
	// does not already know it — the portfolio engine sets it to the winning
	// member's name.
	Solver string
	// Iterations counts main-loop iterations of the algorithm.
	Iterations int
	// SatCalls / UnsatCalls count SAT-solver invocations by outcome.
	SatCalls, UnsatCalls int
	// Conflicts is the cumulative conflict count of the underlying solver(s).
	Conflicts int64
	// Exported, Imported and ImportSubsumed count clause-sharing traffic
	// (zero unless the run was part of a sharing portfolio): learnt clauses
	// offered to the exchange, foreign clauses attached, and foreign clauses
	// dropped as duplicate or already satisfied.
	Exported, Imported, ImportSubsumed int64
	// Share breaks the sharing traffic down per portfolio member; the engine
	// fills it when clause sharing is enabled.
	Share []ShareStats
	// Certificate, when non-nil, is a serialized proof.Certificate for an
	// OPTIMAL or UNSAT verdict, produced by Certify and checkable with
	// proof.CheckBytes against the original instance. Optimizers never set
	// it themselves; the certification pass attaches it after the solve.
	Certificate []byte
	// Elapsed is the wall-clock optimization time.
	Elapsed time.Duration
}

// ShareStats is one portfolio member's clause-exchange traffic.
type ShareStats struct {
	Member                       string
	Exported, Imported, Subsumed int64
}

// Observe copies the underlying SAT solver's cumulative work counters into
// the result: the conflict count and the clause-sharing traffic. Optimizers
// call it once per main-loop iteration in place of tracking Conflicts alone.
func (r *Result) Observe(st sat.Stats) {
	r.Conflicts = st.Conflicts
	r.Exported = st.Exported
	r.Imported = st.Imported
	r.ImportSubsumed = st.ImportSubsumed
}

// ShareSummary renders the clause-sharing traffic for reports: per-member
// exported/imported counts and the deciding member's import hit rate (the
// fraction of offered foreign clauses it actually attached). Empty when the
// run did no sharing.
func (r Result) ShareSummary() string {
	if len(r.Share) == 0 {
		if r.Exported == 0 && r.Imported == 0 && r.ImportSubsumed == 0 {
			return ""
		}
		return fmt.Sprintf("share[exp=%d imp=%d sub=%d]",
			r.Exported, r.Imported, r.ImportSubsumed)
	}
	var sb strings.Builder
	sb.WriteString("share[")
	for i, m := range r.Share {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s:exp=%d,imp=%d", m.Member, m.Exported, m.Imported)
	}
	for _, m := range r.Share {
		if m.Member == r.Solver && m.Imported+m.Subsumed > 0 {
			fmt.Fprintf(&sb, " winner-hit=%d%%", 100*m.Imported/(m.Imported+m.Subsumed))
			break
		}
	}
	sb.WriteByte(']')
	return sb.String()
}

// MaxSatisfied converts the cost into the paper's "MaxSAT solution": the
// number of satisfied clauses for a plain MaxSAT instance with the given
// total clause count.
func (r Result) MaxSatisfied(totalClauses int) int {
	return totalClauses - int(r.Cost)
}

// String renders the result in the one-line format shared by cmd/maxsat and
// cmd/experiments: status, bounds, and the work profile.
func (r Result) String() string {
	s := fmt.Sprintf("%s cost=%d lb=%d iters=%d (sat %d, unsat %d) conflicts=%d %.3fs",
		r.Status, r.Cost, r.LowerBound, r.Iterations, r.SatCalls, r.UnsatCalls,
		r.Conflicts, r.Elapsed.Seconds())
	if r.Solver != "" {
		s = r.Solver + " " + s
	}
	if sum := r.ShareSummary(); sum != "" {
		s += " " + sum
	}
	return s
}

// Options configures an optimizer run. Resource bounds (deadline,
// cancellation) travel through the context passed to Solve, not through
// Options.
type Options struct {
	// Encoding selects the cardinality encoding where the algorithm uses one
	// (msu4 v1 = card.BDD, v2 = card.Sorter).
	Encoding card.Encoding
	// MaxConflictsPerCall, when positive, caps each SAT call.
	MaxConflictsPerCall int64
	// MemBytes, when positive, caps the CDCL solver's clause-storage
	// footprint in bytes (sat.Budget.MaxMemory): once learnt-clause growth
	// crosses the cap, the current SAT call returns Unknown and the
	// optimizer ends with the best bounds proved so far instead of growing
	// without bound. Optimizers that do not run a CDCL engine (branch and
	// bound, WalkSAT) have intrinsically bounded footprints and ignore it.
	// The portfolio engine divides the cap evenly across its racing members.
	MemBytes int64
	// Preprocess enables the soft-aware preprocessing stage (see Prep):
	// the hard clauses are simplified once with soft-clause selectors
	// frozen before the optimizer starts, and models are reconstructed
	// back to the original variables before they reach Result.Model or a
	// shared Bounds witness.
	Preprocess bool
	// Exchange, when non-nil, connects the optimizer's CDCL solver to a
	// portfolio clause-sharing bus; ShareVars is the number of variables of
	// the formula being raced (the base prefix every member numbers
	// identically). Set by the portfolio engine; optimizers attach via
	// AttachExchange with the scope they can vouch for, which may extend
	// the base by their selector block.
	Exchange  sat.Exchange
	ShareVars int
	// Restart selects the CDCL restart policy; VarDecay (when non-zero)
	// overrides the VSIDS decay; PosPhase flips the initial decision phase.
	// Portfolio diversification knobs so clones of the same algorithm stop
	// doing identical work.
	Restart  sat.RestartPolicy
	VarDecay float64
	PosPhase bool
}

// ConfigureSolver applies the options' SAT-engine configuration to a fresh
// solver: the run budget and the portfolio diversification knobs. Clause
// sharing is attached separately (AttachExchange) because its variable scope
// is optimizer-specific.
func (o Options) ConfigureSolver(ctx context.Context, s *sat.Solver) {
	s.SetBudget(o.Budget(ctx))
	if o.Restart != sat.RestartLuby {
		s.SetRestartPolicy(o.Restart)
	}
	if o.VarDecay != 0 {
		s.SetVarDecay(o.VarDecay)
	}
	if o.PosPhase {
		s.SetDefaultPhase(true)
	}
}

// AttachExchange connects s to the portfolio clause-sharing bus (no-op when
// no bus was handed down). sharedVars is the variable scope the optimizer
// vouches for, and calling this at all is its promise of two properties:
//
//   - Alignment: every sharing member numbers the variables below sharedVars
//     identically and constrains them with identical clauses. The raced
//     formula's own variables (Options.ShareVars) always qualify; the
//     loadSoft-style optimizers extend the scope over their selector block,
//     because all of them allocate one selector per soft clause in formula
//     order and add the same shell ω ∨ ¬s for it.
//   - Conservativity: every clause the optimizer will ever add is a
//     conservative extension of that scope — any model of the scope's
//     clauses extends to the added variables, so no new fact about scope
//     variables is ever entailed. Assumption-activated or guarded bounds,
//     core-implied clauses, and definitional encodings over fresh variables
//     qualify. Unguarded bound assertions do not (pbo linear search, wmsu4,
//     msu2 — they never attach), and neither does retiring a scope variable
//     by unit clause (msu1/wmsu1 re-assign selectors that way, so they may
//     only share the plain formula prefix; oll hardens soft selectors and
//     asserts unit cores as hard units — facts about selector and formula
//     variables that hold only under its own bound bookkeeping — so it
//     never attaches either).
//
// Under those two promises a learnt clause over the scope is a logical
// consequence of clauses every sharing member also has, so importing it
// excludes no model any member could otherwise reach, and cores, bounds and
// optima are unaffected.
func (o Options) AttachExchange(s *sat.Solver, sharedVars int) {
	if o.Exchange != nil {
		s.SetExchange(o.Exchange, sharedVars)
	}
}

// Budget converts the options plus the run context into a per-call SAT
// budget. The context's deadline (when set) is forwarded so the SAT solver's
// cheap time check applies, and the context itself is polled for
// cancellation.
func (o Options) Budget(ctx context.Context) sat.Budget {
	b := sat.Budget{
		MaxConflicts: o.MaxConflictsPerCall,
		MaxMemory:    o.MemBytes,
		Ctx:          ctx,
	}
	if dl, ok := ctx.Deadline(); ok {
		b.Deadline = dl
	}
	return b
}

// Solver is a complete MaxSAT optimizer.
type Solver interface {
	// Name identifies the algorithm in reports (e.g. "msu4-v2").
	Name() string
	// Solve optimizes w under ctx. Implementations must not retain w.
	//
	// shared, when non-nil, is the bound-exchange channel of a concurrent
	// portfolio: implementations publish improved lower bounds and improved
	// models there, and may observe externally improved bounds to prune
	// their own search or to terminate as soon as the global bounds meet.
	// All implementations accept shared == nil (solo run).
	Solve(ctx context.Context, w *cnf.WCNF, shared *Bounds) Result
}

// VerifyModel recomputes the cost of r.Model on w and checks hard-clause
// feasibility; it reports whether the model is consistent with r.Cost.
// Optimizers' tests use it to guard against bookkeeping drift between the
// incremental solver state and the original formula.
func VerifyModel(w *cnf.WCNF, r Result) bool {
	if r.Model == nil {
		return false
	}
	if len(r.Model) < w.NumVars {
		return false
	}
	cost, hardOK := w.CostOf(r.Model[:w.NumVars])
	return hardOK && cost == r.Cost
}
