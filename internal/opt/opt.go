// Package opt defines the types shared by every MaxSAT optimizer in this
// repository: verdicts, results, options, the shared-bound protocol used by
// the parallel portfolio engine, and the Solver interface the experiment
// harness drives.
//
// Cost convention: all optimizers minimize the total weight of falsified
// soft clauses. For the plain MaxSAT instances of the DATE 2008 paper
// (every clause soft, weight 1), the paper's "MaxSAT solution" — the number
// of satisfied clauses — is NumClauses - Cost; Result.MaxSatisfied performs
// that conversion.
//
// Cancellation convention: Solve takes a context.Context; cancelling it (or
// letting its deadline expire) makes the optimizer return StatusUnknown with
// the best bounds it proved so far. Optimizers poll the context between SAT
// calls and the underlying SAT solver polls it every few hundred conflicts,
// so cancellation latency is bounded by that much search work.
package opt

import (
	"context"
	"fmt"
	"time"

	"repro/internal/card"
	"repro/internal/cnf"
	"repro/internal/sat"
)

// Status is an optimizer verdict.
type Status int8

// Optimizer verdicts.
const (
	// StatusUnknown: resource budget exhausted before the optimum was proved.
	StatusUnknown Status = iota
	// StatusOptimal: Cost is the proved optimum and Model witnesses it.
	StatusOptimal
	// StatusUnsat: the hard clauses are unsatisfiable (partial MaxSAT only).
	StatusUnsat
)

// String names the status for reports.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "OPTIMAL"
	case StatusUnsat:
		return "UNSATISFIABLE"
	default:
		return "UNKNOWN"
	}
}

// Result reports the outcome of a MaxSAT optimization.
type Result struct {
	Status Status
	// Cost is the total weight of falsified soft clauses: the proved optimum
	// when Status is StatusOptimal, otherwise the best upper bound found
	// (or -1 if no feasible assignment was seen).
	Cost cnf.Weight
	// LowerBound is the best proved lower bound on Cost (useful when
	// Status is StatusUnknown).
	LowerBound cnf.Weight
	// Model is an assignment achieving Cost, when one was found.
	Model cnf.Assignment
	// Solver names the algorithm that produced the result when the caller
	// does not already know it — the portfolio engine sets it to the winning
	// member's name.
	Solver string
	// Iterations counts main-loop iterations of the algorithm.
	Iterations int
	// SatCalls / UnsatCalls count SAT-solver invocations by outcome.
	SatCalls, UnsatCalls int
	// Conflicts is the cumulative conflict count of the underlying solver(s).
	Conflicts int64
	// Elapsed is the wall-clock optimization time.
	Elapsed time.Duration
}

// MaxSatisfied converts the cost into the paper's "MaxSAT solution": the
// number of satisfied clauses for a plain MaxSAT instance with the given
// total clause count.
func (r Result) MaxSatisfied(totalClauses int) int {
	return totalClauses - int(r.Cost)
}

// String renders the result in the one-line format shared by cmd/maxsat and
// cmd/experiments: status, bounds, and the work profile.
func (r Result) String() string {
	s := fmt.Sprintf("%s cost=%d lb=%d iters=%d (sat %d, unsat %d) conflicts=%d %.3fs",
		r.Status, r.Cost, r.LowerBound, r.Iterations, r.SatCalls, r.UnsatCalls,
		r.Conflicts, r.Elapsed.Seconds())
	if r.Solver != "" {
		s = r.Solver + " " + s
	}
	return s
}

// Options configures an optimizer run. Resource bounds (deadline,
// cancellation) travel through the context passed to Solve, not through
// Options.
type Options struct {
	// Encoding selects the cardinality encoding where the algorithm uses one
	// (msu4 v1 = card.BDD, v2 = card.Sorter).
	Encoding card.Encoding
	// MaxConflictsPerCall, when positive, caps each SAT call.
	MaxConflictsPerCall int64
	// Preprocess enables the soft-aware preprocessing stage (see Prep):
	// the hard clauses are simplified once with soft-clause selectors
	// frozen before the optimizer starts, and models are reconstructed
	// back to the original variables before they reach Result.Model or a
	// shared Bounds witness.
	Preprocess bool
}

// Budget converts the options plus the run context into a per-call SAT
// budget. The context's deadline (when set) is forwarded so the SAT solver's
// cheap time check applies, and the context itself is polled for
// cancellation.
func (o Options) Budget(ctx context.Context) sat.Budget {
	b := sat.Budget{
		MaxConflicts: o.MaxConflictsPerCall,
		Ctx:          ctx,
	}
	if dl, ok := ctx.Deadline(); ok {
		b.Deadline = dl
	}
	return b
}

// Solver is a complete MaxSAT optimizer.
type Solver interface {
	// Name identifies the algorithm in reports (e.g. "msu4-v2").
	Name() string
	// Solve optimizes w under ctx. Implementations must not retain w.
	//
	// shared, when non-nil, is the bound-exchange channel of a concurrent
	// portfolio: implementations publish improved lower bounds and improved
	// models there, and may observe externally improved bounds to prune
	// their own search or to terminate as soon as the global bounds meet.
	// All implementations accept shared == nil (solo run).
	Solve(ctx context.Context, w *cnf.WCNF, shared *Bounds) Result
}

// VerifyModel recomputes the cost of r.Model on w and checks hard-clause
// feasibility; it reports whether the model is consistent with r.Cost.
// Optimizers' tests use it to guard against bookkeeping drift between the
// incremental solver state and the original formula.
func VerifyModel(w *cnf.WCNF, r Result) bool {
	if r.Model == nil {
		return false
	}
	if len(r.Model) < w.NumVars {
		return false
	}
	cost, hardOK := w.CostOf(r.Model[:w.NumVars])
	return hardOK && cost == r.Cost
}
