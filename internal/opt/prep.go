package opt

import (
	"sync"

	"repro/internal/cnf"
	"repro/internal/simp"
)

// Prep is the soft-aware preprocessing stage shared by every MaxSAT
// optimizer in this repository. It rewrites a weighted formula so that the
// SatELite-style simplifier in internal/simp can be applied soundly:
//
//   - every non-unit soft clause ω gets a fresh selector s, the hard shell
//     ω ∨ ¬s, and is replaced by the unit soft clause (s) of the same
//     weight — the soft constraint is then expressed entirely through s,
//     and ω's own variables become fair game for variable elimination;
//   - unit softs keep their literal (no indirection needed) and the
//     literal's variable is frozen instead;
//   - the hard clauses plus shells are preprocessed with all selectors and
//     unit-soft variables frozen (simp.Options.Frozen), so the variables the
//     optimizer will later assume, relax, or encode constraints over
//     survive;
//   - softs whose selector (or unit literal) was fixed by level-0 unit
//     propagation are folded: fixed true drops the soft (it can never be
//     falsified under the hard clauses), fixed false turns it into an empty
//     soft clause whose weight is always paid.
//
// The optimum of the rewritten formula equals the original optimum: any
// model of one instance extends/restores to a model of the other with no
// higher cost. Models found on the rewritten formula are lifted back with
// Restore (simp model reconstruction plus truncation to the original
// variables) and rescored against the original soft clauses, so Result
// models and opt.Bounds witnesses published through a Prep are always valid
// for the original formula.
//
// All methods tolerate a nil receiver (no-op), mirroring *Bounds, so
// optimizer code calls through an optional *Prep unconditionally. A Prep's
// read-only methods (Restore, Score, PublishUB) are safe for concurrent use
// once the Prep is built — the portfolio engine preprocesses once and
// shares one Prep across its racing members and the WalkSAT seeder.
type Prep struct {
	origVars int
	selVars  int           // selectors appended after the original variables
	softs    []cnf.WClause // original soft clauses, for rescoring
	simp     *simp.Result  // nil when preprocessing proved hard-UNSAT early
	out      *cnf.WCNF
	unsat    bool
}

// preprocessors recycles simp.Preprocessor buffers across Prep calls, so a
// harness sweep or repeated portfolio launches stay allocation-light.
var preprocessors = sync.Pool{New: func() any { return simp.NewPreprocessor() }}

// Mode selects how the preprocessing stage treats soft clauses.
type Mode int8

// Preprocessing modes.
const (
	// Selectors rewrites every non-unit soft clause behind a fresh frozen
	// selector, so the soft clauses' own variables can be eliminated. The
	// right mode for the SAT-based optimizers (core-guided, PBO), which
	// immediately re-express softs through selectors anyway.
	Selectors Mode = iota
	// KeepSofts leaves soft clauses verbatim and freezes every variable
	// they mention; only hard-clause structure is simplified. The right
	// mode for search-based optimizers (branch and bound, local search),
	// whose bounding heuristics read the soft clauses directly and go
	// blind behind selector indirection.
	KeepSofts
)

// MaybePrep runs the preprocessing stage when o.Preprocess is set. It
// returns the stage (nil when disabled) and the formula the optimizer
// should solve: the rewritten one, or w itself when preprocessing is off or
// proved the hard clauses unsatisfiable (then HardUnsat reports true and
// the optimizer must return StatusUnsat without solving).
func MaybePrep(w *cnf.WCNF, o Options) (*Prep, *cnf.WCNF) {
	return maybePrep(w, o, Selectors)
}

// MaybePrepKeepSofts is MaybePrep in KeepSofts mode.
func MaybePrepKeepSofts(w *cnf.WCNF, o Options) (*Prep, *cnf.WCNF) {
	return maybePrep(w, o, KeepSofts)
}

func maybePrep(w *cnf.WCNF, o Options, mode Mode) (*Prep, *cnf.WCNF) {
	if !o.Preprocess {
		return nil, w
	}
	p := NewPrep(w, simp.Options{}, mode)
	if p.unsat {
		return p, w
	}
	return p, p.out
}

// NewPrep builds the preprocessing stage for w unconditionally. The Prep
// references w's soft clauses for rescoring and must not outlive the Solve
// call it serves.
func NewPrep(w *cnf.WCNF, so simp.Options, mode Mode) *Prep {
	p := &Prep{origVars: w.NumVars}

	// Assemble the hard side: hard clauses plus, in Selectors mode, a
	// selector shell per non-unit soft. Selectors are allocated directly
	// above the original variables so Restore can truncate at origVars.
	type softKind int8
	const (
		softEmpty softKind = iota // always falsified: weight is a constant
		softUnit                  // kept as-is; its variable is frozen
		softSel                   // replaced by a selector unit
		softKeep                  // kept verbatim; all its variables frozen
	)
	type softRec struct {
		kind softKind
		lit  cnf.Lit // unit literal or positive selector literal
	}

	hard := cnf.NewFormula(w.NumVars)
	var (
		recs   []softRec
		frozen []cnf.Var
	)
	next := cnf.Var(w.NumVars)
	for _, c := range w.Clauses {
		if c.Hard() {
			hard.Clauses = append(hard.Clauses, c.Clause.Clone())
			continue
		}
		p.softs = append(p.softs, c)
		switch {
		case len(c.Clause) == 0:
			recs = append(recs, softRec{kind: softEmpty})
		case len(c.Clause) == 1:
			l := c.Clause[0]
			frozen = append(frozen, l.Var())
			recs = append(recs, softRec{kind: softUnit, lit: l})
		case mode == KeepSofts:
			for _, l := range c.Clause {
				frozen = append(frozen, l.Var())
			}
			recs = append(recs, softRec{kind: softKeep})
		default:
			sel := next
			next++
			shell := append(c.Clause.Clone(), cnf.NegLit(sel))
			hard.Clauses = append(hard.Clauses, shell)
			frozen = append(frozen, sel)
			recs = append(recs, softRec{kind: softSel, lit: cnf.PosLit(sel)})
		}
	}
	p.selVars = int(next) - w.NumVars
	hard.NumVars = int(next)

	pre := preprocessors.Get().(*simp.Preprocessor)
	so.Frozen = append(so.Frozen, frozen...)
	sr := pre.Preprocess(hard, so)
	preprocessors.Put(pre)
	if sr.Unsat {
		p.unsat = true
		return p
	}
	p.simp = sr

	out := cnf.NewWCNF(int(next))
	out.Clauses = make([]cnf.WClause, 0, len(sr.Formula.Clauses)+len(recs))
	for _, c := range sr.Formula.Clauses {
		out.Clauses = append(out.Clauses, cnf.WClause{Clause: c, Weight: cnf.HardWeight})
	}
	for i, r := range recs {
		weight := p.softs[i].Weight
		switch r.kind {
		case softEmpty:
			out.Clauses = append(out.Clauses, cnf.WClause{Weight: weight})
		case softKeep:
			// Apply level-0 fixed values so the kept soft never mentions a
			// variable the simplified hards no longer constrain (the
			// optimizer would otherwise "satisfy" it with a value that
			// reconstruction overwrites). Frozen variables cannot be
			// eliminated, so fixing is the only rewrite to track.
			kept := make(cnf.Clause, 0, len(p.softs[i].Clause))
			satisfied := false
			for _, l := range p.softs[i].Clause {
				if value, fixed := sr.Fixed(l.Var()); fixed {
					if value != l.Sign() {
						satisfied = true
						break
					}
					continue // literal fixed false: drop it
				}
				kept = append(kept, l)
			}
			if satisfied {
				continue
			}
			out.Clauses = append(out.Clauses, cnf.WClause{Clause: kept, Weight: weight})
		default:
			if value, fixed := sr.Fixed(r.lit.Var()); fixed {
				if value == r.lit.Sign() {
					// The unit literal (or selector) is forced false: the
					// soft clause is unsatisfiable under the hard clauses
					// and its weight is always paid.
					out.Clauses = append(out.Clauses, cnf.WClause{Weight: weight})
				}
				// Forced true: the soft clause is free; drop it.
				continue
			}
			out.Clauses = append(out.Clauses, cnf.WClause{Clause: cnf.Clause{r.lit}, Weight: weight})
		}
	}
	p.out = out
	return p
}

// W returns the rewritten formula the optimizer should solve (nil when
// preprocessing proved hard-UNSAT).
func (p *Prep) W() *cnf.WCNF {
	if p == nil {
		return nil
	}
	return p.out
}

// HardUnsat reports that preprocessing derived the empty clause from the
// hard side alone; the instance is UNSAT regardless of the softs.
func (p *Prep) HardUnsat() bool { return p != nil && p.unsat }

// Restore lifts a model of the rewritten formula back to the original
// variable space: simp reconstruction recovers eliminated and fixed
// variables, then the selector tail is dropped. The input is not modified.
func (p *Prep) Restore(model cnf.Assignment) cnf.Assignment {
	if p == nil {
		return model
	}
	m := p.simp.Reconstruct(model)
	return m[:p.origVars]
}

// Score returns the original-formula cost of an original-space model: the
// total weight of original soft clauses it falsifies.
func (p *Prep) Score(model cnf.Assignment) cnf.Weight {
	if p == nil {
		return 0
	}
	var cost cnf.Weight
	for _, c := range p.softs {
		if !model.Satisfies(c.Clause) {
			cost += c.Weight
		}
	}
	return cost
}

// PublishUB publishes an upper bound to shared on the optimizer's behalf:
// the model is restored to the original space and rescored first, so bound
// witnesses crossing a portfolio are always original-formula models. With a
// nil Prep it degenerates to a plain publish.
func (p *Prep) PublishUB(shared *Bounds, cost cnf.Weight, model cnf.Assignment) {
	if p == nil {
		shared.PublishUB(cost, model)
		return
	}
	if shared == nil || model == nil {
		return
	}
	m := p.Restore(model)
	shared.PublishUB(p.Score(m), m)
}

// restorable reports whether the model still needs restoring. Optimizer
// models cover the rewritten variable space (original + selectors); models
// adopted from shared bounds were published through PublishUB and are
// already original-space, which their shorter length reveals. When no
// selectors were added the two spaces have the same length and Restore is
// applied unconditionally — it is idempotent there (fixed variables are
// re-fixed to the same values, eliminated variables re-derive the same
// way).
func (p *Prep) restorable(model cnf.Assignment) bool {
	return len(model) != p.origVars || p.selVars == 0
}

// Finish rewrites a result produced on the rewritten formula into
// original-formula terms: the model is restored (when it still needs it)
// and rescored against the original softs, and the lower bound is clamped
// to the rescored cost. Lower bounds proved on the rewritten formula are
// valid as-is because the two optima coincide. Call it exactly once, after
// the optimizer loop finishes.
func (p *Prep) Finish(res *Result) {
	if p == nil || p.unsat || res.Model == nil {
		return
	}
	m := res.Model
	if p.restorable(m) {
		m = p.Restore(m)
	}
	res.Model = m
	res.Cost = p.Score(m)
	if res.LowerBound > res.Cost {
		res.LowerBound = res.Cost
	}
}
