package opt

import (
	"context"

	"repro/internal/cnf"
)

// Incremental is the retained-solver contract behind serving sessions: an
// optimizer that keeps its SAT solver, selector state, learnt clauses and
// cardinality encodings alive between solves of a *growing* formula, so a
// delta re-solve costs the delta instead of a from-scratch run.
//
// Soundness rests on monotonicity: every operation an implementation accepts
// through Absorb only ADDS clauses (hard clauses, or unit-weight soft
// clauses). Under clause addition an UNSAT core stays a core, a proved lower
// bound stays a lower bound, learnt clauses stay logical consequences, and
// definitional encodings over fresh variables stay conservative — so the
// retained state is valid for the grown formula. Operations that can lower
// the optimum (reweighting a soft clause) or scope a solve (assumptions)
// invalidate retained bound state; the serving layer routes those solves to a
// from-scratch SolveFunc instead of through this interface.
type Incremental interface {
	// Name identifies the retained engine in results and audit logs.
	Name() string
	// Absorb extends the retained formula with delta clauses. Soft clauses
	// must have unit weight (the caller routes weighted deltas away from the
	// retained path). It reports whether the engine is still usable: false
	// means the engine has poisoned itself (for example a recovered panic)
	// and the caller must Close it and fall back to from-scratch solves.
	Absorb(hards []cnf.Clause, softs []cnf.WClause) bool
	// SolveDelta re-optimizes the accumulated formula. w is the serving
	// layer's snapshot of that same formula (used to size the returned
	// model); shared is the solve's bounds channel for anytime streaming.
	// A recovered internal panic returns StatusUnknown and marks the engine
	// unusable (observable through the next Absorb).
	SolveDelta(ctx context.Context, w *cnf.WCNF, shared *Bounds) Result
	// Close releases the retained solver state. The engine must not be used
	// afterwards.
	Close()
}
