// Package simp implements SatELite-style CNF preprocessing (Eén & Biere
// 2005), the simplification layer MiniSat-family solvers apply before
// search: level-0 unit propagation, clause subsumption, self-subsuming
// resolution (strengthening), and bounded variable elimination (BVE) with
// model reconstruction.
//
// Preprocessing is sound for plain satisfiability and for the hard part of
// MaxSAT instances; it must not be applied to soft clauses (eliminating a
// variable merges clauses and destroys the falsified-clause count), which is
// why the MaxSAT algorithms in this repository use it only through explicit
// opt-in on the SAT side (cmd/sat) and tests.
package simp

import (
	"sort"

	"repro/internal/cnf"
)

// Options bounds the preprocessing effort.
type Options struct {
	// MaxOccurrences skips variable elimination for variables occurring
	// more often than this in either polarity. 0 means 10.
	MaxOccurrences int
	// MaxClauseGrowth aborts an elimination that would add more than this
	// many clauses beyond the ones it removes. 0 means 0 (never grow).
	MaxClauseGrowth int
	// DisableBVE turns off bounded variable elimination.
	DisableBVE bool
	// DisableSubsumption turns off subsumption and strengthening.
	DisableSubsumption bool
}

// Result carries the simplified formula and everything needed to lift a
// model of the simplified formula back to the original variables.
type Result struct {
	// Formula is the simplified CNF over the same variable space (eliminated
	// and fixed variables simply no longer occur).
	Formula *cnf.Formula
	// Unsat reports that preprocessing derived the empty clause.
	Unsat bool

	fixed      []int8       // 0 unknown, 1 true, -1 false (level-0 units)
	elimStack  []elimRecord // reverse-order reconstruction data
	numVars    int
	eliminated []bool
}

type elimRecord struct {
	v       cnf.Var
	clauses []cnf.Clause // original clauses containing v or ¬v
}

// Eliminated reports whether v was removed by variable elimination.
func (r *Result) Eliminated(v cnf.Var) bool {
	return int(v) < len(r.eliminated) && r.eliminated[v]
}

// Reconstruct extends a model of the simplified formula to a model of the
// original formula: fixed variables take their forced values, eliminated
// variables are assigned in reverse elimination order so that their saved
// clauses are satisfied. The input is not modified.
func (r *Result) Reconstruct(model cnf.Assignment) cnf.Assignment {
	out := make(cnf.Assignment, r.numVars)
	copy(out, model)
	for v := 0; v < r.numVars && v < len(r.fixed); v++ {
		if r.fixed[v] == 1 {
			out[v] = true
		} else if r.fixed[v] == -1 {
			out[v] = false
		}
	}
	for i := len(r.elimStack) - 1; i >= 0; i-- {
		rec := r.elimStack[i]
		out[rec.v] = false
		for _, c := range rec.clauses {
			if !out.Satisfies(c) {
				// All other literals are false; the clause's v-literal
				// dictates the polarity.
				for _, l := range c {
					if l.Var() == rec.v {
						out[rec.v] = !l.Sign()
						break
					}
				}
			}
		}
	}
	return out
}

// preprocessor state over an occurrence-indexed clause database.
type pp struct {
	opts    Options
	clauses []cnf.Clause // nil entries are deleted
	occ     [][]int32    // per literal: clause indices (may contain stale ids)
	fixed   []int8
	units   []cnf.Lit
	result  *Result
	touched map[cnf.Var]bool
}

// Preprocess simplifies f (which is not modified) and returns the result.
func Preprocess(f *cnf.Formula, opts Options) *Result {
	if opts.MaxOccurrences == 0 {
		opts.MaxOccurrences = 10
	}
	n := f.NumVars
	p := &pp{
		opts:    opts,
		occ:     make([][]int32, 2*n),
		fixed:   make([]int8, n),
		touched: map[cnf.Var]bool{},
		result: &Result{
			numVars:    n,
			eliminated: make([]bool, n),
		},
	}
	for _, c := range f.Clauses {
		norm, taut := c.Clone().Normalize()
		if taut {
			continue
		}
		switch len(norm) {
		case 0:
			p.result.Unsat = true
		case 1:
			p.units = append(p.units, norm[0])
		default:
			p.addClause(norm)
		}
	}
	if !p.result.Unsat {
		p.run()
	}
	out := cnf.NewFormula(n)
	if p.result.Unsat {
		out.Clauses = append(out.Clauses, cnf.Clause{})
	} else {
		for _, c := range p.clauses {
			if c != nil {
				out.Clauses = append(out.Clauses, c.Clone())
			}
		}
	}
	p.result.Formula = out
	p.result.fixed = p.fixed
	return p.result
}

func (p *pp) addClause(c cnf.Clause) int32 {
	id := int32(len(p.clauses))
	p.clauses = append(p.clauses, c)
	for _, l := range c {
		p.occ[l] = append(p.occ[l], id)
		p.touched[l.Var()] = true
	}
	return id
}

func (p *pp) removeClause(id int32) {
	p.clauses[id] = nil // occurrence lists are cleaned lazily
}

// occsOf returns the live clause ids containing l, compacting the list.
func (p *pp) occsOf(l cnf.Lit) []int32 {
	list := p.occ[l]
	j := 0
	for _, id := range list {
		if c := p.clauses[id]; c != nil && c.Has(l) {
			list[j] = id
			j++
		}
	}
	p.occ[l] = list[:j]
	return p.occ[l]
}

func (p *pp) run() {
	for {
		if !p.propagateUnits() {
			return
		}
		changed := false
		if !p.opts.DisableSubsumption {
			if p.subsumptionPass() {
				changed = true
			}
			if p.result.Unsat || len(p.units) > 0 {
				continue
			}
		}
		if !p.opts.DisableBVE {
			if p.eliminationPass() {
				changed = true
			}
			if p.result.Unsat || len(p.units) > 0 {
				continue
			}
		}
		if !changed {
			return
		}
	}
}

// propagateUnits applies queued level-0 units; it reports false on UNSAT.
func (p *pp) propagateUnits() bool {
	for len(p.units) > 0 {
		l := p.units[len(p.units)-1]
		p.units = p.units[:len(p.units)-1]
		v := l.Var()
		want := int8(1)
		if l.Sign() {
			want = -1
		}
		switch p.fixed[v] {
		case want:
			continue
		case -want:
			p.result.Unsat = true
			return false
		}
		p.fixed[v] = want
		// Satisfied clauses disappear.
		for _, id := range p.occsOf(l) {
			p.removeClause(id)
		}
		// Falsified literals are stripped.
		for _, id := range p.occsOf(l.Neg()) {
			c := p.clauses[id]
			stripped := make(cnf.Clause, 0, len(c)-1)
			for _, x := range c {
				if x != l.Neg() {
					stripped = append(stripped, x)
				}
			}
			p.removeClause(id)
			switch len(stripped) {
			case 0:
				p.result.Unsat = true
				return false
			case 1:
				p.units = append(p.units, stripped[0])
			default:
				p.addClause(stripped)
			}
		}
	}
	return true
}

// subsumptionPass removes subsumed clauses and applies self-subsuming
// resolution; it reports whether anything changed.
func (p *pp) subsumptionPass() bool {
	changed := false
	for id := int32(0); id < int32(len(p.clauses)); id++ {
		c := p.clauses[id]
		if c == nil {
			continue
		}
		// Find candidates through the least-occurring literal of c.
		best := c[0]
		for _, l := range c[1:] {
			if len(p.occ[l]) < len(p.occ[best]) {
				best = l
			}
		}
		for _, did := range append([]int32{}, p.occsOf(best)...) {
			if did == id {
				continue
			}
			d := p.clauses[did]
			if d == nil || len(d) < len(c) {
				continue
			}
			if subsumes(c, d) {
				p.removeClause(did)
				changed = true
			}
		}
		// Self-subsuming resolution: for each literal l of c, if c with l
		// negated subsumes some d, then l.Neg() can be removed from d.
		for _, l := range c {
			flipped := c.Clone()
			for i := range flipped {
				if flipped[i] == l {
					flipped[i] = l.Neg()
				}
			}
			flipped, _ = flipped.Normalize()
			for _, did := range append([]int32{}, p.occsOf(l.Neg())...) {
				if did == id {
					continue
				}
				d := p.clauses[did]
				if d == nil || len(d) < len(flipped) || !subsumes(flipped, d) {
					continue
				}
				strengthened := make(cnf.Clause, 0, len(d)-1)
				for _, x := range d {
					if x != l.Neg() {
						strengthened = append(strengthened, x)
					}
				}
				p.removeClause(did)
				changed = true
				switch len(strengthened) {
				case 0:
					p.result.Unsat = true
					return true
				case 1:
					p.units = append(p.units, strengthened[0])
				default:
					p.addClause(strengthened)
				}
			}
		}
	}
	return changed
}

// subsumes reports c ⊆ d for normalized (sorted) clauses.
func subsumes(c, d cnf.Clause) bool {
	if len(c) > len(d) {
		return false
	}
	i := 0
	for _, l := range d {
		if i < len(c) && c[i] == l {
			i++
		}
	}
	return i == len(c)
}

// eliminationPass tries bounded variable elimination on low-occurrence
// variables; it reports whether anything changed.
func (p *pp) eliminationPass() bool {
	changed := false
	vars := make([]cnf.Var, 0, len(p.touched))
	for v := range p.touched {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	p.touched = map[cnf.Var]bool{}
	for _, v := range vars {
		if p.fixed[v] != 0 || p.result.eliminated[v] {
			continue
		}
		pos := append([]int32{}, p.occsOf(cnf.PosLit(v))...)
		neg := append([]int32{}, p.occsOf(cnf.NegLit(v))...)
		if len(pos) == 0 && len(neg) == 0 {
			continue
		}
		if len(pos) > p.opts.MaxOccurrences || len(neg) > p.opts.MaxOccurrences {
			continue
		}
		// A pure literal eliminates trivially (no resolvents).
		var resolvents []cnf.Clause
		ok := true
		if len(pos) > 0 && len(neg) > 0 {
			budget := len(pos) + len(neg) + p.opts.MaxClauseGrowth
			for _, pi := range pos {
				for _, ni := range neg {
					r, taut := resolve(p.clauses[pi], p.clauses[ni], v)
					if taut {
						continue
					}
					resolvents = append(resolvents, r)
					if len(resolvents) > budget {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
		}
		if !ok {
			continue
		}
		// Commit: save original clauses for reconstruction, swap in
		// resolvents.
		rec := elimRecord{v: v}
		for _, id := range pos {
			rec.clauses = append(rec.clauses, p.clauses[id].Clone())
			p.removeClause(id)
		}
		for _, id := range neg {
			rec.clauses = append(rec.clauses, p.clauses[id].Clone())
			p.removeClause(id)
		}
		p.result.elimStack = append(p.result.elimStack, rec)
		p.result.eliminated[v] = true
		for _, r := range resolvents {
			switch len(r) {
			case 0:
				p.result.Unsat = true
				return true
			case 1:
				p.units = append(p.units, r[0])
			default:
				p.addClause(r)
			}
		}
		changed = true
		if len(p.units) > 0 {
			return true
		}
	}
	return changed
}

// resolve returns the resolvent of c (containing v) and d (containing ¬v),
// normalized, with a tautology flag.
func resolve(c, d cnf.Clause, v cnf.Var) (cnf.Clause, bool) {
	out := make(cnf.Clause, 0, len(c)+len(d)-2)
	for _, l := range c {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	for _, l := range d {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	return out.Normalize()
}
